package xoridx

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"xoridx/internal/core"
	"xoridx/internal/hash"
	"xoridx/internal/serve"
)

// Serve-benchmark geometry: the same 4KB/16-bit problem the pipeline
// benchmarks use, so the numbers are comparable across BENCH files.
const (
	benchServeAccesses = 2_000_000
	benchServeClients  = 8
	benchServeBatch    = 4096
)

func benchServeConfig() core.Config {
	return core.Config{
		CacheBytes: 4096,
		BlockBytes: 4,
		AddrBits:   16,
		Family:     hash.FamilyGeneralXOR,
	}
}

type benchServeIngestResult struct {
	Shards        int     `json:"shards"`
	AccessesPerMs float64 `json:"accesses_per_ms"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
}

// BenchmarkServe measures the serve subsystem on its two hot axes:
// ingest throughput (a concurrent client swarm streaming into the
// sharded windowed profiles, at 1/4/8 shards) and hot-swap latency
// (one full re-tune round: rotate, merge, warm-started search, epoch
// publication — the time from deciding to re-tune until Current()
// serves the new epoch). The final sub-benchmark writes
// BENCH_serve.json, which cmd/benchcheck validates in CI.
func BenchmarkServe(b *testing.B) {
	// Per-client streams, carved once outside every timer: each client
	// replays its slice of a shared synthetic mix in wire-sized batches.
	blocks := synthProfileBlocks(benchServeAccesses)
	perClient := len(blocks) / benchServeClients
	streams := make([][]uint64, benchServeClients)
	for c := range streams {
		streams[c] = blocks[c*perClient : (c+1)*perClient]
	}

	shardCounts := []int{1, 4, 8}
	perMs := make(map[int]float64)
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("ingest/shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(benchServeClients*perClient) * 8)
			var best time.Duration
			for i := 0; i < b.N; i++ {
				// The window is set past the stream length so the measure
				// captures pure ingest: no re-tune rounds fire mid-run.
				s, err := serve.New(serve.Options{
					Config:         benchServeConfig(),
					Shards:         shards,
					WindowAccesses: 1 << 40,
				})
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				errs := make(chan error, benchServeClients)
				for c := 0; c < benchServeClients; c++ {
					go func(id int) {
						stream := streams[id]
						for off := 0; off < len(stream); off += benchServeBatch {
							end := off + benchServeBatch
							if end > len(stream) {
								end = len(stream)
							}
							if err := s.IngestBlocks(uint64(id), stream[off:end]); err != nil {
								errs <- err
								return
							}
						}
						errs <- nil
					}(c)
				}
				for c := 0; c < benchServeClients; c++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
				// Profile() queues behind every accepted batch on every
				// shard: when it returns, ingest has fully drained, so the
				// clock covers processing, not just enqueueing.
				if _, err := s.Profile(); err != nil {
					b.Fatal(err)
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(benchServeClients*perClient) / (float64(best.Microseconds())/1000 + 1e-9)
			perMs[shards] = rate
			b.ReportMetric(rate, "accesses/ms")
		})
	}

	// Swap latency: ingest one window's worth, then time Retune — the
	// full rotate/merge/search/publish round — and confirm the epoch
	// actually advanced under Current().
	var swapBest time.Duration
	b.Run("swap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := serve.New(serve.Options{
				Config:         benchServeConfig(),
				Shards:         4,
				WindowAccesses: 1 << 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.IngestBlocks(0, blocks[:1<<17]); err != nil {
				b.Fatal(err)
			}
			before := s.Current().Seq
			start := time.Now()
			ep, err := s.Retune(context.Background())
			elapsed := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			if cur := s.Current(); cur.Seq != before+1 || cur.Seq != ep.Seq {
				b.Fatalf("epoch did not advance: before %d, returned %d, current %d",
					before, ep.Seq, cur.Seq)
			}
			if swapBest == 0 || elapsed < swapBest {
				swapBest = elapsed
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(swapBest.Microseconds())/1000, "swap-ms")
	})

	b.Run("emit-baseline", func(b *testing.B) {
		if perMs[1] == 0 || swapBest == 0 {
			b.Skip("run the ingest and swap sub-benchmarks first")
		}
		cfg := benchServeConfig()
		ingest := make([]benchServeIngestResult, 0, len(shardCounts))
		for _, shards := range shardCounts {
			if perMs[shards] == 0 {
				continue
			}
			ingest = append(ingest, benchServeIngestResult{
				Shards:        shards,
				AccessesPerMs: perMs[shards],
				SpeedupVs1:    perMs[shards] / perMs[1],
			})
		}
		out := struct {
			Benchmark     string                   `json:"benchmark"`
			Accesses      int                      `json:"accesses"`
			Clients       int                      `json:"clients"`
			CacheBytes    int                      `json:"cache_bytes"`
			AddrBits      int                      `json:"addr_bits"`
			GoVersion     string                   `json:"go_version"`
			NumCPU        int                      `json:"num_cpu"`
			Ingest        []benchServeIngestResult `json:"ingest"`
			SwapLatencyMs float64                  `json:"swap_latency_ms"`
		}{
			Benchmark:     "BenchmarkServe",
			Accesses:      benchServeClients * perClient,
			Clients:       benchServeClients,
			CacheBytes:    cfg.CacheBytes,
			AddrBits:      cfg.AddrBits,
			GoVersion:     runtime.Version(),
			NumCPU:        runtime.NumCPU(),
			Ingest:        ingest,
			SwapLatencyMs: float64(swapBest.Microseconds()) / 1000,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		for _, r := range ingest {
			b.ReportMetric(r.SpeedupVs1, fmt.Sprintf("shards%d-speedup", r.Shards))
		}
	})
}
