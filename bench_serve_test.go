package xoridx

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"xoridx/internal/core"
	"xoridx/internal/hash"
	"xoridx/internal/serve"
)

// Serve-benchmark geometry: the same 4KB/16-bit problem the pipeline
// benchmarks use, so the numbers are comparable across BENCH files.
const (
	benchServeAccesses = 2_000_000
	benchServeClients  = 8
	benchServeBatch    = 4096
)

func benchServeConfig() core.Config {
	return core.Config{
		CacheBytes: 4096,
		BlockBytes: 4,
		AddrBits:   16,
		Family:     hash.FamilyGeneralXOR,
	}
}

type benchServeIngestResult struct {
	Shards        int     `json:"shards"`
	AccessesPerMs float64 `json:"accesses_per_ms"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
}

type benchServeShedResult struct {
	BlockingAccessesPerMs float64 `json:"blocking_accesses_per_ms"`
	ShedAccessesPerMs     float64 `json:"shed_accesses_per_ms"`
	OverheadPct           float64 `json:"overhead_pct"`
}

type benchServeRecoveryResult struct {
	Restarts        uint64  `json:"restarts"`
	RecoveryMs      float64 `json:"recovery_ms"`
	ResumedAccesses uint64  `json:"resumed_accesses"`
}

// BenchmarkServe measures the serve subsystem on its hot axes: ingest
// throughput (a concurrent client swarm streaming into the sharded
// windowed profiles, at 1/4/8 shards), hot-swap latency (one full
// re-tune round: rotate, merge, warm-started search, epoch
// publication — the time from deciding to re-tune until Current()
// serves the new epoch), the §16 shed-path overhead (enabling Shed on
// an uncontended queue, contract ≤5%), and supervised recovery
// latency (planted panic to healed shard). The final sub-benchmark
// writes BENCH_serve.json, which cmd/benchcheck validates in CI.
func BenchmarkServe(b *testing.B) {
	// Per-client streams, carved once outside every timer: each client
	// replays its slice of a shared synthetic mix in wire-sized batches.
	blocks := synthProfileBlocks(benchServeAccesses)
	perClient := len(blocks) / benchServeClients
	streams := make([][]uint64, benchServeClients)
	for c := range streams {
		streams[c] = blocks[c*perClient : (c+1)*perClient]
	}

	shardCounts := []int{1, 4, 8}
	perMs := make(map[int]float64)
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("ingest/shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(benchServeClients*perClient) * 8)
			var best time.Duration
			for i := 0; i < b.N; i++ {
				// The window is set past the stream length so the measure
				// captures pure ingest: no re-tune rounds fire mid-run.
				s, err := serve.New(serve.Options{
					Config:         benchServeConfig(),
					Shards:         shards,
					WindowAccesses: 1 << 40,
				})
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				errs := make(chan error, benchServeClients)
				for c := 0; c < benchServeClients; c++ {
					go func(id int) {
						stream := streams[id]
						for off := 0; off < len(stream); off += benchServeBatch {
							end := off + benchServeBatch
							if end > len(stream) {
								end = len(stream)
							}
							if err := s.IngestBlocks(uint64(id), stream[off:end]); err != nil {
								errs <- err
								return
							}
						}
						errs <- nil
					}(c)
				}
				for c := 0; c < benchServeClients; c++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
				// Profile() queues behind every accepted batch on every
				// shard: when it returns, ingest has fully drained, so the
				// clock covers processing, not just enqueueing.
				if _, err := s.Profile(); err != nil {
					b.Fatal(err)
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			rate := float64(benchServeClients*perClient) / (float64(best.Microseconds())/1000 + 1e-9)
			perMs[shards] = rate
			b.ReportMetric(rate, "accesses/ms")
		})
	}

	// Swap latency: ingest one window's worth, then time Retune — the
	// full rotate/merge/search/publish round — and confirm the epoch
	// actually advanced under Current().
	var swapBest time.Duration
	b.Run("swap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := serve.New(serve.Options{
				Config:         benchServeConfig(),
				Shards:         4,
				WindowAccesses: 1 << 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.IngestBlocks(0, blocks[:1<<17]); err != nil {
				b.Fatal(err)
			}
			before := s.Current().Seq
			start := time.Now()
			ep, err := s.Retune(context.Background())
			elapsed := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			if cur := s.Current(); cur.Seq != before+1 || cur.Seq != ep.Seq {
				b.Fatalf("epoch did not advance: before %d, returned %d, current %d",
					before, ep.Seq, cur.Seq)
			}
			if swapBest == 0 || elapsed < swapBest {
				swapBest = elapsed
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(swapBest.Microseconds())/1000, "swap-ms")
	})

	// Shed-path overhead: the §16 overload-control contract says turning
	// Shed on must cost at most a few percent on the *uncontended* fast
	// path (the per-client admission accounting is the only extra work;
	// the queue is sized so it never fills and nothing is actually
	// shed). Blocking and shed runs are interleaved so drift in the
	// runner hits both sides equally, and each side keeps its best rep.
	var shedResult benchServeShedResult
	b.Run("shed-overhead", func(b *testing.B) {
		drive := func(shed bool) time.Duration {
			s, err := serve.New(serve.Options{
				Config:         benchServeConfig(),
				Shards:         4,
				WindowAccesses: 1 << 40,
				QueueDepth:     1024, // never fills: measures bookkeeping, not shedding
				Shed:           shed,
			})
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			errs := make(chan error, benchServeClients)
			for c := 0; c < benchServeClients; c++ {
				go func(id int) {
					stream := streams[id]
					for off := 0; off < len(stream); off += benchServeBatch {
						end := off + benchServeBatch
						if end > len(stream) {
							end = len(stream)
						}
						if err := s.IngestBlocks(uint64(id), stream[off:end]); err != nil {
							errs <- err
							return
						}
					}
					errs <- nil
				}(c)
			}
			for c := 0; c < benchServeClients; c++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.Profile(); err != nil {
				b.Fatal(err)
			}
			if n := s.Stats().Shed; n != 0 {
				b.Fatalf("fast-path measurement actually shed %d accesses; deepen the queue", n)
			}
			elapsed := time.Since(start)
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			return elapsed
		}
		const reps = 3
		var bestBlock, bestShed time.Duration
		for i := 0; i < b.N; i++ {
			for r := 0; r < reps; r++ {
				if d := drive(false); bestBlock == 0 || d < bestBlock {
					bestBlock = d
				}
				if d := drive(true); bestShed == 0 || d < bestShed {
					bestShed = d
				}
			}
		}
		total := float64(benchServeClients * perClient)
		shedResult = benchServeShedResult{
			BlockingAccessesPerMs: total / (float64(bestBlock.Microseconds())/1000 + 1e-9),
			ShedAccessesPerMs:     total / (float64(bestShed.Microseconds())/1000 + 1e-9),
		}
		shedResult.OverheadPct = (shedResult.BlockingAccessesPerMs/shedResult.ShedAccessesPerMs - 1) * 100
		b.ReportMetric(shedResult.OverheadPct, "overhead-%")
	})

	// Recovery latency: how long a supervised shard takes to come back
	// after a panic — detect, restart, restore the recovery snapshot —
	// measured from the ingest of the batch that trips the planted
	// fault until a Profile() drain succeeds against the healed shard.
	var recoveryResult benchServeRecoveryResult
	b.Run("recovery", func(b *testing.B) {
		var best time.Duration
		for i := 0; i < b.N; i++ {
			var arm, fired atomic.Bool
			s, err := serve.New(serve.Options{
				Config:          benchServeConfig(),
				Shards:          1,
				WindowAccesses:  1 << 40,
				CheckpointEvery: 1 << 16,
				FaultHook: func(int, uint64) {
					if arm.Load() && fired.CompareAndSwap(false, true) {
						panic("bench: planted recovery fault")
					}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			// Seed past one snapshot cadence so the restart is warm.
			if err := s.IngestBlocks(0, blocks[:1<<16+benchServeBatch]); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Profile(); err != nil {
				b.Fatal(err)
			}
			arm.Store(true)
			start := time.Now()
			if err := s.IngestBlocks(0, blocks[:benchServeBatch]); err != nil {
				b.Fatal(err)
			}
			p, err := s.Profile()
			elapsed := time.Since(start)
			if err != nil {
				b.Fatal(err)
			}
			st := s.Stats()
			if st.Restarts != 1 || st.Quarantined != 0 {
				b.Fatalf("planted fault did not recover cleanly: %+v", st)
			}
			if best == 0 || elapsed < best {
				best = elapsed
				recoveryResult = benchServeRecoveryResult{
					Restarts:        st.Restarts,
					RecoveryMs:      float64(best.Microseconds()) / 1000,
					ResumedAccesses: p.Accesses,
				}
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(recoveryResult.RecoveryMs, "recovery-ms")
	})

	b.Run("emit-baseline", func(b *testing.B) {
		if perMs[1] == 0 || swapBest == 0 || shedResult.ShedAccessesPerMs == 0 || recoveryResult.Restarts == 0 {
			b.Skip("run the ingest, swap, shed-overhead and recovery sub-benchmarks first")
		}
		cfg := benchServeConfig()
		ingest := make([]benchServeIngestResult, 0, len(shardCounts))
		for _, shards := range shardCounts {
			if perMs[shards] == 0 {
				continue
			}
			ingest = append(ingest, benchServeIngestResult{
				Shards:        shards,
				AccessesPerMs: perMs[shards],
				SpeedupVs1:    perMs[shards] / perMs[1],
			})
		}
		out := struct {
			Benchmark     string                    `json:"benchmark"`
			Accesses      int                       `json:"accesses"`
			Clients       int                       `json:"clients"`
			CacheBytes    int                       `json:"cache_bytes"`
			AddrBits      int                       `json:"addr_bits"`
			GoVersion     string                    `json:"go_version"`
			NumCPU        int                       `json:"num_cpu"`
			Ingest        []benchServeIngestResult  `json:"ingest"`
			SwapLatencyMs float64                   `json:"swap_latency_ms"`
			ShedOverhead  *benchServeShedResult     `json:"shed_overhead"`
			Recovery      *benchServeRecoveryResult `json:"recovery"`
		}{
			Benchmark:     "BenchmarkServe",
			Accesses:      benchServeClients * perClient,
			Clients:       benchServeClients,
			CacheBytes:    cfg.CacheBytes,
			AddrBits:      cfg.AddrBits,
			GoVersion:     runtime.Version(),
			NumCPU:        runtime.NumCPU(),
			Ingest:        ingest,
			SwapLatencyMs: float64(swapBest.Microseconds()) / 1000,
			ShedOverhead:  &shedResult,
			Recovery:      &recoveryResult,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		for _, r := range ingest {
			b.ReportMetric(r.SpeedupVs1, fmt.Sprintf("shards%d-speedup", r.Shards))
		}
	})
}
