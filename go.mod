module xoridx

go 1.22
