// Package xoridx reproduces "Application-Specific Reconfigurable
// XOR-Indexing to Eliminate Cache Conflict Misses" (Vandierendonck,
// Manet, Legat — DATE 2006) as a Go library.
//
// The paper's pipeline — profile a memory trace for conflict vectors
// (Fig. 1), estimate any XOR hash function's misses from its null
// space (Eq. 4), hill-climb the design space of null spaces (§3.2),
// and restrict to permutation-based functions for cheap reconfigurable
// hardware (§4–5) — lives in the internal packages:
//
//	internal/gf2          GF(2) linear algebra (vectors, matrices, null
//	                      spaces, subspace counting)
//	internal/trace        memory-access traces and codecs
//	internal/lru          LRU stack + order-statistics stack distances
//	internal/profile      conflict-vector profiling and the Eq. 4 estimator
//	internal/search       hill-climbing construction for every family
//	internal/optimal      exhaustive optimal bit-selecting baseline
//	internal/cache        trace-driven cache simulator (DM/SA/FA/skewed)
//	internal/hwcost       Table 1 switch-count models
//	internal/netlist      executable Fig. 2 selector networks
//	internal/workloads    synthetic MediaBench/MiBench + PowerStone suites
//	internal/core         the end-to-end Tune pipeline
//	internal/experiments  regenerates every table and figure
//
// Start with internal/core.Tune (see examples/quickstart), or run
//
//	go run ./cmd/tables -table all
//
// to regenerate the paper's evaluation. The benchmarks in bench_test.go
// map one-to-one onto the paper's tables and figures; EXPERIMENTS.md
// records paper-vs-measured numbers.
package xoridx
