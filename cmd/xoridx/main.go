// Command xoridx constructs an application-specific XOR index function
// from a memory-access trace: the end-to-end pipeline of the paper
// (profile → hill-climbing search → exact validation → fallback).
//
// Usage:
//
//	tracegen -bench fft -out fft.xtr
//	xoridx -trace fft.xtr -cache 4096
//	xoridx -trace fft.xtr -cache 1024 -family general
//	xoridx -trace fft.xtr -cache 4096 -family permutation -maxinputs 4 -verbose
//	xoridx -trace fft.xtr -cache 2048 -ways 2                # set-associative tuning
//	xoridx -trace fft.xtr -analyze                           # conflict diagnosis
//	xoridx -trace fft.xtr -save f.mat; xoridx -trace g.xtr -apply f.mat
//	xoridx -trace fft.xtr -bitstream -verilog index.v        # hardware artefacts
//	xoridx -trace fft.xtr -family general -algo anneal       # alternative search
//	xoridx -trace fft.xtr -cache 4096 -workers -1            # sharded parallel profiling + search
//	xoridx -trace fft.xtr -cache 4096 -progress              # stage/search progress on stderr
//	xoridx -trace fft.xtr -checkpoint run                    # crash snapshots -> run.{profile,search}.ckpt
//	xoridx -trace fft.xtr -checkpoint run -resume            # continue a killed run, bit-identically
//	xoridx -trace fft.xtr -cpuprofile cpu.pb -memprofile mem.pb  # pprof the pipeline
//	xoridx -trace huge.xtr -mmap                             # stream the profile off a mapped file
//	xoridx -trace huge.xtr -mmap -sample 16                  # sampled profiling with confidence bounds
//	xoridx -trace huge.xtr -mmap -backend sketch             # bounded-memory count-min histogram
//
// -mmap profiles the trace as a stream over a read-only memory
// mapping (falling back to buffered reads where mmap is unavailable)
// without ever materializing it, so traces far larger than RAM
// profile in bounded memory. The streamed pipeline reports Eq. 4
// estimates — with "X ± ε" confidence intervals under -sample —
// instead of the exact simulation and §6 fallback, which need the
// whole trace; re-run without -mmap (or -apply the saved matrix) to
// validate exactly.
//
// Ctrl-C (SIGINT) cancels the pipeline cooperatively: the run aborts
// within one hill-climbing move, prints the best-so-far function marked
// degraded, and exits with the cancellation error; with -checkpoint the
// interrupted state is on disk and -resume continues it.
//
// Trace files may be in the binary, text or Dinero III format
// (autodetected).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"xoridx/internal/cache"
	"xoridx/internal/cliutil"
	"xoridx/internal/core"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/netlist"
	"xoridx/internal/profile"
	"xoridx/internal/search"
	"xoridx/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "crack" {
		crackMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosMain(os.Args[2:])
		return
	}
	traceFile := flag.String("trace", "", "trace file (binary or text format)")
	cacheBytes := flag.Int("cache", 4096, "cache size in bytes")
	ways := flag.Int("ways", 1, "associativity (1 = direct mapped)")
	blockBytes := flag.Int("block", 4, "cache block size in bytes")
	addrBits := flag.Int("n", 16, "hashed block-address bits")
	family := flag.String("family", "permutation", "function family: permutation, general, bitselect")
	algo := flag.String("algo", "hillclimb", "search algorithm: hillclimb (paper), anneal, constructive")
	maxInputs := flag.Int("maxinputs", 2, "max XOR inputs per set-index bit (0 = unlimited)")
	restarts := flag.Int("restarts", 0, "extra random hill-climbing restarts")
	workers := flag.Int("workers", 1, "parallel workers for profiling and search (1 = sequential, -1 = all cores); results are identical for any value")
	noIncremental := flag.Bool("no-incremental", false, "score every search candidate with a full Gray-code walk instead of the memoized coset-sum evaluator; results are identical, only slower")
	noFallback := flag.Bool("nofallback", false, "disable the revert-to-conventional guard")
	verbose := flag.Bool("verbose", false, "print the profile and search details")
	bitstream := flag.Bool("bitstream", false, "emit the Fig. 2b configuration bitstream for the selected function (permutation family, maxinputs <= 2)")
	saveFn := flag.String("save", "", "write the selected function's matrix to this file")
	verilogFile := flag.String("verilog", "", "write a synthesizable Verilog module of the Fig. 2b network to this file")
	loadFn := flag.String("apply", "", "skip the search: load a matrix from this file and evaluate it on the trace")
	analyze := flag.Bool("analyze", false, "diagnose the trace's conflicts (hot vectors + concrete address pairs) instead of constructing a function")
	progress := flag.Bool("progress", false, "report pipeline stages and search progress on stderr")
	checkpoint := flag.String("checkpoint", "", "base path for crash snapshots: profiling state goes to <path>.profile.ckpt and search state to <path>.search.ckpt, written atomically; restart a killed run with -resume")
	resume := flag.Bool("resume", false, "continue from the checkpoint files under -checkpoint (missing files mean a cold start); the resumed run is bit-identical to an uninterrupted one")
	retries := flag.Int("retries", 0, "retry budget for transient trace I/O failures, with capped exponential backoff")
	useMmap := flag.Bool("mmap", false, "profile the trace as a stream over a read-only memory mapping instead of loading it; skips exact validation")
	sampleK := flag.Uint64("sample", 0, "profile every k-th conflict candidate instead of all of them; estimates gain a 95% confidence interval (0 or 1 = exact)")
	sampleSeed := flag.Uint64("sample-seed", 0, "deterministic phase seed for -sample (and the sketch backend's hashes)")
	backend := flag.String("backend", "auto", "histogram backend: auto, flat, sparse, or sketch (bounded memory, (ε,δ)-bounded estimates)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "xoridx: -trace required")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Deferred so the snapshot covers the whole pipeline, whichever
		// path (apply / analyze / construct) the run takes.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "xoridx: -resume needs -checkpoint")
		os.Exit(2)
	}
	cfg := core.Config{
		CacheBytes:     *cacheBytes,
		Ways:           *ways,
		BlockBytes:     *blockBytes,
		AddrBits:       *addrBits,
		MaxInputs:      *maxInputs,
		Restarts:       *restarts,
		NoFallback:     *noFallback,
		Workers:        *workers,
		NoIncremental:  *noIncremental,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		SampleK:        *sampleK,
		SampleSeed:     *sampleSeed,
		Backend:        *backend,
	}
	var err error
	cfg.Family, err = cliutil.ParseFamily(*family)
	if err != nil {
		fatal(err)
	}
	var events core.Sink
	if *progress {
		events = cliutil.ProgressSink(os.Stderr)
	}
	if *useMmap {
		if *loadFn != "" || *analyze {
			fmt.Fprintln(os.Stderr, "xoridx: -mmap streams the profile and cannot -apply or -analyze (they need the whole trace)")
			os.Exit(2)
		}
		if *algo != "hillclimb" {
			fmt.Fprintln(os.Stderr, "xoridx: -mmap supports -algo hillclimb only")
			os.Exit(2)
		}
		if err := runStream(ctx, *traceFile, cfg, events, *verbose, *saveFn); err != nil {
			fatal(err)
		}
		return
	}
	tr, err := cliutil.ReadTraceRetry(ctx, *traceFile, *retries)
	if err != nil {
		fatal(err)
	}
	if *loadFn != "" {
		if err := applyMatrixFile(tr, *loadFn, *cacheBytes, *blockBytes); err != nil {
			fatal(err)
		}
		return
	}
	if *analyze {
		a := profile.AnalyzeConflicts(tr.Blocks(*blockBytes, *addrBits),
			*addrBits, *cacheBytes / *blockBytes, 8, 12)
		fmt.Print(a.Report(*blockBytes))
		return
	}
	res, err := tuneWith(ctx, tr, cfg, *algo, events)
	if err != nil {
		if res != nil && res.Degraded && res.Func != nil {
			// Anytime contract: an interrupted run still reports the best
			// function it reached, clearly marked as unvalidated.
			fmt.Printf("search interrupted after %d moves (%d candidates evaluated); best-so-far estimate %d (baseline %d)\n",
				res.Search.Iterations, res.Search.Evaluated, res.Search.Estimated, res.Search.Baseline)
			fmt.Println("NOTE: result is degraded — not exactly validated, not necessarily a local optimum")
			fmt.Println()
			fmt.Println(core.DescribeFunction(res.Func))
			if *checkpoint != "" {
				fmt.Printf("\nresume with: -trace %s -checkpoint %s -resume\n", *traceFile, *checkpoint)
			}
		}
		fatal(err)
	}
	stats := tr.ComputeStats()
	fmt.Printf("trace: %s (%d accesses, %d ops)\n", tr.Name, stats.Accesses, stats.Ops)
	fmt.Printf("cache: %d B, %d-way, %d B blocks (%d sets)\n\n",
		*cacheBytes, *ways, *blockBytes, *cacheBytes / *blockBytes / *ways)
	if *verbose {
		p := res.Profile
		fmt.Printf("profile: %d accesses = %d compulsory + %d capacity + %d conflict candidates (%d conflict pairs)\n",
			p.Accesses, p.Compulsory, p.Capacity, p.Candidates, p.TotalPairs)
		if p.SampleK > 1 {
			fmt.Printf("sampled profiling: k=%d, walked %d of %d candidates; optimized estimate %s\n",
				p.SampleK, p.SampledCandidates, p.Candidates, res.Search.Confidence)
		}
		fmt.Println("hottest conflict vectors:")
		for _, vc := range p.HotVectors(8) {
			fmt.Printf("  %s x%d\n", vc.Vec.StringN(p.N), vc.Count)
		}
		fmt.Printf("search: %d moves, %d candidates evaluated, estimate %d (baseline %d)\n",
			res.Search.Iterations, res.Search.Evaluated, res.Search.Estimated, res.Search.Baseline)
		fmt.Printf("search cost: %d histogram lookups, %d memo hits\n\n",
			res.Search.Lookups, res.Search.MemoHits)
	}
	fmt.Println(core.DescribeFunction(res.Func))
	fmt.Println()
	fmt.Printf("baseline (modulo) misses:  %8d (%.2f per K-op)\n",
		res.Baseline.Misses, res.Baseline.MissesPerKOp(tr.OpsOrLen()))
	fmt.Printf("optimized misses:          %8d (%.2f per K-op)\n",
		res.Optimized.Misses, res.Optimized.MissesPerKOp(tr.OpsOrLen()))
	fmt.Printf("misses removed:            %8.1f%%\n", 100*res.MissesRemoved())
	if res.UsedFallback {
		fmt.Println("note: optimized function added misses; reverted to conventional indexing (paper §6)")
	}
	if *bitstream {
		if err := emitBitstream(res.Func, *addrBits, cfg.SetBits()); err != nil {
			fatal(err)
		}
	}
	if *saveFn != "" {
		data, err := res.Func.Matrix().MarshalText()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*saveFn, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmatrix written to %s (re-evaluate with -apply)\n", *saveFn)
	}
	if *verilogFile != "" {
		nl := netlist.NewPermutationXOR2(*addrBits, cfg.SetBits())
		if err := nl.Configure(res.Func.Matrix()); err != nil {
			fatal(fmt.Errorf("cannot realise function in the Fig. 2b network: %w", err))
		}
		f, err := os.Create(*verilogFile)
		if err != nil {
			fatal(err)
		}
		if err := nl.EmitVerilog(f, "xoridx_index"); err != nil {
			_ = f.Close() // surfacing the emit error matters more
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		lit, _ := nl.VerilogConfigLiteral()
		fmt.Printf("\nVerilog module written to %s; program cfg_in = %s\n", *verilogFile, lit)
	}
}

// runStream is the -mmap pipeline: profile the trace as a stream over
// a memory mapping (or buffered reads where mmap is unavailable),
// search on the resulting profile, and report Eq. 4 estimates — with
// confidence intervals when sampling — in place of the exact
// simulation stage, which would need the whole trace in memory.
func runStream(ctx context.Context, path string, cfg core.Config, events core.Sink, verbose bool, saveFn string) error {
	src, err := trace.Open(path, true)
	if err != nil {
		return err
	}
	defer src.Close()
	mode := "buffered"
	if src.Mapped {
		mode = "mmap"
	}
	fmt.Printf("trace: %s (%d accesses, %d ops) [%s stream]\n", src.Name(), src.Len(), src.Ops(), mode)
	fmt.Printf("cache: %d B, %d-way, %d B blocks (%d sets)\n\n",
		cfg.CacheBytes, cfg.Ways, cfg.BlockBytes, cfg.CacheBytes/cfg.BlockBytes/cfg.Ways)

	pl := core.Pipeline{Config: cfg, Events: events}
	p, err := pl.ProfileSource(ctx, src.BlockSource(cfg.BlockBytes, cfg.AddrBits))
	if err != nil {
		return err
	}
	sres, err := pl.Search(ctx, p)
	if err != nil {
		if sres.Degraded && sres.Matrix.Cols != nil {
			fmt.Printf("search interrupted after %d moves; best-so-far estimate %d (baseline %d)\n",
				sres.Iterations, sres.Estimated, sres.Baseline)
		}
		return err
	}
	f, err := hash.NewXOR(sres.Matrix)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("profile [%s backend, %d histogram bytes]: %d accesses = %d compulsory + %d capacity + %d conflict candidates (%d conflict pairs)\n",
			p.Backend(), p.HistogramBytes(), p.Accesses, p.Compulsory, p.Capacity, p.Candidates, p.TotalPairs)
		if p.SampleK > 1 {
			fmt.Printf("sampled profiling: k=%d, walked %d of %d candidates\n",
				p.SampleK, p.SampledCandidates, p.Candidates)
		}
		fmt.Printf("search: %d moves, %d candidates evaluated\n\n", sres.Iterations, sres.Evaluated)
	}
	fmt.Println(core.DescribeFunction(f))
	fmt.Println()
	fmt.Printf("estimated conflict misses (Eq. 4):\n")
	fmt.Printf("  baseline (modulo):  %s\n", p.ConfidenceFor(sres.Baseline))
	fmt.Printf("  optimized:          %s\n", p.ConfidenceFor(sres.Estimated))
	fmt.Println("note: streamed profile — exact simulation and the §6 fallback were skipped; validate with -apply on a machine that fits the trace")
	if saveFn != "" {
		data, err := f.Matrix().MarshalText()
		if err != nil {
			return err
		}
		if err := os.WriteFile(saveFn, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nmatrix written to %s (re-evaluate with -apply)\n", saveFn)
	}
	return nil
}

// tuneWith runs the selected search algorithm through the core
// pipeline. The alternative algorithms (extensions; see DESIGN.md §7)
// produce a matrix that is then validated — and guarded — exactly like
// the paper's hill climber.
func tuneWith(ctx context.Context, tr *trace.Trace, cfg core.Config, algo string, events core.Sink) (*core.Result, error) {
	pl := core.Pipeline{Config: cfg, Events: events}
	if algo == "hillclimb" {
		return pl.Run(ctx, tr)
	}
	p, err := pl.Profile(ctx, tr)
	if err != nil {
		return nil, err
	}
	var sres search.Result
	switch algo {
	case "anneal":
		if cfg.Family != hash.FamilyGeneralXOR {
			return nil, fmt.Errorf("-algo anneal searches general XOR functions; use -family general")
		}
		sres, err = search.AnnealCtx(ctx, p, cfg.SetBits(), search.AnnealOptions{Seed: cfg.Seed})
	case "constructive":
		if cfg.Family != hash.FamilyPermutation {
			return nil, fmt.Errorf("-algo constructive builds permutation-based functions; use -family permutation")
		}
		sres, err = search.ConstructiveCtx(ctx, p, cfg.SetBits(), cfg.MaxInputs, 64)
	default:
		return nil, fmt.Errorf("unknown -algo %q (hillclimb, anneal, constructive)", algo)
	}
	if err != nil {
		if sres.Degraded && sres.Matrix.Cols != nil {
			// The alternative searches honour the same anytime contract
			// as the hill climber: surface their best-so-far function.
			res := &core.Result{Search: sres, Profile: p, Degraded: true}
			if f, ferr := hash.NewXOR(sres.Matrix); ferr == nil {
				res.Func = f
			}
			return res, err
		}
		return nil, err
	}
	// Hand the found matrix to the exact-simulation stage, which also
	// applies the §6 fallback guard.
	return pl.Validate(ctx, tr, p, sres)
}

// applyMatrixFile evaluates a previously saved index function on a
// trace without re-running the search.
func applyMatrixFile(tr *trace.Trace, path string, cacheBytes, blockBytes int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var h gf2.Matrix
	if err := h.UnmarshalText(data); err != nil {
		return err
	}
	f, err := hash.NewXOR(h)
	if err != nil {
		return err
	}
	sets := cacheBytes / blockBytes
	if 1<<uint(f.SetBits()) != sets {
		return fmt.Errorf("matrix has %d set bits; cache of %d sets needs %d",
			f.SetBits(), sets, log2i(sets))
	}
	conv := cache.MustNew(cache.Config{SizeBytes: cacheBytes, BlockBytes: blockBytes, Ways: 1,
		Index: hash.Modulo(f.AddrBits(), f.SetBits())})
	conv.DisableClassification()
	base := conv.Run(tr)
	xc := cache.MustNew(cache.Config{SizeBytes: cacheBytes, BlockBytes: blockBytes, Ways: 1, Index: f})
	xc.DisableClassification()
	opt := xc.Run(tr)
	fmt.Printf("applied %s\n", f)
	fmt.Printf("baseline (modulo) misses: %8d\n", base.Misses)
	fmt.Printf("applied-function misses:  %8d\n", opt.Misses)
	if base.Misses > 0 {
		fmt.Printf("misses removed:           %8.1f%%\n", 100*(1-float64(opt.Misses)/float64(base.Misses)))
	}
	return nil
}

func log2i(v int) int {
	n := 0
	for s := 1; s < v; s <<= 1 {
		n++
	}
	return n
}

// emitBitstream programs the Fig. 2b permutation-based selector network
// with the selected function and prints the configuration bits, one
// line per selector, verifying the configured hardware first.
func emitBitstream(f hash.Func, n, m int) error {
	nl := netlist.NewPermutationXOR2(n, m)
	if err := nl.Configure(f.Matrix()); err != nil {
		return fmt.Errorf("function does not fit the 2-input permutation-based network: %w", err)
	}
	// Verify the silicon model agrees with the function on a sample.
	for a := uint64(0); a < 1<<uint(n); a += 257 {
		idx, tag := nl.Eval(a)
		if idx != f.Index(a) || tag != f.Tag(a) {
			return fmt.Errorf("internal: netlist/function mismatch at %#x", a)
		}
	}
	bits := nl.Config()
	fmt.Printf("\nconfiguration bitstream (%d bits, %d selectors of 1-out-of-%d):\n",
		len(bits), m, n-m+1)
	perSel := n - m + 1
	for s := 0; s < m; s++ {
		fmt.Printf("  s%-2d ", s)
		for i := 0; i < perSel; i++ {
			if bits[s*perSel+i] {
				fmt.Print("1")
			} else {
				fmt.Print("0")
			}
		}
		fmt.Println()
	}
	return nil
}

func fatal(err error) {
	cliutil.Fatal("xoridx", err)
}
