// The chaos subcommand: run the deterministic fault harness
// (internal/chaos, DESIGN.md §16) against a live server from the
// command line — the same seeded schedules and invariant checkers CI
// runs, packaged for operators who want to validate a configuration's
// self-healing posture before trusting it.
//
// Usage:
//
//	xoridx chaos                           # every kind x seeds 1..3
//	xoridx chaos -kind panic -seed 7       # one schedule
//	xoridx chaos -kind overload -seeds 10  # one kind, many seeds
//	xoridx chaos -shards 8 -accesses 65536 # scale the drive
//
// Exit status is non-zero when any invariant is violated.
package main

import (
	"flag"
	"fmt"
	"os"

	"xoridx/internal/chaos"
	"xoridx/internal/cliutil"
	"xoridx/internal/core"
	"xoridx/internal/serve"
)

func chaosMain(args []string) {
	fs := flag.NewFlagSet("xoridx chaos", flag.ExitOnError)
	kind := fs.String("kind", "all", "fault schedule: panic, corrupt-ckpt, overload, disconnect, clock-skew, or all")
	seed := fs.Int64("seed", 0, "run exactly this seed (0 = sweep -seeds)")
	seeds := fs.Int("seeds", 3, "with -seed 0, sweep seeds 1..N per kind")
	cacheBytes := fs.Int("cache", 1024, "cache size in bytes")
	addrBits := fs.Int("n", 14, "hashed block-address bits")
	shards := fs.Int("shards", 4, "ingest shards (power of two)")
	accesses := fs.Int("accesses", 16384, "accesses per schedule")
	batch := fs.Int("batch", 256, "accesses per ingest batch")
	verbose := fs.Bool("v", false, "print per-schedule stats, not just verdicts")
	fs.Parse(args)

	kinds := chaos.Kinds()
	if *kind != "all" {
		kinds = []chaos.Kind{chaos.Kind(*kind)}
		found := false
		for _, k := range chaos.Kinds() {
			if k == kinds[0] {
				found = true
			}
		}
		if !found {
			cliutil.Usagef("xoridx chaos", "unknown -kind %q", *kind)
		}
	}
	seedList := []int64{*seed}
	if *seed == 0 {
		seedList = seedList[:0]
		for i := 1; i <= *seeds; i++ {
			seedList = append(seedList, int64(i))
		}
	}

	fam, err := cliutil.ParseFamily("general")
	if err != nil {
		cliutil.Fatal("xoridx chaos", err)
	}
	dir, err := os.MkdirTemp("", "xoridx-chaos-*")
	if err != nil {
		cliutil.Fatal("xoridx chaos", err)
	}
	defer os.RemoveAll(dir)

	failures := 0
	for _, k := range kinds {
		for _, s := range seedList {
			opt := serve.Options{
				Config: core.Config{CacheBytes: *cacheBytes, AddrBits: *addrBits,
					Family: fam},
				Shards:         *shards,
				WindowAccesses: 1 << 40,
			}
			switch k {
			case chaos.KindPanic:
				opt.CheckpointEvery = uint64(*batch)
			case chaos.KindClockSkew:
				opt.WindowAccesses = uint64(*accesses) / 8
			}
			rep, err := chaos.Run(chaos.Config{
				Serve: opt, Kind: k, Seed: s, Dir: dir,
				Accesses: *accesses, Batch: *batch,
			})
			if err != nil {
				cliutil.Fatal("xoridx chaos", err)
			}
			verdict := "ok"
			if !rep.Ok() {
				verdict = "FAIL"
				failures++
			}
			fmt.Printf("%-12s seed %-3d %s", k, s, verdict)
			if *verbose || !rep.Ok() {
				st := rep.Stats
				fmt.Printf("  sent %d ingested %d shed %d dropped %d restarts %d quarantined %d epochs %d",
					rep.Sent, st.Ingested, st.Shed, st.DroppedQuarantined,
					st.Restarts, st.Quarantined, len(rep.Epochs))
			}
			fmt.Println()
			for _, v := range rep.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d schedule(s) violated invariants\n", failures)
		os.Exit(1)
	}
}
