// The serve subcommand: the paper's tune loop as a long-running
// service. An in-process swarm of clients replays workload traces
// (internal/workloads generators) through the ingest wire codec into
// the sharded server; windows rotate as accesses accumulate, the
// background optimizer re-tunes the index matrix warm-started from the
// current one, and each result hot-swaps in as a new epoch.
//
// Usage:
//
//	xoridx serve -bench fft,rijndael -clients 8 -accesses 2000000
//	xoridx serve -bench mix -shards 8 -window 262144 -decay 0.3
//	xoridx serve -bench fft -checkpoint svc.ckpt           # crash-safe state
//	xoridx serve -bench fft -checkpoint svc.ckpt -resume   # continue it
//	xoridx serve -bench mix -httpprof localhost:6060       # live pprof
//	xoridx serve -bench fft -progress                      # re-tune progress
//	xoridx serve -bench mix -shed -checkpoint-every 65536  # self-healing posture
//	xoridx serve -bench fft -retune-deadline 2s            # watchdogged re-tunes
//
// Each client streams one benchmark's block accesses, switching to the
// next benchmark in its list when the trace is exhausted — a
// phase-shifting workload that keeps the optimizer honest. Ctrl-C
// stops the swarm, closes the server (final checkpoint included) and
// prints the epoch history.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -httpprof registers the profiling handlers
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"xoridx/internal/cliutil"
	"xoridx/internal/core"
	"xoridx/internal/faultio"
	"xoridx/internal/serve"
	"xoridx/internal/workloads"
)

func serveMain(args []string) {
	fs := flag.NewFlagSet("xoridx serve", flag.ExitOnError)
	cacheBytes := fs.Int("cache", 4096, "cache size in bytes")
	blockBytes := fs.Int("block", 4, "cache block size in bytes")
	ways := fs.Int("ways", 1, "associativity (1 = direct mapped)")
	addrBits := fs.Int("n", 16, "hashed block-address bits")
	family := fs.String("family", "general", "function family: permutation, general, bitselect")
	maxInputs := fs.Int("maxinputs", 0, "max XOR inputs per set-index bit (0 = unlimited)")
	workers := fs.Int("workers", 1, "parallel workers for the background search")
	shards := fs.Int("shards", 4, "ingest shards (power of two)")
	window := fs.Uint64("window", serve.DefaultWindowAccesses, "window length in accesses between re-tunes")
	decay := fs.Float64("decay", 0.25, "per-window aggregate decay in [0,1): 0 remembers everything")
	clients := fs.Int("clients", 4, "concurrent workload clients")
	accesses := fs.Uint64("accesses", 1<<21, "total accesses to stream per client")
	batch := fs.Int("batch", 4096, "accesses per ingest frame")
	bench := fs.String("bench", "mix", "comma-separated benchmark names each client cycles through, or \"mix\" for a spread across the suites")
	scale := fs.Int("scale", 1, "workload scale factor (>= 1)")
	checkpoint := fs.String("checkpoint", "", "service checkpoint file: full state (windowed histograms + current epoch) written atomically after every re-tune and on exit")
	resume := fs.Bool("resume", false, "restore the -checkpoint file on startup (missing file = cold start)")
	strict := fs.Bool("strict", false, "refuse to -resume from a checkpoint with a damaged shard blob instead of healing around it")
	checkpointEvery := fs.Uint64("checkpoint-every", 0, "periodic checkpoint cadence in accesses: refresh shard recovery snapshots and rewrite -checkpoint every this many accesses (0 = only at re-tunes and exit)")
	maxShardRestarts := fs.Int("max-shard-restarts", 0, "shard circuit-breaker budget: restarts from the last recovery snapshot before quarantining (0 = default, negative = first panic stops the world)")
	shed := fs.Bool("shed", false, "shed load instead of blocking when a shard queue is full: drop-with-accounting plus hot-client fairness")
	admissionWait := fs.Duration("admission-wait", 0, "with -shed, how long a full-queue ingest waits before shedding (0 = default, negative = immediately)")
	retuneDeadline := fs.Duration("retune-deadline", 0, "re-tune watchdog: a search round over this long publishes its best-so-far result marked degraded (0 = no deadline)")
	retries := fs.Int("retries", 0, "retry budget for transient ingest stream failures")
	httpprof := fs.String("httpprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
	progress := fs.Bool("progress", false, "report re-tune rounds and search progress on stderr")
	fs.Parse(args)

	if err := cliutil.ValidateScale(*scale); err != nil {
		cliutil.Usagef("xoridx serve", "%v", err)
	}
	fam, err := cliutil.ParseFamily(*family)
	if err != nil {
		cliutil.Usagef("xoridx serve", "%v", err)
	}
	names := benchNames(*bench)
	for _, name := range names {
		if _, err := workloads.ByName(name); err != nil {
			cliutil.Usagef("xoridx serve", "%v", err)
		}
	}
	if *httpprof != "" {
		go func() {
			if err := http.ListenAndServe(*httpprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "xoridx serve: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *httpprof)
	}

	opt := serve.Options{
		Config: core.Config{
			CacheBytes: *cacheBytes,
			BlockBytes: *blockBytes,
			Ways:       *ways,
			AddrBits:   *addrBits,
			Family:     fam,
			MaxInputs:  *maxInputs,
			Workers:    *workers,
		},
		Shards:         *shards,
		WindowAccesses: *window,
		Decay:          *decay,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Strict:         *strict,

		CheckpointEvery:  *checkpointEvery,
		MaxShardRestarts: *maxShardRestarts,
		RestartBackoff:   faultio.DefaultPolicy,
		Shed:             *shed,
		AdmissionWait:    *admissionWait,
		RetuneDeadline:   *retuneDeadline,
	}
	if *retries > 0 {
		opt.Retry = faultio.DefaultPolicy
		opt.Retry.MaxRetries = *retries
	}
	var epochMu sync.Mutex
	var epochLog []*serve.Epoch
	if *progress {
		opt.Events = cliutil.ProgressSink(os.Stderr)
	}
	s, err := serve.New(opt)
	if err != nil {
		cliutil.Fatal("xoridx serve", err)
	}
	for _, rerr := range s.RestoreErrors() {
		fmt.Fprintf(os.Stderr, "xoridx serve: healed on resume: %v\n", rerr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	fmt.Printf("serving: %d clients x %d accesses, %d shards, window %d, decay %g, benches %s\n",
		*clients, *accesses, s.Stats().Shards, *window, *decay, strings.Join(names, ","))

	// Epoch watcher: record every published epoch for the final report.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		last := uint64(0)
		for {
			ep := s.Current()
			if ep.Seq != last {
				last = ep.Seq
				epochMu.Lock()
				epochLog = append(epochLog, ep)
				epochMu.Unlock()
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
		}
	}()

	// Client swarm: each client streams its benchmark cycle through the
	// wire codec and an in-process pipe, exercising the same ingest
	// path a network transport would.
	var swarm sync.WaitGroup
	for c := 0; c < *clients; c++ {
		pr, pw := io.Pipe()
		swarm.Add(1)
		go func(id int, w *io.PipeWriter) {
			defer swarm.Done()
			defer w.Close()
			if err := streamClient(ctx, w, uint64(id), names, *scale, *blockBytes, *addrBits, *batch, *accesses); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "xoridx serve: client %d: %v\n", id, err)
			}
		}(c, pw)
		swarm.Add(1)
		go func(id int, r *io.PipeReader) {
			defer swarm.Done()
			defer r.Close()
			if err := s.ServeIngest(ctx, r); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "xoridx serve: ingest %d: %v\n", id, err)
			}
		}(c, pr)
	}
	swarm.Wait()

	// Flush: two sequential rounds guarantee the stream's tail is
	// covered — the first call may dedup into a round that was already
	// in flight when the last accesses arrived; the second cannot.
	if ctx.Err() == nil {
		for i := 0; i < 2; i++ {
			if _, err := s.Retune(context.Background()); err != nil {
				fmt.Fprintf(os.Stderr, "xoridx serve: final re-tune: %v\n", err)
				break
			}
		}
	}
	stop()
	<-watcherDone
	if err := s.Close(); err != nil {
		cliutil.Fatal("xoridx serve", err)
	}
	if err := s.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "xoridx serve: background: %v\n", err)
	}

	st := s.Stats()
	fmt.Printf("\nran %v: %d accesses in %d batches, %d rotations, %d re-tunes, %d hot swaps\n",
		time.Since(start).Round(time.Millisecond), st.Ingested, st.Batches, st.Rotations, st.Retunes, st.Swaps)
	if st.Restarts+uint64(st.Quarantined)+st.Shed+st.DroppedQuarantined+st.StaleSkips+st.DegradedRetunes > 0 {
		fmt.Printf("health: %d shard restarts, %d quarantined, %d accesses shed, %d dropped at quarantined shards, %d stale rounds skipped, %d degraded re-tunes\n",
			st.Restarts, st.Quarantined, st.Shed, st.DroppedQuarantined, st.StaleSkips, st.DegradedRetunes)
	}
	if st.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d periodic writes\n", st.Checkpoints)
	}
	final := s.Current()
	epochMu.Lock()
	log := append([]*serve.Epoch(nil), epochLog...)
	epochMu.Unlock()
	fmt.Println("epoch history:")
	for _, ep := range log {
		describeEpoch(ep)
	}
	if len(log) == 0 || log[len(log)-1].Seq != final.Seq {
		describeEpoch(final)
	}
	if *checkpoint != "" {
		fmt.Printf("state checkpointed to %s (resume with -resume)\n", *checkpoint)
	}
}

func describeEpoch(ep *serve.Epoch) {
	switch {
	case ep.Seq == 1:
		fmt.Printf("  epoch %d: conventional modulo indexing (boot)\n", ep.Seq)
	case ep.Changed:
		improved := ""
		if ep.Baseline > 0 {
			improved = fmt.Sprintf(", %.1f%% under modulo baseline", 100*(1-float64(ep.Estimated)/float64(ep.Baseline)))
		}
		fmt.Printf("  epoch %d (window %d): hot-swapped, estimate %d -> %d%s\n",
			ep.Seq, ep.Window, ep.PrevEstimated, ep.Estimated, improved)
	default:
		fmt.Printf("  epoch %d (window %d): kept previous function, estimate %d\n",
			ep.Seq, ep.Window, ep.Estimated)
	}
}

// benchNames expands the -bench flag: "mix" becomes a spread across
// the suites, anything else is a comma-separated list.
func benchNames(flagVal string) []string {
	if flagVal == "mix" {
		return []string{"fft", "rijndael", "adpcm_dec", "compress", "susan", "crc"}
	}
	var names []string
	for _, name := range strings.Split(flagVal, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// streamClient writes one client's access stream: frames of the wire
// codec, cycling through its benchmark list (a new benchmark per trace
// exhaustion — the phase shifts that trigger re-tunes) until the
// access budget is spent.
func streamClient(ctx context.Context, w io.Writer, clientID uint64, names []string, scale, blockBytes, addrBits, batch int, budget uint64) error {
	bw := serve.NewBatchWriter(w)
	// Stagger phase order per client so the mix overlaps.
	idx := int(clientID) % len(names)
	var sent uint64
	for sent < budget {
		if err := ctx.Err(); err != nil {
			return nil
		}
		wl, err := workloads.ByName(names[idx])
		if err != nil {
			return err
		}
		idx = (idx + 1) % len(names)
		blocks := wl.Data(scale).Blocks(blockBytes, addrBits)
		for off := 0; off < len(blocks) && sent < budget; off += batch {
			end := off + batch
			if end > len(blocks) {
				end = len(blocks)
			}
			if rem := budget - sent; uint64(end-off) > rem {
				end = off + int(rem)
			}
			if err := bw.WriteBatch(clientID, blocks[off:end]); err != nil {
				return err
			}
			sent += uint64(end - off)
		}
	}
	return nil
}
