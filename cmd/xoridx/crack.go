// The crack subcommand: the repository's pipeline run backwards. A
// hidden XOR index function is planted in a simulated direct-mapped
// cache, and the attacker side recovers it from black-box probe
// behaviour alone (internal/crack), verifying the recovery against the
// plant up to the invertible output transforms a black box cannot see.
//
// Usage:
//
//	xoridx crack -n 16 -m 8 -trials 20                  # randomized self-test sweep
//	xoridx crack -n 16 -m 8 -strategy both              # compare naive vs group testing
//	xoridx crack -n 16 -m 8 -noise 0.02 -repeats 4      # noisy oracle + majority vote
//	xoridx crack -n 16 -m 8 -oracle evict               # membership-test-only oracle
//	xoridx crack -plant h.mat                           # crack one specific matrix
//	xoridx crack -trace fft.xtr -n 14 -m 7 -seed 3      # passive trace-driven mode
//
// Self-test mode plants -trials random functions (mixing in
// rank-deficient ones unless -rank pins the rank) and cracks each with
// the selected strategies; the run fails unless every recovery is
// set-mapping equivalent to its plant with an index-transform witness.
// Trace mode never probes: it replays an existing workload trace
// through the planted cache, watches only the hit/miss stream, and
// reports how much of the null space those passive observations pin.
package main

import (
	"flag"
	"fmt"
	"os"

	"xoridx/internal/cliutil"
	"xoridx/internal/crack"
	"xoridx/internal/gf2"
)

func crackMain(args []string) {
	fs := flag.NewFlagSet("xoridx crack", flag.ExitOnError)
	addrBits := fs.Int("n", 16, "hashed block-address bits of the hidden function")
	setBits := fs.Int("m", 8, "set-index bits of the hidden function")
	rank := fs.Int("rank", 0, "planted column rank (0 = mix full-rank and rank-deficient plants)")
	trials := fs.Int("trials", 20, "randomized plants to crack in self-test mode")
	seed := fs.Int64("seed", 1, "base seed for plants and noise")
	strategy := fs.String("strategy", "both", "probe strategy: naive, group, both")
	oracle := fs.String("oracle", "hitmiss", "observation style: hitmiss, evict")
	noise := fs.Float64("noise", 0, "spurious-miss probability per probe in [0,1)")
	repeats := fs.Int("repeats", 0, "majority-vote repetitions: each logical query asks the oracle 2*repeats+1 times")
	plantFile := fs.String("plant", "", "plant this matrix file (from -save) instead of random functions")
	traceFile := fs.String("trace", "", "passive mode: recover from this workload trace's hit/miss stream instead of probing")
	blockBytes := fs.Int("block", 4, "cache block size in bytes (trace mode address-to-block mapping)")
	saveFn := fs.String("save", "", "write the last recovered matrix to this file")
	verbose := fs.Bool("verbose", false, "print planted and recovered matrices")
	fs.Parse(args)

	var strategies []crack.Strategy
	switch *strategy {
	case "naive":
		strategies = []crack.Strategy{crack.Naive}
	case "group":
		strategies = []crack.Strategy{crack.GroupTesting}
	case "both":
		strategies = []crack.Strategy{crack.Naive, crack.GroupTesting}
	default:
		cliutil.Usagef("xoridx crack", "unknown strategy %q (want naive, group or both)", *strategy)
	}
	var style crack.Style
	switch *oracle {
	case "hitmiss":
		style = crack.HitMiss
	case "evict":
		style = crack.EvictionSet
	default:
		cliutil.Usagef("xoridx crack", "unknown oracle style %q (want hitmiss or evict)", *oracle)
	}
	if *noise < 0 || *noise >= 1 {
		cliutil.Usagef("xoridx crack", "noise %g outside [0, 1)", *noise)
	}
	if *noise > 0 && *repeats == 0 {
		fmt.Fprintln(os.Stderr, "xoridx crack: warning: -noise without -repeats leaves majority voting off")
	}

	// The plant schedule: one fixed matrix from -plant, or -trials
	// random ones (rank-deficient every third trial unless -rank pins
	// the rank).
	var plants []gf2.Matrix
	if *plantFile != "" {
		data, err := os.ReadFile(*plantFile)
		if err != nil {
			cliutil.Fatal("xoridx crack", err)
		}
		var h gf2.Matrix
		if err := h.UnmarshalText(data); err != nil {
			cliutil.Fatal("xoridx crack", err)
		}
		plants = []gf2.Matrix{h}
		*addrBits, *setBits = h.N, h.M
	} else {
		if *addrBits < 2 || *addrBits > gf2.MaxBits || *setBits < 1 || *setBits >= *addrBits {
			cliutil.Usagef("xoridx crack", "need 2 <= n <= %d and 1 <= m < n, got n=%d m=%d", gf2.MaxBits, *addrBits, *setBits)
		}
		if *rank < 0 || *rank > *setBits {
			cliutil.Usagef("xoridx crack", "rank %d outside [0, m=%d]", *rank, *setBits)
		}
		if *trials < 1 {
			cliutil.Usagef("xoridx crack", "need at least one trial")
		}
		for i := 0; i < *trials; i++ {
			r := *rank
			if r == 0 {
				r = *setBits
				if i%3 == 2 && r > 1 {
					r-- // mix in rank-deficient plants
				}
			}
			plants = append(plants, crack.RandomPlant(*addrBits, *setBits, r, *seed+int64(i)))
		}
	}
	for _, h := range plants {
		if r := h.Rank(); r > crack.MaxRecoverableRank {
			cliutil.Usagef("xoridx crack", "planted rank %d exceeds the recoverable maximum %d", r, crack.MaxRecoverableRank)
		}
	}

	if *traceFile != "" {
		crackTraceMode(plants[0], *traceFile, *blockBytes, *verbose)
		return
	}

	fmt.Printf("cracking: %d plants, n=%d m=%d, strategy %s, oracle %s, noise %g (repeats %d)\n",
		len(plants), *addrBits, *setBits, *strategy, *oracle, *noise, *repeats)
	totals := make(map[crack.Strategy]crack.Stats)
	logical := make(map[crack.Strategy]uint64)
	var last gf2.Matrix
	for i, h := range plants {
		for _, st := range strategies {
			var o crack.Oracle
			sim, err := crack.NewSimOracle(h, style)
			if err != nil {
				cliutil.Fatal("xoridx crack", err)
			}
			o = sim
			if *noise > 0 {
				o = crack.NewNoisyOracle(sim, *noise, *seed+int64(i))
			}
			res, err := crack.Crack(o, crack.Options{Strategy: st, Repeats: *repeats})
			if err != nil {
				cliutil.Fatal("xoridx crack", err)
			}
			if !crack.Equivalent(res.Matrix, h) {
				fmt.Fprintf(os.Stderr, "xoridx crack: trial %d (%s): recovered function NOT equivalent to plant\n", i, st)
				os.Exit(1)
			}
			if _, ok := crack.IndexTransform(res.Matrix, h); !ok {
				fmt.Fprintf(os.Stderr, "xoridx crack: trial %d (%s): no index transform onto the plant\n", i, st)
				os.Exit(1)
			}
			logical[st] += res.LogicalQueries
			t := totals[st]
			t.Queries += res.Stats.Queries
			t.Accesses += res.Stats.Accesses
			totals[st] = t
			last = res.Matrix
			fmt.Printf("  trial %d (%s): rank %d recovered, %d logical queries (%d probes, %d accesses) — equivalent, transform verified\n",
				i, st, res.Rank, res.LogicalQueries, res.Stats.Queries, res.Stats.Accesses)
			if *verbose {
				fmt.Printf("planted:\n%s\nrecovered:\n%s\n", h, res.Matrix)
			}
		}
	}
	fmt.Printf("all %d trials recovered set-mapping-equivalent functions\n", len(plants))
	if len(strategies) == 2 {
		n, g := logical[crack.Naive], logical[crack.GroupTesting]
		fmt.Printf("group testing: %d logical queries vs %d naive (%.1fx fewer); accesses %d vs %d\n",
			g, n, float64(n)/float64(g), totals[crack.GroupTesting].Accesses, totals[crack.Naive].Accesses)
	}
	saveMatrix(*saveFn, last)
}

// crackTraceMode is the passive attack: replay a real workload trace
// through the planted black box, observe only hits and misses, and
// report how much of the hidden null space the trace's reuse structure
// gives away.
func crackTraceMode(h gf2.Matrix, traceFile string, blockBytes int, verbose bool) {
	tr, err := cliutil.ReadTrace(traceFile)
	if err != nil {
		cliutil.Fatal("xoridx crack", err)
	}
	blocks := tr.Blocks(blockBytes, h.N)
	o, err := crack.NewSimOracle(h, crack.HitMiss)
	if err != nil {
		cliutil.Fatal("xoridx crack", err)
	}
	missed, err := crack.ObserveTrace(o, blocks)
	if err != nil {
		cliutil.Fatal("xoridx crack", err)
	}
	res, err := crack.CrackTrace(blocks, missed, h.N)
	if err != nil {
		cliutil.Fatal("xoridx crack", err)
	}
	null := h.NullSpace()
	for _, b := range res.Recovered.Basis {
		if !null.Contains(b) {
			fmt.Fprintln(os.Stderr, "xoridx crack: passive recovery left the true null space — observations inconsistent")
			os.Exit(1)
		}
	}
	fmt.Printf("passive crack of %s: %d accesses through planted %dx%d cache\n", traceFile, len(blocks), h.N, h.M)
	fmt.Printf("constraints: %d positives, %d negatives, %d disjunctions, %d inconsistent\n",
		res.Positives, res.Negatives, res.Disjunctions, res.Inconsistent)
	fmt.Printf("recovered %d of %d null-space dimensions", res.Recovered.Dim(), null.Dim())
	if res.Recovered.Equal(null) {
		fmt.Printf(" — complete: trace reuse pins the whole function\n")
	} else {
		fmt.Printf(" — partial: probe actively (drop -trace) to finish\n")
	}
	if verbose {
		fmt.Printf("planted:\n%s\nrecovered span:\n%s\n", h, res.Recovered)
	}
}

// saveMatrix mirrors the construct pipeline's -save flag.
func saveMatrix(path string, h gf2.Matrix) {
	if path == "" || h.N == 0 {
		return
	}
	data, err := h.MarshalText()
	if err != nil {
		cliutil.Fatal("xoridx crack", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		cliutil.Fatal("xoridx crack", err)
	}
	fmt.Printf("recovered matrix written to %s (re-evaluate with -apply)\n", path)
}
