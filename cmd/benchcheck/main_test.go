package main

import (
	"strings"
	"testing"
)

// goodFile returns a baseline that passes every rule, for the negative
// tests to perturb.
func goodFile() *benchFile {
	return &benchFile{
		Benchmark:   "BenchmarkBuild+BenchmarkBuildParallel",
		N:           16,
		CacheBlocks: 1024,
		GoVersion:   "go1.24.0",
		NumCPU:      8,
		Sequential: []seqResult{
			{Workload: "capacity-heavy", Accesses: 300000, NewAccessPerMs: 9000, RefAccessPerMs: 3000, SpeedupVsRef: 3.0},
			{Workload: "mixed", Accesses: 1000000, NewAccessPerMs: 8000, RefAccessPerMs: 7000, SpeedupVsRef: 1.14},
		},
		Parallel: []paraResult{
			{Workload: "capacity-heavy", Workers: 1, AccessPerMs: 9000, SpeedupVs1: 1.0},
			{Workload: "capacity-heavy", Workers: 2, AccessPerMs: 16000, SpeedupVs1: 1.78},
			{Workload: "capacity-heavy", Workers: 4, AccessPerMs: 27000, SpeedupVs1: 3.0},
			{Workload: "capacity-heavy", Workers: 8, AccessPerMs: 41000, SpeedupVs1: 4.56},
			{Workload: "mixed", Workers: 1, AccessPerMs: 8000, SpeedupVs1: 1.0},
			{Workload: "mixed", Workers: 2, AccessPerMs: 13000, SpeedupVs1: 1.63},
			{Workload: "mixed", Workers: 4, AccessPerMs: 21000, SpeedupVs1: 2.63},
			{Workload: "mixed", Workers: 8, AccessPerMs: 30000, SpeedupVs1: 3.75},
		},
		Mmap: &mmapResult{
			Accesses: 2000000, Mapped: true,
			MmapPerMs: 66000, BufferedPerMs: 55000, SpeedupVsBuffered: 1.2,
		},
		Sampled: []sampledRow{
			{K: 4, Accesses: 600000, ExactPerMs: 700, SampledPerMs: 2100, SpeedupVsExact: 3.0,
				Estimate: 301200, Exact: 300000, Margin: 2200, WithinBound: true},
			{K: 16, Accesses: 600000, ExactPerMs: 700, SampledPerMs: 4900, SpeedupVsExact: 7.0,
				Estimate: 296000, Exact: 300000, Margin: 4300, WithinBound: true},
			{K: 64, Accesses: 600000, ExactPerMs: 700, SampledPerMs: 8400, SpeedupVsExact: 12.0,
				Estimate: 310000, Exact: 300000, Margin: 10100, WithinBound: true},
		},
		Sketch: &sketchResult{
			Accesses: 160000, Width: 1 << 14, Depth: 4,
			Support: 250000, Violations: 0,
			SparseBytes: 12000000, SketchBytes: 720000,
			MemoryRatio: 12000000.0 / 720000, WithinBound: true,
		},
	}
}

// goodServeFile returns a serve baseline that passes every rule.
func goodServeFile() *serveFile {
	return &serveFile{
		Benchmark:  "BenchmarkServe",
		Accesses:   2000000,
		Clients:    8,
		CacheBytes: 4096,
		AddrBits:   16,
		GoVersion:  "go1.24.0",
		NumCPU:     8,
		Ingest: []ingestPoint{
			{Shards: 1, AccessPerMs: 1500, SpeedupVs1: 1.0},
			{Shards: 4, AccessPerMs: 4100, SpeedupVs1: 2.73},
			{Shards: 8, AccessPerMs: 5900, SpeedupVs1: 3.93},
		},
		SwapLatencyMs: 850.5,
		ShedOverhead: &shedOverhead{
			BlockingAccessPerMs: 4100,
			ShedAccessPerMs:     4018,
			OverheadPct:         (4100.0/4018 - 1) * 100,
		},
		Recovery: &recoveryPoint{Restarts: 1, RecoveryMs: 3.2, ResumedAccesses: 69632},
	}
}

func TestValidateAcceptsGoodBaseline(t *testing.T) {
	for _, perf := range []bool{false, true} {
		if err := validate(goodFile(), perf); err != nil {
			t.Fatalf("perf=%v: %v", perf, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		perf    bool
		mutate  func(*benchFile)
		wantSub string
	}{
		{
			name: "single-core parallel baseline",
			perf: true,
			mutate: func(f *benchFile) {
				f.NumCPU = 1
				// A 1-CPU recording has flat speedups — plausible-looking,
				// but the num_cpu rule must reject it before the curve is
				// even examined.
				for i := range f.Parallel {
					f.Parallel[i].SpeedupVs1 = 1.0
					f.Parallel[i].AccessPerMs = f.Parallel[0].AccessPerMs
				}
			},
			wantSub: "num_cpu = 1",
		},
		{
			name: "non-monotone speedup within core count",
			perf: true,
			mutate: func(f *benchFile) {
				f.Parallel[2].SpeedupVs1 = 1.5 // 4 workers slower than 2
			},
			wantSub: "not monotone",
		},
		{
			name: "monotone tolerance absorbs small dips",
			perf: true,
			mutate: func(f *benchFile) {
				f.Parallel[3].SpeedupVs1 = f.Parallel[2].SpeedupVs1 * 0.99
			},
			wantSub: "", // within the 3% noise band: accepted
		},
		{
			name: "oversubscribed dip is informational",
			perf: true,
			mutate: func(f *benchFile) {
				f.NumCPU = 4
				f.Parallel[3].SpeedupVs1 = 2.0 // 8 workers > num_cpu may dip
				f.Parallel[7].SpeedupVs1 = 2.0
			},
			wantSub: "",
		},
		{
			name: "capacity-heavy below 1.6x at 4 workers",
			perf: true,
			mutate: func(f *benchFile) {
				f.Parallel[1].SpeedupVs1 = 1.1
				f.Parallel[2].SpeedupVs1 = 1.2
				f.Parallel[3].SpeedupVs1 = 1.3
			},
			wantSub: "< 1.6x",
		},
		{
			name: "missing workers=1 anchor",
			perf: false,
			mutate: func(f *benchFile) {
				f.Parallel = f.Parallel[1:4]
			},
			wantSub: "no workers=1 row",
		},
		{
			name: "workers=1 speedup not 1",
			perf: false,
			mutate: func(f *benchFile) {
				f.Parallel[0].SpeedupVs1 = 1.2
			},
			wantSub: "want 1",
		},
		{
			name: "untagged parallel row",
			perf: false,
			mutate: func(f *benchFile) {
				f.Parallel[0].Workload = ""
			},
			wantSub: "empty workload tag",
		},
		{
			name: "duplicate parallel point",
			perf: false,
			mutate: func(f *benchFile) {
				f.Parallel[1] = f.Parallel[0]
			},
			wantSub: "duplicate point",
		},
		{
			name: "missing capacity-heavy parallel rows",
			perf: true,
			mutate: func(f *benchFile) {
				f.Parallel = f.Parallel[4:]
			},
			wantSub: "no capacity-heavy workload in parallel section",
		},
		{
			name: "no workers=4 row on a multi-core runner",
			perf: true,
			mutate: func(f *benchFile) {
				f.Parallel = append(f.Parallel[:2], f.Parallel[3:]...)
			},
			wantSub: "no workers=4 row",
		},
		{
			name: "sequential contract still enforced",
			perf: true,
			mutate: func(f *benchFile) {
				f.Sequential[0].SpeedupVsRef = 1.5
			},
			wantSub: "< 2x",
		},
		{
			name:    "missing mmap section",
			mutate:  func(f *benchFile) { f.Mmap = nil },
			wantSub: "no mmap section",
		},
		{
			name:    "buffered-fallback mmap recording",
			mutate:  func(f *benchFile) { f.Mmap.Mapped = false },
			wantSub: "buffered fallback",
		},
		{
			name: "mmap speedup contradicts its rates",
			mutate: func(f *benchFile) {
				f.Mmap.SpeedupVsBuffered = 2.0 // rates say 1.2
			},
			wantSub: "does not match its rates",
		},
		{
			name: "mmap slower than buffered fails -perf only",
			perf: true,
			mutate: func(f *benchFile) {
				f.Mmap.MmapPerMs = 49500
				f.Mmap.SpeedupVsBuffered = 0.9
			},
			wantSub: "< 1.0x",
		},
		{
			name: "mmap slower than buffered passes without -perf",
			mutate: func(f *benchFile) {
				f.Mmap.MmapPerMs = 49500
				f.Mmap.SpeedupVsBuffered = 0.9
			},
			wantSub: "",
		},
		{
			name:    "missing sampled section",
			mutate:  func(f *benchFile) { f.Sampled = nil },
			wantSub: "no sampled section",
		},
		{
			name:    "sampled k not ascending",
			mutate:  func(f *benchFile) { f.Sampled[1].K = 4 },
			wantSub: "not ascending",
		},
		{
			name:    "sampled row with zero margin",
			mutate:  func(f *benchFile) { f.Sampled[0].Margin = 0 },
			wantSub: "margin = 0",
		},
		{
			name: "within_bound contradicts the recorded numbers",
			mutate: func(f *benchFile) {
				f.Sampled[1].Estimate = f.Sampled[1].Exact + f.Sampled[1].Margin + 1
			},
			wantSub: "contradicts",
		},
		{
			name: "out-of-bound sampled estimate fails -perf",
			perf: true,
			mutate: func(f *benchFile) {
				f.Sampled[1].Estimate = f.Sampled[1].Exact + f.Sampled[1].Margin + 1
				f.Sampled[1].WithinBound = false
			},
			wantSub: "more than its margin",
		},
		{
			name: "missing k=16 sampled row fails -perf",
			perf: true,
			mutate: func(f *benchFile) {
				f.Sampled = append(f.Sampled[:1], f.Sampled[2:]...)
			},
			wantSub: "no k=16 sampled row",
		},
		{
			name: "sampled k=16 below 4x fails -perf",
			perf: true,
			mutate: func(f *benchFile) {
				f.Sampled[1].SampledPerMs = 2100
				f.Sampled[1].SpeedupVsExact = 3.0
			},
			wantSub: "< 4x",
		},
		{
			name:    "missing sketch section",
			mutate:  func(f *benchFile) { f.Sketch = nil },
			wantSub: "no sketch section",
		},
		{
			name:    "sketch width not a power of two",
			mutate:  func(f *benchFile) { f.Sketch.Width = 10000 },
			wantSub: "not a positive power of two",
		},
		{
			name:    "empty sketch differential",
			mutate:  func(f *benchFile) { f.Sketch.Support = 0 },
			wantSub: "witnesses nothing",
		},
		{
			name: "sketch memory ratio contradicts its byte counts",
			mutate: func(f *benchFile) {
				f.Sketch.MemoryRatio = 30
			},
			wantSub: "does not match its byte counts",
		},
		{
			name: "sketch below 10x memory saving fails -perf",
			perf: true,
			mutate: func(f *benchFile) {
				f.Sketch.SketchBytes = 6000000
				f.Sketch.MemoryRatio = 2
			},
			wantSub: "< 10x",
		},
		{
			name: "sketch outside its bound fails -perf",
			perf: true,
			mutate: func(f *benchFile) {
				f.Sketch.Violations = f.Sketch.Support / 2
				f.Sketch.WithinBound = false
			},
			wantSub: "(ε,δ) bound",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFile()
			tc.mutate(f)
			err := validate(f, tc.perf)
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted a baseline that should fail with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateServeAcceptsGoodBaseline(t *testing.T) {
	for _, perf := range []bool{false, true} {
		if err := validateServe(goodServeFile(), perf); err != nil {
			t.Fatalf("perf=%v: %v", perf, err)
		}
	}
}

func TestValidateServeRejections(t *testing.T) {
	cases := []struct {
		name    string
		perf    bool
		mutate  func(*serveFile)
		wantSub string
	}{
		{
			name:    "wrong benchmark name",
			mutate:  func(f *serveFile) { f.Benchmark = "BenchmarkBuild" },
			wantSub: "want BenchmarkServe",
		},
		{
			name:    "no ingest rows",
			mutate:  func(f *serveFile) { f.Ingest = nil },
			wantSub: "no ingest section",
		},
		{
			name:    "non-power-of-two shards",
			mutate:  func(f *serveFile) { f.Ingest[1].Shards = 3 },
			wantSub: "not a positive power of two",
		},
		{
			name:    "duplicate shard point",
			mutate:  func(f *serveFile) { f.Ingest[2] = f.Ingest[1] },
			wantSub: "duplicate shards=4",
		},
		{
			name:    "missing shards=1 anchor",
			mutate:  func(f *serveFile) { f.Ingest = f.Ingest[1:] },
			wantSub: "no shards=1 row",
		},
		{
			name:    "shards=1 speedup not 1",
			mutate:  func(f *serveFile) { f.Ingest[0].SpeedupVs1 = 1.2 },
			wantSub: "want 1",
		},
		{
			name:    "non-positive throughput",
			mutate:  func(f *serveFile) { f.Ingest[1].AccessPerMs = 0 },
			wantSub: "accesses_per_ms",
		},
		{
			name:    "non-positive swap latency",
			mutate:  func(f *serveFile) { f.SwapLatencyMs = 0 },
			wantSub: "swap_latency_ms",
		},
		{
			name:    "single-core num_cpu is fine for serve",
			mutate:  func(f *serveFile) { f.NumCPU = 1 },
			wantSub: "",
		},
		{
			name:    "zero clients",
			mutate:  func(f *serveFile) { f.Clients = 0 },
			wantSub: "clients = 0",
		},
		{
			name:    "missing shed_overhead section",
			mutate:  func(f *serveFile) { f.ShedOverhead = nil },
			wantSub: "no shed_overhead section",
		},
		{
			name:    "shed_overhead with zero throughput",
			mutate:  func(f *serveFile) { f.ShedOverhead.ShedAccessPerMs = 0 },
			wantSub: "non-positive throughput",
		},
		{
			name: "overhead_pct contradicts its rates",
			mutate: func(f *serveFile) {
				// Claims near-free shedding while the rates say ~25%.
				f.ShedOverhead.ShedAccessPerMs = f.ShedOverhead.BlockingAccessPerMs * 0.8
				f.ShedOverhead.OverheadPct = 0.1
			},
			wantSub: "does not match its rates",
		},
		{
			name:    "missing recovery section",
			mutate:  func(f *serveFile) { f.Recovery = nil },
			wantSub: "no recovery section",
		},
		{
			name:    "recovery without a restart",
			mutate:  func(f *serveFile) { f.Recovery.Restarts = 0 },
			wantSub: "zero restarts",
		},
		{
			name:    "recovery resumed nothing",
			mutate:  func(f *serveFile) { f.Recovery.ResumedAccesses = 0 },
			wantSub: "resumed_accesses = 0",
		},
		{
			name: "shed overhead above the perf contract",
			perf: true,
			mutate: func(f *serveFile) {
				f.ShedOverhead.ShedAccessPerMs = f.ShedOverhead.BlockingAccessPerMs / 1.12
				f.ShedOverhead.OverheadPct = 12
			},
			wantSub: "> 5%",
		},
		{
			name: "12% shed overhead passes without -perf",
			mutate: func(f *serveFile) {
				f.ShedOverhead.ShedAccessPerMs = f.ShedOverhead.BlockingAccessPerMs / 1.12
				f.ShedOverhead.OverheadPct = 12
			},
			wantSub: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodServeFile()
			tc.mutate(f)
			err := validateServe(f, tc.perf)
			if tc.wantSub == "" {
				if err != nil {
					t.Fatalf("unexpected rejection: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted a baseline that should fail with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// goodCrackFile returns a crack baseline that passes every rule.
func goodCrackFile() *crackFile {
	return &crackFile{
		Benchmark: "BenchmarkCrack",
		Oracle:    "evict",
		GoVersion: "go1.24.0",
		NumCPU:    8,
		Geometries: []crackRow{
			{
				N: 16, M: 8, Rank: 8,
				Naive:          crackStrategy{LogicalQueries: 1325, Probes: 1325, Accesses: 3975, MsPerCrack: 0.22},
				Group:          crackStrategy{LogicalQueries: 88, Probes: 88, Accesses: 4527, MsPerCrack: 0.16},
				QueryReduction: 1325.0 / 88,
				Verified:       true,
			},
			{
				N: 16, M: 8, Rank: 5,
				Naive:          crackStrategy{LogicalQueries: 237, Probes: 237, Accesses: 711, MsPerCrack: 0.03},
				Group:          crackStrategy{LogicalQueries: 82, Probes: 82, Accesses: 899, MsPerCrack: 0.05},
				QueryReduction: 237.0 / 82,
				Verified:       true,
			},
		},
	}
}

func TestValidateCrackAcceptsGoodBaseline(t *testing.T) {
	if err := validateCrack(goodCrackFile()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCrackRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*crackFile)
		wantSub string
	}{
		{
			name: "group testing stopped winning",
			mutate: func(f *crackFile) {
				// The headline invariant: probe counts are deterministic,
				// so group >= naive is an algorithmic regression.
				g := &f.Geometries[0]
				g.Group = g.Naive
				g.QueryReduction = 1
			},
			wantSub: "the reduction is the point",
		},
		{
			name:    "wrong benchmark name",
			mutate:  func(f *crackFile) { f.Benchmark = "BenchmarkServe" },
			wantSub: "want BenchmarkCrack",
		},
		{
			name:    "unknown oracle style",
			mutate:  func(f *crackFile) { f.Oracle = "telepathy" },
			wantSub: "oracle",
		},
		{
			name:    "empty geometry list",
			mutate:  func(f *crackFile) { f.Geometries = nil },
			wantSub: "no geometries",
		},
		{
			name:    "unverified recovery",
			mutate:  func(f *crackFile) { f.Geometries[1].Verified = false },
			wantSub: "not verified",
		},
		{
			name: "rank-deficient coverage lost",
			mutate: func(f *crackFile) {
				f.Geometries[1].N = 17 // keep the key unique
				f.Geometries[1].Rank = f.Geometries[1].M
			},
			wantSub: "rank-deficient",
		},
		{
			name:    "rank above m",
			mutate:  func(f *crackFile) { f.Geometries[0].Rank = 9 },
			wantSub: "rank outside",
		},
		{
			name:    "degenerate geometry",
			mutate:  func(f *crackFile) { f.Geometries[0].M = 16 },
			wantSub: "1 <= m < n",
		},
		{
			name: "duplicate geometry",
			mutate: func(f *crackFile) {
				f.Geometries[1] = f.Geometries[0]
			},
			wantSub: "duplicate geometry",
		},
		{
			name:    "zero probe counts",
			mutate:  func(f *crackFile) { f.Geometries[0].Group.Probes = 0 },
			wantSub: "zero probe counts",
		},
		{
			name: "probes below logical queries",
			mutate: func(f *crackFile) {
				f.Geometries[0].Naive.Probes = f.Geometries[0].Naive.LogicalQueries - 1
			},
			wantSub: "logical queries",
		},
		{
			name: "accesses below probes",
			mutate: func(f *crackFile) {
				f.Geometries[0].Group.Accesses = f.Geometries[0].Group.Probes - 1
			},
			wantSub: "accesses",
		},
		{
			name:    "non-positive crack time",
			mutate:  func(f *crackFile) { f.Geometries[0].Naive.MsPerCrack = 0 },
			wantSub: "ms_per_crack",
		},
		{
			name:    "query_reduction drifted from counts",
			mutate:  func(f *crackFile) { f.Geometries[0].QueryReduction = 2 },
			wantSub: "does not match counts",
		},
		{
			name:    "missing go_version",
			mutate:  func(f *crackFile) { f.GoVersion = "" },
			wantSub: "go_version",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodCrackFile()
			tc.mutate(f)
			err := validateCrack(f)
			if err == nil {
				t.Fatalf("accepted a baseline that should fail with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}
