// Command benchcheck validates a BENCH_profile.json emitted by the
// profiling benchmarks (BenchmarkBuild / BenchmarkBuildParallel in
// bench_test.go), a BENCH_serve.json emitted by BenchmarkServe
// (bench_serve_test.go), or a BENCH_crack.json emitted by
// BenchmarkCrack (bench_crack_test.go): it fails with a non-zero exit
// on malformed JSON, missing sections, or nonsensical numbers, so CI
// catches a benchmark that silently emitted garbage. The file kind is
// routed on the "benchmark" field, so all spellings work:
//
// Usage:
//
//	benchcheck [-perf] [BENCH_profile.json]
//	benchcheck BENCH_serve.json
//	benchcheck BENCH_crack.json
//
// Crack baselines carry one unconditional invariant (no -perf needed):
// on every recorded geometry the group-testing strategy must have
// recovered the planted function with strictly fewer logical oracle
// queries than naive per-bit probing, with the recovery verified
// against the plant — probe counts are deterministic, so a loss there
// is an algorithmic regression, not noise. The schedule must also keep
// at least one rank-deficient plant so that coverage cannot silently
// disappear.
//
// With -perf it additionally enforces the performance contracts.
// For serve baselines that is the §16 overload-control contract —
// enabling Shed may cost at most 5% on the uncontended ingest fast
// path (there is no shard-scaling contract, since shard scaling
// depends on the runner's core count). For profile baselines:
//
//   - Sequential (PR 5): the capacity-heavy workload must run at least
//     2x faster than the pre-overhaul reference builder and no workload
//     may regress more than 5% against it.
//   - Parallel: the baseline must come from a multi-core runner
//     (num_cpu >= 2 — a single-core recording cannot witness parallel
//     speedup and is rejected as stale), each workload's speedup_vs_1
//     must be monotone non-decreasing in the worker count up to num_cpu
//     (3% tolerance for measurement noise), and the capacity-heavy
//     workload must reach at least 1.6x at 4 workers when the runner
//     has 4 or more CPUs.
//   - Out-of-core (PR 10, DESIGN.md §17): the mmap reader must at least
//     match the buffered reader, every sampled row must keep the exact
//     Eq. 4 value inside its confidence margin with the k=16 build at
//     >= 4x the exact build, and the count-min sketch must spend at
//     least 10x less histogram memory than the sparse map while
//     honoring its (ε,δ) bound.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// The mirror of bench_test.go's benchProfileFile schema. Unknown fields
// are rejected so a drifting emitter fails loudly here instead of
// producing a file nobody validates.
type benchFile struct {
	Benchmark   string        `json:"benchmark"`
	N           int           `json:"n"`
	CacheBlocks int           `json:"cache_blocks"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Sequential  []seqResult   `json:"sequential"`
	Parallel    []paraResult  `json:"parallel"`
	Mmap        *mmapResult   `json:"mmap"`
	Sampled     []sampledRow  `json:"sampled"`
	Sketch      *sketchResult `json:"sketch"`
}

type seqResult struct {
	Workload       string  `json:"workload"`
	Accesses       int     `json:"accesses"`
	NewAccessPerMs float64 `json:"new_accesses_per_ms"`
	RefAccessPerMs float64 `json:"ref_accesses_per_ms"`
	SpeedupVsRef   float64 `json:"speedup_vs_ref"`
}

type paraResult struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	AccessPerMs float64 `json:"accesses_per_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
}

type mmapResult struct {
	Accesses          int     `json:"accesses"`
	Mapped            bool    `json:"mapped"`
	MmapPerMs         float64 `json:"mmap_accesses_per_ms"`
	BufferedPerMs     float64 `json:"buffered_accesses_per_ms"`
	SpeedupVsBuffered float64 `json:"speedup_vs_buffered"`
}

type sampledRow struct {
	K              uint64  `json:"k"`
	Accesses       int     `json:"accesses"`
	ExactPerMs     float64 `json:"exact_accesses_per_ms"`
	SampledPerMs   float64 `json:"sampled_accesses_per_ms"`
	SpeedupVsExact float64 `json:"speedup_vs_exact"`
	Estimate       uint64  `json:"estimate"`
	Exact          uint64  `json:"exact"`
	Margin         uint64  `json:"margin"`
	WithinBound    bool    `json:"within_bound"`
}

type sketchResult struct {
	Accesses    int     `json:"accesses"`
	Width       int     `json:"width"`
	Depth       int     `json:"depth"`
	Support     int     `json:"support"`
	Violations  int     `json:"violations"`
	SparseBytes int     `json:"sparse_bytes"`
	SketchBytes int     `json:"sketch_bytes"`
	MemoryRatio float64 `json:"memory_ratio"`
	WithinBound bool    `json:"within_bound"`
}

// The mirror of bench_serve_test.go's BENCH_serve.json schema.
type serveFile struct {
	Benchmark     string         `json:"benchmark"`
	Accesses      int            `json:"accesses"`
	Clients       int            `json:"clients"`
	CacheBytes    int            `json:"cache_bytes"`
	AddrBits      int            `json:"addr_bits"`
	GoVersion     string         `json:"go_version"`
	NumCPU        int            `json:"num_cpu"`
	Ingest        []ingestPoint  `json:"ingest"`
	SwapLatencyMs float64        `json:"swap_latency_ms"`
	ShedOverhead  *shedOverhead  `json:"shed_overhead"`
	Recovery      *recoveryPoint `json:"recovery"`
}

type ingestPoint struct {
	Shards      int     `json:"shards"`
	AccessPerMs float64 `json:"accesses_per_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
}

type shedOverhead struct {
	BlockingAccessPerMs float64 `json:"blocking_accesses_per_ms"`
	ShedAccessPerMs     float64 `json:"shed_accesses_per_ms"`
	OverheadPct         float64 `json:"overhead_pct"`
}

type recoveryPoint struct {
	Restarts        uint64  `json:"restarts"`
	RecoveryMs      float64 `json:"recovery_ms"`
	ResumedAccesses uint64  `json:"resumed_accesses"`
}

// The mirror of bench_crack_test.go's BENCH_crack.json schema.
type crackFile struct {
	Benchmark  string     `json:"benchmark"`
	Oracle     string     `json:"oracle"`
	GoVersion  string     `json:"go_version"`
	NumCPU     int        `json:"num_cpu"`
	Geometries []crackRow `json:"geometries"`
}

type crackRow struct {
	N              int           `json:"n"`
	M              int           `json:"m"`
	Rank           int           `json:"rank"`
	Naive          crackStrategy `json:"naive"`
	Group          crackStrategy `json:"group"`
	QueryReduction float64       `json:"query_reduction"`
	Verified       bool          `json:"verified"`
}

type crackStrategy struct {
	LogicalQueries uint64  `json:"logical_queries"`
	Probes         uint64  `json:"probes"`
	Accesses       uint64  `json:"accesses"`
	MsPerCrack     float64 `json:"ms_per_crack"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	perf := flag.Bool("perf", false, "also enforce the hot-path speedup contract (capacity-heavy >= 2x, no workload below 0.95x)")
	flag.Parse()
	path := "BENCH_profile.json"
	if flag.NArg() > 1 {
		fail("usage: benchcheck [-perf] [BENCH_profile.json]")
	}
	if flag.NArg() == 1 {
		path = flag.Arg(0)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	// Route on the benchmark name: the serve baseline has its own shape.
	var probe struct {
		Benchmark string `json:"benchmark"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		fail("%s: malformed JSON: %v", path, err)
	}
	if probe.Benchmark == "BenchmarkCrack" {
		var f crackFile
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&f); err != nil {
			fail("%s: malformed JSON: %v", path, err)
		}
		if *perf {
			fail("%s: -perf applies to profile baselines only", path)
		}
		if err := validateCrack(&f); err != nil {
			fail("%s: %v", path, err)
		}
		fmt.Printf("benchcheck: %s OK (%d geometries, group testing %.1f-%.1fx fewer queries)\n",
			path, len(f.Geometries), minReduction(f.Geometries), maxReduction(f.Geometries))
		return
	}
	if probe.Benchmark == "BenchmarkServe" {
		var f serveFile
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&f); err != nil {
			fail("%s: malformed JSON: %v", path, err)
		}
		if err := validateServe(&f, *perf); err != nil {
			fail("%s: %v", path, err)
		}
		fmt.Printf("benchcheck: %s OK (%d ingest points, swap %.1f ms, shed overhead %.1f%%, recovery %.1f ms)\n",
			path, len(f.Ingest), f.SwapLatencyMs, f.ShedOverhead.OverheadPct, f.Recovery.RecoveryMs)
		return
	}
	var f benchFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		fail("%s: malformed JSON: %v", path, err)
	}
	if err := validate(&f, *perf); err != nil {
		fail("%s: %v", path, err)
	}
	fmt.Printf("benchcheck: %s OK (%d sequential workloads, %d parallel points, mmap %.2fx, %d sampled rows, sketch %.1fx smaller)\n",
		path, len(f.Sequential), len(f.Parallel), f.Mmap.SpeedupVsBuffered, len(f.Sampled), f.Sketch.MemoryRatio)
}

// validateCrack holds a BENCH_crack.json to its invariants: sane
// geometries (at least one of them rank-deficient), verified
// recoveries, positive probe costs consistent across the two counters
// (logical <= probes, accesses >= probes since every probe touches
// memory), a query_reduction that matches the recorded counts, and —
// the headline — group testing strictly beating naive probing on
// logical queries for every geometry.
func validateCrack(f *crackFile) error {
	if f.Benchmark != "BenchmarkCrack" {
		return fmt.Errorf("benchmark = %q, want BenchmarkCrack", f.Benchmark)
	}
	if f.Oracle != "hitmiss" && f.Oracle != "evict" {
		return fmt.Errorf("oracle = %q, want hitmiss or evict", f.Oracle)
	}
	if f.GoVersion == "" {
		return fmt.Errorf("empty go_version")
	}
	if f.NumCPU <= 0 {
		return fmt.Errorf("num_cpu = %d out of range", f.NumCPU)
	}
	if len(f.Geometries) == 0 {
		return fmt.Errorf("no geometries — run BenchmarkCrack with -benchtime=1x first")
	}
	deficient := false
	seen := map[string]bool{}
	for i, g := range f.Geometries {
		tag := fmt.Sprintf("geometries[%d] (n=%d m=%d rank=%d)", i, g.N, g.M, g.Rank)
		if g.N < 2 || g.N > 64 || g.M < 1 || g.M >= g.N {
			return fmt.Errorf("%s: need 2 <= n <= 64 and 1 <= m < n", tag)
		}
		if g.Rank < 1 || g.Rank > g.M {
			return fmt.Errorf("%s: rank outside [1, m]", tag)
		}
		key := fmt.Sprintf("%d/%d/%d", g.N, g.M, g.Rank)
		if seen[key] {
			return fmt.Errorf("%s: duplicate geometry", tag)
		}
		seen[key] = true
		if g.Rank < g.M {
			deficient = true
		}
		if !g.Verified {
			return fmt.Errorf("%s: recovery not verified against the plant", tag)
		}
		for _, s := range []struct {
			name string
			r    crackStrategy
		}{{"naive", g.Naive}, {"group", g.Group}} {
			if s.r.LogicalQueries == 0 || s.r.Probes == 0 || s.r.Accesses == 0 {
				return fmt.Errorf("%s: %s has zero probe counts", tag, s.name)
			}
			if s.r.Probes < s.r.LogicalQueries {
				return fmt.Errorf("%s: %s issued %d probes for %d logical queries", tag, s.name, s.r.Probes, s.r.LogicalQueries)
			}
			if s.r.Accesses < s.r.Probes {
				return fmt.Errorf("%s: %s recorded %d accesses for %d probes", tag, s.name, s.r.Accesses, s.r.Probes)
			}
			if s.r.MsPerCrack <= 0 {
				return fmt.Errorf("%s: %s ms_per_crack = %.3f", tag, s.name, s.r.MsPerCrack)
			}
		}
		if g.Group.LogicalQueries >= g.Naive.LogicalQueries {
			return fmt.Errorf("%s: group testing used %d logical queries, naive %d — the reduction is the point",
				tag, g.Group.LogicalQueries, g.Naive.LogicalQueries)
		}
		want := float64(g.Naive.LogicalQueries) / float64(g.Group.LogicalQueries)
		if g.QueryReduction < want*0.99 || g.QueryReduction > want*1.01 {
			return fmt.Errorf("%s: query_reduction = %.3f does not match counts (%.3f)", tag, g.QueryReduction, want)
		}
	}
	if !deficient {
		return fmt.Errorf("no rank-deficient geometry in the schedule")
	}
	return nil
}

func minReduction(rows []crackRow) float64 {
	out := rows[0].QueryReduction
	for _, r := range rows[1:] {
		if r.QueryReduction < out {
			out = r.QueryReduction
		}
	}
	return out
}

func maxReduction(rows []crackRow) float64 {
	out := rows[0].QueryReduction
	for _, r := range rows[1:] {
		if r.QueryReduction > out {
			out = r.QueryReduction
		}
	}
	return out
}

// validateServe holds a BENCH_serve.json to structural sanity: real
// geometry, non-empty shard sweep anchored at shards=1, positive
// throughput everywhere, a positive swap latency, a shed-overhead
// comparison whose percentage matches its own rates, and a recovery
// row witnessing at least one supervised restart. There is no
// shard-scaling contract — ingest is bound by the clients and the
// runner's cores, not the shard count alone — but -perf enforces the
// §16 overload-control contract: enabling Shed may cost at most 5% on
// the uncontended ingest fast path.
func validateServe(f *serveFile, perf bool) error {
	if f.Benchmark != "BenchmarkServe" {
		return fmt.Errorf("benchmark = %q, want BenchmarkServe", f.Benchmark)
	}
	if f.Accesses <= 0 {
		return fmt.Errorf("accesses = %d out of range", f.Accesses)
	}
	if f.Clients <= 0 {
		return fmt.Errorf("clients = %d out of range", f.Clients)
	}
	if f.CacheBytes <= 0 {
		return fmt.Errorf("cache_bytes = %d out of range", f.CacheBytes)
	}
	if f.AddrBits <= 0 || f.AddrBits > 64 {
		return fmt.Errorf("addr_bits = %d out of range", f.AddrBits)
	}
	if f.GoVersion == "" {
		return fmt.Errorf("empty go_version")
	}
	if f.NumCPU <= 0 {
		return fmt.Errorf("num_cpu = %d out of range", f.NumCPU)
	}
	if len(f.Ingest) == 0 {
		return fmt.Errorf("no ingest section — run BenchmarkServe with -benchtime=1x first")
	}
	seen := map[int]bool{}
	anchored := false
	for i, p := range f.Ingest {
		if p.Shards <= 0 || p.Shards&(p.Shards-1) != 0 {
			return fmt.Errorf("ingest[%d]: shards = %d not a positive power of two", i, p.Shards)
		}
		if seen[p.Shards] {
			return fmt.Errorf("ingest[%d]: duplicate shards=%d point", i, p.Shards)
		}
		seen[p.Shards] = true
		if p.AccessPerMs <= 0 {
			return fmt.Errorf("ingest[shards=%d]: accesses_per_ms = %.3f", p.Shards, p.AccessPerMs)
		}
		if p.SpeedupVs1 <= 0 {
			return fmt.Errorf("ingest[shards=%d]: speedup_vs_1 = %.3f", p.Shards, p.SpeedupVs1)
		}
		if p.Shards == 1 {
			anchored = true
			if p.SpeedupVs1 < 0.999 || p.SpeedupVs1 > 1.001 {
				return fmt.Errorf("ingest[shards=1]: speedup_vs_1 = %.3f, want 1", p.SpeedupVs1)
			}
		}
	}
	if !anchored {
		return fmt.Errorf("no shards=1 row to anchor speedup_vs_1")
	}
	if f.SwapLatencyMs <= 0 {
		return fmt.Errorf("swap_latency_ms = %.3f out of range", f.SwapLatencyMs)
	}
	if f.ShedOverhead == nil {
		return fmt.Errorf("no shed_overhead section — rerecord with the shed-overhead sub-benchmark")
	}
	so := f.ShedOverhead
	if so.BlockingAccessPerMs <= 0 || so.ShedAccessPerMs <= 0 {
		return fmt.Errorf("shed_overhead: non-positive throughput (blocking %.3f, shed %.3f)",
			so.BlockingAccessPerMs, so.ShedAccessPerMs)
	}
	want := (so.BlockingAccessPerMs/so.ShedAccessPerMs - 1) * 100
	if diff := so.OverheadPct - want; diff < -0.5 || diff > 0.5 {
		return fmt.Errorf("shed_overhead: overhead_pct = %.3f does not match its rates (%.3f)",
			so.OverheadPct, want)
	}
	if f.Recovery == nil {
		return fmt.Errorf("no recovery section — rerecord with the recovery sub-benchmark")
	}
	if f.Recovery.Restarts == 0 {
		return fmt.Errorf("recovery: zero restarts — the planted fault never fired")
	}
	if f.Recovery.RecoveryMs <= 0 {
		return fmt.Errorf("recovery: recovery_ms = %.3f out of range", f.Recovery.RecoveryMs)
	}
	if f.Recovery.ResumedAccesses == 0 {
		return fmt.Errorf("recovery: resumed_accesses = 0 — the healed shard served nothing")
	}
	if perf && so.OverheadPct > 5 {
		return fmt.Errorf("perf contract: shed fast path costs %.2f%% over blocking ingest (> 5%%)",
			so.OverheadPct)
	}
	return nil
}

func validate(f *benchFile, perf bool) error {
	if f.Benchmark == "" {
		return fmt.Errorf("empty benchmark name")
	}
	if f.N <= 0 || f.N > 64 {
		return fmt.Errorf("n = %d out of range", f.N)
	}
	if f.CacheBlocks <= 0 {
		return fmt.Errorf("cache_blocks = %d out of range", f.CacheBlocks)
	}
	if f.GoVersion == "" {
		return fmt.Errorf("empty go_version")
	}
	if f.NumCPU <= 0 {
		return fmt.Errorf("num_cpu = %d out of range", f.NumCPU)
	}
	if len(f.Sequential) == 0 {
		return fmt.Errorf("no sequential section — run BenchmarkBuild with -benchtime=1x first")
	}
	seen := map[string]bool{}
	for i, s := range f.Sequential {
		if s.Workload == "" {
			return fmt.Errorf("sequential[%d]: empty workload name", i)
		}
		if seen[s.Workload] {
			return fmt.Errorf("sequential[%d]: duplicate workload %q", i, s.Workload)
		}
		seen[s.Workload] = true
		if s.Accesses <= 0 {
			return fmt.Errorf("sequential[%q]: accesses = %d", s.Workload, s.Accesses)
		}
		if s.NewAccessPerMs <= 0 || s.RefAccessPerMs <= 0 {
			return fmt.Errorf("sequential[%q]: non-positive throughput (new %.3f, ref %.3f)",
				s.Workload, s.NewAccessPerMs, s.RefAccessPerMs)
		}
		if s.SpeedupVsRef <= 0 {
			return fmt.Errorf("sequential[%q]: speedup_vs_ref = %.3f", s.Workload, s.SpeedupVsRef)
		}
	}
	if len(f.Parallel) == 0 {
		return fmt.Errorf("no parallel section — run BenchmarkBuildParallel with -benchtime=1x first")
	}
	byWorkload := map[string][]paraResult{}
	seenPoint := map[string]bool{}
	for i, p := range f.Parallel {
		if p.Workload == "" {
			return fmt.Errorf("parallel[%d]: empty workload tag", i)
		}
		if p.Workers <= 0 {
			return fmt.Errorf("parallel[%d]: workers = %d", i, p.Workers)
		}
		key := fmt.Sprintf("%s/%d", p.Workload, p.Workers)
		if seenPoint[key] {
			return fmt.Errorf("parallel[%d]: duplicate point %s", i, key)
		}
		seenPoint[key] = true
		if p.AccessPerMs <= 0 {
			return fmt.Errorf("parallel[%s]: accesses_per_ms = %.3f", key, p.AccessPerMs)
		}
		if p.SpeedupVs1 <= 0 {
			return fmt.Errorf("parallel[%s]: speedup_vs_1 = %.3f", key, p.SpeedupVs1)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for name, rows := range byWorkload {
		sort.Slice(rows, func(i, j int) bool { return rows[i].Workers < rows[j].Workers })
		byWorkload[name] = rows
		if rows[0].Workers != 1 {
			return fmt.Errorf("parallel[%q]: no workers=1 row to anchor speedup_vs_1", name)
		}
		if s := rows[0].SpeedupVs1; s < 0.999 || s > 1.001 {
			return fmt.Errorf("parallel[%q]: workers=1 speedup_vs_1 = %.3f, want 1", name, s)
		}
	}
	if err := validateOutOfCore(f); err != nil {
		return err
	}
	if !perf {
		return nil
	}
	if !seen["capacity-heavy"] {
		return fmt.Errorf("perf contract: no capacity-heavy workload in sequential section")
	}
	for _, s := range f.Sequential {
		if s.Workload == "capacity-heavy" && s.SpeedupVsRef < 2 {
			return fmt.Errorf("perf contract: capacity-heavy speedup %.3fx < 2x", s.SpeedupVsRef)
		}
		if s.SpeedupVsRef < 0.95 {
			return fmt.Errorf("perf contract: %q regresses to %.3fx (< 0.95x) of the reference",
				s.Workload, s.SpeedupVsRef)
		}
	}
	if err := validateParallelPerf(f, byWorkload); err != nil {
		return err
	}
	return validateOutOfCorePerf(f)
}

// validateOutOfCore holds the §17 sections (mmap reader, sampled
// profiling, count-min sketch) to structural sanity: every section
// present, positive rates and sizes, ratios that match their own
// inputs, a mapped recording (a buffered-fallback run cannot witness
// the mmap contract), and a within_bound flag consistent with the
// recorded estimate, exact value and margin.
func validateOutOfCore(f *benchFile) error {
	if f.Mmap == nil {
		return fmt.Errorf("no mmap section — run BenchmarkBuildOutOfCore with -benchtime=1x first")
	}
	m := f.Mmap
	if m.Accesses <= 0 {
		return fmt.Errorf("mmap: accesses = %d out of range", m.Accesses)
	}
	if !m.Mapped {
		return fmt.Errorf("mmap: recorded with the buffered fallback — it cannot witness the mmap contract; rerecord where mmap works")
	}
	if m.MmapPerMs <= 0 || m.BufferedPerMs <= 0 {
		return fmt.Errorf("mmap: non-positive throughput (mmap %.3f, buffered %.3f)", m.MmapPerMs, m.BufferedPerMs)
	}
	wantSpeed := m.MmapPerMs / m.BufferedPerMs
	if m.SpeedupVsBuffered < wantSpeed*0.99 || m.SpeedupVsBuffered > wantSpeed*1.01 {
		return fmt.Errorf("mmap: speedup_vs_buffered = %.3f does not match its rates (%.3f)",
			m.SpeedupVsBuffered, wantSpeed)
	}
	if len(f.Sampled) == 0 {
		return fmt.Errorf("no sampled section — run BenchmarkBuildOutOfCore with -benchtime=1x first")
	}
	prevK := uint64(1)
	for i, s := range f.Sampled {
		if s.K <= prevK {
			return fmt.Errorf("sampled[%d]: k = %d not ascending (after k=%d)", i, s.K, prevK)
		}
		prevK = s.K
		if s.Accesses <= 0 {
			return fmt.Errorf("sampled[k=%d]: accesses = %d", s.K, s.Accesses)
		}
		if s.ExactPerMs <= 0 || s.SampledPerMs <= 0 {
			return fmt.Errorf("sampled[k=%d]: non-positive throughput (exact %.3f, sampled %.3f)",
				s.K, s.ExactPerMs, s.SampledPerMs)
		}
		want := s.SampledPerMs / s.ExactPerMs
		if s.SpeedupVsExact < want*0.99 || s.SpeedupVsExact > want*1.01 {
			return fmt.Errorf("sampled[k=%d]: speedup_vs_exact = %.3f does not match its rates (%.3f)",
				s.K, s.SpeedupVsExact, want)
		}
		if s.Estimate == 0 || s.Exact == 0 {
			return fmt.Errorf("sampled[k=%d]: zero Eq. 4 estimate (estimate %d, exact %d)", s.K, s.Estimate, s.Exact)
		}
		if s.Margin == 0 {
			return fmt.Errorf("sampled[k=%d]: margin = 0 on a sampled row", s.K)
		}
		diff := int64(s.Estimate) - int64(s.Exact)
		if diff < 0 {
			diff = -diff
		}
		if got := uint64(diff) <= s.Margin; got != s.WithinBound {
			return fmt.Errorf("sampled[k=%d]: within_bound = %v contradicts |%d - %d| vs margin %d",
				s.K, s.WithinBound, s.Estimate, s.Exact, s.Margin)
		}
	}
	if f.Sketch == nil {
		return fmt.Errorf("no sketch section — run BenchmarkBuildOutOfCore with -benchtime=1x first")
	}
	k := f.Sketch
	if k.Accesses <= 0 {
		return fmt.Errorf("sketch: accesses = %d out of range", k.Accesses)
	}
	if k.Width <= 0 || k.Width&(k.Width-1) != 0 {
		return fmt.Errorf("sketch: width = %d not a positive power of two", k.Width)
	}
	if k.Depth < 1 {
		return fmt.Errorf("sketch: depth = %d out of range", k.Depth)
	}
	if k.Support <= 0 {
		return fmt.Errorf("sketch: support = %d — an empty differential witnesses nothing", k.Support)
	}
	if k.Violations < 0 || k.Violations > k.Support {
		return fmt.Errorf("sketch: violations = %d outside [0, %d]", k.Violations, k.Support)
	}
	if k.SparseBytes <= 0 || k.SketchBytes <= 0 {
		return fmt.Errorf("sketch: non-positive sizes (sparse %d, sketch %d)", k.SparseBytes, k.SketchBytes)
	}
	wantRatio := float64(k.SparseBytes) / float64(k.SketchBytes)
	if k.MemoryRatio < wantRatio*0.99 || k.MemoryRatio > wantRatio*1.01 {
		return fmt.Errorf("sketch: memory_ratio = %.3f does not match its byte counts (%.3f)",
			k.MemoryRatio, wantRatio)
	}
	return nil
}

// validateOutOfCorePerf enforces the §17 half of the -perf contract:
// the mmap reader at least matches the buffered one, every sampled row
// keeps the exact value inside its margin with k=16 at >= 4x the exact
// build, and the sketch spends >= 10x less histogram memory than the
// sparse map while honoring its (ε,δ) bound.
func validateOutOfCorePerf(f *benchFile) error {
	if f.Mmap.SpeedupVsBuffered < 1.0 {
		return fmt.Errorf("perf contract: mmap reader at %.3fx of the buffered reader (< 1.0x)",
			f.Mmap.SpeedupVsBuffered)
	}
	k16 := false
	for _, s := range f.Sampled {
		if !s.WithinBound {
			return fmt.Errorf("perf contract: sampled k=%d estimate %d missed the exact %d by more than its margin %d",
				s.K, s.Estimate, s.Exact, s.Margin)
		}
		if s.K == 16 {
			k16 = true
			if s.SpeedupVsExact < 4 {
				return fmt.Errorf("perf contract: sampled k=16 speedup %.3fx < 4x over the exact build",
					s.SpeedupVsExact)
			}
		}
	}
	if !k16 {
		return fmt.Errorf("perf contract: no k=16 sampled row")
	}
	if f.Sketch.MemoryRatio < 10 {
		return fmt.Errorf("perf contract: sketch memory ratio %.3fx < 10x under the sparse map", f.Sketch.MemoryRatio)
	}
	if !f.Sketch.WithinBound {
		return fmt.Errorf("perf contract: sketch exceeded its (ε,δ) bound on %d of %d support vectors",
			f.Sketch.Violations, f.Sketch.Support)
	}
	return nil
}

// monotoneTolerance absorbs run-to-run measurement noise in the
// monotone-speedup rule: adding workers (up to the core count) may not
// lose more than 3% over the previous point.
const monotoneTolerance = 0.97

// validateParallelPerf enforces the multi-worker half of the -perf
// contract against the workload-grouped parallel rows (already sorted
// by worker count, each anchored at workers=1).
func validateParallelPerf(f *benchFile, byWorkload map[string][]paraResult) error {
	if f.NumCPU < 2 {
		return fmt.Errorf("perf contract: parallel baseline recorded with num_cpu = %d — "+
			"a single-core recording cannot witness parallel speedup; rerecord on a multi-core runner",
			f.NumCPU)
	}
	if byWorkload["capacity-heavy"] == nil {
		return fmt.Errorf("perf contract: no capacity-heavy workload in parallel section")
	}
	for name, rows := range byWorkload {
		prev := rows[0]
		for _, p := range rows[1:] {
			if p.Workers > f.NumCPU {
				// Oversubscribed points are informational: speedup may
				// legitimately flatten or dip past the core count.
				break
			}
			if p.SpeedupVs1 < prev.SpeedupVs1*monotoneTolerance {
				return fmt.Errorf("perf contract: %q speedup not monotone: %.3fx at %d workers after %.3fx at %d",
					name, p.SpeedupVs1, p.Workers, prev.SpeedupVs1, prev.Workers)
			}
			prev = p
		}
	}
	if f.NumCPU >= 4 {
		ok := false
		for _, p := range byWorkload["capacity-heavy"] {
			if p.Workers == 4 {
				ok = true
				if p.SpeedupVs1 < 1.6 {
					return fmt.Errorf("perf contract: capacity-heavy speedup %.3fx at 4 workers < 1.6x",
						p.SpeedupVs1)
				}
			}
		}
		if !ok {
			return fmt.Errorf("perf contract: capacity-heavy has no workers=4 row on a %d-CPU runner", f.NumCPU)
		}
	}
	return nil
}
