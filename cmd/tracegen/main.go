// Command tracegen generates workload traces to files in the binary or
// text trace format, for use with the xoridx CLI or external tools.
//
// Usage:
//
//	tracegen -list
//	tracegen -bench fft -out fft.xtr
//	tracegen -bench rijndael -kind instr -format text -out rijndael_i.txt
//	tracegen -bench susan -scale 2 -out susan2.xtr
//	tracegen -bench fft -stream -accesses 1000000000 -out fft_1g.xtr
//
// -stream writes traces of any length in bounded memory: the workload
// model generates one base trace, and the streaming encoder cycles
// over it until the requested access count is written — optionally
// rebasing the addresses each cycle (-rebase) to model repeated runs
// at different placements. Only the base trace is ever held in memory,
// so a multi-billion-access (multi-GB) trace costs the same RAM as a
// scale-1 trace.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"xoridx/internal/cliutil"
	"xoridx/internal/trace"
	"xoridx/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	bench := flag.String("bench", "", "benchmark name")
	kind := flag.String("kind", "data", "trace kind: data or instr")
	scale := flag.Int("scale", 1, "workload scale factor (>= 1)")
	format := flag.String("format", "binary", "output format: binary, text or dinero")
	out := flag.String("out", "", "output file (default stdout)")
	stream := flag.Bool("stream", false, "stream mode: cycle the base trace up to -accesses in bounded memory (binary format only)")
	accesses := flag.Uint64("accesses", 0, "total accesses to write in -stream mode")
	rebase := flag.Uint64("rebase", 0, "address shift in bytes applied per full cycle in -stream mode")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			kinds := "data"
			if w.Instr != nil {
				kinds = "data+instr"
			}
			fmt.Printf("%-10s %-11s %-10s %s\n", w.Name, w.Suite, kinds, w.Desc)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench required (or -list); available:", strings.Join(workloads.Names(), " "))
		os.Exit(2)
	}
	if err := cliutil.ValidateScale(*scale); err != nil {
		fatal(err)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	var tr *trace.Trace
	switch *kind {
	case "data":
		tr = w.Data(*scale)
	case "instr":
		if w.Instr == nil {
			fatal(fmt.Errorf("benchmark %q has no instruction-trace model", *bench))
		}
		tr = w.Instr(*scale)
	default:
		fatal(errors.New("-kind must be data or instr"))
	}

	dst := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		dst = f
	}
	if *stream {
		if *format != "binary" {
			fatal(errors.New("-stream writes the binary format only"))
		}
		if *accesses == 0 {
			fatal(errors.New("-stream needs -accesses > 0"))
		}
		err = streamTrace(dst, tr, *accesses, *rebase)
	} else {
		switch *format {
		case "binary":
			err = trace.Encode(dst, tr)
		case "text":
			err = trace.EncodeText(dst, tr)
		case "dinero":
			err = trace.EncodeDinero(dst, tr)
		default:
			fatal(errors.New("-format must be binary, text or dinero"))
		}
	}
	if err != nil {
		fatal(err)
	}
	// An explicit, checked close: encode errors and close errors (the
	// kernel flushing the file) both matter for a generator.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}
	if *stream {
		fmt.Fprintf(os.Stderr, "tracegen: %s/%s: %d accesses streamed (%d-access base, rebase %d/cycle)\n",
			*bench, *kind, *accesses, tr.Len(), *rebase)
		return
	}
	s := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "tracegen: %s/%s: %d accesses, %d ops, %d unique blocks\n",
		*bench, *kind, s.Accesses, s.Ops, s.UniqueBlocks)
}

// streamTrace writes total accesses by cycling over the base trace,
// shifting addresses by delta bytes after each full cycle. Memory
// stays bounded by the base trace; the encoder never buffers more
// than its 1 MiB write window. The declared op count is scaled
// proportionally so misses-per-K-uop normalisation survives the
// stretch.
func streamTrace(w io.Writer, tr *trace.Trace, total, delta uint64) error {
	if tr.Len() == 0 {
		return errors.New("base trace is empty")
	}
	ops := uint64(float64(tr.OpsOrLen()) * float64(total) / float64(tr.Len()))
	sw, err := trace.NewWriter(w, tr.Name+"-stream", ops, total)
	if err != nil {
		return err
	}
	var base uint64
	i := 0
	for n := uint64(0); n < total; n++ {
		a := tr.Accesses[i]
		if err := sw.WriteAccess(trace.Access{Addr: a.Addr + base, Kind: a.Kind}); err != nil {
			return err
		}
		if i++; i == tr.Len() {
			i = 0
			base += delta
		}
	}
	return sw.Close()
}

func fatal(err error) {
	cliutil.Usagef("tracegen", "%v", err)
}
