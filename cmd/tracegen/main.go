// Command tracegen generates workload traces to files in the binary or
// text trace format, for use with the xoridx CLI or external tools.
//
// Usage:
//
//	tracegen -list
//	tracegen -bench fft -out fft.xtr
//	tracegen -bench rijndael -kind instr -format text -out rijndael_i.txt
//	tracegen -bench susan -scale 2 -out susan2.xtr
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"xoridx/internal/cliutil"
	"xoridx/internal/trace"
	"xoridx/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	bench := flag.String("bench", "", "benchmark name")
	kind := flag.String("kind", "data", "trace kind: data or instr")
	scale := flag.Int("scale", 1, "workload scale factor (>= 1)")
	format := flag.String("format", "binary", "output format: binary, text or dinero")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			kinds := "data"
			if w.Instr != nil {
				kinds = "data+instr"
			}
			fmt.Printf("%-10s %-11s %-10s %s\n", w.Name, w.Suite, kinds, w.Desc)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench required (or -list); available:", strings.Join(workloads.Names(), " "))
		os.Exit(2)
	}
	if err := cliutil.ValidateScale(*scale); err != nil {
		fatal(err)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	var tr *trace.Trace
	switch *kind {
	case "data":
		tr = w.Data(*scale)
	case "instr":
		if w.Instr == nil {
			fatal(fmt.Errorf("benchmark %q has no instruction-trace model", *bench))
		}
		tr = w.Instr(*scale)
	default:
		fatal(errors.New("-kind must be data or instr"))
	}

	dst := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		dst = f
	}
	switch *format {
	case "binary":
		err = trace.Encode(dst, tr)
	case "text":
		err = trace.EncodeText(dst, tr)
	case "dinero":
		err = trace.EncodeDinero(dst, tr)
	default:
		fatal(errors.New("-format must be binary, text or dinero"))
	}
	if err != nil {
		fatal(err)
	}
	// An explicit, checked close: encode errors and close errors (the
	// kernel flushing the file) both matter for a generator.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}
	s := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "tracegen: %s/%s: %d accesses, %d ops, %d unique blocks\n",
		*bench, *kind, s.Accesses, s.Ops, s.UniqueBlocks)
}

func fatal(err error) {
	cliutil.Usagef("tracegen", "%v", err)
}
