// Command tables regenerates the tables and figures of the paper's
// evaluation section (DATE 2006, Vandierendonck et al.).
//
// Usage:
//
//	tables -table all          # everything (several minutes)
//	tables -table 1            # Table 1: reconfiguration switch counts
//	tables -table 2d           # Table 2, data-cache half
//	tables -table 2i           # Table 2, instruction-cache half
//	tables -table 3            # Table 3: PowerStone optimality study
//	tables -table exp1         # §6 in-text: general vs permutation XOR
//	tables -table eq3          # §2: design-space size figures
//	tables -table 2x           # extension: Table 2 protocol, extra suite
//	tables -table cross        # extension: cross-application matrix
//	tables -table assoc        # extension: vs (skewed-)associativity
//	tables -table fixed        # extension: fixed hashes [5][9] vs tuned
//	tables -table sweep        # extension: miss curves across sizes
//	tables -table phase        # extension: multiprogrammed reconfiguration
//	tables -table energy       # extension: first-order energy model
//	tables -table repl         # extension: replacement-policy ablation
//	tables -table aslr         # extension: load-address robustness
//	tables -scale 2            # larger workload inputs
//	tables -table 2d -progress # stage/search progress on stderr
//
// Ctrl-C (SIGINT) cancels the run cleanly: the in-flight experiment
// aborts within one hill-climbing move and the command reports the
// cancellation instead of exiting mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"xoridx/internal/cliutil"
	"xoridx/internal/experiments"
)

func main() {
	table := flag.String("table", "all",
		"which table to regenerate: 1, 2d, 2i, 2x, 3, exp1, eq3, cross, assoc, fixed, sweep, phase, energy, repl, aslr, all")
	scale := flag.Int("scale", 1, "workload scale factor (>= 1)")
	workers := flag.Int("workers", 0,
		"per-trace parallel workers for profiling and search (0/1 = sequential, -1 = all cores); results are identical for any value")
	progress := flag.Bool("progress", false, "report pipeline stages and search progress on stderr")
	flag.Parse()
	if err := cliutil.ValidateScale(*scale); err != nil {
		cliutil.Usagef("tables", "%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := experiments.Options{Workers: *workers}
	if *progress {
		opt.Events = cliutil.ProgressSink(os.Stderr)
	}
	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	want := func(name string) bool { return *table == "all" || *table == name }

	any := false
	if want("eq3") {
		any = true
		run("eq3", func() error {
			experiments.RenderEq3(os.Stdout)
			return nil
		})
	}
	if want("1") {
		any = true
		run("table 1", func() error {
			experiments.RenderTable1(os.Stdout)
			return nil
		})
	}
	if want("exp1") {
		any = true
		run("experiment 1", func() error {
			rows, err := experiments.Experiment1Ctx(ctx, opt, *scale)
			if err != nil {
				return err
			}
			experiments.RenderExp1(os.Stdout, rows)
			return nil
		})
	}
	if want("2d") {
		any = true
		run("table 2 (data)", func() error {
			rows, err := experiments.Table2Ctx(ctx, opt, false, *scale)
			if err != nil {
				return err
			}
			experiments.RenderTable2(os.Stdout, rows, false)
			return nil
		})
	}
	if want("2i") {
		any = true
		run("table 2 (instruction)", func() error {
			rows, err := experiments.Table2Ctx(ctx, opt, true, *scale)
			if err != nil {
				return err
			}
			experiments.RenderTable2(os.Stdout, rows, true)
			return nil
		})
	}
	if want("2x") {
		any = true
		run("table 2 (extra suite)", func() error {
			for _, instr := range []bool{false, true} {
				rows, err := experiments.Table2ExtraCtx(ctx, opt, instr, *scale)
				if err != nil {
					return err
				}
				experiments.RenderTable2(os.Stdout, rows, instr)
				fmt.Println()
			}
			return nil
		})
	}
	if want("3") {
		any = true
		run("table 3", func() error {
			rows, err := experiments.Table3Ctx(ctx, opt, *scale)
			if err != nil {
				return err
			}
			experiments.RenderTable3(os.Stdout, rows)
			return nil
		})
	}
	if want("cross") {
		any = true
		run("cross-application extension", func() error {
			res, err := experiments.CrossApplicationCtx(ctx, opt, nil, 4, *scale)
			if err != nil {
				return err
			}
			experiments.RenderCrossApplication(os.Stdout, res, 4)
			return nil
		})
	}
	if want("assoc") {
		any = true
		run("associativity extension", func() error {
			rows, err := experiments.AssociativityComparisonCtx(ctx, opt, nil, 4, *scale)
			if err != nil {
				return err
			}
			experiments.RenderAssociativity(os.Stdout, rows, 4)
			return nil
		})
	}
	if want("fixed") {
		any = true
		run("fixed-vs-tuned extension", func() error {
			rows, err := experiments.FixedVsTunedCtx(ctx, opt, nil, 4, *scale)
			if err != nil {
				return err
			}
			experiments.RenderFixedVsTuned(os.Stdout, rows, 4)
			return nil
		})
	}
	if want("aslr") {
		any = true
		run("ASLR robustness extension", func() error {
			rows, err := experiments.ASLRRobustnessCtx(ctx, opt, "fft", 4, *scale,
				[]uint64{0, 0x1000, 0x10000, 0x3450, 0x81230})
			if err != nil {
				return err
			}
			experiments.RenderASLR(os.Stdout, "fft", rows, 4)
			return nil
		})
	}
	if want("repl") {
		any = true
		run("replacement ablation", func() error {
			rows, err := experiments.ReplacementAblationCtx(ctx, opt, nil, 4, *scale)
			if err != nil {
				return err
			}
			experiments.RenderReplacement(os.Stdout, rows, 4)
			return nil
		})
	}
	if want("energy") {
		any = true
		run("energy extension", func() error {
			rows, err := experiments.EnergyComparisonCtx(ctx, opt, nil, 4, *scale)
			if err != nil {
				return err
			}
			experiments.RenderEnergy(os.Stdout, rows, 4)
			return nil
		})
	}
	if want("sweep") {
		any = true
		run("miss-curve extension", func() error {
			for _, bench := range []string{"fft", "rijndael"} {
				pts, err := experiments.SizeSweepCtx(ctx, opt, bench, nil, *scale)
				if err != nil {
					return err
				}
				experiments.RenderSweep(os.Stdout, bench, pts)
				fmt.Println()
			}
			return nil
		})
	}
	if want("phase") {
		any = true
		run("phase-reconfiguration extension", func() error {
			rows, err := experiments.PhaseReconfigurationCtx(ctx, opt, "fft", "adpcm_dec", 4, *scale,
				[]int{100, 1000, 10000, 100000})
			if err != nil {
				return err
			}
			experiments.RenderPhase(os.Stdout, "fft", "adpcm_dec", rows, 4)
			return nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "tables: unknown table %q (want 1, 2d, 2i, 3, exp1, eq3, cross, assoc, phase, sweep, fixed, energy, repl, aslr, 2x, all)\n", *table)
		os.Exit(2)
	}
}
