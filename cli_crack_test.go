package xoridx

// End-to-end tests of the crack subcommand through the real binary:
// self-test sweeps (both strategies, noisy oracle, eviction-set style),
// the -plant/-save matrix round trip, the passive trace mode, and the
// flag validation paths.

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCLICrackSelfTest(t *testing.T) {
	stdout, _ := run(t, "xoridx", "crack", "-n", "14", "-m", "6", "-trials", "6", "-strategy", "both", "-seed", "3")
	if !strings.Contains(stdout, "all 6 trials recovered set-mapping-equivalent functions") {
		t.Fatalf("missing success line:\n%s", stdout)
	}
	if !strings.Contains(stdout, "group testing:") || !strings.Contains(stdout, "fewer") {
		t.Fatalf("missing strategy comparison:\n%s", stdout)
	}
	// The mixed schedule plants a rank-deficient function every third
	// trial: rank 5 recoveries must appear alongside rank 6.
	if !strings.Contains(stdout, "rank 5 recovered") || !strings.Contains(stdout, "rank 6 recovered") {
		t.Fatalf("rank mix missing from schedule:\n%s", stdout)
	}
}

func TestCLICrackNoisyEvict(t *testing.T) {
	stdout, _ := run(t, "xoridx", "crack", "-n", "12", "-m", "5", "-trials", "3",
		"-strategy", "group", "-oracle", "evict", "-noise", "0.02", "-repeats", "3")
	if !strings.Contains(stdout, "all 3 trials recovered set-mapping-equivalent functions") {
		t.Fatalf("noisy eviction-set crack failed:\n%s", stdout)
	}
}

func TestCLICrackPlantRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mat := filepath.Join(dir, "rec.mat")
	stdout, _ := run(t, "xoridx", "crack", "-n", "12", "-m", "4", "-trials", "1", "-strategy", "group", "-save", mat)
	if !strings.Contains(stdout, "recovered matrix written to") {
		t.Fatalf("missing -save confirmation:\n%s", stdout)
	}
	// Crack the recovered matrix as a new plant: recovery must close
	// the loop, and the saved file must also feed the main pipeline.
	stdout, _ = run(t, "xoridx", "crack", "-plant", mat, "-strategy", "naive")
	if !strings.Contains(stdout, "all 1 trials recovered set-mapping-equivalent functions") {
		t.Fatalf("replanted crack failed:\n%s", stdout)
	}
	traceFile := filepath.Join(dir, "fft.xtr")
	run(t, "tracegen", "-bench", "fft", "-out", traceFile)
	stdout, _ = run(t, "xoridx", "-trace", traceFile, "-cache", "64", "-n", "12", "-apply", mat)
	if !strings.Contains(stdout, "applied general XOR 12->4") {
		t.Fatalf("-apply rejected the cracked matrix:\n%s", stdout)
	}
}

func TestCLICrackTraceMode(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "fft.xtr")
	run(t, "tracegen", "-bench", "fft", "-out", traceFile)
	stdout, _ := run(t, "xoridx", "crack", "-trace", traceFile, "-n", "14", "-m", "6", "-seed", "5")
	for _, want := range []string{"passive crack of", "constraints:", "null-space dimensions"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("trace mode output missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stdout, "0 inconsistent") {
		t.Fatalf("noise-free passive crack reported inconsistencies:\n%s", stdout)
	}
}

func TestCLICrackErrors(t *testing.T) {
	for _, args := range [][]string{
		{"crack", "-strategy", "bogus"},
		{"crack", "-oracle", "bogus"},
		{"crack", "-n", "8", "-m", "8"},
		{"crack", "-n", "1", "-m", "1"},
		{"crack", "-rank", "9", "-m", "8"},
		{"crack", "-noise", "1.5"},
		{"crack", "-trials", "0"},
		{"crack", "-plant", "/nonexistent/file.mat"},
	} {
		out := runExpectFail(t, "xoridx", args...)
		if out == "" {
			t.Fatalf("%v: failed silently", args)
		}
	}
}
