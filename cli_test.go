package xoridx

// End-to-end integration tests of the command-line toolchain:
// tracegen → xoridx (construct, save, bitstream) → xoridx -apply, and
// the tables regenerator. The binaries are built once into a temp dir.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "xoridx-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"tracegen", "xoridx", "tables"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", tool, args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func runExpectFail(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v should have failed\n%s", tool, args, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "fft.xtr")
	fnFile := filepath.Join(dir, "fft.fn")

	_, stderr := run(t, "tracegen", "-bench", "fft", "-out", traceFile)
	if !strings.Contains(stderr, "accesses") {
		t.Fatalf("tracegen summary missing: %q", stderr)
	}

	stdout, _ := run(t, "xoridx", "-trace", traceFile, "-cache", "1024",
		"-verbose", "-bitstream", "-save", fnFile)
	for _, frag := range []string{
		"permutation-based (2-in)",
		"hottest conflict vectors",
		"misses removed",
		"configuration bitstream (72 bits",
		"matrix written to",
	} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("xoridx output missing %q:\n%s", frag, stdout)
		}
	}

	// The saved function must reproduce the same miss count via -apply.
	applyOut, _ := run(t, "xoridx", "-trace", traceFile, "-cache", "1024", "-apply", fnFile)
	if !strings.Contains(applyOut, "misses removed") {
		t.Fatalf("apply output:\n%s", applyOut)
	}
	// Extract the optimized miss count from both outputs and compare.
	missLine := func(out, prefix string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, prefix) {
				return strings.Join(strings.Fields(line), " ")
			}
		}
		return ""
	}
	a := missLine(stdout, "optimized misses")
	b := missLine(applyOut, "applied-function misses")
	aN := strings.Fields(a)
	bN := strings.Fields(b)
	if len(aN) < 3 || len(bN) < 3 || aN[2] != bN[2] {
		t.Errorf("construct (%q) and apply (%q) disagree", a, b)
	}
}

func TestCLITracegenTextFormat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "qurt.txt")
	run(t, "tracegen", "-bench", "qurt", "-format", "text", "-out", out)
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "# name qurt") {
		t.Fatalf("text header wrong: %q", s[:60])
	}
	// Text traces feed back into xoridx (format autodetection).
	stdout, _ := run(t, "xoridx", "-trace", out, "-cache", "1024")
	if !strings.Contains(stdout, "baseline (modulo) misses") {
		t.Fatalf("xoridx on text trace:\n%s", stdout)
	}
}

func TestCLITracegenList(t *testing.T) {
	stdout, _ := run(t, "tracegen", "-list")
	for _, name := range []string{"fft", "rijndael", "ucbqsort", "v42"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestCLITracegenErrors(t *testing.T) {
	out := runExpectFail(t, "tracegen", "-bench", "nonexistent")
	if !strings.Contains(out, "unknown benchmark") {
		t.Errorf("error message: %q", out)
	}
	runExpectFail(t, "tracegen")                                    // no -bench
	runExpectFail(t, "tracegen", "-bench", "crc", "-kind", "instr") // powerstone has no instr
}

func TestCLITablesFast(t *testing.T) {
	stdout, _ := run(t, "tables", "-table", "1")
	for _, frag := range []string{"Table 1", "permutation-based", "72", "70", "60"} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("table 1 output missing %q", frag)
		}
	}
	stdout, _ = run(t, "tables", "-table", "eq3")
	if !strings.Contains(stdout, "6.34e+19") {
		t.Errorf("eq3 output:\n%s", stdout)
	}
	runExpectFail(t, "tables", "-table", "bogus")
}

func TestCLIXoridxErrors(t *testing.T) {
	runExpectFail(t, "xoridx") // no trace
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xtr")
	if err := os.WriteFile(bad, []byte("R not-an-address\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runExpectFail(t, "xoridx", "-trace", bad)
	runExpectFail(t, "xoridx", "-trace", filepath.Join(dir, "missing.xtr"))
}

func TestCLIDineroInterop(t *testing.T) {
	dir := t.TempDir()
	din := filepath.Join(dir, "q.din")
	run(t, "tracegen", "-bench", "qurt", "-format", "dinero", "-out", din)
	data, err := os.ReadFile(din)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "0 ") {
		t.Fatalf("din output starts with %q", string(data[:8]))
	}
	stdout, _ := run(t, "xoridx", "-trace", din, "-cache", "1024")
	if !strings.Contains(stdout, "baseline (modulo) misses") {
		t.Fatalf("xoridx on din trace:\n%s", stdout)
	}
}

func TestCLIAnalyze(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "fft.xtr")
	run(t, "tracegen", "-bench", "fft", "-out", tr)
	stdout, _ := run(t, "xoridx", "-trace", tr, "-cache", "1024", "-analyze")
	for _, frag := range []string{"hottest conflict vectors", "conflicting address pairs"} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("analyze output missing %q", frag)
		}
	}
}

func TestCLIVerilog(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "fft.xtr")
	vf := filepath.Join(dir, "idx.v")
	run(t, "tracegen", "-bench", "fft", "-out", tr)
	stdout, _ := run(t, "xoridx", "-trace", tr, "-cache", "1024", "-verilog", vf)
	if !strings.Contains(stdout, "Verilog module written") {
		t.Fatalf("missing confirmation:\n%s", stdout)
	}
	data, err := os.ReadFile(vf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module xoridx_index") || !strings.Contains(string(data), "endmodule") {
		t.Fatal("emitted Verilog malformed")
	}
}

func TestCLIAlternativeAlgorithms(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "fft.xtr")
	run(t, "tracegen", "-bench", "fft", "-out", tr)
	out, _ := run(t, "xoridx", "-trace", tr, "-cache", "1024", "-algo", "constructive")
	if !strings.Contains(out, "misses removed") {
		t.Fatalf("constructive output:\n%s", out)
	}
	out, _ = run(t, "xoridx", "-trace", tr, "-cache", "1024", "-family", "general", "-algo", "anneal")
	if !strings.Contains(out, "misses removed") {
		t.Fatalf("anneal output:\n%s", out)
	}
	// Mismatched family/algo pairs are rejected.
	runExpectFail(t, "xoridx", "-trace", tr, "-algo", "anneal") // default family: permutation
	runExpectFail(t, "xoridx", "-trace", tr, "-algo", "bogus")
}

func TestCLISetAssociative(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "fft.xtr")
	run(t, "tracegen", "-bench", "fft", "-out", tr)
	out, _ := run(t, "xoridx", "-trace", tr, "-cache", "2048", "-ways", "2")
	if !strings.Contains(out, "2-way") || !strings.Contains(out, "(256 sets)") {
		t.Fatalf("2-way output:\n%s", out)
	}
	runExpectFail(t, "xoridx", "-trace", tr, "-cache", "2048", "-ways", "3")
}
