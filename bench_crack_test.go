package xoridx

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"xoridx/internal/crack"
	"xoridx/internal/gf2"
)

// The crack-benchmark geometries: the 4KB/16-bit pipeline problem, two
// larger widths, and one rank-deficient plant. Probe counts are
// deterministic (fixed seeds, no noise), so the group-vs-naive query
// reduction recorded here is an invariant, not a measurement —
// benchcheck rejects a BENCH_crack.json where group testing stopped
// winning.
var benchCrackGeometries = []struct {
	n, m, rank int
	seed       int64
}{
	{16, 8, 8, 1},
	{20, 10, 10, 2},
	{24, 12, 12, 3},
	{16, 8, 5, 4}, // rank-deficient: three index columns are redundant
}

type benchCrackStrategyResult struct {
	LogicalQueries uint64  `json:"logical_queries"`
	Probes         uint64  `json:"probes"`
	Accesses       uint64  `json:"accesses"`
	MsPerCrack     float64 `json:"ms_per_crack"`
}

type benchCrackResult struct {
	N              int                      `json:"n"`
	M              int                      `json:"m"`
	Rank           int                      `json:"rank"`
	Naive          benchCrackStrategyResult `json:"naive"`
	Group          benchCrackStrategyResult `json:"group"`
	QueryReduction float64                  `json:"query_reduction"`
	Verified       bool                     `json:"verified"`
}

// BenchmarkCrack measures the black-box recovery of planted index
// functions on both axes that matter to an attacker: wall clock per
// crack and, more importantly, oracle cost — logical (majority-voted)
// queries, issued probes and total memory accesses. Each sub-benchmark
// cracks the same plant with the naive per-bit strategy and the
// group-testing reduction and verifies the recovery against the plant;
// the final sub-benchmark writes BENCH_crack.json, which cmd/benchcheck
// holds to the group-beats-naive query invariant in CI.
func BenchmarkCrack(b *testing.B) {
	results := make([]benchCrackResult, len(benchCrackGeometries))
	for gi, g := range benchCrackGeometries {
		h := crack.RandomPlant(g.n, g.m, g.rank, g.seed)
		row := &results[gi]
		row.N, row.M, row.Rank = g.n, g.m, g.rank
		row.Verified = true
		for _, strategy := range []crack.Strategy{crack.Naive, crack.GroupTesting} {
			name := fmt.Sprintf("%s/n=%d,m=%d,rank=%d", strategy, g.n, g.m, g.rank)
			b.Run(name, func(b *testing.B) {
				var out benchCrackStrategyResult
				best := time.Duration(0)
				for i := 0; i < b.N; i++ {
					o, err := crack.NewSimOracle(h, crack.EvictionSet)
					if err != nil {
						b.Fatal(err)
					}
					start := time.Now()
					res, err := crack.Crack(o, crack.Options{Strategy: strategy})
					elapsed := time.Since(start)
					if err != nil {
						b.Fatal(err)
					}
					if !crack.Equivalent(res.Matrix, h) || res.Rank != g.rank {
						row.Verified = false
						b.Fatalf("%s: recovery diverged from plant", name)
					}
					if _, ok := crack.IndexTransform(res.Matrix, h); !ok {
						row.Verified = false
						b.Fatalf("%s: no index transform onto plant", name)
					}
					out.LogicalQueries = res.LogicalQueries
					out.Probes = res.Stats.Queries
					out.Accesses = res.Stats.Accesses
					if best == 0 || elapsed < best {
						best = elapsed
					}
				}
				out.MsPerCrack = float64(best.Microseconds()) / 1000
				b.ReportMetric(float64(out.LogicalQueries), "queries")
				b.ReportMetric(out.MsPerCrack, "ms/crack")
				if strategy == crack.Naive {
					row.Naive = out
				} else {
					row.Group = out
				}
			})
		}
		if row.Naive.LogicalQueries > 0 && row.Group.LogicalQueries > 0 {
			row.QueryReduction = float64(row.Naive.LogicalQueries) / float64(row.Group.LogicalQueries)
			if row.Group.LogicalQueries >= row.Naive.LogicalQueries {
				b.Fatalf("n=%d m=%d rank=%d: group testing used %d logical queries, naive %d — reduction lost",
					g.n, g.m, g.rank, row.Group.LogicalQueries, row.Naive.LogicalQueries)
			}
		}
	}

	b.Run("emit-baseline", func(b *testing.B) {
		for _, r := range results {
			if r.Naive.LogicalQueries == 0 || r.Group.LogicalQueries == 0 {
				b.Skip("run the strategy sub-benchmarks first")
			}
		}
		out := struct {
			Benchmark  string             `json:"benchmark"`
			Oracle     string             `json:"oracle"`
			GoVersion  string             `json:"go_version"`
			NumCPU     int                `json:"num_cpu"`
			Geometries []benchCrackResult `json:"geometries"`
		}{
			Benchmark:  "BenchmarkCrack",
			Oracle:     crack.EvictionSet.String(),
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			Geometries: results,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_crack.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.QueryReduction, fmt.Sprintf("n%d-rank%d-reduction", r.N, r.Rank))
		}
	})
}

// BenchmarkCrackTrace measures the passive mode: constraint extraction
// from an observed hit/miss stream, the cost an auditor pays when
// probing is off the table.
func BenchmarkCrackTrace(b *testing.B) {
	const n, m = 16, 8
	h := crack.RandomPlant(n, m, m, 9)
	// A reuse-heavy synthetic stream: x, y, x triples yield one certain
	// constraint each.
	rng := uint64(1)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	mask := uint64(gf2.Mask(n))
	blocks := make([]uint64, 0, 3*100_000)
	for i := 0; i < 100_000; i++ {
		x, y := next()&mask, next()&mask
		if x == y {
			continue
		}
		blocks = append(blocks, x, y, x)
	}
	o, err := crack.NewSimOracle(h, crack.HitMiss)
	if err != nil {
		b.Fatal(err)
	}
	missed, err := crack.ObserveTrace(o, blocks)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.SetBytes(int64(len(blocks)) * 8)
	for i := 0; i < b.N; i++ {
		res, err := crack.CrackTrace(blocks, missed, n)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered.Equal(h.NullSpace()) || res.Inconsistent != 0 {
			b.Fatal("passive recovery diverged")
		}
	}
}
