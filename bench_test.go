package xoridx

// One benchmark per table/figure of the paper, plus ablations of the
// design choices called out in DESIGN.md. Custom metrics report the
// reproduced quantities (%removed, switch counts) alongside the usual
// ns/op, so `go test -bench=.` regenerates the evaluation in
// miniature; `go run ./cmd/tables` produces the full tables.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"xoridx/internal/cache"
	"xoridx/internal/core"
	"xoridx/internal/experiments"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/hwcost"
	"xoridx/internal/netlist"
	"xoridx/internal/optimal"
	"xoridx/internal/profile"
	"xoridx/internal/search"
	"xoridx/internal/trace"
	"xoridx/internal/workloads"
)

// BenchmarkEq3DesignSpaceCounts reproduces the §2 design-space figures
// (3.4e38 matrices vs 6.3e19 null spaces at n=16, m=8).
func BenchmarkEq3DesignSpaceCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = gf2.CountHashFunctions(16, 8)
		_ = gf2.CountNullSpaces(16, 8)
	}
}

// BenchmarkTable1SwitchCounts reproduces Table 1 from both the closed
// form and the executable netlists and reports the permutation-based
// switch count as a metric.
func BenchmarkTable1SwitchCounts(b *testing.B) {
	var switches int
	for i := 0; i < b.N; i++ {
		for _, m := range []int{8, 10, 12} {
			for _, s := range hwcost.Styles() {
				switches = hwcost.Switches(s, 16, m)
			}
			nl := netlist.NewPermutationXOR2(16, m)
			if nl.SwitchCount() != hwcost.Switches(hwcost.PermutationXOR2, 16, m) {
				b.Fatal("netlist disagrees with formula")
			}
		}
	}
	b.ReportMetric(float64(hwcost.Switches(hwcost.PermutationXOR2, 16, 8)), "perm-switches-m8")
	_ = switches
}

// BenchmarkFig2NetlistEval measures the configured Fig. 2b network's
// evaluation throughput (one full index+tag computation per op).
func BenchmarkFig2NetlistEval(b *testing.B) {
	nl := netlist.NewPermutationXOR2(16, 8)
	h := gf2.Identity(16, 8)
	h.Cols[0] |= gf2.Unit(12)
	h.Cols[3] |= gf2.Unit(9)
	if err := nl.Configure(h); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nl.Eval(uint64(i) & 0xFFFF)
	}
}

// BenchmarkFig1Profiling measures the profiling pass (paper Fig. 1) in
// accesses per second on the fft workload at the 4 KB capacity filter.
func BenchmarkFig1Profiling(b *testing.B) {
	tr := mustWorkload(b, "fft").Data(1)
	blocks := tr.Blocks(4, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.Build(blocks, 16, 1024)
	}
	b.ReportMetric(float64(len(blocks)), "accesses/pass")
}

// BenchmarkConstructGeneralXOR times one full general-XOR construction
// at the paper's largest dimensions (the §3.2 "0.5 to 10 seconds"
// claim; modern hardware is far faster).
func BenchmarkConstructGeneralXOR(b *testing.B) {
	tr := mustWorkload(b, "fft").Data(1)
	p := profile.Build(tr.Blocks(4, 16), 16, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Construct(p, 8, search.Options{Family: hash.FamilyGeneralXOR}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructPermutation2 times the constrained matrix-space
// search used for the deployable 2-input functions.
func BenchmarkConstructPermutation2(b *testing.B) {
	tr := mustWorkload(b, "fft").Data(1)
	p := profile.Build(tr.Blocks(4, 16), 16, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Construct(p, 8, search.Options{Family: hash.FamilyPermutation, MaxInputs: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTable2Cell runs one Table 2 cell (benchmark × cache size) and
// reports the 2-in removal percentage as a metric.
func benchTable2Cell(b *testing.B, bench string, instruction bool, cacheKB int) {
	w := mustWorkload(b, bench)
	var tr = w.Data(1)
	if instruction {
		tr = w.Instr(1)
	}
	var removed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			CacheBytes: cacheKB * 1024,
			Family:     hash.FamilyPermutation,
			MaxInputs:  2,
			NoFallback: true,
		}
		res, err := core.Tune(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		removed = 100 * res.MissesRemoved()
	}
	b.ReportMetric(removed, "%removed")
}

// BenchmarkTable2Data* regenerate representative Table 2 data-cache
// cells (full table: go run ./cmd/tables -table 2d).
func BenchmarkTable2Data1KB(b *testing.B)  { benchTable2Cell(b, "fft", false, 1) }
func BenchmarkTable2Data4KB(b *testing.B)  { benchTable2Cell(b, "adpcm_dec", false, 4) }
func BenchmarkTable2Data16KB(b *testing.B) { benchTable2Cell(b, "rijndael", false, 16) }

// BenchmarkTable2Instr* regenerate representative instruction-cache
// cells (full table: go run ./cmd/tables -table 2i).
func BenchmarkTable2Instr1KB(b *testing.B)  { benchTable2Cell(b, "dijkstra", true, 1) }
func BenchmarkTable2Instr4KB(b *testing.B)  { benchTable2Cell(b, "jpeg_enc", true, 4) }
func BenchmarkTable2Instr16KB(b *testing.B) { benchTable2Cell(b, "rijndael", true, 16) }

// BenchmarkExp1GeneralVsPermutation reproduces the §6 in-text
// comparison on one benchmark, reporting both removal percentages.
func BenchmarkExp1GeneralVsPermutation(b *testing.B) {
	tr := mustWorkload(b, "susan").Data(1)
	cfg := core.Config{CacheBytes: 4096, NoFallback: true}
	p, err := core.BuildProfile(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var genPct, permPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := cfg
		g.Family = hash.FamilyGeneralXOR
		gres, err := core.TuneProfiled(tr, p, g)
		if err != nil {
			b.Fatal(err)
		}
		pm := cfg
		pm.Family = hash.FamilyPermutation
		pres, err := core.TuneProfiled(tr, p, pm)
		if err != nil {
			b.Fatal(err)
		}
		genPct = 100 * gres.MissesRemoved()
		permPct = 100 * pres.MissesRemoved()
	}
	b.ReportMetric(genPct, "%general")
	b.ReportMetric(permPct, "%permutation")
}

// BenchmarkTable3OptimalBitSelect times the exhaustive Patel-style
// optimal search on one PowerStone trace (the "very slow" baseline).
func BenchmarkTable3OptimalBitSelect(b *testing.B) {
	tr := mustWorkload(b, "engine").Data(1)
	if tr.Len() > experiments.Table3MaxTrace {
		tr.Accesses = tr.Accesses[:experiments.Table3MaxTrace]
	}
	blocks := tr.Blocks(4, 16)
	b.ResetTimer()
	var removed float64
	base := float64(0)
	for i := 0; i < b.N; i++ {
		res, err := optimal.ExactBitSelect(blocks, 16, 10)
		if err != nil {
			b.Fatal(err)
		}
		conv := optimalConvMisses(blocks)
		base = float64(conv)
		removed = 100 * (1 - float64(res.Misses)/float64(conv))
	}
	b.ReportMetric(removed, "%removed-opt")
	_ = base
}

// optimalConvMisses simulates the conventional function for the Table 3
// baseline.
func optimalConvMisses(blocks []uint64) uint64 {
	f := hash.Modulo(16, 10)
	misses := uint64(0)
	tags := make([]uint64, 1024)
	for _, blk := range blocks {
		idx := f.Index(blk)
		if tags[idx] != blk+1 {
			misses++
			tags[idx] = blk + 1
		}
	}
	return misses
}

// BenchmarkTable3Row runs one complete Table 3 row (all six columns).
func BenchmarkTable3Row(b *testing.B) {
	var row experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3For([]string{"engine"}, 1)
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	b.ReportMetric(row.OptPct, "%opt")
	b.ReportMetric(row.In2Pct, "%2-in")
	b.ReportMetric(row.FAPct, "%FA")
}

// BenchmarkAblationEstimatorVsSimulation quantifies the paper's key
// algorithmic choice: scoring a candidate via the Eq. 4 null-space
// estimate instead of re-simulating the trace. The reported metric is
// the speedup factor.
func BenchmarkAblationEstimatorVsSimulation(b *testing.B) {
	tr := mustWorkload(b, "fft").Data(1)
	blocks := tr.Blocks(4, 16)
	p := profile.Build(blocks, 16, 1024)
	h := gf2.Identity(16, 10)
	h.Cols[0] |= gf2.Unit(12)
	ns := h.NullSpace()
	f := hash.MustXOR(h)
	b.Run("estimate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.EstimateSubspace(ns)
		}
	})
	b.Run("simulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tags := make([]uint64, 1024)
			for _, blk := range blocks {
				idx := f.Index(blk)
				if tags[idx] != blk+1 {
					tags[idx] = blk + 1
				}
			}
		}
	})
}

// BenchmarkAblationRestarts measures what the (beyond-paper) random
// restarts add over the single conventional start.
func BenchmarkAblationRestarts(b *testing.B) {
	tr := mustWorkload(b, "mpeg2_dec").Data(1)
	p := profile.Build(tr.Blocks(4, 16), 16, 1024)
	for _, restarts := range []int{0, 3} {
		name := "paper-single-start"
		if restarts > 0 {
			name = "with-3-restarts"
		}
		b.Run(name, func(b *testing.B) {
			var est uint64
			for i := 0; i < b.N; i++ {
				res, err := search.Construct(p, 10, search.Options{
					Family: hash.FamilyPermutation, MaxInputs: 2,
					Restarts: restarts, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				est = res.Estimated
			}
			b.ReportMetric(float64(est), "est-misses")
		})
	}
}

// BenchmarkCacheSimulator measures raw simulation throughput.
func BenchmarkCacheSimulator(b *testing.B) {
	tr := mustWorkload(b, "susan").Data(1)
	cfg := core.Config{CacheBytes: 4096}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Tune(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.SetBytes(int64(tr.Len()))
}

func mustWorkload(b *testing.B, name string) workloads.Workload {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkAblationAnnealVsHillClimb compares the paper's hill climber
// with the simulated-annealing variant (§3.3's "improved search phase")
// on the same profile, reporting both final estimates.
func BenchmarkAblationAnnealVsHillClimb(b *testing.B) {
	tr := mustWorkload(b, "mpeg2_dec").Data(1)
	p := profile.Build(tr.Blocks(4, 16), 16, 1024)
	b.Run("hill-climb", func(b *testing.B) {
		var est uint64
		for i := 0; i < b.N; i++ {
			res, err := search.Construct(p, 10, search.Options{Family: hash.FamilyGeneralXOR})
			if err != nil {
				b.Fatal(err)
			}
			est = res.Estimated
		}
		b.ReportMetric(float64(est), "est-misses")
	})
	b.Run("anneal-20k", func(b *testing.B) {
		var est uint64
		for i := 0; i < b.N; i++ {
			res, err := search.Anneal(p, 10, search.AnnealOptions{Steps: 20000, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			est = res.Estimated
		}
		b.ReportMetric(float64(est), "est-misses")
	})
}

// BenchmarkAblationParallelSearch measures the parallel neighbor
// evaluation speedup on the general-XOR search.
func BenchmarkAblationParallelSearch(b *testing.B) {
	tr := mustWorkload(b, "fft").Data(1)
	p := profile.Build(tr.Blocks(4, 16), 16, 256)
	for _, workers := range []int{1, 4} {
		name := "sequential"
		if workers > 1 {
			name = "4-workers"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := search.Construct(p, 8, search.Options{
					Family: hash.FamilyGeneralXOR, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionHierarchy runs the two-level hierarchy with and
// without a tuned L1 index and reports the AMAT of each.
func BenchmarkExtensionHierarchy(b *testing.B) {
	tr := mustWorkload(b, "fft").Data(1)
	res, err := core.Tune(tr, core.Config{CacheBytes: 1024, Family: hash.FamilyPermutation, MaxInputs: 2})
	if err != nil {
		b.Fatal(err)
	}
	var amatConv, amatXOR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2 := cache.Config{SizeBytes: 16384, BlockBytes: 16, Ways: 4, Index: hash.Modulo(16, 8)}
		conv, err := cache.NewHierarchy(cache.Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1}, l2)
		if err != nil {
			b.Fatal(err)
		}
		conv.Run(tr)
		amatConv = conv.AMAT(1, 8, 60)
		tuned, err := cache.NewHierarchy(cache.Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1, Index: res.Func}, l2)
		if err != nil {
			b.Fatal(err)
		}
		tuned.Run(tr)
		amatXOR = tuned.AMAT(1, 8, 60)
	}
	b.ReportMetric(amatConv, "AMAT-conv")
	b.ReportMetric(amatXOR, "AMAT-xor")
}

// BenchmarkExtensionFixedHashes scores the related-work fixed hashes
// against the tuned function on one workload (misses reported).
func BenchmarkExtensionFixedHashes(b *testing.B) {
	var rows []experiments.FixedRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.FixedVsTuned([]string{"susan"}, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].Poly), "poly-misses")
		b.ReportMetric(float64(rows[0].Tuned), "tuned-misses")
	}
}

// BenchmarkExtensionOptimalXOR times the exhaustive optimal-XOR search
// (paper §7's open problem) at a feasible size.
func BenchmarkExtensionOptimalXOR(b *testing.B) {
	var blocks []uint64
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < 24; i++ {
			blocks = append(blocks, i*16, i*16^0x155)
		}
	}
	p := profile.Build(blocks, 9, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimal.ExhaustiveXOR(p, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConstructiveVsSearch compares the cheap covering
// heuristic (refs [1]/[4] style) with the paper's hill climber.
func BenchmarkAblationConstructiveVsSearch(b *testing.B) {
	tr := mustWorkload(b, "susan").Data(1)
	p := profile.Build(tr.Blocks(4, 16), 16, 1024)
	b.Run("constructive", func(b *testing.B) {
		var est uint64
		for i := 0; i < b.N; i++ {
			res, err := search.Constructive(p, 10, 2, 64)
			if err != nil {
				b.Fatal(err)
			}
			est = res.Estimated
		}
		b.ReportMetric(float64(est), "est-misses")
	})
	b.Run("hill-climb", func(b *testing.B) {
		var est uint64
		for i := 0; i < b.N; i++ {
			res, err := search.Construct(p, 10, search.Options{Family: hash.FamilyPermutation, MaxInputs: 2})
			if err != nil {
				b.Fatal(err)
			}
			est = res.Estimated
		}
		b.ReportMetric(float64(est), "est-misses")
	})
}

// synthProfileBlocks generates a deterministic synthetic block trace of
// the given length mixing stride bursts, small working-set loops and
// uniform noise — the access mix that makes the Fig. 1 pass both
// conflict-rich and shard-friendly. Used by the parallel-profiling
// benchmarks below.
func synthProfileBlocks(length int) []uint64 {
	r := rand.New(rand.NewSource(1234))
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		switch r.Intn(3) {
		case 0: // stride burst (aliasing rows)
			stride := uint64(1) << uint(4+r.Intn(7))
			base := uint64(r.Intn(1 << 16))
			for i := uint64(0); i < 64; i++ {
				blocks = append(blocks, base+i*stride)
			}
		case 1: // working-set loop
			set := 16 + r.Intn(240)
			base := uint64(r.Intn(1 << 16))
			for rep := 0; rep < 4; rep++ {
				for i := 0; i < set; i++ {
					blocks = append(blocks, base+uint64(i))
				}
			}
		default: // noise
			for i := 0; i < 32; i++ {
				blocks = append(blocks, uint64(r.Intn(1<<18)))
			}
		}
	}
	return blocks[:length]
}

// benchParallelResult is one parallel-section row of BENCH_profile.json:
// the gate-summary sharded build at one worker count on one workload
// shape. SpeedupVs1 is relative to the same workload's workers=1 row.
type benchParallelResult struct {
	Workload      string  `json:"workload"`
	Workers       int     `json:"workers"`
	AccessesPerMs float64 `json:"accesses_per_ms"`
	SpeedupVs1    float64 `json:"speedup_vs_1"`
}

// benchSequentialResult is one sequential-section row of
// BENCH_profile.json: the overhauled Build against the pre-overhaul
// reference implementation on one workload shape.
type benchSequentialResult struct {
	Workload     string  `json:"workload"`
	Accesses     int     `json:"accesses"`
	NewPerMs     float64 `json:"new_accesses_per_ms"`
	RefPerMs     float64 `json:"ref_accesses_per_ms"`
	SpeedupVsRef float64 `json:"speedup_vs_ref"`
}

// benchMmapResult is the mmap section of BENCH_profile.json: decode
// throughput of the memory-mapped trace reader against the buffered
// one on the same on-disk trace. Mapped records whether the recording
// host actually mapped the file — a buffered-fallback recording cannot
// witness the mmap contract and is rejected by benchcheck.
type benchMmapResult struct {
	Accesses          int     `json:"accesses"`
	Mapped            bool    `json:"mapped"`
	MmapPerMs         float64 `json:"mmap_accesses_per_ms"`
	BufferedPerMs     float64 `json:"buffered_accesses_per_ms"`
	SpeedupVsBuffered float64 `json:"speedup_vs_buffered"`
}

// benchSampledResult is one sampled-section row: the every-k-th-
// candidate build against the exact build on the same walk-heavy
// workload, plus the accuracy ledger — the scaled Eq. 4 estimate for
// the conventional function, the exact value, and whether the exact
// value fell inside the reported 95% confidence margin.
type benchSampledResult struct {
	K              uint64  `json:"k"`
	Accesses       int     `json:"accesses"`
	ExactPerMs     float64 `json:"exact_accesses_per_ms"`
	SampledPerMs   float64 `json:"sampled_accesses_per_ms"`
	SpeedupVsExact float64 `json:"speedup_vs_exact"`
	Estimate       uint64  `json:"estimate"`
	Exact          uint64  `json:"exact"`
	Margin         uint64  `json:"margin"`
	WithinBound    bool    `json:"within_bound"`
}

// benchSketchResult is the sketch section: the count-min backend
// against the sparse map on a wide-support workload. Violations counts
// support vectors whose sketch estimate fell outside [true, true+slack]
// — the (ε,δ) guarantee allows a δ fraction, which within_bound checks.
type benchSketchResult struct {
	Accesses    int     `json:"accesses"`
	Width       int     `json:"width"`
	Depth       int     `json:"depth"`
	Support     int     `json:"support"`
	Violations  int     `json:"violations"`
	SparseBytes int     `json:"sparse_bytes"`
	SketchBytes int     `json:"sketch_bytes"`
	MemoryRatio float64 `json:"memory_ratio"`
	WithinBound bool    `json:"within_bound"`
}

// benchProfileFile is the BENCH_profile.json schema (validated by
// cmd/benchcheck and rendered into README's perf table). Three
// benchmarks contribute to it — BenchmarkBuild fills the sequential
// section, BenchmarkBuildParallel the parallel one, and
// BenchmarkBuildOutOfCore the mmap/sampled/sketch sections — so each
// performs a read-modify-write of its own section.
type benchProfileFile struct {
	Benchmark   string                  `json:"benchmark"`
	N           int                     `json:"n"`
	CacheBlocks int                     `json:"cache_blocks"`
	GoVersion   string                  `json:"go_version"`
	NumCPU      int                     `json:"num_cpu"`
	Sequential  []benchSequentialResult `json:"sequential"`
	Parallel    []benchParallelResult   `json:"parallel"`
	Mmap        *benchMmapResult        `json:"mmap"`
	Sampled     []benchSampledResult    `json:"sampled"`
	Sketch      *benchSketchResult      `json:"sketch"`
}

// updateBenchProfile merges one benchmark's section into
// BENCH_profile.json, preserving the other section when the file
// already holds a compatible baseline.
func updateBenchProfile(b *testing.B, mutate func(*benchProfileFile)) {
	b.Helper()
	out := benchProfileFile{}
	if data, err := os.ReadFile("BENCH_profile.json"); err == nil {
		_ = json.Unmarshal(data, &out) // a malformed file is simply rebuilt
	}
	out.Benchmark = "BenchmarkBuild+BenchmarkBuildParallel"
	out.N = benchProfileN
	out.CacheBlocks = benchProfileCacheBlocks
	out.GoVersion = runtime.Version()
	out.NumCPU = runtime.NumCPU()
	mutate(&out)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_profile.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// Shared geometry of the profiling benchmarks.
const (
	benchProfileN           = 16
	benchProfileCacheBlocks = 1024
)

// refProfileBuild is the pre-overhaul profiling pass — pointer-linked
// LRU stack, bounded counting walk, rollback re-walk on capacity
// misses — kept here as the benchmark baseline so BENCH_profile.json
// records the overhaul's speedup rather than an absolute number that
// drifts with the host.
func refProfileBuild(blocks []uint64, n, cacheBlocks int) *profile.Profile {
	type node struct {
		block      uint64
		prev, next *node
	}
	byBlock := make(map[uint64]*node)
	var top *node
	p := &profile.Profile{N: n, CacheBlocks: cacheBlocks, Table: make([]uint64, 1<<uint(n))}
	mask := uint64(1)<<uint(n) - 1
	moveToTop := func(nd *node) {
		if top == nd {
			return
		}
		if nd.prev != nil {
			nd.prev.next = nd.next
		}
		if nd.next != nil {
			nd.next.prev = nd.prev
		}
		nd.prev = nil
		nd.next = top
		top.prev = nd
		top = nd
	}
	for _, raw := range blocks {
		b := raw & mask
		p.Accesses++
		target, ok := byBlock[b]
		if !ok {
			p.Compulsory++
			nd := &node{block: b, next: top}
			if top != nil {
				top.prev = nd
			}
			top = nd
			byBlock[b] = nd
			continue
		}
		visited := 0
		reached := false
		for nd := top; nd != nil; nd = nd.next {
			if nd == target {
				reached = true
				break
			}
			if visited >= cacheBlocks {
				break
			}
			p.Table[b^nd.block]++
			p.TotalPairs++
			visited++
		}
		if reached {
			p.Candidates++
		} else {
			p.Capacity++
			visited = 0
			for nd := top; nd != target && visited < cacheBlocks; nd = nd.next {
				p.Table[b^nd.block]--
				p.TotalPairs--
				visited++
			}
		}
		moveToTop(target)
	}
	return p
}

// capacityHeavyBlocks draws uniformly from a universe far larger than
// the capacity filter, so virtually every re-reference has a reuse
// distance beyond cacheBlocks: the workload where the old pass paid a
// full bounded walk plus a rollback re-walk per access and the
// distance gate pays one order-statistics query.
func capacityHeavyBlocks(length int) []uint64 {
	r := rand.New(rand.NewSource(4321))
	blocks := make([]uint64, length)
	for i := range blocks {
		blocks[i] = uint64(r.Intn(1 << 16))
	}
	return blocks
}

// loopHeavyBlocks cycles tight loops whose working sets fit the
// capacity filter, so almost every access is a conflict candidate that
// must walk: the workload where the gate is pure overhead and the
// arena stack has to earn it back.
func loopHeavyBlocks(length int) []uint64 {
	r := rand.New(rand.NewSource(8765))
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		set := 64 + r.Intn(448) // well under cacheBlocks
		base := uint64(r.Intn(1 << 15))
		for rep := 0; rep < 6 && len(blocks) < length; rep++ {
			for i := 0; i < set && len(blocks) < length; i++ {
				blocks = append(blocks, base+uint64(i))
			}
		}
	}
	return blocks
}

// BenchmarkBuild measures the sequential Fig. 1 pass — arena stack,
// distance-gated walks, backend-specialized accumulation — against the
// pre-overhaul reference on three workload shapes, requiring
// bit-identical profiles and recording the speedups in the sequential
// section of BENCH_profile.json.
func BenchmarkBuild(b *testing.B) {
	workloads := []struct {
		name   string
		blocks []uint64
	}{
		{"capacity-heavy", capacityHeavyBlocks(300_000)},
		{"loop-heavy", loopHeavyBlocks(600_000)},
		{"mixed", synthProfileBlocks(1_000_000)},
	}
	results := make([]benchSequentialResult, 0, len(workloads))
	for _, w := range workloads {
		var newBest, refBest time.Duration
		b.Run(w.name+"/new", func(b *testing.B) {
			b.SetBytes(int64(len(w.blocks)) * 8)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				profile.Build(w.blocks, benchProfileN, benchProfileCacheBlocks)
				if d := time.Since(start); newBest == 0 || d < newBest {
					newBest = d
				}
			}
		})
		b.Run(w.name+"/ref", func(b *testing.B) {
			b.SetBytes(int64(len(w.blocks)) * 8)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				refProfileBuild(w.blocks, benchProfileN, benchProfileCacheBlocks)
				if d := time.Since(start); refBest == 0 || d < refBest {
					refBest = d
				}
			}
		})
		if newBest == 0 || refBest == 0 {
			continue
		}
		// The baseline is only meaningful if both passes agree.
		got := profile.Build(w.blocks, benchProfileN, benchProfileCacheBlocks)
		want := refProfileBuild(w.blocks, benchProfileN, benchProfileCacheBlocks)
		if got.TotalPairs != want.TotalPairs || got.Candidates != want.Candidates ||
			got.Capacity != want.Capacity || got.Compulsory != want.Compulsory {
			b.Fatalf("%s: overhauled pass diverged from reference", w.name)
		}
		perMs := func(d time.Duration) float64 {
			return float64(len(w.blocks)) / (float64(d.Microseconds())/1000 + 1e-9)
		}
		results = append(results, benchSequentialResult{
			Workload:     w.name,
			Accesses:     len(w.blocks),
			NewPerMs:     perMs(newBest),
			RefPerMs:     perMs(refBest),
			SpeedupVsRef: float64(refBest) / float64(newBest),
		})
	}
	b.Run("emit-baseline", func(b *testing.B) {
		if len(results) == 0 {
			b.Skip("run the workload sub-benchmarks first")
		}
		updateBenchProfile(b, func(f *benchProfileFile) { f.Sequential = results })
		for _, r := range results {
			b.ReportMetric(r.SpeedupVsRef, r.Workload+"-speedup")
		}
	})
}

// BenchmarkBuildParallel measures the gate-summary sharded pipeline
// across worker counts on the two workload shapes that bracket it:
// capacity-heavy (shards barely interact — near-ideal scaling) and
// mixed (locality spans boundaries — reconciliation earns its keep).
// Every measured profile is checked bit-identical to the sequential
// Build before its timing may enter the baseline. The final
// sub-benchmark writes the workload-tagged parallel section of
// BENCH_profile.json, which cmd/benchcheck -perf holds to a monotone
// multi-worker speedup contract.
func BenchmarkBuildParallel(b *testing.B) {
	const accesses = 4_000_000
	const n, cacheBlocks = benchProfileN, benchProfileCacheBlocks
	workloads := []struct {
		name   string
		blocks []uint64
	}{
		{"capacity-heavy", capacityHeavyBlocks(accesses)},
		{"mixed", synthProfileBlocks(accesses)},
	}
	workerCounts := []int{1, 2, 4, 8}
	var results []benchParallelResult
	for _, w := range workloads {
		want := profile.Build(w.blocks, n, cacheBlocks)
		perMs := make(map[int]float64)
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", w.name, workers), func(b *testing.B) {
				b.SetBytes(accesses * 8)
				var best time.Duration
				for i := 0; i < b.N; i++ {
					start := time.Now()
					got, err := profile.BuildParallel(w.blocks, n, cacheBlocks, workers)
					if err != nil {
						b.Fatal(err)
					}
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
					if got.TotalPairs != want.TotalPairs || got.Candidates != want.Candidates ||
						got.Capacity != want.Capacity || got.Compulsory != want.Compulsory {
						b.Fatalf("%s workers=%d: sharded build diverged from sequential", w.name, workers)
					}
				}
				rate := float64(accesses) / (float64(best.Microseconds())/1000 + 1e-9)
				perMs[workers] = rate
				b.ReportMetric(rate, "accesses/ms")
			})
		}
		if perMs[1] == 0 {
			continue
		}
		for _, wk := range workerCounts {
			results = append(results, benchParallelResult{
				Workload: w.name, Workers: wk,
				AccessesPerMs: perMs[wk], SpeedupVs1: perMs[wk] / perMs[1],
			})
		}
	}
	b.Run("emit-baseline", func(b *testing.B) {
		if len(results) == 0 {
			b.Skip("run the workload sub-benchmarks first")
		}
		updateBenchProfile(b, func(f *benchProfileFile) { f.Parallel = results })
	})
}

// BenchmarkBuildStream measures the end-to-end streaming pipeline —
// binary decode through sharded profiling — against the materialize-
// then-profile path on the same encoded trace.
func BenchmarkBuildStream(b *testing.B) {
	tr := &trace.Trace{Name: "stream-bench"}
	for _, blk := range synthProfileBlocks(1_000_000) {
		tr.Append(blk*4, trace.Read)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	const n, cacheBlocks = 16, 1024
	b.Run("materialize+build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t2, err := trace.Decode(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			profile.Build(t2.Blocks(4, n), n, cacheBlocks)
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("stream-workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rd, err := trace.NewReader(bytes.NewReader(encoded))
				if err != nil {
					b.Fatal(err)
				}
				_, err = profile.BuildStream(rd.BlockSource(4, n), n, cacheBlocks,
					profile.ParallelOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// walkHeavyBlocks cycles loops whose working sets nearly fill the
// capacity filter and stride exactly one set-space apart in a 20-bit
// block space — the paper's pathological row-stride shape. Every block
// in a window shares its low set bits, so nearly every access is a
// conflict candidate whose full-window stack walk feeds the histogram:
// the cost the sampling gate skips, on a workload where the modulo
// baseline genuinely conflicts.
func walkHeavyBlocks(length int) []uint64 {
	r := rand.New(rand.NewSource(5309))
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		set := 512 + r.Intn(384) // most of cacheBlocks, never past it
		base := uint64(r.Intn(1 << 20))
		for rep := 0; rep < 4 && len(blocks) < length; rep++ {
			for i := 0; i < set && len(blocks) < length; i++ {
				blocks = append(blocks, base+uint64(i)*1024)
			}
		}
	}
	return blocks
}

// scatteredLoopBlocks cycles phases of set-sized working sets drawn
// uniformly from an n-bit block space. Every pair inside a phase is a
// distinct random conflict vector, so ~phases·set²/2 vectors enter the
// histogram: the wide-support shape where the sparse map pays ~48 bytes
// per distinct vector while the count-min sketch stays at its fixed
// geometry.
func scatteredLoopBlocks(length, set, phases int, n uint) []uint64 {
	r := rand.New(rand.NewSource(99))
	blocks := make([]uint64, 0, length)
	per := length / phases
	for ph := 0; ph < phases; ph++ {
		ws := make([]uint64, set)
		for i := range ws {
			ws[i] = uint64(r.Int63()) & (1<<n - 1)
		}
		limit := (ph + 1) * per
		if ph == phases-1 {
			limit = length
		}
		for len(blocks) < limit {
			for _, w := range ws {
				if len(blocks) == limit {
					break
				}
				blocks = append(blocks, w)
			}
		}
	}
	return blocks
}

// BenchmarkBuildOutOfCore measures the three out-of-core profiling
// paths (DESIGN.md §17) and records the mmap, sampled and sketch
// sections of BENCH_profile.json, which cmd/benchcheck -perf holds to
// the §17 contracts: mmap at least matches the buffered reader, the
// k=16 sampled build is >= 4x the exact build with the exact estimate
// inside the reported margin, and the sketch spends >= 10x less
// histogram memory than the sparse map while honoring its (ε,δ) bound.
func BenchmarkBuildOutOfCore(b *testing.B) {
	var mres *benchMmapResult
	// Keyed by k: the testing package may re-enter a sub-benchmark
	// closure, and appending would then record duplicate rows.
	sampledByK := map[uint64]benchSampledResult{}
	var kres *benchSketchResult

	b.Run("mmap", func(b *testing.B) {
		tr := &trace.Trace{Name: "mmap-bench"}
		for _, blk := range synthProfileBlocks(2_000_000) {
			tr.Append(blk*4, trace.Read)
		}
		path := filepath.Join(b.TempDir(), "bench.xtr")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.Encode(f, tr); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		// Decode-only timing: the reader is the variable under test, so
		// the profiling pass (identical either way) stays out of the
		// denominator.
		readAll := func(preferMmap bool) (time.Duration, bool) {
			src, err := trace.Open(path, preferMmap)
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			read := src.BlockSource(4, benchProfileN)
			buf := make([]uint64, 1<<14)
			total := 0
			start := time.Now()
			for {
				k, err := read(buf)
				total += k
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			if total != tr.Len() {
				b.Fatalf("decoded %d of %d accesses", total, tr.Len())
			}
			return elapsed, src.Mapped
		}
		var bestM, bestB time.Duration
		mapped := false
		for i := 0; i < b.N; i++ {
			d, m := readAll(true)
			if bestM == 0 || d < bestM {
				bestM = d
			}
			mapped = m
			if d, _ := readAll(false); bestB == 0 || d < bestB {
				bestB = d
			}
		}
		perMs := func(d time.Duration) float64 {
			return float64(tr.Len()) / (float64(d.Microseconds())/1000 + 1e-9)
		}
		mres = &benchMmapResult{
			Accesses:          tr.Len(),
			Mapped:            mapped,
			MmapPerMs:         perMs(bestM),
			BufferedPerMs:     perMs(bestB),
			SpeedupVsBuffered: float64(bestB) / float64(bestM),
		}
		b.ReportMetric(mres.SpeedupVsBuffered, "mmap-speedup")
	})

	b.Run("sampled", func(b *testing.B) {
		// Walk-heavy workload: nearly every access is a conflict
		// candidate with a long stack walk, so the sampling gate has the
		// most work to skip — the shape sampling exists for.
		blocks := walkHeavyBlocks(600_000)
		const n, m = 20, 10
		exact := profile.Build(blocks, n, benchProfileCacheBlocks)
		exactEst := exact.EstimateConventional(m)
		var exactBest time.Duration
		b.Run("exact", func(b *testing.B) {
			b.SetBytes(int64(len(blocks)) * 8)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				profile.Build(blocks, n, benchProfileCacheBlocks)
				if d := time.Since(start); exactBest == 0 || d < exactBest {
					exactBest = d
				}
			}
		})
		perMs := func(d time.Duration) float64 {
			return float64(len(blocks)) / (float64(d.Microseconds())/1000 + 1e-9)
		}
		for _, k := range []uint64{4, 16, 64} {
			b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
				b.SetBytes(int64(len(blocks)) * 8)
				var best time.Duration
				var p *profile.Profile
				for i := 0; i < b.N; i++ {
					start := time.Now()
					p = profile.BuildSampled(blocks, n, benchProfileCacheBlocks,
						profile.SampleOptions{K: k, Seed: 7})
					if d := time.Since(start); best == 0 || d < best {
						best = d
					}
				}
				if exactBest == 0 {
					b.Skip("run the exact sub-benchmark first")
				}
				conf := p.ConfidenceFor(p.EstimateConventional(m))
				diff := int64(conf.Estimate) - int64(exactEst)
				if diff < 0 {
					diff = -diff
				}
				sampledByK[k] = benchSampledResult{
					K:              k,
					Accesses:       len(blocks),
					ExactPerMs:     perMs(exactBest),
					SampledPerMs:   perMs(best),
					SpeedupVsExact: float64(exactBest) / float64(best),
					Estimate:       conf.Estimate,
					Exact:          exactEst,
					Margin:         conf.Margin,
					WithinBound:    uint64(diff) <= conf.Margin,
				}
				b.ReportMetric(float64(exactBest)/float64(best), "speedup-vs-exact")
				b.ReportMetric(conf.RelError*100, "rel-error-%")
			})
		}
	})

	b.Run("sketch", func(b *testing.B) {
		// 24-bit block space: far past MaxFlatBits, with a support wide
		// enough that the sparse map costs real memory.
		const n = 24
		blocks := scatteredLoopBlocks(160_000, 360, 4, n)
		skOpt := profile.SketchOptions{Width: 1 << 14}
		var sparseP, sketchP *profile.Profile
		b.Run("sparse", func(b *testing.B) {
			b.SetBytes(int64(len(blocks)) * 8)
			for i := 0; i < b.N; i++ {
				var err error
				sparseP, err = profile.BuildParallelOpts(blocks, n, benchProfileCacheBlocks,
					profile.ParallelOptions{Workers: 1, ForceSparse: true})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("cms", func(b *testing.B) {
			b.SetBytes(int64(len(blocks)) * 8)
			for i := 0; i < b.N; i++ {
				var err error
				opt := skOpt
				sketchP, err = profile.BuildParallelOpts(blocks, n, benchProfileCacheBlocks,
					profile.ParallelOptions{Workers: 1, Sketch: &opt})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		if sparseP == nil || sketchP == nil {
			b.Skip("run the sparse and cms sub-benchmarks first")
		}
		sk := sketchP.Sketch
		slack := sk.Slack()
		support, violations := 0, 0
		sparseP.ForEachNonZero(func(v gf2.Vec, c uint64) {
			support++
			if est := sketchP.At(v); est < c || est > c+slack {
				violations++
			}
		})
		_, delta := sk.ErrorBound()
		kres = &benchSketchResult{
			Accesses:    len(blocks),
			Width:       sk.Width,
			Depth:       sk.Depth,
			Support:     support,
			Violations:  violations,
			SparseBytes: sparseP.HistogramBytes(),
			SketchBytes: sketchP.HistogramBytes(),
			MemoryRatio: float64(sparseP.HistogramBytes()) / float64(sketchP.HistogramBytes()),
			WithinBound: float64(violations) <= delta*float64(support),
		}
		b.ReportMetric(kres.MemoryRatio, "memory-ratio")
		b.ReportMetric(float64(violations), "bound-violations")
	})

	b.Run("emit-baseline", func(b *testing.B) {
		if mres == nil || len(sampledByK) == 0 || kres == nil {
			b.Skip("run the mmap, sampled and sketch sub-benchmarks first")
		}
		var sampled []benchSampledResult
		for _, k := range []uint64{4, 16, 64} {
			if row, ok := sampledByK[k]; ok {
				sampled = append(sampled, row)
			}
		}
		updateBenchProfile(b, func(f *benchProfileFile) {
			f.Mmap = mres
			f.Sampled = sampled
			f.Sketch = kres
		})
	})
}

// BenchmarkClimb measures the general-XOR null-space climb at the
// paper's largest dimensions (n=16, m=8) with and without the
// incremental coset-sum evaluator (DESIGN.md §10). Both variants must
// return the bit-identical matrix and estimate; the metrics of record
// are histogram lookups per climb (the evaluator's target is a >= 3x
// reduction) and wall-clock time. The final sub-benchmark writes
// BENCH_search.json — the perf-trajectory baseline for the search hot
// path.
func BenchmarkClimb(b *testing.B) {
	const n, m, cacheBlocks = 16, 8, 256
	tr := mustWorkload(b, "fft").Data(1)
	p := profile.Build(tr.Blocks(4, n), n, cacheBlocks)
	type variant struct {
		name string
		opt  search.Options
	}
	variants := []variant{
		{"incremental", search.Options{Family: hash.FamilyGeneralXOR}},
		{"brute", search.Options{Family: hash.FamilyGeneralXOR, NoIncremental: true}},
	}
	best := map[string]time.Duration{}
	results := map[string]search.Result{}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				res, err := search.Construct(p, m, v.opt)
				if err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start)
				if cur, ok := best[v.name]; !ok || elapsed < cur {
					best[v.name] = elapsed
				}
				results[v.name] = res
				b.ReportMetric(float64(res.Lookups), "lookups")
				b.ReportMetric(float64(res.MemoHits), "memo-hits")
			}
		})
	}
	b.Run("emit-baseline", func(b *testing.B) {
		inc, okInc := results["incremental"]
		brute, okBrute := results["brute"]
		if !okInc || !okBrute {
			b.Skip("run the incremental and brute sub-benchmarks first")
		}
		if !inc.Matrix.Equal(brute.Matrix) || inc.Estimated != brute.Estimated {
			b.Fatalf("variants diverged: est %d vs %d", inc.Estimated, brute.Estimated)
		}
		ratio := float64(brute.Lookups) / float64(inc.Lookups)
		speedup := float64(best["brute"]) / float64(best["incremental"])
		out := struct {
			Benchmark       string  `json:"benchmark"`
			Workload        string  `json:"workload"`
			N               int     `json:"n"`
			M               int     `json:"m"`
			CacheBlocks     int     `json:"cache_blocks"`
			GoVersion       string  `json:"go_version"`
			NumCPU          int     `json:"num_cpu"`
			Estimated       uint64  `json:"estimated_misses"`
			BruteLookups    uint64  `json:"brute_lookups"`
			IncLookups      uint64  `json:"incremental_lookups"`
			LookupRatio     float64 `json:"lookup_ratio"`
			MemoHits        uint64  `json:"memo_hits"`
			BruteMs         float64 `json:"brute_ms"`
			IncMs           float64 `json:"incremental_ms"`
			Speedup         float64 `json:"speedup"`
			MatrixIdentical bool    `json:"matrix_identical"`
		}{
			Benchmark:       "BenchmarkClimb",
			Workload:        "fft",
			N:               n,
			M:               m,
			CacheBlocks:     cacheBlocks,
			GoVersion:       runtime.Version(),
			NumCPU:          runtime.NumCPU(),
			Estimated:       inc.Estimated,
			BruteLookups:    brute.Lookups,
			IncLookups:      inc.Lookups,
			LookupRatio:     ratio,
			MemoHits:        inc.MemoHits,
			BruteMs:         float64(best["brute"].Microseconds()) / 1000,
			IncMs:           float64(best["incremental"].Microseconds()) / 1000,
			Speedup:         speedup,
			MatrixIdentical: true,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_search.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ratio, "lookup-ratio")
		b.ReportMetric(speedup, "speedup")
	})
}

// BenchmarkTune measures the end-to-end pipeline — Fig. 1 profiling,
// §3.2 search, exact validation — on a 10M-access synthetic trace, in
// both the check-free form (Tune) and the cancellable form (TuneCtx
// with a live context and no sink). The final sub-benchmark writes
// BENCH_pipeline.json recording the measured context-plumbing overhead;
// the refactor's budget is < 2%.
func BenchmarkTune(b *testing.B) {
	const accesses = 10_000_000
	tr := &trace.Trace{Name: "pipeline-bench"}
	for _, blk := range synthProfileBlocks(accesses) {
		tr.Append(blk*4, trace.Read)
	}
	cfg := core.Config{
		CacheBytes: 4096,
		BlockBytes: 4,
		AddrBits:   16,
		Family:     hash.FamilyPermutation,
		MaxInputs:  2,
	}
	// Per-variant minimum single-run time: min-of-k is far more stable
	// than a single sample when each run takes seconds.
	best := map[string]time.Duration{}
	measure := func(b *testing.B, name string, run func() error) {
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if err := run(); err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			if cur, ok := best[name]; !ok || elapsed < cur {
				best[name] = elapsed
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		measure(b, "plain", func() error {
			_, err := core.Tune(tr, cfg)
			return err
		})
	})
	b.Run("ctx", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		measure(b, "ctx", func() error {
			_, err := core.TuneCtx(ctx, tr, cfg, nil)
			return err
		})
	})
	b.Run("emit-baseline", func(b *testing.B) {
		plain, ctx := best["plain"], best["ctx"]
		if plain == 0 || ctx == 0 {
			b.Skip("run the plain and ctx sub-benchmarks first")
		}
		overhead := (float64(ctx) - float64(plain)) / float64(plain) * 100
		out := struct {
			Benchmark   string  `json:"benchmark"`
			Accesses    int     `json:"accesses"`
			CacheBytes  int     `json:"cache_bytes"`
			AddrBits    int     `json:"addr_bits"`
			GoVersion   string  `json:"go_version"`
			NumCPU      int     `json:"num_cpu"`
			PlainMs     float64 `json:"tune_ms"`
			CtxMs       float64 `json:"tune_ctx_ms"`
			OverheadPct float64 `json:"ctx_overhead_pct"`
			BudgetPct   float64 `json:"budget_pct"`
		}{
			Benchmark:   "BenchmarkTune",
			Accesses:    accesses,
			CacheBytes:  cfg.CacheBytes,
			AddrBits:    cfg.AddrBits,
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			PlainMs:     float64(plain.Microseconds()) / 1000,
			CtxMs:       float64(ctx.Microseconds()) / 1000,
			OverheadPct: overhead,
			BudgetPct:   2,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(overhead, "ctx-overhead-%")
	})
}
