// Package cache implements a trace-driven cache simulator with
// pluggable index functions.
//
// The paper's experiments use direct-mapped caches of 1, 4 and 16 KB
// with 4-byte blocks, indexed either conventionally (modulo) or by an
// application-specific XOR function. This simulator supports those
// configurations plus set-associative, fully-associative and
// skewed-associative organisations used by the baselines and related
// work, and classifies misses into compulsory / capacity / conflict via
// an auxiliary fully-associative LRU shadow directory.
package cache

import (
	"context"
	"fmt"
	"math/bits"

	"xoridx/internal/hash"
	"xoridx/internal/lru"
	"xoridx/internal/trace"
	"xoridx/internal/xerr"
)

// Replacement selects the victim policy for associative sets.
type Replacement int

const (
	// LRU evicts the least recently used line (the paper's policy).
	LRU Replacement = iota
	// FIFO evicts the oldest-filled line regardless of reuse.
	FIFO
	// Random evicts a pseudo-random line (deterministic xorshift, so
	// simulations stay reproducible). Random replacement dodges the
	// cyclic-pattern pathology of LRU that the paper's §6.1 notes.
	Random
)

// Config describes a cache organisation.
type Config struct {
	SizeBytes  int         // total capacity
	BlockBytes int         // line size (power of two)
	Ways       int         // associativity; 1 = direct mapped
	Index      hash.Func   // index+tag function; nil = modulo over 16 bits
	Repl       Replacement // victim policy; default LRU
}

// Blocks returns the capacity in blocks.
func (c Config) Blocks() int { return c.SizeBytes / c.BlockBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Blocks() / c.Ways }

// SetBits returns log2(Sets), exact for the power-of-two set counts
// every valid Config has. For a non-power-of-two set count it returns
// -1 instead of the silent ceil(log2) it used to report; validate
// rejects such geometries before any simulator consumes the value.
func (c Config) SetBits() int {
	s := c.Sets()
	if s <= 0 || s&(s-1) != 0 {
		return -1
	}
	return bits.TrailingZeros(uint(s))
}

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v: %w", c, xerr.ErrInvalidGeometry)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two: %w", c.BlockBytes, xerr.ErrInvalidGeometry)
	}
	if c.SizeBytes%(c.BlockBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*block: %w", c.SizeBytes, xerr.ErrInvalidGeometry)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two: %w", s, xerr.ErrInvalidGeometry)
	}
	return nil
}

// Stats accumulates simulation results.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Compulsory uint64 // first-ever touch of the block
	Capacity   uint64 // non-compulsory miss that an FA-LRU cache of equal capacity would also incur
	Conflict   uint64 // remaining misses
	Writes     uint64 // store accesses
	Writebacks uint64 // dirty lines evicted (write-back policy)
}

// Hits returns Accesses - Misses.
func (s Stats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRate returns Misses/Accesses (0 for an empty run).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MissesPerKOp normalises misses to the paper's misses-per-K-uop metric.
func (s Stats) MissesPerKOp(ops uint64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(ops)
}

// line is one cache line; valid distinguishes cold lines. The block
// address is redundant with (tag, index) but kept so victim buffers and
// reconfiguration models can recover it without inverting the hash.
type line struct {
	tag   uint64
	block uint64
	valid bool
	dirty bool   // written since fill (write-back policy)
	used  uint64 // LRU timestamp within the set
}

// Cache is a trace-driven simulator instance.
type Cache struct {
	cfg     Config
	idx     hash.Func
	sets    [][]line
	clock   uint64
	stats   Stats
	shadow  *lru.DistanceTree // classifies capacity vs conflict misses
	seen    map[uint64]bool   // blocks ever touched (compulsory detection)
	classif bool
	rng     uint64 // xorshift state for Random replacement
}

// New builds a cache from the configuration. When cfg.Index is nil, a
// conventional modulo function over 16 block-address bits is used.
// Classification of misses (compulsory/capacity/conflict) is enabled by
// default; disable with DisableClassification for speed.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	idx := cfg.Index
	if idx == nil {
		idx = hash.Modulo(16, cfg.SetBits())
	}
	if idx.SetBits() != cfg.SetBits() {
		return nil, fmt.Errorf("cache: index function has %d set bits, geometry needs %d: %w", idx.SetBits(), cfg.SetBits(), xerr.ErrInvalidGeometry)
	}
	sets := make([][]line, cfg.Sets())
	backing := make([]line, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:     cfg,
		idx:     idx,
		sets:    sets,
		shadow:  lru.NewDistanceTree(),
		seen:    make(map[uint64]bool),
		classif: true,
		rng:     0x243F6A8885A308D3, // pi digits: fixed, reproducible
	}, nil
}

// MustNew is New panicking on error — the regexp.MustCompile
// convention, for configurations known valid by construction (fixed
// geometries in tests and experiment tables). Library code handling
// caller-supplied configurations should use New and propagate the
// wrapped xerr.ErrInvalidGeometry instead.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// DisableClassification turns off the FA shadow directory; Stats will
// then report only Accesses and Misses.
func (c *Cache) DisableClassification() { c.classif = false }

// Access simulates one read access by byte address and reports whether
// it missed.
func (c *Cache) Access(addr uint64) bool {
	return c.access(addr/uint64(c.cfg.BlockBytes), false)
}

// Write simulates one store by byte address (write-allocate,
// write-back) and reports whether it missed.
func (c *Cache) Write(addr uint64) bool {
	return c.access(addr/uint64(c.cfg.BlockBytes), true)
}

// AccessBlock simulates one read access by block address.
func (c *Cache) AccessBlock(block uint64) bool {
	return c.access(block, false)
}

// WriteBlock simulates one store by block address.
func (c *Cache) WriteBlock(block uint64) bool {
	return c.access(block, true)
}

func (c *Cache) access(block uint64, isWrite bool) bool {
	c.clock++
	c.stats.Accesses++
	if isWrite {
		c.stats.Writes++
	}
	set := c.idx.Index(block)
	tag := hash.TagWithHighBits(c.idx, block)

	lines := c.sets[set]
	victim := 0
	haveFree := false
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			if c.cfg.Repl != FIFO { // FIFO keeps fill time as the stamp
				lines[i].used = c.clock
			}
			if isWrite {
				lines[i].dirty = true
			}
			if c.classif {
				c.shadow.Touch(block)
			}
			return false
		}
		if !lines[i].valid && !haveFree {
			victim = i
			haveFree = true
		} else if !haveFree && lines[i].used < lines[victim].used {
			victim = i
		}
	}
	if !haveFree && c.cfg.Repl == Random && len(lines) > 1 {
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		victim = int(c.rng % uint64(len(lines)))
	}

	// Miss: classify, account the writeback, then fill (write-allocate).
	c.stats.Misses++
	if lines[victim].valid && lines[victim].dirty {
		c.stats.Writebacks++
	}
	if c.classif {
		dist := c.shadow.Touch(block)
		switch {
		case !c.seen[block]:
			c.stats.Compulsory++
			c.seen[block] = true
		case dist < 0 || dist >= c.cfg.Blocks():
			c.stats.Capacity++
		default:
			c.stats.Conflict++
		}
	}
	lines[victim] = line{tag: tag, block: block, valid: true, dirty: isWrite, used: c.clock}
	return true
}

// Run simulates an entire trace (honouring read/write kinds) and
// returns the statistics.
func (c *Cache) Run(t *trace.Trace) Stats {
	for _, a := range t.Accesses {
		c.access(a.Addr/uint64(c.cfg.BlockBytes), a.Kind == trace.Write)
	}
	return c.stats
}

// ctxCheckEvery is the cancellation-check granularity of the simulation
// loops, in accesses: one channel poll amortised over 8 K set lookups.
const ctxCheckEvery = 8192

// RunCtx is Run with cooperative cancellation: the loop checks ctx
// every ctxCheckEvery accesses and returns the statistics accumulated
// so far alongside a wrapped xerr.ErrCanceled when the context is done.
func (c *Cache) RunCtx(ctx context.Context, t *trace.Trace) (Stats, error) {
	for start := 0; start < len(t.Accesses); start += ctxCheckEvery {
		if err := xerr.Check(ctx); err != nil {
			return c.stats, err
		}
		end := start + ctxCheckEvery
		if end > len(t.Accesses) {
			end = len(t.Accesses)
		}
		for _, a := range t.Accesses[start:end] {
			c.access(a.Addr/uint64(c.cfg.BlockBytes), a.Kind == trace.Write)
		}
	}
	return c.stats, nil
}

// RunBlocks simulates a block-address read sequence.
func (c *Cache) RunBlocks(blocks []uint64) Stats {
	for _, b := range blocks {
		c.AccessBlock(b)
	}
	return c.stats
}

// RunBlocksCtx is RunBlocks with cooperative cancellation on the same
// terms as RunCtx.
func (c *Cache) RunBlocksCtx(ctx context.Context, blocks []uint64) (Stats, error) {
	for start := 0; start < len(blocks); start += ctxCheckEvery {
		if err := xerr.Check(ctx); err != nil {
			return c.stats, err
		}
		end := start + ctxCheckEvery
		if end > len(blocks) {
			end = len(blocks)
		}
		for _, b := range blocks[start:end] {
			c.AccessBlock(b)
		}
	}
	return c.stats, nil
}

// MemoryTraffic returns the number of block transfers to/from memory:
// one fill per miss plus one transfer per writeback.
func (s Stats) MemoryTraffic() uint64 { return s.Misses + s.Writebacks }

// Stats returns the statistics accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// SimulateBlocks is a convenience helper: build a direct-mapped cache
// with the given geometry and index function, run the block sequence,
// return total misses. Classification is disabled for speed.
func SimulateBlocks(blocks []uint64, sizeBytes, blockBytes int, idx hash.Func) uint64 {
	c := MustNew(Config{SizeBytes: sizeBytes, BlockBytes: blockBytes, Ways: 1, Index: idx})
	c.DisableClassification()
	// RunBlocks interprets values as block addresses already.
	c.RunBlocks(blocks)
	return c.stats.Misses
}

// SimulateBlocksCtx is SimulateBlocks with cooperative cancellation.
func SimulateBlocksCtx(ctx context.Context, blocks []uint64, sizeBytes, blockBytes int, idx hash.Func) (uint64, error) {
	c, err := New(Config{SizeBytes: sizeBytes, BlockBytes: blockBytes, Ways: 1, Index: idx})
	if err != nil {
		return 0, err
	}
	c.DisableClassification()
	if _, err := c.RunBlocksCtx(ctx, blocks); err != nil {
		return 0, err
	}
	return c.stats.Misses, nil
}

// Flush invalidates every line, as a reconfiguration of the index
// function requires in real hardware (set indices change, so resident
// lines become unreachable). Statistics and the compulsory-miss shadow
// state are preserved: re-fetching a flushed block counts as a miss but
// not as a compulsory one.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}

// SetIndex reconfigures the index function and flushes the cache (the
// two are inseparable in hardware — see Flush). The new function must
// produce the same number of set bits.
func (c *Cache) SetIndex(f hash.Func) error {
	if f.SetBits() != c.cfg.SetBits() {
		return fmt.Errorf("cache: new index function has %d set bits, geometry needs %d: %w",
			f.SetBits(), c.cfg.SetBits(), xerr.ErrInvalidGeometry)
	}
	c.idx = f
	c.Flush()
	return nil
}
