package cache

import (
	"fmt"

	"xoridx/internal/hash"
)

// VictimCache is a direct-mapped cache backed by a small
// fully-associative victim buffer (Jouppi, ISCA 1990): lines evicted
// from the main cache park in the buffer, and a main-cache miss that
// hits the buffer swaps the line back. It is the classic hardware
// alternative for absorbing conflict misses and serves as one more
// baseline for the XOR-indexing comparison.
type VictimCache struct {
	main    *Cache
	victims []victimLine
	clock   uint64
	stats   Stats
	swaps   uint64
}

type victimLine struct {
	block uint64
	valid bool
	used  uint64
}

// NewVictim builds a direct-mapped main cache with cfg plus a
// fully-associative victim buffer of victimLines entries.
func NewVictim(cfg Config, victimLines int) (*VictimCache, error) {
	if cfg.Ways != 1 {
		return nil, fmt.Errorf("cache: victim buffer backs a direct-mapped cache, got %d ways", cfg.Ways)
	}
	if victimLines <= 0 {
		return nil, fmt.Errorf("cache: victim buffer needs > 0 lines")
	}
	main, err := New(cfg)
	if err != nil {
		return nil, err
	}
	main.DisableClassification()
	return &VictimCache{main: main, victims: make([]victimLine, victimLines)}, nil
}

// AccessBlock simulates one access; reports whether it missed in BOTH
// the main cache and the victim buffer (i.e. went to memory).
func (v *VictimCache) AccessBlock(block uint64) bool {
	v.clock++
	v.stats.Accesses++
	set := v.main.idx.Index(block)
	tag := hash.TagWithHighBits(v.main.idx, block)
	ln := &v.main.sets[set][0]
	if ln.valid && ln.tag == tag {
		ln.used = v.clock
		return false
	}
	// Main miss: probe the victim buffer.
	// The buffer is keyed by block address; the main line remembers its
	// block so eviction does not need to invert the hash function.
	evictedBlock, evictedValid := uint64(0), ln.valid
	if ln.valid {
		evictedBlock = v.blockOf(set)
	}
	for i := range v.victims {
		if v.victims[i].valid && v.victims[i].block == block {
			// Victim hit: swap with the main line.
			v.swaps++
			if evictedValid {
				v.victims[i] = victimLine{block: evictedBlock, valid: true, used: v.clock}
			} else {
				v.victims[i].valid = false
			}
			v.fill(set, tag, block)
			return false
		}
	}
	// Full miss: fill main, push the evicted line into the buffer (LRU).
	v.stats.Misses++
	if evictedValid {
		lru := 0
		for i := range v.victims {
			if !v.victims[i].valid {
				lru = i
				break
			}
			if v.victims[i].used < v.victims[lru].used {
				lru = i
			}
		}
		v.victims[lru] = victimLine{block: evictedBlock, valid: true, used: v.clock}
	}
	v.fill(set, tag, block)
	return true
}

func (v *VictimCache) blockOf(set uint64) uint64 {
	return v.main.sets[set][0].block
}

func (v *VictimCache) fill(set uint64, tag, block uint64) {
	v.main.sets[set][0] = line{tag: tag, valid: true, used: v.clock, block: block}
}

// RunBlocks simulates a block sequence.
func (v *VictimCache) RunBlocks(blocks []uint64) Stats {
	for _, b := range blocks {
		v.AccessBlock(b)
	}
	return v.stats
}

// Stats returns accumulated statistics (misses = memory accesses).
func (v *VictimCache) Stats() Stats { return v.stats }

// Swaps returns how many misses the victim buffer absorbed.
func (v *VictimCache) Swaps() uint64 { return v.swaps }
