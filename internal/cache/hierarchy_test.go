package cache

import (
	"testing"

	"xoridx/internal/hash"
	"xoridx/internal/trace"
)

func twoLevel(t *testing.T, l1Index hash.Func) *Hierarchy {
	t.Helper()
	l1 := Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1, Index: l1Index}
	l2 := Config{SizeBytes: 16384, BlockBytes: 16, Ways: 4, Index: hash.Modulo(16, 8)}
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyBasic(t *testing.T) {
	h := twoLevel(t, nil)
	// Cold access misses both levels.
	m1, m2 := h.Access(0x1000, false)
	if !m1 || !m2 {
		t.Fatal("cold access must miss both levels")
	}
	// Re-access hits L1.
	m1, _ = h.Access(0x1000, false)
	if m1 {
		t.Fatal("second access must hit L1")
	}
	// An L1 conflict that stays within L2's reach: evict from L1, then
	// come back — L1 misses but L2 hits.
	h.Access(0x1000+1024, false) // alias in 256-set L1
	m1, m2 = h.Access(0x1000, false)
	if !m1 {
		t.Fatal("L1 must conflict-miss")
	}
	if m2 {
		t.Fatal("L2 must absorb the L1 conflict miss")
	}
	s1, s2 := h.L1.Stats(), h.L2.Stats()
	if s1.Accesses != 4 || s2.Accesses != s1.Misses {
		t.Fatalf("level accounting wrong: L1 %+v, L2 %+v", s1, s2)
	}
}

func TestHierarchyXORL1StillPays(t *testing.T) {
	// Thrash pattern absorbed by L2 either way; XOR-L1 removes the L2
	// accesses entirely, which is the latency/energy win.
	var tr trace.Trace
	for i := 0; i < 200; i++ {
		tr.Append(0, trace.Read)
		tr.Append(256*4, trace.Read)
	}
	conv := twoLevel(t, nil)
	s1c, s2c := conv.Run(&tr)
	f, err := hash.PermutationBased(16, 8, [][]int{{8}, {}, {}, {}, {}, {}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	x := twoLevel(t, f)
	s1x, s2x := x.Run(&tr)
	if s1c.Misses < 390 {
		t.Fatalf("conventional L1 should thrash, got %d misses", s1c.Misses)
	}
	if s1x.Misses != 2 {
		t.Fatalf("XOR L1 misses = %d, want 2", s1x.Misses)
	}
	if s2x.Accesses >= s2c.Accesses {
		t.Fatal("XOR L1 must slash L2 traffic")
	}
	// AMAT: 1-cycle L1, 8-cycle L2, 60-cycle memory.
	if conv.AMAT(1, 8, 60) <= x.AMAT(1, 8, 60) {
		t.Fatalf("XOR hierarchy AMAT (%.2f) must beat conventional (%.2f)",
			x.AMAT(1, 8, 60), conv.AMAT(1, 8, 60))
	}
}

func TestHierarchyValidation(t *testing.T) {
	bad := Config{SizeBytes: 100, BlockBytes: 4, Ways: 1}
	good := Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1}
	if _, err := NewHierarchy(bad, good); err == nil {
		t.Fatal("bad L1 must fail")
	}
	if _, err := NewHierarchy(good, bad); err == nil {
		t.Fatal("bad L2 must fail")
	}
}

func TestHierarchyAMATEmpty(t *testing.T) {
	h := twoLevel(t, nil)
	if h.AMAT(1, 8, 60) != 0 {
		t.Fatal("empty run AMAT must be 0")
	}
}
