package cache_test

import (
	"fmt"

	"xoridx/internal/cache"
	"xoridx/internal/hash"
)

// Example_xorIndexing contrasts modulo and XOR indexing on the classic
// cache-size-stride pattern.
func Example_xorIndexing() {
	var blocks []uint64
	for rep := 0; rep < 5; rep++ {
		for i := uint64(0); i < 32; i++ {
			blocks = append(blocks, i*256) // all map to set 0 under modulo
		}
	}
	conv := cache.MustNew(cache.Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1})
	fmt.Println("modulo misses:", conv.RunBlocks(blocks).Misses)

	f, _ := hash.PermutationBased(16, 8, [][]int{
		{8}, {9}, {10}, {11}, {12}, {}, {}, {},
	})
	xc := cache.MustNew(cache.Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1, Index: f})
	fmt.Println("XOR misses:   ", xc.RunBlocks(blocks).Misses)
	// Output:
	// modulo misses: 160
	// XOR misses:    32
}

// Example_classification shows the three-C miss breakdown.
func Example_classification() {
	c := cache.MustNew(cache.Config{SizeBytes: 64, BlockBytes: 4, Ways: 1})
	c.RunBlocks([]uint64{0, 16, 0, 16, 0, 16}) // 16 sets: 0 and 16 alias
	s := c.Stats()
	fmt.Printf("compulsory=%d capacity=%d conflict=%d\n", s.Compulsory, s.Capacity, s.Conflict)
	// Output:
	// compulsory=2 capacity=0 conflict=4
}
