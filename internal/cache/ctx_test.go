package cache

import (
	"context"
	"errors"
	"testing"

	"xoridx/internal/hash"
	"xoridx/internal/trace"
	"xoridx/internal/xerr"
)

func ctxTestTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "ctx"}
	for i := 0; i < n; i++ {
		tr.Append(uint64(i*64)&0xffff, trace.Read)
	}
	return tr
}

func TestRunCtxMatchesRun(t *testing.T) {
	tr := ctxTestTrace(20000)
	cfg := Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1, Index: hash.Modulo(16, 8)}
	want := MustNew(cfg).Run(tr)
	got, err := MustNew(cfg).RunCtx(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("RunCtx stats %+v differ from Run %+v", got, want)
	}
}

func TestRunCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := MustNew(Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1, Index: hash.Modulo(16, 8)})
	_, err := c.RunCtx(ctx, ctxTestTrace(10))
	if !errors.Is(err, xerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must wrap ErrCanceled and context.Canceled", err)
	}
}

func TestSimulateBlocksCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateBlocksCtx(ctx, []uint64{1, 2, 3}, 256, 4, hash.Modulo(12, 6))
	if !errors.Is(err, xerr.ErrCanceled) {
		t.Fatalf("error %v must wrap ErrCanceled", err)
	}
	// An uncanceled run must agree with the plain helper.
	want := SimulateBlocks([]uint64{1, 2, 3, 1, 2, 3}, 256, 4, hash.Modulo(12, 6))
	got, err := SimulateBlocksCtx(context.Background(), []uint64{1, 2, 3, 1, 2, 3}, 256, 4, hash.Modulo(12, 6))
	if err != nil || got != want {
		t.Fatalf("SimulateBlocksCtx = %d, %v; want %d", got, err, want)
	}
}

func TestInvalidGeometryTyped(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, BlockBytes: 4, Ways: 1},
		{SizeBytes: 1000, BlockBytes: 3, Ways: 1},
		{SizeBytes: 1024, BlockBytes: 4, Ways: 3},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, xerr.ErrInvalidGeometry) {
			t.Errorf("config %d: error %v must wrap ErrInvalidGeometry", i, err)
		}
	}
}
