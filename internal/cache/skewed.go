package cache

import (
	"fmt"

	"xoridx/internal/hash"
)

// Skewed is a skewed-associative cache (Seznec & Bodin, cited as [2] in
// the paper): each way (bank) uses a different index function, so two
// blocks that conflict in one bank rarely conflict in another. Included
// as a related-work baseline for the evaluation harness.
//
// Replacement: LRU across the candidate lines (one per bank), which is
// a common approximation for 2-way skewed caches.
type Skewed struct {
	banks      [][]line // banks[w][set]
	idx        []hash.Func
	blockBytes int
	clock      uint64
	stats      Stats
}

// NewSkewed builds a skewed cache with one bank per index function.
// Every function must produce the same number of set bits; total
// capacity is len(idx) * 2^setBits * blockBytes.
func NewSkewed(blockBytes int, idx []hash.Func) (*Skewed, error) {
	if len(idx) < 2 {
		return nil, fmt.Errorf("cache: skewed cache needs >= 2 banks, got %d", len(idx))
	}
	m := idx[0].SetBits()
	for _, f := range idx {
		if f.SetBits() != m {
			return nil, fmt.Errorf("cache: skewed banks disagree on set bits (%d vs %d)", f.SetBits(), m)
		}
	}
	banks := make([][]line, len(idx))
	for w := range banks {
		banks[w] = make([]line, 1<<uint(m))
	}
	return &Skewed{banks: banks, idx: idx, blockBytes: blockBytes}, nil
}

// Access simulates one access by byte address; reports a miss.
func (s *Skewed) Access(addr uint64) bool {
	return s.AccessBlock(addr / uint64(s.blockBytes))
}

// AccessBlock simulates one access by block address.
func (s *Skewed) AccessBlock(block uint64) bool {
	s.clock++
	s.stats.Accesses++
	// In a skewed cache the full block address must be stored (or an
	// equivalently unambiguous tag), because set indices differ per
	// bank; we store the block address itself as the tag.
	victimBank := 0
	var victimAge uint64 = ^uint64(0)
	for w, f := range s.idx {
		set := f.Index(block)
		ln := &s.banks[w][set]
		if ln.valid && ln.tag == block {
			ln.used = s.clock
			return false
		}
		age := uint64(0)
		if ln.valid {
			age = ln.used
		}
		if age < victimAge {
			victimAge = age
			victimBank = w
		}
	}
	s.stats.Misses++
	set := s.idx[victimBank].Index(block)
	s.banks[victimBank][set] = line{tag: block, valid: true, used: s.clock}
	return true
}

// RunBlocks simulates a block-address sequence and returns statistics.
func (s *Skewed) RunBlocks(blocks []uint64) Stats {
	for _, b := range blocks {
		s.AccessBlock(b)
	}
	return s.stats
}

// Stats returns accumulated statistics.
func (s *Skewed) Stats() Stats { return s.stats }
