package cache

import (
	"math/rand"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/lru"
	"xoridx/internal/trace"
)

func dmConfig(size int) Config {
	return Config{SizeBytes: size, BlockBytes: 4, Ways: 1}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{SizeBytes: 4096, BlockBytes: 4, Ways: 1}
	if cfg.Blocks() != 1024 || cfg.Sets() != 1024 || cfg.SetBits() != 10 {
		t.Fatalf("geometry wrong: %d blocks, %d sets, %d bits", cfg.Blocks(), cfg.Sets(), cfg.SetBits())
	}
	cfg.Ways = 4
	if cfg.Sets() != 256 || cfg.SetBits() != 8 {
		t.Fatal("associative geometry wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, BlockBytes: 4, Ways: 1},
		{SizeBytes: 1024, BlockBytes: 3, Ways: 1},
		{SizeBytes: 1000, BlockBytes: 4, Ways: 1}, // 250 sets: not a power of 2
		{SizeBytes: 1024, BlockBytes: 4, Ways: 0},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	// Mismatched index function.
	cfg := dmConfig(1024) // 8 set bits
	cfg.Index = hash.Modulo(16, 10)
	if _, err := New(cfg); err == nil {
		t.Error("set-bit mismatch should be rejected")
	}
}

func TestDirectMappedHitMiss(t *testing.T) {
	c := MustNew(dmConfig(1024)) // 256 sets of 4 bytes
	if !c.Access(0x1000) {
		t.Fatal("cold access must miss")
	}
	if c.Access(0x1000) {
		t.Fatal("repeat access must hit")
	}
	if c.Access(0x1002) {
		t.Fatal("same block (byte 2) must hit")
	}
	// 0x1000 and 0x1400 differ only above the 8 index bits: conflict.
	if !c.Access(0x1400) {
		t.Fatal("aliasing block must miss")
	}
	// Direct-mapped: the alias evicted 0x1000, so it conflicts again.
	if !c.Access(0x1000) {
		t.Fatal("0x1000 must have been evicted by its alias")
	}
	s := c.Stats()
	if s.Accesses != 5 || s.Misses != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Conflict != 1 {
		t.Fatalf("conflict misses = %d, want 1", s.Conflict)
	}
}

func TestMissClassification(t *testing.T) {
	// 16-block direct-mapped cache (64 B).
	c := MustNew(dmConfig(64))
	// Two blocks aliasing to set 0: 0 and 16 (block addresses).
	seq := []uint64{0, 16, 0, 16, 0, 16}
	c.RunBlocks(seq)
	s := c.Stats()
	if s.Compulsory != 2 {
		t.Fatalf("compulsory = %d, want 2", s.Compulsory)
	}
	if s.Conflict != 4 {
		t.Fatalf("conflict = %d, want 4", s.Conflict)
	}
	if s.Capacity != 0 {
		t.Fatalf("capacity = %d, want 0", s.Capacity)
	}

	// Cyclic sweep over 32 blocks in a 16-block cache: pure capacity.
	c2 := MustNew(dmConfig(64))
	var sweep []uint64
	for r := 0; r < 3; r++ {
		for b := uint64(0); b < 32; b++ {
			sweep = append(sweep, b)
		}
	}
	c2.RunBlocks(sweep)
	s2 := c2.Stats()
	if s2.Compulsory != 32 {
		t.Fatalf("compulsory = %d, want 32", s2.Compulsory)
	}
	if s2.Conflict != 0 {
		t.Fatalf("conflict = %d, want 0 (got capacity %d)", s2.Conflict, s2.Capacity)
	}
	if s2.Capacity != uint64(len(sweep))-32 {
		t.Fatalf("capacity = %d, want %d", s2.Capacity, len(sweep)-32)
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	// 2-way, 2 sets, block 4 B => 16 B cache.
	c := MustNew(Config{SizeBytes: 16, BlockBytes: 4, Ways: 2,
		Index: hash.Modulo(16, 1)})
	// Three blocks mapping to set 0: 0, 2, 4 (even block addresses).
	c.AccessBlock(0) // miss
	c.AccessBlock(2) // miss
	c.AccessBlock(0) // hit, makes 2 the LRU
	c.AccessBlock(4) // miss, evicts 2
	if c.AccessBlock(0) {
		t.Fatal("0 must still be resident")
	}
	if !c.AccessBlock(2) {
		t.Fatal("2 must have been evicted")
	}
	s := c.Stats()
	if s.Misses != 4 {
		t.Fatalf("misses = %d, want 4", s.Misses)
	}
}

func TestFullyAssociativeMatchesDistanceTree(t *testing.T) {
	// FA cache = 1 set with Ways = capacity; misses must equal the
	// stack-distance model from package lru.
	rng := rand.New(rand.NewSource(5))
	blocks := make([]uint64, 4000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(100))
	}
	capacity := 32
	c := MustNew(Config{SizeBytes: capacity * 4, BlockBytes: 4, Ways: capacity,
		Index: hash.Modulo(16, 0)})
	got := c.RunBlocks(blocks).Misses
	want := lru.FAMisses(blocks, capacity)
	if got != want {
		t.Fatalf("FA misses %d, distance-tree model %d", got, want)
	}
}

func TestXORIndexingRemovesStrideConflicts(t *testing.T) {
	// A stride of exactly the cache size in a direct-mapped cache maps
	// everything to the same set; a permutation-based XOR function can
	// spread it. This is the paper's core motivating pattern (Rau [9]).
	const sets = 256 // 1 KB cache, 4 B blocks
	var blocks []uint64
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 64; i++ {
			blocks = append(blocks, i*sets) // all map to set 0 under modulo
		}
	}
	conv := MustNew(Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1})
	convMisses := conv.RunBlocks(blocks).Misses
	if convMisses != uint64(len(blocks)) {
		t.Fatalf("modulo cache should always miss, got %d/%d", convMisses, len(blocks))
	}
	// XOR the stride-carrying bits (8..13) into the index.
	extra := make([][]int, 8)
	for c := 0; c < 6; c++ {
		extra[c] = []int{8 + c}
	}
	f, err := hash.PermutationBased(16, 8, extra)
	if err != nil {
		t.Fatal(err)
	}
	x := MustNew(Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1, Index: f})
	xorMisses := x.RunBlocks(blocks).Misses
	if xorMisses != 64 {
		t.Fatalf("XOR cache should only take 64 compulsory misses, got %d", xorMisses)
	}
}

func TestRunTrace(t *testing.T) {
	tr := &trace.Trace{Ops: 100}
	tr.Append(0x100, trace.Read)
	tr.Append(0x100, trace.Read)
	tr.Append(0x200, trace.Write)
	c := MustNew(dmConfig(1024))
	s := c.Run(tr)
	if s.Accesses != 3 || s.Misses != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.MissesPerKOp(tr.OpsOrLen()) != 20 {
		t.Fatalf("misses/Kop = %v", s.MissesPerKOp(tr.OpsOrLen()))
	}
	if s.MissRate() != 2.0/3.0 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
	if s.Hits() != 1 {
		t.Fatalf("hits = %d", s.Hits())
	}
}

func TestStatsEdgeCases(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.MissesPerKOp(0) != 0 {
		t.Fatal("zero-division guards failed")
	}
}

func TestTagDisambiguatesHighBits(t *testing.T) {
	// Blocks identical in the low 16 bits but different above must not
	// alias even though the index function only hashes 16 bits.
	c := MustNew(dmConfig(1024))
	c.AccessBlock(0x0_1234)
	if !c.AccessBlock(0x1_1234) {
		t.Fatal("blocks differing above bit 16 must not alias")
	}
	if c.AccessBlock(0x1_1234) {
		t.Fatal("re-access should hit")
	}
}

func TestDisableClassification(t *testing.T) {
	c := MustNew(dmConfig(64))
	c.DisableClassification()
	c.RunBlocks([]uint64{0, 16, 0, 16})
	s := c.Stats()
	if s.Misses != 4 {
		t.Fatalf("misses = %d", s.Misses)
	}
	if s.Compulsory != 0 && s.Conflict != 0 {
		t.Fatal("classification should be off")
	}
}

func TestSimulateBlocksHelper(t *testing.T) {
	blocks := []uint64{0, 16, 0, 16}
	if got := SimulateBlocks(blocks, 64, 4, nil); got != 4 {
		t.Fatalf("SimulateBlocks = %d", got)
	}
}

func TestSkewedBeatsDirectMappedOnAliases(t *testing.T) {
	// Two blocks aliasing under modulo thrash a DM cache but coexist in
	// a skewed cache whose second bank hashes differently.
	var blocks []uint64
	for i := 0; i < 100; i++ {
		blocks = append(blocks, 0, 256)
	}
	dm := MustNew(Config{SizeBytes: 1024, BlockBytes: 4, Ways: 1})
	dmMisses := dm.RunBlocks(blocks).Misses

	f0 := hash.Modulo(16, 8)
	h := gf2.Identity(16, 8)
	h.Cols[0] |= gf2.Unit(8) // bank 1 mixes bit 8 into index bit 0
	f1 := hash.MustXOR(h)
	sk, err := NewSkewed(4, []hash.Func{f0, f1})
	if err != nil {
		t.Fatal(err)
	}
	skMisses := sk.RunBlocks(blocks).Misses
	if skMisses != 2 {
		t.Fatalf("skewed cache should take 2 compulsory misses, got %d", skMisses)
	}
	if dmMisses != uint64(len(blocks)) {
		t.Fatalf("direct-mapped should thrash, got %d", dmMisses)
	}
}

func TestSkewedValidation(t *testing.T) {
	if _, err := NewSkewed(4, []hash.Func{hash.Modulo(16, 8)}); err == nil {
		t.Error("single bank should be rejected")
	}
	if _, err := NewSkewed(4, []hash.Func{hash.Modulo(16, 8), hash.Modulo(16, 9)}); err == nil {
		t.Error("mismatched set bits should be rejected")
	}
}

func TestSkewedHitPath(t *testing.T) {
	f0 := hash.Modulo(16, 4)
	h := gf2.Identity(16, 4)
	h.Cols[0] |= gf2.Unit(4)
	f1 := hash.MustXOR(h)
	sk, _ := NewSkewed(4, []hash.Func{f0, f1})
	if !sk.AccessBlock(7) {
		t.Fatal("cold miss expected")
	}
	if sk.AccessBlock(7) {
		t.Fatal("hit expected")
	}
	if got := sk.Stats().Misses; got != 1 {
		t.Fatalf("misses = %d", got)
	}
	if sk.Access(7 * 4) {
		t.Fatal("byte-address access of resident block should hit")
	}
}

func TestFlushInvalidatesLines(t *testing.T) {
	c := MustNew(dmConfig(1024))
	c.AccessBlock(5)
	if c.AccessBlock(5) {
		t.Fatal("should hit before flush")
	}
	c.Flush()
	if !c.AccessBlock(5) {
		t.Fatal("should miss after flush")
	}
	// Re-fetch after flush is NOT compulsory (block seen before).
	s := c.Stats()
	if s.Compulsory != 1 {
		t.Fatalf("compulsory = %d, want 1", s.Compulsory)
	}
}

func TestSetIndexReconfigures(t *testing.T) {
	c := MustNew(dmConfig(1024)) // 256 sets
	c.AccessBlock(0)
	c.AccessBlock(256) // evicts block 0 under modulo
	f, err := hash.PermutationBased(16, 8, [][]int{{8}, {}, {}, {}, {}, {}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetIndex(f); err != nil {
		t.Fatal(err)
	}
	// After reconfiguration, 0 and 256 no longer alias; both miss once
	// (flush), then coexist.
	c.AccessBlock(0)
	c.AccessBlock(256)
	if c.AccessBlock(0) || c.AccessBlock(256) {
		t.Fatal("blocks should coexist after reconfiguration")
	}
	// A mismatched function is rejected.
	if err := c.SetIndex(hash.Modulo(16, 9)); err == nil {
		t.Fatal("set-bit mismatch must be rejected")
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := MustNew(dmConfig(64)) // 16 sets
	// Write block 0 (miss, allocates dirty), then read its alias 16:
	// evicts the dirty line -> one writeback.
	if !c.WriteBlock(0) {
		t.Fatal("cold write must miss")
	}
	if !c.AccessBlock(16) {
		t.Fatal("alias must miss")
	}
	s := c.Stats()
	if s.Writes != 1 {
		t.Fatalf("writes = %d", s.Writes)
	}
	if s.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks)
	}
	if s.MemoryTraffic() != 3 { // 2 fills + 1 writeback
		t.Fatalf("traffic = %d", s.MemoryTraffic())
	}
	// Evicting a clean line adds no writeback.
	c.AccessBlock(32)
	if c.Stats().Writebacks != 1 {
		t.Fatal("clean eviction must not write back")
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := MustNew(dmConfig(64))
	c.AccessBlock(5)     // clean fill
	if c.WriteBlock(5) { // write hit
		t.Fatal("write to resident block must hit")
	}
	c.AccessBlock(5 + 16) // evict -> writeback
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
}

func TestRunHonoursWriteKind(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(0x10, trace.Write)
	tr.Append(0x10, trace.Read)
	c := MustNew(dmConfig(64))
	s := c.Run(tr)
	if s.Writes != 1 {
		t.Fatalf("writes = %d", s.Writes)
	}
}

func TestXORIndexingReducesWriteTraffic(t *testing.T) {
	// Thrashing writes cause a writeback per eviction; XOR indexing
	// that removes the conflicts also removes the write traffic — the
	// energy argument of the paper's introduction.
	var tr trace.Trace
	for i := 0; i < 100; i++ {
		tr.Append(0, trace.Write)
		tr.Append(64*4, trace.Write) // alias in 16-set cache
	}
	conv := MustNew(dmConfig(64))
	base := conv.Run(&tr)
	f, err := hash.PermutationBased(16, 4, [][]int{{6}, {}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dmConfig(64)
	cfg.Index = f
	x := MustNew(cfg)
	opt := x.Run(&tr)
	if base.Writebacks < 190 {
		t.Fatalf("baseline writebacks = %d, want ~198", base.Writebacks)
	}
	if opt.Writebacks != 0 {
		t.Fatalf("XOR writebacks = %d, want 0 (lines stay resident)", opt.Writebacks)
	}
	if opt.MemoryTraffic() >= base.MemoryTraffic()/10 {
		t.Fatalf("traffic %d vs %d: XOR should slash memory traffic", opt.MemoryTraffic(), base.MemoryTraffic())
	}
}

func TestRandomReplacementEscapesLRUCycle(t *testing.T) {
	// Cyclic access over capacity+1 blocks: LRU always misses, random
	// replacement gets some hits (the §6.1 "sub-optimality of LRU").
	var blocks []uint64
	for rep := 0; rep < 200; rep++ {
		for b := uint64(0); b < 5; b++ {
			blocks = append(blocks, b)
		}
	}
	faCfg := func(r Replacement) Config {
		return Config{SizeBytes: 16, BlockBytes: 4, Ways: 4,
			Index: hash.Modulo(16, 0), Repl: r}
	}
	lruC := MustNew(faCfg(LRU))
	lruC.DisableClassification()
	lruMisses := lruC.RunBlocks(blocks).Misses
	rndC := MustNew(faCfg(Random))
	rndC.DisableClassification()
	rndMisses := rndC.RunBlocks(blocks).Misses
	if lruMisses != uint64(len(blocks)) {
		t.Fatalf("LRU on a 5-block cycle in 4 ways must always miss: %d/%d", lruMisses, len(blocks))
	}
	if rndMisses >= lruMisses {
		t.Fatalf("random replacement should beat LRU on the cycle: %d vs %d", rndMisses, lruMisses)
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	// 2-way set; fill A, B; touch A (reuse); insert C.
	// LRU evicts B (least recent); FIFO evicts A (oldest fill).
	seq := []uint64{0, 2, 0, 4}
	run := func(r Replacement) *Cache {
		c := MustNew(Config{SizeBytes: 16, BlockBytes: 4, Ways: 2,
			Index: hash.Modulo(16, 1), Repl: r})
		c.DisableClassification()
		c.RunBlocks(seq)
		return c
	}
	lruC := run(LRU)
	if lruC.AccessBlock(0) { // must still be resident
		t.Fatal("LRU should have kept the reused block")
	}
	fifoC := run(FIFO)
	if !fifoC.AccessBlock(0) { // evicted despite reuse
		t.Fatal("FIFO should have evicted the oldest-filled block")
	}
}

func TestReplacementDeterministic(t *testing.T) {
	blocks := make([]uint64, 5000)
	rng := rand.New(rand.NewSource(9))
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(64))
	}
	run := func() uint64 {
		c := MustNew(Config{SizeBytes: 64, BlockBytes: 4, Ways: 4,
			Index: hash.Modulo(16, 2), Repl: Random})
		c.DisableClassification()
		return c.RunBlocks(blocks).Misses
	}
	if run() != run() {
		t.Fatal("random replacement must be deterministic across runs")
	}
}

func TestSetBitsExact(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{SizeBytes: 4096, BlockBytes: 4, Ways: 1}, 10},
		{Config{SizeBytes: 4096, BlockBytes: 4, Ways: 4}, 8},
		{Config{SizeBytes: 4096, BlockBytes: 64, Ways: 1}, 6},
		{Config{SizeBytes: 4, BlockBytes: 4, Ways: 1}, 0}, // one set
		// Invalid geometries: sets not a positive power of two.
		{Config{SizeBytes: 12, BlockBytes: 4, Ways: 1}, -1}, // 3 sets
		{Config{SizeBytes: 0, BlockBytes: 4, Ways: 1}, -1},
		{Config{SizeBytes: 4096, BlockBytes: 4, Ways: 3}, -1}, // 341 sets
	}
	for _, tc := range cases {
		if got := tc.cfg.SetBits(); got != tc.want {
			t.Errorf("SetBits(%+v) = %d, want %d", tc.cfg, got, tc.want)
		}
	}
}
