package cache

import (
	"fmt"

	"xoridx/internal/trace"
)

// Hierarchy composes two cache levels: every L1 miss probes L2, every
// L2 miss goes to memory. It answers a question the single-level paper
// leaves open: with a second level behind it, application-specific L1
// indexing still pays, because an L1 conflict miss costs an L2 access
// even when it hits there.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
}

// NewHierarchy wires two configured caches together. The levels keep
// independent statistics (inclusive behaviour: L2 sees only L1 misses;
// no back-invalidation, as in a simple embedded design).
func NewHierarchy(l1, l2 Config) (*Hierarchy, error) {
	c1, err := New(l1)
	if err != nil {
		return nil, fmt.Errorf("cache: L1: %w", err)
	}
	c2, err := New(l2)
	if err != nil {
		return nil, fmt.Errorf("cache: L2: %w", err)
	}
	c1.DisableClassification()
	c2.DisableClassification()
	return &Hierarchy{L1: c1, L2: c2}, nil
}

// Access simulates one access by byte address; the return values
// report where it was satisfied.
func (h *Hierarchy) Access(addr uint64, isWrite bool) (l1Miss, l2Miss bool) {
	block1 := addr / uint64(h.L1.cfg.BlockBytes)
	if !h.L1.access(block1, isWrite) {
		return false, false
	}
	block2 := addr / uint64(h.L2.cfg.BlockBytes)
	return true, h.L2.access(block2, false)
}

// Run simulates a trace through both levels.
func (h *Hierarchy) Run(t *trace.Trace) (l1, l2 Stats) {
	for _, a := range t.Accesses {
		h.Access(a.Addr, a.Kind == trace.Write)
	}
	return h.L1.Stats(), h.L2.Stats()
}

// AMAT returns the average memory access time in cycles for the given
// hit latencies and memory penalty, from the accumulated statistics.
func (h *Hierarchy) AMAT(l1Lat, l2Lat, memLat float64) float64 {
	s1 := h.L1.Stats()
	s2 := h.L2.Stats()
	if s1.Accesses == 0 {
		return 0
	}
	m1 := float64(s1.Misses) / float64(s1.Accesses)
	m2 := 0.0
	if s2.Accesses > 0 {
		m2 = float64(s2.Misses) / float64(s2.Accesses)
	}
	return l1Lat + m1*(l2Lat+m2*memLat)
}
