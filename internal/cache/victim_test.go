package cache

import (
	"math/rand"
	"testing"

	"xoridx/internal/hash"
)

func TestVictimValidation(t *testing.T) {
	if _, err := NewVictim(Config{SizeBytes: 64, BlockBytes: 4, Ways: 2}, 4); err == nil {
		t.Error("associative main cache must be rejected")
	}
	if _, err := NewVictim(dmConfig(64), 0); err == nil {
		t.Error("empty victim buffer must be rejected")
	}
	if _, err := NewVictim(Config{SizeBytes: 60, BlockBytes: 4, Ways: 1}, 4); err == nil {
		t.Error("bad geometry must be rejected")
	}
}

func TestVictimAbsorbsPingPong(t *testing.T) {
	// Two aliasing blocks thrash a direct-mapped cache; with a victim
	// buffer they ping-pong between main and buffer: only the two cold
	// misses reach memory.
	v, err := NewVictim(dmConfig(64), 4) // 16 sets
	if err != nil {
		t.Fatal(err)
	}
	var blocks []uint64
	for i := 0; i < 50; i++ {
		blocks = append(blocks, 0, 16)
	}
	s := v.RunBlocks(blocks)
	if s.Misses != 2 {
		t.Fatalf("memory misses = %d, want 2 (cold only)", s.Misses)
	}
	if v.Swaps() == 0 {
		t.Fatal("victim buffer should have absorbed the conflicts")
	}
	// Compare with the plain direct-mapped cache: total thrash.
	plain := MustNew(dmConfig(64))
	if got := plain.RunBlocks(blocks).Misses; got != 100 {
		t.Fatalf("plain cache misses = %d, want 100", got)
	}
}

func TestVictimOverflow(t *testing.T) {
	// More conflicting blocks than buffer entries: the buffer LRU
	// replaces and some misses reach memory again.
	v, err := NewVictim(dmConfig(64), 2) // 16 sets, 2 victim lines
	if err != nil {
		t.Fatal(err)
	}
	// Four blocks aliasing to set 0, cycled: working set of 4 > 1 main
	// + 2 victims.
	var blocks []uint64
	for r := 0; r < 20; r++ {
		blocks = append(blocks, 0, 16, 32, 48)
	}
	s := v.RunBlocks(blocks)
	// 4 cyclically-accessed blocks into 3 slots (1 main + 2 victims)
	// under LRU: the next block is always the one evicted longest ago,
	// so every access misses — the classic LRU pathology that the
	// paper's §6.1 alludes to ("sub-optimality of the LRU replacement
	// policy").
	if s.Misses != s.Accesses {
		t.Fatalf("cyclic overflow should thrash: %d misses of %d accesses", s.Misses, s.Accesses)
	}
}

func TestVictimNeverWorseThanPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	blocks := make([]uint64, 20000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(512)) * uint64(1+rng.Intn(4))
	}
	plain := MustNew(dmConfig(1024))
	plainMisses := plain.RunBlocks(blocks).Misses
	v, err := NewVictim(dmConfig(1024), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.RunBlocks(blocks).Misses; got > plainMisses {
		t.Fatalf("victim cache (%d) worse than plain (%d)", got, plainMisses)
	}
}

func TestVictimWithXORIndex(t *testing.T) {
	// Victim buffers compose with XOR indexing: the combination can
	// only help.
	f, err := hash.PermutationBased(16, 4, [][]int{{4}, {5}, {6}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dmConfig(64)
	cfg.Index = f
	v, err := NewVictim(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []uint64
	for i := 0; i < 50; i++ {
		blocks = append(blocks, 0, 16) // no longer alias under f
	}
	if got := v.RunBlocks(blocks).Misses; got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
}
