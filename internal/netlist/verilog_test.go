package netlist

import (
	"strings"
	"testing"

	"xoridx/internal/gf2"
)

// evalVerilogModel interprets the emitted Verilog's semantics directly
// from the netlist structures (a micro "RTL simulator" over the same
// assign graph), as a cross-check that the emitted expressions encode
// the same logic the Go Eval computes.
func TestVerilogStructure(t *testing.T) {
	nl := NewPermutationXOR2(12, 6)
	h := gf2.Identity(12, 6)
	h.Cols[1] |= gf2.Unit(8)
	h.Cols[4] |= gf2.Unit(10)
	if err := nl.Configure(h); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := nl.EmitVerilog(&sb, "dut"); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, frag := range []string{
		"module dut (",
		"input  wire [41:0] cfg_in", // 6*(12-6+1) = 42 switches
		"input  wire [11:0] addr",
		"output wire [5:0] index",
		"output wire [5:0] tag",
		"reg [41:0] cfg;",
		"always @(posedge clk) if (cfg_we) cfg <= cfg_in;",
		"^", // XOR gates present
		"endmodule",
	} {
		if !strings.Contains(v, frag) {
			t.Errorf("Verilog missing %q:\n%s", frag, v)
		}
	}
	// Every selector contributes one assign with len(inputs) cfg terms;
	// count cfg references = switch count.
	if got := strings.Count(v, "cfg["); got != nl.SwitchCount() {
		t.Errorf("cfg bit references = %d, want %d", got, nl.SwitchCount())
	}
	// One index assign per output bit.
	for i := 0; i < 6; i++ {
		if !strings.Contains(v, "assign index["+string(rune('0'+i))+"]") {
			t.Errorf("missing index[%d] assign", i)
		}
	}
}

func TestVerilogConfigLiteral(t *testing.T) {
	nl := NewPermutationXOR2(8, 4)
	if _, err := nl.VerilogConfigLiteral(); err == nil {
		t.Fatal("unconfigured netlist must refuse")
	}
	h := gf2.Identity(8, 4)
	h.Cols[0] |= gf2.Unit(6)
	if err := nl.Configure(h); err != nil {
		t.Fatal(err)
	}
	lit, err := nl.VerilogConfigLiteral()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(lit, "20'b") || len(lit) != 4+20 {
		t.Fatalf("literal %q", lit)
	}
	// Exactly m switches are on.
	if got := strings.Count(lit, "1"); got != 4 {
		t.Fatalf("%d switches on in %q, want 4", got, lit)
	}
	// Bit i of the literal (from the right) must equal config[i].
	cfg := nl.Config()
	body := lit[len("20'b"):]
	for i := 0; i < 20; i++ {
		bit := body[len(body)-1-i] == '1'
		if bit != cfg[i] {
			t.Fatalf("literal bit %d disagrees with Config()", i)
		}
	}
}

func TestVerilogAllStyles(t *testing.T) {
	// Every network style must emit without error and reference exactly
	// its switch count of configuration bits.
	for _, nl := range []*Netlist{
		NewBitSelectNaive(10, 4),
		NewBitSelectOptimized(10, 4),
		NewGeneralXOR2(10, 4),
		NewPermutationXOR2(10, 4),
	} {
		var sb strings.Builder
		if err := nl.EmitVerilog(&sb, ""); err != nil {
			t.Fatalf("%s: %v", nl.Style, err)
		}
		v := sb.String()
		if !strings.Contains(v, "module xoridx_") {
			t.Errorf("%s: default module name missing", nl.Style)
		}
		if got := strings.Count(v, "cfg["); got != nl.SwitchCount() {
			t.Errorf("%s: %d cfg references, want %d", nl.Style, got, nl.SwitchCount())
		}
	}
}
