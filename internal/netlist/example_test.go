package netlist_test

import (
	"fmt"

	"xoridx/internal/gf2"
	"xoridx/internal/netlist"
)

// Example_configure builds the Fig. 2b network, programs it with a
// permutation-based function, and evaluates it.
func Example_configure() {
	nl := netlist.NewPermutationXOR2(8, 4)
	h := gf2.Identity(8, 4)
	h.Cols[0] |= gf2.Unit(6) // s0 = a0 ^ a6
	if err := nl.Configure(h); err != nil {
		panic(err)
	}
	fmt.Println("switches:", nl.SwitchCount())
	idx, tag := nl.Eval(0b0100_0001) // a6=1, a0=1 -> s0 = 0
	fmt.Printf("index=%04b tag=%04b\n", idx, tag)
	// Output:
	// switches: 20
	// index=0000 tag=0100
}
