// Package netlist provides an executable gate-level model of the
// reconfigurable index networks of paper §5 / Fig. 2.
//
// A Netlist is built from three component types: configurable
// selectors (a bank of pass gates with one configuration memory cell
// each, exactly one of which is on), 2-input XOR gates, and fixed
// wires. The builders construct the four network styles analysed in
// Table 1; SwitchCount is cross-checked against the closed-form
// hwcost.Switches in the tests, and Configure derives a configuration
// bitstream from a GF(2) index matrix so that the simulated hardware
// computes a function with the same null space — tying the paper's
// complexity analysis to its linear-algebra model.
package netlist

import (
	"fmt"
	"sort"

	"xoridx/internal/gf2"
)

// wire identifies a signal; wires are numbered in evaluation order.
type wire int

const (
	wireZero wire = 0 // constant 0
	wireBase wire = 1 // first address input
)

// selector is a 1-out-of-k configurable switch bank driving one output.
type selector struct {
	inputs []wire // candidate sources, in config-bit order
	out    wire
}

// xorGate is a 2-input XOR.
type xorGate struct {
	a, b, out wire
}

// alias is a fixed (hard-wired) connection.
type alias struct {
	in, out wire
}

// Netlist is a reconfigurable index network instance.
type Netlist struct {
	Style     string
	N, M      int
	selectors []selector
	xors      []xorGate
	aliases   []alias
	numWires  int
	indexOut  []wire // m wires, LSB first
	tagOut    []wire // n-m wires, LSB first
	config    []bool // one bit per switch; selector i owns a contiguous range
}

// addrWire returns the wire carrying address bit i.
func addrWire(i int) wire { return wireBase + wire(i) }

func (nl *Netlist) newWire() wire {
	w := wire(nl.numWires)
	nl.numWires++
	return w
}

func (nl *Netlist) addSelector(inputs []wire) wire {
	out := nl.newWire()
	nl.selectors = append(nl.selectors, selector{inputs: inputs, out: out})
	return out
}

func (nl *Netlist) addXOR(a, b wire) wire {
	out := nl.newWire()
	nl.xors = append(nl.xors, xorGate{a: a, b: b, out: out})
	return out
}

func (nl *Netlist) addAlias(in wire) wire {
	out := nl.newWire()
	nl.aliases = append(nl.aliases, alias{in: in, out: out})
	return out
}

// SwitchCount returns the total number of pass-gate/memory-cell pairs:
// the quantity reported in paper Table 1.
func (nl *Netlist) SwitchCount() int {
	total := 0
	for _, s := range nl.selectors {
		total += len(s.inputs)
	}
	return total
}

// ConfigBits returns the size of the configuration bitstream.
func (nl *Netlist) ConfigBits() int { return nl.SwitchCount() }

// XORGateCount returns the number of XOR gates.
func (nl *Netlist) XORGateCount() int { return len(nl.xors) }

// SetConfig installs a raw configuration bitstream. Each selector's
// bits must be one-hot; anything else is a short circuit or a floating
// output in real hardware and is rejected.
func (nl *Netlist) SetConfig(bits []bool) error {
	if len(bits) != nl.ConfigBits() {
		return fmt.Errorf("netlist: config length %d, need %d", len(bits), nl.ConfigBits())
	}
	off := 0
	for i, s := range nl.selectors {
		ones := 0
		for _, b := range bits[off : off+len(s.inputs)] {
			if b {
				ones++
			}
		}
		if ones != 1 {
			return fmt.Errorf("netlist: selector %d has %d active switches, need exactly 1", i, ones)
		}
		off += len(s.inputs)
	}
	nl.config = append(nl.config[:0], bits...)
	return nil
}

// Config returns a copy of the current configuration bitstream.
func (nl *Netlist) Config() []bool {
	return append([]bool(nil), nl.config...)
}

// Eval drives the address bits onto the inputs and returns the set
// index and tag computed by the configured network.
func (nl *Netlist) Eval(addr uint64) (index, tag uint64) {
	if nl.config == nil {
		panic("netlist: Eval before SetConfig")
	}
	values := make([]bool, nl.numWires)
	values[wireZero] = false
	for i := 0; i < nl.N; i++ {
		values[addrWire(i)] = addr>>uint(i)&1 == 1
	}
	off := 0
	// Wires are numbered sequentially at creation, which encodes the
	// topological order; process components sorted by output wire.
	type step struct {
		kind int // 0 selector, 1 xor, 2 alias
		idx  int
		out  wire
	}
	steps := make([]step, 0, len(nl.selectors)+len(nl.xors)+len(nl.aliases))
	for i, s := range nl.selectors {
		steps = append(steps, step{0, i, s.out})
	}
	for i, x := range nl.xors {
		steps = append(steps, step{1, i, x.out})
	}
	for i, a := range nl.aliases {
		steps = append(steps, step{2, i, a.out})
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].out < steps[j].out })
	// Config offsets per selector, in selector order.
	selOffsets := make([]int, len(nl.selectors))
	for i := range nl.selectors {
		selOffsets[i] = off
		off += len(nl.selectors[i].inputs)
	}
	for _, st := range steps {
		switch st.kind {
		case 0:
			s := nl.selectors[st.idx]
			o := selOffsets[st.idx]
			v := false
			for j, in := range s.inputs {
				if nl.config[o+j] {
					v = values[in]
				}
			}
			values[s.out] = v
		case 1:
			x := nl.xors[st.idx]
			values[x.out] = values[x.a] != values[x.b]
		case 2:
			a := nl.aliases[st.idx]
			values[a.out] = values[a.in]
		}
	}
	for i, w := range nl.indexOut {
		if values[w] {
			index |= 1 << uint(i)
		}
	}
	for i, w := range nl.tagOut {
		if values[w] {
			tag |= 1 << uint(i)
		}
	}
	return index, tag
}

// EffectiveMatrix recovers the index function the configured network
// computes, by probing it with unit vectors (valid because the network
// is linear over GF(2)).
func (nl *Netlist) EffectiveMatrix() gf2.Matrix {
	h := gf2.NewMatrix(nl.N, nl.M)
	zeroIdx, _ := nl.Eval(0)
	for r := 0; r < nl.N; r++ {
		idx, _ := nl.Eval(1 << uint(r))
		diff := idx ^ zeroIdx
		for c := 0; c < nl.M; c++ {
			if diff>>uint(c)&1 == 1 {
				h.Cols[c] |= gf2.Unit(r)
			}
		}
	}
	return h
}

// Depth returns the number of logic levels on the longest input-to-
// output path (selector = 1 level, XOR = 1 level, alias = 0): the
// executable counterpart of hwcost.Cost.CriticalLevel.
func (nl *Netlist) Depth() int {
	depth := make(map[wire]int, nl.numWires)
	get := func(w wire) int { return depth[w] } // inputs default to 0
	// Process in wire order (creation = topological order).
	type comp struct {
		out    wire
		level  int
		inputs []wire
	}
	var comps []comp
	for _, s := range nl.selectors {
		comps = append(comps, comp{out: s.out, level: 1, inputs: s.inputs})
	}
	for _, x := range nl.xors {
		comps = append(comps, comp{out: x.out, level: 1, inputs: []wire{x.a, x.b}})
	}
	for _, a := range nl.aliases {
		comps = append(comps, comp{out: a.out, level: 0, inputs: []wire{a.in}})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].out < comps[j].out })
	for _, c := range comps {
		max := 0
		for _, in := range c.inputs {
			if d := get(in); d > max {
				max = d
			}
		}
		depth[c.out] = max + c.level
	}
	out := 0
	for _, w := range append(append([]wire{}, nl.indexOut...), nl.tagOut...) {
		if d := get(w); d > out {
			out = d
		}
	}
	return out
}
