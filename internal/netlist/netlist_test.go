package netlist

import (
	"math/rand"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/hwcost"
)

func TestSwitchCountsMatchHwcostFormulas(t *testing.T) {
	// The executable networks and the closed-form Table 1 model must
	// agree on every geometry.
	for _, n := range []int{8, 12, 16} {
		for _, m := range []int{4, 6, n - 2} {
			if m >= n {
				continue
			}
			cases := []struct {
				nl    *Netlist
				style hwcost.Style
			}{
				{NewBitSelectNaive(n, m), hwcost.BitSelectNaive},
				{NewBitSelectOptimized(n, m), hwcost.BitSelectOptimized},
				{NewGeneralXOR2(n, m), hwcost.GeneralXOR2},
				{NewPermutationXOR2(n, m), hwcost.PermutationXOR2},
			}
			for _, c := range cases {
				want := hwcost.Switches(c.style, n, m)
				if got := c.nl.SwitchCount(); got != want {
					t.Errorf("%s n=%d m=%d: netlist %d switches, formula %d", c.nl.Style, n, m, got, want)
				}
			}
		}
	}
}

func TestTable1SwitchCountsFromNetlists(t *testing.T) {
	// Regenerate paper Table 1 from the actual gate-level structures.
	want := map[string][3]int{
		"bit-select":           {256, 256, 256},
		"optimized bit-select": {144, 136, 112},
		"general XOR":          {252, 261, 250},
		"permutation-based":    {72, 70, 60},
	}
	ms := []int{8, 10, 12}
	for style, row := range want {
		for i, m := range ms {
			var nl *Netlist
			switch style {
			case "bit-select":
				nl = NewBitSelectNaive(16, m)
			case "optimized bit-select":
				nl = NewBitSelectOptimized(16, m)
			case "general XOR":
				nl = NewGeneralXOR2(16, m)
			case "permutation-based":
				nl = NewPermutationXOR2(16, m)
			}
			if got := nl.SwitchCount(); got != row[i] {
				t.Errorf("%s m=%d: %d switches, paper says %d", style, m, got, row[i])
			}
		}
	}
}

// checkRealises configures nl from h and verifies the network computes
// a function with the same null space, and a tag keeping the overall
// mapping bijective.
func checkRealises(t *testing.T, nl *Netlist, h gf2.Matrix) {
	t.Helper()
	if err := nl.Configure(h); err != nil {
		t.Fatalf("%s: Configure: %v", nl.Style, err)
	}
	eff := nl.EffectiveMatrix()
	if !eff.NullSpace().Equal(h.NullSpace()) {
		t.Fatalf("%s: effective matrix has different null space\nwant H=\n%v\ngot=\n%v", nl.Style, h, eff)
	}
	// Exhaustive bijectivity check of (index, tag).
	seen := make(map[[2]uint64]bool, 1<<uint(nl.N))
	for a := uint64(0); a < 1<<uint(nl.N); a++ {
		idx, tag := nl.Eval(a)
		key := [2]uint64{idx, tag}
		if seen[key] {
			t.Fatalf("%s: (index,tag) collision at address %#x", nl.Style, a)
		}
		seen[key] = true
	}
}

func TestPermutationNetworkRealisesFunctions(t *testing.T) {
	n, m := 12, 6
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		h := gf2.Identity(n, m)
		for c := 0; c < m; c++ {
			if rng.Intn(3) > 0 {
				h.Cols[c] |= gf2.Unit(m + rng.Intn(n-m))
			}
		}
		checkRealises(t, NewPermutationXOR2(n, m), h)
	}
}

func TestPermutationNetworkMatchesHashFunc(t *testing.T) {
	// The netlist must agree bit-for-bit with the hash.Func view, index
	// AND tag (permutation-based keeps the conventional tag).
	n, m := 12, 5
	f, err := hash.PermutationBased(n, m, [][]int{{7}, {}, {9, 11} /*too wide for 2-in*/, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	nl := NewPermutationXOR2(n, m)
	if err := nl.Configure(f.Matrix()); err == nil {
		t.Fatal("3-input column must be rejected by 2-input hardware")
	}
	f2, err := hash.PermutationBased(n, m, [][]int{{7}, {}, {9}, {}, {11}})
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Configure(f2.Matrix()); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1<<uint(n); a++ {
		idx, tag := nl.Eval(a)
		if idx != f2.Index(a) {
			t.Fatalf("index mismatch at %#x: netlist %#x, hash %#x", a, idx, f2.Index(a))
		}
		if tag != f2.Tag(a) {
			t.Fatalf("tag mismatch at %#x: netlist %#x, hash %#x", a, tag, f2.Tag(a))
		}
	}
}

func TestBitSelectNetworksRealiseSelections(t *testing.T) {
	n, m := 10, 4
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		pos := rng.Perm(n)[:m]
		h := gf2.BitSelect(n, pos)
		checkRealises(t, NewBitSelectNaive(n, m), h)
		checkRealises(t, NewBitSelectOptimized(n, m), h)
	}
}

func TestBitSelectRejectsXORFunction(t *testing.T) {
	h := gf2.Identity(8, 4)
	h.Cols[0] |= gf2.Unit(6)
	if err := NewBitSelectOptimized(8, 4).Configure(h); err == nil {
		t.Fatal("bit-select network cannot realise XOR functions")
	}
}

func TestGeneralXOR2RealisesTwoInputFunctions(t *testing.T) {
	n, m := 10, 4
	rng := rand.New(rand.NewSource(5))
	realized := 0
	for trial := 0; trial < 40; trial++ {
		// Random 2-input full-rank matrices.
		h := gf2.NewMatrix(n, m)
		for c := 0; c < m; c++ {
			a := rng.Intn(n)
			h.Cols[c] = gf2.Unit(a)
			if rng.Intn(2) == 1 {
				b := rng.Intn(n)
				if b != a {
					h.Cols[c] |= gf2.Unit(b)
				}
			}
		}
		if h.Rank() != m {
			continue
		}
		nl := NewGeneralXOR2(n, m)
		if err := nl.Configure(h); err != nil {
			// Some matrices genuinely do not fit the windowed selectors;
			// that is expected — but the common ones must.
			continue
		}
		realized++
		eff := nl.EffectiveMatrix()
		if !eff.NullSpace().Equal(h.NullSpace()) {
			t.Fatalf("null space mismatch for\n%v", h)
		}
	}
	if realized < 20 {
		t.Fatalf("only %d/40 two-input matrices realised; matching too weak", realized)
	}
}

func TestGeneralXOR2RealisesPermutationFunctions(t *testing.T) {
	// Every permutation-based 2-input function must also fit the
	// general network (it is a superset family).
	n, m := 12, 6
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		h := gf2.Identity(n, m)
		for c := 0; c < m; c++ {
			if rng.Intn(2) == 1 {
				h.Cols[c] |= gf2.Unit(m + rng.Intn(n-m))
			}
		}
		checkRealises(t, NewGeneralXOR2(n, m), h)
	}
}

func TestGeneralXOR2RejectsWideColumns(t *testing.T) {
	h := gf2.Identity(8, 4)
	h.Cols[0] |= gf2.Unit(5) | gf2.Unit(6)
	if err := NewGeneralXOR2(8, 4).Configure(h); err == nil {
		t.Fatal("3-input column must be rejected")
	}
}

func TestConfigureRejectsBadMatrices(t *testing.T) {
	nl := NewPermutationXOR2(8, 4)
	if err := nl.Configure(gf2.Identity(10, 4)); err == nil {
		t.Error("dimension mismatch must fail")
	}
	if err := nl.Configure(gf2.NewMatrix(8, 4)); err == nil {
		t.Error("rank-deficient matrix must fail")
	}
	// Non-permutation-based matrix on the permutation network.
	h := gf2.BitSelect(8, []int{4, 5, 6, 7})
	if err := nl.Configure(h); err == nil {
		t.Error("non-permutation matrix must fail on Fig. 2b network")
	}
}

func TestSetConfigValidation(t *testing.T) {
	nl := NewPermutationXOR2(8, 4)
	if err := nl.SetConfig(make([]bool, 3)); err == nil {
		t.Error("wrong length must fail")
	}
	// All-zero config: floating selector outputs.
	if err := nl.SetConfig(make([]bool, nl.ConfigBits())); err == nil {
		t.Error("non-one-hot config must fail")
	}
	// Two switches on in one selector: short circuit.
	bits := make([]bool, nl.ConfigBits())
	bits[0], bits[1] = true, true
	for i := 5; i < len(bits); i += 5 {
		bits[i] = true
	}
	if err := nl.SetConfig(bits); err == nil {
		t.Error("short-circuit config must fail")
	}
}

func TestEvalPanicsUnconfigured(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPermutationXOR2(8, 4).Eval(0)
}

func TestConfigRoundTrip(t *testing.T) {
	nl := NewPermutationXOR2(8, 4)
	h := gf2.Identity(8, 4)
	h.Cols[2] |= gf2.Unit(6)
	if err := nl.Configure(h); err != nil {
		t.Fatal(err)
	}
	bits := nl.Config()
	nl2 := NewPermutationXOR2(8, 4)
	if err := nl2.SetConfig(bits); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 256; a++ {
		i1, t1 := nl.Eval(a)
		i2, t2 := nl2.Eval(a)
		if i1 != i2 || t1 != t2 {
			t.Fatalf("bitstream round trip diverges at %#x", a)
		}
	}
}

func TestModuloOnEveryNetwork(t *testing.T) {
	// The conventional function is a member of every family; all four
	// networks must realise it exactly.
	n, m := 10, 4
	h := gf2.Identity(n, m)
	for _, nl := range []*Netlist{
		NewBitSelectNaive(n, m),
		NewBitSelectOptimized(n, m),
		NewGeneralXOR2(n, m),
		NewPermutationXOR2(n, m),
	} {
		if err := nl.Configure(h); err != nil {
			t.Fatalf("%s: %v", nl.Style, err)
		}
		for a := uint64(0); a < 1<<uint(n); a += 3 {
			idx, _ := nl.Eval(a)
			if idx != a&0xF {
				t.Fatalf("%s: Eval(%#x) index = %#x", nl.Style, a, idx)
			}
		}
	}
}

func TestDepthMatchesCostModel(t *testing.T) {
	// The executable depth must equal hwcost's CriticalLevel claim:
	// 1 level for pure selection, 2 for selector + XOR.
	cases := []struct {
		nl   *Netlist
		want int
	}{
		{NewBitSelectNaive(12, 5), 1},
		{NewBitSelectOptimized(12, 5), 1},
		{NewGeneralXOR2(12, 5), 2},
		{NewPermutationXOR2(12, 5), 2},
	}
	for _, c := range cases {
		if got := c.nl.Depth(); got != c.want {
			t.Errorf("%s: depth %d, want %d", c.nl.Style, got, c.want)
		}
	}
}
