package netlist

import (
	"fmt"
	"sort"

	"xoridx/internal/gf2"
)

// assignColumns computes, for each selector in creation order, the
// input choice that realises a function with the same null space as h.
func (nl *Netlist) assignColumns(h gf2.Matrix) ([]int, error) {
	switch nl.Style {
	case "bit-select", "optimized bit-select":
		return nl.assignBitSelect(h)
	case "general XOR":
		return nl.assignGeneralXOR(h)
	case "permutation-based":
		return nl.assignPermutation(h)
	default:
		return nil, fmt.Errorf("netlist: unknown style %q", nl.Style)
	}
}

// assignBitSelect handles both bit-selecting networks. The index
// outputs take the selected positions in ascending order, the tag
// outputs the complement in ascending order; both fit the optimized
// windows by construction.
func (nl *Netlist) assignBitSelect(h gf2.Matrix) ([]int, error) {
	if !h.IsBitSelecting() {
		return nil, fmt.Errorf("netlist: %s network cannot realise a XOR function", nl.Style)
	}
	n, m := nl.N, nl.M
	var selected []int
	var selMask gf2.Vec
	for _, col := range h.Cols {
		for i := 0; i < n; i++ {
			if col.Bit(i) == 1 {
				selected = append(selected, i)
				selMask |= gf2.Unit(i)
			}
		}
	}
	sort.Ints(selected)
	var tagBits []int
	for i := 0; i < n; i++ {
		if selMask.Bit(i) == 0 {
			tagBits = append(tagBits, i)
		}
	}
	choices := make([]int, 0, m+n-m)
	naive := nl.Style == "bit-select"
	for c, p := range selected {
		if naive {
			choices = append(choices, p)
		} else {
			choices = append(choices, p-c) // window starts at bit c
		}
	}
	for t, p := range tagBits {
		if naive {
			choices = append(choices, p)
		} else {
			choices = append(choices, p-t) // window starts at bit t
		}
	}
	return choices, nil
}

// assignPermutation handles the Fig. 2b network: column c must be
// exactly {c} or {c, b} with b a high-order bit.
func (nl *Netlist) assignPermutation(h gf2.Matrix) ([]int, error) {
	if !h.IsPermutationBased() {
		return nil, fmt.Errorf("netlist: permutation-based network cannot realise this matrix")
	}
	if h.MaxInputs() > 2 {
		return nil, fmt.Errorf("netlist: 2-input network cannot realise %d-input function", h.MaxInputs())
	}
	n, m := nl.N, nl.M
	choices := make([]int, 0, m)
	for c := 0; c < m; c++ {
		extra := h.Cols[c] &^ gf2.Unit(c)
		if extra == 0 {
			choices = append(choices, 0) // constant 0: pass bit through
			continue
		}
		// Single high-order bit b in [m, n).
		b := -1
		for i := m; i < n; i++ {
			if extra.Bit(i) == 1 {
				b = i
			}
		}
		if b < 0 || extra.Weight() != 1 {
			return nil, fmt.Errorf("netlist: column %d has unsupported extra inputs %v", c, extra)
		}
		choices = append(choices, 1+b-m) // option 0 is the constant
	}
	return choices, nil
}

// assignGeneralXOR handles the general 2-input network. Output gates
// have position-dependent windows, so realising h needs an assignment
// of matrix columns to gates; any assignment permutes the index bits,
// which preserves the null space. A bipartite matching (Kuhn's
// augmenting paths) finds a feasible assignment or proves there is
// none.
func (nl *Netlist) assignGeneralXOR(h gf2.Matrix) ([]int, error) {
	if h.MaxInputs() > 2 {
		return nil, fmt.Errorf("netlist: 2-input network cannot realise %d-input function", h.MaxInputs())
	}
	n, m := nl.N, nl.M
	// For each (column, gate) pair, the chosen (first, second) inputs.
	type pick struct{ first, second int } // second == -1 means constant
	compat := make([][]int, m)            // compat[col] = feasible gates
	pickFor := make([]map[int]pick, m)
	for col := 0; col < m; col++ {
		pickFor[col] = make(map[int]pick)
		var bitsSet []int
		for i := 0; i < n; i++ {
			if h.Cols[col].Bit(i) == 1 {
				bitsSet = append(bitsSet, i)
			}
		}
		for g := 0; g < m; g++ {
			lo, hi := g, g+n-m // first-input window
			var p pick
			ok := false
			switch len(bitsSet) {
			case 1:
				a := bitsSet[0]
				if a >= lo && a <= hi {
					p, ok = pick{first: a, second: -1}, true
				}
			case 2:
				a, b := bitsSet[0], bitsSet[1]
				if a >= lo && a <= hi && b >= g {
					p, ok = pick{first: a, second: b}, true
				} else if b >= lo && b <= hi && a >= g {
					p, ok = pick{first: b, second: a}, true
				}
			}
			if ok {
				compat[col] = append(compat[col], g)
				pickFor[col][g] = p
			}
		}
		if len(compat[col]) == 0 {
			return nil, fmt.Errorf("netlist: column %d (%s) fits no gate window", col, h.Cols[col].StringN(n))
		}
	}
	// Kuhn's matching: gateOf[g] = column assigned to gate g.
	gateOf := make([]int, m)
	for i := range gateOf {
		gateOf[i] = -1
	}
	var try func(col int, visited []bool) bool
	try = func(col int, visited []bool) bool {
		for _, g := range compat[col] {
			if visited[g] {
				continue
			}
			visited[g] = true
			if gateOf[g] == -1 || try(gateOf[g], visited) {
				gateOf[g] = col
				return true
			}
		}
		return false
	}
	for col := 0; col < m; col++ {
		if !try(col, make([]bool, m)) {
			return nil, fmt.Errorf("netlist: no feasible column-to-gate assignment for this matrix")
		}
	}
	// Tag: complete the column space with unit vectors (same procedure
	// as the hash package), then fit them to the tag windows ascending.
	span := gf2.Span(n, h.Cols...)
	var tagBits []int
	for i := n - 1; i >= 0 && len(tagBits) < n-m; i-- {
		if u := gf2.Unit(i); !span.Contains(u) {
			span = span.Extend(u)
			tagBits = append(tagBits, i)
		}
	}
	if len(tagBits) != n-m {
		return nil, fmt.Errorf("netlist: could not complete tag selection")
	}
	sort.Ints(tagBits)
	for t, p := range tagBits {
		if p < t || p > t+m {
			return nil, fmt.Errorf("netlist: tag bit %d outside window of output %d", p, t)
		}
	}
	// Emit choices in selector creation order:
	// per gate: first selector (window g..g+n-m), second selector
	// ({0} ∪ g..n-1); then the tag selectors.
	choices := make([]int, 0, 2*m+(n-m))
	for g := 0; g < m; g++ {
		p := pickFor[gateOf[g]][g]
		choices = append(choices, p.first-g)
		if p.second < 0 {
			choices = append(choices, 0)
		} else {
			choices = append(choices, 1+p.second-g)
		}
	}
	for t, p := range tagBits {
		choices = append(choices, p-t)
	}
	return choices, nil
}
