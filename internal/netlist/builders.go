package netlist

import (
	"fmt"

	"xoridx/internal/gf2"
)

func checkDims(n, m int) {
	if n <= 0 || m <= 0 || m > n || n > 32 {
		panic(fmt.Sprintf("netlist: invalid dimensions n=%d m=%d", n, m))
	}
}

// newBase allocates the constant-0 wire and the n address-input wires.
func newBase(style string, n, m int) *Netlist {
	checkDims(n, m)
	nl := &Netlist{Style: style, N: n, M: m}
	nl.numWires = int(wireBase) + n
	return nl
}

// NewBitSelectNaive builds the unoptimized bit-selecting network: every
// one of the n output bits (m index + n−m tag) selects among all n
// address bits. n² switches.
func NewBitSelectNaive(n, m int) *Netlist {
	nl := newBase("bit-select", n, m)
	all := make([]wire, n)
	for i := range all {
		all[i] = addrWire(i)
	}
	for c := 0; c < m; c++ {
		nl.indexOut = append(nl.indexOut, nl.addSelector(append([]wire(nil), all...)))
	}
	for t := 0; t < n-m; t++ {
		nl.tagOut = append(nl.tagOut, nl.addSelector(append([]wire(nil), all...)))
	}
	return nl
}

// NewBitSelectOptimized builds the redundancy-free bit-selecting
// network of Fig. 2a. With outputs kept in ascending selected-bit
// order, index output c only ever needs address bits c..c+(n−m), and
// tag output t only bits t..t+m: m(n−m+1) + (n−m)(m+1) switches.
func NewBitSelectOptimized(n, m int) *Netlist {
	nl := newBase("optimized bit-select", n, m)
	for c := 0; c < m; c++ {
		win := make([]wire, 0, n-m+1)
		for i := c; i <= c+n-m; i++ {
			win = append(win, addrWire(i))
		}
		nl.indexOut = append(nl.indexOut, nl.addSelector(win))
	}
	for t := 0; t < n-m; t++ {
		win := make([]wire, 0, m+1)
		for i := t; i <= t+m; i++ {
			win = append(win, addrWire(i))
		}
		nl.tagOut = append(nl.tagOut, nl.addSelector(win))
	}
	return nl
}

// NewGeneralXOR2 builds the reconfigurable 2-input XOR network: index
// bit c XORs a first input selected from the window c..c+(n−m) with a
// second input selected from {0} ∪ bits c..n−1 (the constant lets the
// bit pass through unhashed); the tag is an optimized bit selection.
// m(n−m+1) + m(n+1) − m(m−1)/2 + (n−m)(m+1) switches.
func NewGeneralXOR2(n, m int) *Netlist {
	nl := newBase("general XOR", n, m)
	for c := 0; c < m; c++ {
		win1 := make([]wire, 0, n-m+1)
		for i := c; i <= c+n-m; i++ {
			win1 = append(win1, addrWire(i))
		}
		first := nl.addSelector(win1)
		win2 := make([]wire, 0, n-c+1)
		win2 = append(win2, wireZero)
		for i := c; i < n; i++ {
			win2 = append(win2, addrWire(i))
		}
		second := nl.addSelector(win2)
		nl.indexOut = append(nl.indexOut, nl.addXOR(first, second))
	}
	for t := 0; t < n-m; t++ {
		win := make([]wire, 0, m+1)
		for i := t; i <= t+m; i++ {
			win = append(win, addrWire(i))
		}
		nl.tagOut = append(nl.tagOut, nl.addSelector(win))
	}
	return nl
}

// NewPermutationXOR2 builds the permutation-based network of Fig. 2b:
// index bit c is address bit c (hard-wired first XOR input) XORed with
// a second input selected from {0} ∪ the n−m high-order bits; the tag
// is hard-wired to the high-order bits. m(n−m+1) switches total.
func NewPermutationXOR2(n, m int) *Netlist {
	nl := newBase("permutation-based", n, m)
	for c := 0; c < m; c++ {
		win := make([]wire, 0, n-m+1)
		win = append(win, wireZero)
		for i := m; i < n; i++ {
			win = append(win, addrWire(i))
		}
		second := nl.addSelector(win)
		nl.indexOut = append(nl.indexOut, nl.addXOR(addrWire(c), second))
	}
	for t := 0; t < n-m; t++ {
		nl.tagOut = append(nl.tagOut, nl.addAlias(addrWire(m+t)))
	}
	return nl
}

// Configure derives and installs a configuration bitstream so the
// network computes an index function with the same null space as h
// (output bits may be permuted relative to h — a relabeling of cache
// sets that the paper counts as the same configuration). Returns an
// error when the network style cannot express h.
func (nl *Netlist) Configure(h gf2.Matrix) error {
	if h.N != nl.N || h.M != nl.M {
		return fmt.Errorf("netlist: matrix is %dx%d, network is %dx%d", h.N, h.M, nl.N, nl.M)
	}
	if h.Rank() != h.M {
		return fmt.Errorf("netlist: matrix is rank-deficient")
	}
	assign, err := nl.assignColumns(h)
	if err != nil {
		return err
	}
	bits := make([]bool, nl.ConfigBits())
	off := 0
	selIdx := 0
	// Selectors were created in a fixed per-style order; walk them in
	// creation order and set the chosen switch for each.
	for _, s := range nl.selectors {
		choice := assign[selIdx]
		if choice < 0 || choice >= len(s.inputs) {
			return fmt.Errorf("netlist: internal: selector %d choice %d out of range", selIdx, choice)
		}
		bits[off+choice] = true
		off += len(s.inputs)
		selIdx++
	}
	return nl.SetConfig(bits)
}
