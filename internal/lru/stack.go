// Package lru provides the stack substrate for conflict-miss profiling
// and fully-associative reference simulation.
//
// The central structure is Stack, an LRU stack over cache-block
// addresses: blocks are ordered by recency, most recent at the top. The
// profiling algorithm of Vandierendonck et al. (DATE 2006, Fig. 1)
// walks the blocks above a re-referenced block to accumulate conflict
// vectors; because it only walks when the reuse distance is at most the
// cache capacity, the walk is bounded by the cache size in blocks.
//
// For exact reuse (stack) distances without a bounded walk, DistanceTree
// implements Olken's order-statistics approach with a treap, giving
// O(log u) per access where u is the number of live blocks.
package lru

import "fmt"

// node is a doubly-linked list element of the stack.
type node struct {
	block      uint64
	prev, next *node // prev is toward the top (more recent)
}

// Stack is an LRU stack of block addresses with O(1) membership lookup
// and O(k) enumeration of the k blocks above a given block.
//
// The zero value is not usable; call NewStack.
type Stack struct {
	byBlock map[uint64]*node
	top     *node
	bottom  *node
	size    int
}

// NewStack returns an empty LRU stack.
func NewStack() *Stack {
	return &Stack{byBlock: make(map[uint64]*node)}
}

// NewStackFrom rebuilds a stack from a top-to-bottom block listing —
// the inverse of Blocks, used to restore profiling state from a
// checkpoint. Blocks must be distinct; a duplicate means the snapshot
// is corrupt and is reported rather than panicking.
func NewStackFrom(topToBottom []uint64) (*Stack, error) {
	s := NewStack()
	for i := len(topToBottom) - 1; i >= 0; i-- {
		b := topToBottom[i]
		if s.Contains(b) {
			return nil, fmt.Errorf("lru: duplicate block %#x in stack snapshot", b)
		}
		s.Push(b)
	}
	return s, nil
}

// Len returns the number of distinct blocks on the stack.
func (s *Stack) Len() int { return s.size }

// Contains reports whether block has been touched before.
func (s *Stack) Contains(block uint64) bool {
	_, ok := s.byBlock[block]
	return ok
}

// Push puts a new block on top of the stack. The block must not already
// be present (use Touch for the general case).
func (s *Stack) Push(block uint64) {
	if _, ok := s.byBlock[block]; ok {
		panic("lru: Push of block already on stack")
	}
	n := &node{block: block, next: s.top}
	if s.top != nil {
		s.top.prev = n
	}
	s.top = n
	if s.bottom == nil {
		s.bottom = n
	}
	s.byBlock[block] = n
	s.size++
}

// MoveToTop moves an existing block to the top of the stack.
func (s *Stack) MoveToTop(block uint64) {
	n, ok := s.byBlock[block]
	if !ok {
		panic("lru: MoveToTop of block not on stack")
	}
	if s.top == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if s.bottom == n {
		s.bottom = n.prev
	}
	// Relink at top.
	n.prev = nil
	n.next = s.top
	s.top.prev = n
	s.top = n
}

// WalkAbove calls fn for every block strictly above the given block on
// the stack, from most recent downward, stopping early when fn returns
// false or after limit blocks (limit < 0 means no limit). It returns
// the number of blocks visited and whether the walk reached the target
// block within the limit (reached == false means the reuse distance
// exceeds limit). The target must be present on the stack.
//
// This is exactly the traversal of the paper's Fig. 1: the blocks above
// x are the blocks accessed since the previous access to x.
func (s *Stack) WalkAbove(block uint64, limit int, fn func(above uint64) bool) (visited int, reached bool) {
	target, ok := s.byBlock[block]
	if !ok {
		panic("lru: WalkAbove of block not on stack")
	}
	for n := s.top; n != nil; n = n.next {
		if n == target {
			return visited, true
		}
		if limit >= 0 && visited >= limit {
			return visited, false
		}
		if fn != nil && !fn(n.block) {
			return visited, false
		}
		visited++
	}
	panic("lru: stack corrupted: target not reachable from top")
}

// Depth returns the 0-based position of the block from the top (0 = most
// recent). The reuse distance of the next access to this block would be
// Depth. Cost is O(Depth); prefer DistanceTree when distances are large.
func (s *Stack) Depth(block uint64) int {
	d, reached := s.WalkAbove(block, -1, nil)
	if !reached {
		panic("lru: unreachable")
	}
	return d
}

// Touch records an access: pushes the block if new (returning distance
// -1, the convention for a compulsory/cold access), otherwise returns
// its current depth and moves it to the top.
func (s *Stack) Touch(block uint64) (distance int) {
	if !s.Contains(block) {
		s.Push(block)
		return -1
	}
	d := s.Depth(block)
	s.MoveToTop(block)
	return d
}

// Blocks returns all blocks from top to bottom. Intended for tests.
func (s *Stack) Blocks() []uint64 {
	out := make([]uint64, 0, s.size)
	for n := s.top; n != nil; n = n.next {
		out = append(out, n.block)
	}
	return out
}
