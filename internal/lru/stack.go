// Package lru provides the stack substrate for conflict-miss profiling
// and fully-associative reference simulation.
//
// The central structure is Stack, an LRU stack over cache-block
// addresses: blocks are ordered by recency, most recent at the top. The
// profiling algorithm of Vandierendonck et al. (DATE 2006, Fig. 1)
// walks the blocks above a re-referenced block to accumulate conflict
// vectors; because it only walks when the reuse distance is at most the
// cache capacity, the walk is bounded by the cache size in blocks.
//
// Stack is arena-backed: nodes live in one growable slab of int32-linked
// entries instead of individually heap-allocated list elements, so a
// profiling pass performs zero per-block allocations after the slab
// warms up and the recency walk reads nearby slab entries instead of
// chasing scattered pointers (DESIGN.md §12).
//
// For exact reuse (stack) distances without a bounded walk, DistanceTree
// implements Olken's order-statistics approach over a Fenwick tree,
// giving O(log u) per access where u is the number of live blocks.
package lru

import (
	"fmt"
	"math"
)

// Node is one arena slot of a Stack: a block address and the int32
// slab indices of its neighbours (Prev toward the top, i.e. more
// recent). Exported so the profiling hot loop can walk the slab
// directly via Raw without a callback per element.
type Node struct {
	Block      uint64
	Prev, Next int32 // nilIdx terminates
}

// nilIdx is the arena's null link.
const nilIdx = int32(-1)

// Stack is an LRU stack of block addresses with O(1) membership lookup
// and O(k) enumeration of the k blocks above a given block.
//
// The zero value is not usable; call NewStack.
type Stack struct {
	nodes   []Node
	byBlock map[uint64]int32
	top     int32
	bottom  int32
	free    int32 // freelist head, linked through Next
	size    int
}

// NewStack returns an empty LRU stack.
func NewStack() *Stack {
	return &Stack{
		byBlock: make(map[uint64]int32),
		top:     nilIdx,
		bottom:  nilIdx,
		free:    nilIdx,
	}
}

// NewStackFrom rebuilds a stack from a top-to-bottom block listing —
// the inverse of Blocks, used to restore profiling state from a
// checkpoint. Blocks must be distinct; a duplicate means the snapshot
// is corrupt and is reported rather than panicking.
func NewStackFrom(topToBottom []uint64) (*Stack, error) {
	s := NewStack()
	s.nodes = make([]Node, 0, len(topToBottom))
	for i := len(topToBottom) - 1; i >= 0; i-- {
		b := topToBottom[i]
		if s.Contains(b) {
			return nil, fmt.Errorf("lru: duplicate block %#x in stack snapshot", b)
		}
		s.Push(b)
	}
	return s, nil
}

// Len returns the number of distinct blocks on the stack.
func (s *Stack) Len() int { return s.size }

// Contains reports whether block has been touched before.
func (s *Stack) Contains(block uint64) bool {
	_, ok := s.byBlock[block]
	return ok
}

// alloc takes a slot from the freelist or grows the slab.
func (s *Stack) alloc(block uint64) int32 {
	if s.free != nilIdx {
		idx := s.free
		s.free = s.nodes[idx].Next
		s.nodes[idx] = Node{Block: block, Prev: nilIdx, Next: nilIdx}
		return idx
	}
	if len(s.nodes) >= math.MaxInt32 {
		panic("lru: stack exceeds 2^31-1 blocks")
	}
	s.nodes = append(s.nodes, Node{Block: block, Prev: nilIdx, Next: nilIdx})
	return int32(len(s.nodes) - 1)
}

// Push puts a new block on top of the stack. The block must not already
// be present (use Touch for the general case).
func (s *Stack) Push(block uint64) {
	if _, ok := s.byBlock[block]; ok {
		panic("lru: Push of block already on stack")
	}
	idx := s.alloc(block)
	s.nodes[idx].Next = s.top
	if s.top != nilIdx {
		s.nodes[s.top].Prev = idx
	}
	s.top = idx
	if s.bottom == nilIdx {
		s.bottom = idx
	}
	s.byBlock[block] = idx
	s.size++
}

// unlink detaches the node at idx from the recency list without
// touching the membership map or the freelist.
func (s *Stack) unlink(idx int32) {
	n := s.nodes[idx]
	if n.Prev != nilIdx {
		s.nodes[n.Prev].Next = n.Next
	} else {
		s.top = n.Next
	}
	if n.Next != nilIdx {
		s.nodes[n.Next].Prev = n.Prev
	} else {
		s.bottom = n.Prev
	}
}

// MoveToTop moves an existing block to the top of the stack.
func (s *Stack) MoveToTop(block uint64) {
	idx, ok := s.byBlock[block]
	if !ok {
		panic("lru: MoveToTop of block not on stack")
	}
	s.MoveIndexToTop(idx)
}

// MoveIndexToTop is MoveToTop addressed by arena slot — pairs with
// Index and Raw in hot loops that have already resolved the block, so
// the move costs no second map lookup.
func (s *Stack) MoveIndexToTop(idx int32) {
	if s.top == idx {
		return
	}
	s.unlink(idx)
	s.nodes[idx].Prev = nilIdx
	s.nodes[idx].Next = s.top
	s.nodes[s.top].Prev = idx
	s.top = idx
}

// Remove deletes a block from the stack, returning its arena slot to
// the freelist for reuse by a later Push. The profiling pass never
// evicts, but bounded simulations (and tests exercising slab reuse) do.
func (s *Stack) Remove(block uint64) {
	idx, ok := s.byBlock[block]
	if !ok {
		panic("lru: Remove of block not on stack")
	}
	s.unlink(idx)
	delete(s.byBlock, block)
	s.nodes[idx] = Node{Next: s.free}
	s.free = idx
	s.size--
}

// Raw exposes the arena slab and the index of the top node (nilIdx when
// empty) so a hot loop can walk the recency list inline:
//
//	nodes, top := s.Raw()
//	for i := top; i != target; i = nodes[i].Next { ... nodes[i].Block ... }
//
// The returned slice aliases the stack's storage and is invalidated by
// the next Push (append may move the slab); callers must treat it as
// read-only and must not hold it across mutations.
func (s *Stack) Raw() (nodes []Node, top int32) {
	return s.nodes, s.top
}

// Index returns the arena slot of a block and whether it is present —
// the slab-level counterpart of Contains, for callers walking via Raw.
func (s *Stack) Index(block uint64) (int32, bool) {
	idx, ok := s.byBlock[block]
	return idx, ok
}

// WalkAbove calls fn for every block strictly above the given block on
// the stack, from most recent downward, stopping early when fn returns
// false or after limit blocks (limit < 0 means no limit). It returns
// the number of blocks visited and whether the walk reached the target
// block within the limit (reached == false means the reuse distance
// exceeds limit). The target must be present on the stack.
//
// This is exactly the traversal of the paper's Fig. 1: the blocks above
// x are the blocks accessed since the previous access to x.
func (s *Stack) WalkAbove(block uint64, limit int, fn func(above uint64) bool) (visited int, reached bool) {
	target, ok := s.byBlock[block]
	if !ok {
		panic("lru: WalkAbove of block not on stack")
	}
	for i := s.top; i != nilIdx; i = s.nodes[i].Next {
		if i == target {
			return visited, true
		}
		if limit >= 0 && visited >= limit {
			return visited, false
		}
		if fn != nil && !fn(s.nodes[i].Block) {
			return visited, false
		}
		visited++
	}
	panic("lru: stack corrupted: target not reachable from top")
}

// Depth returns the 0-based position of the block from the top (0 = most
// recent). The reuse distance of the next access to this block would be
// Depth. Cost is O(Depth); prefer DistanceTree when distances are large.
func (s *Stack) Depth(block uint64) int {
	d, reached := s.WalkAbove(block, -1, nil)
	if !reached {
		panic("lru: unreachable")
	}
	return d
}

// Touch records an access: pushes the block if new (returning distance
// -1, the convention for a compulsory/cold access), otherwise returns
// its current depth and moves it to the top.
func (s *Stack) Touch(block uint64) (distance int) {
	if !s.Contains(block) {
		s.Push(block)
		return -1
	}
	d := s.Depth(block)
	s.MoveToTop(block)
	return d
}

// Blocks returns all blocks from top to bottom. Intended for tests.
func (s *Stack) Blocks() []uint64 {
	out := make([]uint64, 0, s.size)
	for i := s.top; i != nilIdx; i = s.nodes[i].Next {
		out = append(out, s.nodes[i].Block)
	}
	return out
}
