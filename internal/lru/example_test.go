package lru_test

import (
	"fmt"

	"xoridx/internal/lru"
)

// Example_stackDistance computes reuse distances, the quantity the
// paper's capacity filter is built on.
func Example_stackDistance() {
	d := lru.NewDistanceTree()
	for _, b := range []uint64{1, 2, 3, 1, 1, 3} {
		fmt.Print(d.Touch(b), " ")
	}
	fmt.Println()
	// Output:
	// -1 -1 -1 2 0 1
}

// Example_faMisses reads fully-associative miss counts straight from a
// reuse histogram — no per-capacity re-simulation.
func Example_faMisses() {
	blocks := []uint64{1, 2, 3, 4, 1, 2, 3, 4}
	h := lru.ReuseHistogram(blocks, 8)
	fmt.Println("capacity 4:", h.MissesAt(4))
	fmt.Println("capacity 3:", h.MissesAt(3))
	// Output:
	// capacity 4: 4
	// capacity 3: 8
}
