package lru

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceTreeMatchesStack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStack()
	d := NewDistanceTree()
	for i := 0; i < 20000; i++ {
		b := uint64(rng.Intn(300))
		want := s.Touch(b)
		got := d.Touch(b)
		if got != want {
			t.Fatalf("access %d block %d: tree %d, stack %d", i, b, got, want)
		}
	}
	if d.Len() != s.Len() {
		t.Fatalf("Len mismatch: %d vs %d", d.Len(), s.Len())
	}
}

func TestDistanceTreeSequential(t *testing.T) {
	d := NewDistanceTree()
	// First pass over 100 blocks: all cold.
	for b := uint64(0); b < 100; b++ {
		if got := d.Touch(b); got != -1 {
			t.Fatalf("cold access distance %d", got)
		}
	}
	// Second pass: every distance is 99 (all other blocks between).
	for b := uint64(0); b < 100; b++ {
		if got := d.Touch(b); got != 99 {
			t.Fatalf("second pass block %d: distance %d, want 99", b, got)
		}
	}
}

func TestDistanceTreeProperty(t *testing.T) {
	// Against the naive reference on arbitrary short traces.
	f := func(raw []byte) bool {
		blocks := make([]uint64, len(raw))
		for i, r := range raw {
			blocks[i] = uint64(r % 17)
		}
		want := referenceDistances(blocks)
		d := NewDistanceTree()
		for i, b := range blocks {
			if d.Touch(b) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFAMisses(t *testing.T) {
	// Cyclic pattern over 4 blocks with capacity 4: only 4 cold misses.
	var blocks []uint64
	for r := 0; r < 10; r++ {
		for b := uint64(0); b < 4; b++ {
			blocks = append(blocks, b)
		}
	}
	if got := FAMisses(blocks, 4); got != 4 {
		t.Fatalf("capacity 4: %d misses, want 4", got)
	}
	// Capacity 3 with LRU on a cyclic 4-block pattern: everything misses.
	if got := FAMisses(blocks, 3); got != 40 {
		t.Fatalf("capacity 3: %d misses, want 40", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	h.Add(-1)
	h.Add(0)
	h.Add(3)
	h.Add(8)
	h.Add(100) // clamps into last bucket
	if h.Cold != 1 {
		t.Fatalf("cold = %d", h.Cold)
	}
	if h.Buckets[0] != 1 || h.Buckets[3] != 1 || h.Buckets[8] != 2 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	// Capacity 4 misses: cold + distances >= 4 -> 1 + 2 = 3.
	if got := h.MissesAt(4); got != 3 {
		t.Fatalf("MissesAt(4) = %d", got)
	}
	// Capacity 1: cold + everything except distance 0.
	if got := h.MissesAt(1); got != 4 {
		t.Fatalf("MissesAt(1) = %d", got)
	}
}

func TestHistogramPanicsOutOfRange(t *testing.T) {
	h := NewHistogram(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.MissesAt(5)
}

func TestReuseHistogramConsistentWithFAMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	blocks := make([]uint64, 5000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(200))
	}
	h := ReuseHistogram(blocks, 256)
	for _, cap := range []int{1, 8, 64, 128, 256} {
		if got, want := h.MissesAt(cap), FAMisses(blocks, cap); got != want {
			t.Fatalf("capacity %d: histogram %d, direct %d", cap, got, want)
		}
	}
}

func BenchmarkDistanceTreeTouch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blocks := make([]uint64, 1<<16)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(1 << 14))
	}
	d := NewDistanceTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Touch(blocks[i&(len(blocks)-1)])
	}
}

// TestTouchSteadyStateAllocs pins the steady-state cost: once every
// block has been touched, an access is two Fenwick point updates and a
// prefix query over preallocated storage, so it allocates nothing.
func TestTouchSteadyStateAllocs(t *testing.T) {
	d := NewDistanceTree()
	for b := uint64(0); b < 64; b++ {
		d.Touch(b)
	}
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		d.Touch(i % 64)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Touch allocates %.1f per op; removed nodes must be reused", allocs)
	}
}
