package lru

// DistanceTree computes exact LRU stack distances in O(log u) per
// access using an order-statistics treap keyed by last-access time
// (Olken's algorithm). The stack distance of an access is the number of
// distinct blocks referenced since the previous access to the same
// block — precisely the LRU-stack depth, but without the linear walk of
// Stack.Depth.
//
// The treap stores one node per live block, keyed by the virtual time
// of its most recent access; the subtree-size augmentation answers
// "how many blocks were accessed more recently than time t" in
// O(log u).
type DistanceTree struct {
	root  *treapNode
	byBlk map[uint64]*treapNode
	clock uint64
	rngSt uint64
}

type treapNode struct {
	time        uint64 // key: last access time (unique)
	block       uint64
	prio        uint64 // heap priority
	size        int    // subtree size
	left, right *treapNode
}

// NewDistanceTree returns an empty tree.
func NewDistanceTree() *DistanceTree {
	return &DistanceTree{byBlk: make(map[uint64]*treapNode), rngSt: 0x9E3779B97F4A7C15}
}

// Len returns the number of live (ever-touched) blocks.
func (t *DistanceTree) Len() int { return len(t.byBlk) }

// rand is a small xorshift64* generator; determinism keeps tests stable.
func (t *DistanceTree) rand() uint64 {
	t.rngSt ^= t.rngSt >> 12
	t.rngSt ^= t.rngSt << 25
	t.rngSt ^= t.rngSt >> 27
	return t.rngSt * 0x2545F4914F6CDD1D
}

func size(n *treapNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treapNode) update() { n.size = 1 + size(n.left) + size(n.right) }

// split divides the tree into (< time) and (>= time).
func split(n *treapNode, time uint64) (l, r *treapNode) {
	if n == nil {
		return nil, nil
	}
	if n.time < time {
		n.right, r = split(n.right, time)
		n.update()
		return n, r
	}
	l, n.left = split(n.left, time)
	n.update()
	return l, n
}

func merge(l, r *treapNode) *treapNode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio > r.prio {
		l.right = merge(l.right, r)
		l.update()
		return l
	}
	r.left = merge(l, r.left)
	r.update()
	return r
}

// countGreater returns the number of nodes with time > time.
func (t *DistanceTree) countGreater(time uint64) int {
	count := 0
	for n := t.root; n != nil; {
		if n.time > time {
			count += 1 + size(n.right)
			n = n.left
		} else {
			n = n.right
		}
	}
	return count
}

// remove deletes the node with the exact time key.
func (t *DistanceTree) remove(time uint64) *treapNode {
	var removed *treapNode
	var rec func(n *treapNode) *treapNode
	rec = func(n *treapNode) *treapNode {
		if n == nil {
			return nil
		}
		if n.time == time {
			removed = n
			return merge(n.left, n.right)
		}
		if time < n.time {
			n.left = rec(n.left)
		} else {
			n.right = rec(n.right)
		}
		n.update()
		return n
	}
	t.root = rec(t.root)
	return removed
}

// Touch records an access to block and returns its stack distance: the
// number of distinct blocks accessed since its previous access, or -1
// for a first-ever access.
func (t *DistanceTree) Touch(block uint64) int {
	t.clock++
	now := t.clock
	dist := -1
	if old, ok := t.byBlk[block]; ok {
		dist = t.countGreater(old.time)
		n := t.remove(old.time)
		// Reuse the removed node for the new insertion.
		n.time = now
		n.prio = t.rand()
		n.left, n.right = nil, nil
		n.size = 1
		t.insert(n)
		return dist
	}
	n := &treapNode{time: now, block: block, prio: t.rand(), size: 1}
	t.byBlk[block] = n
	t.insert(n)
	return dist
}

func (t *DistanceTree) insert(n *treapNode) {
	l, r := split(t.root, n.time)
	t.root = merge(merge(l, n), r)
}

// FAMisses counts misses of a fully-associative LRU cache with the
// given capacity in blocks over a sequence of block addresses: an
// access misses iff it is a first touch or its stack distance is >=
// capacity. This is the paper's "FA" reference column (Table 3).
func FAMisses(blocks []uint64, capacity int) uint64 {
	t := NewDistanceTree()
	var misses uint64
	for _, b := range blocks {
		d := t.Touch(b)
		if d < 0 || d >= capacity {
			misses++
		}
	}
	return misses
}

// Histogram accumulates a stack-distance histogram. Bucket i counts
// accesses with distance exactly i for i < len(buckets)-1; the final
// bucket aggregates all larger distances. Cold misses are counted
// separately. From the histogram, the miss count of a fully-associative
// LRU cache of any capacity <= len(buckets)-1 can be read off without
// re-simulation: a capacity-c cache misses on cold accesses and on
// distances >= c.
type Histogram struct {
	Cold    uint64
	Buckets []uint64
}

// NewHistogram returns a histogram with maxDistance+1 buckets.
func NewHistogram(maxDistance int) *Histogram {
	return &Histogram{Buckets: make([]uint64, maxDistance+1)}
}

// Add records one access distance (-1 for cold).
func (h *Histogram) Add(distance int) {
	if distance < 0 {
		h.Cold++
		return
	}
	if distance >= len(h.Buckets) {
		distance = len(h.Buckets) - 1
	}
	h.Buckets[distance]++
}

// MissesAt returns the FA-LRU miss count for the given capacity, which
// must be < len(Buckets).
func (h *Histogram) MissesAt(capacity int) uint64 {
	if capacity >= len(h.Buckets) {
		panic("lru: histogram capacity out of range")
	}
	m := h.Cold
	for d := capacity; d < len(h.Buckets); d++ {
		m += h.Buckets[d]
	}
	return m
}

// ReuseHistogram runs a full trace through a DistanceTree and returns
// the stack-distance histogram with the given resolution.
func ReuseHistogram(blocks []uint64, maxDistance int) *Histogram {
	t := NewDistanceTree()
	h := NewHistogram(maxDistance)
	for _, b := range blocks {
		h.Add(t.Touch(b))
	}
	return h
}
