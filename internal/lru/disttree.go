package lru

import "sort"

// DistanceTree computes exact LRU stack distances in O(log u) per
// access using Olken's order-statistics approach. The stack distance of
// an access is the number of distinct blocks referenced since the
// previous access to the same block — precisely the LRU-stack depth,
// but without the linear walk of Stack.Depth.
//
// The order statistics live in a Fenwick (binary indexed) tree over
// virtual access times: each live block owns one set slot at the time
// of its most recent access, so "how many blocks were accessed more
// recently than time t" is one prefix query. A Fenwick tree beats the
// treap this structure used before PR 5 on constants — a handful of
// sequential int32 adds per access, no per-node heap allocation, no
// recursion — which matters because the profiling distance gate
// (DESIGN.md §12) runs it once per trace access. The virtual clock
// only moves forward, so when it reaches the end of the array the
// live times are compacted back to 1..u (amortized O(1): the array is
// kept at least 4x the live population).
type DistanceTree struct {
	fen     []int32           // Fenwick tree over time slots 1..len-1
	byBlk   map[uint64]uint64 // block -> time of most recent access
	clock   uint64            // last assigned virtual time
	scratch []blockTime       // compaction buffer, reused across runs
}

type blockTime struct {
	block, time uint64
}

// minTreeSlots is the initial (and minimum) Fenwick array length.
const minTreeSlots = 4096

// Gate is the three-way classification returned by TouchGate.
type Gate int8

const (
	// GateCold marks a first-ever access (stack distance -1).
	GateCold Gate = iota
	// GateWithin marks a reuse distance <= the gate limit.
	GateWithin
	// GateBeyond marks a reuse distance > the gate limit.
	GateBeyond
)

// NewDistanceTree returns an empty tree.
func NewDistanceTree() *DistanceTree {
	return &DistanceTree{
		fen:   make([]int32, minTreeSlots),
		byBlk: make(map[uint64]uint64),
	}
}

// Len returns the number of live (ever-touched) blocks.
func (t *DistanceTree) Len() int { return len(t.byBlk) }

// add updates the Fenwick tree at time slot i.
func (t *DistanceTree) add(i uint64, delta int32) {
	for ; i < uint64(len(t.fen)); i += i & (-i) {
		t.fen[i] += delta
	}
}

// prefix returns the number of set time slots <= i.
func (t *DistanceTree) prefix(i uint64) int {
	s := int32(0)
	for ; i > 0; i &= i - 1 {
		s += t.fen[i]
	}
	return int(s)
}

// begin claims the next virtual time for block, compacting first when
// the clock would run off the array. It returns the block's previous
// time and whether the block was live.
func (t *DistanceTree) begin(block uint64) (old uint64, ok bool) {
	if t.clock+1 >= uint64(len(t.fen)) {
		t.compact()
	}
	old, ok = t.byBlk[block]
	t.clock++
	t.byBlk[block] = t.clock
	return old, ok
}

// Touch records an access to block and returns its stack distance: the
// number of distinct blocks accessed since its previous access, or -1
// for a first-ever access.
func (t *DistanceTree) Touch(block uint64) int {
	old, ok := t.begin(block)
	if !ok {
		t.add(t.clock, 1)
		return -1
	}
	// Every live block owns exactly one set slot and block's is still
	// at old, so the blocks accessed since are the live ones beyond it.
	d := len(t.byBlk) - t.prefix(old)
	t.add(old, -1)
	t.add(t.clock, 1)
	return d
}

// TouchGate records an access and classifies its stack distance against
// limit without always computing it: when the raw access gap since the
// block's previous touch is at most limit, the distance (which never
// exceeds the gap) must be within, and the prefix query is skipped
// entirely. This is the profiling fast path — tight loops whose reuse
// fits the capacity filter pay only the two Fenwick point updates.
func (t *DistanceTree) TouchGate(block uint64, limit int) Gate {
	old, ok := t.begin(block)
	if !ok {
		t.add(t.clock, 1)
		return GateCold
	}
	within := t.clock-old-1 <= uint64(limit)
	if !within {
		within = len(t.byBlk)-t.prefix(old) <= limit
	}
	t.add(old, -1)
	t.add(t.clock, 1)
	if within {
		return GateWithin
	}
	return GateBeyond
}

// Record notes an access without classifying it (the warmup form of
// Touch: recency state only, no distance query). It reports whether
// the block was cold.
func (t *DistanceTree) Record(block uint64) (cold bool) {
	old, ok := t.begin(block)
	if ok {
		t.add(old, -1)
	}
	t.add(t.clock, 1)
	return !ok
}

// compact renumbers the live blocks' times to 1..u in recency order and
// resizes the Fenwick array to keep at least 4x headroom, so the
// amortized cost per access stays O(log u).
func (t *DistanceTree) compact() {
	t.scratch = t.scratch[:0]
	for b, tm := range t.byBlk {
		t.scratch = append(t.scratch, blockTime{block: b, time: tm})
	}
	sort.Slice(t.scratch, func(i, j int) bool { return t.scratch[i].time < t.scratch[j].time })
	u := len(t.scratch)
	size := minTreeSlots
	for size <= 4*u {
		size <<= 1
	}
	if size != len(t.fen) {
		t.fen = make([]int32, size)
	} else {
		for i := range t.fen {
			t.fen[i] = 0
		}
	}
	for i, bt := range t.scratch {
		t.byBlk[bt.block] = uint64(i + 1)
	}
	// Build the all-ones prefix over slots 1..u in O(size).
	for i := 1; i <= u; i++ {
		t.fen[i] = 1
	}
	for i := 1; i < len(t.fen); i++ {
		if j := i + i&(-i); j < len(t.fen) {
			t.fen[j] += t.fen[i]
		}
	}
	t.clock = uint64(u)
}

// FAMisses counts misses of a fully-associative LRU cache with the
// given capacity in blocks over a sequence of block addresses: an
// access misses iff it is a first touch or its stack distance is >=
// capacity. This is the paper's "FA" reference column (Table 3).
func FAMisses(blocks []uint64, capacity int) uint64 {
	t := NewDistanceTree()
	var misses uint64
	for _, b := range blocks {
		d := t.Touch(b)
		if d < 0 || d >= capacity {
			misses++
		}
	}
	return misses
}

// Histogram accumulates a stack-distance histogram. Bucket i counts
// accesses with distance exactly i for i < len(buckets)-1; the final
// bucket aggregates all larger distances. Cold misses are counted
// separately. From the histogram, the miss count of a fully-associative
// LRU cache of any capacity <= len(buckets)-1 can be read off without
// re-simulation: a capacity-c cache misses on cold accesses and on
// distances >= c.
type Histogram struct {
	Cold    uint64
	Buckets []uint64
}

// NewHistogram returns a histogram with maxDistance+1 buckets.
func NewHistogram(maxDistance int) *Histogram {
	return &Histogram{Buckets: make([]uint64, maxDistance+1)}
}

// Add records one access distance (-1 for cold).
func (h *Histogram) Add(distance int) {
	if distance < 0 {
		h.Cold++
		return
	}
	if distance >= len(h.Buckets) {
		distance = len(h.Buckets) - 1
	}
	h.Buckets[distance]++
}

// MissesAt returns the FA-LRU miss count for the given capacity, which
// must be < len(Buckets).
func (h *Histogram) MissesAt(capacity int) uint64 {
	if capacity >= len(h.Buckets) {
		panic("lru: histogram capacity out of range")
	}
	m := h.Cold
	for d := capacity; d < len(h.Buckets); d++ {
		m += h.Buckets[d]
	}
	return m
}

// ReuseHistogram runs a full trace through a DistanceTree and returns
// the stack-distance histogram with the given resolution.
func ReuseHistogram(blocks []uint64, maxDistance int) *Histogram {
	t := NewDistanceTree()
	h := NewHistogram(maxDistance)
	for _, b := range blocks {
		h.Add(t.Touch(b))
	}
	return h
}
