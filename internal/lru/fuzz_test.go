package lru

import (
	"encoding/binary"
	"testing"
)

// FuzzStackRoundTrip round-trips arbitrary access sequences through the
// arena stack's snapshot representation: drive a stack with fuzzer-
// chosen touches and removes, snapshot it with Blocks, rebuild it with
// NewStackFrom, and require the rebuilt arena to be observably
// identical — same listing, same membership, and identical behaviour
// under a further shared access suffix. This is the lru half of the
// profiling checkpoint codec contract (profile snapshots persist
// exactly this listing).
func FuzzStackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 0, 1, 0})
	f.Add([]byte{0xFF, 0x01, 0xFF, 0x01, 0x03, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		s := NewStack()
		for i := 0; i+1 < len(data); i += 2 {
			v := binary.LittleEndian.Uint16(data[i:])
			b := uint64(v >> 1)
			if v&1 == 1 && s.Contains(b) {
				s.Remove(b)
				continue
			}
			s.Touch(b)
		}
		snapshot := s.Blocks()
		restored, err := NewStackFrom(snapshot)
		if err != nil {
			t.Fatalf("snapshot of a live stack rejected: %v", err)
		}
		if restored.Len() != s.Len() {
			t.Fatalf("restored Len = %d, want %d", restored.Len(), s.Len())
		}
		got := restored.Blocks()
		for i := range snapshot {
			if got[i] != snapshot[i] {
				t.Fatalf("block %d: %#x, want %#x", i, got[i], snapshot[i])
			}
		}
		// The restored stack must behave identically under further use.
		for i := 0; i+1 < len(data) && i < 64; i += 2 {
			b := uint64(binary.LittleEndian.Uint16(data[i:]))
			if d1, d2 := s.Touch(b), restored.Touch(b); d1 != d2 {
				t.Fatalf("restored stack diverges at suffix access %d: %d vs %d", i/2, d2, d1)
			}
		}
		// Duplicates in a snapshot must still be rejected.
		if len(snapshot) > 0 {
			if _, err := NewStackFrom(append([]uint64{snapshot[len(snapshot)-1]}, snapshot...)); err == nil {
				t.Fatal("duplicated snapshot accepted")
			}
		}
	})
}
