package lru

// listStack is the pre-arena Stack implementation — a heap-allocated
// doubly-linked *listNode list — kept verbatim as a test-only reference.
// The differential tests below drive it in lockstep with the arena
// Stack on randomized access sequences and require identical behaviour
// from every operation, so the slab/freelist rewrite is proven against
// the structure it replaced rather than against a re-derivation of the
// same idea.

import (
	"math/rand"
	"testing"
)

type listNode struct {
	block      uint64
	prev, next *listNode // prev is toward the top (more recent)
}

type listStack struct {
	byBlock map[uint64]*listNode
	top     *listNode
	bottom  *listNode
	size    int
}

func newListStack() *listStack {
	return &listStack{byBlock: make(map[uint64]*listNode)}
}

func (s *listStack) Len() int { return s.size }

func (s *listStack) Contains(block uint64) bool {
	_, ok := s.byBlock[block]
	return ok
}

func (s *listStack) Push(block uint64) {
	n := &listNode{block: block, next: s.top}
	if s.top != nil {
		s.top.prev = n
	}
	s.top = n
	if s.bottom == nil {
		s.bottom = n
	}
	s.byBlock[block] = n
	s.size++
}

func (s *listStack) unlink(n *listNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.top = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.bottom = n.prev
	}
}

func (s *listStack) MoveToTop(block uint64) {
	n := s.byBlock[block]
	if s.top == n {
		return
	}
	s.unlink(n)
	n.prev = nil
	n.next = s.top
	s.top.prev = n
	s.top = n
}

func (s *listStack) Remove(block uint64) {
	n := s.byBlock[block]
	s.unlink(n)
	delete(s.byBlock, block)
	s.size--
}

func (s *listStack) WalkAbove(block uint64, limit int, fn func(above uint64) bool) (visited int, reached bool) {
	target := s.byBlock[block]
	for n := s.top; n != nil; n = n.next {
		if n == target {
			return visited, true
		}
		if limit >= 0 && visited >= limit {
			return visited, false
		}
		if fn != nil && !fn(n.block) {
			return visited, false
		}
		visited++
	}
	panic("listStack: target not reachable")
}

func (s *listStack) Blocks() []uint64 {
	out := make([]uint64, 0, s.size)
	for n := s.top; n != nil; n = n.next {
		out = append(out, n.block)
	}
	return out
}

// TestStackDifferentialVsList drives the arena stack and the legacy
// linked-list stack through identical randomized op sequences — pushes,
// moves, removes (exercising the freelist), and bounded walks — and
// requires bit-identical observable state after every step.
func TestStackDifferentialVsList(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		universe := 1 + rng.Intn(80)
		arena := NewStack()
		ref := newListStack()
		for step := 0; step < 400; step++ {
			b := uint64(rng.Intn(universe))
			switch op := rng.Intn(10); {
			case op < 5: // touch: push or move-to-top
				if arena.Contains(b) != ref.Contains(b) {
					t.Fatalf("trial %d step %d: Contains(%d) diverges", trial, step, b)
				}
				if arena.Contains(b) {
					arena.MoveToTop(b)
					ref.MoveToTop(b)
				} else {
					arena.Push(b)
					ref.Push(b)
				}
			case op < 7: // remove, recycling the arena slot
				if arena.Contains(b) {
					arena.Remove(b)
					ref.Remove(b)
				}
			default: // bounded walk over the blocks above b
				if !arena.Contains(b) {
					continue
				}
				limit := rng.Intn(universe + 2)
				var gotSeen, wantSeen []uint64
				gotV, gotR := arena.WalkAbove(b, limit, func(y uint64) bool {
					gotSeen = append(gotSeen, y)
					return true
				})
				wantV, wantR := ref.WalkAbove(b, limit, func(y uint64) bool {
					wantSeen = append(wantSeen, y)
					return true
				})
				if gotV != wantV || gotR != wantR {
					t.Fatalf("trial %d step %d: walk(%d, limit=%d) = (%d,%v), want (%d,%v)",
						trial, step, b, limit, gotV, gotR, wantV, wantR)
				}
				for i := range wantSeen {
					if gotSeen[i] != wantSeen[i] {
						t.Fatalf("trial %d step %d: walk order %v, want %v", trial, step, gotSeen, wantSeen)
					}
				}
			}
			if arena.Len() != ref.Len() {
				t.Fatalf("trial %d step %d: Len %d, want %d", trial, step, arena.Len(), ref.Len())
			}
		}
		got, want := arena.Blocks(), ref.Blocks()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d blocks, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: final order %v, want %v", trial, got, want)
			}
		}
	}
}

// TestStackFreelistReuse checks that removed slots are recycled: after
// interleaved removes and pushes the slab must not grow beyond the peak
// live population.
func TestStackFreelistReuse(t *testing.T) {
	s := NewStack()
	for b := uint64(0); b < 64; b++ {
		s.Push(b)
	}
	for round := 0; round < 100; round++ {
		b := uint64(round % 64)
		s.Remove(b)
		s.Push(b + 1000*uint64(round+1)) // fresh block, recycled slot
		s.Remove(b + 1000*uint64(round+1))
		s.Push(b)
	}
	if nodes, _ := s.Raw(); len(nodes) > 65 {
		t.Fatalf("slab grew to %d slots for 64 live blocks", len(nodes))
	}
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
}

// TestStackRemovePanics pins the Remove contract for absent blocks.
func TestStackRemovePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of absent block should panic")
		}
	}()
	NewStack().Remove(42)
}

// TestStackRawWalk checks the slab-level walk contract used by the
// profiling hot loop: following Next from Raw's top index visits the
// same sequence as Blocks.
func TestStackRawWalk(t *testing.T) {
	s := NewStack()
	for _, b := range []uint64{5, 9, 1, 9, 5, 7} {
		s.Touch(b)
	}
	want := s.Blocks()
	nodes, top := s.Raw()
	var got []uint64
	for i := top; i != int32(-1); i = nodes[i].Next {
		got = append(got, nodes[i].Block)
	}
	if len(got) != len(want) {
		t.Fatalf("raw walk saw %d blocks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("raw walk %v, want %v", got, want)
		}
	}
	if idx, ok := s.Index(7); !ok || nodes[idx].Block != 7 {
		t.Fatalf("Index(7) = (%d, %v)", idx, ok)
	}
	if _, ok := s.Index(12345); ok {
		t.Fatal("Index of absent block reported present")
	}
}
