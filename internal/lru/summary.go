package lru

// GateSummary is the compact boundary state one profiling shard exports
// instead of replaying overlap accesses (DESIGN.md §13): the shard's
// distinct blocks in first-touch order and in final recency order.
// Both slices list the same block set; together they are everything a
// boundary reconciler needs to (a) classify the shard's apparent first
// touches against earlier history and (b) advance the sequential LRU
// state across the shard without seeing a single raw access.
//
// The summary's size is the shard's distinct-block count — independent
// of the shard length — which is what makes exchanging summaries
// cheaper than the warmup-replay scheme it replaced.
type GateSummary struct {
	// FirstTouch lists the shard's distinct blocks in the order each
	// was first accessed. Its prefix of length j is exactly the set of
	// distinct blocks the shard saw before its (j+1)-th first touch —
	// the intra-shard half of that access's reuse distance.
	FirstTouch []uint64

	// Recency lists the same blocks ordered by most recent access,
	// most recent first — the shard's exit LRU stack. Replaying it
	// bottom-up over an earlier boundary stack reproduces the
	// sequential LRU stack at the shard's end, because an LRU stack
	// depends only on the order of last accesses.
	Recency []uint64
}

// Summary exports the stack's gate summary. First-touch order is read
// straight off the arena slab: Push allocates slots in access order, so
// while no slot has ever been recycled the slab order is the insertion
// order. It panics if Remove has been called (a recycled slot breaks
// that correspondence); profiling stacks never evict, so the constraint
// is structural, not operational.
func (s *Stack) Summary() GateSummary {
	if s.free != nilIdx || len(s.nodes) != s.size {
		panic("lru: Summary after Remove: slab order is no longer insertion order")
	}
	first := make([]uint64, len(s.nodes))
	for i := range s.nodes {
		first[i] = s.nodes[i].Block
	}
	return GateSummary{FirstTouch: first, Recency: s.Blocks()}
}
