package lru

import (
	"math/rand"
	"testing"
)

func TestStackBasicOrder(t *testing.T) {
	s := NewStack()
	s.Push(1)
	s.Push(2)
	s.Push(3)
	got := s.Blocks()
	want := []uint64{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Blocks() = %v, want %v", got, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStackMoveToTop(t *testing.T) {
	s := NewStack()
	for b := uint64(1); b <= 5; b++ {
		s.Push(b)
	}
	s.MoveToTop(3) // 3 5 4 2 1
	got := s.Blocks()
	want := []uint64{3, 5, 4, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after MoveToTop: %v, want %v", got, want)
		}
	}
	// Move bottom and top.
	s.MoveToTop(1) // 1 3 5 4 2
	s.MoveToTop(1) // no-op
	got = s.Blocks()
	want = []uint64{1, 3, 5, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after bottom move: %v, want %v", got, want)
		}
	}
}

func TestStackDepthAndTouch(t *testing.T) {
	s := NewStack()
	if d := s.Touch(10); d != -1 {
		t.Fatalf("first touch distance = %d", d)
	}
	s.Touch(20)
	s.Touch(30)
	if d := s.Depth(10); d != 2 {
		t.Fatalf("Depth(10) = %d", d)
	}
	if d := s.Touch(10); d != 2 {
		t.Fatalf("Touch(10) = %d", d)
	}
	// After touching, 10 is on top.
	if d := s.Depth(10); d != 0 {
		t.Fatalf("post-touch depth = %d", d)
	}
	// Immediate re-touch has distance 0.
	if d := s.Touch(10); d != 0 {
		t.Fatalf("re-touch = %d", d)
	}
}

func TestWalkAbove(t *testing.T) {
	s := NewStack()
	for b := uint64(1); b <= 6; b++ {
		s.Push(b)
	}
	// Stack: 6 5 4 3 2 1. Blocks above 3 are 6, 5, 4.
	var seen []uint64
	visited, reached := s.WalkAbove(3, -1, func(b uint64) bool {
		seen = append(seen, b)
		return true
	})
	if !reached || visited != 3 {
		t.Fatalf("visited=%d reached=%v", visited, reached)
	}
	want := []uint64{6, 5, 4}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk order %v, want %v", seen, want)
		}
	}
	// Limit smaller than distance: not reached.
	if _, reached := s.WalkAbove(1, 3, nil); reached {
		t.Fatal("should not reach block 1 within limit 3")
	}
	// Limit exactly the distance: reached.
	if _, reached := s.WalkAbove(3, 3, nil); !reached {
		t.Fatal("limit == distance should reach")
	}
	// Early abort.
	count := 0
	if _, reached := s.WalkAbove(1, -1, func(uint64) bool { count++; return count < 2 }); reached {
		t.Fatal("aborted walk should report not reached")
	}
	if count != 2 {
		t.Fatalf("fn called %d times, want 2", count)
	}
}

func TestStackPanics(t *testing.T) {
	s := NewStack()
	s.Push(1)
	for name, fn := range map[string]func(){
		"double push":        func() { s.Push(1) },
		"move absent":        func() { s.MoveToTop(99) },
		"walk above absent":  func() { s.WalkAbove(99, -1, nil) },
		"depth absent block": func() { s.Depth(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// referenceDistances computes stack distances with a naive slice model.
func referenceDistances(blocks []uint64) []int {
	var stack []uint64
	out := make([]int, len(blocks))
	for i, b := range blocks {
		pos := -1
		for j, x := range stack {
			if x == b {
				pos = j
				break
			}
		}
		if pos == -1 {
			out[i] = -1
			stack = append([]uint64{b}, stack...)
		} else {
			out[i] = pos
			stack = append(stack[:pos], stack[pos+1:]...)
			stack = append([]uint64{b}, stack...)
		}
	}
	return out
}

func TestStackMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	blocks := make([]uint64, 3000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(60)) // small universe forces reuse
	}
	want := referenceDistances(blocks)
	s := NewStack()
	for i, b := range blocks {
		if got := s.Touch(b); got != want[i] {
			t.Fatalf("access %d block %d: distance %d, want %d", i, b, got, want[i])
		}
	}
}

func TestNewStackFromRoundTrip(t *testing.T) {
	s := NewStack()
	for _, b := range []uint64{10, 20, 30, 20, 40, 10} {
		s.Touch(b)
	}
	snapshot := s.Blocks()
	restored, err := NewStackFrom(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Blocks()
	if len(got) != len(snapshot) {
		t.Fatalf("restored %d blocks, want %d", len(got), len(snapshot))
	}
	for i := range snapshot {
		if got[i] != snapshot[i] {
			t.Fatalf("block %d: %#x, want %#x", i, got[i], snapshot[i])
		}
	}
	// The restored stack must behave identically going forward.
	if d1, d2 := s.Touch(30), restored.Touch(30); d1 != d2 {
		t.Fatalf("restored stack diverges: distance %d vs %d", d2, d1)
	}
}

func TestNewStackFromRejectsDuplicates(t *testing.T) {
	if _, err := NewStackFrom([]uint64{1, 2, 1}); err == nil {
		t.Fatal("duplicate block accepted")
	}
}

func TestNewStackFromEmpty(t *testing.T) {
	s, err := NewStackFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("empty snapshot restored %d blocks", s.Len())
	}
}
