// Package core ties the pipeline of the paper together: profile a
// trace (Fig. 1), search for an application-specific XOR index
// function (§3.2), validate it by exact simulation, and fall back to
// conventional indexing when the heuristic would add misses (the §6
// mitigation). This is the package a downstream user starts from; the
// lower layers (gf2, profile, search, cache, ...) remain available for
// finer control.
package core

import (
	"fmt"
	"runtime"
	"strings"

	"xoridx/internal/cache"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/search"
	"xoridx/internal/trace"
	"xoridx/internal/xerr"
)

// Sentinel errors of the pipeline, re-exported from internal/xerr so
// downstream users can match them with errors.Is against any error the
// core API returns, without importing the internal leaf package.
var (
	// ErrCanceled marks errors caused by context cancellation; such
	// errors also wrap the context's own cause (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = xerr.ErrCanceled
	// ErrInvalidGeometry marks impossible cache geometries.
	ErrInvalidGeometry = xerr.ErrInvalidGeometry
	// ErrInvalidOptions marks search/profiling options out of domain.
	ErrInvalidOptions = xerr.ErrInvalidOptions
	// ErrProfileMismatch marks profiles incompatible with the config.
	ErrProfileMismatch = xerr.ErrProfileMismatch
	// ErrFormat marks unparsable serialized input (traces, matrices,
	// checkpoint snapshots).
	ErrFormat = xerr.ErrFormat
	// ErrIO marks transient I/O failures that a retry policy may
	// recover (see internal/faultio); permanent failures never wrap it.
	ErrIO = xerr.ErrIO
	// ErrPanic marks a recovered panic in a parallel worker, converted
	// to an error instead of crashing the process.
	ErrPanic = xerr.ErrPanic
)

// Config describes one tuning problem.
type Config struct {
	// CacheBytes is the cache capacity (direct mapped). Required.
	CacheBytes int
	// BlockBytes is the line size; the paper uses 4. Default 4.
	BlockBytes int
	// Ways is the associativity; the paper studies direct-mapped caches
	// (1, the default). Higher values tune the index function for a
	// set-associative geometry: fewer set bits, LRU within the set.
	Ways int
	// AddrBits is n, the number of hashed block-address bits; the paper
	// uses 16. Default 16.
	AddrBits int
	// Family selects the function family; default FamilyPermutation
	// (the paper's recommended reconfigurable family).
	Family hash.Family
	// MaxInputs bounds XOR fan-in (paper's 2-in/4-in); 0 = unlimited.
	MaxInputs int
	// Restarts and Seed add randomised hill-climbing restarts beyond
	// the paper's single conventional start.
	Restarts int
	Seed     int64
	// MaxIterations caps hill-climbing moves; 0 = until local optimum.
	MaxIterations int
	// NoFallback disables the revert-to-conventional guard of §6.
	NoFallback bool
	// Workers fans both pipeline phases out across goroutines: the
	// profiling pass shards the trace (profile.BuildParallel, exact for
	// any worker count) and the search phase parallelises neighbor
	// evaluation where the algorithm supports it. 0 or 1 = sequential;
	// < 0 = one worker per core.
	Workers int
	// NoIncremental disables the search phase's memoized coset-sum
	// evaluator, scoring every candidate with a full Gray-code walk as
	// the original implementation did. Results are identical; the knob
	// exists for benchmarking and differential testing.
	NoIncremental bool
	// CheckpointPath, when non-empty, is the base path for crash
	// snapshots: the profiling stage writes <path>.profile.ckpt and the
	// search stage <path>.search.ckpt, both atomically, so a killed run
	// restarted with Resume continues where it stopped (bit-identical
	// to an uninterrupted run). Checkpointed profiling runs through the
	// sequential builder regardless of Workers.
	CheckpointPath string
	// CheckpointEvery is the profiling snapshot cadence in trace
	// accesses (0 selects the profile layer's default, ~1M). The search
	// stage snapshots after every hill-climbing move.
	CheckpointEvery int
	// Resume restores existing checkpoint files under CheckpointPath
	// before each stage runs; missing files mean a cold start.
	Resume bool
	// SampleK enables sampled profiling (DESIGN.md §17): every access
	// is still classified exactly against the full LRU state, but only
	// every SampleK-th conflict candidate is walked into the histogram,
	// so Eq. 4 estimates carry a confidence interval instead of being
	// exact. <= 1 profiles exactly. Sampling forces the profiling stage
	// sequential and is incompatible with CheckpointPath.
	SampleK uint64
	// SampleSeed picks the deterministic sampling phase (and the sketch
	// backend's row hashes); runs with the same seed are reproducible.
	SampleSeed uint64
	// Backend selects the histogram backend: "" or "auto" (flat table
	// up to profile.MaxFlatBits address bits, sparse map beyond),
	// "flat", "sparse", or "sketch" (count-min: memory bounded at any
	// width, estimates become (ε, δ)-bounded upper bounds). Only the
	// auto backend composes with CheckpointPath.
	Backend string
}

func (c Config) withDefaults() Config {
	if c.BlockBytes == 0 {
		c.BlockBytes = 4
	}
	if c.AddrBits == 0 {
		c.AddrBits = 16
	}
	if c.Ways == 0 {
		c.Ways = 1
	}
	return c
}

func (c Config) validate() error {
	if c.CacheBytes <= 0 {
		return fmt.Errorf("core: CacheBytes must be positive: %w", xerr.ErrInvalidGeometry)
	}
	if c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("core: BlockBytes %d not a power of two: %w", c.BlockBytes, xerr.ErrInvalidGeometry)
	}
	blocks := c.CacheBytes / c.BlockBytes
	if blocks <= 1 || blocks&(blocks-1) != 0 {
		return fmt.Errorf("core: cache of %d blocks not a power of two > 1: %w", blocks, xerr.ErrInvalidGeometry)
	}
	if c.Ways < 1 || c.Ways&(c.Ways-1) != 0 || c.Ways > blocks {
		return fmt.Errorf("core: %d ways invalid for a %d-block cache: %w", c.Ways, blocks, xerr.ErrInvalidGeometry)
	}
	if blocks/c.Ways < 2 {
		return fmt.Errorf("core: fully-associative geometry has no index to tune: %w", xerr.ErrInvalidGeometry)
	}
	if c.AddrBits < c.SetBits()+1 || c.AddrBits > profile.MaxBits {
		return fmt.Errorf("core: AddrBits %d out of range (need > set bits %d, <= %d): %w",
			c.AddrBits, c.SetBits(), profile.MaxBits, xerr.ErrInvalidGeometry)
	}
	switch c.Backend {
	case "", "auto", "flat", "sparse", "sketch":
	default:
		return fmt.Errorf("core: unknown histogram backend %q (want auto, flat, sparse or sketch): %w",
			c.Backend, xerr.ErrInvalidOptions)
	}
	if c.Backend == "flat" && c.AddrBits > profile.MaxFlatBits {
		return fmt.Errorf("core: flat backend caps at %d address bits, config has %d: %w",
			profile.MaxFlatBits, c.AddrBits, xerr.ErrInvalidOptions)
	}
	if c.CheckpointPath != "" {
		if c.SampleK > 1 {
			return fmt.Errorf("core: sampled profiling cannot be checkpointed: %w", xerr.ErrInvalidOptions)
		}
		if c.Backend != "" && c.Backend != "auto" {
			return fmt.Errorf("core: checkpointed profiling supports only the auto backend, not %q: %w",
				c.Backend, xerr.ErrInvalidOptions)
		}
	}
	return nil
}

// Normalized applies the config defaults and validates the result —
// the exported form of the defaulting every pipeline stage performs
// internally, for layers (like internal/serve) that derive geometry
// from a Config before handing it back to the pipeline.
func (c Config) Normalized() (Config, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// SetBits returns m = log2(sets) for the configured geometry.
func (c Config) SetBits() int {
	ways := c.Ways
	if ways == 0 {
		ways = 1
	}
	sets := c.CacheBytes / c.BlockBytes / ways
	m := 0
	for v := 1; v < sets; v <<= 1 {
		m++
	}
	return m
}

// Result is the outcome of Tune.
type Result struct {
	// Func is the selected index function (the optimized one, or the
	// conventional function if the fallback fired).
	Func hash.Func
	// Search reports the design-space search outcome.
	Search search.Result
	// Baseline and Optimized are exact simulation results for the
	// conventional and the searched function.
	Baseline  cache.Stats
	Optimized cache.Stats
	// UsedFallback is set when the searched function would have added
	// misses and the conventional function was kept (§6).
	UsedFallback bool
	// Profile is the conflict-vector histogram (reusable across
	// families and input bounds for the same trace and cache size).
	Profile *profile.Profile
	// Degraded is set on a best-so-far result returned alongside a
	// cancellation error: the search was interrupted (Search.Degraded
	// tells how many moves completed) or exact validation did not
	// finish (Baseline/Optimized are then zero). Func still holds a
	// valid index function — just not a validated local optimum.
	Degraded bool
}

// MissesRemoved returns the fraction of baseline misses eliminated by
// the selected function (negative if it added misses and fallback was
// disabled).
func (r *Result) MissesRemoved() float64 {
	if r.Baseline.Misses == 0 {
		return 0
	}
	return 1 - float64(r.Optimized.Misses)/float64(r.Baseline.Misses)
}

// Tune runs the full pipeline on a trace.
//
// Tune is the non-cancellable form of TuneCtx: it profiles, searches
// and validates with context.Background() and no event sink, keeping
// the pre-refactor hot paths check-free.
func Tune(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p, err := buildProfile(tr, cfg)
	if err != nil {
		return nil, err
	}
	return TuneProfiled(tr, p, cfg)
}

// TuneProfiled runs search + validation with a pre-built profile,
// letting callers amortise profiling across several searches (e.g. the
// 2-in/4-in/16-in sweep of Table 2). It is the non-cancellable form of
// TuneProfiledCtx.
func TuneProfiled(tr *trace.Trace, p *profile.Profile, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := checkProfile(p, cfg); err != nil {
		return nil, err
	}
	m := cfg.SetBits()
	sres, err := search.Construct(p, m, cfg.searchOptions())
	if err != nil {
		return nil, err
	}
	return validateSearch(tr, p, cfg, sres)
}

// checkProfile verifies that a pre-built profile matches the config.
func checkProfile(p *profile.Profile, cfg Config) error {
	if p.N != cfg.AddrBits {
		return fmt.Errorf("core: profile has n=%d, config wants %d: %w", p.N, cfg.AddrBits, xerr.ErrProfileMismatch)
	}
	if p.CacheBlocks != cfg.CacheBytes/cfg.BlockBytes {
		return fmt.Errorf("core: profile capacity filter %d blocks, config cache is %d blocks: %w",
			p.CacheBlocks, cfg.CacheBytes/cfg.BlockBytes, xerr.ErrProfileMismatch)
	}
	return nil
}

// searchOptions maps the config onto the search layer's options.
func (c Config) searchOptions() search.Options {
	opt := search.Options{
		Family:        c.Family,
		MaxInputs:     c.MaxInputs,
		MaxIterations: c.MaxIterations,
		Restarts:      c.Restarts,
		Seed:          c.Seed,
		Workers:       c.profileWorkers(),
		NoIncremental: c.NoIncremental,
	}
	if c.CheckpointPath != "" {
		opt.CheckpointPath = c.searchCheckpointPath()
		opt.Resume = c.Resume
	}
	return opt
}

// Stage checkpoint files under the configured base path.
func (c Config) profileCheckpointPath() string { return c.CheckpointPath + ".profile.ckpt" }
func (c Config) searchCheckpointPath() string  { return c.CheckpointPath + ".search.ckpt" }

// validateSearch turns a search result into the final Result: exact
// baseline + optimized simulations and the §6 fallback guard.
func validateSearch(tr *trace.Trace, p *profile.Profile, cfg Config, sres search.Result) (*Result, error) {
	m := cfg.SetBits()
	optFunc, err := hash.NewXOR(sres.Matrix)
	if err != nil {
		return nil, errInvalidMatrix(err)
	}
	res := &Result{Search: sres, Profile: p}
	res.Baseline = simulate(tr, cfg, hash.Modulo(cfg.AddrBits, m))
	res.Optimized = simulate(tr, cfg, optFunc)
	res.Func = optFunc
	applyFallback(res, cfg, m)
	return res, nil
}

func errInvalidMatrix(err error) error {
	return fmt.Errorf("core: search produced invalid matrix: %w", err)
}

// applyFallback reverts to the conventional function when the searched
// one would add misses (paper §6), unless disabled.
func applyFallback(res *Result, cfg Config, m int) {
	if !cfg.NoFallback && res.Optimized.Misses > res.Baseline.Misses {
		// Paper §6: "one can revert to the conventional index function".
		res.Func = hash.Modulo(cfg.AddrBits, m)
		res.Optimized = res.Baseline
		res.UsedFallback = true
	}
}

// Simulate runs one exact simulation of the trace under the config's
// geometry with the given index function — the validation primitive
// Tune uses, exported for callers that construct functions themselves
// (alternative search algorithms, saved matrices).
func Simulate(tr *trace.Trace, cfg Config, f hash.Func) cache.Stats {
	return simulate(tr, cfg.withDefaults(), f)
}

func simulate(tr *trace.Trace, cfg Config, f hash.Func) cache.Stats {
	c := cache.MustNew(cacheConfig(cfg, f))
	c.DisableClassification()
	return c.Run(tr)
}

func cacheConfig(cfg Config, f hash.Func) cache.Config {
	return cache.Config{
		SizeBytes:  cfg.CacheBytes,
		BlockBytes: cfg.BlockBytes,
		Ways:       cfg.Ways,
		Index:      f,
	}
}

// BuildProfile profiles a trace for the given configuration; exposed
// so callers can share it across TuneProfiled calls. With Workers > 1
// (or < 0 for all cores) the pass runs through the sharded pipeline,
// which is bit-identical to the sequential one. It is the
// non-cancellable form of BuildProfileCtx.
func BuildProfile(tr *trace.Trace, cfg Config) (*profile.Profile, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return buildProfile(tr, cfg)
}

func buildProfile(tr *trace.Trace, cfg Config) (*profile.Profile, error) {
	blocks := tr.Blocks(cfg.BlockBytes, cfg.AddrBits)
	return profile.BuildParallelOpts(blocks, cfg.AddrBits, cfg.CacheBytes/cfg.BlockBytes, cfg.profileOptions())
}

// profileOptions maps the config onto the profile layer's sharding,
// sampling and backend options. Workers is clamped to at least 1:
// Config's zero value means sequential, while a zero
// ParallelOptions.Workers would mean one per core.
func (c Config) profileOptions() profile.ParallelOptions {
	w := c.profileWorkers()
	if w < 1 {
		w = 1
	}
	opt := profile.ParallelOptions{
		Workers: w,
		Sample:  profile.SampleOptions{K: c.SampleK, Seed: c.SampleSeed},
	}
	switch c.Backend {
	case "sparse":
		opt.ForceSparse = true
	case "sketch":
		opt.Sketch = &profile.SketchOptions{Seed: c.SampleSeed}
	}
	return opt
}

// profileWorkers resolves the Workers knob: < 0 means one per core.
func (c Config) profileWorkers() int {
	if c.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// DescribeFunction renders the selected function: family line, matrix,
// and its null-space basis — the artefacts a hardware engineer needs to
// program the Fig. 2 selector network. The result never carries a
// trailing newline, so it composes cleanly with fmt.Println.
func DescribeFunction(f hash.Func) string {
	h := f.Matrix()
	ns := h.NullSpace()
	// SizeBig, not Size: a 64-bit-wide degenerate function can have a
	// full-width null space, whose 2^64 count overflows the uint64 Size.
	s := fmt.Sprintf("%s\nmatrix (rows = address bits %d..0):\n%s\nnull space (%s vectors):\n%s",
		f, h.N-1, h, ns.SizeBig(), ns)
	return strings.TrimRight(s, "\n")
}
