package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"xoridx/internal/hash"
	"xoridx/internal/trace"
)

// richTrace interleaves two conflicting stride streams so the search
// takes several hill-climbing moves.
func richTrace(reps int) *trace.Trace {
	tr := &trace.Trace{Name: "rich", Ops: uint64(reps * 64)}
	for r := 0; r < reps; r++ {
		for i := 0; i < 48; i++ {
			tr.Append(uint64(i*256), trace.Read)
			if i%3 == 0 {
				tr.Append(uint64(i*768+28), trace.Read)
			}
		}
	}
	return tr
}

func degradedConfig() Config {
	return Config{CacheBytes: 256, BlockBytes: 4, AddrBits: 12, Family: hash.FamilyGeneralXOR}
}

func TestRunProfiledDegradedOnCancel(t *testing.T) {
	tr := richTrace(6)
	cfg := degradedConfig()
	p, err := BuildProfile(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl := Pipeline{Config: cfg, Events: SinkFunc(func(e Event) {
		if e.Kind == SearchProgress {
			cancel() // kill the pipeline after the first move
		}
	})}
	res, err := pl.RunProfiled(ctx, tr, p)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want wrapped ErrCanceled", err)
	}
	if res == nil || !res.Degraded {
		t.Fatalf("want a Degraded best-so-far result alongside the error, got %+v", res)
	}
	if !res.Search.Degraded {
		t.Error("Search.Degraded not set on the embedded search result")
	}
	if res.Func == nil {
		t.Fatal("degraded result carries no index function")
	}
	if res.Func.Matrix().Rank() != cfg.SetBits() {
		t.Fatalf("degraded function is not a valid index function: rank %d", res.Func.Matrix().Rank())
	}
	if res.Baseline.Misses != 0 || res.Optimized.Misses != 0 {
		t.Error("degraded result must not fake validated simulation stats")
	}
}

func TestValidateDegradedOnCancel(t *testing.T) {
	tr := richTrace(6)
	cfg := degradedConfig()
	pl := Pipeline{Config: cfg}
	p, err := pl.Profile(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := pl.Search(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pl.Validate(ctx, tr, p, sres)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want wrapped ErrCanceled", err)
	}
	if res == nil || !res.Degraded || res.Func == nil {
		t.Fatalf("interrupted validation must still return the searched function, got %+v", res)
	}
}

func TestProfileDegradedPartialOnCancel(t *testing.T) {
	tr := richTrace(10)
	cfg := degradedConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl := Pipeline{Config: cfg}
	p, err := pl.Profile(ctx, tr)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want wrapped ErrCanceled", err)
	}
	if p == nil || !p.Degraded {
		t.Fatalf("sequential profiling must return the partial profile tagged Degraded, got %+v", p)
	}
}

// TestPipelineCheckpointResume kills the pipeline mid-search, restarts
// it with Resume, and requires the final tuned result to match an
// uninterrupted run exactly.
func TestPipelineCheckpointResume(t *testing.T) {
	tr := richTrace(6)
	cfg := degradedConfig()
	want, err := Tune(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Search.Iterations < 2 {
		t.Fatalf("test needs a multi-move search, got %d moves", want.Search.Iterations)
	}

	cfg.CheckpointPath = filepath.Join(t.TempDir(), "run")
	cfg.Resume = true
	kill := func(after int) (*Result, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		moves := 0
		pl := Pipeline{Config: cfg, Events: SinkFunc(func(e Event) {
			if e.Kind == SearchProgress {
				if moves++; after > 0 && moves >= after {
					cancel()
				}
			}
		})}
		return pl.Run(ctx, tr)
	}
	res, err := kill(1)
	if err == nil {
		t.Fatal("first run completed before the kill fired")
	}
	if res == nil || !res.Degraded {
		t.Fatalf("killed run returned no degraded result: %+v", res)
	}
	got, err := kill(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("resumed run still tagged Degraded")
	}
	if got.Search.Estimated != want.Search.Estimated ||
		got.Search.Iterations != want.Search.Iterations ||
		got.Search.Evaluated != want.Search.Evaluated {
		t.Fatalf("resumed search diverged: got (%d est, %d moves, %d evals), want (%d, %d, %d)",
			got.Search.Estimated, got.Search.Iterations, got.Search.Evaluated,
			want.Search.Estimated, want.Search.Iterations, want.Search.Evaluated)
	}
	if got.Optimized.Misses != want.Optimized.Misses || got.Baseline.Misses != want.Baseline.Misses {
		t.Fatalf("resumed validation diverged: got %d/%d misses, want %d/%d",
			got.Optimized.Misses, got.Baseline.Misses, want.Optimized.Misses, want.Baseline.Misses)
	}
	if got.Func.Matrix().String() != want.Func.Matrix().String() {
		t.Fatal("resumed run selected a different function")
	}
}

func TestSentinelReexports(t *testing.T) {
	// The robustness sentinels must be matchable through the core
	// surface without importing internal/xerr.
	for _, pair := range []struct {
		name string
		got  error
	}{
		{"ErrIO", ErrIO},
		{"ErrPanic", ErrPanic},
	} {
		if pair.got == nil {
			t.Errorf("%s re-export is nil", pair.name)
		}
	}
}
