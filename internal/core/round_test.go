package core

import (
	"context"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/hash"
)

// TestSearchRoundTagsEvents runs one warm-started round and checks
// that every emitted event carries the caller's round index — the
// attribution a serving loop's shared sink relies on.
func TestSearchRoundTagsEvents(t *testing.T) {
	tr := thrashTrace(64, 300)
	cfg, err := pipelineConfig().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	pl := Pipeline{Config: cfg, Events: SinkFunc(func(e Event) { events = append(events, e) })}
	p, err := pl.Profile(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	events = nil
	warm := gf2.Identity(cfg.AddrBits, cfg.SetBits())
	if _, err := pl.SearchRound(context.Background(), p, warm, 7); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("expected at least start/finish events, got %d", len(events))
	}
	for i, e := range events {
		if e.Round != 7 {
			t.Fatalf("event %d has Round %d, want 7", i, e.Round)
		}
		if e.Stage != StageSearch {
			t.Fatalf("event %d from stage %q, want search", i, e.Stage)
		}
	}
}

// TestSearchRoundWarmMatchesSearch pins that round 0 with no warm
// matrix is exactly the one-shot Search, and that warm-starting from
// the conventional matrix changes nothing about the answer.
func TestSearchRoundWarmMatchesSearch(t *testing.T) {
	tr := thrashTrace(64, 300)
	cfg, err := pipelineConfig().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	pl := Pipeline{Config: cfg}
	p, err := pl.Profile(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pl.Search(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.SearchRound(context.Background(), p, gf2.Identity(cfg.AddrBits, cfg.SetBits()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matrix.Equal(want.Matrix) || got.Estimated != want.Estimated {
		t.Fatalf("warm round from conventional diverged: est %d vs %d", got.Estimated, want.Estimated)
	}
}

// TestSearchRoundWarmFallsBackForMatrixFamilies pins that a warm seed
// with a family that cannot resume mid-climb state degrades to the
// cold search instead of erroring — the serving loop must keep tuning
// whatever family it was configured with.
func TestSearchRoundWarmFallsBackForMatrixFamilies(t *testing.T) {
	tr := thrashTrace(64, 300)
	cfg, err := pipelineConfig().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Family = hash.FamilyPermutation
	cfg.MaxInputs = 2
	pl := Pipeline{Config: cfg}
	p, err := pl.Profile(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pl.Search(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := pl.SearchRound(context.Background(), p, gf2.Identity(cfg.AddrBits, cfg.SetBits()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Matrix.Equal(cold.Matrix) || warm.Estimated != cold.Estimated {
		t.Fatalf("permutation-family round with warm hint diverged from cold search: est %d vs %d",
			warm.Estimated, cold.Estimated)
	}
}

// TestNormalized pins the exported defaulting: zero BlockBytes/
// AddrBits/Ways fill in, and invalid geometry still fails.
func TestNormalized(t *testing.T) {
	cfg, err := Config{CacheBytes: 256}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BlockBytes != 4 || cfg.AddrBits != 16 || cfg.Ways != 1 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if _, err := (Config{CacheBytes: 300}).Normalized(); err == nil {
		t.Fatal("non-power-of-two geometry must fail")
	}
}
