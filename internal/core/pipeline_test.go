package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"xoridx/internal/hash"
)

func pipelineConfig() Config {
	return Config{CacheBytes: 256, AddrBits: 12, Family: hash.FamilyGeneralXOR}
}

func TestTuneCtxMatchesTune(t *testing.T) {
	tr := thrashTrace(64, 300)
	cfg := pipelineConfig()
	want, err := Tune(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TuneCtx(context.Background(), tr, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Baseline != want.Baseline || got.Optimized != want.Optimized ||
		got.Search.Estimated != want.Search.Estimated || got.UsedFallback != want.UsedFallback {
		t.Fatalf("TuneCtx result %+v differs from Tune %+v", got, want)
	}
}

// TestPipelineEventOrder runs the staged pipeline with a recording sink
// and checks the event protocol: each stage brackets its work with
// StageStarted/StageFinished, in pipeline order, with SearchProgress
// events only inside the search bracket.
func TestPipelineEventOrder(t *testing.T) {
	tr := thrashTrace(64, 300)
	var events []Event
	res, err := TuneCtx(context.Background(), tr, pipelineConfig(), SinkFunc(func(e Event) {
		events = append(events, e)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Func == nil {
		t.Fatal("no result")
	}
	var order []string
	progress := 0
	searchOpen := false
	for _, e := range events {
		switch e.Kind {
		case StageStarted:
			order = append(order, "start:"+string(e.Stage))
			searchOpen = e.Stage == StageSearch
		case StageFinished:
			order = append(order, "end:"+string(e.Stage))
			if e.Stage == StageSearch {
				searchOpen = false
				if e.Iteration != res.Search.Iterations || e.Evaluated != res.Search.Evaluated {
					t.Errorf("search StageFinished totals (%d, %d) != result (%d, %d)",
						e.Iteration, e.Evaluated, res.Search.Iterations, res.Search.Evaluated)
				}
			}
		case SearchProgress:
			progress++
			if !searchOpen {
				t.Error("SearchProgress outside the search stage bracket")
			}
		}
	}
	want := []string{"start:profile", "end:profile", "start:search", "end:search", "start:validate", "end:validate"}
	if len(order) != len(want) {
		t.Fatalf("stage brackets %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stage brackets %v, want %v", order, want)
		}
	}
	if progress == 0 {
		t.Error("no SearchProgress events for an improving search")
	}
}

func TestTuneCtxCanceledMidProfile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildProfileCtx(ctx, thrashTrace(64, 100), pipelineConfig())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must wrap ErrCanceled and context.Canceled", err)
	}
}

// TestTuneCtxCanceledMidSearch cancels from the first SearchProgress
// event: profiling has succeeded, the search is mid-climb, and the
// pipeline must unwind with a wrapped ErrCanceled.
func TestTuneCtxCanceledMidSearch(t *testing.T) {
	tr := thrashTrace(64, 300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawProfile := false
	_, err := TuneCtx(ctx, tr, pipelineConfig(), SinkFunc(func(e Event) {
		if e.Kind == StageFinished && e.Stage == StageProfile {
			sawProfile = true
		}
		if e.Kind == SearchProgress {
			cancel()
		}
	}))
	if !sawProfile {
		t.Fatal("profiling stage did not complete")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v must wrap ErrCanceled", err)
	}
}

func TestSimulateCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := pipelineConfig()
	_, err := SimulateCtx(ctx, thrashTrace(64, 10), cfg, hash.Modulo(12, 6))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v must wrap ErrCanceled", err)
	}
	// Uncanceled, it must agree with the plain Simulate.
	tr := thrashTrace(64, 50)
	want := Simulate(tr, cfg, hash.Modulo(12, 6))
	got, err := SimulateCtx(context.Background(), tr, cfg, hash.Modulo(12, 6))
	if err != nil || got != want {
		t.Fatalf("SimulateCtx = %+v, %v; want %+v", got, err, want)
	}
}

// TestPipelineStagedReuse exercises the staged API directly: one
// profile feeds two searches with different families, and each result
// matches the corresponding one-call pipeline.
func TestPipelineStagedReuse(t *testing.T) {
	tr := thrashTrace(64, 300)
	cfg := pipelineConfig()
	pl := Pipeline{Config: cfg}
	ctx := context.Background()
	p, err := pl.Profile(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []hash.Family{hash.FamilyGeneralXOR, hash.FamilyBitSelect} {
		pl.Config.Family = fam
		sres, err := pl.Search(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Validate(ctx, tr, p, sres)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Family = fam
		want, err := Tune(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Optimized.Misses != want.Optimized.Misses {
			t.Errorf("family %v: staged misses %d != Tune misses %d", fam, res.Optimized.Misses, want.Optimized.Misses)
		}
	}
}

// TestSharedSinkConcurrentPipelines runs two pipelines concurrently
// into one mutex-guarded sink, as cmd/tables does with parallel
// experiment cells.
func TestSharedSinkConcurrentPipelines(t *testing.T) {
	tr := thrashTrace(64, 300)
	var mu sync.Mutex
	count := 0
	sink := SinkFunc(func(Event) { mu.Lock(); count++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			cfg := pipelineConfig()
			cfg.Workers = workers
			if _, err := TuneCtx(context.Background(), tr, cfg, sink); err != nil {
				t.Error(err)
			}
		}(i * 2) // workers 0 and 2
	}
	wg.Wait()
	if count < 12 { // two pipelines x six stage brackets at minimum
		t.Errorf("shared sink saw %d events, want >= 12", count)
	}
}

func TestTypedGeometryErrors(t *testing.T) {
	bad := []Config{
		{},
		{CacheBytes: 1024, BlockBytes: 3},
		{CacheBytes: 1024, AddrBits: 8},
	}
	for i, cfg := range bad {
		if _, err := Tune(thrashTrace(64, 1), cfg); !errors.Is(err, ErrInvalidGeometry) {
			t.Errorf("config %d: error %v must wrap ErrInvalidGeometry", i, err)
		}
	}
	// Profile mismatch: profile built for another geometry.
	cfg := pipelineConfig()
	p, err := BuildProfile(thrashTrace(64, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.CacheBytes = 512
	if _, err := TuneProfiled(thrashTrace(64, 10), p, other); !errors.Is(err, ErrProfileMismatch) {
		t.Errorf("error %v must wrap ErrProfileMismatch", err)
	}
}
