package core

import (
	"strings"
	"testing"

	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/trace"
	"xoridx/internal/workloads"
)

// thrashTrace alternates between two blocks that alias under modulo
// indexing in a cache with the given number of sets.
func thrashTrace(sets int, reps int) *trace.Trace {
	tr := &trace.Trace{Name: "thrash", Ops: uint64(reps * 8)}
	for i := 0; i < reps; i++ {
		tr.Append(0, trace.Read)
		tr.Append(uint64(sets*4), trace.Read) // same set, different tag
	}
	return tr
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{CacheBytes: 1024}.withDefaults()
	if cfg.BlockBytes != 4 || cfg.AddrBits != 16 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.SetBits() != 8 {
		t.Fatalf("SetBits = %d", cfg.SetBits())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                  // no cache size
		{CacheBytes: 1000},                  // non-power-of-two blocks
		{CacheBytes: 1024, BlockBytes: 3},   // bad block size
		{CacheBytes: 1024, AddrBits: 8},     // n <= set bits
		{CacheBytes: 4, BlockBytes: 4},      // single block
		{CacheBytes: 1 << 40, AddrBits: 30}, // blocks not power of two? (it is; but n too small)
	}
	for i, cfg := range bad {
		if _, err := Tune(&trace.Trace{}, cfg); err == nil {
			t.Errorf("config %d (%+v) should be rejected", i, cfg)
		}
	}
}

func TestTuneRemovesThrash(t *testing.T) {
	tr := thrashTrace(256, 200)
	res, err := Tune(tr, Config{CacheBytes: 1024, Family: hash.FamilyPermutation, MaxInputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Misses != 400 {
		t.Fatalf("baseline misses = %d, want 400 (pure thrash)", res.Baseline.Misses)
	}
	if res.Optimized.Misses != 2 {
		t.Fatalf("optimized misses = %d, want 2 compulsory", res.Optimized.Misses)
	}
	if res.UsedFallback {
		t.Fatal("fallback should not fire")
	}
	if got := res.MissesRemoved(); got < 0.99 {
		t.Fatalf("MissesRemoved = %v", got)
	}
	if !res.Func.Matrix().IsPermutationBased() {
		t.Fatal("function should be permutation-based")
	}
	if res.Func.Matrix().MaxInputs() > 2 {
		t.Fatal("function exceeds 2 inputs")
	}
}

func TestTuneGeneralXORFamily(t *testing.T) {
	tr := thrashTrace(256, 100)
	res, err := Tune(tr, Config{CacheBytes: 1024, Family: hash.FamilyGeneralXOR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized.Misses >= res.Baseline.Misses {
		t.Fatalf("general XOR did not help: %d vs %d", res.Optimized.Misses, res.Baseline.Misses)
	}
}

func TestFallbackGuard(t *testing.T) {
	// A trace with almost no conflicts: the search may pick a function
	// equal-or-better on the estimate; whatever happens, with the guard
	// enabled the final function must never be worse than conventional.
	tr := &trace.Trace{Name: "seq", Ops: 100000}
	for i := 0; i < 30000; i++ {
		tr.Append(uint64(i*4), trace.Read)
	}
	res, err := Tune(tr, Config{CacheBytes: 1024, Family: hash.FamilyPermutation, MaxInputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized.Misses > res.Baseline.Misses {
		t.Fatalf("guarded result worse than baseline: %d vs %d", res.Optimized.Misses, res.Baseline.Misses)
	}
	if res.UsedFallback && res.Func.Matrix().MaxInputs() != 1 {
		t.Fatal("fallback must select the conventional function")
	}
}

func TestTuneProfiledReusesProfile(t *testing.T) {
	tr := thrashTrace(256, 100)
	cfg := Config{CacheBytes: 1024, Family: hash.FamilyPermutation, MaxInputs: 2}
	p, err := BuildProfile(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxIn := range []int{2, 4, 0} {
		c := cfg
		c.MaxInputs = maxIn
		res, err := TuneProfiled(tr, p, c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Optimized.Misses != 2 {
			t.Fatalf("maxIn=%d: misses %d", maxIn, res.Optimized.Misses)
		}
		if res.Profile != p {
			t.Fatal("profile not propagated")
		}
	}
}

func TestTuneProfiledValidatesProfileShape(t *testing.T) {
	tr := thrashTrace(256, 10)
	p, _ := BuildProfile(tr, Config{CacheBytes: 1024})
	// Wrong cache size for this profile.
	if _, err := TuneProfiled(tr, p, Config{CacheBytes: 4096}); err == nil {
		t.Fatal("capacity mismatch must be rejected")
	}
	// Wrong AddrBits.
	if _, err := TuneProfiled(tr, p, Config{CacheBytes: 1024, AddrBits: 14}); err == nil {
		t.Fatal("n mismatch must be rejected")
	}
}

func TestMissesRemovedZeroBaseline(t *testing.T) {
	r := &Result{}
	if r.MissesRemoved() != 0 {
		t.Fatal("zero baseline must give 0")
	}
}

func TestDescribeFunction(t *testing.T) {
	f := hash.Modulo(8, 3)
	s := DescribeFunction(f)
	for _, frag := range []string{"bit-selecting", "matrix", "null space"} {
		if !strings.Contains(s, frag) {
			t.Errorf("description missing %q:\n%s", frag, s)
		}
	}
}

func TestTuneSetAssociative(t *testing.T) {
	// Four blocks aliasing to one set thrash even a 2-way cache; a
	// function tuned for the 2-way geometry separates them.
	tr := &trace.Trace{Name: "quad", Ops: 4000}
	for i := 0; i < 100; i++ {
		for _, b := range []uint64{0, 512 * 4, 1024 * 4, 1536 * 4} {
			tr.Append(b, trace.Read)
		}
	}
	res, err := Tune(tr, Config{CacheBytes: 1024, Ways: 2, Family: hash.FamilyPermutation, MaxInputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Func.SetBits() != 7 { // 128 sets of 2 ways
		t.Fatalf("set bits = %d, want 7", res.Func.SetBits())
	}
	if res.Baseline.Misses != 400 {
		t.Fatalf("2-way baseline should thrash on 4 aliases: %d", res.Baseline.Misses)
	}
	if res.Optimized.Misses != 4 {
		t.Fatalf("tuned 2-way should keep all four resident: %d misses", res.Optimized.Misses)
	}
}

func TestTuneWaysValidation(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(0, trace.Read)
	if _, err := Tune(tr, Config{CacheBytes: 1024, Ways: 3}); err == nil {
		t.Error("non-power-of-two ways must fail")
	}
	if _, err := Tune(tr, Config{CacheBytes: 1024, Ways: 256}); err == nil {
		t.Error("fully-associative geometry must fail (nothing to tune)")
	}
}

func TestMicroControls(t *testing.T) {
	// stride: everything removable; randwalk: nothing removable and the
	// guard keeps us at (or above) the conventional function.
	st, err := workloads.ByName("stride")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(st.Data(1), Config{CacheBytes: 4096, Family: hash.FamilyPermutation, MaxInputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MissesRemoved() < 0.95 {
		t.Errorf("stride control: only %.1f%% removed", 100*res.MissesRemoved())
	}
	rw, err := workloads.ByName("randwalk")
	if err != nil {
		t.Fatal(err)
	}
	res, err = Tune(rw.Data(1), Config{CacheBytes: 4096, Family: hash.FamilyPermutation, MaxInputs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized.Misses > res.Baseline.Misses {
		t.Error("guard must hold on the negative control")
	}
	if res.MissesRemoved() > 0.05 {
		t.Errorf("randwalk control: %.1f%% removed from structureless noise?", 100*res.MissesRemoved())
	}
}

// TestWorkersInvariance pins the parallelism contract at the pipeline
// level: the Workers knob shards profiling and search fan-out but must
// not change the selected function or any measured number.
func TestWorkersInvariance(t *testing.T) {
	w, err := workloads.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Data(1)
	base := Config{CacheBytes: 1024, Family: hash.FamilyPermutation, MaxInputs: 2}
	want, err := Tune(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 2, 4} {
		cfg := base
		cfg.Workers = workers
		got, err := Tune(tr, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Optimized.Misses != want.Optimized.Misses ||
			got.Baseline.Misses != want.Baseline.Misses ||
			got.Func.Matrix().String() != want.Func.Matrix().String() {
			t.Fatalf("workers=%d changed the result: %d/%d misses vs %d/%d",
				workers, got.Baseline.Misses, got.Optimized.Misses,
				want.Baseline.Misses, want.Optimized.Misses)
		}
		if d := profileDiff(got.Profile, want.Profile); d != "" {
			t.Fatalf("workers=%d: profile differs: %s", workers, d)
		}
	}
}

// profileDiff compares the parts of a profile the search consumes.
func profileDiff(got, want *profile.Profile) string {
	if got.Accesses != want.Accesses || got.Compulsory != want.Compulsory ||
		got.Capacity != want.Capacity || got.Candidates != want.Candidates ||
		got.TotalPairs != want.TotalPairs {
		return "bookkeeping differs"
	}
	for v := range want.Table {
		if got.Table[v] != want.Table[v] {
			return "table differs"
		}
	}
	return ""
}
