package core

// The staged, context-aware form of the pipeline. Tune runs the three
// stages of the paper's construction algorithm — profile (Fig. 1),
// search (§3.2), validate (§6) — as one blocking call; Pipeline exposes
// them individually, threads a context through every hot loop beneath
// them, and reports progress through an event sink. TuneCtx,
// TuneProfiledCtx, BuildProfileCtx and SimulateCtx are the one-call
// conveniences built on top of it.

import (
	"context"
	"io"

	"xoridx/internal/cache"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/search"
	"xoridx/internal/trace"
	"xoridx/internal/xerr"
)

// Stage identifies one pipeline stage in an Event.
type Stage string

// The three stages of the construction algorithm.
const (
	StageProfile  Stage = "profile"  // Fig. 1 LRU conflict-vector pass
	StageSearch   Stage = "search"   // §3.2 design-space search
	StageValidate Stage = "validate" // exact simulation + §6 fallback
)

// EventKind distinguishes the notifications a Sink receives.
type EventKind int

const (
	// StageStarted is emitted once when a stage begins.
	StageStarted EventKind = iota
	// StageFinished is emitted once when a stage completes.
	StageFinished
	// SearchProgress is emitted after every hill-climbing move of the
	// search stage. Restart, Iteration, Evaluated and Best are set.
	SearchProgress
)

// Event is one progress notification from the pipeline.
type Event struct {
	Kind  EventKind
	Stage Stage

	// Round tags which tuning round of a resumable pipeline emitted the
	// event: 0 for one-shot runs, the caller-chosen round index for
	// SearchRound (the serving loop passes its rotation count, so a
	// sink can attribute interleaved progress to the right re-tune).
	Round int

	// Search progress (Kind == SearchProgress, and on the search
	// stage's StageFinished event as final totals).
	Restart   int    // restart index (0 = the conventional start)
	Iteration int    // hill-climbing moves taken
	Evaluated int    // candidate evaluations performed
	Best      uint64 // best Eq. 4 estimate so far
}

// Sink consumes pipeline events. Emit is called synchronously from the
// stage goroutine, so implementations must be fast and must not block;
// they also must be safe for concurrent use if the same Sink is shared
// across concurrently running pipelines.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a plain function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Pipeline runs the construction algorithm stage by stage. The zero
// value is not usable; fill in Config. Events is optional.
//
// The one-call helpers cover the common case:
//
//	res, err := core.TuneCtx(ctx, tr, cfg)
//
// while the staged form lets a caller reuse a profile across several
// searches, or interleave its own logic between stages:
//
//	pl := core.Pipeline{Config: cfg, Events: sink}
//	p, err := pl.Profile(ctx, tr)        // Fig. 1
//	sres, err := pl.Search(ctx, p)       // §3.2
//	res, err := pl.Validate(ctx, tr, p, sres) // §6
type Pipeline struct {
	// Config describes the tuning problem; defaults are applied by each
	// stage.
	Config Config
	// Events receives progress notifications; nil disables them.
	Events Sink
}

// emit delivers e when a sink is installed.
func (pl *Pipeline) emit(e Event) {
	if pl.Events != nil {
		pl.Events.Emit(e)
	}
}

// Profile runs the Fig. 1 profiling stage: it extracts the block
// sequence and builds the conflict-vector histogram, sharded across
// Config.Workers when > 1 (bit-identical to the sequential pass).
//
// With Config.CheckpointPath set the stage runs through the
// checkpointed builder — sharded when Workers > 1, sequential
// otherwise; the snapshot format is shared, so either can resume the
// other's snapshot — snapshotting every CheckpointEvery accesses;
// Resume continues from an existing snapshot. On cancellation the
// checkpointed paths return the partial profile so far — marked
// Degraded and exact for the prefix it covers — alongside the error.
func (pl *Pipeline) Profile(ctx context.Context, tr *trace.Trace) (*profile.Profile, error) {
	cfg := pl.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pl.emit(Event{Kind: StageStarted, Stage: StageProfile})
	blocks := tr.Blocks(cfg.BlockBytes, cfg.AddrBits)
	var (
		p   *profile.Profile
		err error
	)
	switch w := cfg.profileWorkers(); {
	case cfg.CheckpointPath != "":
		rest := blocks
		src := func(dst []uint64) (int, error) {
			if len(rest) == 0 {
				return 0, io.EOF
			}
			k := copy(dst, rest)
			rest = rest[k:]
			return k, nil
		}
		copt := profile.CheckpointOptions{
			Path:   cfg.profileCheckpointPath(),
			Every:  uint64(cfg.CheckpointEvery),
			Resume: cfg.Resume,
		}
		if w > 1 {
			// Checkpointing and sharding compose: the snapshot format is
			// shared, so a sequential snapshot resumes sharded and back.
			p, err = profile.BuildStreamCheckpointedCtx(ctx, src, cfg.AddrBits, cfg.CacheBytes/cfg.BlockBytes,
				profile.ParallelOptions{Workers: w}, copt)
		} else {
			p, err = profile.BuildCheckpointedCtx(ctx, src, cfg.AddrBits, cfg.CacheBytes/cfg.BlockBytes, copt)
		}
	default:
		// BuildParallelCtx's Workers <= 1 path is the plain sequential
		// pass, so one call covers sequential, sharded, sampled and
		// alternative-backend builds alike.
		p, err = profile.BuildParallelCtx(ctx, blocks, cfg.AddrBits, cfg.CacheBytes/cfg.BlockBytes,
			cfg.profileOptions())
	}
	if err != nil {
		return p, err
	}
	pl.emit(Event{Kind: StageFinished, Stage: StageProfile})
	return p, nil
}

// ProfileSource runs the Fig. 1 profiling stage over a block-source
// stream instead of an in-memory trace — the entry point for
// mmap-backed readers (trace.Open + StreamReader.BlockSource) and any
// trace too large to materialise. The source must yield block
// addresses already truncated to Config.AddrBits. Sharding, sampling,
// backend selection and checkpointing follow the same Config knobs as
// Profile; exact unsampled streams produce bit-identical profiles to
// the in-memory pass.
func (pl *Pipeline) ProfileSource(ctx context.Context, src profile.BlockSource) (*profile.Profile, error) {
	cfg := pl.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pl.emit(Event{Kind: StageStarted, Stage: StageProfile})
	var (
		p   *profile.Profile
		err error
	)
	if cfg.CheckpointPath != "" {
		copt := profile.CheckpointOptions{
			Path:   cfg.profileCheckpointPath(),
			Every:  uint64(cfg.CheckpointEvery),
			Resume: cfg.Resume,
		}
		p, err = profile.BuildStreamCheckpointedCtx(ctx, src, cfg.AddrBits, cfg.CacheBytes/cfg.BlockBytes,
			cfg.profileOptions(), copt)
	} else {
		p, err = profile.BuildStreamCtx(ctx, src, cfg.AddrBits, cfg.CacheBytes/cfg.BlockBytes,
			cfg.profileOptions())
	}
	if err != nil {
		return p, err
	}
	pl.emit(Event{Kind: StageFinished, Stage: StageProfile})
	return p, nil
}

// Search runs the §3.2 design-space search stage against a profile
// built by Profile (or profile.Build directly). Hill-climbing progress
// is reported through Events as SearchProgress events. It is round 0
// of SearchRound with no warm start — the one-shot form.
func (pl *Pipeline) Search(ctx context.Context, p *profile.Profile) (search.Result, error) {
	return pl.SearchRound(ctx, p, gf2.Matrix{}, 0)
}

// SearchRound is the resumable-round form of Search: one tuning round
// of a long-running loop that re-searches a drifting profile many
// times over the pipeline's lifetime. Every event the round emits
// carries the given round index, so a shared Sink can attribute
// interleaved progress streams.
//
// A non-zero warm matrix seeds the climb at that function instead of
// the conventional start (search.ConstructWarmCtx) when the configured
// family supports it — general XOR with unlimited fan-in, no Resume.
// Other configurations fall back to the cold search: the warm seed is
// an optimisation hint, not a contract, and a serving loop tuning a
// permutation-family function must still make progress.
func (pl *Pipeline) SearchRound(ctx context.Context, p *profile.Profile, warm gf2.Matrix, round int) (search.Result, error) {
	cfg := pl.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return search.Result{}, err
	}
	if err := checkProfile(p, cfg); err != nil {
		return search.Result{}, err
	}
	pl.emit(Event{Kind: StageStarted, Stage: StageSearch, Round: round})
	opt := cfg.searchOptions()
	if pl.Events != nil {
		opt.Progress = func(sp search.Progress) {
			pl.emit(Event{
				Kind:      SearchProgress,
				Stage:     StageSearch,
				Round:     round,
				Restart:   sp.Restart,
				Iteration: sp.Iteration,
				Evaluated: sp.Evaluated,
				Best:      sp.Best,
			})
		}
	}
	var (
		sres search.Result
		err  error
	)
	if warm.Cols != nil && cfg.Family == hash.FamilyGeneralXOR && cfg.MaxInputs == 0 && !opt.Resume {
		sres, err = search.ConstructWarmCtx(ctx, p, cfg.SetBits(), warm, opt)
	} else {
		sres, err = search.ConstructCtx(ctx, p, cfg.SetBits(), opt)
	}
	if err != nil {
		// sres may carry a Degraded best-so-far matrix; pass it up so
		// an interrupted pipeline still yields a usable function.
		return sres, err
	}
	pl.emit(Event{
		Kind:      StageFinished,
		Stage:     StageSearch,
		Round:     round,
		Restart:   cfg.Restarts,
		Iteration: sres.Iterations,
		Evaluated: sres.Evaluated,
		Best:      sres.Estimated,
	})
	return sres, nil
}

// Validate runs the exact-simulation stage: it simulates the searched
// function and the conventional baseline over the trace and applies the
// §6 fallback guard, producing the final Result.
func (pl *Pipeline) Validate(ctx context.Context, tr *trace.Trace, p *profile.Profile, sres search.Result) (*Result, error) {
	cfg := pl.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.SetBits()
	optFunc, err := hash.NewXOR(sres.Matrix)
	if err != nil {
		return nil, errInvalidMatrix(err)
	}
	pl.emit(Event{Kind: StageStarted, Stage: StageValidate})
	res := &Result{Search: sres, Profile: p, Func: optFunc}
	if res.Baseline, err = simulateCtx(ctx, tr, cfg, hash.Modulo(cfg.AddrBits, m)); err != nil {
		// The searched function is intact — only its exact validation
		// (and the §6 fallback guard) is missing. Hand it back Degraded
		// with zeroed simulation stats rather than dropping it.
		res.Baseline = cache.Stats{}
		res.Degraded = true
		return res, err
	}
	if res.Optimized, err = simulateCtx(ctx, tr, cfg, optFunc); err != nil {
		res.Baseline, res.Optimized = cache.Stats{}, cache.Stats{}
		res.Degraded = true
		return res, err
	}
	applyFallback(res, cfg, m)
	pl.emit(Event{Kind: StageFinished, Stage: StageValidate})
	return res, nil
}

// Run executes all three stages in order.
func (pl *Pipeline) Run(ctx context.Context, tr *trace.Trace) (*Result, error) {
	p, err := pl.Profile(ctx, tr)
	if err != nil {
		return nil, err
	}
	return pl.RunProfiled(ctx, tr, p)
}

// RunProfiled executes the search and validation stages with a
// pre-built profile.
//
// On cancellation the returned *Result is non-nil whenever the search
// produced a usable best-so-far matrix: it is tagged Degraded, its
// Search field tells how many moves and evaluations completed, and it
// is returned alongside the wrapped ErrCanceled.
func (pl *Pipeline) RunProfiled(ctx context.Context, tr *trace.Trace, p *profile.Profile) (*Result, error) {
	sres, err := pl.Search(ctx, p)
	if err != nil {
		if sres.Degraded && sres.Matrix.Cols != nil {
			res := &Result{Search: sres, Profile: p, Degraded: true}
			if f, ferr := hash.NewXOR(sres.Matrix); ferr == nil {
				res.Func = f
			}
			return res, err
		}
		return nil, err
	}
	return pl.Validate(ctx, tr, p, sres)
}

// TuneCtx is Tune with cooperative cancellation and optional progress
// events: every stage checks ctx periodically (see DESIGN.md §9 for
// the granularity per layer) and returns a wrapped ErrCanceled when it
// is done. events may be nil.
func TuneCtx(ctx context.Context, tr *trace.Trace, cfg Config, events Sink) (*Result, error) {
	pl := Pipeline{Config: cfg, Events: events}
	return pl.Run(ctx, tr)
}

// TuneProfiledCtx is TuneProfiled with cooperative cancellation and
// optional progress events.
func TuneProfiledCtx(ctx context.Context, tr *trace.Trace, p *profile.Profile, cfg Config, events Sink) (*Result, error) {
	pl := Pipeline{Config: cfg, Events: events}
	return pl.RunProfiled(ctx, tr, p)
}

// BuildProfileCtx is BuildProfile with cooperative cancellation.
func BuildProfileCtx(ctx context.Context, tr *trace.Trace, cfg Config) (*profile.Profile, error) {
	pl := Pipeline{Config: cfg}
	return pl.Profile(ctx, tr)
}

// SimulateCtx is Simulate with cooperative cancellation: the simulation
// loop polls ctx and returns the statistics so far alongside a wrapped
// ErrCanceled when it is done.
func SimulateCtx(ctx context.Context, tr *trace.Trace, cfg Config, f hash.Func) (cache.Stats, error) {
	return simulateCtx(ctx, tr, cfg.withDefaults(), f)
}

func simulateCtx(ctx context.Context, tr *trace.Trace, cfg Config, f hash.Func) (cache.Stats, error) {
	c, err := cache.New(cacheConfig(cfg, f))
	if err != nil {
		return cache.Stats{}, err
	}
	c.DisableClassification()
	return c.RunCtx(ctx, tr)
}

// Check returns a wrapped ErrCanceled when ctx is done and nil
// otherwise — the cancellation probe the pipeline layers use, exported
// for callers that interleave their own work between stages.
func Check(ctx context.Context) error {
	return xerr.Check(ctx)
}
