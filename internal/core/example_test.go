package core_test

import (
	"fmt"

	"xoridx/internal/core"
	"xoridx/internal/hash"
	"xoridx/internal/trace"
)

// ExampleTune demonstrates the whole pipeline on a thrashing stride.
func ExampleTune() {
	tr := &trace.Trace{Name: "stride"}
	for rep := 0; rep < 20; rep++ {
		for i := uint64(0); i < 16; i++ {
			tr.Append(i*1024, trace.Read) // stride == cache size
		}
	}
	res, err := core.Tune(tr, core.Config{
		CacheBytes: 1024,
		Family:     hash.FamilyPermutation,
		MaxInputs:  2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline %d -> optimized %d misses\n", res.Baseline.Misses, res.Optimized.Misses)
	fmt.Printf("permutation-based: %v, fan-in: %d\n",
		res.Func.Matrix().IsPermutationBased(), res.Func.Matrix().MaxInputs())
	// Output:
	// baseline 320 -> optimized 16 misses
	// permutation-based: true, fan-in: 2
}

// ExampleBuildProfile shows profile reuse across several searches.
func ExampleBuildProfile() {
	tr := &trace.Trace{Name: "pair"}
	for i := 0; i < 100; i++ {
		tr.Append(0, trace.Read)
		tr.Append(1024, trace.Read)
	}
	cfg := core.Config{CacheBytes: 1024}
	p, err := core.BuildProfile(tr, cfg)
	if err != nil {
		panic(err)
	}
	for _, maxIn := range []int{2, 0} {
		c := cfg
		c.Family = hash.FamilyPermutation
		c.MaxInputs = maxIn
		res, err := core.TuneProfiled(tr, p, c)
		if err != nil {
			panic(err)
		}
		fmt.Printf("maxInputs=%d: %.0f%% removed\n", maxIn, 100*res.MissesRemoved())
	}
	// Output:
	// maxInputs=2: 99% removed
	// maxInputs=0: 99% removed
}
