package hash

import (
	"testing"
)

func TestFoldedXORStructure(t *testing.T) {
	f, err := FoldedXOR(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// index = low8 ^ high8.
	for _, a := range []uint64{0, 0x1234, 0xFFFF, 0xA5C3} {
		if got, want := f.Index(a), (a^a>>8)&0xFF; got != want {
			t.Fatalf("Index(%#x) = %#x, want %#x", a, got, want)
		}
	}
	if f.Matrix().MaxInputs() != 2 {
		t.Fatal("16->8 fold should be 2-input")
	}
	checkBijective(t, f)
}

func TestFoldedXORUnevenFold(t *testing.T) {
	// n not a multiple of m: the low bits get an extra input.
	f, err := FoldedXOR(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, f)
	if _, err := FoldedXOR(8, 0); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := FoldedXOR(8, 9); err == nil {
		t.Fatal("m>n must fail")
	}
}

func TestPolynomialHashMapsStridesConflictFree(t *testing.T) {
	// Rau's property: for an irreducible polynomial, every aligned
	// power-of-two stride run of 2^m blocks maps conflict-free — not
	// just stride 1 (which permutation-based functions guarantee), but
	// every stride 2^k with k + m <= n.
	n, m := 16, 6
	f, err := PolynomialHash(n, m)
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, f)
	for k := 0; k+m <= n; k++ {
		stride := uint64(1) << uint(k)
		var seen uint64
		for i := uint64(0); i < 1<<uint(m); i++ {
			s := f.Index(i * stride)
			if seen&(1<<s) != 0 {
				t.Fatalf("stride 2^%d: duplicate set %d at element %d", k, s, i)
			}
			seen |= 1 << s
		}
	}
}

func TestPolynomialHashIrreducibleTable(t *testing.T) {
	// Every tabulated polynomial must actually be irreducible: x^i mod
	// p(x) over i = 0..2^m-2 must cycle through all nonzero residues
	// for primitive p; at minimum, x must be invertible and the matrix
	// full rank for every n >= m.
	for m := 1; m <= 16; m++ {
		f, err := PolynomialHash(16, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if f.Matrix().Rank() != m {
			t.Fatalf("m=%d: polynomial matrix rank-deficient", m)
		}
	}
	if _, err := PolynomialHash(16, 17); err == nil {
		t.Fatal("missing polynomial must fail")
	}
	if _, err := PolynomialHash(4, 8); err == nil {
		t.Fatal("m>n must fail")
	}
}

func TestPolynomialHashLowBitsIdentity(t *testing.T) {
	// For addresses below 2^m, a(x) mod p(x) = a(x): the hash is the
	// identity there, i.e. polynomial hashing is permutation-based.
	f, err := PolynomialHash(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 256; a++ {
		if f.Index(a) != a {
			t.Fatalf("Index(%#x) = %#x, want identity below 2^m", a, f.Index(a))
		}
	}
	if !f.Matrix().IsPermutationBased() {
		t.Fatal("polynomial hash should be permutation-based")
	}
}

func TestFixedHashesDifferFromEachOther(t *testing.T) {
	fold, _ := FoldedXOR(16, 8)
	poly, _ := PolynomialHash(16, 8)
	mod := Modulo(16, 8)
	if fold.Matrix().NullSpace().Equal(poly.Matrix().NullSpace()) {
		t.Fatal("fold and polynomial should be distinct functions")
	}
	if fold.Matrix().NullSpace().Equal(mod.Matrix().NullSpace()) {
		t.Fatal("fold should differ from modulo")
	}
}

func TestFixedHashesAgainstStride(t *testing.T) {
	// Sanity: both fixed hashes spread the cache-size stride that
	// thrashes modulo indexing.
	const m = 8
	fold, _ := FoldedXOR(16, m)
	poly, _ := PolynomialHash(16, m)
	seenFold := map[uint64]bool{}
	seenPoly := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		block := i << m // stride = number of sets
		if Modulo(16, m).Index(block) != 0 {
			t.Fatal("modulo should collapse the stride")
		}
		seenFold[fold.Index(block)] = true
		seenPoly[poly.Index(block)] = true
	}
	if len(seenFold) < 32 || len(seenPoly) < 32 {
		t.Fatalf("fixed hashes should spread the stride: fold %d sets, poly %d sets",
			len(seenFold), len(seenPoly))
	}
}
