package hash

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

func TestModulo(t *testing.T) {
	f := Modulo(16, 8)
	for _, block := range []uint64{0, 1, 0xFF, 0x1234, 0xFFFF} {
		if got := f.Index(block); got != block&0xFF {
			t.Fatalf("Index(%#x) = %#x", block, got)
		}
		if got := f.Tag(block); got != block>>8&0xFF {
			t.Fatalf("Tag(%#x) = %#x", block, got)
		}
	}
	if f.AddrBits() != 16 || f.SetBits() != 8 {
		t.Fatal("dims wrong")
	}
}

func TestNewXORRejectsRankDeficient(t *testing.T) {
	h := gf2.MatrixFromCols(8, []gf2.Vec{0b11, 0b11})
	if _, err := NewXOR(h); !errors.Is(err, xerr.ErrInvalidGeometry) {
		t.Fatalf("rank-deficient matrix: err = %v, want wrapped ErrInvalidGeometry", err)
	}
}

func TestMustXORPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustXOR(gf2.NewMatrix(8, 2))
}

// checkBijective verifies (index, tag) uniquely identifies every block.
func checkBijective(t *testing.T, f Func) {
	t.Helper()
	n := f.AddrBits()
	seen := make(map[[2]uint64]uint64)
	for block := uint64(0); block < 1<<uint(n); block++ {
		key := [2]uint64{f.Index(block), f.Tag(block)}
		if prev, ok := seen[key]; ok {
			t.Fatalf("blocks %#x and %#x alias: index=%#x tag=%#x", prev, block, key[0], key[1])
		}
		seen[key] = block
	}
}

func TestBijectivityModulo(t *testing.T) {
	checkBijective(t, Modulo(12, 5))
}

func TestBijectivityRandomXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(5)
		m := 2 + rng.Intn(n-4)
		var h gf2.Matrix
		for {
			h = gf2.NewMatrix(n, m)
			for c := range h.Cols {
				h.Cols[c] = gf2.Vec(rng.Uint64()) & gf2.Mask(n)
			}
			if h.Rank() == m {
				break
			}
		}
		f, err := NewXOR(h)
		if err != nil {
			t.Fatal(err)
		}
		checkBijective(t, f)
	}
}

func TestPermutationBasedKeepsConventionalTag(t *testing.T) {
	// Paper §4: permutation-based functions can use the high-order
	// address bits as tag, like modulo indexing.
	f, err := PermutationBased(16, 8, [][]int{{12}, {}, {9, 15}, {}, {}, {8}, {}, {14}})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matrix().IsPermutationBased() {
		t.Fatal("matrix should be permutation-based")
	}
	for _, block := range []uint64{0, 0xFFFF, 0x1234, 0xBEEF & 0xFFFF} {
		if got, want := f.Tag(block), block>>8; got != want {
			t.Fatalf("Tag(%#x) = %#x, want conventional %#x", block, got, want)
		}
	}
	checkBijective(t, f)
}

func TestPermutationBasedValidation(t *testing.T) {
	if _, err := PermutationBased(16, 8, [][]int{{3}}); err == nil {
		t.Error("wrong extra count should fail")
	}
	bad := make([][]int, 8)
	bad[0] = []int{3} // below m: not a permutation-based extra input
	if _, err := PermutationBased(16, 8, bad); err == nil {
		t.Error("low-order extra input should fail")
	}
	bad[0] = []int{16}
	if _, err := PermutationBased(16, 8, bad); err == nil {
		t.Error("out-of-range extra input should fail")
	}
}

func TestBitSelecting(t *testing.T) {
	f, err := BitSelecting(16, []int{0, 1, 2, 3, 4, 5, 6, 9})
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, f)
	if !f.Matrix().IsBitSelecting() {
		t.Fatal("should be bit-selecting")
	}
	// Tag must select the unselected bits: 7, 8, 10..15.
	tagM := f.TagMatrix()
	var selected gf2.Vec
	for _, col := range tagM.Cols {
		if col.Weight() != 1 {
			t.Fatal("tag must be bit-selecting")
		}
		selected |= col
	}
	wantTagBits := gf2.Mask(16) &^ (gf2.Mask(7) | gf2.Unit(9))
	if selected != wantTagBits {
		t.Fatalf("tag selects %b, want %b", selected, wantTagBits)
	}
}

func TestTagWithHighBits(t *testing.T) {
	f := Modulo(16, 8)
	// Block with bits above n=16: high bits must be preserved in the tag.
	block := uint64(0x5_4321)
	got := TagWithHighBits(f, block)
	want := block>>16<<16 | f.Tag(block)
	if got != want {
		t.Fatalf("TagWithHighBits = %#x, want %#x", got, want)
	}
	// Two blocks differing only above bit 16 must get different tags.
	if TagWithHighBits(f, 0x1_0000) == TagWithHighBits(f, 0x2_0000) {
		t.Fatal("high bits lost")
	}
}

func TestXORString(t *testing.T) {
	f := MustXOR(gf2.Identity(16, 4))
	s := f.String()
	if !strings.Contains(s, "bit-selecting") || !strings.Contains(s, "s0=a0") {
		t.Errorf("String() = %q", s)
	}
	p, _ := PermutationBased(16, 4, [][]int{{5}, {}, {}, {}})
	if !strings.Contains(p.String(), "permutation-based (2-in)") {
		t.Errorf("String() = %q", p.String())
	}
	if !strings.Contains(p.String(), "s0=a0^a5") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestFamilyBelongs(t *testing.T) {
	id := gf2.Identity(16, 8)
	perm2 := id.Clone()
	perm2.Cols[0] |= gf2.Unit(12)
	general := id.Clone()
	general.Cols[0] = gf2.Unit(3) | gf2.Unit(7) // not permutation-based

	if !FamilyBitSelect.Belongs(id, 0) || FamilyBitSelect.Belongs(perm2, 0) {
		t.Error("bit-select membership wrong")
	}
	if !FamilyPermutation.Belongs(perm2, 2) || !FamilyPermutation.Belongs(id, 1) {
		t.Error("permutation membership wrong")
	}
	if FamilyPermutation.Belongs(general, 0) {
		t.Error("general matrix should not be permutation-based")
	}
	perm4 := id.Clone()
	perm4.Cols[1] |= gf2.Unit(9) | gf2.Unit(10) | gf2.Unit(11)
	if FamilyPermutation.Belongs(perm4, 2) {
		t.Error("4-input function should fail 2-in bound")
	}
	if !FamilyPermutation.Belongs(perm4, 4) {
		t.Error("4-input function should pass 4-in bound")
	}
	if !FamilyGeneralXOR.Belongs(general, 0) {
		t.Error("general XOR membership wrong")
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyBitSelect.String() != "bit-select" ||
		FamilyPermutation.String() != "permutation-based" ||
		FamilyGeneralXOR.String() != "general-XOR" {
		t.Fatal("family names wrong")
	}
	if !strings.Contains(Family(42).String(), "42") {
		t.Fatal("unknown family string")
	}
}

func TestIndexIgnoresBitsAboveN(t *testing.T) {
	f := Modulo(16, 8)
	if f.Index(0x12345) != f.Index(0x2345) {
		t.Fatal("bits above n must not affect index")
	}
}
