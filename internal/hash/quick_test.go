package hash

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xoridx/internal/gf2"
)

// quickFunc generates a random valid hash function from a random
// family: modulo, bit-select, permutation-based, or general XOR.
type quickFunc struct{ F *XOR }

// Generate implements quick.Generator.
func (quickFunc) Generate(r *rand.Rand, size int) reflect.Value {
	n, m := 12, 5
	var f *XOR
	switch r.Intn(4) {
	case 0:
		f = Modulo(n, m)
	case 1:
		f, _ = BitSelecting(n, r.Perm(n)[:m])
	case 2:
		extra := make([][]int, m)
		for c := range extra {
			for b := m; b < n; b++ {
				if r.Intn(3) == 0 {
					extra[c] = append(extra[c], b)
				}
			}
		}
		f, _ = PermutationBased(n, m, extra)
	default:
		for {
			h := gf2.NewMatrix(n, m)
			for c := range h.Cols {
				h.Cols[c] = gf2.Vec(r.Uint64()) & gf2.Mask(n)
			}
			if h.Rank() == m {
				f = MustXOR(h)
				break
			}
		}
	}
	return reflect.ValueOf(quickFunc{F: f})
}

var quickCfg = &quick.Config{MaxCount: 80}

func TestQuickIndexTagBijective(t *testing.T) {
	// For every generated function, (index, tag) is injective on a
	// random sample of distinct addresses.
	f := func(qf quickFunc, a, b uint16) bool {
		fn := qf.F
		x := uint64(a) & 0xFFF
		y := uint64(b) & 0xFFF
		if x == y {
			return true
		}
		return fn.Index(x) != fn.Index(y) || fn.Tag(x) != fn.Tag(y)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndexIsLinear(t *testing.T) {
	f := func(qf quickFunc, a, b uint16) bool {
		fn := qf.F
		x := uint64(a) & 0xFFF
		y := uint64(b) & 0xFFF
		return fn.Index(x^y) == fn.Index(x)^fn.Index(y)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermutationRunsAreConflictFree(t *testing.T) {
	// Whenever the generated function happens to be permutation-based,
	// an aligned run of 2^m blocks maps to 2^m distinct sets (paper §4).
	f := func(qf quickFunc, baseRaw uint16) bool {
		fn := qf.F
		if !fn.Matrix().IsPermutationBased() {
			return true
		}
		m := fn.SetBits()
		base := (uint64(baseRaw) & 0xFFF) &^ (1<<uint(m) - 1)
		seen := make(map[uint64]bool, 1<<uint(m))
		for off := uint64(0); off < 1<<uint(m); off++ {
			s := fn.Index(base | off)
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFamilyPredicatesConsistent(t *testing.T) {
	// Bit-selecting implies expressible as permutation-based only for
	// the modulo selection; more robustly: bit-selecting implies
	// MaxInputs == 1, and permutation-based implies every aligned run
	// property holds (checked above). Here: predicate/fan-in coherence.
	f := func(qf quickFunc) bool {
		h := qf.F.Matrix()
		if h.IsBitSelecting() && h.MaxInputs() != 1 {
			return false
		}
		if h.MaxInputs() == 0 {
			return false // full-rank functions always have inputs
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTagWithHighBitsInjective(t *testing.T) {
	// Addresses differing only above AddrBits get distinct full tags.
	f := func(qf quickFunc, low uint16, hiA, hiB uint8) bool {
		fn := qf.F
		x := uint64(hiA)<<12 | uint64(low)&0xFFF
		y := uint64(hiB)<<12 | uint64(low)&0xFFF
		if hiA == hiB {
			return true
		}
		return TagWithHighBits(fn, x) != TagWithHighBits(fn, y)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
