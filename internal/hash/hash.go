// Package hash defines the cache index-function families studied in the
// paper: conventional modulo indexing, bit-selecting functions, general
// XOR functions and permutation-based XOR functions.
//
// A Func maps an N-bit block address to an M-bit set index and a tag.
// Correctness requires the pair (index, tag) to be bijective on block
// addresses: two distinct blocks must differ in index or tag, otherwise
// the cache would alias them. Permutation-based functions (paper §4)
// can keep the conventional tag — the high address bits — while general
// XOR functions need a compatible bit-selecting tag, which NewXOR
// constructs by completing the index matrix to full rank.
package hash

import (
	"fmt"
	"sort"
	"strings"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// Func is a cache index/tag function pair over n-bit block addresses.
type Func interface {
	// Index returns the set index (m bits) for a block address.
	Index(block uint64) uint64
	// Tag returns the tag for a block address. Together with Index it
	// uniquely identifies the block.
	Tag(block uint64) uint64
	// AddrBits returns n, the number of hashed block-address bits.
	// Address bits above n never enter Index; callers must fold them
	// into the tag (see TagWithHighBits).
	AddrBits() int
	// SetBits returns m, the number of set-index bits.
	SetBits() int
	// Matrix returns the index function's GF(2) matrix H.
	Matrix() gf2.Matrix
	// String describes the function.
	String() string
}

// TagWithHighBits combines a Func's tag with the block-address bits
// above AddrBits, which always belong in the tag (paper §5: the N−n
// high-order address bits are only used to compute the tag).
func TagWithHighBits(f Func, block uint64) uint64 {
	n := uint(f.AddrBits())
	return block>>n<<n | f.Tag(block)
}

// XOR is a general XOR index function with an explicit bit-selecting
// tag. It implements Func.
type XOR struct {
	h   gf2.Matrix
	tag gf2.Matrix // n×(n−m) bit-selecting tag function
}

// NewXOR builds an XOR hash function from a full-column-rank matrix H.
// The tag function selects n−m address bits chosen so that [H|T] has
// full rank n, making (index, tag) bijective. For permutation-based H
// the constructed tag is exactly the conventional high-order selection.
func NewXOR(h gf2.Matrix) (*XOR, error) {
	if h.Rank() != h.M {
		return nil, fmt.Errorf("hash: index matrix rank %d < %d; some sets would be unreachable: %w",
			h.Rank(), h.M, xerr.ErrInvalidGeometry)
	}
	tag, err := completeTag(h)
	if err != nil {
		return nil, err
	}
	return &XOR{h: h, tag: tag}, nil
}

// MustXOR is NewXOR for matrices known valid by construction (e.g. the
// identity behind Modulo); it panics on error, following the
// regexp.MustCompile convention. Code handling caller-supplied or
// searched matrices should use NewXOR and propagate the wrapped
// xerr.ErrInvalidGeometry instead.
func MustXOR(h gf2.Matrix) *XOR {
	f, err := NewXOR(h)
	if err != nil {
		panic(err)
	}
	return f
}

// completeTag greedily selects unit vectors (address bits) that extend
// the column space of H to full rank. Preferring high-order bits first
// makes the permutation-based case degenerate to the conventional tag.
func completeTag(h gf2.Matrix) (gf2.Matrix, error) {
	n, m := h.N, h.M
	span := gf2.Span(n, h.Cols...)
	positions := make([]int, 0, n-m)
	for i := n - 1; i >= 0 && len(positions) < n-m; i-- {
		u := gf2.Unit(i)
		if !span.Contains(u) {
			span = span.Extend(u)
			positions = append(positions, i)
		}
	}
	if len(positions) != n-m {
		// Cannot happen when rank(H) == m: unit vectors span GF(2)^n.
		return gf2.Matrix{}, fmt.Errorf("hash: could not complete tag (got %d of %d bits): %w",
			len(positions), n-m, xerr.ErrInvalidGeometry)
	}
	// Emit tag bits in ascending address-bit order so the
	// permutation-based case yields exactly block>>m.
	sort.Ints(positions)
	return gf2.BitSelect(n, positions), nil
}

// Index implements Func.
func (f *XOR) Index(block uint64) uint64 {
	return uint64(f.h.Apply(gf2.Vec(block) & gf2.Mask(f.h.N)))
}

// Tag implements Func.
func (f *XOR) Tag(block uint64) uint64 {
	return uint64(f.tag.Apply(gf2.Vec(block) & gf2.Mask(f.h.N)))
}

// AddrBits implements Func.
func (f *XOR) AddrBits() int { return f.h.N }

// SetBits implements Func.
func (f *XOR) SetBits() int { return f.h.M }

// Matrix implements Func.
func (f *XOR) Matrix() gf2.Matrix { return f.h.Clone() }

// TagMatrix returns the bit-selecting tag function's matrix.
func (f *XOR) TagMatrix() gf2.Matrix { return f.tag.Clone() }

// String implements Func.
func (f *XOR) String() string {
	kind := "general XOR"
	switch {
	case f.h.IsBitSelecting():
		kind = "bit-selecting"
	case f.h.IsPermutationBased():
		kind = fmt.Sprintf("permutation-based (%d-in)", f.h.MaxInputs())
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %d->%d:", kind, f.h.N, f.h.M)
	for c, col := range f.h.Cols {
		fmt.Fprintf(&sb, " s%d=", c)
		first := true
		for r := 0; r < f.h.N; r++ {
			if col.Bit(r) == 1 {
				if !first {
					sb.WriteByte('^')
				}
				fmt.Fprintf(&sb, "a%d", r)
				first = false
			}
		}
		if first {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Modulo returns the conventional index function: the low m bits index
// the set, the remaining high bits form the tag.
func Modulo(n, m int) *XOR {
	return MustXOR(gf2.Identity(n, m))
}

// BitSelecting returns the bit-selecting function using the given
// address-bit positions as the set index.
func BitSelecting(n int, positions []int) (*XOR, error) {
	return NewXOR(gf2.BitSelect(n, positions))
}

// PermutationBased builds a permutation-based function: set-index bit c
// is address bit c XORed with the (possibly empty) set of high-order
// address bits in extra[c] (each given as an absolute bit position >= m).
func PermutationBased(n, m int, extra [][]int) (*XOR, error) {
	if len(extra) != m {
		return nil, fmt.Errorf("hash: need %d extra-input sets, got %d", m, len(extra))
	}
	h := gf2.Identity(n, m)
	for c, bits := range extra {
		for _, b := range bits {
			if b < m || b >= n {
				return nil, fmt.Errorf("hash: extra input bit %d for column %d outside [m,n)=[%d,%d)", b, c, m, n)
			}
			h.Cols[c] |= gf2.Unit(b)
		}
	}
	return NewXOR(h)
}

// Family labels the function families of the paper's experiments.
type Family int

const (
	// FamilyBitSelect: each index bit selects one address bit ("1-in").
	FamilyBitSelect Family = iota
	// FamilyPermutation: permutation-based XOR functions (paper §4).
	FamilyPermutation
	// FamilyGeneralXOR: unrestricted XOR matrices.
	FamilyGeneralXOR
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyBitSelect:
		return "bit-select"
	case FamilyPermutation:
		return "permutation-based"
	case FamilyGeneralXOR:
		return "general-XOR"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Belongs reports whether matrix h is a member of the family (with the
// given per-XOR input bound for permutation functions; maxInputs <= 0
// means unlimited).
func (f Family) Belongs(h gf2.Matrix, maxInputs int) bool {
	switch f {
	case FamilyBitSelect:
		return h.IsBitSelecting()
	case FamilyPermutation:
		return h.IsPermutationBased() && (maxInputs <= 0 || h.MaxInputs() <= maxInputs)
	case FamilyGeneralXOR:
		return maxInputs <= 0 || h.MaxInputs() <= maxInputs
	default:
		return false
	}
}
