package hash

import (
	"fmt"

	"xoridx/internal/gf2"
)

// Fixed (application-independent) hash functions from the related work
// the paper builds on. Both are linear over GF(2), so they slot into
// the same Matrix machinery and can be compared head-to-head with the
// application-specific functions:
//
//   - FoldedXOR is the classic XOR-placement of González, Valero,
//     Topham & Parcerisa (paper ref. [5]): the address is cut into
//     m-bit slices that are XORed together.
//   - PolynomialHash is Rau's pseudo-random interleaving (paper ref.
//     [9]): the address, read as a GF(2) polynomial, is reduced modulo
//     an irreducible polynomial of degree m. Irreducibility guarantees
//     that every stride 2^k run maps conflict-free.

// FoldedXOR returns the n-to-m folding hash: index bit c is the XOR of
// address bits c, c+m, c+2m, ...
func FoldedXOR(n, m int) (*XOR, error) {
	if m <= 0 || m > n {
		return nil, fmt.Errorf("hash: folded XOR needs 0 < m <= n, got n=%d m=%d", n, m)
	}
	h := gf2.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		h.Cols[i%m] |= gf2.Unit(i)
	}
	return NewXOR(h)
}

// irreduciblePolys[m] is an irreducible polynomial of degree m over
// GF(2), given as the coefficient mask of x^{m-1}..x^0 (the leading
// x^m term is implicit). Standard table (CRC-style primitive
// polynomials).
var irreduciblePolys = map[int]uint64{
	1:  0x1,  // x + 1
	2:  0x3,  // x^2 + x + 1
	3:  0x3,  // x^3 + x + 1
	4:  0x3,  // x^4 + x + 1
	5:  0x5,  // x^5 + x^2 + 1
	6:  0x3,  // x^6 + x + 1
	7:  0x3,  // x^7 + x + 1
	8:  0x1D, // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x11, // x^9 + x^4 + 1
	10: 0x9,  // x^10 + x^3 + 1
	11: 0x5,  // x^11 + x^2 + 1
	12: 0x53, // x^12 + x^6 + x^4 + x + 1
	13: 0x1B, // x^13 + x^4 + x^3 + x + 1
	14: 0x2B, // x^14 + x^5 + x^3 + x + 1
	15: 0x3,  // x^15 + x + 1
	16: 0x2D, // x^16 + x^5 + x^3 + x^2 + 1
}

// PolynomialHash returns Rau's polynomial hash: the matrix whose row i
// is x^i mod p(x), with p the built-in irreducible polynomial of
// degree m. Addresses that differ by any single stride 2^k therefore
// never collide in runs shorter than the polynomial's period.
func PolynomialHash(n, m int) (*XOR, error) {
	poly, ok := irreduciblePolys[m]
	if !ok {
		return nil, fmt.Errorf("hash: no irreducible polynomial of degree %d in the table", m)
	}
	if m > n {
		return nil, fmt.Errorf("hash: polynomial degree %d exceeds address bits %d", m, n)
	}
	h := gf2.NewMatrix(n, m)
	// rem = x^i mod p(x), iteratively: multiply by x, reduce.
	rem := uint64(1) // x^0
	for i := 0; i < n; i++ {
		for c := 0; c < m; c++ {
			if rem>>uint(c)&1 == 1 {
				h.Cols[c] |= gf2.Unit(i)
			}
		}
		rem <<= 1
		if rem>>uint(m)&1 == 1 {
			rem = rem&(1<<uint(m)-1) ^ poly
		}
	}
	return NewXOR(h)
}
