package chaos

import (
	"testing"

	"xoridx/internal/core"
	"xoridx/internal/hash"
	"xoridx/internal/serve"
)

// baseOptions is the shared tuning problem: small enough that a
// re-tune round is cheap, with WindowAccesses pushed out of reach so
// rotation points are exactly the harness's explicit re-tunes (the
// clock-skew schedule overrides this to exercise automatic rotation).
func baseOptions() serve.Options {
	return serve.Options{
		Config:         core.Config{CacheBytes: 256, AddrBits: 12, Family: hash.FamilyGeneralXOR},
		Shards:         2,
		WindowAccesses: 1 << 40,
	}
}

// TestChaosMatrix is the §16 acceptance sweep: every seeded schedule
// against a supervised server, every invariant checked, plus the
// kind-specific expectation that the fault actually bit.
func TestChaosMatrix(t *testing.T) {
	for _, kind := range Kinds() {
		for _, seed := range []int64{1, 2, 3} {
			kind, seed := kind, seed
			t.Run(string(kind)+"/seed="+string('0'+rune(seed)), func(t *testing.T) {
				opt := baseOptions()
				switch kind {
				case KindPanic:
					// Snapshot cadence so restarts resume warm, zero
					// backoff so the run stays fast.
					opt.CheckpointEvery = 256
				case KindClockSkew:
					opt.WindowAccesses = 512 // let the window clock rotate mid-drive
				}
				rep, err := Run(Config{Serve: opt, Kind: kind, Seed: seed, Dir: t.TempDir()})
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				for _, v := range rep.Violations {
					t.Errorf("invariant violated: %s", v)
				}
				switch kind {
				case KindPanic:
					if rep.Stats.Restarts == 0 && rep.Stats.Quarantined == 0 {
						t.Errorf("panic schedule planted no fault: %+v", rep.Stats)
					}
				case KindOverload:
					if rep.Stats.Shed == 0 {
						t.Errorf("overload schedule shed nothing: %+v", rep.Stats)
					}
				case KindDisconnect:
					if rep.Stats.Ingested != rep.Sent {
						t.Errorf("disconnect storms lost delivered frames: ingested %d, sent %d",
							rep.Stats.Ingested, rep.Sent)
					}
				case KindClockSkew:
					if rep.Stats.Rotations == 0 {
						t.Errorf("clock-skew schedule saw no window rotation")
					}
				}
				if rep.FinalProfile == nil && kind != KindCorruptCkpt {
					t.Errorf("survived schedule but cannot serve a profile")
				}
				if len(rep.Epochs) == 0 || rep.Epochs[len(rep.Epochs)-1].Seq < 2 {
					t.Errorf("no re-tuned epoch was ever published: %+v", rep.Epochs)
				}
			})
		}
	}
}

// TestChaosDifferentialNoFaults is the bit-identity acceptance check:
// with fault injection disabled, a fully supervised server (restarts,
// shedding, snapshot cadence all on) must publish exactly the same
// matrix and serve exactly the same histogram as the pre-§16
// configuration (supervision off, blocking backpressure).
func TestChaosDifferentialNoFaults(t *testing.T) {
	run := func(opt serve.Options) *Report {
		rep, err := Run(Config{Serve: opt, Kind: KindNone, Seed: 7})
		if err != nil {
			t.Fatalf("harness: %v", err)
		}
		for _, v := range rep.Violations {
			t.Errorf("invariant violated: %s", v)
		}
		return rep
	}

	supervised := baseOptions()
	supervised.Shed = true
	supervised.CheckpointEvery = 512
	legacy := baseOptions()
	legacy.MaxShardRestarts = -1
	legacy.Shed = false

	a, b := run(supervised), run(legacy)
	if !a.FinalMatrix.Equal(b.FinalMatrix) {
		t.Errorf("published H diverged:\nsupervised %v\nlegacy     %v", a.FinalMatrix, b.FinalMatrix)
	}
	if a.FinalProfile == nil || b.FinalProfile == nil {
		t.Fatalf("missing final profile: supervised %v, legacy %v", a.FinalProfile, b.FinalProfile)
	}
	pa, pb := a.FinalProfile, b.FinalProfile
	if pa.Accesses != pb.Accesses || pa.Compulsory != pb.Compulsory ||
		pa.Capacity != pb.Capacity || pa.Candidates != pb.Candidates ||
		pa.TotalPairs != pb.TotalPairs {
		t.Errorf("histogram totals diverged:\nsupervised %+v\nlegacy     %+v", pa, pb)
	}
	sa, sb := pa.Support(), pb.Support()
	if len(sa) != len(sb) {
		t.Fatalf("support size diverged: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Errorf("support[%d] diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if a.Stats.Ingested != b.Stats.Ingested || a.Sent != b.Sent {
		t.Errorf("accounting diverged: supervised %d/%d, legacy %d/%d",
			a.Stats.Ingested, a.Sent, b.Stats.Ingested, b.Sent)
	}
}

// TestChaosScheduleDeterminism replays one seeded panic schedule and
// requires the fault placement — and therefore the restart count and
// the driver-side accounting — to reproduce exactly.
func TestChaosScheduleDeterminism(t *testing.T) {
	run := func() *Report {
		opt := baseOptions()
		opt.CheckpointEvery = 256
		rep, err := Run(Config{Serve: opt, Kind: KindPanic, Seed: 42})
		if err != nil {
			t.Fatalf("harness: %v", err)
		}
		for _, v := range rep.Violations {
			t.Errorf("invariant violated: %s", v)
		}
		return rep
	}
	a, b := run(), run()
	if a.Sent != b.Sent || a.Stats.Restarts != b.Stats.Restarts ||
		a.Stats.Quarantined != b.Stats.Quarantined {
		t.Errorf("same seed, different schedule: sent %d/%d restarts %d/%d quarantined %d/%d",
			a.Sent, b.Sent, a.Stats.Restarts, b.Stats.Restarts,
			a.Stats.Quarantined, b.Stats.Quarantined)
	}
}
