// Package chaos is the deterministic fault harness for the serve
// layer (DESIGN.md §16): seeded schedules inject shard panics at
// chosen access counts, checkpoint corruption and truncation, client
// disconnect storms, overload bursts and window-clock skew against a
// live serve.Server, while invariant checkers assert what §16
// promises — the published epoch sequence stays monotone and
// never-worse (§6 guard), accounting conserves (every access the
// driver sent is admitted, shed, dropped-in-quarantine or rejected,
// exactly once), recovery is bounded (a supervised server finishes a
// schedule and still re-tunes), and shutdown leaks no goroutines.
//
// Determinism: every fault *placement* derives from Config.Seed via a
// splitmix64 stream — the same seed plants the same panics at the same
// per-shard access counts, flips the same checkpoint bits, truncates
// the same streams. What the scheduler does with the resulting timing
// (which exact batch sheds under overload, how ingest interleaves with
// a rotation under clock skew) varies run to run; the invariants are
// written to hold for every interleaving, which is the point of
// running the matrix under -race in CI.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"xoridx/internal/ckpt"
	"xoridx/internal/gf2"
	"xoridx/internal/profile"
	"xoridx/internal/serve"
	"xoridx/internal/xerr"
)

// Kind selects a fault schedule.
type Kind string

const (
	// KindNone drives the workload with no faults — the differential
	// baseline: a supervised server under KindNone must be
	// bit-identical to an unsupervised one.
	KindNone Kind = "none"
	// KindPanic plants shard panics at seeded per-shard access counts.
	KindPanic Kind = "panic"
	// KindCorruptCkpt writes a checkpoint, flips seeded bits in its
	// shard-blob region, and resumes from the damaged file.
	KindCorruptCkpt Kind = "corrupt-ckpt"
	// KindOverload drives bursts into a depth-1 queue behind a slowed
	// shard with shedding enabled.
	KindOverload Kind = "overload"
	// KindDisconnect feeds ServeIngest streams that die mid-frame at
	// seeded points — a client disconnect storm.
	KindDisconnect Kind = "disconnect"
	// KindClockSkew stalls shard goroutines at seeded access counts
	// while automatic window rotations run, skewing the window clock
	// relative to ingest.
	KindClockSkew Kind = "clock-skew"
)

// Kinds lists every fault schedule, KindNone excluded.
func Kinds() []Kind {
	return []Kind{KindPanic, KindCorruptCkpt, KindOverload, KindDisconnect, KindClockSkew}
}

// Config parameterizes one harness run.
type Config struct {
	// Serve is the base server configuration. The harness owns
	// FaultHook (and, for some kinds, CheckpointPath, QueueDepth, Shed
	// and AdmissionWait); everything else is taken as given.
	Serve serve.Options

	Kind Kind
	Seed int64

	// Dir is a scratch directory (required by KindCorruptCkpt).
	Dir string

	// Accesses is the total drive length (default 4096), Batch the
	// accesses per ingest batch (default 128), Clients the distinct
	// client IDs cycled over (default 4), Rounds the explicit re-tune
	// rounds spread through the drive (default 2).
	Accesses int
	Batch    int
	Clients  int
	Rounds   int
}

// EpochSample is one observation of the published epoch.
type EpochSample struct {
	Seq           uint64
	Estimated     uint64
	PrevEstimated uint64
	Degraded      bool
}

// Report is the outcome of one harness run. Violations empty means
// every invariant held.
type Report struct {
	Kind Kind
	Seed int64

	Sent     uint64 // accesses the driver handed to the server
	Rejected uint64 // accesses refused with a non-overload error (ErrClosed)
	Stats    serve.Stats
	Epochs   []EpochSample
	FinalErr error

	// FinalMatrix and FinalProfile capture the end state for
	// differential comparison (nil when the server could no longer
	// serve them — e.g. after an intended escalation).
	FinalMatrix  gf2.Matrix
	FinalProfile *profile.Profile

	Violations []string
}

// Ok reports whether every invariant held.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// rng is a splitmix64 stream — deterministic fault placement with no
// dependency on math/rand's global state.
type rng struct{ s uint64 }

func (g *rng) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a value in [1, n].
func (g *rng) intn(n int) int { return 1 + int(g.next()%uint64(n)) }

// Run executes one seeded schedule and checks the §16 invariants. The
// error return is reserved for harness failures (bad Config); fault
// consequences land in the Report.
func Run(cfg Config) (*Report, error) {
	if cfg.Accesses == 0 {
		cfg.Accesses = 4096
	}
	if cfg.Batch == 0 {
		cfg.Batch = 128
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 2
	}
	if cfg.Kind == "" {
		cfg.Kind = KindNone
	}
	if cfg.Kind == KindCorruptCkpt && cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: KindCorruptCkpt needs Config.Dir: %w", xerr.ErrInvalidOptions)
	}
	rep := &Report{Kind: cfg.Kind, Seed: cfg.Seed}
	h := &harness{cfg: cfg, rep: rep, g: rng{s: uint64(cfg.Seed)*2 + 1}}

	baseline := runtime.NumGoroutine()
	if err := h.run(); err != nil {
		return nil, err
	}
	// Leak check: every goroutine the run started must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			rep.violate("goroutine leak: %d running after shutdown, baseline %d",
				runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return rep, nil
}

type harness struct {
	cfg cfgAlias
	rep *Report
	g   rng

	blockState uint64 // deterministic workload stream
}

type cfgAlias = Config

// run builds the server(s) for the schedule, drives the workload, and
// fills the report.
func (h *harness) run() error {
	opt := h.cfg.Serve
	switch h.cfg.Kind {
	case KindPanic:
		opt.FaultHook = h.panicHook(opt.Shards)
	case KindOverload:
		opt.Shed = true
		opt.QueueDepth = 1
		opt.AdmissionWait = -1
		slow := h.slowHook(time.Millisecond)
		opt.FaultHook = slow
	case KindClockSkew:
		opt.FaultHook = h.skewHook(opt.Shards)
	case KindCorruptCkpt:
		return h.runCorruptCkpt(opt)
	}

	s, err := serve.New(opt)
	if err != nil {
		return err
	}
	h.driveAndFinish(s, h.cfg.Accesses)
	return nil
}

// driveAndFinish pushes the workload, runs the scheduled re-tunes,
// checks the invariants, and closes the server.
func (h *harness) driveAndFinish(s *serve.Server, accesses int) {
	perRound := accesses / h.cfg.Rounds
	driven := 0
	client := uint64(0)
	for driven < accesses {
		n := h.cfg.Batch
		if driven+n > accesses {
			n = accesses - driven
		}
		if h.cfg.Kind == KindDisconnect {
			h.sendDisconnectStream(s, client%uint64(h.cfg.Clients)+1, n)
		} else {
			h.sendBatch(s, client%uint64(h.cfg.Clients)+1, n)
		}
		client++
		driven += n
		h.observeEpoch(s)
		if driven%perRound < h.cfg.Batch && driven >= perRound {
			h.retune(s)
		}
	}
	h.finish(s)
}

// sendBatch ingests one deterministic batch and accounts its fate.
func (h *harness) sendBatch(s *serve.Server, client uint64, n int) {
	blocks := h.nextBlocks(n)
	h.rep.Sent += uint64(n)
	err := s.IngestBlocks(client, blocks)
	switch {
	case err == nil:
		// Admitted, or dropped-with-accounting by a quarantined shard:
		// either way the server's counters carry it.
	case errors.Is(err, xerr.ErrOverload):
		// Shed with accounting; Stats.Shed carries it.
	default:
		h.rep.Rejected += uint64(n)
		if !errors.Is(err, xerr.ErrCanceled) {
			h.rep.violate("IngestBlocks returned untyped error: %v", err)
		}
	}
}

// sendDisconnectStream drives ServeIngest with a stream that dies
// mid-frame at a seeded point: full frames deliver, the torn one never
// reaches the profile, and the server must shrug the connection off.
func (h *harness) sendDisconnectStream(s *serve.Server, client uint64, n int) {
	var buf bytes.Buffer
	bw := serve.NewBatchWriter(&buf)
	full := h.g.intn(3) // frames that survive before the cut
	for i := 0; i < full; i++ {
		if err := bw.WriteBatch(client, h.nextBlocks(n)); err != nil {
			h.rep.violate("encode: %v", err)
			return
		}
		h.rep.Sent += uint64(n)
	}
	cut := buf.Len()
	if err := bw.WriteBatch(client, h.nextBlocks(n)); err != nil {
		h.rep.violate("encode: %v", err)
		return
	}
	// Tear the last frame: at least one byte, never the whole frame.
	torn := buf.Bytes()[:cut+1+int(h.g.next()%uint64(buf.Len()-cut-1))]
	err := s.ServeIngest(context.Background(), bytes.NewReader(torn))
	if err == nil {
		h.rep.violate("ServeIngest accepted a torn stream")
	} else if !errors.Is(err, xerr.ErrFormat) && !errors.Is(err, xerr.ErrCanceled) {
		h.rep.violate("torn stream returned untyped error: %v", err)
	}
}

// nextBlocks emits the deterministic workload: hot blocks that collide
// under modulo indexing, phase-shifted by the stream position, so
// re-tunes have real conflict structure to chew on.
func (h *harness) nextBlocks(n int) []uint64 {
	cacheBlocks := uint64(64)
	if cb := h.cfg.Serve.Config.CacheBytes / max(h.cfg.Serve.Config.BlockBytes, 1); cb > 0 {
		cacheBlocks = uint64(cb)
	}
	out := make([]uint64, n)
	for i := range out {
		k := h.blockState % 8
		phase := (h.blockState / 4096) % 2
		if phase == 0 {
			out[i] = k * cacheBlocks
		} else {
			out[i] = k*2*cacheBlocks + 17
		}
		h.blockState++
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// retune runs one explicit re-tune round, tolerating only the typed
// degradations §16 allows.
func (h *harness) retune(s *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Retune(ctx); err != nil {
		if !errors.Is(err, serve.ErrQuarantined) && !errors.Is(err, xerr.ErrCanceled) {
			h.rep.violate("Retune: %v", err)
		}
		return
	}
	h.observeEpoch(s)
}

// observeEpoch samples the published epoch and checks monotonicity and
// the §6 never-worse guard.
func (h *harness) observeEpoch(s *serve.Server) {
	ep := s.Current()
	n := len(h.rep.Epochs)
	if n > 0 && ep.Seq < h.rep.Epochs[n-1].Seq {
		h.rep.violate("epoch sequence went backwards: %d after %d", ep.Seq, h.rep.Epochs[n-1].Seq)
	}
	if n > 0 && ep.Seq == h.rep.Epochs[n-1].Seq {
		return
	}
	if ep.Seq > 1 && ep.Estimated > ep.PrevEstimated {
		h.rep.violate("epoch %d published worse than incumbent: %d > %d",
			ep.Seq, ep.Estimated, ep.PrevEstimated)
	}
	h.rep.Epochs = append(h.rep.Epochs, EpochSample{
		Seq: ep.Seq, Estimated: ep.Estimated, PrevEstimated: ep.PrevEstimated, Degraded: ep.Degraded,
	})
}

// finish drains, snapshots the end state, checks conservation and the
// final-error typing, and closes the server.
func (h *harness) finish(s *serve.Server) {
	// A final re-tune is the bounded-recovery probe: a supervised
	// server that survived its schedule must still complete one.
	h.retune(s)
	if p, err := s.Profile(); err == nil {
		h.rep.FinalProfile = p
	}
	h.rep.FinalMatrix = s.Current().Func.Matrix()
	h.rep.Stats = s.Stats()
	h.rep.FinalErr = s.Err()
	h.checkConservation()
	h.checkFinalErr()
	if err := s.Close(); err != nil && !errors.Is(err, xerr.ErrCanceled) {
		h.rep.violate("Close: %v", err)
	}
	h.rep.Stats = s.Stats() // Close-time checkpoint counts
}

// checkConservation asserts the accounting identity: every access the
// driver sent was admitted into a shard queue, shed by overload
// control, dropped at a quarantined shard's door, or rejected back to
// the driver — exactly once.
func (h *harness) checkConservation() {
	st := h.rep.Stats
	got := st.Ingested + st.Shed + st.DroppedQuarantined + h.rep.Rejected
	if got != h.rep.Sent {
		h.rep.violate("conservation broken: ingested %d + shed %d + dropped %d + rejected %d = %d, sent %d",
			st.Ingested, st.Shed, st.DroppedQuarantined, h.rep.Rejected, got, h.rep.Sent)
	}
}

// checkFinalErr allows a clean run or the typed degradations §16
// defines; anything else is a violation.
func (h *harness) checkFinalErr() {
	err := h.rep.FinalErr
	if err == nil {
		return
	}
	if h.cfg.Kind == KindNone {
		h.rep.violate("fault-free run recorded background error: %v", err)
		return
	}
	if !errors.Is(err, xerr.ErrPanic) && !errors.Is(err, serve.ErrQuarantined) &&
		!errors.Is(err, xerr.ErrOverload) && !errors.Is(err, xerr.ErrFormat) {
		h.rep.violate("final error is not typed-degraded: %v", err)
	}
}

// panicHook plants the KindPanic schedule: each shard gets 1-2 seeded
// access-count thresholds; crossing one panics the shard goroutine
// exactly once.
func (h *harness) panicHook(shards int) func(int, uint64) {
	if shards == 0 {
		shards = 1
	}
	perShard := h.cfg.Accesses / shards
	if perShard < 4 {
		perShard = 4
	}
	thresholds := make([][]uint64, shards)
	next := make([]atomic.Int32, shards)
	for i := range thresholds {
		k := h.g.intn(2)
		for j := 0; j < k; j++ {
			thresholds[i] = append(thresholds[i], uint64(h.g.intn(perShard)))
		}
		sortU64(thresholds[i])
	}
	return func(sh int, processed uint64) {
		i := int(next[sh].Load())
		if i < len(thresholds[sh]) && processed >= thresholds[sh][i] {
			next[sh].Store(int32(i + 1))
			panic(fmt.Sprintf("chaos: planted panic %d on shard %d at %d", i, sh, processed))
		}
	}
}

// slowHook delays every batch — the consumer-side throttle that makes
// a depth-1 queue overflow under bursts.
func (h *harness) slowHook(d time.Duration) func(int, uint64) {
	return func(int, uint64) { time.Sleep(d) }
}

// skewHook stalls shards at seeded access counts, skewing the window
// clock relative to ingest while automatic rotations run.
func (h *harness) skewHook(shards int) func(int, uint64) {
	if shards == 0 {
		shards = 1
	}
	perShard := h.cfg.Accesses / shards
	if perShard < 4 {
		perShard = 4
	}
	stallAt := make([]uint64, shards)
	done := make([]atomic.Bool, shards)
	for i := range stallAt {
		stallAt[i] = uint64(h.g.intn(perShard))
	}
	return func(sh int, processed uint64) {
		if processed >= stallAt[sh] && done[sh].CompareAndSwap(false, true) {
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// runCorruptCkpt is the two-session schedule: run and checkpoint, flip
// seeded bits in the shard-blob region, resume from the damaged file,
// and keep serving.
func (h *harness) runCorruptCkpt(opt serve.Options) error {
	path := filepath.Join(h.cfg.Dir, fmt.Sprintf("chaos-%d.ckpt", h.cfg.Seed))
	opt.CheckpointPath = path

	s, err := serve.New(opt)
	if err != nil {
		return err
	}
	half := h.cfg.Accesses / 2
	driven := 0
	client := uint64(0)
	for driven < half {
		n := h.cfg.Batch
		if driven+n > half {
			n = half - driven
		}
		h.sendBatch(s, client%uint64(h.cfg.Clients)+1, n)
		client++
		driven += n
	}
	h.retune(s)
	if err := s.Close(); err != nil {
		h.rep.violate("phase-1 Close: %v", err)
	}
	sentPhase1 := h.rep.Sent
	h.rep.Rejected = 0

	// Flip 1-3 seeded bits strictly inside the shard-blob region (the
	// envelope's CRC protects the frame; damaging it is the
	// whole-file-corruption case serve's own tests cover).
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	br := bytes.NewReader(raw)
	if _, _, err := ckpt.Read(br, "XSV1"); err != nil {
		return fmt.Errorf("chaos: phase-1 checkpoint unreadable: %w", err)
	}
	envLen := len(raw) - br.Len()
	if envLen >= len(raw) {
		return fmt.Errorf("chaos: checkpoint has no blob region: %w", xerr.ErrFormat)
	}
	flips := h.g.intn(3)
	for i := 0; i < flips; i++ {
		off := envLen + int(h.g.next()%uint64(len(raw)-envLen))
		raw[off] ^= byte(1 << (h.g.next() % 8))
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return err
	}

	opt.Resume = true
	s2, err := serve.New(opt)
	if err != nil {
		h.rep.violate("healing resume failed: %v", err)
		return nil
	}
	// Damage may or may not have landed on live histogram bits (a flip
	// can hit a blob's own CRC, or even be masked by varint slack);
	// what §16 requires is that whatever survived is consistent: every
	// damaged shard is reported, the rest resume, and serving goes on.
	if cold := s2.Stats().ColdShards; cold != len(s2.RestoreErrors()) {
		h.rep.violate("ColdShards %d != %d reported restore errors", cold, len(s2.RestoreErrors()))
	}
	// Conservation restarts with the new process's counters.
	h.rep.Sent -= sentPhase1
	h.driveAndFinish(s2, h.cfg.Accesses-half)
	return nil
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
