package hwcost

import "fmt"

// First-order energy model for the paper's motivating claim (§1):
// conflict misses cost performance AND energy, and an
// application-specific XOR index buys the miss rate of associativity
// without its per-access energy. The numbers are CACTI-flavoured
// ballparks for a ~130 nm embedded process (the paper's era), in
// picojoules; only ratios matter for the conclusions, and all
// parameters are overridable.
type EnergyModel struct {
	// ArrayReadPJ is the energy of reading one direct-mapped data+tag
	// array of 1 KB; larger arrays scale with sqrt(capacity), parallel
	// ways multiply.
	ArrayReadPJ float64
	// MemTransferPJ is the energy of one block transfer to/from the
	// next memory level (dominates everything else).
	MemTransferPJ float64
	// SwitchPJ is the per-access energy of one crossbar switch
	// (pass gate + the wire segment it drives) in the index network.
	SwitchPJ float64
	// XORPJ is the per-access energy of one 2-input XOR gate.
	XORPJ float64
}

// DefaultEnergy returns the documented ballpark parameters.
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		ArrayReadPJ:   25,   // 1 KB SRAM array read
		MemTransferPJ: 1200, // off-chip/next-level block transfer
		SwitchPJ:      0.05,
		XORPJ:         0.1,
	}
}

// AccessEnergy returns the per-access energy of a cache organisation:
// ways parallel array reads of (capacityBytes/ways) each, plus the
// reconfigurable index network of the given style (styleless modulo
// indexing passes style < 0).
func (em EnergyModel) AccessEnergy(capacityBytes, ways, n, m int, style Style) float64 {
	if capacityBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("hwcost: invalid geometry %dB/%d ways", capacityBytes, ways))
	}
	perArray := em.ArrayReadPJ * sqrtRatio(capacityBytes/ways)
	e := float64(ways) * perArray
	if style >= 0 {
		est := Estimate(style, n, m)
		e += float64(est.Switches)*em.SwitchPJ + float64(est.XORGates)*em.XORPJ
	}
	return e
}

// TotalEnergy returns the energy of a simulated run: accesses×access
// energy + memory traffic×transfer energy.
func (em EnergyModel) TotalEnergy(accesses, traffic uint64, accessPJ float64) float64 {
	return float64(accesses)*accessPJ + float64(traffic)*em.MemTransferPJ
}

// sqrtRatio approximates sqrt(capacity/1KB) without importing math for
// a monotone scaling factor; exactness is irrelevant to the ratios.
func sqrtRatio(capacityBytes int) float64 {
	ratio := float64(capacityBytes) / 1024
	// Newton iterations from a decent start.
	x := ratio
	if x < 1 {
		x = 1
	}
	for i := 0; i < 20; i++ {
		x = 0.5 * (x + ratio/x)
	}
	return x
}
