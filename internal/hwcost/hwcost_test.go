package hwcost

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	// Paper Table 1, n = 16; columns m = 8, 10, 12.
	want := map[Style][3]int{
		BitSelectNaive:     {256, 256, 256},
		BitSelectOptimized: {144, 136, 112},
		GeneralXOR2:        {252, 261, 250},
		PermutationXOR2:    {72, 70, 60},
	}
	for _, row := range Table1() {
		w, ok := want[row.Style]
		if !ok {
			t.Fatalf("unexpected style %v", row.Style)
		}
		if row.Switches != w {
			t.Errorf("%v: got %v, paper says %v", row.Style, row.Switches, w)
		}
	}
}

func TestSwitchesComponents(t *testing.T) {
	// Decompose general XOR at n=16, m=8: 72 first + 108 second + 72 tag.
	n, m := 16, 8
	if got := indexSelect(n, m); got != 72 {
		t.Errorf("indexSelect = %d", got)
	}
	if got := secondInput(n, m); got != 108 {
		t.Errorf("secondInput = %d", got)
	}
	if got := tagSelect(n, m); got != 72 {
		t.Errorf("tagSelect = %d", got)
	}
}

func TestSwitchesPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {8, 0}, {8, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Switches with n=%d m=%d should panic", dims[0], dims[1])
				}
			}()
			Switches(BitSelectNaive, dims[0], dims[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown style should panic")
			}
		}()
		Switches(Style(42), 16, 8)
	}()
}

func TestPermutationCheaperThanBitSelect(t *testing.T) {
	// §5's headline claim: a reconfigurable 2-input permutation-based
	// XOR function needs fewer switches and crossings than any
	// reconfigurable bit-selecting network, at every Table 1 size.
	for _, m := range []int{8, 10, 12} {
		perm := Estimate(PermutationXOR2, 16, m)
		bsOpt := Estimate(BitSelectOptimized, 16, m)
		if perm.Switches >= bsOpt.Switches {
			t.Errorf("m=%d: permutation %d switches vs optimized bit-select %d", m, perm.Switches, bsOpt.Switches)
		}
		if perm.WiresCrossed >= bsOpt.WiresCrossed {
			t.Errorf("m=%d: permutation crossings %d vs bit-select %d", m, perm.WiresCrossed, bsOpt.WiresCrossed)
		}
	}
}

func TestEstimateFields(t *testing.T) {
	c := Estimate(PermutationXOR2, 16, 8)
	if c.XORGates != 8 || c.Inverters != 8 {
		t.Fatalf("XOR accounting wrong: %+v", c)
	}
	if c.PassGates != c.Switches+16 { // 2 pass gates per XOR
		t.Fatalf("pass gates = %d", c.PassGates)
	}
	if c.WiresCrossed != 8*8 {
		t.Fatalf("crossings = %d, want (n-m)*m = 64", c.WiresCrossed)
	}
	if c.ConfigBits != c.Switches {
		t.Fatal("config bits must equal switches")
	}
	if c.CriticalLevel != 2 {
		t.Fatal("XOR path has 2 levels")
	}
	b := Estimate(BitSelectNaive, 16, 8)
	if b.XORGates != 0 || b.CriticalLevel != 1 {
		t.Fatalf("bit-select estimate wrong: %+v", b)
	}
}

func TestStyleString(t *testing.T) {
	names := map[Style]string{
		BitSelectNaive:     "bit-select",
		BitSelectOptimized: "optimized bit-select",
		GeneralXOR2:        "general XOR",
		PermutationXOR2:    "permutation-based",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %q", int(s), s.String())
		}
	}
	if !strings.Contains(Style(9).String(), "9") {
		t.Error("unknown style string")
	}
}

func TestStylesOrder(t *testing.T) {
	s := Styles()
	if len(s) != 4 || s[0] != BitSelectNaive || s[3] != PermutationXOR2 {
		t.Fatalf("Styles() = %v", s)
	}
}

func TestEnergyModelOrdering(t *testing.T) {
	em := DefaultEnergy()
	// Per-access: a 2-way cache reads two half-size arrays, costing more
	// than one direct-mapped array of the same total capacity (the wider
	// tag match dominates in reality; here 2×sqrt(1/2) ≈ 1.41×).
	dm := em.AccessEnergy(4096, 1, 16, 10, -1)
	dmXOR := em.AccessEnergy(4096, 1, 16, 10, PermutationXOR2)
	twoWay := em.AccessEnergy(4096, 2, 16, 9, -1)
	if !(dm < dmXOR) {
		t.Fatalf("XOR network must add something: %f vs %f", dm, dmXOR)
	}
	if dmXOR >= twoWay {
		t.Fatalf("XOR-indexed DM (%f pJ) must stay cheaper per access than 2-way (%f pJ)", dmXOR, twoWay)
	}
	// The XOR network overhead must be tiny relative to the array read
	// (the paper's §5 argument for pass-gate selectors).
	if (dmXOR-dm)/dm > 0.2 {
		t.Fatalf("index network overhead %.1f%% too large", 100*(dmXOR-dm)/dm)
	}
}

func TestEnergyModelTotals(t *testing.T) {
	em := DefaultEnergy()
	access := em.AccessEnergy(1024, 1, 16, 8, PermutationXOR2)
	// Misses dominate: 1000 accesses with 100 transfers costs more than
	// the same accesses with 10 transfers by roughly 90 transfers.
	hi := em.TotalEnergy(1000, 100, access)
	lo := em.TotalEnergy(1000, 10, access)
	if hi <= lo {
		t.Fatal("more traffic must cost more")
	}
	if diff := hi - lo; diff != 90*em.MemTransferPJ {
		t.Fatalf("traffic delta = %f, want %f", diff, 90*em.MemTransferPJ)
	}
}

func TestEnergyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultEnergy().AccessEnergy(0, 1, 16, 8, -1)
}

func TestSqrtRatio(t *testing.T) {
	cases := map[int]float64{1024: 1, 4096: 2, 16384: 4}
	for capacity, want := range cases {
		if got := sqrtRatio(capacity); got < want*0.99 || got > want*1.01 {
			t.Errorf("sqrtRatio(%d) = %f, want %f", capacity, got, want)
		}
	}
}
