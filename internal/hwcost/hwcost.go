// Package hwcost models the hardware complexity of reconfigurable
// index networks (paper §5, Table 1, Fig. 2).
//
// Each reconfigurable selector is a crossbar of switches (one pass gate
// plus one configuration memory cell per switch). The paper's four
// network styles, with n hashed address bits and m set-index bits:
//
//   - Naive bit-select: every one of the n outputs (m index + n−m tag)
//     selects among all n inputs: n² switches.
//   - Optimized bit-select: because permuting the selected bits is
//     irrelevant, output i need only choose among a sliding window:
//     m·(n−m+1) switches for the index plus (n−m)·(m+1) for the tag
//     (paper Fig. 2a: the shaded triangle is redundant).
//   - General 2-input XOR: each of the m index bits needs a first-input
//     selector (optimized, m·(n−m+1)), a second-input selector that can
//     also pick a constant 0 so the bit can pass through unhashed
//     (m·(n+1) minus the same triangular redundancy m(m−1)/2), and the
//     tag still needs its (n−m)·(m+1) bit-select switches.
//   - Permutation-based 2-input XOR: the first XOR input is hard-wired
//     to the corresponding low-order address bit and the tag is
//     hard-wired to the high-order bits, so only the m second-input
//     selectors of 1-out-of-(n−m+1) remain: m·(n−m+1) switches
//     (paper Fig. 2b).
//
// These formulas reproduce paper Table 1 exactly (see tests).
package hwcost

import "fmt"

// Style enumerates the reconfigurable network styles of Table 1.
type Style int

const (
	// BitSelectNaive: n 1-out-of-n selectors.
	BitSelectNaive Style = iota
	// BitSelectOptimized: redundancy-free bit selection (Fig. 2a).
	BitSelectOptimized
	// GeneralXOR2: reconfigurable 2-input XOR function.
	GeneralXOR2
	// PermutationXOR2: permutation-based 2-input XOR (Fig. 2b).
	PermutationXOR2
)

// String names the style as in Table 1.
func (s Style) String() string {
	switch s {
	case BitSelectNaive:
		return "bit-select"
	case BitSelectOptimized:
		return "optimized bit-select"
	case GeneralXOR2:
		return "general XOR"
	case PermutationXOR2:
		return "permutation-based"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Styles lists all styles in Table 1 order.
func Styles() []Style {
	return []Style{BitSelectNaive, BitSelectOptimized, GeneralXOR2, PermutationXOR2}
}

// Switches returns the number of crossbar switches (pass gate +
// configuration cell) required for the style at the given dimensions.
func Switches(s Style, n, m int) int {
	if n <= 0 || m <= 0 || m > n {
		panic(fmt.Sprintf("hwcost: invalid dimensions n=%d m=%d", n, m))
	}
	switch s {
	case BitSelectNaive:
		return n * n
	case BitSelectOptimized:
		return indexSelect(n, m) + tagSelect(n, m)
	case GeneralXOR2:
		return indexSelect(n, m) + secondInput(n, m) + tagSelect(n, m)
	case PermutationXOR2:
		return indexSelect(n, m)
	default:
		panic(fmt.Sprintf("hwcost: unknown style %d", int(s)))
	}
}

// indexSelect is the optimized first-input selector bank:
// m selectors of 1-out-of-(n−m+1).
func indexSelect(n, m int) int { return m * (n - m + 1) }

// tagSelect is the optimized tag selector bank:
// n−m selectors of 1-out-of-(m+1).
func tagSelect(n, m int) int { return (n - m) * (m + 1) }

// secondInput is the second-XOR-input selector bank: each of the m
// gates picks among the n address bits or a constant 0, minus the
// triangular permutation redundancy.
func secondInput(n, m int) int { return m*(n+1) - m*(m-1)/2 }

// Cost aggregates the physical estimates of §5 for one network.
type Cost struct {
	Style         Style
	N, M          int
	Switches      int // pass gate + memory cell pairs
	PassGates     int // pass transistors (2 per XOR input pair + 1 per switch)
	MemoryCells   int // configuration bits
	Inverters     int // one per XOR gate (complement from the flip-flop)
	WiresCrossed  int // crossbar area proxy: lines × crossings
	ConfigBits    int // bits to program the function (== MemoryCells)
	XORGates      int
	CriticalLevel int // selector + optional XOR levels on the index path
}

// Estimate returns the aggregate cost model for a style.
func Estimate(s Style, n, m int) Cost {
	sw := Switches(s, n, m)
	c := Cost{Style: s, N: n, M: m, Switches: sw, MemoryCells: sw, ConfigBits: sw, PassGates: sw}
	switch s {
	case BitSelectNaive:
		c.WiresCrossed = n * n
		c.CriticalLevel = 1
	case BitSelectOptimized:
		c.WiresCrossed = n * n // same physical lines, fewer switches
		c.CriticalLevel = 1
	case GeneralXOR2:
		c.XORGates = m
		// Pass-transistor XOR: 2 pass gates and 1 inverter per gate (§5).
		c.PassGates += 2 * m
		c.Inverters = m
		c.WiresCrossed = n * n
		c.CriticalLevel = 2
	case PermutationXOR2:
		c.XORGates = m
		c.PassGates += 2 * m
		c.Inverters = m
		// Only the n−m high-order lines cross the m selector columns.
		c.WiresCrossed = (n - m) * m
		c.CriticalLevel = 2
	}
	return c
}

// Table1Row is one row of paper Table 1 (n = 16, 4-byte blocks).
type Table1Row struct {
	Style    Style
	Switches [3]int // m = 8, 10, 12 (1, 4, 16 KB caches)
}

// Table1 regenerates paper Table 1: switch counts for reconfigurable
// indexing with n = 16 and direct-mapped 1/4/16 KB caches of 4-byte
// blocks (m = 8, 10, 12).
func Table1() []Table1Row {
	ms := [3]int{8, 10, 12}
	rows := make([]Table1Row, 0, 4)
	for _, s := range Styles() {
		var row Table1Row
		row.Style = s
		for i, m := range ms {
			row.Switches[i] = Switches(s, 16, m)
		}
		rows = append(rows, row)
	}
	return rows
}
