package hwcost_test

import (
	"fmt"

	"xoridx/internal/hwcost"
)

// Example_table1 regenerates one row of the paper's Table 1.
func Example_table1() {
	for _, m := range []int{8, 10, 12} {
		fmt.Print(hwcost.Switches(hwcost.PermutationXOR2, 16, m), " ")
	}
	fmt.Println()
	// Output:
	// 72 70 60
}
