// Package xerr defines the error taxonomy shared by every layer of the
// tuning pipeline. Each sentinel classifies one failure mode; concrete
// errors wrap a sentinel with fmt.Errorf("...: %w", ...) so callers —
// and the future service layers that must map failures to responses —
// can branch with errors.Is without parsing message strings.
//
// The package is a leaf (it imports only the standard library) so that
// gf2, trace, profile, cache, search, optimal and core can all share
// one vocabulary without import cycles. Package core re-exports the
// sentinels a downstream user is expected to match against.
package xerr

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCanceled reports that a context was canceled (or timed out)
	// while a pipeline stage was running. Errors wrapping it also wrap
	// the context's own error, so errors.Is(err, context.Canceled) or
	// errors.Is(err, context.DeadlineExceeded) hold as appropriate.
	ErrCanceled = errors.New("canceled")

	// ErrInvalidGeometry reports a cache geometry that cannot exist:
	// non-power-of-two sizes, too few sets, an index function whose
	// set-bit count does not match the cache, and the like.
	ErrInvalidGeometry = errors.New("invalid geometry")

	// ErrInvalidOptions reports search or profiling options outside
	// their domain (m out of range, negative MaxInputs, an unknown
	// function family, ...).
	ErrInvalidOptions = errors.New("invalid options")

	// ErrProfileMismatch reports a profile that is incompatible with
	// the configuration or profile it is being combined with (different
	// address width or capacity filter).
	ErrProfileMismatch = errors.New("profile mismatch")

	// ErrFormat reports unparsable or corrupt serialized input: trace
	// files, matrix text, checkpoint snapshots, block sources that
	// violate their contract.
	ErrFormat = errors.New("bad format")

	// ErrIO reports a transient I/O failure: a read that may well
	// succeed if repeated (EIO from flaky media, an interrupted network
	// mount, an injected fault). It is the retryable class — the
	// faultio retry policy repeats exactly the operations whose errors
	// wrap it. Corrupt *content* is ErrFormat, not ErrIO: retrying
	// cannot fix bytes that parsed wrong.
	ErrIO = errors.New("transient i/o failure")

	// ErrPanic reports a panic recovered in a worker goroutine and
	// converted to an error so a parallel pipeline fails cleanly
	// instead of crashing the process. The wrapped message carries the
	// panic value.
	ErrPanic = errors.New("worker panic")

	// ErrOverload reports work refused by an admission policy: a full
	// ingest queue whose bounded wait expired, or a client shedding
	// policy dropping a batch so one hot producer cannot starve the
	// rest. The work was not performed and was not queued; retrying
	// later (or slowing down) may succeed. Distinct from ErrIO — the
	// transport is healthy, the service is protecting itself.
	ErrOverload = errors.New("overloaded")
)

// Canceled wraps the context's cause in ErrCanceled. Call it only when
// ctx is known to be done.
func Canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// Panicked wraps a recovered panic value in ErrPanic, naming the stage
// that hosted the worker. Use it from a deferred recover in goroutines
// whose failure must surface as an error on the main path.
func Panicked(stage string, v any) error {
	return fmt.Errorf("%s: panic: %v: %w", stage, v, ErrPanic)
}

// Check returns a wrapped ErrCanceled when ctx is done and nil
// otherwise. It is the single cancellation point used by every hot
// loop; on the context.Background() path (Done() == nil) it compiles
// to a select that always takes the default branch.
func Check(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return Canceled(ctx)
	default:
		return nil
	}
}
