package workloads

// Real AES-128 with encryption T-tables, the memory-access shape of the
// MiBench rijndael benchmark: four 1 KB lookup tables hammered per
// round plus the round-key schedule. The implementation is verified
// against crypto/aes in the tests.

// aesTables holds the generated S-box and the four round tables.
type aesTables struct {
	sbox [256]byte
	te   [4][256]uint32
}

// genAESTables derives the S-box from GF(2^8) arithmetic and builds the
// standard Te tables.
func genAESTables() *aesTables {
	t := &aesTables{}
	// Build log/alog tables over GF(2^8) with generator 3.
	var alog, log [256]byte
	p := byte(1)
	for i := 0; i < 255; i++ {
		alog[i] = p
		log[p] = byte(i)
		// p *= 3 in GF(2^8) with the AES polynomial 0x11B.
		p2 := p << 1
		if p&0x80 != 0 {
			p2 ^= 0x1B
		}
		p ^= p2
	}
	inv := func(x byte) byte {
		if x == 0 {
			return 0
		}
		return alog[(255-int(log[x]))%255]
	}
	for i := 0; i < 256; i++ {
		x := inv(byte(i))
		// Affine transform.
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		t.sbox[i] = y
	}
	xtime := func(b byte) byte {
		r := b << 1
		if b&0x80 != 0 {
			r ^= 0x1B
		}
		return r
	}
	for i := 0; i < 256; i++ {
		s := t.sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		t.te[0][i] = w
		t.te[1][i] = w>>8 | w<<24
		t.te[2][i] = w>>16 | w<<16
		t.te[3][i] = w>>24 | w<<8
	}
	return t
}

func rotl8(x byte, k uint) byte { return x<<k | x>>(8-k) }

// expandKey128 produces the 11 round keys (44 words) for AES-128.
func (t *aesTables) expandKey128(key [16]byte) [44]uint32 {
	var w [44]uint32
	for i := 0; i < 4; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(0x01000000)
	for i := 4; i < 44; i++ {
		tmp := w[i-1]
		if i%4 == 0 {
			tmp = t.subWord(tmp<<8|tmp>>24) ^ rcon
			rcon = uint32(xtimeByte(byte(rcon>>24))) << 24
		}
		w[i] = w[i-4] ^ tmp
	}
	return w
}

func xtimeByte(b byte) byte {
	r := b << 1
	if b&0x80 != 0 {
		r ^= 0x1B
	}
	return r
}

func (t *aesTables) subWord(w uint32) uint32 {
	return uint32(t.sbox[w>>24])<<24 | uint32(t.sbox[w>>16&0xFF])<<16 |
		uint32(t.sbox[w>>8&0xFF])<<8 | uint32(t.sbox[w&0xFF])
}

// encryptBlock encrypts one 16-byte block with the T-table rounds.
// When rec is non-nil, every table and key access is mirrored into the
// trace: teArr[k] holds table k, keyArr the round keys.
func (t *aesTables) encryptBlock(in [16]byte, w [44]uint32, rec func(table, entry int), key func(word int)) [16]byte {
	load := func(k, e int) uint32 {
		if rec != nil {
			rec(k, e)
		}
		return t.te[k][e]
	}
	kw := func(i int) uint32 {
		if key != nil {
			key(i)
		}
		return w[i]
	}
	var s [4]uint32
	for i := 0; i < 4; i++ {
		s[i] = uint32(in[4*i])<<24 | uint32(in[4*i+1])<<16 | uint32(in[4*i+2])<<8 | uint32(in[4*i+3])
		s[i] ^= kw(i)
	}
	for round := 1; round < 10; round++ {
		var n [4]uint32
		for i := 0; i < 4; i++ {
			n[i] = load(0, int(s[i]>>24)) ^
				load(1, int(s[(i+1)%4]>>16&0xFF)) ^
				load(2, int(s[(i+2)%4]>>8&0xFF)) ^
				load(3, int(s[(i+3)%4]&0xFF)) ^
				kw(4*round+i)
		}
		s = n
	}
	// Final round: S-box only (modelled as accesses to table 0's
	// underlying S-box region by the caller).
	var out [16]byte
	for i := 0; i < 4; i++ {
		v := uint32(t.sbox[s[i]>>24])<<24 |
			uint32(t.sbox[s[(i+1)%4]>>16&0xFF])<<16 |
			uint32(t.sbox[s[(i+2)%4]>>8&0xFF])<<8 |
			uint32(t.sbox[s[(i+3)%4]&0xFF])
		v ^= kw(40 + i)
		out[4*i] = byte(v >> 24)
		out[4*i+1] = byte(v >> 16)
		out[4*i+2] = byte(v >> 8)
		out[4*i+3] = byte(v)
	}
	return out
}
