package workloads

import (
	"fmt"
	"sort"

	"xoridx/internal/trace"
)

// Workload is one benchmark: a data-trace generator and, for the
// MediaBench/MiBench suite, an instruction-trace generator. scale >= 1
// multiplies the input size (1 reproduces the default experiments).
type Workload struct {
	Name  string
	Suite string // "media", "powerstone", "extra" or "micro"
	Desc  string // one-line description of the modelled program
	Data  func(scale int) *trace.Trace
	Instr func(scale int) *trace.Trace // nil where no code-layout model exists
}

// MediaSuite returns the ten MediaBench/MiBench-like benchmarks of
// paper Table 2, in the paper's row order.
func MediaSuite() []Workload {
	return []Workload{
		{Name: "dijkstra", Suite: "media", Desc: "dense-graph shortest paths: adjacency-row scans vs dist/visited arrays", Data: dijkstraData, Instr: dijkstraInstr},
		{Name: "fft", Suite: "media", Desc: "radix-2 FFT: bit-reversal + power-of-two-stride butterflies", Data: fftData, Instr: fftInstr},
		{Name: "jpeg_enc", Suite: "media", Desc: "8x8 DCT encoder over power-of-two-pitch image planes", Data: jpegEncData, Instr: jpegEncInstr},
		{Name: "jpeg_dec", Suite: "media", Desc: "8x8 IDCT decoder over power-of-two-pitch image planes", Data: jpegDecData, Instr: jpegDecInstr},
		{Name: "lame", Suite: "media", Desc: "MP3-style polyphase filterbank with large coefficient tables", Data: lameData, Instr: lameInstr},
		{Name: "rijndael", Suite: "media", Desc: "real AES-128 with 4 KB of T-tables and 16 KB-aliasing I/O buffers", Data: rijndaelData, Instr: rijndaelInstr},
		{Name: "susan", Suite: "media", Desc: "image smoothing: 37-pixel circular mask + brightness LUT", Data: susanData, Instr: susanInstr},
		{Name: "adpcm_dec", Suite: "media", Desc: "IMA ADPCM decoder streaming through page-aliased chunk buffers", Data: adpcmDecData, Instr: adpcmDecInstr},
		{Name: "adpcm_enc", Suite: "media", Desc: "IMA ADPCM encoder streaming through page-aliased chunk buffers", Data: adpcmEncData, Instr: adpcmEncInstr},
		{Name: "mpeg2_dec", Suite: "media", Desc: "motion compensation between two 16 KB-aliasing frame stores + IDCT", Data: mpeg2DecData, Instr: mpeg2Instr},
	}
}

// PowerStoneSuite returns the fourteen PowerStone-like benchmarks of
// paper Table 3, in the paper's row order.
func PowerStoneSuite() []Workload {
	return []Workload{
		{Name: "adpcm", Suite: "powerstone", Desc: "short IMA ADPCM encode pass", Data: psAdpcmData},
		{Name: "bcnt", Suite: "powerstone", Desc: "bit counting: chunked buffer vs page-aliased popcount LUT", Data: bcntData},
		{Name: "blit", Suite: "powerstone", Desc: "bitmap transfer between page-aliased framebuffers, byte-at-a-time", Data: blitData},
		{Name: "compress", Suite: "powerstone", Desc: "LZW compression with chained hash-table probes", Data: compressData},
		{Name: "crc", Suite: "powerstone", Desc: "table-driven CRC-32 over a reused I/O chunk", Data: crcData},
		{Name: "des", Suite: "powerstone", Desc: "Feistel cipher with eight S-box tables, chunked I/O", Data: desData},
		{Name: "engine", Suite: "powerstone", Desc: "engine-control map interpolation with an aliasing telemetry ring", Data: engineData},
		{Name: "fir", Suite: "powerstone", Desc: "32-tap FIR filter over page-aliased in/out chunks", Data: firData},
		{Name: "g3fax", Suite: "powerstone", Desc: "fax run-length decode: code tables + bursty row writes", Data: g3faxData},
		{Name: "jpeg", Suite: "powerstone", Desc: "small 8x8 DCT pipeline", Data: psJpegData},
		{Name: "pocsag", Suite: "powerstone", Desc: "pager decoding: BCH syndrome table lookups", Data: pocsagData},
		{Name: "qurt", Suite: "powerstone", Desc: "quadratic roots: register math, tiny footprint (all-zero row)", Data: qurtData},
		{Name: "ucbqsort", Suite: "powerstone", Desc: "pointer-record quicksort: pointer array vs records region", Data: ucbqsortData},
		{Name: "v42", Suite: "powerstone", Desc: "V.42bis dictionary compression: trie-node chasing", Data: v42Data},
	}
}

// ExtraSuite returns additional MediaBench-style benchmarks beyond the
// paper's ten Table 2 rows (regenerate with cmd/tables -table 2x).
func ExtraSuite() []Workload {
	return []Workload{
		{Name: "gsm", Suite: "extra", Desc: "GSM 06.10 shape: autocorrelation, Schur recursion, LTP lag search", Data: gsmData, Instr: gsmInstr},
		{Name: "g721", Suite: "extra", Desc: "G.721 ADPCM with adaptive pole/zero predictor state", Data: g721Data, Instr: g721Instr},
		{Name: "epic", Suite: "extra", Desc: "wavelet pyramid: row + pitch-stride column filter passes", Data: epicData, Instr: epicInstr},
		{Name: "pegwit", Suite: "extra", Desc: "GF(2^m) comb multiplication with a window table (EC crypto shape)", Data: pegwitData, Instr: pegwitInstr},
	}
}

// All returns every workload from all suites.
func All() []Workload {
	all := append(MediaSuite(), PowerStoneSuite()...)
	all = append(all, ExtraSuite()...)
	return append(all, MicroSuite()...)
}

// ByName looks a workload up across both suites.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown benchmark %q (have: %v)", name, Names())
}

// Names lists every benchmark name, sorted.
func Names() []string {
	var names []string
	for _, w := range All() {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return names
}
