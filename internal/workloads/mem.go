// Package workloads synthesises the benchmark traces of the paper's
// evaluation (§6): MediaBench/MiBench-like kernels for Table 2 and
// PowerStone-like kernels for Table 3.
//
// The paper traced ARM binaries with a cycle simulator; that substrate
// is unavailable, so each benchmark is re-implemented as an
// instrumented Go kernel running against a virtual address space (see
// DESIGN.md §2 for the substitution argument). The kernels perform the
// real computation — the FFT transforms, AES encrypts, quicksort sorts
// — while every load and store is mirrored into a trace.Trace at
// addresses assigned by a linker-like bump allocator. This preserves
// exactly what the optimization algorithm consumes: the conflict
// structure of the address stream (power-of-two strides, table banks,
// alternating working sets).
//
// Instruction traces come from a separate code-layout model in
// icache.go.
package workloads

import (
	"fmt"

	"xoridx/internal/trace"
)

// Space is a virtual address space with a bump allocator. Regions are
// aligned the way an embedded linker would align them (word alignment
// by default, stronger alignment on request), because alignment is
// what turns strides into conflicts.
type Space struct {
	next uint64
}

// NewSpace returns an address space starting at the given base
// (typically 0x1000 to keep address 0 unused).
func NewSpace(base uint64) *Space {
	return &Space{next: base}
}

// Alloc reserves size bytes aligned to align (a power of two) and
// returns the base address.
func (s *Space) Alloc(size int, align uint64) uint64 {
	if size < 0 {
		panic("workloads: negative allocation")
	}
	if align == 0 {
		align = 4
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("workloads: alignment %d not a power of two", align))
	}
	s.next = (s.next + align - 1) &^ (align - 1)
	base := s.next
	s.next += uint64(size)
	return base
}

// Recorder emits accesses into a trace and counts executed operations.
type Recorder struct {
	T *trace.Trace
}

// NewRecorder wraps a fresh trace with the given name.
func NewRecorder(name string) *Recorder {
	return &Recorder{T: &trace.Trace{Name: name}}
}

// Load records a data read at addr.
func (r *Recorder) Load(addr uint64) {
	r.T.Append(addr, trace.Read)
	r.T.Ops++
}

// Store records a data write at addr.
func (r *Recorder) Store(addr uint64) {
	r.T.Append(addr, trace.Write)
	r.T.Ops++
}

// Ops adds n non-memory operations (ALU work, branches) to the
// operation count used for the misses-per-K-op normalisation.
func (r *Recorder) Ops(n int) {
	r.T.Ops += uint64(n)
}

// Arr is a typed view of a region: element i lives at Base + i*Elem.
type Arr struct {
	Base uint64
	Elem int
	rec  *Recorder
}

// NewArr allocates count elements of elem bytes in the space.
func (r *Recorder) NewArr(s *Space, count, elem int, align uint64) Arr {
	if align < uint64(elem) {
		align = uint64(elem)
	}
	return Arr{Base: s.Alloc(count*elem, align), Elem: elem, rec: r}
}

// Load records a read of element i.
func (a Arr) Load(i int) { a.rec.Load(a.Base + uint64(i*a.Elem)) }

// Store records a write of element i.
func (a Arr) Store(i int) { a.rec.Store(a.Base + uint64(i*a.Elem)) }

// Addr returns the address of element i (for manual access patterns).
func (a Arr) Addr(i int) uint64 { return a.Base + uint64(i*a.Elem) }

// Mat is a row-major 2-D view: element (r, c) at Base + (r*Cols+c)*Elem.
type Mat struct {
	Arr
	Cols int
}

// NewMat allocates rows*cols elements.
func (r *Recorder) NewMat(s *Space, rows, cols, elem int, align uint64) Mat {
	return Mat{Arr: r.NewArr(s, rows*cols, elem, align), Cols: cols}
}

// Load records a read of (row, col).
func (m Mat) Load(row, col int) { m.Arr.Load(row*m.Cols + col) }

// Store records a write of (row, col).
func (m Mat) Store(row, col int) { m.Arr.Store(row*m.Cols + col) }
