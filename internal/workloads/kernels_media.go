package workloads

import (
	"xoridx/internal/trace"
)

// Data-trace generators for the MediaBench/MiBench-like suite used by
// paper Table 2. Each generator performs the real computation (checked
// in the tests) while mirroring its loads and stores into the trace.
// scale >= 1 multiplies the input size.

// dijkstraData: single-source shortest paths on a dense graph stored as
// an adjacency matrix — the MiBench dijkstra shape: row scans of the
// matrix interleaved with full scans of the dist/visited arrays.
func dijkstraData(scale int) *trace.Trace {
	const baseV = 112
	v := baseV * isqrtScale(scale)
	rowPad := 128 // elements per row after power-of-two padding (512 B)
	for rowPad < v {
		rowPad *= 2
	}
	rec := NewRecorder("dijkstra")
	sp := NewSpace(0x10000)
	adj := rec.NewMat(sp, v, rowPad, 4, 4096)
	dist := rec.NewArr(sp, v, 4, 4096)
	visited := rec.NewArr(sp, v, 4, 4096)

	// Real graph: deterministic weights.
	rng := xorshift32(0xD175)
	w := make([][]int, v)
	for i := range w {
		w[i] = make([]int, v)
		for j := range w[i] {
			if i != j {
				w[i][j] = 1 + rng.intn(100)
			}
			adj.Store(i, j)
		}
	}
	d := make([]int, v)
	vis := make([]bool, v)
	const inf = 1 << 30
	for i := range d {
		d[i] = inf
		dist.Store(i)
		visited.Store(i)
	}
	d[0] = 0
	dist.Store(0)
	for iter := 0; iter < v; iter++ {
		// Find unvisited min (linear scan, as MiBench does).
		u, best := -1, inf
		for i := 0; i < v; i++ {
			visited.Load(i)
			dist.Load(i)
			rec.Ops(2)
			if !vis[i] && d[i] < best {
				best, u = d[i], i
			}
		}
		if u < 0 {
			break
		}
		vis[u] = true
		visited.Store(u)
		for j := 0; j < v; j++ {
			adj.Load(u, j)
			rec.Ops(3)
			if w[u][j] > 0 && d[u]+w[u][j] < d[j] {
				d[j] = d[u] + w[u][j]
				dist.Load(j)
				dist.Store(j)
			}
		}
	}
	return rec.T
}

// fftData: iterative radix-2 FFT over separate re/im arrays — the
// MiBench fft shape: bit-reversal scatter then power-of-two-stride
// butterflies, the canonical conflict-miss generator.
func fftData(scale int) *trace.Trace {
	n := 1024 * scale
	rec := NewRecorder("fft")
	sp := NewSpace(0x20000)
	reA := rec.NewArr(sp, n, 4, 4096)
	imA := rec.NewArr(sp, n, 4, 4096)
	twA := rec.NewArr(sp, n/2, 4, 4096)

	re := make([]float64, n)
	im := make([]float64, n)
	rng := xorshift32(7)
	for i := range re {
		re[i] = float64(rng.intn(2000)-1000) / 1000
		reA.Store(i)
		imA.Store(i)
	}
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	// Mirror the real FFT's access pattern step by step.
	for i := 0; i < n; i++ {
		j := bitReverse(i, k)
		if j > i {
			reA.Load(i)
			reA.Load(j)
			reA.Store(i)
			reA.Store(j)
			imA.Load(i)
			imA.Load(j)
			imA.Store(i)
			imA.Store(j)
			rec.Ops(2)
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		for start := 0; start < n; start += size {
			for j := 0; j < half; j++ {
				twA.Load(j * (n / size)) // twiddle table lookup
				a, b := start+j, start+j+half
				reA.Load(a)
				reA.Load(b)
				imA.Load(a)
				imA.Load(b)
				reA.Store(a)
				reA.Store(b)
				imA.Store(a)
				imA.Store(b)
				rec.Ops(10)
			}
		}
	}
	fftInPlace(re, im) // the actual math, validated in tests
	return rec.T
}

// jpegBlocks is the shared 8×8 block pipeline for jpeg enc/dec: the
// image plane and the coefficient plane sit on page-aligned
// power-of-two pitches (256 B and 512 B), and the column DCT pass
// walks an in-memory workspace — so block-column accesses stride
// across rows exactly as libjpeg's do. Three frames are processed so
// compulsory misses amortise.
func jpegBlocks(name string, scale int, encode bool) *trace.Trace {
	wpx, hpx := 256, 64*isqrtScale(scale)
	const frames = 3
	rec := NewRecorder(name)
	sp := NewSpace(0x30000)
	img := rec.NewMat(sp, hpx, wpx, 1, 4096)  // 256 B pitch
	coef := rec.NewMat(sp, hpx, wpx, 2, 4096) // 512 B pitch
	quant := rec.NewArr(sp, 64, 2, 4096)      // tables on their own page
	zig := rec.NewArr(sp, 64, 1, 64)
	ws := rec.NewArr(sp, 64, 4, 256) // DCT workspace

	var block [64]float64
	var tmp [8]float64
	var tmp2 [8]float64
	for f := 0; f < frames; f++ {
		for by := 0; by+8 <= hpx; by += 8 {
			for bx := 0; bx+8 <= wpx; bx += 8 {
				// Row pass: read one image/coef row, write workspace.
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						if encode {
							img.Load(by+y, bx+x)
						} else {
							coef.Load(by+y, bx+x)
						}
						block[8*y+x] = float64((bx+x)*(by+y)%255) - 128
					}
					copy(tmp[:], block[8*y:8*y+8])
					if encode {
						dct8(tmp[:], tmp2[:])
					} else {
						idct8(tmp[:], tmp2[:])
					}
					copy(block[8*y:8*y+8], tmp2[:])
					for x := 0; x < 8; x++ {
						ws.Store(8*y + x)
					}
					rec.Ops(64)
				}
				// Column pass: stride-8 reads of the workspace.
				for x := 0; x < 8; x++ {
					for y := 0; y < 8; y++ {
						ws.Load(8*y + x)
						tmp[y] = block[8*y+x]
					}
					if encode {
						dct8(tmp[:], tmp2[:])
					} else {
						idct8(tmp[:], tmp2[:])
					}
					for y := 0; y < 8; y++ {
						block[8*y+x] = tmp2[y]
					}
					rec.Ops(64)
				}
				// Quantize + zigzag (encode) or dequant + store (decode).
				for i := 0; i < 64; i++ {
					quant.Load(i)
					if encode {
						zig.Load(i)
						coef.Store(by+zigzag8[i]/8, bx+zigzag8[i]%8)
					} else {
						img.Store(by+i/8, bx+i%8)
					}
					rec.Ops(3)
				}
			}
		}
	}
	return rec.T
}

func jpegEncData(scale int) *trace.Trace { return jpegBlocks("jpeg_enc", scale, true) }
func jpegDecData(scale int) *trace.Trace { return jpegBlocks("jpeg_dec", scale, false) }

// lameData: MP3-encoder-like polyphase/MDCT stage — windowed dot
// products over a sliding sample buffer with large coefficient tables,
// plus psychoacoustic table lookups.
func lameData(scale int) *trace.Trace {
	granules := 60 * scale
	const granule = 576
	const taps = 512
	rec := NewRecorder("lame")
	sp := NewSpace(0x40000)
	samples := rec.NewArr(sp, granule*4, 2, 4096)
	window := rec.NewArr(sp, taps, 4, 4096)
	subband := rec.NewMat(sp, 32, 18, 4, 1024)
	psy := rec.NewArr(sp, 1024, 4, 4096)

	acc := 0.0
	rng := xorshift32(99)
	for g := 0; g < granules; g++ {
		// Shift in new samples (ring buffer).
		for i := 0; i < granule; i++ {
			samples.Store((g*granule + i) % (granule * 4))
		}
		// 32 subbands × 18 output samples, each a windowed dot product.
		for sb := 0; sb < 32; sb++ {
			for k := 0; k < 18; k++ {
				for t := 0; t < taps; t += 16 { // unrolled stride
					window.Load(t)
					samples.Load((g*granule + sb*18 + k + t) % (granule * 4))
					acc += float64(t) * 1e-6
					rec.Ops(4)
				}
				subband.Store(sb, k)
			}
		}
		// Psychoacoustic lookups at FFT-bin-like positions.
		for b := 0; b < 64; b++ {
			psy.Load(rng.intn(1024))
			rec.Ops(6)
		}
	}
	_ = acc
	return rec.T
}

// rijndaelData: real AES-128 ECB encryption over a buffer with four
// 1 KB T-tables and the round-key array.
func rijndaelData(scale int) *trace.Trace {
	blocksN := 600 * scale
	const chunkBlocks = 64 // 1 KB I/O chunks, as a file cipher would use
	rec := NewRecorder("rijndael")
	sp := NewSpace(0x50000)
	var teArr [4]Arr
	for k := 0; k < 4; k++ {
		teArr[k] = rec.NewArr(sp, 256, 4, 1024) // 4 KB of contiguous T-tables
	}
	keyArr := rec.NewArr(sp, 44, 4, 256)
	// Input and output chunk buffers on separate 16 KB-aligned segments
	// (heap vs mmap'd file): they alias each other in every cache size
	// up to 16 KB — the conflict the paper removes completely at 16 KB.
	input := rec.NewArr(sp, chunkBlocks*16, 1, 16384)
	output := rec.NewArr(sp, chunkBlocks*16, 1, 16384)

	tables := genAESTables()
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	w := tables.expandKey128(key)
	var blk [16]byte
	for b := 0; b < blocksN; b++ {
		o := (b % chunkBlocks) * 16
		for i := 0; i < 16; i += 4 { // word-at-a-time I/O
			input.Load(o + i)
			blk[i] = byte(b + i)
		}
		enc := tables.encryptBlock(blk, w,
			func(table, entry int) { teArr[table].Load(entry); rec.Ops(1) },
			func(word int) { keyArr.Load(word) })
		for i := 0; i < 16; i += 4 {
			output.Store(o + i)
			_ = enc
		}
	}
	return rec.T
}

// susanData: SUSAN-like image smoothing — a circular neighbourhood mask
// over every pixel with a 256-entry brightness LUT.
func susanData(scale int) *trace.Trace {
	wpx, hpx := 160*isqrtScale(scale), 120*isqrtScale(scale)
	rec := NewRecorder("susan")
	sp := NewSpace(0x60000)
	img := rec.NewMat(sp, hpx, wpx, 1, 4096)
	lut := rec.NewArr(sp, 256, 1, 256)
	outImg := rec.NewMat(sp, hpx, wpx, 1, 4096)

	// 37-pixel circular mask offsets (SUSAN's classic mask).
	var mask [][2]int
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			if dx*dx+dy*dy <= 9 {
				mask = append(mask, [2]int{dy, dx})
			}
		}
	}
	for y := 3; y < hpx-3; y++ {
		for x := 3; x < wpx-3; x++ {
			img.Load(y, x) // centre
			for _, d := range mask {
				img.Load(y+d[0], x+d[1])
				lut.Load((x + y + d[0]*d[1]) & 0xFF)
				rec.Ops(2)
			}
			outImg.Store(y, x)
		}
	}
	return rec.T
}

// adpcmData: IMA ADPCM codec — a long stream processed through small
// page-aligned chunk buffers (the way the real codec reads through a
// fixed I/O buffer). The PCM buffer, the code buffer and the step
// table land on the same page offsets, so the hot loop conflicts in
// small caches; once everything fits, misses all but vanish — the
// paper's adpcm shape.
func adpcmData(name string, scale int, encode bool) *trace.Trace {
	samplesN := 40000 * scale
	const chunk = 1024
	rec := NewRecorder(name)
	sp := NewSpace(0x70000)
	pcmBuf := rec.NewArr(sp, chunk, 2, 4096)    // 2 KB, page aligned
	codeBuf := rec.NewArr(sp, chunk/2, 1, 4096) // next page: aliases pcmBuf mod 4 KB
	stepT := rec.NewArr(sp, 89, 2, 4096)        // tables on their own page
	idxT := rec.NewArr(sp, 16, 1, 64)

	pred, index := 0, 0
	rng := xorshift32(55)
	sVal := 0
	for i := 0; i < samplesN; i++ {
		j := i % chunk
		sVal += rng.intn(601) - 300 // random walk signal
		if sVal > 30000 {
			sVal = 30000
		}
		if sVal < -30000 {
			sVal = -30000
		}
		if encode {
			pcmBuf.Load(j)
			stepT.Load(index)
			var code int
			code, pred, index = imaEncodeStep(sVal, pred, index)
			idxT.Load(code & 0xF)
			if j%2 == 1 {
				codeBuf.Store(j / 2)
			}
			rec.Ops(8)
		} else {
			if j%2 == 0 {
				codeBuf.Load(j / 2)
			}
			stepT.Load(index)
			idxT.Load(i & 0xF)
			pred, index = imaDecodeStep(i&0xF, pred, index)
			pcmBuf.Store(j)
			rec.Ops(7)
		}
	}
	return rec.T
}

func adpcmEncData(scale int) *trace.Trace { return adpcmData("adpcm_enc", scale, true) }
func adpcmDecData(scale int) *trace.Trace { return adpcmData("adpcm_dec", scale, false) }

// mpeg2DecData: MPEG-2 decoder core — motion-compensated block copies
// between two frame buffers plus IDCT on residual blocks. The two
// power-of-two-pitch frames alternating with the coefficient buffer is
// a classic conflict pattern.
func mpeg2DecData(scale int) *trace.Trace {
	wpx, hpx := 256, 128*scale
	rec := NewRecorder("mpeg2_dec")
	sp := NewSpace(0x80000)
	// Reference and current frame buffers are separate 16 KB-aligned
	// allocations (two frame stores), so rows at equal offsets alias in
	// every cache size up to 16 KB.
	ref := rec.NewMat(sp, hpx, wpx, 1, 16384)
	cur := rec.NewMat(sp, hpx, wpx, 1, 16384)
	coefBuf := rec.NewArr(sp, 64, 2, 256)

	rng := xorshift32(123)
	var blk [64]float64
	var tmp, tmp2 [8]float64
	for by := 0; by+8 <= hpx; by += 8 {
		for bx := 0; bx+8 <= wpx; bx += 8 {
			// Motion vector within ±8 pixels.
			mvy := rng.intn(17) - 8
			mvx := rng.intn(17) - 8
			sy, sx := clamp(by+mvy, 0, hpx-8), clamp(bx+mvx, 0, wpx-8)
			// IDCT the residual.
			for i := 0; i < 64; i++ {
				coefBuf.Load(i)
				blk[i] = float64(rng.intn(64) - 32)
			}
			for r := 0; r < 8; r++ {
				copy(tmp[:], blk[8*r:8*r+8])
				idct8(tmp[:], tmp2[:])
				copy(blk[8*r:8*r+8], tmp2[:])
				rec.Ops(64)
			}
			// Predict + add residual, row by row.
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					ref.Load(sy+y, sx+x)
					cur.Store(by+y, bx+x)
					rec.Ops(2)
				}
			}
		}
	}
	return rec.T
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// isqrtScale maps a linear scale factor onto 2-D image dimensions.
func isqrtScale(scale int) int {
	if scale <= 1 {
		return 1
	}
	r := 1
	for r*r < scale {
		r++
	}
	return r
}
