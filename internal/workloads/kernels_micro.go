package workloads

import (
	"xoridx/internal/trace"
)

// Microbenchmarks: distilled access patterns used in the paper's
// motivation and in the cache-hashing literature. They are the
// cleanest demos for the CLI (tracegen -bench stride | xoridx) and
// double as positive/negative controls — "randwalk" has no linear
// conflict structure, so the optimizer should find nothing.

// strideData walks an array with a stride equal to a 4 KB cache's set
// count, the canonical conflict pattern (Rau [9]).
func strideData(scale int) *trace.Trace {
	rec := NewRecorder("stride")
	sp := NewSpace(0x100000)
	const elems = 64
	const strideBytes = 4096 // maps everything to one set in <=4 KB caches
	arr := rec.NewArr(sp, elems*strideBytes/4, 4, 4096)
	for rep := 0; rep < 300*scale; rep++ {
		for i := 0; i < elems; i++ {
			arr.Load(i * strideBytes / 4)
			rec.Ops(3)
		}
	}
	return rec.T
}

// pingpongData alternates between two page-aligned buffers that alias
// in every cache size up to their separation.
func pingpongData(scale int) *trace.Trace {
	rec := NewRecorder("pingpong")
	sp := NewSpace(0x110000)
	a := rec.NewArr(sp, 1024, 4, 16384)
	b := rec.NewArr(sp, 1024, 4, 16384) // next 16 KB boundary
	for rep := 0; rep < 60*scale; rep++ {
		for i := 0; i < 512; i++ {
			a.Load(i)
			b.Load(i) // same offset: same set under modulo
			b.Store(i)
			rec.Ops(3)
		}
	}
	return rec.T
}

// rowcolData writes a power-of-two-pitch matrix row-major and reads it
// back column-major: the transpose pattern whose column pass strides by
// the pitch.
func rowcolData(scale int) *trace.Trace {
	rec := NewRecorder("rowcol")
	sp := NewSpace(0x120000)
	const dim = 128
	m := rec.NewMat(sp, dim, dim, 4, 4096) // 512 B pitch
	for rep := 0; rep < 8*scale; rep++ {
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				m.Store(r, c)
				rec.Ops(1)
			}
		}
		for c := 0; c < dim; c++ {
			for r := 0; r < dim; r++ {
				m.Load(r, c)
				rec.Ops(1)
			}
		}
	}
	return rec.T
}

// randwalkData touches blocks uniformly at random: no linear conflict
// structure exists, so any index function performs alike — the
// negative control for the optimizer (the fallback guard should keep
// the conventional function or an equivalent one).
func randwalkData(scale int) *trace.Trace {
	rec := NewRecorder("randwalk")
	sp := NewSpace(0x130000)
	arr := rec.NewArr(sp, 1<<14, 4, 4096)
	rng := xorshift32(0xABCD)
	for i := 0; i < 120000*scale; i++ {
		arr.Load(rng.intn(1 << 14))
		rec.Ops(2)
	}
	return rec.T
}

// MicroSuite returns the distilled microbenchmarks.
func MicroSuite() []Workload {
	return []Workload{
		{Name: "stride", Suite: "micro", Desc: "cache-size-stride walk: every access one set under modulo", Data: strideData},
		{Name: "pingpong", Suite: "micro", Desc: "two 16 KB-aligned buffers alternating at equal offsets", Data: pingpongData},
		{Name: "rowcol", Suite: "micro", Desc: "row-major write, column-major read of a power-of-two-pitch matrix", Data: rowcolData},
		{Name: "randwalk", Suite: "micro", Desc: "uniform random touches: no linear structure (negative control)", Data: randwalkData},
	}
}
