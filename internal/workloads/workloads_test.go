package workloads

import (
	"bytes"
	"crypto/aes"
	"hash/crc32"
	"math"
	"sort"
	"testing"

	"xoridx/internal/trace"
)

func TestSpaceAllocator(t *testing.T) {
	s := NewSpace(0x1000)
	a := s.Alloc(100, 64)
	if a != 0x1000 {
		t.Fatalf("first alloc at %#x", a)
	}
	b := s.Alloc(10, 64)
	if b != 0x1080 { // 0x1064 rounded up to 64
		t.Fatalf("second alloc at %#x", b)
	}
	if b%64 != 0 {
		t.Fatal("alignment violated")
	}
	c := s.Alloc(4, 0) // default word alignment
	if c%4 != 0 || c < b+10 {
		t.Fatalf("third alloc at %#x", c)
	}
}

func TestSpacePanics(t *testing.T) {
	s := NewSpace(0)
	for name, fn := range map[string]func(){
		"negative size": func() { s.Alloc(-1, 4) },
		"bad align":     func() { s.Alloc(4, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRecorderAndArr(t *testing.T) {
	rec := NewRecorder("t")
	sp := NewSpace(0x1000)
	a := rec.NewArr(sp, 10, 4, 16)
	a.Load(2)
	a.Store(3)
	rec.Ops(5)
	if rec.T.Len() != 2 {
		t.Fatalf("accesses = %d", rec.T.Len())
	}
	if rec.T.Accesses[0].Addr != a.Base+8 || rec.T.Accesses[0].Kind != trace.Read {
		t.Fatalf("load wrong: %+v", rec.T.Accesses[0])
	}
	if rec.T.Accesses[1].Addr != a.Base+12 || rec.T.Accesses[1].Kind != trace.Write {
		t.Fatalf("store wrong: %+v", rec.T.Accesses[1])
	}
	if rec.T.Ops != 7 { // 2 accesses + 5 explicit
		t.Fatalf("ops = %d", rec.T.Ops)
	}
	if a.Addr(5) != a.Base+20 {
		t.Fatal("Addr wrong")
	}
}

func TestMatAddressing(t *testing.T) {
	rec := NewRecorder("t")
	sp := NewSpace(0)
	m := rec.NewMat(sp, 4, 8, 2, 16)
	m.Load(2, 3)
	want := m.Base + uint64((2*8+3)*2)
	if rec.T.Accesses[0].Addr != want {
		t.Fatalf("mat addr %#x, want %#x", rec.T.Accesses[0].Addr, want)
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	n := 64
	re := make([]float64, n)
	im := make([]float64, n)
	rng := xorshift32(1)
	for i := range re {
		re[i] = float64(rng.intn(200)-100) / 50
		im[i] = float64(rng.intn(200)-100) / 50
	}
	wantRe, wantIm := naiveDFT(re, im)
	fftInPlace(re, im)
	for i := range re {
		if math.Abs(re[i]-wantRe[i]) > 1e-9 || math.Abs(im[i]-wantIm[i]) > 1e-9 {
			t.Fatalf("FFT diverges from DFT at bin %d: (%g,%g) vs (%g,%g)", i, re[i], im[i], wantRe[i], wantIm[i])
		}
	}
}

func TestDCTRoundTrip(t *testing.T) {
	src := []float64{1, -3, 7, 2, 0, 5, -8, 4}
	freq := make([]float64, 8)
	back := make([]float64, 8)
	dct8(src, freq)
	idct8(freq, back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("IDCT(DCT(x)) != x at %d: %g vs %g", i, back[i], src[i])
		}
	}
	// DC coefficient of a constant signal carries all the energy.
	for i := range src {
		src[i] = 3
	}
	dct8(src, freq)
	if math.Abs(freq[0]-3*8/(2*math.Sqrt2)) > 1e-9 {
		t.Fatalf("DC coefficient %g", freq[0])
	}
	for i := 1; i < 8; i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC leakage at %d: %g", i, freq[i])
		}
	}
}

func TestAESMatchesCryptoAES(t *testing.T) {
	tables := genAESTables()
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	w := tables.expandKey128(key)
	ref, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	rng := xorshift32(5)
	for trial := 0; trial < 50; trial++ {
		var pt [16]byte
		for i := range pt {
			pt[i] = byte(rng.next())
		}
		got := tables.encryptBlock(pt, w, nil, nil)
		want := make([]byte, 16)
		ref.Encrypt(want, pt[:])
		if !bytes.Equal(got[:], want) {
			t.Fatalf("AES mismatch:\n pt  %x\n got %x\n want %x", pt, got, want)
		}
	}
}

func TestCRCMatchesStdlib(t *testing.T) {
	rng := xorshift32(7)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(rng.next())
	}
	if got, want := crcIEEE(data), crc32.ChecksumIEEE(data); got != want {
		t.Fatalf("CRC %#x, stdlib %#x", got, want)
	}
}

func TestADPCMRoundTripTracksSignal(t *testing.T) {
	// Encode then decode a smooth signal; the reconstruction must stay
	// within a reasonable error bound (ADPCM is lossy).
	pred, index := 0, 0
	dPred, dIndex := 0, 0
	maxErr := 0
	for i := 0; i < 2000; i++ {
		sample := int(8000 * math.Sin(float64(i)/50))
		var code int
		code, pred, index = imaEncodeStep(sample, pred, index)
		dPred, dIndex = imaDecodeStep(code, dPred, dIndex)
		if e := abs(dPred - sample); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 2000 {
		t.Fatalf("ADPCM reconstruction error %d too large", maxErr)
	}
	// Encoder and decoder state must stay in lockstep.
	if pred != dPred || index != dIndex {
		t.Fatal("encoder/decoder state diverged")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestQuicksortSorts(t *testing.T) {
	ucbqsortData(1)
	if !sort.IntsAreSorted(sortedCheck) {
		t.Fatal("ucbqsort did not sort")
	}
	if len(sortedCheck) != 6000 {
		t.Fatalf("sorted %d elements", len(sortedCheck))
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	for _, w := range All() {
		a := w.Data(1)
		b := w.Data(1)
		if a.Len() != b.Len() || a.Ops != b.Ops {
			t.Fatalf("%s: non-deterministic shape", w.Name)
		}
		for i := range a.Accesses {
			if a.Accesses[i] != b.Accesses[i] {
				t.Fatalf("%s: access %d differs between runs", w.Name, i)
			}
		}
	}
}

func TestAllWorkloadsProduceSaneTraces(t *testing.T) {
	for _, w := range All() {
		tr := w.Data(1)
		if tr.Name != w.Name {
			t.Errorf("%s: trace named %q", w.Name, tr.Name)
		}
		if tr.Len() < 10000 {
			t.Errorf("%s: only %d accesses", w.Name, tr.Len())
		}
		if tr.Ops < uint64(tr.Len()) {
			t.Errorf("%s: ops %d < accesses %d", w.Name, tr.Ops, tr.Len())
		}
		s := tr.ComputeStats()
		if s.Reads == 0 {
			t.Errorf("%s: no reads", w.Name)
		}
		if s.Fetches != 0 {
			t.Errorf("%s: data trace contains fetches", w.Name)
		}
		if w.Instr != nil {
			it := w.Instr(1)
			is := it.ComputeStats()
			if is.Fetches != int64(it.Len()) || is.Reads != 0 || is.Writes != 0 {
				t.Errorf("%s: instruction trace has non-fetch accesses", w.Name)
			}
			if it.Len() < 10000 {
				t.Errorf("%s: only %d fetches", w.Name, it.Len())
			}
		}
	}
}

func TestScaleGrowsTraces(t *testing.T) {
	for _, name := range []string{"fft", "crc", "blit"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		small := w.Data(1).Len()
		big := w.Data(2).Len()
		if big <= small {
			t.Errorf("%s: scale 2 trace (%d) not larger than scale 1 (%d)", name, big, small)
		}
	}
}

func TestByNameAndSuites(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must fail")
	}
	w, err := ByName("fft")
	if err != nil || w.Name != "fft" || w.Suite != "media" {
		t.Fatalf("ByName(fft) = %+v, %v", w, err)
	}
	if len(MediaSuite()) != 10 {
		t.Fatalf("media suite has %d entries", len(MediaSuite()))
	}
	if len(PowerStoneSuite()) != 14 {
		t.Fatalf("powerstone suite has %d entries", len(PowerStoneSuite()))
	}
	for _, w := range PowerStoneSuite() {
		if w.Instr != nil {
			t.Errorf("%s: powerstone workload has instruction generator", w.Name)
		}
		if w.Suite != "powerstone" {
			t.Errorf("%s: suite label %q", w.Name, w.Suite)
		}
	}
	if len(Names()) != 32 {
		t.Fatalf("Names() has %d entries", len(Names()))
	}
}

func TestProgramLayout(t *testing.T) {
	p := NewProgram("t", 0x1000)
	f1 := p.Func("a", 100) // rounded to 104... no: 100 -> 100 is 4-aligned
	if f1.Addr != 0x1000 {
		t.Fatalf("f1 at %#x", f1.Addr)
	}
	p.Gap(60)
	f2 := p.Func("b", 50)
	if f2.Addr != (0x1000+100+60+15)&^15 {
		t.Fatalf("f2 at %#x", f2.Addr)
	}
	if f2.Size != 52 { // rounded to word
		t.Fatalf("f2 size %d", f2.Size)
	}
	f1.Run()
	if got := p.Trace().Len(); got != 25 {
		t.Fatalf("run emitted %d fetches, want 25", got)
	}
	if p.Trace().Accesses[0].Addr != 0x1000 || p.Trace().Accesses[24].Addr != 0x1000+96 {
		t.Fatal("fetch addresses wrong")
	}
}

func TestRunPartBounds(t *testing.T) {
	p := NewProgram("t", 0)
	f := p.Func("a", 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.RunPart(32, 64)
}

func TestXorshiftDeterministicNonzero(t *testing.T) {
	var x xorshift32
	first := x.next() // zero state must self-seed
	if first == 0 {
		t.Fatal("xorshift produced 0 from zero state")
	}
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		v := x.next()
		if v == 0 {
			t.Fatal("xorshift emitted 0")
		}
		seen[v] = true
	}
	if len(seen) < 990 {
		t.Fatalf("only %d distinct values in 1000 draws", len(seen))
	}
}

func TestBitReverse(t *testing.T) {
	if bitReverse(0b001, 3) != 0b100 {
		t.Fatal("bitReverse wrong")
	}
	if bitReverse(0b110, 3) != 0b011 {
		t.Fatal("bitReverse wrong")
	}
	for i := 0; i < 64; i++ {
		if bitReverse(bitReverse(i, 6), 6) != i {
			t.Fatal("bitReverse not an involution")
		}
	}
}

func TestExtraSuite(t *testing.T) {
	if len(ExtraSuite()) != 4 {
		t.Fatalf("extra suite has %d entries", len(ExtraSuite()))
	}
	for _, w := range ExtraSuite() {
		if w.Suite != "extra" {
			t.Errorf("%s: suite label %q", w.Name, w.Suite)
		}
		if w.Instr == nil {
			t.Errorf("%s: extra suite should model instruction traces", w.Name)
		}
		tr := w.Data(1)
		if tr.Len() < 10000 {
			t.Errorf("%s: only %d accesses", w.Name, tr.Len())
		}
	}
}

func TestMicroSuite(t *testing.T) {
	if len(MicroSuite()) != 4 {
		t.Fatalf("micro suite has %d entries", len(MicroSuite()))
	}
	for _, w := range MicroSuite() {
		tr := w.Data(1)
		if tr.Len() < 10000 {
			t.Errorf("%s: only %d accesses", w.Name, tr.Len())
		}
		if w.Suite != "micro" {
			t.Errorf("%s: suite %q", w.Name, w.Suite)
		}
	}
}

func TestRandwalkIsANegativeControl(t *testing.T) {
	// randwalk has no linear conflict structure; stride is all
	// structure. This is the pair of controls the optimizer tests use.
	rw, err := ByName("randwalk")
	if err != nil {
		t.Fatal(err)
	}
	st, err := ByName("stride")
	if err != nil {
		t.Fatal(err)
	}
	rwStats := rw.Data(1).ComputeStats()
	stStats := st.Data(1).ComputeStats()
	if rwStats.UniqueBlocks < 10000 {
		t.Errorf("randwalk should touch a wide universe: %d blocks", rwStats.UniqueBlocks)
	}
	if stStats.UniqueBlocks != 64 {
		t.Errorf("stride touches %d blocks, want 64", stStats.UniqueBlocks)
	}
}

func TestEveryWorkloadDescribed(t *testing.T) {
	for _, w := range All() {
		if w.Desc == "" {
			t.Errorf("%s: missing description", w.Name)
		}
	}
}
