package workloads

import (
	"xoridx/internal/trace"
)

// Instruction-trace generators for the Table 2 instruction-cache rows.
//
// Each benchmark gets a code layout: hot functions scattered across a
// large text segment at the absolute addresses a linker gave them
// (FuncAt), with the cold bulk of the binary in between. I-cache
// conflicts arise when hot functions alias in the index — the exact
// mechanism XOR-indexing targets. Because congruence mod 1 KB is
// implied by congruence mod 4 KB, a colliding pair hurts every cache
// it does not fit side-by-side in; the small cache additionally
// suffers capacity misses (hot loops larger than 1 KB) that dilute the
// removable fraction, reproducing the paper's pattern of removal
// percentages that grow with cache size.

// dijkstraInstr: compact solver; the scan and relax helpers collide
// with the main loop mod 1 KB and mod 4 KB, everything fits in 16 KB.
func dijkstraInstr(scale int) *trace.Trace {
	p := NewProgram("dijkstra", 0)
	main := p.FuncAt("main_loop", 320, 0x8000)
	relax := p.FuncAt("relax", 224, 0x8400)             // ≡ main mod 1 KB
	minScan := p.FuncAt("min_scan", 192, 0x8000+0x1080) // ≡ main+128 mod 4 KB
	v := 112 * isqrtScale(scale)
	Loop(v, func() {
		main.RunPart(0, 64)
		Loop(6, func() { minScan.Run() })
		Loop(6, func() { relax.Run() })
		main.RunPart(64, 64)
	})
	return p.Trace()
}

// fftInstr: a large unrolled butterfly body (capacity pressure at
// 1 KB) and a sin/cos helper that collides with it mod 4 KB and mod
// 16 KB — the paper's fft keeps sizeable removable misses even at
// 16 KB.
func fftInstr(scale int) *trace.Trace {
	p := NewProgram("fft", 0)
	butterfly := p.FuncAt("butterfly_unrolled", 1280, 0x8000)
	twiddle := p.FuncAt("twiddle", 512, 0x8000+0x800)
	driver := p.FuncAt("stage_driver", 256, 0x8000+0x1100)
	sincos := p.FuncAt("sincos", 384, 0x8000+0x4040) // ≡ butterfly+64 mod 16 KB (and 4 KB)
	n := 1024 * scale
	stages := 0
	for 1<<uint(stages) < n {
		stages++
	}
	Loop(stages, func() {
		driver.Run()
		Loop(n/16, func() {
			butterfly.Run()
			twiddle.RunPart(0, 256)
			sincos.Run()
		})
	})
	return p.Trace()
}

// jpegInstr is shared by enc/dec with different hot-path mixes: the
// DCT kernel collides with the block loop mod 4 KB, the quantiser with
// both mod 16 KB.
func jpegInstr(name string, scale int, encode bool) *trace.Trace {
	p := NewProgram(name, 0)
	blockLoop := p.FuncAt("block_loop", 288, 0x8000)
	huff := p.FuncAt("huffman", 512, 0x8000+0x0C40)
	dct := p.FuncAt("dct8", 416, 0x8000+0x1040)    // ≡ blockLoop+64 mod 4 KB
	quant := p.FuncAt("quant", 288, 0x8000+0x4100) // ≡ blockLoop+256 mod 16 KB
	wpx, hpx := 256, 64*isqrtScale(scale)
	blocks := 3 * (wpx / 8) * (hpx / 8)
	Loop(blocks, func() {
		blockLoop.RunPart(0, 96)
		Loop(16, func() { dct.Run() })
		quant.Run()
		if encode {
			huff.Run()
		} else {
			huff.RunPart(0, 256)
		}
		blockLoop.RunPart(96, 96)
	})
	return p.Trace()
}

func jpegEncInstr(scale int) *trace.Trace { return jpegInstr("jpeg_enc", scale, true) }
func jpegDecInstr(scale int) *trace.Trace { return jpegInstr("jpeg_dec", scale, false) }

// lameInstr: ~4 KB of hot code scattered over 40 KB — pure capacity at
// 1 KB (little removable), cross-function aliasing at 4 KB and a
// mod-16 KB pair for the large cache.
func lameInstr(scale int) *trace.Trace {
	p := NewProgram("lame", 0)
	filter := p.FuncAt("polyphase", 1024, 0x10000)
	quantLoop := p.FuncAt("quant_loop", 768, 0x10000+0x2400)
	mdct := p.FuncAt("mdct", 896, 0x10000+0x4200) // ≡ filter+512 mod 16 KB
	psy := p.FuncAt("psymodel", 1152, 0x10000+0x9100)
	granules := 60 * scale
	Loop(granules, func() {
		Loop(4, func() {
			filter.Run()
			mdct.Run()
		})
		psy.Run()
		Loop(3, func() { quantLoop.Run() })
	})
	return p.Trace()
}

// rijndaelInstr: the unrolled cipher — a straight-line body larger
// than 4 KB (capacity misses at 1/4 KB no hash can fix) plus a key-mix
// helper a 16 KB-aliasing gap away (the conflict the paper removes
// completely at 16 KB).
func rijndaelInstr(scale int) *trace.Trace {
	p := NewProgram("rijndael", 0)
	rounds := p.FuncAt("encrypt_unrolled", 5632, 0x8000)
	keymix := p.FuncAt("key_mix", 512, 0x8000+0x4100) // ≡ rounds+256 mod 16 KB
	blocksN := 600 * scale
	Loop(blocksN, func() {
		keymix.Run()
		rounds.Run()
	})
	return p.Trace()
}

// susanInstr: a >1 KB smoothing loop (1 KB cache thrashes on
// capacity), with the brightness-LUT helper colliding mod 4 KB and an
// edge-case path colliding mod 16 KB.
func susanInstr(scale int) *trace.Trace {
	p := NewProgram("susan", 0)
	maskLoop := p.FuncAt("mask_loop", 832, 0x8000)
	border := p.FuncAt("border", 320, 0x8000+0x0700)
	lutFn := p.FuncAt("brightness_lut", 256, 0x8000+0x1080) // ≡ maskLoop+128 mod 4 KB
	edge := p.FuncAt("edge_case", 192, 0x8000+0x4040)       // ≡ maskLoop+64 mod 16 KB
	wpx, hpx := 160*isqrtScale(scale), 120*isqrtScale(scale)
	pixels := (wpx - 6) * (hpx - 6)
	Loop(pixels/4, func() { // 4-pixel unrolled
		maskLoop.Run()
		lutFn.RunPart(0, 128)
		edge.RunPart(0, 64)
	})
	Loop(hpx, func() { border.Run() })
	return p.Trace()
}

// adpcmInstr: small codec whose two hot functions collide mod 4 KB; a
// per-chunk refill function pushes the 1 KB footprint past capacity so
// the small cache's misses are mostly unavoidable (the paper's small
// 1 KB removal with near-zero 4/16 KB base).
func adpcmInstr(name string, scale int, encode bool) *trace.Trace {
	p := NewProgram(name, 0)
	codec := p.FuncAt("codec_loop", 416, 0x8000)
	refill := p.FuncAt("refill", 448, 0x8000+0x0600)
	clamp := p.FuncAt("clamp_helpers", 192, 0x8000+0x1020) // ≡ codec+32 mod 4 KB
	samples := 40000 * scale
	per := 16
	if !encode {
		per = 24
	}
	Loop(samples/per, func() {
		codec.Run()
		clamp.RunPart(0, 96)
	})
	Loop(samples/1024, func() { refill.Run() })
	return p.Trace()
}

func adpcmEncInstr(scale int) *trace.Trace { return adpcmInstr("adpcm_enc", scale, true) }
func adpcmDecInstr(scale int) *trace.Trace { return adpcmInstr("adpcm_dec", scale, false) }

// mpeg2Instr: decoder with VLC, IDCT and motion-compensation kernels;
// IDCT collides with VLC mod 4 KB, motion compensation with VLC mod
// 16 KB.
func mpeg2Instr(scale int) *trace.Trace {
	p := NewProgram("mpeg2_dec", 0)
	vlc := p.FuncAt("vlc_decode", 704, 0x8000)
	idct := p.FuncAt("idct_col", 576, 0x8000+0x10C0)  // ≡ vlc+192 mod 4 KB
	mc := p.FuncAt("motion_comp", 832, 0x8000+0x4080) // ≡ vlc+128 mod 16 KB
	wpx, hpx := 256, 128*scale
	blocks := (wpx / 8) * (hpx / 8)
	Loop(blocks, func() {
		vlc.Run()
		Loop(2, func() { idct.Run() })
		mc.Run()
	})
	return p.Trace()
}
