package workloads

import "math"

// This file holds the reference signal-processing primitives the
// kernels are built on. They compute real results (verified against
// naive references in the tests) while the kernels mirror their memory
// behaviour into the trace.

// bitReverse reverses the low bits of x for an n-point FFT (n = 2^k).
func bitReverse(x, k int) int {
	r := 0
	for i := 0; i < k; i++ {
		r = r<<1 | (x & 1)
		x >>= 1
	}
	return r
}

// fftInPlace computes an in-place iterative radix-2 decimation-in-time
// FFT over re/im (length must be a power of two).
func fftInPlace(re, im []float64) {
	n := len(re)
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	if 1<<uint(k) != n {
		panic("workloads: FFT length not a power of two")
	}
	for i := 0; i < n; i++ {
		j := bitReverse(i, k)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for j := 0; j < half; j++ {
				wr := math.Cos(step * float64(j))
				wi := math.Sin(step * float64(j))
				a, b := start+j, start+j+half
				tr := wr*re[b] - wi*im[b]
				ti := wr*im[b] + wi*re[b]
				re[b], im[b] = re[a]-tr, im[a]-ti
				re[a], im[a] = re[a]+tr, im[a]+ti
			}
		}
	}
}

// naiveDFT is the O(n²) reference used by the tests.
func naiveDFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	or := make([]float64, n)
	oi := make([]float64, n)
	for kk := 0; kk < n; kk++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(kk) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			or[kk] += re[t]*c - im[t]*s
			oi[kk] += re[t]*s + im[t]*c
		}
	}
	return or, oi
}

// dct8 computes the 8-point DCT-II of src into dst (orthonormal scale).
func dct8(src, dst []float64) {
	for k := 0; k < 8; k++ {
		sum := 0.0
		for x := 0; x < 8; x++ {
			sum += src[x] * math.Cos((2*float64(x)+1)*float64(k)*math.Pi/16)
		}
		scale := 0.5
		if k == 0 {
			scale = 1 / (2 * math.Sqrt2)
		}
		dst[k] = sum * scale
	}
}

// idct8 inverts dct8.
func idct8(src, dst []float64) {
	for x := 0; x < 8; x++ {
		sum := src[0] / (2 * math.Sqrt2)
		for k := 1; k < 8; k++ {
			sum += src[k] * 0.5 * math.Cos((2*float64(x)+1)*float64(k)*math.Pi/16)
		}
		dst[x] = sum
	}
}

// zigzag8 is the standard JPEG zigzag scan order for an 8×8 block.
var zigzag8 = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// jpegQuantLuma is the Annex K luminance quantization table.
var jpegQuantLuma = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// imaIndexTable and imaStepTable are the standard IMA ADPCM tables.
var imaIndexTable = [16]int{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

var imaStepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// imaEncodeStep encodes one 16-bit sample against the predictor state,
// returning the 4-bit code and the updated (predictor, index).
func imaEncodeStep(sample int, pred int, index int) (code int, newPred int, newIndex int) {
	step := imaStepTable[index]
	diff := sample - pred
	code = 0
	if diff < 0 {
		code = 8
		diff = -diff
	}
	if diff >= step {
		code |= 4
		diff -= step
	}
	if diff >= step/2 {
		code |= 2
		diff -= step / 2
	}
	if diff >= step/4 {
		code |= 1
	}
	newPred, newIndex = imaDecodeStep(code, pred, index)
	return code, newPred, newIndex
}

// imaDecodeStep decodes one 4-bit code, returning updated state.
func imaDecodeStep(code int, pred int, index int) (newPred int, newIndex int) {
	step := imaStepTable[index]
	diff := step >> 3
	if code&4 != 0 {
		diff += step
	}
	if code&2 != 0 {
		diff += step >> 1
	}
	if code&1 != 0 {
		diff += step >> 2
	}
	if code&8 != 0 {
		pred -= diff
	} else {
		pred += diff
	}
	if pred > 32767 {
		pred = 32767
	}
	if pred < -32768 {
		pred = -32768
	}
	index += imaIndexTable[code]
	if index < 0 {
		index = 0
	}
	if index > 88 {
		index = 88
	}
	return pred, index
}

// xorshift32 is the deterministic PRNG used by every kernel so traces
// are reproducible without seeding from the environment.
type xorshift32 uint32

func (x *xorshift32) next() uint32 {
	v := uint32(*x)
	if v == 0 {
		v = 0x9E3779B9
	}
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*x = xorshift32(v)
	return v
}

// intn returns a deterministic pseudo-random int in [0, n).
func (x *xorshift32) intn(n int) int {
	return int(x.next() % uint32(n))
}
