package workloads

import (
	"xoridx/internal/trace"
)

// Data-trace generators for the PowerStone-like suite used by paper
// Table 3 (§6.1). PowerStone kernels are short; the paper notes the
// optimal bit-selecting search was only feasible on them — these
// generators keep traces small accordingly.

// psAdpcmData: PowerStone adpcm — the same IMA codec, short input.
func psAdpcmData(scale int) *trace.Trace {
	t := adpcmData("adpcm", scale, true)
	return t
}

// bcntData: bit counting over a buffer with a 256-entry popcount LUT.
func bcntData(scale int) *trace.Trace {
	words := 8000 * scale
	const chunk = 512 // words per reused I/O chunk (2 KB)
	rec := NewRecorder("bcnt")
	sp := NewSpace(0x11000)
	buf := rec.NewArr(sp, chunk, 4, 4096)
	lut := rec.NewArr(sp, 256, 1, 4096) // next page: aliases buf mod 4 KB

	total := 0
	rng := xorshift32(2)
	for i := 0; i < words; i++ {
		buf.Load(i % chunk)
		v := rng.next()
		for b := 0; b < 4; b++ {
			lut.Load(int(v >> (8 * uint(b)) & 0xFF))
			total += popcount8(byte(v >> (8 * uint(b))))
			rec.Ops(2)
		}
	}
	_ = total
	return rec.T
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// blitData: bitmap block transfer — copying a rectangle between two
// framebuffers whose pitches are powers of two, the classic
// row-stride conflict pattern.
func blitData(scale int) *trace.Trace {
	const pitch = 256 // bytes per row in both buffers
	rows := 96 * scale
	rec := NewRecorder("blit")
	sp := NewSpace(0x12000)
	src := rec.NewMat(sp, rows, pitch, 1, 4096)
	dst := rec.NewMat(sp, rows, pitch, 1, 4096)

	for pass := 0; pass < 2; pass++ {
		for y := 0; y < rows; y++ {
			// Byte-at-a-time transfer with masking, as bitmap blits do:
			// each 4-byte block is touched four times with an aliasing
			// destination access in between — the removable conflict.
			for x := 0; x < 100; x++ {
				src.Load(y, x)
				dst.Load(y, x) // read-modify-write for the bit mask
				dst.Store(y, x)
				rec.Ops(3)
			}
		}
	}
	return rec.T
}

// compressData: LZW-style compression — hash-table probing with
// chained collisions over a code table.
func compressData(scale int) *trace.Trace {
	inputN := 20000 * scale
	const htabSize = 4096
	rec := NewRecorder("compress")
	sp := NewSpace(0x13000)
	input := rec.NewArr(sp, 4096, 1, 4096) // reused 4 KB input chunk
	htab := rec.NewArr(sp, htabSize, 4, 4096)
	codetab := rec.NewArr(sp, htabSize, 2, 4096)
	output := rec.NewArr(sp, 2048, 2, 4096) // reused output chunk

	table := make(map[uint32]int)
	nextCode := 256
	prefix := uint32(0)
	rng := xorshift32(11)
	outN := 0
	for i := 0; i < inputN; i++ {
		input.Load(i % 4096)
		c := uint32(rng.intn(64)) // compressible alphabet
		key := prefix<<8 | c
		h := int(key*2654435761) & (htabSize - 1)
		// Probe the chained hash table as compress does.
		for probe := 0; ; probe++ {
			htab.Load(h)
			rec.Ops(3)
			if _, ok := table[key]; ok && probe == 0 {
				codetab.Load(h)
				break
			}
			if probe >= 2 { // insert after a short chain
				if nextCode < htabSize {
					table[key] = nextCode
					nextCode++
					htab.Store(h)
					codetab.Store(h)
				}
				output.Store(outN % 2048)
				outN++
				prefix = c
				break
			}
			h = (h + 1) & (htabSize - 1)
		}
		if code, ok := table[key]; ok {
			prefix = uint32(code)
		}
	}
	return rec.T
}

// crcData: table-driven CRC-32 over a buffer (verified against
// hash/crc32 in the tests).
func crcData(scale int) *trace.Trace {
	n := 30000 * scale
	const chunk = 2048 // bytes per reused I/O chunk
	rec := NewRecorder("crc")
	sp := NewSpace(0x14000)
	buf := rec.NewArr(sp, chunk, 1, 4096)
	tab := rec.NewArr(sp, 256, 4, 1024)

	crc := ^uint32(0)
	rng := xorshift32(3)
	for i := 0; i < n; i++ {
		buf.Load(i % chunk)
		b := byte(rng.next())
		idx := (crc ^ uint32(b)) & 0xFF
		tab.Load(int(idx))
		crc = crc>>8 ^ crcTable()[idx]
		rec.Ops(3)
	}
	return rec.T
}

var crcTab [256]uint32
var crcTabInit bool

// crcTable builds the IEEE CRC-32 table once.
func crcTable() *[256]uint32 {
	if !crcTabInit {
		for i := range crcTab {
			c := uint32(i)
			for k := 0; k < 8; k++ {
				if c&1 != 0 {
					c = 0xEDB88320 ^ c>>1
				} else {
					c >>= 1
				}
			}
			crcTab[i] = c
		}
		crcTabInit = true
	}
	return &crcTab
}

// crcIEEE is the reference the tests compare against hash/crc32.
func crcIEEE(data []byte) uint32 {
	crc := ^uint32(0)
	t := crcTable()
	for _, b := range data {
		crc = crc>>8 ^ t[(crc^uint32(b))&0xFF]
	}
	return ^crc
}

// desData: DES-like Feistel cipher — eight 64-entry S-box tables hit
// per round, 16 rounds per block.
func desData(scale int) *trace.Trace {
	blocksN := 1500 * scale
	rec := NewRecorder("des")
	sp := NewSpace(0x15000)
	var sbox [8]Arr
	for i := range sbox {
		sbox[i] = rec.NewArr(sp, 64, 1, 256)
	}
	const chunkBlocks = 128 // 1 KB reused I/O chunks
	input := rec.NewArr(sp, chunkBlocks*8, 1, 4096)
	output := rec.NewArr(sp, chunkBlocks*8, 1, 4096)
	keys := rec.NewArr(sp, 16*2, 4, 256)

	for b := 0; b < blocksN; b++ {
		o := (b % chunkBlocks) * 8
		l := uint32(b * 2654435761)
		r := uint32(b ^ 0xDEADBEEF)
		for i := 0; i < 8; i += 4 {
			input.Load(o + i)
		}
		for round := 0; round < 16; round++ {
			keys.Load(round * 2)
			keys.Load(round*2 + 1)
			f := uint32(0)
			for s := 0; s < 8; s++ {
				idx := int(r>>(uint(s)*4)&0x3F) ^ round
				sbox[s].Load(idx & 0x3F)
				f = f<<4 | uint32(idx&0xF)
				rec.Ops(3)
			}
			l, r = r, l^f
		}
		for i := 0; i < 8; i += 4 {
			output.Store(o + i)
		}
		_ = l
	}
	return rec.T
}

// engineData: engine-controller map interpolation — bilinear lookups
// into 2-D calibration tables driven by a slowly-varying operating
// point.
func engineData(scale int) *trace.Trace {
	steps := 15000 * scale
	const dim = 16
	rec := NewRecorder("engine")
	sp := NewSpace(0x16000)
	sparkMap := rec.NewMat(sp, dim, dim, 2, 4096)
	fuelMap := rec.NewMat(sp, dim, dim, 2, 1024)
	rpmAxis := rec.NewArr(sp, dim, 2, 64)
	loadAxis := rec.NewArr(sp, dim, 2, 64)
	state := rec.NewArr(sp, 32, 4, 128)
	// Small telemetry ring on its own page: it lands on the same page
	// offsets as the start of the spark map, so the per-step log write
	// evicts hot map rows under modulo indexing — a conflict that both
	// XOR indexing and associativity remove (the paper's engine row).
	logBuf := rec.NewArr(sp, 64, 4, 4096)

	rng := xorshift32(17)
	rpm, load := 800.0, 20.0
	for t := 0; t < steps; t++ {
		rpm += float64(rng.intn(201)-100) * 0.5
		load += float64(rng.intn(21)-10) * 0.3
		rpm = clampF(rpm, 600, 7000)
		load = clampF(load, 0, 100)
		ri := int(rpm/7000*float64(dim-1)) % (dim - 1)
		li := int(load/100*float64(dim-1)) % (dim - 1)
		rpmAxis.Load(ri)
		rpmAxis.Load(ri + 1)
		loadAxis.Load(li)
		loadAxis.Load(li + 1)
		// Bilinear: 4 corners from each map.
		for _, m := range []Mat{sparkMap, fuelMap} {
			m.Load(ri, li)
			m.Load(ri+1, li)
			m.Load(ri, li+1)
			m.Load(ri+1, li+1)
		}
		state.Load(t & 31)
		state.Store(t & 31)
		logBuf.Store(t & 63)
		rec.Ops(20)
	}
	return rec.T
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// firData: 32-tap FIR filter — sliding dot product of a sample ring
// against a coefficient array.
func firData(scale int) *trace.Trace {
	n := 12000 * scale
	const taps = 32
	const chunk = 1024 // samples per reused I/O chunk (2 KB)
	rec := NewRecorder("fir")
	sp := NewSpace(0x17000)
	in := rec.NewArr(sp, chunk, 2, 4096)
	coeff := rec.NewArr(sp, taps, 2, 256)
	out := rec.NewArr(sp, chunk, 2, 4096) // next page: aliases in mod 4 KB

	for i := taps; i < n; i++ {
		j := i % chunk
		for t := 0; t < taps; t++ {
			if j-t >= 0 {
				in.Load(j - t)
			} else {
				in.Load(chunk + j - t)
			}
			coeff.Load(t)
			rec.Ops(2)
		}
		out.Store(j)
	}
	return rec.T
}

// g3faxData: Group-3 fax decoding — run-length codes expanded into
// image rows; code-table lookups plus bursty sequential writes.
func g3faxData(scale int) *trace.Trace {
	rows := 120 * scale
	const width = 1728 / 8 // bytes per row
	rec := NewRecorder("g3fax")
	sp := NewSpace(0x18000)
	codes := rec.NewArr(sp, 2048, 2, 4096) // reused code chunk
	whiteTab := rec.NewArr(sp, 256, 2, 1024)
	blackTab := rec.NewArr(sp, 256, 2, 1024)
	image := rec.NewMat(sp, rows, width, 1, 4096)

	rng := xorshift32(29)
	cpos := 0
	for y := 0; y < rows; y++ {
		x := 0
		white := true
		for x < width {
			codes.Load(cpos % 2048)
			cpos++
			if white {
				whiteTab.Load(rng.intn(256))
			} else {
				blackTab.Load(rng.intn(256))
			}
			run := 1 + rng.intn(24)
			for k := 0; k < run && x < width; k++ {
				image.Store(y, x)
				x++
			}
			white = !white
			rec.Ops(6)
		}
	}
	return rec.T
}

// psJpegData: PowerStone jpeg — the 8×8 DCT pipeline on a small image.
func psJpegData(scale int) *trace.Trace {
	t := jpegBlocks("jpeg", scale, true)
	return t
}

// pocsagData: POCSAG pager decoding — BCH syndrome tables over small
// codeword batches.
func pocsagData(scale int) *trace.Trace {
	batches := 1200 * scale
	rec := NewRecorder("pocsag")
	sp := NewSpace(0x19000)
	words := rec.NewArr(sp, 16, 4, 64)
	synTab := rec.NewArr(sp, 1024, 2, 4096)
	outBuf := rec.NewArr(sp, 256, 1, 1024)

	rng := xorshift32(41)
	for b := 0; b < batches; b++ {
		for w := 0; w < 16; w++ {
			words.Load(w)
			syn := rng.intn(1024)
			synTab.Load(syn)
			if syn&7 == 0 {
				outBuf.Store((b*16 + w) & 0xFF)
			}
			rec.Ops(12)
		}
	}
	return rec.T
}

// qurtData: quadratic-equation roots — almost pure register math with
// a tiny stack footprint (the paper's all-zero row).
func qurtData(scale int) *trace.Trace {
	iters := 5000 * scale
	rec := NewRecorder("qurt")
	sp := NewSpace(0x1A000)
	coefArr := rec.NewArr(sp, 3, 4, 64)
	rootArr := rec.NewArr(sp, 2, 4, 64)

	x := 0.0
	for i := 0; i < iters; i++ {
		coefArr.Load(0)
		coefArr.Load(1)
		coefArr.Load(2)
		a, b, c := 1.0, float64(i%17)-8, float64(i%29)-14
		disc := b*b - 4*a*c
		if disc >= 0 {
			x += disc // sqrt modelled as ALU ops
		}
		rootArr.Store(0)
		rootArr.Store(1)
		rec.Ops(30)
	}
	_ = x
	return rec.T
}

// ucbqsortData: the PowerStone qsort benchmark sorts an array of
// pointers to records, comparing through the pointed-to keys: every
// comparison touches the pointer array AND the records region, which
// alias each other mod the cache size (both are page-aligned
// allocations). The pointer blocks are hot across a partition pass but
// keep being evicted by key reads — a conflict that XOR indexing and
// associativity both remove, the paper's uniform ucbqsort row.
func ucbqsortData(scale int) *trace.Trace {
	n := 6000 * scale
	rec := NewRecorder("ucbqsort")
	sp := NewSpace(0x1B000)
	ptrs := rec.NewArr(sp, n, 4, 4096)     // pointer array, 24 KB
	recs := rec.NewMat(sp, n, 16, 1, 4096) // 16-byte records

	vals := make([]int, n) // vals[i] = record id currently at slot i
	keys := make([]int, n) // keys[id] = sort key of record id
	rng := xorshift32(67)
	for i := range vals {
		vals[i] = i
		keys[i] = rng.intn(1 << 20)
		ptrs.Store(i)
		recs.Store(i, 0)
	}
	// cmp reads both pointers and the first key bytes of both records.
	cmp := func(i, j int) int {
		ptrs.Load(i)
		ptrs.Load(j)
		recs.Load(vals[i], 0)
		recs.Load(vals[j], 0)
		rec.Ops(4)
		return keys[vals[i]] - keys[vals[j]]
	}
	swap := func(i, j int) {
		ptrs.Load(i)
		ptrs.Load(j)
		ptrs.Store(i)
		ptrs.Store(j)
		vals[i], vals[j] = vals[j], vals[i]
		rec.Ops(2)
	}
	var qsort func(lo, hi int)
	qsort = func(lo, hi int) {
		for lo < hi {
			if hi-lo < 8 {
				for i := lo + 1; i <= hi; i++ {
					for j := i; j > lo && cmp(j-1, j) > 0; j-- {
						swap(j-1, j)
					}
				}
				return
			}
			mid := lo + (hi-lo)/2
			if cmp(mid, lo) < 0 {
				swap(mid, lo)
			}
			if cmp(hi, lo) < 0 {
				swap(hi, lo)
			}
			if cmp(hi, mid) < 0 {
				swap(hi, mid)
			}
			pivot := keys[vals[mid]]
			i, j := lo, hi
			for i <= j {
				for {
					ptrs.Load(i)
					recs.Load(vals[i], 0)
					rec.Ops(2)
					if keys[vals[i]] >= pivot {
						break
					}
					i++
				}
				for {
					ptrs.Load(j)
					recs.Load(vals[j], 0)
					rec.Ops(2)
					if keys[vals[j]] <= pivot {
						break
					}
					j--
				}
				if i <= j {
					swap(i, j)
					i++
					j--
				}
			}
			// Recurse into the smaller half, loop on the larger.
			if j-lo < hi-i {
				qsort(lo, j)
				lo = i
			} else {
				qsort(i, hi)
				hi = j
			}
		}
	}
	qsort(0, n-1)
	out := make([]int, n)
	for i := range out {
		out[i] = keys[vals[i]]
	}
	sortedCheck = out // exposed for the tests
	return rec.T
}

// sortedCheck lets the tests verify the quicksort actually sorted.
var sortedCheck []int

// v42Data: V.42bis-style dictionary compression — trie-node chasing
// through a node pool with hash-chain probes.
func v42Data(scale int) *trace.Trace {
	inputN := 15000 * scale
	const nodes = 4096
	rec := NewRecorder("v42")
	sp := NewSpace(0x1C000)
	input := rec.NewArr(sp, 2048, 1, 4096) // reused input chunk
	nodeChild := rec.NewArr(sp, nodes, 4, 4096)
	nodeSibling := rec.NewArr(sp, nodes, 4, 4096)
	nodeChar := rec.NewArr(sp, nodes, 1, 4096)

	type node struct {
		child, sibling int
		ch             byte
	}
	pool := make([]node, nodes)
	next := 256
	cur := 0
	rng := xorshift32(83)
	for i := 0; i < inputN; i++ {
		input.Load(i % 2048)
		c := byte(rng.intn(48))
		// Walk the child/sibling chain looking for c.
		nodeChild.Load(cur)
		child := pool[cur].child
		found := -1
		for child != 0 {
			nodeChar.Load(child)
			rec.Ops(2)
			if pool[child].ch == c {
				found = child
				break
			}
			nodeSibling.Load(child)
			child = pool[child].sibling
		}
		if found >= 0 {
			cur = found
			continue
		}
		// Add a node; emit a code and restart from the root entry c.
		if next < nodes {
			pool[next] = node{ch: c, sibling: pool[cur].child}
			nodeChar.Store(next)
			nodeSibling.Store(next)
			pool[cur].child = next
			nodeChild.Store(cur)
			next++
		}
		cur = int(c)
		rec.Ops(4)
	}
	return rec.T
}
