package workloads

import (
	"fmt"

	"xoridx/internal/trace"
)

// Program models the code layout of a benchmark for instruction-cache
// studies: functions are placed sequentially by a bump "linker" and
// executing a function emits one 4-byte fetch per instruction word.
// Instruction-cache conflicts arise exactly as in reality — two hot
// functions (or a loop body larger than the cache) whose addresses
// alias in the index — so the synthetic layout exercises the same
// mechanism the paper's ARM binaries did (see DESIGN.md §2).
type Program struct {
	rec   *Recorder
	next  uint64
	align uint64
}

// NewProgram starts a code layout at the given base address.
func NewProgram(name string, base uint64) *Program {
	return &Program{rec: NewRecorder(name), next: base, align: 16}
}

// Trace returns the accumulated fetch trace.
func (p *Program) Trace() *trace.Trace { return p.rec.T }

// Fn is a placed function.
type Fn struct {
	Name string
	Addr uint64
	Size int // bytes; one instruction per 4 bytes
	p    *Program
}

// Func places a function of the given size (bytes, rounded up to a
// word) at the next link address.
func (p *Program) Func(name string, size int) *Fn {
	if size <= 0 {
		panic(fmt.Sprintf("workloads: function %q has size %d", name, size))
	}
	size = (size + 3) &^ 3
	p.next = (p.next + p.align - 1) &^ (p.align - 1)
	f := &Fn{Name: name, Addr: p.next, Size: size, p: p}
	p.next += uint64(size)
	return f
}

// Gap advances the link address, modelling code that exists in the
// binary but is not executed (error handlers, unused library code).
func (p *Program) Gap(size int) {
	p.next += uint64(size)
}

// FuncAt places a function at an absolute address (word aligned), used
// to model hot functions scattered across a large text segment whose
// relative placement — and hence index aliasing — is fixed by the
// binary. Placement must not move the link cursor backwards.
func (p *Program) FuncAt(name string, size int, addr uint64) *Fn {
	if addr%4 != 0 {
		panic(fmt.Sprintf("workloads: function %q at unaligned address %#x", name, addr))
	}
	if addr < p.next {
		panic(fmt.Sprintf("workloads: function %q at %#x overlaps previous code ending at %#x", name, addr, p.next))
	}
	size = (size + 3) &^ 3
	f := &Fn{Name: name, Addr: addr, Size: size, p: p}
	p.next = addr + uint64(size)
	return f
}

// Run emits a straight-line execution of the whole function body.
func (f *Fn) Run() { f.RunPart(0, f.Size) }

// RunPart emits fetches for bytes [off, off+len) of the function,
// modelling a loop body or early-exit path. One fetch per 4 bytes.
func (f *Fn) RunPart(off, length int) {
	if off < 0 || length < 0 || off+length > f.Size {
		panic(fmt.Sprintf("workloads: RunPart(%d,%d) outside %q (size %d)", off, length, f.Name, f.Size))
	}
	for b := off &^ 3; b < off+length; b += 4 {
		f.p.rec.T.Append(f.Addr+uint64(b), trace.Fetch)
	}
	f.p.rec.T.Ops += uint64(length / 4)
}

// Loop runs the given body count times; a convenience for the common
// "hot loop calling helpers" shape.
func Loop(count int, body func()) {
	for i := 0; i < count; i++ {
		body()
	}
}
