package workloads

import (
	"xoridx/internal/trace"
)

// Extra MediaBench-style benchmarks beyond the paper's ten Table 2 rows
// (the suites contain more programs than the paper had space to show).
// Exposed via ExtraSuite and the cmd/tables "2x" target.

// gsmData: GSM 06.10 full-rate speech encoder shape — per 160-sample
// frame: windowed autocorrelation (order 8), Schur reflection
// coefficients, and a long-term-predictor lag search cross-correlating
// the current subframe against a 120-sample history ring.
func gsmData(scale int) *trace.Trace {
	frames := 220 * scale
	const frameLen = 160
	const order = 8
	rec := NewRecorder("gsm")
	sp := NewSpace(0x90000)
	frame := rec.NewArr(sp, frameLen, 2, 4096)
	history := rec.NewArr(sp, 1024, 2, 4096) // next page: aliases frame
	acf := rec.NewArr(sp, order+1, 4, 64)
	refl := rec.NewArr(sp, order, 4, 64)
	ltpGain := rec.NewArr(sp, 4, 2, 64)

	rng := xorshift32(0x65)
	samples := make([]float64, frameLen)
	hist := make([]float64, 1024)
	hpos := 0
	for f := 0; f < frames; f++ {
		// Read the frame (from the codec's input buffer).
		for i := 0; i < frameLen; i++ {
			frame.Load(i)
			samples[i] = float64(rng.intn(2001)-1000) / 1000
		}
		// Autocorrelation: order+1 lagged dot products.
		var ac [order + 1]float64
		for k := 0; k <= order; k++ {
			for i := k; i < frameLen; i += 4 { // unrolled
				frame.Load(i)
				frame.Load(i - k)
				ac[k] += samples[i] * samples[i-k]
				rec.Ops(3)
			}
			acf.Store(k)
		}
		// Schur recursion on the tiny acf array (register-heavy).
		for k := 0; k < order; k++ {
			acf.Load(k)
			acf.Load(k + 1)
			refl.Store(k)
			rec.Ops(12)
		}
		// Long-term predictor: cross-correlate 40-sample subframes
		// against lags 40..120 of the history ring.
		for sub := 0; sub < 4; sub++ {
			bestLag := 40
			best := 0.0
			for lag := 40; lag <= 120; lag += 2 {
				corr := 0.0
				for i := 0; i < 40; i += 4 {
					frame.Load(sub*40 + i)
					hi := (hpos + 1024 - lag + i) % 1024
					history.Load(hi)
					corr += samples[sub*40+i] * hist[hi]
					rec.Ops(3)
				}
				if corr > best {
					best = corr
					bestLag = lag
				}
			}
			_ = bestLag
			ltpGain.Store(sub)
		}
		// Push the frame into the history ring.
		for i := 0; i < frameLen; i++ {
			hist[hpos] = samples[i]
			history.Store(hpos)
			hpos = (hpos + 1) % 1024
		}
	}
	return rec.T
}

// g721Data: CCITT G.721 ADPCM — like IMA but with an adaptive
// pole/zero predictor: per sample, a 6-deep difference-signal history
// and two pole coefficients are read and updated alongside the
// quantizer tables.
func g721Data(scale int) *trace.Trace {
	samplesN := 30000 * scale
	rec := NewRecorder("g721")
	sp := NewSpace(0xA0000)
	const chunk = 1024
	pcmBuf := rec.NewArr(sp, chunk, 2, 4096)
	codeBuf := rec.NewArr(sp, chunk/2, 1, 4096)
	dqHist := rec.NewArr(sp, 6, 4, 64)
	bCoef := rec.NewArr(sp, 6, 4, 64)
	aCoef := rec.NewArr(sp, 2, 4, 64)
	quanTab := rec.NewArr(sp, 16, 2, 4096) // own page: aliases pcmBuf

	rng := xorshift32(0x21)
	sVal := 0
	for i := 0; i < samplesN; i++ {
		j := i % chunk
		pcmBuf.Load(j)
		sVal += rng.intn(401) - 200
		// Predictor: 6 zeros + 2 poles.
		for k := 0; k < 6; k++ {
			dqHist.Load(k)
			bCoef.Load(k)
			rec.Ops(2)
		}
		aCoef.Load(0)
		aCoef.Load(1)
		// Quantize the difference.
		quanTab.Load((sVal >> 4) & 15)
		rec.Ops(10)
		// Update predictor state.
		for k := 5; k > 0; k-- {
			dqHist.Load(k - 1)
			dqHist.Store(k)
			bCoef.Store(k)
		}
		dqHist.Store(0)
		aCoef.Store(0)
		aCoef.Store(1)
		if j%2 == 1 {
			codeBuf.Store(j / 2)
		}
	}
	return rec.T
}

// epicData: EPIC-style wavelet image coder — a separable filter
// pyramid: at each level, a row pass (unit stride) and a column pass
// (image-pitch stride) over a power-of-two-pitch image, then recurse on
// the quarter-size low band. The column passes are the archetypal
// large-stride conflict generator.
func epicData(scale int) *trace.Trace {
	dim := 128 * isqrtScale(scale) // square image, power-of-two pitch
	const taps = 5
	rec := NewRecorder("epic")
	sp := NewSpace(0xB0000)
	img := rec.NewMat(sp, dim, dim, 1, 4096)
	tmp := rec.NewMat(sp, dim, dim, 2, 4096)
	filt := rec.NewArr(sp, taps, 4, 64)

	for level := 0; dim>>uint(level) >= 16 && level < 4; level++ {
		size := dim >> uint(level)
		// Row pass: img -> tmp.
		for y := 0; y < size; y++ {
			for x := 2; x < size-2; x++ {
				for t := -2; t <= 2; t++ {
					img.Load(y, x+t)
					filt.Load(t + 2)
					rec.Ops(2)
				}
				tmp.Store(y, x)
			}
		}
		// Column pass: tmp -> img (stride = pitch).
		for x := 0; x < size; x++ {
			for y := 2; y < size-2; y++ {
				for t := -2; t <= 2; t++ {
					tmp.Load(y+t, x)
					filt.Load(t + 2)
					rec.Ops(2)
				}
				img.Store(y, x)
			}
		}
	}
	return rec.T
}

// pegwitData: public-key-crypto shape — GF(2^m) polynomial
// multiplication and squaring over multi-word operands (the elliptic-
// curve field arithmetic of pegwit): nested word loops with tight
// operand reuse plus a precomputed window table.
func pegwitData(scale int) *trace.Trace {
	mults := 900 * scale
	const words = 9 // ~GF(2^255) operands in 32-bit words
	rec := NewRecorder("pegwit")
	sp := NewSpace(0xC0000)
	opA := rec.NewArr(sp, words, 4, 64)
	opB := rec.NewArr(sp, words, 4, 64)
	res := rec.NewArr(sp, 2*words, 4, 64)
	window := rec.NewArr(sp, 16*words, 4, 4096) // window table, own page
	modulus := rec.NewArr(sp, words, 4, 64)

	rng := xorshift32(0x99)
	for mlt := 0; mlt < mults; mlt++ {
		// Comb multiply with a 4-bit window table.
		for i := 0; i < 2*words; i++ {
			res.Store(i)
		}
		for i := 0; i < words; i++ {
			opA.Load(i)
			for nib := 0; nib < 8; nib++ {
				w := rng.intn(16)
				for k := 0; k < words; k += 3 { // unrolled
					window.Load(w*words + k)
					res.Load(i + k)
					res.Store(i + k)
					rec.Ops(3)
				}
			}
		}
		// Modular reduction.
		for i := 2*words - 1; i >= words; i-- {
			res.Load(i)
			for k := 0; k < words; k += 3 {
				modulus.Load(k)
				res.Load(i - words + k)
				res.Store(i - words + k)
				rec.Ops(3)
			}
		}
		// Rebuild the window table every few multiplies (new operand B).
		if mlt%8 == 0 {
			for w := 0; w < 16; w++ {
				for k := 0; k < words; k++ {
					opB.Load(k)
					window.Store(w*words + k)
					rec.Ops(2)
				}
			}
		}
	}
	return rec.T
}

// Instruction layouts for the extra suite.

func gsmInstr(scale int) *trace.Trace {
	p := NewProgram("gsm", 0)
	autocorr := p.FuncAt("autocorr", 512, 0x8000)
	schur := p.FuncAt("schur", 384, 0x8000+0x0800)
	ltp := p.FuncAt("ltp_search", 640, 0x8000+0x1080) // ≡ autocorr+128 mod 4 KB
	frames := 220 * scale
	Loop(frames, func() {
		Loop(9, func() { autocorr.Run() })
		schur.Run()
		Loop(4, func() { ltp.Run() })
	})
	return p.Trace()
}

func g721Instr(scale int) *trace.Trace {
	p := NewProgram("g721", 0)
	predict := p.FuncAt("predict", 448, 0x8000)
	quant := p.FuncAt("quantize", 320, 0x8000+0x0600)
	update := p.FuncAt("update", 384, 0x8000+0x1040) // ≡ predict+64 mod 4 KB
	samples := 30000 * scale
	Loop(samples/12, func() {
		predict.Run()
		quant.RunPart(0, 160)
		update.Run()
	})
	return p.Trace()
}

func epicInstr(scale int) *trace.Trace {
	p := NewProgram("epic", 0)
	rowPass := p.FuncAt("row_filter", 576, 0x8000)
	pyramid := p.FuncAt("pyramid_driver", 256, 0x8000+0x0C00)
	colPass := p.FuncAt("col_filter", 576, 0x8000+0x4080) // ≡ rowPass+128 mod 16 KB
	dim := 128 * isqrtScale(scale)
	for level := 0; dim>>uint(level) >= 16 && level < 4; level++ {
		size := dim >> uint(level)
		pyramid.Run()
		Loop(size/2, func() {
			rowPass.Run()
			colPass.Run()
		})
	}
	return p.Trace()
}

func pegwitInstr(scale int) *trace.Trace {
	p := NewProgram("pegwit", 0)
	mul := p.FuncAt("gf_mul_comb", 1024, 0x8000)
	reduce := p.FuncAt("gf_reduce", 512, 0x8000+0x0800)
	precomp := p.FuncAt("window_precomp", 384, 0x8000+0x1100) // ≡ mul+256 mod 4 KB
	mults := 900 * scale
	Loop(mults, func() {
		mul.Run()
		reduce.Run()
		if true {
			precomp.RunPart(0, 128)
		}
	})
	return p.Trace()
}
