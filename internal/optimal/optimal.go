// Package optimal implements the exhaustive bit-selecting baselines the
// paper compares against (§6.1, Table 3).
//
// Patel et al. (ICCAD 2004) observed that the number of bit-selecting
// index functions is only C(n, m), small enough to simulate all of them
// and pick the true optimum. ExactBitSelect does exactly that: one pass
// over the trace updating a direct-mapped tag store per candidate mask.
// It is intentionally honest about the cost — the paper notes the
// optimal algorithm is "very slow" and was only run on the short
// PowerStone traces.
//
// ProfileBestBitSelect evaluates all 2^n bit masks at once against a
// conflict-vector profile using a sum-over-subsets (zeta) transform:
// for a selection mask S, the estimated misses are the sum of
// misses(v) over all v with v AND S == 0, i.e. the subset sum of the
// table at the complement of S. This scores every bit-selecting
// function in O(2^n · n) operations and is the profile-based analogue
// of Patel's simultaneous evaluation.
package optimal

import (
	"context"
	"fmt"
	"math/bits"

	"xoridx/internal/gf2"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// BitSelectResult reports an exhaustive bit-select search outcome.
type BitSelectResult struct {
	Mask      uint64 // selected address-bit mask (popcount == m)
	Misses    uint64 // misses (exact) or estimated conflicts (profile)
	Evaluated int    // number of candidate functions scored
}

// Positions expands the mask into ascending bit positions.
func (r BitSelectResult) Positions() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if r.Mask>>uint(i)&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

// Matrix returns the winning function as a gf2 bit-select matrix.
func (r BitSelectResult) Matrix(n int) gf2.Matrix {
	return gf2.BitSelect(n, r.Positions())
}

// ExactBitSelect simulates every C(n, m) bit-selecting direct-mapped
// cache over the block-address sequence and returns the function with
// the fewest total misses. Blocks must fit in n <= 16 bits. Candidates
// are simulated one at a time with per-mask byte-wise PEXT tables, so
// the working set per candidate (tag array + two 256-entry tables)
// stays L1-resident; total time is C(n,m) passes over the trace —
// honest about the cost the paper reports ("the optimal algorithm is
// very slow").
func ExactBitSelect(blocks []uint64, n, m int) (BitSelectResult, error) {
	return ExactBitSelectCtx(context.Background(), blocks, n, m)
}

// ExactBitSelectCtx is ExactBitSelect with cooperative cancellation:
// ctx is checked once per candidate mask (each candidate is a full pass
// over the trace, so per-candidate granularity bounds cancellation
// latency to one simulation pass while costing nothing measurable).
func ExactBitSelectCtx(ctx context.Context, blocks []uint64, n, m int) (BitSelectResult, error) {
	if m <= 0 || m >= n || n > 16 {
		return BitSelectResult{}, fmt.Errorf("optimal: unsupported dimensions n=%d m=%d: %w", n, m, xerr.ErrInvalidOptions)
	}
	for _, b := range blocks {
		if b>>uint(n) != 0 {
			return BitSelectResult{}, fmt.Errorf("optimal: block %#x exceeds %d bits: %w", b, n, xerr.ErrInvalidOptions)
		}
	}
	masks := enumerateMasks(n, m)
	sets := 1 << uint(m)
	tags := make([]uint64, sets)
	var loTab, hiTab [256]uint16
	best := BitSelectResult{Misses: ^uint64(0), Evaluated: len(masks)}
	for _, mask := range masks {
		if err := xerr.Check(ctx); err != nil {
			return BitSelectResult{}, err
		}
		// Byte-wise PEXT decomposition: pext(b, mask) =
		// loTab[b&0xFF] | hiTab[b>>8] << popcount(mask&0xFF).
		loBits := bits.OnesCount64(mask & 0xFF)
		for v := 0; v < 256; v++ {
			loTab[v] = uint16(pext(uint64(v), mask&0xFF))
			hiTab[v] = uint16(pext(uint64(v)<<8, mask&^0xFF)) << uint(loBits)
		}
		for i := range tags {
			tags[i] = 0
		}
		var misses uint64
		for _, b := range blocks {
			idx := loTab[b&0xFF] | hiTab[b>>8]
			if tags[idx] != b+1 { // tags store block+1; 0 = invalid
				misses++
				tags[idx] = b + 1
			}
		}
		if misses < best.Misses {
			best.Misses = misses
			best.Mask = mask
		}
	}
	return best, nil
}

// ProfileBestBitSelect returns the bit-selecting function minimising
// the Eq. 4 estimate, scoring all C(n,m) candidates through a single
// sum-over-subsets transform of the conflict table.
func ProfileBestBitSelect(p *profile.Profile, m int) (BitSelectResult, error) {
	return ProfileBestBitSelectCtx(context.Background(), p, m)
}

// ProfileBestBitSelectCtx is ProfileBestBitSelect with cooperative
// cancellation, checked once per zeta-transform layer and once per
// 8 K candidate masks.
func ProfileBestBitSelectCtx(ctx context.Context, p *profile.Profile, m int) (BitSelectResult, error) {
	n := p.N
	if m <= 0 || m >= n {
		return BitSelectResult{}, fmt.Errorf("optimal: m=%d out of range: %w", m, xerr.ErrInvalidOptions)
	}
	if p.Table == nil {
		// The zeta transform needs the dense 2^n table; a sparse profile
		// is by definition too wide for it.
		return BitSelectResult{}, fmt.Errorf("optimal: profile n=%d uses the sparse backend; the subset-sum transform needs a flat table (n <= %d): %w",
			n, profile.MaxFlatBits, xerr.ErrInvalidOptions)
	}
	// sos[x] = sum of Table[v] over v subset of x.
	sos := make([]uint64, len(p.Table))
	copy(sos, p.Table)
	for bit := 0; bit < n; bit++ {
		if err := xerr.Check(ctx); err != nil {
			return BitSelectResult{}, err
		}
		step := 1 << uint(bit)
		for x := range sos {
			if x&step != 0 {
				sos[x] += sos[x^step]
			}
		}
	}
	full := uint64(len(p.Table) - 1)
	best := BitSelectResult{Misses: ^uint64(0)}
	for mask := uint64(0); mask <= full; mask++ {
		if mask&8191 == 0 {
			if err := xerr.Check(ctx); err != nil {
				return BitSelectResult{}, err
			}
		}
		if bits.OnesCount64(mask) != m {
			continue
		}
		est := sos[full&^mask] // sum over v with v & mask == 0
		best.Evaluated++
		if est < best.Misses {
			best.Misses = est
			best.Mask = mask
		}
	}
	return best, nil
}

// enumerateMasks lists all n-bit masks with popcount m, ascending.
func enumerateMasks(n, m int) []uint64 {
	var out []uint64
	limit := uint64(1) << uint(n)
	// Gosper's hack: iterate masks with exactly m bits set.
	v := uint64(1)<<uint(m) - 1
	for v < limit {
		out = append(out, v)
		// next bit permutation
		t := v | (v - 1)
		v = (t + 1) | (((^t & (t + 1)) - 1) >> uint(bits.TrailingZeros64(v)+1))
		if v == 0 {
			break
		}
	}
	return out
}

// pext extracts the bits of v selected by mask, packing them into the
// low bits of the result (software PEXT).
func pext(v, mask uint64) uint64 {
	var out uint64
	shift := 0
	for mask != 0 {
		low := mask & (^mask + 1)
		if v&low != 0 {
			out |= 1 << uint(shift)
		}
		shift++
		mask ^= low
	}
	return out
}
