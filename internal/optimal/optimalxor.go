package optimal

import (
	"context"
	"fmt"

	"xoridx/internal/gf2"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// This file addresses the paper's closing observation (§6.1/§7):
// "Algorithms for optimal XOR-functions are not known, but our analysis
// suggests that there is potential room for improvement." For small
// dimensions the design space of null spaces — the Gaussian binomial
// [n choose n-m]_2 (paper Eq. 3) — is enumerable outright, giving the
// true optimum of the Eq. 4 estimate. That yields two things the paper
// could not measure directly: how far the hill climber lands from the
// estimate-optimal function, and how often the estimate-optimal
// function is also simulation-optimal.

// EnumerateSubspaces calls fn for every d-dimensional subspace of
// GF(2)^n exactly once, presenting each as its canonical
// reduced-row-echelon basis (descending leading bit). fn may keep the
// slice only until it returns. Enumeration order is deterministic.
//
// The enumeration is the textbook RREF parameterisation: choose the
// pivot positions p_1 > p_2 > ... > p_d, then fill every entry that is
// (a) below the row's pivot, and (b) not itself a pivot column, with
// all 2^free combinations. Each subspace has exactly one RREF basis,
// so there is no deduplication step.
func EnumerateSubspaces(n, d int, fn func(basis []gf2.Vec) bool) error {
	if d < 0 || d > n || n > 30 {
		return fmt.Errorf("optimal: cannot enumerate dim-%d subspaces of GF(2)^%d: %w", d, n, xerr.ErrInvalidOptions)
	}
	if d == 0 {
		fn(nil)
		return nil
	}
	basis := make([]gf2.Vec, d)
	// Choose the pivot positions first (descending), then fill the free
	// entries: each subspace is produced exactly once.
	pivotSet := make([]int, d)
	var choosePivots func(idx, next int) bool
	choosePivots = func(idx, next int) bool {
		if idx == d {
			return fillFree(n, d, pivotSet, basis, fn)
		}
		for p := next; p >= d-idx-1; p-- {
			pivotSet[idx] = p
			if !choosePivots(idx+1, p-1) {
				return false
			}
		}
		return true
	}
	choosePivots(0, n-1)
	return nil
}

// fillFree enumerates all assignments of the free entries for a fixed
// pivot set and invokes fn for each resulting basis. Free entries of
// row i are the non-pivot positions strictly below pivot[i].
func fillFree(n, d int, pivots []int, basis []gf2.Vec, fn func([]gf2.Vec) bool) bool {
	var pivotMask gf2.Vec
	for _, p := range pivots {
		pivotMask |= gf2.Unit(p)
	}
	// Collect (row, bitPosition) slots in a fixed order.
	type slot struct {
		row int
		bit int
	}
	var slots []slot
	for i, p := range pivots {
		basis[i] = gf2.Unit(p)
		for b := 0; b < p; b++ {
			if pivotMask&gf2.Unit(b) == 0 {
				slots = append(slots, slot{i, b})
			}
		}
	}
	if len(slots) > 40 {
		// 2^40+ combinations: refuse rather than spin forever.
		panic(fmt.Sprintf("optimal: %d free slots is too many to enumerate", len(slots)))
	}
	total := uint64(1) << uint(len(slots))
	for x := uint64(0); x < total; x++ {
		// Gray-code step: flip one slot per iteration.
		if x > 0 {
			i := trailingZeros64(x)
			s := slots[i]
			basis[s.row] ^= gf2.Unit(s.bit)
		}
		if !fn(basis) {
			return false
		}
	}
	// Reset rows (clear free bits) for the next pivot set.
	for i, p := range pivots {
		basis[i] = gf2.Unit(p)
	}
	return true
}

func trailingZeros64(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// XORResult reports an exhaustive XOR-function search outcome.
type XORResult struct {
	Matrix    gf2.Matrix // a matrix realising the optimal null space
	Estimated uint64     // its Eq. 4 estimate
	Evaluated uint64     // subspaces scored (= [n choose n-m]_2)
}

// ExhaustiveXOR finds the hash function minimising the Eq. 4 estimate
// over ALL XOR functions, by enumerating every null space of dimension
// n−m. Feasible only for small dimensions (the count is the Gaussian
// binomial — e.g. ~109 K for n=10, m=5, ~2.7 M for n=12, m=6); this is
// the "optimal XOR algorithm" the paper notes does not exist for
// realistic sizes, provided here as a calibration tool for the
// heuristic search.
func ExhaustiveXOR(p *profile.Profile, m int) (XORResult, error) {
	return ExhaustiveXORCtx(context.Background(), p, m)
}

// ExhaustiveXORCtx is ExhaustiveXOR with cooperative cancellation,
// checked every 8 K subspaces (each evaluation walks the full conflict
// table, so the check overhead is noise).
func ExhaustiveXORCtx(ctx context.Context, p *profile.Profile, m int) (XORResult, error) {
	n := p.N
	d := n - m
	if m <= 0 || m >= n {
		return XORResult{}, fmt.Errorf("optimal: m=%d out of range: %w", m, xerr.ErrInvalidOptions)
	}
	// Refuse design spaces beyond ~2^27 subspaces (minutes of work):
	// the whole point of the paper's heuristic is that realistic sizes
	// (n=16: 6.3e19 null spaces) are out of exhaustive reach.
	spaceSize := gf2.GaussianBinomial(n, d)
	if spaceSize.BitLen() > 27 {
		return XORResult{}, fmt.Errorf("optimal: n=%d m=%d has %v null spaces; too many for exhaustive search: %w", n, m, spaceSize, xerr.ErrInvalidOptions)
	}
	best := XORResult{Estimated: ^uint64(0)}
	bestBasis := make([]gf2.Vec, 0, d)
	var ctxErr error
	err := EnumerateSubspaces(n, d, func(basis []gf2.Vec) bool {
		if best.Evaluated&8191 == 0 {
			if ctxErr = xerr.Check(ctx); ctxErr != nil {
				return false
			}
		}
		best.Evaluated++
		est := p.EstimateBasis(basis)
		if est < best.Estimated {
			best.Estimated = est
			bestBasis = append(bestBasis[:0], basis...)
		}
		return true
	})
	if err != nil {
		return XORResult{}, err
	}
	if ctxErr != nil {
		return XORResult{}, ctxErr
	}
	best.Matrix = gf2.MatrixWithNullSpace(gf2.Span(n, bestBasis...))
	return best, nil
}
