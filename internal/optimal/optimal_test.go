package optimal

import (
	"math/bits"
	"math/rand"
	"testing"

	"xoridx/internal/cache"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
)

func TestEnumerateMasks(t *testing.T) {
	masks := enumerateMasks(6, 3)
	if len(masks) != 20 { // C(6,3)
		t.Fatalf("got %d masks, want 20", len(masks))
	}
	seen := map[uint64]bool{}
	for _, m := range masks {
		if bits.OnesCount64(m) != 3 {
			t.Fatalf("mask %b has wrong popcount", m)
		}
		if m >= 1<<6 {
			t.Fatalf("mask %b out of range", m)
		}
		if seen[m] {
			t.Fatalf("duplicate mask %b", m)
		}
		seen[m] = true
	}
}

func TestPext(t *testing.T) {
	cases := []struct{ v, mask, want uint64 }{
		{0b1011, 0b1111, 0b1011},
		{0b1011, 0b1010, 0b11}, // bits 1 and 3 -> 1, 1
		{0b1011, 0b0100, 0},
		{0xFFFF, 0x8001, 0b11},
		{0, 0xFF, 0},
		{0xAB, 0, 0},
	}
	for _, c := range cases {
		if got := pext(c.v, c.mask); got != c.want {
			t.Errorf("pext(%b,%b) = %b, want %b", c.v, c.mask, got, c.want)
		}
	}
}

// bruteBestBitSelect simulates every mask independently via the cache
// simulator, as the reference for ExactBitSelect.
func bruteBestBitSelect(t *testing.T, blocks []uint64, n, m int) (uint64, uint64) {
	t.Helper()
	bestMisses := ^uint64(0)
	bestMask := uint64(0)
	for _, mask := range enumerateMasks(n, m) {
		var positions []int
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				positions = append(positions, i)
			}
		}
		f, err := hash.BitSelecting(n, positions)
		if err != nil {
			t.Fatal(err)
		}
		misses := cache.SimulateBlocks(blocks, (1<<uint(m))*4, 4, f)
		if misses < bestMisses {
			bestMisses = misses
			bestMask = mask
		}
	}
	return bestMask, bestMisses
}

func TestExactBitSelectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blocks := make([]uint64, 2000)
	for i := range blocks {
		// Mix of stride and random accesses in 8-bit block space.
		if i%3 == 0 {
			blocks[i] = uint64(i%16) * 16
		} else {
			blocks[i] = uint64(rng.Intn(256))
		}
	}
	n, m := 8, 4
	res, err := ExactBitSelect(blocks, n, m)
	if err != nil {
		t.Fatal(err)
	}
	_, wantMisses := bruteBestBitSelect(t, blocks, n, m)
	if res.Misses != wantMisses {
		t.Fatalf("exact misses %d, brute force %d", res.Misses, wantMisses)
	}
	// The chosen mask must itself achieve that miss count.
	f, err := hash.BitSelecting(n, res.Positions())
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.SimulateBlocks(blocks, (1<<uint(m))*4, 4, f); got != res.Misses {
		t.Fatalf("winning mask resimulates to %d, reported %d", got, res.Misses)
	}
	if res.Evaluated != 70 { // C(8,4)
		t.Fatalf("evaluated %d, want 70", res.Evaluated)
	}
}

func TestExactBitSelectStride(t *testing.T) {
	// Stride 16 over 16 blocks in a 16-set cache: low 4 bits useless,
	// bits 4..7 carry everything. The optimum must include bits 4..7.
	var blocks []uint64
	for r := 0; r < 10; r++ {
		for i := uint64(0); i < 16; i++ {
			blocks = append(blocks, i*16)
		}
	}
	res, err := ExactBitSelect(blocks, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mask != 0xF0 {
		t.Fatalf("mask %b, want 11110000", res.Mask)
	}
	if res.Misses != 16 { // compulsory only
		t.Fatalf("misses %d, want 16", res.Misses)
	}
}

func TestExactBitSelectValidation(t *testing.T) {
	if _, err := ExactBitSelect(nil, 8, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := ExactBitSelect(nil, 8, 8); err == nil {
		t.Error("m=n should fail")
	}
	if _, err := ExactBitSelect([]uint64{1 << 10}, 8, 4); err == nil {
		t.Error("oversized block should fail")
	}
	if _, err := ExactBitSelect(nil, 30, 4); err == nil {
		t.Error("oversized n should fail")
	}
}

func TestProfileBestBitSelectMatchesExhaustiveEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	blocks := make([]uint64, 3000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(1024))
	}
	n, m := 10, 5
	p := profile.Build(blocks, n, 1<<uint(m))
	res, err := ProfileBestBitSelect(p, m)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: score every mask through EstimateSubspace.
	bestEst := ^uint64(0)
	for _, mask := range enumerateMasks(n, m) {
		// Null space of a bit selection = span of unselected unit vectors.
		var vecs []gf2.Vec
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 0 {
				vecs = append(vecs, gf2.Unit(i))
			}
		}
		est := p.EstimateSubspace(gf2.Span(n, vecs...))
		if est < bestEst {
			bestEst = est
		}
	}
	if res.Misses != bestEst {
		t.Fatalf("SOS best %d, exhaustive best %d", res.Misses, bestEst)
	}
	if res.Evaluated != 252 { // C(10,5)
		t.Fatalf("evaluated %d, want 252", res.Evaluated)
	}
}

func TestProfileBestBitSelectValidation(t *testing.T) {
	p := profile.Build([]uint64{1, 2}, 8, 16)
	if _, err := ProfileBestBitSelect(p, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := ProfileBestBitSelect(p, 8); err == nil {
		t.Error("m=n should fail")
	}
}

func TestPositionsAndMatrix(t *testing.T) {
	r := BitSelectResult{Mask: 0b1010010}
	pos := r.Positions()
	want := []int{1, 4, 6}
	if len(pos) != len(want) {
		t.Fatalf("positions %v", pos)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("positions %v, want %v", pos, want)
		}
	}
	h := r.Matrix(8)
	if !h.IsBitSelecting() || h.M != 3 {
		t.Fatal("matrix wrong")
	}
}
