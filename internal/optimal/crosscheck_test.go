package optimal

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

func TestVerifyDeltaIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	blocks := make([]uint64, 2000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(1 << 6))
	}
	p := profile.Build(blocks, 6, 8)
	for d := 1; d <= 3; d++ {
		checked, err := VerifyDeltaIdentity(context.Background(), p, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if checked == 0 {
			t.Fatalf("d=%d: verified zero (V, W) pairs", d)
		}
	}
	if _, err := VerifyDeltaIdentity(context.Background(), p, 0); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("d=0: err = %v, want ErrInvalidOptions", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyDeltaIdentity(ctx, p, 3); !errors.Is(err, xerr.ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}
}

func TestProfileBestBitSelectRejectsSparse(t *testing.T) {
	sb := profile.NewSparseBuilder(30, 8)
	for _, b := range []uint64{1, 2, 1, 2} {
		sb.Add(b)
	}
	_, err := ProfileBestBitSelect(sb.Finish(), 4)
	if !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("sparse profile: err = %v, want ErrInvalidOptions", err)
	}
}
