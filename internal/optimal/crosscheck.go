package optimal

import (
	"context"
	"fmt"

	"xoridx/internal/gf2"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// VerifyDeltaIdentity exhaustively cross-checks the incremental
// estimator's coset identity (DESIGN.md §10) against brute-force Eq. 4
// evaluation: for every d-dimensional null space V of GF(2)^n and every
// hyperplane W ⊂ V,
//
//	EstimateBasis(V) == EstimateBasis(W) + EstimateDelta(W, rep)
//
// for any representative rep ∈ V∖W, because V is the disjoint union of
// span(W) and span(W)⊕rep. The search engine's correctness — and its
// bit-identical-results guarantee — rests on this integer identity; the
// enumeration here is the same one ExhaustiveXOR trusts, making this
// the oracle-grade check. Returns the number of (V, W) pairs verified.
// Feasibility mirrors EnumerateSubspaces (small n only).
func VerifyDeltaIdentity(ctx context.Context, p *profile.Profile, d int) (int, error) {
	n := p.N
	if d <= 0 || d >= n {
		return 0, fmt.Errorf("optimal: null-space dimension d=%d out of range (0, %d): %w", d, n, xerr.ErrInvalidOptions)
	}
	checked := 0
	var failure error
	var hps []gf2.Subspace
	err := EnumerateSubspaces(n, d, func(basis []gf2.Vec) bool {
		if checked&1023 == 0 {
			if failure = xerr.Check(ctx); failure != nil {
				return false
			}
		}
		v := gf2.Span(n, basis...)
		want := p.EstimateBasis(basis)
		hps = v.Hyperplanes(hps[:0])
		for _, w := range hps {
			var rep gf2.Vec
			for _, b := range v.Basis {
				if !w.Contains(b) {
					rep = b
					break
				}
			}
			got := p.EstimateBasis(w.Basis) + p.EstimateDelta(w.Basis, rep)
			if got != want {
				failure = fmt.Errorf("optimal: delta identity violated for V=%v W=%v rep=%v: %d + delta != %d",
					v.Basis, w.Basis, rep, p.EstimateBasis(w.Basis), want)
				return false
			}
			checked++
		}
		return true
	})
	if err != nil {
		return checked, err
	}
	return checked, failure
}
