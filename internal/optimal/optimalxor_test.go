package optimal

import (
	"math/big"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/search"
)

func TestEnumerateSubspacesCountsMatchGaussianBinomial(t *testing.T) {
	cases := []struct{ n, d int }{
		{4, 0}, {4, 1}, {4, 2}, {4, 3}, {4, 4},
		{6, 3}, {7, 2}, {8, 4}, {9, 3},
	}
	for _, c := range cases {
		count := int64(0)
		seen := map[string]bool{}
		err := EnumerateSubspaces(c.n, c.d, func(basis []gf2.Vec) bool {
			count++
			sp := gf2.Span(c.n, basis...)
			if sp.Dim() != c.d {
				t.Fatalf("n=%d d=%d: enumerated basis spans dim %d", c.n, c.d, sp.Dim())
			}
			key := sp.Key()
			if seen[key] {
				t.Fatalf("n=%d d=%d: subspace enumerated twice:\n%v", c.n, c.d, sp)
			}
			seen[key] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		want := gf2.GaussianBinomial(c.n, c.d)
		if want.Cmp(big.NewInt(count)) != 0 {
			t.Errorf("n=%d d=%d: enumerated %d, Gaussian binomial %v", c.n, c.d, count, want)
		}
	}
}

func TestEnumerateSubspacesCanonicalBases(t *testing.T) {
	// Every emitted basis must already be the canonical RREF basis.
	err := EnumerateSubspaces(7, 3, func(basis []gf2.Vec) bool {
		sp := gf2.Span(7, basis...)
		for i := range basis {
			if sp.Basis[i] != basis[i] {
				t.Fatalf("emitted basis not canonical: got %v, canonical %v", basis, sp.Basis)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateSubspacesEarlyStop(t *testing.T) {
	count := 0
	err := EnumerateSubspaces(8, 3, func([]gf2.Vec) bool {
		count++
		return count < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestEnumerateSubspacesValidation(t *testing.T) {
	if err := EnumerateSubspaces(8, 9, nil); err == nil {
		t.Error("d > n should fail")
	}
	if err := EnumerateSubspaces(40, 2, nil); err == nil {
		t.Error("huge n should fail")
	}
	// d == 0: exactly the trivial subspace.
	count := 0
	if err := EnumerateSubspaces(5, 0, func(b []gf2.Vec) bool {
		count++
		return len(b) == 0
	}); err != nil || count != 1 {
		t.Errorf("d=0 enumeration wrong: count=%d err=%v", count, err)
	}
}

func TestExhaustiveXORBeatsOrMatchesEverything(t *testing.T) {
	// Build a conflict-rich profile and verify the exhaustive optimum
	// is a lower bound for every family's heuristic result.
	var blocks []uint64
	for rep := 0; rep < 30; rep++ {
		for i := uint64(0); i < 24; i++ {
			blocks = append(blocks, i*16, i*16^0x155)
		}
	}
	n, m := 9, 5
	p := profile.Build(blocks, n, 1<<uint(m))
	opt, err := ExhaustiveXOR(p, m)
	if err != nil {
		t.Fatal(err)
	}
	want := gf2.GaussianBinomial(n, n-m)
	if want.Cmp(big.NewInt(int64(opt.Evaluated))) != 0 {
		t.Fatalf("evaluated %d subspaces, want %v", opt.Evaluated, want)
	}
	if got := p.EstimateMatrix(opt.Matrix); got != opt.Estimated {
		t.Fatalf("returned matrix estimates to %d, reported %d", got, opt.Estimated)
	}
	for _, fam := range []hash.Family{hash.FamilyBitSelect, hash.FamilyPermutation, hash.FamilyGeneralXOR} {
		res, err := search.Construct(p, m, search.Options{Family: fam})
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimated < opt.Estimated {
			t.Fatalf("family %v heuristic (%d) beat the exhaustive optimum (%d)?", fam, res.Estimated, opt.Estimated)
		}
	}
}

func TestHillClimbingNearOptimal(t *testing.T) {
	// §3.3 calibration: on simple strided profiles the hill climber
	// should reach the exhaustive optimum exactly.
	var blocks []uint64
	for rep := 0; rep < 20; rep++ {
		for i := uint64(0); i < 16; i++ {
			blocks = append(blocks, i*16)
		}
	}
	p := profile.Build(blocks, 9, 32)
	opt, err := ExhaustiveXOR(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Construct(p, 5, search.Options{Family: hash.FamilyGeneralXOR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimated != opt.Estimated {
		t.Fatalf("hill climbing (%d) did not reach the exhaustive optimum (%d) on a pure stride", res.Estimated, opt.Estimated)
	}
}

func TestExhaustiveXORValidation(t *testing.T) {
	p := profile.Build([]uint64{1, 2, 3}, 14, 16)
	if _, err := ExhaustiveXOR(p, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := ExhaustiveXOR(p, 5); err == nil {
		t.Error("d=9 design space (~2^40 subspaces) should be refused")
	}
}
