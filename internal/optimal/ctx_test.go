package optimal

import (
	"context"
	"errors"
	"testing"

	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

func optCtxBlocks() []uint64 {
	blocks := make([]uint64, 2000)
	for i := range blocks {
		blocks[i] = uint64(i*64) & 0xfff
	}
	return blocks
}

func TestExactBitSelectCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExactBitSelectCtx(ctx, optCtxBlocks(), 12, 6)
	if !errors.Is(err, xerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must wrap ErrCanceled and context.Canceled", err)
	}
}

func TestProfileBestBitSelectCtxCanceled(t *testing.T) {
	p := profile.Build(optCtxBlocks(), 12, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ProfileBestBitSelectCtx(ctx, p, 6)
	if !errors.Is(err, xerr.ErrCanceled) {
		t.Fatalf("error %v must wrap ErrCanceled", err)
	}
}

func TestExhaustiveXORCtxCanceled(t *testing.T) {
	p := profile.Build(optCtxBlocks(), 10, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ExhaustiveXORCtx(ctx, p, 5)
	if !errors.Is(err, xerr.ErrCanceled) {
		t.Fatalf("error %v must wrap ErrCanceled", err)
	}
}

func TestOptimalTypedOptionErrors(t *testing.T) {
	if _, err := ExactBitSelect(nil, 12, 0); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Errorf("m=0 error %v must wrap ErrInvalidOptions", err)
	}
	p := profile.Build([]uint64{1, 2, 3}, 10, 32)
	if _, err := ProfileBestBitSelect(p, 10); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Errorf("m=n error %v must wrap ErrInvalidOptions", err)
	}
}
