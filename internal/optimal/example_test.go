package optimal_test

import (
	"fmt"

	"xoridx/internal/optimal"
	"xoridx/internal/profile"
)

// Example_exactBitSelect finds the truly optimal bit-selecting function
// (Patel et al.) for a stride trace.
func Example_exactBitSelect() {
	var blocks []uint64
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 16; i++ {
			blocks = append(blocks, i*16) // bits 4..7 carry everything
		}
	}
	res, err := optimal.ExactBitSelect(blocks, 8, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best mask %08b, %d misses, %d candidates\n", res.Mask, res.Misses, res.Evaluated)
	// Output:
	// best mask 11110000, 16 misses, 70 candidates
}

// Example_exhaustiveXOR finds the globally estimate-optimal XOR
// function for a small design space.
func Example_exhaustiveXOR() {
	var blocks []uint64
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 16; i++ {
			blocks = append(blocks, i*16)
		}
	}
	p := profile.Build(blocks, 8, 16)
	res, err := optimal.ExhaustiveXOR(p, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal estimate %d over %d null spaces\n", res.Estimated, res.Evaluated)
	// Output:
	// optimal estimate 0 over 200787 null spaces
}
