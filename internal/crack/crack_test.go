package crack

import (
	"errors"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// geometry derives a pseudo-random valid plant geometry from a seed:
// 3 <= n <= 24, 1 <= m <= min(n-1, 12), 1 <= rank <= min(m, 10). The
// rank cap keeps the naive strategy's 2^rank coset walks affordable.
func geometry(seed int64) (n, m, rank int) {
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() uint64 { return splitmix(&s) }
	n = 3 + int(next()%22) // 3..24
	maxM := n - 1
	if maxM > 12 {
		maxM = 12
	}
	m = 1 + int(next()%uint64(maxM))
	maxR := m
	if maxR > 10 {
		maxR = 10
	}
	rank = 1 + int(next()%uint64(maxR))
	return
}

// crackPlanted runs one strategy against a fresh oracle for the planted
// h and verifies recovery: equal null spaces, correct rank, and an
// explicit index-transform witness mapping the recovered function onto
// the planted one.
func crackPlanted(t *testing.T, h gf2.Matrix, style Style, opts Options) *Result {
	t.Helper()
	o, err := NewSimOracle(h, style)
	if err != nil {
		t.Fatalf("NewSimOracle(%dx%d): %v", h.N, h.M, err)
	}
	res, err := Crack(o, opts)
	if err != nil {
		t.Fatalf("Crack(%dx%d, %v): %v", h.N, h.M, opts.Strategy, err)
	}
	if !res.NullSpace.Equal(h.NullSpace()) {
		t.Fatalf("%v on %dx%d: recovered null space\n%v\nwant\n%v", opts.Strategy, h.N, h.M, res.NullSpace, h.NullSpace())
	}
	if !Equivalent(res.Matrix, h) {
		t.Fatalf("%v on %dx%d: recovered matrix not equivalent to planted", opts.Strategy, h.N, h.M)
	}
	if want := h.Rank(); res.Rank != want {
		t.Fatalf("%v on %dx%d: recovered rank %d, planted rank %d", opts.Strategy, h.N, h.M, res.Rank, want)
	}
	if _, ok := IndexTransform(res.Matrix, h); !ok {
		t.Fatalf("%v on %dx%d: no index transform from recovered to planted", opts.Strategy, h.N, h.M)
	}
	return res
}

// TestCrackRandomGeometries is the acceptance battery: >= 200 randomized
// planted direct-mapped geometries with n <= 24, including rank-deficient
// H, each cracked with both strategies through alternating oracle styles.
// Every recovery must be set-mapping equivalent to its plant, and the
// group-testing strategy must spend fewer logical queries than naive in
// aggregate (and per geometry once the rank is large enough for the
// exponential/linear gap to open).
func TestCrackRandomGeometries(t *testing.T) {
	const trials = 220
	var naiveTotal, groupTotal uint64
	deficient := 0
	for seed := int64(0); seed < trials; seed++ {
		n, m, rank := geometry(seed)
		if rank < m {
			deficient++
		}
		h := RandomPlant(n, m, rank, seed)
		style := Style(seed % 2)
		nv := crackPlanted(t, h, style, Options{Strategy: Naive})
		gr := crackPlanted(t, h, style, Options{Strategy: GroupTesting})
		naiveTotal += nv.LogicalQueries
		groupTotal += gr.LogicalQueries
		// Deterministic per-geometry bound: each bit costs at most one
		// existence probe, a |reps|-step binary search and one
		// verification, so n*(rank+2) caps the noise-free run.
		if bound := uint64(n) * uint64(rank+2); gr.LogicalQueries > bound {
			t.Errorf("seed %d (n=%d m=%d rank=%d): group used %d logical queries, bound %d",
				seed, n, m, rank, gr.LogicalQueries, bound)
		}
		// Per geometry the reduction only reliably pays once 2^rank
		// dwarfs rank+2; below that the group overhead (existence probe
		// + verification) can lose to a lucky naive coset walk.
		if rank >= 6 && gr.LogicalQueries >= nv.LogicalQueries {
			t.Errorf("seed %d (n=%d m=%d rank=%d): group used %d logical queries, naive %d",
				seed, n, m, rank, gr.LogicalQueries, nv.LogicalQueries)
		}
	}
	if deficient == 0 {
		t.Fatal("geometry schedule produced no rank-deficient plants")
	}
	if groupTotal >= naiveTotal {
		t.Fatalf("group testing used %d total logical queries, naive %d — reduction missing", groupTotal, naiveTotal)
	}
	t.Logf("%d geometries (%d rank-deficient): naive %d logical queries, group %d (%.1fx fewer)",
		trials, deficient, naiveTotal, groupTotal, float64(naiveTotal)/float64(groupTotal))
}

// TestCrackDifferential checks the recovered function against the
// planted one address by address: IndexTransform's witness B must
// satisfy planted(x) == B(recovered(x)) over a dense sweep of the whole
// address space (small n) and over random 64-bit addresses (the oracle
// masks to n bits, so the high bits must be ignored consistently).
func TestCrackDifferential(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		n := 4 + int(seed%9) // 4..12: dense sweep stays affordable
		m := 1 + int(seed)%(n-1)
		rank := m
		if rank > 8 {
			rank = 8
		}
		if seed%3 == 0 && rank > 1 {
			rank-- // mix in rank-deficient plants
		}
		h := RandomPlant(n, m, rank, 1000+seed)
		style := Style(seed % 2)
		strategy := Strategy(seed / 2 % 2)
		res := crackPlanted(t, h, style, Options{Strategy: strategy})
		b, ok := IndexTransform(res.Matrix, h)
		if !ok {
			t.Fatalf("seed %d: no transform", seed)
		}
		check := func(x uint64) {
			t.Helper()
			want := h.Apply(gf2.Vec(x) & gf2.Mask(n))
			got := b.Apply(res.Matrix.Apply(gf2.Vec(x) & gf2.Mask(n)))
			if got != want {
				t.Fatalf("seed %d: address %#x: planted index %#x, transformed recovered index %#x", seed, x, want, got)
			}
		}
		for x := uint64(0); x < 1<<uint(n); x++ {
			check(x)
		}
		rng := uint64(seed) + 0xA5A5
		for i := 0; i < 1000; i++ {
			check(splitmix(&rng)) // full 64-bit addresses
		}
	}
}

// TestCrackNoise plants functions behind a noisy oracle (spurious
// misses) and requires both strategies to still recover them once
// majority voting absorbs the noise. Ranks stay small: the naive
// strategy has no verification probe, so its failure probability
// scales with its (exponential-in-rank) query count; group testing
// additionally survives the corrupted searches via its retry loop.
func TestCrackNoise(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := uint64(seed)*0x9E3779B97F4A7C15 + 3
		n := 6 + int(splitmix(&s)%11) // 6..16
		m := 1 + int(splitmix(&s)%6)  // 1..6
		if m >= n {
			m = n - 1
		}
		rank := m
		if rank > 4 {
			rank = 4
		}
		h := RandomPlant(n, m, rank, 300+seed)
		for _, strategy := range []Strategy{Naive, GroupTesting} {
			inner, err := NewSimOracle(h, EvictionSet)
			if err != nil {
				t.Fatal(err)
			}
			o := NewNoisyOracle(inner, 0.05, 42+seed)
			res, err := Crack(o, Options{Strategy: strategy, Repeats: 4})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, strategy, err)
			}
			if !res.NullSpace.Equal(h.NullSpace()) {
				t.Fatalf("seed %d %v: noisy recovery diverged", seed, strategy)
			}
			// Majority voting must actually have repeated probes.
			if res.Stats.Queries <= res.LogicalQueries {
				t.Fatalf("seed %d %v: %d oracle queries for %d logical queries — no repetition?",
					seed, strategy, res.Stats.Queries, res.LogicalQueries)
			}
		}
	}
}

// forgingOracle answers every multi-address group probe positively
// (as relentless noise would) while staying honest on singletons. Group
// testing's verification probe must catch the forgery and, after
// exhausting its retries, report non-convergence rather than a wrong
// basis vector.
type forgingOracle struct{ inner Oracle }

func (f *forgingOracle) AddrBits() int { return f.inner.AddrBits() }
func (f *forgingOracle) Stats() Stats  { return f.inner.Stats() }
func (f *forgingOracle) Conflicts(target uint64, group []uint64) bool {
	real := f.inner.Conflicts(target, group)
	if len(group) > 1 {
		return true
	}
	return real
}

func TestCrackGroupNoiseExhaustion(t *testing.T) {
	h := RandomPlant(10, 4, 4, 7)
	inner, err := NewSimOracle(h, EvictionSet)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Crack(&forgingOracle{inner: inner}, Options{Strategy: GroupTesting})
	if !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("expected non-convergence error, got %v", err)
	}
}

// allIndependent reports no conflicts ever, so every address bit grows
// the representative set — the cheapest way to drive the cracker past
// MaxRecoverableRank without simulating a huge cache.
type allIndependent struct {
	n     int
	stats Stats
}

func (a *allIndependent) AddrBits() int { return a.n }
func (a *allIndependent) Stats() Stats  { return a.stats }
func (a *allIndependent) Conflicts(target uint64, group []uint64) bool {
	a.stats.Queries++
	a.stats.Accesses += uint64(len(group)) + 2
	return false
}

func TestCrackRankGuard(t *testing.T) {
	_, err := Crack(&allIndependent{n: MaxRecoverableRank + 8}, Options{Strategy: GroupTesting})
	if !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("expected rank-guard error, got %v", err)
	}
}

func TestCrackOptionValidation(t *testing.T) {
	h := RandomPlant(8, 3, 3, 1)
	o, err := NewSimOracle(h, HitMiss)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Crack(o, Options{Repeats: -1}); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("negative Repeats: got %v", err)
	}
	if _, err := Crack(o, Options{Strategy: Strategy(99)}); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("unknown strategy: got %v", err)
	}
}

func TestNewSimOracleValidation(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{8, 0}, {8, 8}, {4, 5}} {
		h := gf2.Identity(tc.n, tc.m)
		if _, err := NewSimOracle(h, HitMiss); !errors.Is(err, xerr.ErrInvalidGeometry) {
			t.Errorf("NewSimOracle(%dx%d): got %v, want ErrInvalidGeometry", tc.n, tc.m, err)
		}
	}
}

// TestPlantedBijective checks the simulator-side wrapper: for any
// planted rank the (index, tag) pair must distinguish every block, or
// the black box would merge addresses the real hardware separates.
func TestPlantedBijective(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 4 + int(seed%7) // 4..10
		m := 1 + int(seed)%(n-1)
		rank := 1 + int(seed)%m
		h := RandomPlant(n, m, rank, 2000+seed)
		f, err := newPlanted(h)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[[2]uint64]uint64, 1<<uint(n))
		for x := uint64(0); x < 1<<uint(n); x++ {
			key := [2]uint64{f.Index(x), f.Tag(x)}
			if prev, dup := seen[key]; dup {
				t.Fatalf("seed %d (n=%d m=%d rank=%d): blocks %#x and %#x share index %#x tag %#x",
					seed, n, m, rank, prev, x, key[0], key[1])
			}
			seen[key] = x
		}
	}
}

func TestRandomPlantProperties(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		n, m, rank := geometry(500 + seed)
		h := RandomPlant(n, m, rank, seed)
		if h.N != n || h.M != m {
			t.Fatalf("RandomPlant(%d, %d, ...): got %dx%d", n, m, h.N, h.M)
		}
		if got := h.Rank(); got != rank {
			t.Fatalf("RandomPlant(%d, %d, %d): rank %d", n, m, rank, got)
		}
		for j, col := range h.Cols {
			if col == 0 {
				t.Fatalf("RandomPlant(%d, %d, %d): zero column %d", n, m, rank, j)
			}
		}
	}
	// Determinism: same seed, same plant.
	a, b := RandomPlant(16, 8, 5, 99), RandomPlant(16, 8, 5, 99)
	if !a.Equal(b) {
		t.Fatal("RandomPlant not deterministic in seed")
	}
	for _, tc := range []struct{ n, m, rank int }{
		{1, 1, 1}, {8, 0, 1}, {8, 8, 8}, {8, 3, 0}, {8, 3, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomPlant(%d, %d, %d): expected panic", tc.n, tc.m, tc.rank)
				}
			}()
			RandomPlant(tc.n, tc.m, tc.rank, 0)
		}()
	}
}

func TestIndexTransformRejectsUnrelated(t *testing.T) {
	// planted uses address bit 3, which the recovered matrix ignores:
	// no column combination of rec can produce it.
	rec := gf2.MatrixFromCols(8, []gf2.Vec{gf2.Unit(0), gf2.Unit(1)})
	pl := gf2.MatrixFromCols(8, []gf2.Vec{gf2.Unit(3)})
	if _, ok := IndexTransform(rec, pl); ok {
		t.Fatal("IndexTransform invented a transform onto an unreachable column")
	}
	if Equivalent(rec, pl) {
		t.Fatal("Equivalent confused different null spaces")
	}
	if Equivalent(gf2.Identity(8, 2), gf2.Identity(9, 2)) {
		t.Fatal("Equivalent ignored ambient width")
	}
}

func TestNoisyOracleDeterminism(t *testing.T) {
	h := RandomPlant(10, 4, 4, 3)
	run := func(seed int64) []bool {
		inner, err := NewSimOracle(h, EvictionSet)
		if err != nil {
			t.Fatal(err)
		}
		o := NewNoisyOracle(inner, 0.5, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = o.Conflicts(0, []uint64{uint64(i) + 1})
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	same := true
	diff := false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Fatal("same seed produced different flip streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical flip streams (suspicious)")
	}
	if o := NewNoisyOracle(nil, 0, 0); o.rng == 0 {
		t.Fatal("zero seed left splitmix state stuck at zero")
	}
}

// FuzzCrackRecover drives randomized plants through the group-testing
// cracker: any reachable geometry must recover a set-mapping-equivalent
// function with an index-transform witness.
func FuzzCrackRecover(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(5), uint8(3), false)
	f.Add(int64(99), uint8(24), uint8(12), uint8(9), true)
	f.Add(int64(7), uint8(3), uint8(1), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed int64, nb, mb, rb uint8, evict bool) {
		n := 3 + int(nb)%22 // 3..24
		maxM := n - 1
		if maxM > 12 {
			maxM = 12
		}
		m := 1 + int(mb)%maxM
		maxR := m
		if maxR > 10 {
			maxR = 10
		}
		rank := 1 + int(rb)%maxR
		h := RandomPlant(n, m, rank, seed)
		style := HitMiss
		if evict {
			style = EvictionSet
		}
		o, err := NewSimOracle(h, style)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Crack(o, Options{Strategy: GroupTesting})
		if err != nil {
			t.Fatal(err)
		}
		if !res.NullSpace.Equal(h.NullSpace()) {
			t.Fatalf("n=%d m=%d rank=%d seed=%d: wrong null space", n, m, rank, seed)
		}
		if _, ok := IndexTransform(res.Matrix, h); !ok {
			t.Fatalf("n=%d m=%d rank=%d seed=%d: no index transform", n, m, rank, seed)
		}
	})
}
