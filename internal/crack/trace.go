package crack

import (
	"fmt"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// Passive, trace-driven cracking: instead of choosing probe addresses,
// the attacker only watches an existing workload run through the
// hidden cache and sees which accesses hit and which missed. Each
// observation is still a GF(2) constraint on V = N(H), just a weaker
// one than an adaptive probe:
//
//   - a HIT on block a whose previous access saw blocks b_1..b_k in
//     between certifies a⊕b_j ∉ V for every j (none evicted a);
//   - a MISS on a previously-seen block a with exactly ONE distinct
//     block b in between certifies a⊕b ∈ V (only b can have evicted
//     a on a direct-mapped cache);
//   - a miss with several in-between blocks only says "at least one of
//     them conflicts" — a disjunction, recorded but not solved.
//
// The positives accumulate into a subspace; the negatives cross-check
// it (a negative inside the recovered span means the observations were
// inconsistent with a direct-mapped linear cache — noise, or a wrong
// geometry assumption). How much of V this recovers depends entirely
// on the trace's reuse structure, so the result reports coverage
// rather than claiming completeness; the adaptive oracle modes exist
// for that.

// TraceResult is what passive observation recovered.
type TraceResult struct {
	// Recovered is the span of all certain conflict differences: a
	// subspace of the true N(H), equal to it when the trace is rich
	// enough.
	Recovered gf2.Subspace
	// Positives counts certain-conflict constraints (singleton
	// eviction windows), Negatives the certain-non-conflict ones, and
	// Disjunctions the ambiguous multi-block miss windows that
	// contributed nothing.
	Positives    int
	Negatives    int
	Disjunctions int
	// Inconsistent counts negative constraints that contradict the
	// recovered span — nonzero means the hit/miss stream cannot have
	// come from a direct-mapped cache with a linear index of this
	// width (or the observations are noisy).
	Inconsistent int
}

// maxWindow bounds the backwards scan per access. Reuse windows longer
// than this yield weak constraints at quadratic scan cost, so they are
// counted as disjunctions and skipped.
const maxWindow = 4096

// CrackTrace extracts constraints from a passively observed replay:
// blocks is the access sequence (block addresses), missed the
// per-access observation, n the hashed address width. The two slices
// must be the same length.
func CrackTrace(blocks []uint64, missed []bool, n int) (*TraceResult, error) {
	if len(blocks) != len(missed) {
		return nil, fmt.Errorf("crack: %d accesses but %d observations: %w", len(blocks), len(missed), xerr.ErrInvalidOptions)
	}
	if n <= 0 || n > gf2.MaxBits {
		return nil, fmt.Errorf("crack: address width %d out of range: %w", n, xerr.ErrInvalidOptions)
	}
	mask := uint64(gf2.Mask(n))
	res := &TraceResult{Recovered: gf2.ZeroSubspace(n)}
	last := make(map[uint64]int, 1024)
	var negatives []gf2.Vec
	for t, raw := range blocks {
		a := raw & mask
		prev, seen := last[a]
		last[a] = t
		if !seen {
			continue // compulsory miss: no constraint
		}
		if t-prev-1 > maxWindow {
			if missed[t] {
				res.Disjunctions++
			}
			continue
		}
		// Distinct in-between blocks, preserving nothing but identity.
		between := make(map[uint64]struct{}, 8)
		for _, b := range blocks[prev+1 : t] {
			if b&mask != a {
				between[b&mask] = struct{}{}
			}
		}
		switch {
		case !missed[t]:
			for b := range between {
				res.Negatives++
				negatives = append(negatives, gf2.Vec(a^b))
			}
		case len(between) == 1:
			res.Positives++
			for b := range between {
				res.Recovered = res.Recovered.Extend(gf2.Vec(a ^ b))
			}
		default:
			res.Disjunctions++
		}
	}
	// Second pass over the collected negatives: membership can only be
	// judged against the final span (a constraint collected early may
	// contradict a positive found later).
	for _, d := range negatives {
		if res.Recovered.Contains(d) {
			res.Inconsistent++
		}
	}
	return res, nil
}

// ObserveTrace replays a block sequence through a hit/miss oracle and
// returns the observation vector CrackTrace consumes — the glue
// between a simulated black box and the passive attack. Real-world use
// would substitute timing measurements here.
func ObserveTrace(o *SimOracle, blocks []uint64) ([]bool, error) {
	return o.RunSequence(blocks)
}
