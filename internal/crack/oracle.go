package crack

import (
	"fmt"

	"xoridx/internal/cache"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/xerr"
)

// Stats counts the attacker-visible cost of probing: how many probe
// sequences were issued (Queries) and how many memory accesses they
// contained in total (Accesses). The eviction-set literature prices
// attacks in accesses; the query count is the number of timed
// prime-probe rounds, which is what adaptive strategies minimize.
type Stats struct {
	Queries  uint64
	Accesses uint64
}

// Oracle is the black box under attack: a direct-mapped cache with a
// hidden index function that can only be driven by memory accesses and
// observed through hit/miss behaviour. Implementations must answer
// Conflicts without exposing the function itself.
type Oracle interface {
	// AddrBits returns n, the hashed block-address width. The attacker
	// is assumed to know the geometry (it is printed on the datasheet);
	// only the index function is secret.
	AddrBits() int
	// Conflicts reports whether accessing every address of group (in
	// order) evicts target from the cache: prime target, walk the
	// group, re-access target, observe whether the re-access misses.
	// For a direct-mapped cache that is exactly "some group member maps
	// to target's set". Group members must be distinct from target.
	Conflicts(target uint64, group []uint64) bool
	// Stats returns the cumulative probe cost so far.
	Stats() Stats
}

// planted wraps an index matrix of ANY column rank as a hash.Func, so
// a rank-deficient H (some sets unreachable — a plausible buggy or
// degenerate deployment) can be planted in the simulator. hash.NewXOR
// deliberately rejects such matrices for construction; the black box
// must nevertheless behave like real hardware wired with one, so the
// tag completes col-space(H) to full rank with n-rank(H) selected bits
// (rather than hash.XOR's n-m), keeping (index, tag) bijective.
type planted struct {
	h   gf2.Matrix
	tag gf2.Matrix
}

// newPlanted builds the black box's hidden function from h.
func newPlanted(h gf2.Matrix) (*planted, error) {
	if h.N <= 0 || h.N > gf2.MaxBits || h.M < 0 {
		return nil, fmt.Errorf("crack: planted matrix %dx%d out of range: %w", h.N, h.M, xerr.ErrInvalidGeometry)
	}
	span := gf2.Span(h.N, h.Cols...)
	positions := make([]int, 0, h.N-span.Dim())
	for i := h.N - 1; i >= 0; i-- {
		u := gf2.Unit(i)
		if !span.Contains(u) {
			span = span.Extend(u)
			positions = append(positions, i)
		}
	}
	for i, j := 0, len(positions)-1; i < j; i, j = i+1, j-1 {
		positions[i], positions[j] = positions[j], positions[i]
	}
	return &planted{h: h, tag: gf2.BitSelect(h.N, positions)}, nil
}

func (f *planted) Index(block uint64) uint64 {
	return uint64(f.h.Apply(gf2.Vec(block) & gf2.Mask(f.h.N)))
}

func (f *planted) Tag(block uint64) uint64 {
	return uint64(f.tag.Apply(gf2.Vec(block) & gf2.Mask(f.h.N)))
}

func (f *planted) AddrBits() int      { return f.h.N }
func (f *planted) SetBits() int       { return f.h.M }
func (f *planted) Matrix() gf2.Matrix { return f.h.Clone() }
func (f *planted) String() string     { return fmt.Sprintf("planted %d->%d", f.h.N, f.h.M) }

var _ hash.Func = (*planted)(nil)

// SimOracle is an Oracle over an internal/cache simulator with a
// planted hidden function. Two observation styles are supported (the
// two probe primitives of the reverse-engineering literature):
//
//   - hit/miss: the attacker sees the full per-access hit/miss vector
//     of each probe sequence and reads the answer off the last access
//     (Wei et al.'s timing measurements);
//   - eviction-set membership: the attacker only learns the boolean
//     "did the candidate set evict the target" (Vila et al.'s TEST).
//
// Both reduce to the same cache mechanics; the style selects what the
// oracle exposes, and RunSequence is only available in hit/miss style.
type SimOracle struct {
	c     *cache.Cache
	n     int
	style Style
	stats Stats
}

// Style selects the observation interface a SimOracle exposes.
type Style int

const (
	// HitMiss exposes per-access hit/miss vectors (RunSequence).
	HitMiss Style = iota
	// EvictionSet exposes only the membership-test boolean.
	EvictionSet
)

// String names the style for CLI/report output.
func (s Style) String() string {
	switch s {
	case HitMiss:
		return "hitmiss"
	case EvictionSet:
		return "evict"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// NewSimOracle plants h (any rank; columns beyond rank just alias
// sets) in a direct-mapped simulator of 2^h.M sets and returns the
// black box. The block size is fixed at the paper's 4 bytes; probes
// address blocks directly so it never matters.
func NewSimOracle(h gf2.Matrix, style Style) (*SimOracle, error) {
	if h.M < 1 || h.M >= h.N {
		return nil, fmt.Errorf("crack: need 1 <= m < n, got %dx%d: %w", h.N, h.M, xerr.ErrInvalidGeometry)
	}
	f, err := newPlanted(h)
	if err != nil {
		return nil, err
	}
	const blockBytes = 4
	c, err := cache.New(cache.Config{
		SizeBytes:  blockBytes << uint(h.M),
		BlockBytes: blockBytes,
		Ways:       1,
		Index:      f,
	})
	if err != nil {
		return nil, err
	}
	// The oracle replays millions of probe accesses; the miss-class
	// shadow directory is an attacker-invisible bookkeeping cost.
	c.DisableClassification()
	return &SimOracle{c: c, n: h.N, style: style}, nil
}

// AddrBits implements Oracle.
func (o *SimOracle) AddrBits() int { return o.n }

// Style returns the observation style the oracle was built with.
func (o *SimOracle) Style() Style { return o.style }

// Conflicts implements Oracle. No flush is needed between probes: the
// priming access makes target resident whatever state earlier probes
// left behind, so the final re-access misses iff a group member maps
// to target's set — the probe is self-contained on a direct-mapped
// cache.
func (o *SimOracle) Conflicts(target uint64, group []uint64) bool {
	o.stats.Queries++
	o.stats.Accesses += uint64(len(group)) + 2
	o.c.AccessBlock(target)
	for _, g := range group {
		o.c.AccessBlock(g)
	}
	return o.c.AccessBlock(target)
}

// RunSequence plays an arbitrary block-address sequence and returns
// the per-access miss vector — the raw hit/miss observation interface.
// It is only available in HitMiss style; the eviction-set oracle
// deliberately hides individual accesses.
func (o *SimOracle) RunSequence(seq []uint64) ([]bool, error) {
	if o.style != HitMiss {
		return nil, fmt.Errorf("crack: RunSequence needs a hit/miss oracle: %w", xerr.ErrInvalidOptions)
	}
	o.stats.Queries++
	o.stats.Accesses += uint64(len(seq))
	misses := make([]bool, len(seq))
	for i, b := range seq {
		misses[i] = o.c.AccessBlock(b)
	}
	return misses, nil
}

// Stats implements Oracle.
func (o *SimOracle) Stats() Stats { return o.stats }

// NoisyOracle wraps an Oracle with spurious misses: with probability
// Rate each probe's final observation is forced to "miss" (reported as
// a conflict even when none occurred), the way an interfering
// co-runner or prefetcher pollutes timing measurements on real
// hardware. The flip stream is deterministic in Seed, so noisy runs
// reproduce. Crack's majority-vote repetition (Options.Repeats) is the
// countermeasure.
type NoisyOracle struct {
	Inner Oracle
	Rate  float64
	rng   uint64
}

// NewNoisyOracle seeds the deterministic flip stream; a zero seed is
// remapped so the splitmix state never sticks at zero.
func NewNoisyOracle(inner Oracle, rate float64, seed int64) *NoisyOracle {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &NoisyOracle{Inner: inner, Rate: rate, rng: s}
}

// AddrBits implements Oracle.
func (o *NoisyOracle) AddrBits() int { return o.Inner.AddrBits() }

// Stats implements Oracle.
func (o *NoisyOracle) Stats() Stats { return o.Inner.Stats() }

// Conflicts implements Oracle, forcing a spurious positive with
// probability Rate.
func (o *NoisyOracle) Conflicts(target uint64, group []uint64) bool {
	hit := o.Inner.Conflicts(target, group)
	if o.next() < o.Rate {
		return true
	}
	return hit
}

// next returns a deterministic uniform float64 in [0, 1) (splitmix64).
func (o *NoisyOracle) next() float64 {
	o.rng += 0x9E3779B97F4A7C15
	z := o.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
