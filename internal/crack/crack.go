// Package crack recovers an unknown XOR index function from black-box
// cache behaviour — the inverse of everything else in this repository.
//
// The construction pipeline (internal/core) assumes H is ours to
// choose. Real hardware poses the opposite problem: the index function
// is hidden in the silicon, and all an attacker (or an auditor
// validating a deployed configuration) can do is issue memory accesses
// and time them. Wei et al. ("Cracking Intel Sandy Bridge's Cache Hash
// Function") and Vila et al. ("Theory and Practice of Finding Eviction
// Sets") show this suffices: because H is linear over GF(2), every
// observed eviction is a linear constraint, and enough constraints pin
// H up to the invertible row transforms that relabel sets.
//
// The key identity is paper Eq. 2 run backwards: two blocks x, y
// collide under H iff x⊕y ∈ N(H). A probe "access t, access g,
// re-access t and observe a miss" therefore tests membership of t⊕g in
// the hidden null space V = N(H). Crack reconstructs a basis of V from
// such tests, one address bit at a time, and MatrixWithNullSpace turns
// it back into a canonical H′ with N(H′) = V — the best any black-box
// attack can do, since post-multiplying H by an invertible matrix
// changes no observable behaviour.
//
// Two probe strategies are implemented. Naive per-bit probing tests
// every candidate of the coset e_i ⊕ span(reps) with an individual
// pair probe: up to 2^rank(H) queries per address bit. The
// group-testing reduction (Vila et al. §4) asks the oracle about whole
// candidate groups and binary-searches the positive group, needing
// only rank(H)+2 queries per bit — exponentially fewer timed probe
// rounds for the same recovered function. Both counts are reported so
// BENCH_crack.json can pin the reduction.
package crack

import (
	"fmt"
	"math/bits"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// Strategy selects how Crack generates probe sequences.
type Strategy int

const (
	// Naive probes every coset candidate with an individual pair test.
	Naive Strategy = iota
	// GroupTesting probes whole candidate groups and binary-searches
	// positives (Vila et al.'s reduction).
	GroupTesting
)

// String names the strategy for CLI/report output.
func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case GroupTesting:
		return "group"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// MaxRecoverableRank bounds rank(H) for a crack run: each address bit
// may require enumerating the 2^rank coset of the representatives
// found so far, so the candidate buffers (and the naive query count)
// grow as 2^rank. 22 keeps the worst-case buffer at a few tens of MB.
const MaxRecoverableRank = 22

// Options tunes a crack run.
type Options struct {
	// Strategy selects the probe generator; default Naive.
	Strategy Strategy
	// Repeats adds majority-vote noise resistance: each logical query
	// is asked 2*Repeats+1 times and decided by majority. 0 means one
	// oracle call per query (noise-free setting).
	Repeats int
}

// Result is a recovered index function.
type Result struct {
	// NullSpace is the recovered N(H): the complete set of block-
	// address differences that collide in the hidden cache.
	NullSpace gf2.Subspace
	// Matrix is the canonical full-column-rank matrix with that null
	// space (n × Rank columns). It equals the planted H up to an
	// invertible output transform; IndexTransform computes the witness.
	Matrix gf2.Matrix
	// Rank is n - NullSpace.Dim(): the number of independent set-index
	// bits the hidden function actually uses. For a rank-deficient
	// planted H this is smaller than the planted column count.
	Rank int
	// LogicalQueries counts majority-voted membership questions; the
	// oracle's Stats() count each repetition individually.
	LogicalQueries uint64
	// Stats is the oracle-side probe cost of this run (queries include
	// majority-vote repetitions).
	Stats Stats
}

// Crack recovers the hidden function's null space from o, processing
// address bits in ascending order. For each bit i it decides whether
// e_i is linearly dependent on the already-recovered structure modulo
// V — i.e. whether the coset e_i ⊕ span(reps) intersects V — and
// either extends the null-space basis (dependent: the intersection
// vector is a new collision direction) or the representative set
// (independent: e_i reaches a fresh set). After n bits, span of the
// collected vectors is exactly V.
//
// The target of every probe is block 0: since H is linear, H(0) = 0,
// so a candidate c conflicts with 0 iff c ∈ V. Candidates always have
// the fresh bit i set, hence are nonzero and distinct from the target.
func Crack(o Oracle, opts Options) (*Result, error) {
	n := o.AddrBits()
	if n <= 0 || n > gf2.MaxBits {
		return nil, fmt.Errorf("crack: oracle address width %d out of range: %w", n, xerr.ErrInvalidOptions)
	}
	if opts.Repeats < 0 {
		return nil, fmt.Errorf("crack: negative Repeats: %w", xerr.ErrInvalidOptions)
	}
	c := &cracker{o: o, opts: opts, before: o.Stats()}
	var reps []gf2.Vec
	null := gf2.ZeroSubspace(n)
	for i := 0; i < n; i++ {
		if len(reps) > MaxRecoverableRank {
			return nil, fmt.Errorf("crack: hidden function rank exceeds %d (coset enumeration would need 2^%d probes per bit): %w",
				MaxRecoverableRank, len(reps), xerr.ErrInvalidOptions)
		}
		d := gf2.Unit(i)
		var member gf2.Vec
		var found bool
		var err error
		switch opts.Strategy {
		case Naive:
			member, found = c.findMemberNaive(d, reps)
		case GroupTesting:
			member, found, err = c.findMemberGroup(d, reps)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("crack: unknown strategy %d: %w", opts.Strategy, xerr.ErrInvalidOptions)
		}
		if found {
			null = null.Extend(member)
		} else {
			reps = append(reps, d)
		}
	}
	after := o.Stats()
	res := &Result{
		NullSpace:      null,
		Matrix:         gf2.MatrixWithNullSpace(null),
		Rank:           n - null.Dim(),
		LogicalQueries: c.logical,
		Stats: Stats{
			Queries:  after.Queries - c.before.Queries,
			Accesses: after.Accesses - c.before.Accesses,
		},
	}
	return res, nil
}

// cracker carries one run's probe bookkeeping.
type cracker struct {
	o       Oracle
	opts    Options
	before  Stats
	logical uint64
	scratch []uint64 // candidate buffer, reused across bits
}

// query asks one logical membership question (majority-voted when
// Repeats > 0): does the group evict block 0, i.e. does it contain a
// member of V?
func (c *cracker) query(group []uint64) bool {
	c.logical++
	votes := 2*c.opts.Repeats + 1
	positive := 0
	for v := 0; v < votes; v++ {
		if c.o.Conflicts(0, group) {
			positive++
		}
		// Early majority: no later vote can change the outcome.
		if positive > votes/2 || positive+(votes-1-v) <= votes/2 {
			break
		}
	}
	return positive > votes/2
}

// coset fills the scratch buffer with every candidate e_i ⊕ ΣT over
// subsets T ⊆ reps, in Gray-code order (consecutive candidates differ
// by one representative), starting at d itself.
func (c *cracker) coset(d gf2.Vec, reps []gf2.Vec) []uint64 {
	size := 1 << uint(len(reps))
	if cap(c.scratch) < size {
		c.scratch = make([]uint64, size)
	}
	out := c.scratch[:size]
	cur := d
	out[0] = uint64(cur)
	for i := 1; i < size; i++ {
		cur ^= reps[bits.TrailingZeros64(uint64(i))]
		out[i] = uint64(cur)
	}
	return out
}

// findMemberNaive walks the coset candidate by candidate, one pair
// probe each: worst case 2^len(reps) logical queries (bit
// independent), expected half that when a member exists.
func (c *cracker) findMemberNaive(d gf2.Vec, reps []gf2.Vec) (gf2.Vec, bool) {
	for _, cand := range c.coset(d, reps) {
		if c.query([]uint64{cand}) {
			return gf2.Vec(cand), true
		}
	}
	return 0, false
}

// groupRetries bounds how often a group-testing bit restarts after its
// verification probe exposes a noise-corrupted binary search. Noise
// only forges positives (spurious misses), so a restart re-runs the
// whole-coset test and either re-converges or concludes "independent".
const groupRetries = 4

// findMemberGroup is the group-testing reduction: one whole-coset
// probe decides existence, then a binary search over ever-halving
// groups pins the member — len(reps)+2 logical queries instead of
// 2^len(reps). The survivor is verified with a final pair probe, which
// catches binary searches led astray by spurious positives.
func (c *cracker) findMemberGroup(d gf2.Vec, reps []gf2.Vec) (gf2.Vec, bool, error) {
	for attempt := 0; attempt <= groupRetries; attempt++ {
		cands := c.coset(d, reps)
		if !c.query(cands) {
			// Spurious misses never flip a true positive to negative, so
			// a negative whole-coset test is conclusive.
			return 0, false, nil
		}
		for len(cands) > 1 {
			half := cands[:(len(cands)+1)/2]
			if c.query(half) {
				cands = half
			} else {
				cands = cands[(len(cands)+1)/2:]
			}
		}
		if c.query(cands[:1]) {
			return gf2.Vec(cands[0]), true, nil
		}
	}
	return 0, false, fmt.Errorf("crack: group testing did not converge after %d attempts — oracle noise exceeds what Repeats can absorb: %w",
		groupRetries+1, xerr.ErrInvalidOptions)
}

// Equivalent reports whether two index matrices induce the same set
// partition of the address space — equal null spaces, the equivalence
// class a black-box attack can recover (any invertible output
// transform between them is unobservable).
func Equivalent(a, b gf2.Matrix) bool {
	if a.N != b.N {
		return false
	}
	return a.NullSpace().Equal(b.NullSpace())
}

// IndexTransform solves rec·B = planted over GF(2), returning the
// witness B that relabels the recovered function's set indices into
// the planted function's. It exists exactly when col-space(planted) ⊆
// col-space(rec); for a faithful recovery the two column spaces are
// equal and B maps Rank independent index bits onto the planted
// (possibly rank-deficient) output layout.
func IndexTransform(rec, planted gf2.Matrix) (gf2.Matrix, bool) {
	if rec.N != planted.N || rec.M > gf2.MaxBits {
		return gf2.Matrix{}, false
	}
	// Eliminate over rec's columns, tracking which combination of them
	// produced each basis vector.
	type tracked struct {
		v     gf2.Vec // reduced column
		combo gf2.Vec // combination of rec columns that equals v
	}
	var basis []tracked
	reduceTracked := func(v, combo gf2.Vec) (gf2.Vec, gf2.Vec) {
		for _, b := range basis {
			if b.v != 0 && v&topBit(b.v) != 0 {
				v ^= b.v
				combo ^= b.combo
			}
		}
		return v, combo
	}
	for j, col := range rec.Cols {
		v, combo := reduceTracked(col, gf2.Vec(1)<<uint(j))
		if v != 0 {
			basis = append(basis, tracked{v, combo})
		}
	}
	out := gf2.NewMatrix(rec.M, planted.M)
	for j, col := range planted.Cols {
		v, combo := reduceTracked(col, 0)
		if v != 0 {
			return gf2.Matrix{}, false // planted column outside rec's span
		}
		out.Cols[j] = combo
	}
	if !rec.Mul(out).Equal(planted) {
		return gf2.Matrix{}, false
	}
	return out, true
}

// topBit returns a Vec with only the highest set bit of v (v != 0).
func topBit(v gf2.Vec) gf2.Vec {
	return gf2.Vec(1) << uint(bits.Len64(uint64(v))-1)
}

// RandomPlant generates a deterministic pseudo-random n×m index matrix
// of exactly the given column rank (1 <= rank <= min(n-1, m)): rank
// independent columns are drawn first, then the remaining m-rank
// columns are random combinations of them, and the column order is
// shuffled so the deficiency hides anywhere. Used by the self-test
// mode, the benchmarks and the fuzz target to plant hidden functions.
func RandomPlant(n, m, rank int, seed int64) gf2.Matrix {
	if n < 2 || n > gf2.MaxBits || m < 1 || m >= n || rank < 1 || rank > m {
		panic(fmt.Sprintf("crack: invalid plant geometry n=%d m=%d rank=%d", n, m, rank))
	}
	rng := uint64(seed)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	next := func() uint64 { return splitmix(&rng) }
	mask := gf2.Mask(n)
	// Independent part: retry until each new column leaves the span.
	span := gf2.ZeroSubspace(n)
	cols := make([]gf2.Vec, 0, m)
	for len(cols) < rank {
		v := gf2.Vec(next()) & mask
		if v == 0 || span.Contains(v) {
			continue
		}
		span = span.Extend(v)
		cols = append(cols, v)
	}
	// Dependent part: nonzero combinations keep columns individually
	// plausible (a zero column would be an instantly visible giveaway,
	// and is still representable by planting rank == m with m' < m).
	for len(cols) < m {
		combo := next() & (1<<uint(rank) - 1)
		if combo == 0 {
			combo = 1
		}
		var v gf2.Vec
		for r := 0; r < rank; r++ {
			if combo>>uint(r)&1 == 1 {
				v ^= cols[r]
			}
		}
		cols = append(cols, v)
	}
	// Fisher-Yates over the column order.
	for i := m - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		cols[i], cols[j] = cols[j], cols[i]
	}
	return gf2.MatrixFromCols(n, cols)
}

// splitmix advances a splitmix64 state and returns the next word.
func splitmix(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
