package crack

import (
	"errors"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// pairTrace builds a passive trace of x, y, x triples: every second
// visit to x has a singleton reuse window {y}, so each triple yields
// one certain constraint (positive when x⊕y collides, negative when
// not) — the richest trace shape for the passive cracker.
func pairTrace(n int, pairs int, seed uint64) []uint64 {
	rng := seed | 1
	mask := uint64(gf2.Mask(n))
	blocks := make([]uint64, 0, 3*pairs)
	for i := 0; i < pairs; i++ {
		x := splitmix(&rng) & mask
		y := splitmix(&rng) & mask
		if x == y {
			continue
		}
		blocks = append(blocks, x, y, x)
	}
	return blocks
}

// TestCrackTraceRecovers replays rich passive traces through planted
// simulators and requires full null-space recovery with zero
// inconsistencies: every singleton-window miss is a true collision and
// every hit a true non-collision when the black box really is a
// direct-mapped linear cache.
func TestCrackTraceRecovers(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 6 + int(seed%5) // 6..10
		m := 2 + int(seed)%3
		if m >= n {
			m = n - 1
		}
		rank := m
		if seed%4 == 0 && rank > 1 {
			rank--
		}
		h := RandomPlant(n, m, rank, 4000+seed)
		o, err := NewSimOracle(h, HitMiss)
		if err != nil {
			t.Fatal(err)
		}
		blocks := pairTrace(n, 4000, uint64(seed)+11)
		missed, err := ObserveTrace(o, blocks)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CrackTrace(blocks, missed, n)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recovered.Equal(h.NullSpace()) {
			t.Fatalf("seed %d (n=%d m=%d rank=%d): recovered dim %d of %d (%d positives, %d negatives)",
				seed, n, m, rank, res.Recovered.Dim(), h.NullSpace().Dim(), res.Positives, res.Negatives)
		}
		if res.Inconsistent != 0 {
			t.Fatalf("seed %d: %d inconsistent constraints from a noise-free linear cache", seed, res.Inconsistent)
		}
		if res.Positives == 0 || res.Negatives == 0 {
			t.Fatalf("seed %d: degenerate trace (%d positives, %d negatives)", seed, res.Positives, res.Negatives)
		}
	}
}

// TestCrackTracePartial feeds a trace too poor to pin the whole null
// space and checks the result honestly reports a strict subspace
// rather than padding it out.
func TestCrackTracePartial(t *testing.T) {
	h := RandomPlant(12, 4, 4, 5)
	o, err := NewSimOracle(h, HitMiss)
	if err != nil {
		t.Fatal(err)
	}
	blocks := pairTrace(12, 3, 9)
	missed, err := ObserveTrace(o, blocks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrackTrace(blocks, missed, 12)
	if err != nil {
		t.Fatal(err)
	}
	null := h.NullSpace()
	if res.Recovered.Dim() >= null.Dim() {
		t.Skip("tiny trace happened to span the null space")
	}
	for _, b := range res.Recovered.Basis {
		if !null.Contains(b) {
			t.Fatalf("partial recovery contains %v outside the true null space", b)
		}
	}
}

// TestCrackTraceDisjunction checks that a multi-block eviction window
// is recorded as a disjunction, not resolved into a (possibly wrong)
// positive constraint.
func TestCrackTraceDisjunction(t *testing.T) {
	// Identity index on 2 set bits: blocks 0 and 4 share set 0.
	h := gf2.Identity(4, 2)
	o, err := NewSimOracle(h, HitMiss)
	if err != nil {
		t.Fatal(err)
	}
	// 0, then two candidates (4 evicts it, 1 does not), then 0 again:
	// the re-access misses with window {4, 1} — ambiguous.
	blocks := []uint64{0, 4, 1, 0}
	missed, err := ObserveTrace(o, blocks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrackTrace(blocks, missed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disjunctions != 1 || res.Positives != 0 {
		t.Fatalf("got %d disjunctions, %d positives; want 1, 0", res.Disjunctions, res.Positives)
	}
	if res.Recovered.Dim() != 0 {
		t.Fatalf("ambiguous window extended the recovered space to dim %d", res.Recovered.Dim())
	}
}

// TestCrackTraceWindowCap checks that reuse windows beyond maxWindow
// are skipped (counted as disjunctions when they end in a miss) instead
// of scanned quadratically.
func TestCrackTraceWindowCap(t *testing.T) {
	n := 14
	blocks := make([]uint64, 0, maxWindow+3)
	blocks = append(blocks, 1)
	for i := 0; i < maxWindow+1; i++ {
		blocks = append(blocks, uint64(2+i))
	}
	blocks = append(blocks, 1)
	h := gf2.Identity(n, 3)
	o, err := NewSimOracle(h, HitMiss)
	if err != nil {
		t.Fatal(err)
	}
	missed, err := ObserveTrace(o, blocks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrackTrace(blocks, missed, n)
	if err != nil {
		t.Fatal(err)
	}
	if !missed[len(missed)-1] {
		t.Fatal("re-access unexpectedly hit across a cache-filling window")
	}
	if res.Disjunctions != 1 {
		t.Fatalf("capped window: got %d disjunctions, want 1", res.Disjunctions)
	}
	if res.Positives != 0 || res.Recovered.Dim() != 0 {
		t.Fatal("capped window leaked constraints")
	}
}

// TestCrackTraceInconsistent feeds observations no direct-mapped linear
// cache could produce and checks the contradiction is surfaced.
func TestCrackTraceInconsistent(t *testing.T) {
	// Trace a, b, a, a, b, a with hand-forged observations: first
	// window says a⊕b evicted (positive), second says it did not
	// (negative on the same difference).
	blocks := []uint64{1, 3, 1, 1, 3, 1}
	missed := []bool{true, true, true, false, true, false}
	res, err := CrackTrace(blocks, missed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inconsistent == 0 {
		t.Fatal("contradictory observations not flagged")
	}
}

func TestCrackTraceValidation(t *testing.T) {
	if _, err := CrackTrace([]uint64{1}, nil, 4); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("length mismatch: got %v", err)
	}
	if _, err := CrackTrace(nil, nil, 0); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("zero width: got %v", err)
	}
	if _, err := CrackTrace(nil, nil, 65); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("overwide: got %v", err)
	}
}

func TestObserveTraceNeedsHitMiss(t *testing.T) {
	h := gf2.Identity(4, 2)
	o, err := NewSimOracle(h, EvictionSet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ObserveTrace(o, []uint64{1, 2}); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("eviction-set oracle accepted RunSequence: %v", err)
	}
}
