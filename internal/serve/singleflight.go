package serve

// A minimal singleflight: concurrent callers asking for the same work
// share one execution. The serving loop uses it to deduplicate
// re-tune requests — a window boundary, an operator poke and a
// checkpoint-triggered retune arriving together must run the
// optimizer once, not three times. Hand-rolled (stdlib only, ~40
// lines) rather than imported; the x/sync version's forgotten/panic
// machinery is not needed here.

import (
	"context"
	"sync"

	"xoridx/internal/xerr"
)

// flightCall is one in-flight execution.
type flightCall struct {
	done chan struct{}
	ep   *Epoch
	err  error
}

// flightGroup deduplicates executions by key. The zero value is ready
// to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Do executes fn under key, unless a call with the same key is already
// running, in which case the caller waits for that call's result
// instead. shared reports whether the result came from another
// caller's execution. A waiting caller whose ctx ends returns early
// with a wrapped xerr.ErrCanceled; the execution itself keeps running
// for the callers still waiting on it.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*Epoch, error)) (ep *Epoch, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.ep, true, c.err
		case <-ctx.Done():
			return nil, true, xerr.Canceled(ctx)
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.ep, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.ep, false, c.err
}
