package serve

// Service-state checkpointing: the whole serving loop — every shard's
// windowed histograms plus the published epoch — persists as one
// atomic file, so a killed server restarts exactly where it stopped:
// same epoch (sequence, matrix, estimates) and same profiles, proven
// by the kill/restart differential in serve_test.go.
//
// Layout inside the usual ckpt envelope (magic "XSV1", CRC-32C):
//
//	uvarint n, cacheBlocks, m
//	8 bytes  decay (IEEE-754 bits, little-endian)
//	uvarint shards, rotations
//	epoch:   uvarint seq, window, estimated, prevEstimated, baseline;
//	         1 byte changed; m × uvarint matrix columns
//	shards × (uvarint length + embedded profile.Windowed snapshot)
//
// The per-shard blobs are the Windowed codec verbatim (its own "XWP1"
// envelope, CRC and all), so every validation that codec performs —
// counter arithmetic, histogram/TotalPairs equality, stack bounds —
// applies here too; this layer only adds the cross-checks the inner
// codec cannot see (shard count, geometry/decay agreement with the
// server's options, matrix shape and rank).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"xoridx/internal/ckpt"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

const (
	serviceMagic   = "XSV1"
	serviceVersion = 1
)

// serviceState is a decoded checkpoint, ready to seed a new Server.
type serviceState struct {
	shards    []*profile.Windowed
	epoch     *Epoch
	rotations uint64
}

// SaveCheckpoint snapshots the full service state to CheckpointPath
// atomically (temp file + rename). Safe to call concurrently — writes
// serialize — and at any moment: shard snapshots enqueue behind any
// in-flight ingest, so each captures a consistent access boundary.
// Returns ErrClosed semantics only indirectly (a canceled context
// while collecting shard snapshots).
func (s *Server) SaveCheckpoint() error {
	if s.opt.CheckpointPath == "" {
		return fmt.Errorf("serve: no CheckpointPath configured: %w", xerr.ErrInvalidOptions)
	}
	blobs, err := s.collectShardSnapshots()
	if err != nil {
		return err
	}
	ep := s.cur.Load()
	rotations := s.rotations.Load()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return ckpt.WriteFileAtomic(s.opt.CheckpointPath, func(w io.Writer) error {
		return ckpt.Write(w, serviceMagic, serviceVersion, func(b *bytes.Buffer) error {
			var buf [binary.MaxVarintLen64]byte
			put := func(v uint64) { b.Write(buf[:binary.PutUvarint(buf[:], v)]) }
			put(uint64(s.n))
			put(uint64(s.cfg.CacheBytes / s.cfg.BlockBytes))
			put(uint64(s.m))
			var dec [8]byte
			binary.LittleEndian.PutUint64(dec[:], math.Float64bits(s.opt.Decay))
			b.Write(dec[:])
			put(uint64(len(s.shards)))
			put(rotations)
			put(ep.Seq)
			put(ep.Window)
			put(ep.Estimated)
			put(ep.PrevEstimated)
			put(ep.Baseline)
			if ep.Changed {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
			h := ep.Func.Matrix()
			for _, col := range h.Cols {
				put(uint64(col))
			}
			for _, blob := range blobs {
				put(uint64(len(blob)))
				b.Write(blob)
			}
			return nil
		})
	})
}

// collectShardSnapshots asks every shard goroutine to serialize its
// Windowed, pipelined like rotateAndMerge: all requests enqueue before
// any reply is awaited.
func (s *Server) collectShardSnapshots() ([][]byte, error) {
	replies := make([]chan snapReply, len(s.shards))
	for i, sh := range s.shards {
		rc := make(chan snapReply, 1)
		replies[i] = rc
		select {
		case sh.ch <- shardCmd{snap: rc}:
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	blobs := make([][]byte, len(s.shards))
	for i, rc := range replies {
		select {
		case rep := <-rc:
			if rep.err != nil {
				return nil, rep.err
			}
			blobs[i] = rep.data
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	return blobs, nil
}

// loadServiceState restores a checkpoint and validates it against the
// server's configuration: wrong geometry, decay or shard count is a
// wrapped xerr.ErrProfileMismatch (the operator changed the config
// under an old checkpoint), structural damage a wrapped xerr.ErrFormat.
func loadServiceState(path string, n, cacheBlocks, m int, decay float64, shards int) (*serviceState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil // cold start
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, payload, err := ckpt.Read(f, serviceMagic)
	if err != nil {
		return nil, err
	}
	if version != serviceVersion {
		return nil, fmt.Errorf("serve: checkpoint version %d, this build reads %d: %w",
			version, serviceVersion, xerr.ErrFormat)
	}
	d := &svcReader{b: payload}
	ckN := int(d.uvarint("n"))
	ckBlocks := int(d.uvarint("cacheBlocks"))
	ckM := int(d.uvarint("m"))
	ckDecay := d.float("decay")
	ckShards := int(d.uvarint("shards"))
	rotations := d.uvarint("rotations")
	if d.err != nil {
		return nil, d.err
	}
	if ckN != n || ckBlocks != cacheBlocks || ckM != m {
		return nil, fmt.Errorf("serve: checkpoint geometry (n=%d, %d blocks, m=%d) does not match config (n=%d, %d blocks, m=%d): %w",
			ckN, ckBlocks, ckM, n, cacheBlocks, m, xerr.ErrProfileMismatch)
	}
	if math.Float64bits(ckDecay) != math.Float64bits(decay) {
		return nil, fmt.Errorf("serve: checkpoint decay %v does not match config %v: %w",
			ckDecay, decay, xerr.ErrProfileMismatch)
	}
	if ckShards != shards {
		return nil, fmt.Errorf("serve: checkpoint has %d shards, config wants %d: %w",
			ckShards, shards, xerr.ErrProfileMismatch)
	}
	ep := &Epoch{
		Seq:           d.uvarint("epoch seq"),
		Window:        d.uvarint("epoch window"),
		Estimated:     d.uvarint("epoch estimated"),
		PrevEstimated: d.uvarint("epoch prevEstimated"),
		Baseline:      d.uvarint("epoch baseline"),
		Changed:       d.byte("epoch changed") == 1,
	}
	h := gf2.NewMatrix(n, m)
	mask := gf2.Mask(n)
	for c := 0; c < m; c++ {
		col := gf2.Vec(d.uvarint("matrix column"))
		if d.err == nil && col&^mask != 0 {
			return nil, fmt.Errorf("serve: checkpoint matrix column %#x exceeds %d bits: %w", uint64(col), n, xerr.ErrFormat)
		}
		h.Cols[c] = col
	}
	if d.err != nil {
		return nil, d.err
	}
	if ep.Seq == 0 {
		return nil, fmt.Errorf("serve: checkpoint epoch sequence 0: %w", xerr.ErrFormat)
	}
	f2, err := hash.NewXOR(h)
	if err != nil {
		// Rank-deficient or misshapen matrix: NewXOR validates it.
		return nil, fmt.Errorf("serve: checkpoint matrix: %w: %w", xerr.ErrFormat, err)
	}
	ep.Func = f2
	st := &serviceState{epoch: ep, rotations: rotations}
	st.shards = make([]*profile.Windowed, ckShards)
	for i := range st.shards {
		blobLen := d.uvarint("shard blob length")
		if d.err != nil {
			return nil, d.err
		}
		if blobLen > uint64(d.rem()) {
			return nil, fmt.Errorf("serve: checkpoint shard %d blob length %d exceeds remaining %d bytes: %w",
				i, blobLen, d.rem(), xerr.ErrFormat)
		}
		wb, err := profile.RestoreWindowed(bytes.NewReader(d.take(int(blobLen))))
		if err != nil {
			return nil, err
		}
		if wb.N() != n || wb.CacheBlocks() != cacheBlocks {
			return nil, fmt.Errorf("serve: checkpoint shard %d geometry disagrees with header: %w", i, xerr.ErrFormat)
		}
		if math.Float64bits(wb.Decay()) != math.Float64bits(decay) {
			return nil, fmt.Errorf("serve: checkpoint shard %d decay disagrees with header: %w", i, xerr.ErrFormat)
		}
		st.shards[i] = wb
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after checkpoint payload: %w", d.rem(), xerr.ErrFormat)
	}
	return st, nil
}

// svcReader decodes checkpoint payload primitives, latching the first
// failure as a wrapped xerr.ErrFormat (same idiom as the profile and
// search codecs).
type svcReader struct {
	b   []byte
	err error
}

func (d *svcReader) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.b)
	if k <= 0 {
		d.err = fmt.Errorf("serve: checkpoint %s: truncated or overlong varint: %w", what, xerr.ErrFormat)
		return 0
	}
	d.b = d.b[k:]
	return v
}

func (d *svcReader) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("serve: checkpoint %s: truncated: %w", what, xerr.ErrFormat)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *svcReader) float(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("serve: checkpoint %s: truncated: %w", what, xerr.ErrFormat)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[:8])
	d.b = d.b[8:]
	return math.Float64frombits(v)
}

func (d *svcReader) take(n int) []byte {
	if d.err != nil || n > len(d.b) {
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *svcReader) rem() int { return len(d.b) }
