package serve

// Service-state checkpointing: the whole serving loop — every shard's
// windowed histograms plus the published epoch — persists as one
// atomic file, so a killed server restarts exactly where it stopped:
// same epoch (sequence, matrix, estimates) and same profiles, proven
// by the kill/restart differential in serve_test.go.
//
// Layout, version 2: a ckpt envelope (magic "XSV1", CRC-32C) holding
// only the header, followed by the per-shard blobs appended raw:
//
//	envelope payload:
//	  uvarint n, cacheBlocks, m
//	  8 bytes  decay (IEEE-754 bits, little-endian)
//	  uvarint shards, rotations
//	  epoch:   uvarint seq, window, estimated, prevEstimated,
//	           baseline; 1 flags byte (bit 0 changed, bit 1 degraded);
//	           m × uvarint matrix columns
//	  shards × uvarint blob length
//	after the envelope:
//	  shards × raw profile.Windowed snapshot ("XWP1", self-CRC'd)
//
// Version 1 put the blobs inside the envelope, so its single CRC made
// a one-bit flip in one shard's histogram indistinguishable from a
// destroyed file. In version 2 each shard blob carries its own CRC and
// the (CRC-protected) header carries the framing, so damage localizes:
// a corrupt or truncated blob fails only its shard, and restore can
// heal — resume the healthy shards, cold-start the damaged ones — or
// refuse wholesale under Options.Strict. Damage to the envelope itself
// (header, epoch, framing) still fails the whole restore: there is no
// trustworthy frame to heal within.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"xoridx/internal/ckpt"
	"xoridx/internal/gf2"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

const (
	serviceMagic   = "XSV1"
	serviceVersion = 2

	epochFlagChanged  = 1 << 0
	epochFlagDegraded = 1 << 1
)

// serviceState is a decoded checkpoint, ready to seed a new Server.
type serviceState struct {
	shards    []*profile.Windowed
	epoch     *Epoch
	rotations uint64
	damage    []error // per-shard blob failures healed by cold-starting (non-Strict only)
}

// SaveCheckpoint snapshots the full service state to CheckpointPath
// atomically (temp file + rename). Safe to call concurrently — writes
// serialize — and at any moment: shard snapshots enqueue behind any
// in-flight ingest, so each captures a consistent access boundary. A
// quarantined (or mid-restart) shard cannot answer; its last recovery
// snapshot stands in, or an empty window when it never produced one —
// the checkpoint stays whole so every healthy shard's state persists.
func (s *Server) SaveCheckpoint() error {
	if s.opt.CheckpointPath == "" {
		return fmt.Errorf("serve: no CheckpointPath configured: %w", xerr.ErrInvalidOptions)
	}
	blobs, err := s.collectShardSnapshots()
	if err != nil {
		return err
	}
	ep := s.cur.Load()
	rotations := s.rotations.Load()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	err = ckpt.WriteFileAtomic(s.opt.CheckpointPath, func(w io.Writer) error {
		if err := ckpt.Write(w, serviceMagic, serviceVersion, func(b *bytes.Buffer) error {
			var buf [binary.MaxVarintLen64]byte
			put := func(v uint64) { b.Write(buf[:binary.PutUvarint(buf[:], v)]) }
			put(uint64(s.n))
			put(uint64(s.cfg.CacheBytes / s.cfg.BlockBytes))
			put(uint64(s.m))
			var dec [8]byte
			binary.LittleEndian.PutUint64(dec[:], math.Float64bits(s.opt.Decay))
			b.Write(dec[:])
			put(uint64(len(s.shards)))
			put(rotations)
			put(ep.Seq)
			put(ep.Window)
			put(ep.Estimated)
			put(ep.PrevEstimated)
			put(ep.Baseline)
			var flags byte
			if ep.Changed {
				flags |= epochFlagChanged
			}
			if ep.Degraded {
				flags |= epochFlagDegraded
			}
			b.WriteByte(flags)
			h := ep.Func.Matrix()
			for _, col := range h.Cols {
				put(uint64(col))
			}
			for _, blob := range blobs {
				put(uint64(len(blob)))
			}
			return nil
		}); err != nil {
			return err
		}
		for _, blob := range blobs {
			if _, err := w.Write(blob); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		s.checkpoints.Add(1)
	}
	return err
}

// collectShardSnapshots asks every shard goroutine to serialize its
// Windowed, pipelined like rotateAndMerge: all requests enqueue before
// any reply is awaited. Shards that cannot answer — quarantined up
// front, quarantined by a race (the drainer replies ErrQuarantined),
// or lost to a panic mid-request (the supervisor replies ErrPanic) —
// fall back to their last recovery snapshot.
func (s *Server) collectShardSnapshots() ([][]byte, error) {
	replies := make([]chan snapReply, len(s.shards))
	for i, sh := range s.shards {
		if sh.quarantined.Load() {
			continue
		}
		rc := make(chan snapReply, 1)
		replies[i] = rc
		select {
		case sh.ch <- shardCmd{snap: rc}:
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	blobs := make([][]byte, len(s.shards))
	for i, rc := range replies {
		if rc == nil {
			b, err := s.fallbackShardBlob(s.shards[i])
			if err != nil {
				return nil, err
			}
			blobs[i] = b
			continue
		}
		select {
		case rep := <-rc:
			if rep.err != nil {
				if errors.Is(rep.err, ErrQuarantined) || errors.Is(rep.err, xerr.ErrPanic) {
					b, err := s.fallbackShardBlob(s.shards[i])
					if err != nil {
						return nil, err
					}
					blobs[i] = b
					continue
				}
				return nil, rep.err
			}
			blobs[i] = rep.data
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	return blobs, nil
}

// fallbackShardBlob stands in for a shard that cannot serialize
// itself: its last recovery snapshot when one exists, an empty window
// otherwise.
func (s *Server) fallbackShardBlob(sh *shard) ([]byte, error) {
	if snap := sh.snap.Load(); snap != nil {
		return snap.data, nil
	}
	wb, err := s.newWindowed()
	if err != nil {
		return nil, err
	}
	var b writerBuffer
	if err := wb.Checkpoint(&b); err != nil {
		return nil, err
	}
	return b.data, nil
}

// loadServiceState restores a checkpoint file. See readServiceState.
func loadServiceState(path string, n, cacheBlocks, m int, decay float64, sample profile.SampleOptions, shards int, strict bool) (*serviceState, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil // cold start
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readServiceState(f, n, cacheBlocks, m, decay, sample, shards, strict)
}

// sameSampling compares two sampling configurations, treating every
// K <= 1 as the one exact mode (the seed is meaningless when not
// sampling).
func sameSampling(a, b profile.SampleOptions) bool {
	if a.K <= 1 && b.K <= 1 {
		return true
	}
	return a == b
}

// readServiceState decodes a checkpoint stream and validates it
// against the server's configuration: wrong geometry, decay or shard
// count is a wrapped xerr.ErrProfileMismatch (the operator changed the
// config under an old checkpoint), structural damage a wrapped
// xerr.ErrFormat. A damaged per-shard blob — bad CRC, bad decode,
// geometry/decay disagreeing with the header, or a truncated tail —
// fails only that shard: strict refuses the whole restore with an
// error naming it; otherwise the shard cold-starts and the failure is
// recorded in serviceState.damage.
func readServiceState(r io.Reader, n, cacheBlocks, m int, decay float64, sample profile.SampleOptions, shards int, strict bool) (*serviceState, error) {
	version, payload, err := ckpt.Read(r, serviceMagic)
	if err != nil {
		return nil, err
	}
	if version != serviceVersion {
		return nil, fmt.Errorf("serve: checkpoint version %d, this build reads %d: %w",
			version, serviceVersion, xerr.ErrFormat)
	}
	d := &svcReader{b: payload}
	ckN := int(d.uvarint("n"))
	ckBlocks := int(d.uvarint("cacheBlocks"))
	ckM := int(d.uvarint("m"))
	ckDecay := d.float("decay")
	ckShards := int(d.uvarint("shards"))
	rotations := d.uvarint("rotations")
	if d.err != nil {
		return nil, d.err
	}
	if ckN != n || ckBlocks != cacheBlocks || ckM != m {
		return nil, fmt.Errorf("serve: checkpoint geometry (n=%d, %d blocks, m=%d) does not match config (n=%d, %d blocks, m=%d): %w",
			ckN, ckBlocks, ckM, n, cacheBlocks, m, xerr.ErrProfileMismatch)
	}
	if math.Float64bits(ckDecay) != math.Float64bits(decay) {
		return nil, fmt.Errorf("serve: checkpoint decay %v does not match config %v: %w",
			ckDecay, decay, xerr.ErrProfileMismatch)
	}
	if ckShards != shards {
		return nil, fmt.Errorf("serve: checkpoint has %d shards, config wants %d: %w",
			ckShards, shards, xerr.ErrProfileMismatch)
	}
	ep := &Epoch{
		Seq:           d.uvarint("epoch seq"),
		Window:        d.uvarint("epoch window"),
		Estimated:     d.uvarint("epoch estimated"),
		PrevEstimated: d.uvarint("epoch prevEstimated"),
		Baseline:      d.uvarint("epoch baseline"),
	}
	flags := d.byte("epoch flags")
	ep.Changed = flags&epochFlagChanged != 0
	ep.Degraded = flags&epochFlagDegraded != 0
	if d.err == nil && flags&^byte(epochFlagChanged|epochFlagDegraded) != 0 {
		return nil, fmt.Errorf("serve: checkpoint epoch flags %#x unknown: %w", flags, xerr.ErrFormat)
	}
	h := gf2.NewMatrix(n, m)
	mask := gf2.Mask(n)
	for c := 0; c < m; c++ {
		col := gf2.Vec(d.uvarint("matrix column"))
		if d.err == nil && col&^mask != 0 {
			return nil, fmt.Errorf("serve: checkpoint matrix column %#x exceeds %d bits: %w", uint64(col), n, xerr.ErrFormat)
		}
		h.Cols[c] = col
	}
	blobLens := make([]uint64, ckShards)
	var totalBlob uint64
	for i := range blobLens {
		blobLens[i] = d.uvarint("shard blob length")
		if blobLens[i] > ckpt.MaxPayload {
			return nil, fmt.Errorf("serve: checkpoint shard %d blob length %d exceeds limit: %w",
				i, blobLens[i], xerr.ErrFormat)
		}
		totalBlob += blobLens[i]
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("serve: %d trailing bytes after checkpoint header: %w", d.rem(), xerr.ErrFormat)
	}
	if ep.Seq == 0 {
		return nil, fmt.Errorf("serve: checkpoint epoch sequence 0: %w", xerr.ErrFormat)
	}
	f2, err := hash.NewXOR(h)
	if err != nil {
		// Rank-deficient or misshapen matrix: NewXOR validates it.
		return nil, fmt.Errorf("serve: checkpoint matrix: %w: %w", xerr.ErrFormat, err)
	}
	ep.Func = f2
	st := &serviceState{epoch: ep, rotations: rotations}
	st.shards = make([]*profile.Windowed, ckShards)

	// The shard blobs follow the envelope raw; the envelope's CRC has
	// already vouched for the framing, so each blob decodes (and
	// fails) independently. truncated poisons every later blob: once
	// the stream runs short there is no next-blob boundary to trust.
	truncated := false
	cold := func(i int, cause error) error {
		if strict {
			return fmt.Errorf("serve: checkpoint shard %d damaged (strict resume refuses to heal): %w", i, cause)
		}
		st.damage = append(st.damage, fmt.Errorf("serve: checkpoint shard %d damaged, cold-starting it: %w", i, cause))
		wb, err := profile.NewSampledWindowed(n, cacheBlocks, decay, sample)
		if err != nil {
			return err
		}
		st.shards[i] = wb
		return nil
	}
	for i := range st.shards {
		if truncated {
			if err := cold(i, fmt.Errorf("blob lost to earlier truncation: %w", xerr.ErrFormat)); err != nil {
				return nil, err
			}
			continue
		}
		blob := make([]byte, blobLens[i])
		if _, err := io.ReadFull(r, blob); err != nil {
			truncated = true
			if err := cold(i, fmt.Errorf("blob truncated: %v: %w", err, xerr.ErrFormat)); err != nil {
				return nil, err
			}
			continue
		}
		wb, err := profile.RestoreWindowed(bytes.NewReader(blob))
		if err != nil {
			if err := cold(i, err); err != nil {
				return nil, err
			}
			continue
		}
		if wb.N() != n || wb.CacheBlocks() != cacheBlocks {
			if err := cold(i, fmt.Errorf("blob geometry disagrees with header: %w", xerr.ErrProfileMismatch)); err != nil {
				return nil, err
			}
			continue
		}
		if math.Float64bits(wb.Decay()) != math.Float64bits(decay) {
			if err := cold(i, fmt.Errorf("blob decay disagrees with header: %w", xerr.ErrProfileMismatch)); err != nil {
				return nil, err
			}
			continue
		}
		if !sameSampling(wb.Sampling(), sample) {
			// A shard profiled under a different subsample rate cannot
			// merge with the others; heal it cold rather than poisoning
			// every later rotation.
			if err := cold(i, fmt.Errorf("blob sampling disagrees with config: %w", xerr.ErrProfileMismatch)); err != nil {
				return nil, err
			}
			continue
		}
		st.shards[i] = wb
	}
	if !truncated {
		var tail [1]byte
		if k, _ := io.ReadFull(r, tail[:]); k != 0 {
			return nil, fmt.Errorf("serve: trailing bytes after checkpoint shard blobs: %w", xerr.ErrFormat)
		}
	}
	return st, nil
}

// svcReader decodes checkpoint payload primitives, latching the first
// failure as a wrapped xerr.ErrFormat (same idiom as the profile and
// search codecs).
type svcReader struct {
	b   []byte
	err error
}

func (d *svcReader) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.b)
	if k <= 0 {
		d.err = fmt.Errorf("serve: checkpoint %s: truncated or overlong varint: %w", what, xerr.ErrFormat)
		return 0
	}
	d.b = d.b[k:]
	return v
}

func (d *svcReader) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("serve: checkpoint %s: truncated: %w", what, xerr.ErrFormat)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *svcReader) float(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("serve: checkpoint %s: truncated: %w", what, xerr.ErrFormat)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[:8])
	d.b = d.b[8:]
	return math.Float64frombits(v)
}

func (d *svcReader) rem() int { return len(d.b) }
