package serve

// The ingest wire codec: how clients stream block accesses to a
// server. A stream is the 4-byte magic followed by frames, each
//
//	uvarint clientID
//	uvarint count           (1 .. MaxBatch)
//	count × varint deltas   (zig-zag; block[i] = block[i-1] + delta,
//	                         starting from 0 at each frame)
//
// Delta coding inside a frame keeps strided workloads compact (a
// constant stride is one byte per access after the first), and
// restarting the delta base at every frame keeps frames
// self-contained: any frame decodes without its predecessors, which is
// what lets the fuzzer, the retry layer and a resuming client all
// treat frames as the atomic unit.
//
// Error discipline mirrors internal/trace: structural damage —
// truncation mid-frame, an overlong varint, an oversized count, a bad
// magic — fails with a wrapped xerr.ErrFormat carrying the byte
// offset. Transient transport faults are not this layer's business:
// ServeIngest wraps the underlying reader in a faultio.RetryReader
// *below* the decoder, so by the time bytes reach it they are final.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"xoridx/internal/xerr"
)

// ingestMagic heads every ingest stream.
const ingestMagic = "XIG1"

// MaxBatch caps the accesses in one frame: large enough to amortise
// framing, small enough that a hostile count cannot balloon memory.
const MaxBatch = 1 << 16

// BatchWriter encodes ingest frames onto a stream. Not safe for
// concurrent use; give each client connection its own writer.
type BatchWriter struct {
	w       io.Writer
	buf     []byte
	started bool
}

// NewBatchWriter starts an ingest stream on w; the magic is written
// with the first frame.
func NewBatchWriter(w io.Writer) *BatchWriter { return &BatchWriter{w: w} }

// WriteBatch encodes one frame. Empty batches are a no-op; batches
// beyond MaxBatch are rejected (split them) with a wrapped
// xerr.ErrInvalidOptions. The frame is buffered and written with a
// single Write so a frame never interleaves with another writer's
// output at the transport layer.
func (bw *BatchWriter) WriteBatch(clientID uint64, blocks []uint64) error {
	if len(blocks) == 0 {
		return nil
	}
	if len(blocks) > MaxBatch {
		return fmt.Errorf("serve: batch of %d accesses exceeds MaxBatch %d: %w",
			len(blocks), MaxBatch, xerr.ErrInvalidOptions)
	}
	bw.buf = bw.buf[:0]
	if !bw.started {
		bw.buf = append(bw.buf, ingestMagic...)
		bw.started = true
	}
	bw.buf = binary.AppendUvarint(bw.buf, clientID)
	bw.buf = binary.AppendUvarint(bw.buf, uint64(len(blocks)))
	prev := uint64(0)
	for _, b := range blocks {
		bw.buf = binary.AppendVarint(bw.buf, int64(b-prev))
		prev = b
	}
	_, err := bw.w.Write(bw.buf)
	return err
}

// BatchReader decodes ingest frames from a stream.
type BatchReader struct {
	br      *bufio.Reader
	off     int64 // bytes consumed, for error reports
	started bool
}

// NewBatchReader wraps r for frame-at-a-time decoding.
func NewBatchReader(r io.Reader) *BatchReader {
	return &BatchReader{br: bufio.NewReader(r)}
}

// Next decodes one frame, reusing dst's backing array when it is large
// enough. A stream that ends cleanly — zero bytes, or exactly between
// frames — returns io.EOF; an end mid-frame is corruption and returns
// a wrapped xerr.ErrFormat with the offset. I/O errors from the
// underlying reader pass through unwrapped.
func (d *BatchReader) Next(dst []uint64) (clientID uint64, blocks []uint64, err error) {
	if !d.started {
		var magic [4]byte
		n, err := io.ReadFull(d.br, magic[:])
		d.off += int64(n)
		if err == io.EOF {
			return 0, nil, io.EOF // empty stream: no frames at all
		}
		if err == io.ErrUnexpectedEOF {
			return 0, nil, d.corrupt("stream magic", err)
		}
		if err != nil {
			return 0, nil, err // transport error: not this layer's business
		}
		if string(magic[:]) != ingestMagic {
			return 0, nil, d.corrupt("stream magic",
				fmt.Errorf("got %q, want %q", magic[:], ingestMagic))
		}
		d.started = true
	}
	clientID, err = d.readUvarint("clientID", true)
	if err != nil {
		return 0, nil, err
	}
	count, err := d.readUvarint("count", false)
	if err != nil {
		return 0, nil, err
	}
	if count == 0 || count > MaxBatch {
		return 0, nil, d.corrupt("count", fmt.Errorf("%d outside [1, %d]", count, MaxBatch))
	}
	if cap(dst) >= int(count) {
		blocks = dst[:0]
	} else {
		blocks = make([]uint64, 0, count)
	}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		ux, err := d.readUvarint("delta", false)
		if err != nil {
			return 0, nil, err
		}
		delta := int64(ux>>1) ^ -int64(ux&1) // zig-zag, as binary.Varint
		b := prev + uint64(delta)
		blocks = append(blocks, b)
		prev = b
	}
	return clientID, blocks, nil
}

// Offset returns the number of stream bytes consumed so far.
func (d *BatchReader) Offset() int64 { return d.off }

// readUvarint decodes one unsigned varint, tracking the offset.
// atFrameStart selects the clean-EOF position: io.EOF before any byte
// of a frame is the stream's end, everywhere else it is truncation.
func (d *BatchReader) readUvarint(what string, atFrameStart bool) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := d.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				if i == 0 && atFrameStart {
					return 0, io.EOF
				}
				return 0, d.corrupt(what, io.ErrUnexpectedEOF)
			}
			return 0, err // transport error: not this layer's business
		}
		d.off++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, d.corrupt(what, fmt.Errorf("varint overflows 64 bits"))
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, d.corrupt(what, fmt.Errorf("varint longer than %d bytes", binary.MaxVarintLen64))
}

// corrupt wraps a structural decode failure with the stream offset and
// the xerr.ErrFormat sentinel.
func (d *BatchReader) corrupt(what string, cause error) error {
	return fmt.Errorf("serve: ingest stream at offset %d: %s: %v: %w", d.off, what, cause, xerr.ErrFormat)
}
