package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xoridx/internal/ckpt"
	"xoridx/internal/core"
	"xoridx/internal/faultio"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// serveConfig is the small general-XOR geometry the serve tests tune:
// 64 direct-mapped blocks (m=6) over 12 address bits.
func serveConfig() core.Config {
	return core.Config{CacheBytes: 256, AddrBits: 12, Family: hash.FamilyGeneralXOR}
}

// phaseBlocks returns one batch of a phase-shifting workload: phase 0
// round-robins over hot blocks spaced exactly one cache apart (every
// one of them lands in set 0 under modulo indexing — the pathological
// conflict pattern the paper's XOR functions eliminate), phase 1 does
// the same at a different alignment so the tuned matrix for phase 0 is
// wrong again.
func phaseBlocks(phase, batch int, pos *int) []uint64 {
	const cacheBlocks = 64
	hot := 8
	out := make([]uint64, batch)
	for i := range out {
		k := (*pos + i) % hot
		if phase == 0 {
			out[i] = uint64(k * cacheBlocks)
		} else {
			out[i] = uint64(k*2*cacheBlocks + 17)
		}
	}
	*pos += batch
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// profilesEqual compares two profiles entry by entry, counters
// included.
func profilesEqual(t *testing.T, got, want *profile.Profile) {
	t.Helper()
	if got.N != want.N || got.CacheBlocks != want.CacheBlocks {
		t.Fatalf("geometry differs: n=%d/%d blocks=%d/%d", got.N, want.N, got.CacheBlocks, want.CacheBlocks)
	}
	if got.Accesses != want.Accesses || got.Compulsory != want.Compulsory ||
		got.Capacity != want.Capacity || got.Candidates != want.Candidates ||
		got.TotalPairs != want.TotalPairs {
		t.Fatalf("counters differ: got {acc %d comp %d cap %d cand %d pairs %d}, want {acc %d comp %d cap %d cand %d pairs %d}",
			got.Accesses, got.Compulsory, got.Capacity, got.Candidates, got.TotalPairs,
			want.Accesses, want.Compulsory, want.Capacity, want.Candidates, want.TotalPairs)
	}
	gs, ws := got.Support(), want.Support()
	gm := make(map[uint64]uint64, len(gs))
	for _, vc := range gs {
		gm[uint64(vc.Vec)] = vc.Count
	}
	if len(gs) != len(ws) {
		t.Fatalf("support sizes differ: %d vs %d", len(gs), len(ws))
	}
	for _, vc := range ws {
		if gm[uint64(vc.Vec)] != vc.Count {
			t.Fatalf("histogram[%#x] = %d, want %d", uint64(vc.Vec), gm[uint64(vc.Vec)], vc.Count)
		}
	}
}

// checkNoLeaks fails the test if goroutines have not returned to the
// pre-test baseline.
func checkNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServePhaseShiftHotSwap is the end-to-end serving loop: concurrent
// clients stream a phase-shifting workload, the window-boundary
// optimizer re-tunes in the background, and the epoch hot-swaps while
// concurrent readers watch Current without ever blocking or observing
// a regression. Run under -race this also proves the ingest fast path,
// the shard goroutines, the singleflight and the atomic swap share no
// unsynchronized state.
func TestServePhaseShiftHotSwap(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := New(Options{
		Config:         serveConfig(),
		Shards:         4,
		WindowAccesses: 1 << 12,
		Decay:          0.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Readers: Current must always be non-nil with monotone sequence
	// numbers, and epochs must honor the publish guard.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	var readerErr atomic.Pointer[string]
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastSeq uint64
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				ep := s.Current()
				switch {
				case ep == nil:
					msg := "Current returned nil"
					readerErr.CompareAndSwap(nil, &msg)
					return
				case ep.Seq < lastSeq:
					msg := "epoch sequence went backwards"
					readerErr.CompareAndSwap(nil, &msg)
					return
				case ep.Seq > 1 && ep.Estimated > ep.PrevEstimated:
					msg := "published epoch worse than its predecessor"
					readerErr.CompareAndSwap(nil, &msg)
					return
				}
				lastSeq = ep.Seq
			}
		}()
	}

	// Clients: 8 concurrent streams of phase 0, then phase 1.
	ingestPhase := func(phase int) {
		var clients sync.WaitGroup
		for c := 0; c < 8; c++ {
			clients.Add(1)
			go func(id uint64) {
				defer clients.Done()
				pos := 0
				for b := 0; b < 24; b++ {
					if err := s.IngestBlocks(id, phaseBlocks(phase, 256, &pos)); err != nil {
						t.Error(err)
						return
					}
				}
			}(uint64(c))
		}
		clients.Wait()
	}

	ingestPhase(0)
	waitFor(t, 10*time.Second, "first background re-tune", func() bool {
		return s.Stats().Retunes >= 1
	})
	ingestPhase(1)
	waitFor(t, 10*time.Second, "second background re-tune", func() bool {
		return s.Stats().Retunes >= 2
	})
	// One explicit round so the final epoch reflects all of phase 1.
	ep, err := s.Retune(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ep.Estimated > ep.PrevEstimated {
		t.Fatalf("publish guard violated: estimated %d > previous %d", ep.Estimated, ep.PrevEstimated)
	}

	close(stopReaders)
	readers.Wait()
	if msg := readerErr.Load(); msg != nil {
		t.Fatalf("reader observed: %s", *msg)
	}
	st := s.Stats()
	if st.Swaps < 1 {
		t.Fatalf("phase-shifting workload produced no hot swap: %+v", st)
	}
	if st.Ingested == 0 || st.EpochSeq < 2 {
		t.Fatalf("implausible final stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("background error: %v", err)
	}
	if err := s.IngestBlocks(1, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after Close: %v, want ErrClosed", err)
	}
	checkNoLeaks(t, baseline)
}

// TestServeDecayZeroMatchesBatchBuild pins the serving loop's
// correctness anchor: with one shard and decay 0, the live merged
// profile equals a batch profile.Build over every access ingested so
// far — rotations and all.
func TestServeDecayZeroMatchesBatchBuild(t *testing.T) {
	s, err := New(Options{
		Config:         serveConfig(),
		Shards:         1,
		WindowAccesses: 1 << 40, // no background rotations: the test rotates explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	var all []uint64
	ingest := func(k int) {
		batch := make([]uint64, k)
		for i := range batch {
			switch rng.Intn(3) {
			case 0:
				batch[i] = uint64(rng.Intn(16) * 64)
			case 1:
				batch[i] = uint64(rng.Intn(1 << 12))
			default:
				batch[i] = uint64(rng.Intn(200))
			}
		}
		all = append(all, batch...)
		if err := s.IngestBlocks(3, batch); err != nil {
			t.Fatal(err)
		}
	}

	ingest(1500)
	if _, err := s.Retune(context.Background()); err != nil { // forces a rotation
		t.Fatal(err)
	}
	ingest(900)
	if _, err := s.Retune(context.Background()); err != nil {
		t.Fatal(err)
	}
	ingest(400)

	got, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	want := profile.Build(all, 12, 64)
	profilesEqual(t, got, want)
	if s.Stats().Rotations != 2 {
		t.Fatalf("rotations = %d, want 2", s.Stats().Rotations)
	}
}

// driveDeterministic ingests a fixed stream (one sender, fixed client
// IDs round-robin) so two servers fed the same parts hold identical
// state.
func driveDeterministic(t *testing.T, s *Server, part []uint64) {
	t.Helper()
	const batch = 128
	for i := 0; i < len(part); i += batch {
		end := i + batch
		if end > len(part) {
			end = len(part)
		}
		if err := s.IngestBlocks(uint64(i/batch%4), part[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeKillRestartResumesExactly is the crash-safety differential:
// a server checkpointed after round 1 and restarted with Resume
// finishes with the same epoch (sequence, matrix, estimates) and the
// same profiles as one that ran uninterrupted.
func TestServeKillRestartResumesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	mkPart := func(k int) []uint64 {
		part := make([]uint64, k)
		for i := range part {
			if rng.Intn(2) == 0 {
				part[i] = uint64(rng.Intn(12) * 64)
			} else {
				part[i] = uint64(rng.Intn(1 << 12))
			}
		}
		return part
	}
	part1, part2 := mkPart(3000), mkPart(2500)
	opts := func(ckptPath string, resume bool) Options {
		return Options{
			Config:         serveConfig(),
			Shards:         2,
			WindowAccesses: 1 << 40,
			Decay:          0.25,
			CheckpointPath: ckptPath,
			Resume:         resume,
		}
	}

	// Reference: uninterrupted run.
	ref, err := New(opts("", false))
	if err != nil {
		t.Fatal(err)
	}
	driveDeterministic(t, ref, part1)
	if _, err := ref.Retune(context.Background()); err != nil {
		t.Fatal(err)
	}
	driveDeterministic(t, ref, part2)
	refEp, err := ref.Retune(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	refProfile, err := ref.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Killed run: same stream up to round 1, checkpoint, gone.
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s1, err := New(opts(path, false))
	if err != nil {
		t.Fatal(err)
	}
	driveDeterministic(t, s1, part1)
	if _, err := s1.Retune(context.Background()); err != nil { // persists the checkpoint
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: resume, then the rest of the stream.
	s2, err := New(opts(path, true))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Current().Seq; got != 2 {
		t.Fatalf("resumed epoch seq = %d, want 2", got)
	}
	driveDeterministic(t, s2, part2)
	gotEp, err := s2.Retune(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gotProfile, err := s2.Profile()
	if err != nil {
		t.Fatal(err)
	}

	if gotEp.Seq != refEp.Seq || gotEp.Window != refEp.Window {
		t.Fatalf("resumed run ended at epoch %d/window %d, reference %d/%d",
			gotEp.Seq, gotEp.Window, refEp.Seq, refEp.Window)
	}
	if !gotEp.Func.Matrix().Equal(refEp.Func.Matrix()) {
		t.Fatal("resumed run converged to a different matrix than the uninterrupted one")
	}
	if gotEp.Estimated != refEp.Estimated || gotEp.PrevEstimated != refEp.PrevEstimated ||
		gotEp.Baseline != refEp.Baseline {
		t.Fatalf("resumed estimates {%d %d %d} differ from reference {%d %d %d}",
			gotEp.Estimated, gotEp.PrevEstimated, gotEp.Baseline,
			refEp.Estimated, refEp.PrevEstimated, refEp.Baseline)
	}
	profilesEqual(t, gotProfile, refProfile)
}

// gateSink blocks the search stage's first event until released, so a
// test can hold a re-tune in flight while more callers pile in.
type gateSink struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateSink) Emit(e core.Event) {
	if e.Kind == core.StageStarted {
		g.once.Do(func() {
			close(g.entered)
			<-g.release
		})
	}
}

// TestServeRetuneSingleflight proves concurrent re-tune requests
// deduplicate: callers that arrive while a round is in flight share
// its epoch instead of starting their own round.
func TestServeRetuneSingleflight(t *testing.T) {
	gate := &gateSink{entered: make(chan struct{}), release: make(chan struct{})}
	s, err := New(Options{
		Config:         serveConfig(),
		Shards:         2,
		WindowAccesses: 1 << 40,
		Events:         gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pos := 0
	if err := s.IngestBlocks(1, phaseBlocks(0, 2048, &pos)); err != nil {
		t.Fatal(err)
	}

	const callers = 5
	eps := make([]*Epoch, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := s.Retune(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			eps[i] = ep
		}(i)
	}
	<-gate.entered // one round is now held mid-search
	// Give the remaining callers time to join the in-flight call; any
	// that started its own round would block on the gate forever (the
	// sync.Once fires once), which the joint completion below rules out.
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	if got := s.Stats().Retunes; got != 1 {
		t.Fatalf("%d concurrent callers executed %d rounds, want 1", callers, got)
	}
	for i, ep := range eps {
		if ep == nil || ep.Seq != eps[0].Seq {
			t.Fatalf("caller %d got epoch %+v, caller 0 got seq %d", i, ep, eps[0].Seq)
		}
	}
}

// TestServeIngestRetriesTransientFaults streams a wire-encoded ingest
// through a fault-injected reader: with a retry policy the server ends
// up with exactly the profile of a clean run.
func TestServeIngestRetriesTransientFaults(t *testing.T) {
	pos := 0
	var stream bytes.Buffer
	bw := NewBatchWriter(&stream)
	var all []uint64
	for b := 0; b < 10; b++ {
		batch := phaseBlocks(0, 300, &pos)
		all = append(all, batch...)
		if err := bw.WriteBatch(uint64(b%3), batch); err != nil {
			t.Fatal(err)
		}
	}

	newServer := func(policy faultio.Policy) *Server {
		s, err := New(Options{
			Config:         serveConfig(),
			Shards:         1,
			WindowAccesses: 1 << 40,
			Retry:          policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	faulty, err := faultio.NewReader(bytes.NewReader(stream.Bytes()), faultio.Schedule{
		Seed: 99, Transient: 0.3, MaxTransients: 40, ShortRead: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(faultio.Policy{MaxRetries: 50, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond})
	defer s.Close()
	if err := s.ServeIngest(context.Background(), faulty); err != nil {
		t.Fatalf("fault-injected ingest failed despite retry policy: %v", err)
	}
	got, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, got, profile.Build(all, 12, 64))

	// Without retries the same schedule must surface the transient.
	faulty2, err := faultio.NewReader(bytes.NewReader(stream.Bytes()), faultio.Schedule{
		Seed: 99, Transient: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2 := newServer(faultio.Policy{})
	defer s2.Close()
	if err := s2.ServeIngest(context.Background(), faulty2); !errors.Is(err, xerr.ErrIO) {
		t.Fatalf("unguarded ingest: %v, want a wrapped ErrIO", err)
	}
}

// TestServeOptionsValidation covers the constructor's rejects.
func TestServeOptionsValidation(t *testing.T) {
	base := func() Options { return Options{Config: serveConfig()} }
	cases := []struct {
		name string
		mod  func(*Options)
		want error
	}{
		{"shards not a power of two", func(o *Options) { o.Shards = 3 }, xerr.ErrInvalidOptions},
		{"negative shards", func(o *Options) { o.Shards = -2 }, xerr.ErrInvalidOptions},
		{"oversized shards", func(o *Options) { o.Shards = maxShards * 2 }, xerr.ErrInvalidOptions},
		{"decay one", func(o *Options) { o.Decay = 1 }, xerr.ErrInvalidOptions},
		{"decay negative", func(o *Options) { o.Decay = -0.1 }, xerr.ErrInvalidOptions},
		{"negative queue depth", func(o *Options) { o.QueueDepth = -1 }, xerr.ErrInvalidOptions},
		{"bad geometry", func(o *Options) { o.Config.CacheBytes = 300 }, xerr.ErrInvalidGeometry},
		{"bad retry policy", func(o *Options) { o.Retry = faultio.Policy{MaxRetries: -2} }, xerr.ErrInvalidOptions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mod(&o)
			if _, err := New(o); !errors.Is(err, tc.want) {
				t.Fatalf("New = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestServeCheckpointMismatch pins that a checkpoint from one
// configuration refuses to seed a different one.
func TestServeCheckpointMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s, err := New(Options{Config: serveConfig(), Shards: 2, Decay: 0.25, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	if err := s.IngestBlocks(0, phaseBlocks(0, 512, &pos)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // writes the final checkpoint
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mod  func(*Options)
	}{
		{"different shard count", func(o *Options) { o.Shards = 4 }},
		{"different decay", func(o *Options) { o.Decay = 0.5 }},
		{"different geometry", func(o *Options) { o.Config.CacheBytes = 512 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := Options{Config: serveConfig(), Shards: 2, Decay: 0.25, CheckpointPath: path, Resume: true}
			tc.mod(&o)
			if _, err := New(o); !errors.Is(err, xerr.ErrProfileMismatch) {
				t.Fatalf("New = %v, want ErrProfileMismatch", err)
			}
		})
	}

	// The untouched configuration still resumes.
	s2, err := New(Options{Config: serveConfig(), Shards: 2, Decay: 0.25, CheckpointPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Ingested; got != 0 {
		t.Fatalf("resumed server counts %d ingested (counters are per-process)", got)
	}
	p, err := s2.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Accesses != 512 {
		t.Fatalf("resumed profile holds %d accesses, want 512", p.Accesses)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeCheckpointCorruption flips single bits in a service
// checkpoint and pins the v2 damage semantics: a flip in the
// CRC-protected envelope (header, epoch, framing) fails the whole
// restore — there is no trustworthy frame to heal within — while a
// flip inside a per-shard blob localizes: the default resume heals it
// by cold-starting only that shard (reported through RestoreErrors and
// Stats.ColdShards), and Strict refuses with an error naming the
// shard.
func TestServeCheckpointCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s, err := New(Options{Config: serveConfig(), Shards: 1, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	if err := s.IngestBlocks(0, phaseBlocks(0, 256, &pos)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The envelope ends where ckpt.Read stops consuming; the raw shard
	// blobs follow.
	br := bytes.NewReader(raw)
	if _, _, err := ckpt.Read(br, "XSV1"); err != nil {
		t.Fatal(err)
	}
	envLen := len(raw) - br.Len()
	if envLen >= len(raw) {
		t.Fatalf("checkpoint has no blob region (envelope %d of %d bytes)", envLen, len(raw))
	}

	corruptAt := func(off int) string {
		corrupted := append([]byte(nil), raw...)
		corrupted[off] ^= 0x10
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		return bad
	}

	for _, off := range []int{5, envLen / 2, envLen - 3} {
		bad := corruptAt(off)
		if _, err := New(Options{Config: serveConfig(), Shards: 1, CheckpointPath: bad, Resume: true}); err == nil {
			t.Fatalf("envelope bit flip at offset %d restored cleanly", off)
		}
	}

	for _, off := range []int{envLen + (len(raw)-envLen)/2, len(raw) - 3} {
		bad := corruptAt(off)
		// Strict refuses, naming the shard.
		if _, err := New(Options{Config: serveConfig(), Shards: 1, CheckpointPath: bad, Resume: true, Strict: true}); err == nil {
			t.Fatalf("strict resume healed a blob flip at offset %d", off)
		} else if !strings.Contains(err.Error(), "shard 0") {
			t.Fatalf("strict refusal does not name the shard: %v", err)
		}
		// The default heals: shard 0 cold-starts, damage is reported.
		s2, err := New(Options{Config: serveConfig(), Shards: 1, CheckpointPath: bad, Resume: true})
		if err != nil {
			t.Fatalf("healing resume failed for blob flip at offset %d: %v", off, err)
		}
		damage := s2.RestoreErrors()
		if len(damage) != 1 || !strings.Contains(damage[0].Error(), "shard 0") {
			t.Fatalf("RestoreErrors = %v, want one error naming shard 0", damage)
		}
		if got := s2.Stats().ColdShards; got != 1 {
			t.Fatalf("ColdShards = %d, want 1", got)
		}
		p, err := s2.Profile()
		if err != nil {
			t.Fatal(err)
		}
		if p.Accesses != 0 {
			t.Fatalf("cold-started shard carries %d accesses", p.Accesses)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
