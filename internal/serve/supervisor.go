package serve

// Shard supervision (DESIGN.md §16): each shard goroutine runs under a
// supervisor that converts panics into restarts instead of process
// loss. A failed shard restarts from its last in-memory recovery
// snapshot (cold when none exists), paced by the RestartBackoff
// policy; a shard that keeps failing trips its circuit breaker and is
// quarantined — its supervisor degrades into a drainer that keeps the
// command channel flowing (so producers never wedge) while dropping
// the shard's traffic with accounting. Only the loss of a strict
// majority of shards escalates to the pre-§16 stop-the-world.

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// superviseShard owns shard i's goroutine lifecycle: run until clean
// shutdown, restart on panic, quarantine past the restart budget.
func (s *Server) superviseShard(i int, sh *shard) {
	defer s.wg.Done()
	// Per-shard deterministic jitter stream: shards do not thunder
	// back in phase, and a fixed seed reproduces the schedule.
	rng := rand.New(rand.NewSource(s.opt.RestartBackoff.JitterSeed ^ int64(i+1)*0x9e3779b9))
	failures := 0
	var lastFailAt uint64
	for {
		err := s.runShardOnce(sh)
		if err == nil {
			return // server shutdown
		}
		if s.opt.MaxShardRestarts < 0 {
			// Supervision disabled: a lost shard poisons every
			// aggregate, and without restarts stopping the world is
			// the only honest response.
			s.fail(err)
			s.cancel()
			return
		}
		s.fail(err)
		// A shard that processed RestartWindow accesses since its last
		// failure has earned its restart budget back.
		if w := s.opt.RestartWindow; w > 0 && failures > 0 && sh.processed.Load()-lastFailAt >= w {
			failures = 0
		}
		failures++
		lastFailAt = sh.processed.Load()
		if failures > s.opt.MaxShardRestarts {
			s.quarantineShard(i, sh, err)
			if s.ctx.Err() == nil {
				s.drainQuarantined(sh)
			}
			return
		}
		sh.restarts.Add(1)
		s.restoreShard(sh)
		if d := s.opt.RestartBackoff.Backoff(failures, rng); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-s.ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
	}
}

// runShardOnce is one supervised incarnation of the shard goroutine:
// the only code that touches its Windowed while it runs, so the ingest
// hot path needs no locks at all (share memory by communicating). A
// recovered panic returns as a wrapped xerr.ErrPanic — after replying
// to any in-flight command, so a rotation or checkpoint waiting on
// this shard observes the failure instead of hanging. Returns nil only
// on server shutdown.
func (s *Server) runShardOnce(sh *shard) (err error) {
	var inFlight shardCmd
	defer func() {
		if v := recover(); v != nil {
			err = xerr.Panicked(fmt.Sprintf("serve shard %d", sh.i), v)
			replyFailed(inFlight, err)
		}
	}()
	for {
		select {
		case <-s.ctx.Done():
			return nil
		case cmd := <-sh.ch:
			inFlight = cmd
			s.applyShardCmd(sh, cmd)
			inFlight = shardCmd{}
		}
	}
}

// applyShardCmd executes one shard command against the shard's
// Windowed.
func (s *Server) applyShardCmd(sh *shard, cmd shardCmd) {
	switch {
	case cmd.rotate != nil:
		sh.wb.Rotate()
		cmd.rotate <- sh.wb.Aggregate()
	case cmd.agg != nil:
		cmd.agg <- sh.wb.Snapshot()
	case cmd.snap != nil:
		var b writerBuffer
		err := sh.wb.Checkpoint(&b)
		cmd.snap <- snapReply{data: b.data, err: err}
		if err == nil {
			// A durable checkpoint blob doubles as a recovery
			// snapshot for free.
			sh.snap.Store(&shardSnap{data: b.data, processed: sh.processed.Load()})
		}
	default:
		for _, blk := range cmd.blocks {
			sh.wb.Add(blk)
		}
		n := uint64(len(cmd.blocks))
		processed := sh.processed.Add(n)
		if every := s.opt.CheckpointEvery; every > 0 {
			sh.sinceSnap += n
			if sh.sinceSnap >= every {
				sh.sinceSnap = 0
				s.refreshShardSnap(sh, processed)
			}
		}
		if h := s.opt.FaultHook; h != nil {
			h(sh.i, processed)
		}
	}
}

// refreshShardSnap reserializes the shard's Windowed into the
// in-memory recovery snapshot its supervisor restarts it from.
func (s *Server) refreshShardSnap(sh *shard, processed uint64) {
	var b writerBuffer
	if err := sh.wb.Checkpoint(&b); err != nil {
		s.fail(fmt.Errorf("serve: shard %d recovery snapshot: %w", sh.i, err))
		return
	}
	sh.snap.Store(&shardSnap{data: b.data, processed: processed})
}

// restoreShard rebuilds a restarting shard's Windowed from its last
// recovery snapshot, or cold when none exists (no snapshot yet, or the
// snapshot itself fails to decode). Accesses processed after the
// snapshot are lost — the bounded-loss window CheckpointEvery pins.
// sh.processed stays monotone across restarts: it counts accesses ever
// applied by this shard, which is what the circuit breaker's
// RestartWindow arithmetic needs.
func (s *Server) restoreShard(sh *shard) {
	if snap := sh.snap.Load(); snap != nil {
		wb, err := profile.RestoreWindowed(bytes.NewReader(snap.data))
		if err == nil {
			sh.wb = wb
			return
		}
		s.fail(fmt.Errorf("serve: shard %d recovery snapshot corrupt, restarting cold: %w", sh.i, err))
		sh.snap.Store(nil)
	}
	wb, err := s.newWindowed()
	if err != nil {
		// Options were validated in New; a failure here is a
		// programming error, and panicking would just re-enter the
		// supervisor. Record it and keep the old (post-panic) state.
		s.fail(fmt.Errorf("serve: shard %d cold restart: %w", sh.i, err))
		return
	}
	sh.wb = wb
}

// quarantineShard takes a shard out of service after its circuit
// breaker trips, and escalates to stop-the-world when a strict
// majority of shards is gone — below quorum the merged aggregate no
// longer represents the traffic and limping on would be lying.
func (s *Server) quarantineShard(i int, sh *shard, cause error) {
	sh.quarantined.Store(true)
	q := int(s.nQuarantine.Add(1))
	s.fail(fmt.Errorf("serve: shard %d quarantined after %d restarts (last: %v): %w",
		i, s.opt.MaxShardRestarts, cause, ErrQuarantined))
	if q*2 > len(s.shards) {
		s.fail(fmt.Errorf("serve: quorum lost (%d of %d shards quarantined): %w",
			q, len(s.shards), ErrQuarantined))
		s.cancel()
	}
}

// drainQuarantined keeps a quarantined shard's command channel flowing
// until shutdown: ingest batches are dropped (the accesses inside were
// already admitted and count as lost-in-quarantine in ShardStats, like
// accesses lost to a panic after the last snapshot), and rotation /
// snapshot requests that raced past the quarantine flag get failure
// replies so no requester ever hangs.
func (s *Server) drainQuarantined(sh *shard) {
	qerr := fmt.Errorf("serve: shard %d quarantined: %w", sh.i, ErrQuarantined)
	for {
		select {
		case <-s.ctx.Done():
			return
		case cmd := <-sh.ch:
			sh.drained.Add(uint64(len(cmd.blocks)))
			replyFailed(cmd, qerr)
		}
	}
}

// replyFailed answers an unservable command so its requester never
// hangs: nil profiles for rotation/aggregate requests (the callers
// skip nil contributions) and the error itself for snapshot requests.
// Reply channels are capacity 1, so none of these sends block.
func replyFailed(cmd shardCmd, err error) {
	switch {
	case cmd.rotate != nil:
		cmd.rotate <- nil
	case cmd.agg != nil:
		cmd.agg <- nil
	case cmd.snap != nil:
		cmd.snap <- snapReply{err: err}
	}
}
