package serve

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"xoridx/internal/xerr"
)

type frame struct {
	clientID uint64
	blocks   []uint64
}

func encodeFrames(t testing.TB, frames []frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := NewBatchWriter(&buf)
	for _, f := range frames {
		if err := bw.WriteBatch(f.clientID, f.blocks); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func decodeFrames(r io.Reader) ([]frame, error) {
	d := NewBatchReader(r)
	var out []frame
	for {
		clientID, blocks, err := d.Next(nil)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, frame{clientID, append([]uint64(nil), blocks...)})
	}
}

// TestWireRoundTrip drives random frames — strided, random-jump, and
// single-access batches, client IDs across the whole uint64 range —
// through the codec and back.
func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var frames []frame
		for f := 0; f < 1+rng.Intn(8); f++ {
			n := 1 + rng.Intn(500)
			blocks := make([]uint64, n)
			switch rng.Intn(3) {
			case 0: // constant stride: the format's best case
				stride := uint64(rng.Intn(256))
				for i := range blocks {
					blocks[i] = uint64(i) * stride
				}
			case 1: // arbitrary jumps, full range
				for i := range blocks {
					blocks[i] = rng.Uint64()
				}
			default: // descending: negative deltas
				for i := range blocks {
					blocks[i] = uint64(n-i) * 7
				}
			}
			frames = append(frames, frame{clientID: rng.Uint64(), blocks: blocks})
		}
		got, err := decodeFrames(bytes.NewReader(encodeFrames(t, frames)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(frames) {
			t.Fatalf("trial %d: decoded %d frames, wrote %d", trial, len(got), len(frames))
		}
		for i := range frames {
			if got[i].clientID != frames[i].clientID {
				t.Fatalf("trial %d frame %d: clientID %d, want %d", trial, i, got[i].clientID, frames[i].clientID)
			}
			if len(got[i].blocks) != len(frames[i].blocks) {
				t.Fatalf("trial %d frame %d: %d blocks, want %d", trial, i, len(got[i].blocks), len(frames[i].blocks))
			}
			for j := range frames[i].blocks {
				if got[i].blocks[j] != frames[i].blocks[j] {
					t.Fatalf("trial %d frame %d block %d: %#x, want %#x",
						trial, i, j, got[i].blocks[j], frames[i].blocks[j])
				}
			}
		}
	}
}

// TestWireDstReuse pins that Next reuses a large-enough caller buffer
// instead of allocating.
func TestWireDstReuse(t *testing.T) {
	raw := encodeFrames(t, []frame{{1, []uint64{5, 6, 7}}, {2, []uint64{9}}})
	d := NewBatchReader(bytes.NewReader(raw))
	dst := make([]uint64, 0, 64)
	_, first, err := d.Next(dst)
	if err != nil {
		t.Fatal(err)
	}
	if &first[:1][0] != &dst[:1][0] {
		t.Fatal("Next allocated despite a large-enough dst")
	}
}

// TestWireWriterRejects covers the writer's input validation.
func TestWireWriterRejects(t *testing.T) {
	bw := NewBatchWriter(&bytes.Buffer{})
	if err := bw.WriteBatch(1, nil); err != nil {
		t.Fatalf("empty batch: %v, want nil (no-op)", err)
	}
	if err := bw.WriteBatch(1, make([]uint64, MaxBatch+1)); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("oversized batch: %v, want ErrInvalidOptions", err)
	}
}

// TestWireCorruption covers the decoder's structural failure modes:
// empty and between-frame ends are clean EOF, everything else is a
// wrapped ErrFormat, and underlying I/O errors pass through untouched.
func TestWireCorruption(t *testing.T) {
	raw := encodeFrames(t, []frame{{3, []uint64{100, 164, 228, 16}}})

	t.Run("empty stream", func(t *testing.T) {
		if _, err := decodeFrames(bytes.NewReader(nil)); err != nil {
			t.Fatalf("empty stream: %v, want clean EOF", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, err := decodeFrames(bytes.NewReader(bad)); !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("bad magic: %v, want ErrFormat", err)
		}
	})
	t.Run("truncation mid-frame", func(t *testing.T) {
		for cut := len(ingestMagic) + 1; cut < len(raw); cut++ {
			if _, err := decodeFrames(bytes.NewReader(raw[:cut])); !errors.Is(err, xerr.ErrFormat) {
				t.Fatalf("cut at %d: %v, want ErrFormat", cut, err)
			}
		}
	})
	t.Run("truncated magic", func(t *testing.T) {
		if _, err := decodeFrames(bytes.NewReader(raw[:2])); !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("truncated magic: %v, want ErrFormat", err)
		}
	})
	t.Run("zero count", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString(ingestMagic)
		buf.WriteByte(1) // clientID
		buf.WriteByte(0) // count 0
		if _, err := decodeFrames(&buf); !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("zero count: %v, want ErrFormat", err)
		}
	})
	t.Run("oversized count", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString(ingestMagic)
		buf.WriteByte(1)
		buf.Write([]byte{0x81, 0x80, 0x08}) // 1<<17, over MaxBatch
		if _, err := decodeFrames(&buf); !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("oversized count: %v, want ErrFormat", err)
		}
	})
	t.Run("overlong varint", func(t *testing.T) {
		var buf bytes.Buffer
		buf.WriteString(ingestMagic)
		for i := 0; i < 11; i++ {
			buf.WriteByte(0x80) // continuation forever
		}
		if _, err := decodeFrames(&buf); !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("overlong varint: %v, want ErrFormat", err)
		}
	})
	t.Run("transport error passes through", func(t *testing.T) {
		cause := errors.New("connection reset")
		_, err := decodeFrames(io.MultiReader(bytes.NewReader(raw[:len(raw)-2]), errReader{cause}))
		if !errors.Is(err, cause) || errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("transport error: %v, want the cause unwrapped", err)
		}
	})
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// FuzzIngestCodec feeds arbitrary bytes to the frame decoder. Three
// properties must hold for any input: no panic, every failure is a
// clean EOF or a wrapped ErrFormat, and whatever frames decoded
// re-encode to a stream that decodes to the same frames.
func FuzzIngestCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(ingestMagic))
	f.Add(encodeFrames(f, []frame{{7, []uint64{1, 2, 3}}}))
	f.Add(encodeFrames(f, []frame{{0, []uint64{0}}, {1 << 40, []uint64{9, 3, 1 << 50}}}))
	f.Add([]byte{'X', 'I', 'G', '1', 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := decodeFrames(bytes.NewReader(data))
		if err != nil && !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("decode error is neither clean EOF nor ErrFormat: %v", err)
		}
		if len(frames) == 0 {
			return
		}
		again, err := decodeFrames(bytes.NewReader(encodeFrames(t, frames)))
		if err != nil {
			t.Fatalf("re-encoded stream failed to decode: %v", err)
		}
		if len(again) != len(frames) {
			t.Fatalf("round trip changed frame count: %d vs %d", len(again), len(frames))
		}
		for i := range frames {
			if again[i].clientID != frames[i].clientID || len(again[i].blocks) != len(frames[i].blocks) {
				t.Fatalf("round trip changed frame %d", i)
			}
			for j := range frames[i].blocks {
				if again[i].blocks[j] != frames[i].blocks[j] {
					t.Fatalf("round trip changed frame %d block %d", i, j)
				}
			}
		}
	})
}
