package serve

// Tests for the §16 self-healing layers: error accumulation, shard
// supervision (restart from snapshot, circuit breaker, quorum
// escalation), overload shedding with per-client fairness, the
// re-tune watchdog and staleness guard, the periodic checkpoint
// cadence, and partial-checkpoint healing.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xoridx/internal/ckpt"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

func TestServeErrAccumulatesCauses(t *testing.T) {
	s, err := New(Options{Config: serveConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.Err() != nil {
		t.Fatalf("fresh server Err = %v", s.Err())
	}
	first := errors.New("first cause")
	second := errors.New("second cause")
	s.fail(first)
	s.fail(second)
	s.fail(xerr.Canceled(canceledCtx())) // cancellation noise never accumulates

	got := s.Err()
	if !errors.Is(got, first) || !errors.Is(got, second) {
		t.Fatalf("Err = %v, want both causes matchable", got)
	}
	if errors.Is(got, xerr.ErrCanceled) {
		t.Fatalf("Err = %v, accumulated a cancellation", got)
	}
	// The first cause is primary: its message leads.
	if msg := got.Error(); !strings.HasPrefix(msg, "first cause") {
		t.Fatalf("Err message %q does not lead with the first cause", msg)
	}
	// The attachment list is capped, not unbounded.
	for i := 0; i < 10*maxAttachedCauses; i++ {
		s.fail(errors.New("flood"))
	}
	s.errMu.Lock()
	attached := len(s.errAttached)
	s.errMu.Unlock()
	if attached > maxAttachedCauses {
		t.Fatalf("%d attached causes, cap is %d", attached, maxAttachedCauses)
	}
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestServeShardPanicRestartsFromSnapshot plants a panic mid-window
// and proves the service keeps running: the supervisor restarts the
// shard from its last recovery snapshot, the batches still queued
// behind the panic land in the restarted window, and a subsequent
// rotation publishes a valid epoch. Accesses between the snapshot and
// the panic are the bounded loss.
func TestServeShardPanicRestartsFromSnapshot(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var tripped atomic.Bool
	s, err := New(Options{
		Config:          serveConfig(),
		Shards:          1,
		WindowAccesses:  1 << 40, // no automatic retunes
		CheckpointEvery: 256,     // recovery snapshots at 300, 600, 900 (batch granularity)
		FaultHook: func(shard int, processed uint64) {
			if processed >= 450 && tripped.CompareAndSwap(false, true) {
				panic("chaos: planted shard fault")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ten batches of 100. The hook fires at processed=500, after the
	// snapshot taken at 300: the restart loses accesses 301-500 and
	// the queued batches 6-10 land in the restarted window.
	pos := 0
	for i := 0; i < 10; i++ {
		if err := s.IngestBlocks(7, phaseBlocks(0, 100, &pos)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.Profile() // queues behind every batch: a drain barrier
	if err != nil {
		t.Fatal(err)
	}
	if p.Accesses != 800 {
		t.Fatalf("post-restart profile holds %d accesses, want 800 (300 snapshotted + 500 queued)", p.Accesses)
	}
	st := s.Stats()
	if st.Restarts != 1 || st.Quarantined != 0 {
		t.Fatalf("Stats = %+v, want exactly one restart and no quarantine", st)
	}
	if !errors.Is(s.Err(), xerr.ErrPanic) {
		t.Fatalf("Err = %v, want the recovered panic recorded", s.Err())
	}

	// The shard still rotates and publishes: the service is healthy.
	ep, err := s.Retune(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ep.Seq != 2 || ep.Estimated > ep.PrevEstimated {
		t.Fatalf("post-restart epoch = %+v, want seq 2 under the never-worse guard", ep)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, baseline)
}

// persistentFault returns a hook that panics every time the shard
// processes at or past threshold — a fault that restarting cannot
// clear, which is what trips the circuit breaker.
func persistentFault(shard int, threshold uint64) func(int, uint64) {
	return func(sh int, processed uint64) {
		if sh == shard && processed >= threshold {
			panic("chaos: persistent shard fault")
		}
	}
}

// shardClients returns one client ID per shard, found by inverting
// ShardOf over small IDs.
func shardClients(t *testing.T, s *Server, shards int) []uint64 {
	t.Helper()
	out := make([]uint64, shards)
	remaining := shards
	for id := uint64(1); remaining > 0 && id < 1<<20; id++ {
		sh := s.ShardOf(id)
		if out[sh] == 0 {
			out[sh] = id
			remaining--
		}
	}
	if remaining != 0 {
		t.Fatalf("could not find a client for every one of %d shards", shards)
	}
	return out
}

func TestServeShardQuarantineAfterBudget(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := New(Options{
		Config:           serveConfig(),
		Shards:           2,
		WindowAccesses:   1 << 40,
		MaxShardRestarts: 1,
		FaultHook:        persistentFault(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := shardClients(t, s, 2)

	// Two batches to shard 0: first panic restarts it, second trips
	// the breaker (budget 1) and quarantines. One of two shards down
	// is not a quorum loss, so the server stays up.
	pos := 0
	for i := 0; i < 2; i++ {
		if err := s.IngestBlocks(clients[0], phaseBlocks(0, 16, &pos)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, "shard failure handling", func() bool {
			st := s.Stats()
			return st.Restarts >= uint64(i+1) || st.Quarantined > 0
		})
	}
	waitFor(t, 5*time.Second, "quarantine", func() bool { return s.Stats().Quarantined == 1 })

	if s.ctx.Err() != nil {
		t.Fatal("one quarantined shard of two escalated to stop-the-world")
	}
	if !errors.Is(s.Err(), ErrQuarantined) || !errors.Is(s.Err(), xerr.ErrPanic) {
		t.Fatalf("Err = %v, want quarantine and its panic cause", s.Err())
	}
	sh := s.ShardStats()[0]
	if !sh.Quarantined || sh.Restarts != 1 {
		t.Fatalf("shard 0 stats = %+v, want quarantined after 1 restart", sh)
	}

	// Traffic to the quarantined shard drops with accounting; the
	// healthy shard still ingests.
	if err := s.IngestBlocks(clients[0], phaseBlocks(0, 32, &pos)); err != nil {
		t.Fatalf("quarantined-shard ingest = %v, want accounted drop", err)
	}
	waitFor(t, 5*time.Second, "drop accounting", func() bool {
		return s.Stats().DroppedQuarantined >= 32
	})
	if err := s.IngestBlocks(clients[1], phaseBlocks(0, 32, &pos)); err != nil {
		t.Fatal(err)
	}
	p, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Accesses != 32 {
		t.Fatalf("healthy shard holds %d accesses, want 32", p.Accesses)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, baseline)
}

func TestServeQuorumEscalatesStopTheWorld(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := New(Options{
		Config:           serveConfig(),
		Shards:           1,
		WindowAccesses:   1 << 40,
		MaxShardRestarts: 1,
		FaultHook:        persistentFault(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i := 0; i < 2; i++ {
		if err := s.IngestBlocks(1, phaseBlocks(0, 16, &pos)); err != nil {
			break // server may already be stopping
		}
		waitFor(t, 5*time.Second, "shard failure handling", func() bool {
			st := s.Stats()
			return st.Restarts >= uint64(i+1) || st.Quarantined > 0
		})
	}
	// Losing the only shard is a quorum loss: stop the world.
	waitFor(t, 5*time.Second, "escalation", func() bool { return s.ctx.Err() != nil })
	if !errors.Is(s.Err(), ErrQuarantined) {
		t.Fatalf("Err = %v, want the quorum-loss quarantine recorded", s.Err())
	}
	if err := s.IngestBlocks(1, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-escalation ingest = %v, want ErrClosed", err)
	}
	s.Close()
	checkNoLeaks(t, baseline)
}

func TestServeSupervisionDisabledStopsTheWorld(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var tripped atomic.Bool
	s, err := New(Options{
		Config:           serveConfig(),
		Shards:           1,
		WindowAccesses:   1 << 40,
		MaxShardRestarts: -1,
		FaultHook: func(_ int, _ uint64) {
			if tripped.CompareAndSwap(false, true) {
				panic("chaos: single fault")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestBlocks(1, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stop-the-world", func() bool { return s.ctx.Err() != nil })
	st := s.Stats()
	if st.Restarts != 0 || st.Quarantined != 0 {
		t.Fatalf("Stats = %+v, want no restarts with supervision disabled", st)
	}
	if !errors.Is(s.Err(), xerr.ErrPanic) {
		t.Fatalf("Err = %v, want the panic recorded", s.Err())
	}
	s.Close()
	checkNoLeaks(t, baseline)
}

// wedge blocks a shard goroutine until release is closed, so the tests
// can fill its queue deterministically. entered receives once when the
// shard is wedged.
func wedge(entered chan<- struct{}, release <-chan struct{}) func(int, uint64) {
	var once atomic.Bool
	return func(_ int, _ uint64) {
		if once.CompareAndSwap(false, true) {
			entered <- struct{}{}
			<-release
		}
	}
}

func TestServeOverloadShedsWithAccounting(t *testing.T) {
	baseline := runtime.NumGoroutine()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, err := New(Options{
		Config:         serveConfig(),
		Shards:         1,
		WindowAccesses: 1 << 40,
		QueueDepth:     1,
		Shed:           true,
		AdmissionWait:  -1, // shed immediately on a full queue
		FaultHook:      wedge(entered, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Batch 1 wedges the shard; batch 2 fills the queue; batch 3 must
	// shed with the typed overload error.
	if err := s.IngestBlocks(1, []uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := s.IngestBlocks(1, []uint64{5, 6}); err != nil {
		t.Fatal(err)
	}
	err = s.IngestBlocks(1, []uint64{7, 8, 9})
	if !errors.Is(err, xerr.ErrOverload) {
		t.Fatalf("full-queue ingest = %v, want ErrOverload", err)
	}
	st := s.Stats()
	if st.Shed != 3 || st.ShedBatches != 1 {
		t.Fatalf("Stats = %+v, want 3 shed accesses in 1 batch", st)
	}
	if st.Ingested != 6 {
		t.Fatalf("Ingested = %d, want only the 6 admitted accesses", st.Ingested)
	}
	close(release)
	p, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	// Conservation at the admission boundary: everything admitted —
	// and nothing shed — reached the profile.
	if p.Accesses != st.Ingested {
		t.Fatalf("profile holds %d accesses, admission counted %d", p.Accesses, st.Ingested)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, baseline)
}

func TestServeHotClientShedFirst(t *testing.T) {
	baseline := runtime.NumGoroutine()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, err := New(Options{
		Config:         serveConfig(),
		Shards:         1,
		WindowAccesses: 1 << 40,
		QueueDepth:     1,
		Shed:           true,
		AdmissionWait:  10 * time.Second, // patient — except for dominating clients
		FaultHook:      wedge(entered, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := make([]uint64, minFairnessSample)
	// The hot client's first batch wedges the shard and dominates the
	// admission accounting; its second fills the queue.
	if err := s.IngestBlocks(42, hot); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := s.IngestBlocks(42, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// The hot client is shed immediately — no 10 s admission wait —
	// because it already holds more than half the shard's admissions.
	start := time.Now()
	err = s.IngestBlocks(42, []uint64{3, 4, 5})
	if !errors.Is(err, xerr.ErrOverload) || !strings.Contains(err.Error(), "hot client") {
		t.Fatalf("hot-client ingest = %v, want immediate hot-client shed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hot-client shed waited %v, want immediate", elapsed)
	}
	// A cold client is not shed out of hand: once the shard drains, it
	// gets in within the admission wait.
	close(release)
	if err := s.IngestBlocks(99, []uint64{6, 7}); err != nil {
		t.Fatalf("cold-client ingest = %v, want admission", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkNoLeaks(t, baseline)
}

// TestServePeriodicCheckpointBoundedLoss pins the CheckpointEvery
// cadence: with no re-tune and no clean Close, a killed server still
// restores at least everything up to the last periodic checkpoint.
func TestServePeriodicCheckpointBoundedLoss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s, err := New(Options{
		Config:          serveConfig(),
		Shards:          1,
		WindowAccesses:  1 << 40,
		CheckpointPath:  path,
		CheckpointEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i := 0; i < 10; i++ { // 1000 accesses; boundary crossings at 300, 600, 800
		if err := s.IngestBlocks(3, phaseBlocks(0, 100, &pos)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "periodic checkpoint", func() bool { return s.Stats().Checkpoints >= 1 })

	// Kill without Close: no final checkpoint is written.
	s.cancel()
	s.wg.Wait()

	s2, err := New(Options{
		Config: serveConfig(), Shards: 1, WindowAccesses: 1 << 40,
		CheckpointPath: path, Resume: true, CheckpointEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s2.Profile()
	if err != nil {
		t.Fatal(err)
	}
	// The first periodic write queued behind the batch that crossed
	// 256 (total 300), so at least 300 accesses survived the kill; the
	// granularity is whole batches.
	if p.Accesses < 300 || p.Accesses > 1000 || p.Accesses%100 != 0 {
		t.Fatalf("restored %d accesses, want a batch-aligned count in [300, 1000]", p.Accesses)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Without CheckpointEvery nothing periodic is written: the same
	// kill loses everything since boot.
	path2 := filepath.Join(t.TempDir(), "quiet.ckpt")
	s3, err := New(Options{
		Config: serveConfig(), Shards: 1, WindowAccesses: 1 << 40, CheckpointPath: path2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos = 0
	if err := s3.IngestBlocks(3, phaseBlocks(0, 1000, &pos)); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Profile(); err != nil { // drain
		t.Fatal(err)
	}
	if got := s3.Stats().Checkpoints; got != 0 {
		t.Fatalf("%d periodic checkpoints without CheckpointEvery", got)
	}
	s3.cancel()
	s3.wg.Wait()
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file exists after kill without cadence (err=%v)", err)
	}
}

func TestServeRetuneDeadlineDegrades(t *testing.T) {
	s, err := New(Options{
		Config:         serveConfig(),
		Shards:         1,
		WindowAccesses: 1 << 40,
		RetuneDeadline: time.Nanosecond, // expires before the search starts
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pos := 0
	if err := s.IngestBlocks(1, phaseBlocks(0, 512, &pos)); err != nil {
		t.Fatal(err)
	}
	ep, err := s.Retune(context.Background())
	if err != nil {
		t.Fatalf("Retune = %v, want a degraded publication", err)
	}
	if !ep.Degraded {
		t.Fatalf("epoch %+v not marked Degraded under an expired deadline", ep)
	}
	if ep.Estimated > ep.PrevEstimated {
		t.Fatalf("degraded epoch broke the never-worse guard: %d > %d", ep.Estimated, ep.PrevEstimated)
	}
	if got := s.Stats().DegradedRetunes; got != 1 {
		t.Fatalf("DegradedRetunes = %d, want 1", got)
	}
	// The watchdog degrades the round; it must not kill the server.
	if s.ctx.Err() != nil {
		t.Fatal("deadline expiry cancelled the server")
	}
}

func TestServeStaleAggregateNotPublished(t *testing.T) {
	s, err := New(Options{
		Config:           serveConfig(),
		Shards:           2,
		WindowAccesses:   1 << 40,
		MaxShardRestarts: 1,
		FaultHook:        persistentFault(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clients := shardClients(t, s, 2)
	pos := 0
	if err := s.IngestBlocks(clients[1], phaseBlocks(0, 512, &pos)); err != nil {
		t.Fatal(err)
	}
	// Quarantine shard 0 (half the shards: alive, but no quorum of
	// healthy traffic behind the aggregate).
	for i := 0; i < 2; i++ {
		if err := s.IngestBlocks(clients[0], phaseBlocks(0, 16, &pos)); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 5*time.Second, "shard failure handling", func() bool {
			st := s.Stats()
			return st.Restarts >= uint64(i+1) || st.Quarantined > 0
		})
	}
	waitFor(t, 5*time.Second, "quarantine", func() bool { return s.Stats().Quarantined == 1 })

	before := s.Current()
	ep, err := s.Retune(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ep.Seq != before.Seq {
		t.Fatalf("staleness guard published epoch %d over %d", ep.Seq, before.Seq)
	}
	st := s.Stats()
	if st.StaleSkips != 1 {
		t.Fatalf("StaleSkips = %d, want 1", st.StaleSkips)
	}
	if st.Rotations != 0 {
		t.Fatalf("refused round still rotated %d windows", st.Rotations)
	}
}

func TestValidateAggregate(t *testing.T) {
	pos := 0
	blocks := phaseBlocks(0, 512, &pos)
	p := profile.Build(blocks, 12, 64)

	if err := validateAggregate(p, 12, 64); err != nil {
		t.Fatalf("healthy aggregate rejected: %v", err)
	}
	if err := validateAggregate(nil, 12, 64); !errors.Is(err, xerr.ErrFormat) {
		t.Fatalf("nil aggregate = %v, want ErrFormat", err)
	}
	if err := validateAggregate(p, 13, 64); !errors.Is(err, xerr.ErrProfileMismatch) {
		t.Fatalf("geometry mismatch = %v, want ErrProfileMismatch", err)
	}

	corrupt := *p
	corrupt.TotalPairs++
	if err := validateAggregate(&corrupt, 12, 64); !errors.Is(err, xerr.ErrFormat) {
		t.Fatalf("histogram/TotalPairs disagreement = %v, want ErrFormat", err)
	}

	counters := *p
	counters.Accesses = counters.Compulsory + counters.Capacity + counters.Candidates - 1
	if err := validateAggregate(&counters, 12, 64); !errors.Is(err, xerr.ErrFormat) {
		t.Fatalf("counter disagreement = %v, want ErrFormat", err)
	}
}

// TestServePartialCheckpointCorruption damages exactly one shard's
// blob in a two-shard checkpoint: the healthy shard must resume with
// its data intact and only the damaged one cold-start (heal mode) or
// the whole restore refuse naming the shard (Strict).
func TestServePartialCheckpointCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s, err := New(Options{Config: serveConfig(), Shards: 2, WindowAccesses: 1 << 40, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	clients := shardClients(t, s, 2)
	pos := 0
	if err := s.IngestBlocks(clients[0], phaseBlocks(0, 300, &pos)); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestBlocks(clients[1], phaseBlocks(0, 200, &pos)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	br := bytes.NewReader(raw)
	if _, _, err := ckpt.Read(br, "XSV1"); err != nil {
		t.Fatal(err)
	}
	envLen := len(raw) - br.Len()

	resume := func(p string, strict bool) (*Server, error) {
		return New(Options{
			Config: serveConfig(), Shards: 2, WindowAccesses: 1 << 40,
			CheckpointPath: p, Resume: true, Strict: strict,
		})
	}
	for name, mutate := range map[string]func([]byte) []byte{
		// The last blob is shard 1's; flip a bit near its end.
		"corrupt": func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b },
		// Cut into the last blob: shard 1's bytes run short.
		"truncate": func(b []byte) []byte { return b[:len(b)-8] },
	} {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(bad, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if envLen >= len(raw)-8 {
				t.Fatal("mutation would touch the envelope, not a blob")
			}
			if _, err := resume(bad, true); err == nil || !strings.Contains(err.Error(), "shard 1") {
				t.Fatalf("strict resume = %v, want refusal naming shard 1", err)
			}
			s2, err := resume(bad, false)
			if err != nil {
				t.Fatalf("healing resume = %v", err)
			}
			damage := s2.RestoreErrors()
			if len(damage) != 1 || !strings.Contains(damage[0].Error(), "shard 1") ||
				!(errors.Is(damage[0], xerr.ErrFormat) || errors.Is(damage[0], xerr.ErrProfileMismatch)) {
				t.Fatalf("RestoreErrors = %v, want one typed error naming shard 1", damage)
			}
			if got := s2.Stats().ColdShards; got != 1 {
				t.Fatalf("ColdShards = %d, want 1", got)
			}
			p, err := s2.Profile()
			if err != nil {
				t.Fatal(err)
			}
			// Shard 0's 300 accesses survived; shard 1's 200 cold-started.
			if p.Accesses != 300 {
				t.Fatalf("healed restore holds %d accesses, want shard 0's 300", p.Accesses)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// FuzzServiceCheckpointRestore throws arbitrary bytes at the service
// checkpoint reader: it must return an error or a consistent state,
// never panic or heal structural damage silently into a wrong epoch.
func FuzzServiceCheckpointRestore(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	s, err := New(Options{Config: serveConfig(), Shards: 2, WindowAccesses: 1 << 40, CheckpointPath: path})
	if err != nil {
		f.Fatal(err)
	}
	pos := 0
	if err := s.IngestBlocks(1, phaseBlocks(0, 256, &pos)); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, true)
	f.Add(seed, false)
	f.Add(seed[:len(seed)/2], false)
	f.Add([]byte("XSV1garbage"), false)

	f.Fuzz(func(t *testing.T, data []byte, strict bool) {
		st, err := readServiceState(bytes.NewReader(data), 12, 64, 6, 0, profile.SampleOptions{}, 2, strict)
		if err != nil {
			return
		}
		if st == nil || st.epoch == nil || st.epoch.Seq == 0 || len(st.shards) != 2 {
			t.Fatalf("accepted state is inconsistent: %+v", st)
		}
		for i, wb := range st.shards {
			if wb == nil {
				t.Fatalf("accepted state has nil shard %d", i)
			}
		}
		if strict && len(st.damage) != 0 {
			t.Fatalf("strict restore reported healed damage: %v", st.damage)
		}
	})
}
