// Package serve runs the paper's tune loop continuously: the batch
// pipeline (trace in, matrix out) becomes a long-running service that
// ingests block-access streams from many concurrent clients,
// accumulates windowed, exponentially decayed conflict profiles behind
// sharded ingest, re-optimizes the index matrix in the background, and
// publishes each result through an epoch-versioned atomic hot swap.
//
// Architecture (DESIGN.md §14):
//
//	clients ──IngestBlocks/ServeIngest──▶ shard goroutines (one
//	profile.Windowed each, single-owner: share memory by
//	communicating) ──Rotate──▶ merged decayed aggregate ──SearchRound
//	(warm-started from the current H)──▶ Epoch ──atomic.Pointer──▶
//	Current()
//
// Readers never block: Current is one atomic pointer load. Re-tunes
// never run twice concurrently: requests — from the window-boundary
// optimizer goroutine or from Retune callers — deduplicate through a
// singleflight group. Crash safety comes from the ckpt layer: the
// whole service state (every shard's windowed histograms plus the
// current epoch) checkpoints after each re-tune and restores with
// Options.Resume.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"xoridx/internal/core"
	"xoridx/internal/faultio"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// ErrClosed is returned by operations on a closed (or closing) server;
// it wraps xerr.ErrCanceled so callers' cancellation handling applies.
var ErrClosed = fmt.Errorf("serve: server closed: %w", xerr.ErrCanceled)

// Options configures a Server.
type Options struct {
	// Config is the tuning problem: cache geometry, function family,
	// search knobs. Workers parallelises the background search;
	// Config's checkpoint fields are ignored (the serve layer has its
	// own checkpoint, see CheckpointPath below).
	Config core.Config

	// Shards is the ingest fan-out: each shard owns one
	// profile.Windowed and a command channel, and clients hash to
	// shards by ID. Must be a power of two; 0 means 1.
	Shards int

	// WindowAccesses is the window length: every this many ingested
	// accesses (across all shards) the windows rotate and a re-tune
	// runs. 0 selects DefaultWindowAccesses.
	WindowAccesses uint64

	// Decay is the per-rotation aggregate decay in [0, 1): 0 keeps
	// every window forever (the batch-equivalent mode), larger values
	// forget stale phases faster.
	Decay float64

	// QueueDepth is each shard's command-channel buffer in batches; 0
	// selects 64.
	QueueDepth int

	// CheckpointPath, when non-empty, persists the full service state
	// there (atomically) after every re-tune and on Close; Resume
	// restores it on startup. A missing file is a cold start.
	CheckpointPath string
	Resume         bool

	// Retry guards ServeIngest's transport reads: transient failures
	// (errors wrapping xerr.ErrIO) retry with capped exponential
	// backoff before the decoder ever sees them. Zero MaxRetries
	// disables the wrapper.
	Retry faultio.Policy

	// Events receives re-tune progress (core SearchRound events, with
	// Event.Round set to the rotation round). Shared across rounds;
	// must be fast and concurrency-safe. Optional.
	Events core.Sink
}

// DefaultWindowAccesses is the window length when Options leaves it 0.
const DefaultWindowAccesses = 1 << 18

// maxShards bounds the fan-out (a shard costs a goroutine plus a
// Windowed; thousands of them is a configuration error, not a plan).
const maxShards = 1 << 12

// Epoch is one published tuning result. Epochs are immutable;
// Current returns the latest and never blocks.
type Epoch struct {
	// Seq increases by one per publication; the boot epoch is 1.
	Seq uint64
	// Func is the index function readers should use.
	Func hash.Func
	// Estimated is Func's Eq. 4 estimate on the merged aggregate of
	// the round that published this epoch (0 for the boot epoch: no
	// profile existed yet).
	Estimated uint64
	// PrevEstimated is the previous epoch's function scored on that
	// same aggregate — the §6-style guard input: Estimated never
	// exceeds it, because a candidate that scores worse than the
	// incumbent is not published.
	PrevEstimated uint64
	// Baseline is conventional modulo indexing scored on that same
	// aggregate.
	Baseline uint64
	// Window is the rotation round that published this epoch.
	Window uint64
	// Changed reports whether Func's matrix differs from the previous
	// epoch's — a real hot swap rather than a confirmation.
	Changed bool
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Ingested  uint64 // accesses accepted into shard queues
	Batches   uint64 // ingest batches accepted
	Rotations uint64 // window rotations (== completed re-tune rounds)
	Retunes   uint64 // re-tune executions (deduplicated callers share one)
	Swaps     uint64 // epochs whose matrix changed
	EpochSeq  uint64 // Current().Seq
	Shards    int
}

// shardCmd is one message to a shard goroutine. Exactly one field is
// set: blocks to ingest, or a reply channel for a rotation, an
// aggregate snapshot, or a checkpoint blob. Reply channels have
// capacity 1 so the shard never blocks on its reply.
type shardCmd struct {
	blocks []uint64
	rotate chan<- *profile.Profile
	agg    chan<- *profile.Profile
	snap   chan<- snapReply
}

type snapReply struct {
	data []byte
	err  error
}

type shard struct {
	ch chan shardCmd
	wb *profile.Windowed // owned by the shard goroutine after Start
}

// Server is the long-running tuning service. Create with New, stop
// with Close. All methods are safe for concurrent use.
type Server struct {
	opt       Options
	cfg       core.Config // normalized
	n, m      int
	shards    []*shard
	shardMask uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	cur       atomic.Pointer[Epoch]
	fl        flightGroup
	ckptMu    sync.Mutex // serializes checkpoint writes
	closeOnce sync.Once
	closed    atomic.Bool
	closeErr  error

	// Window accounting.
	sinceRotate atomic.Uint64
	wake        chan struct{}

	// Counters.
	ingested  atomic.Uint64
	batches   atomic.Uint64
	rotations atomic.Uint64
	retunes   atomic.Uint64
	swaps     atomic.Uint64
	lastErr   atomic.Pointer[error]
}

// New validates the options, restores a checkpoint when Resume is set
// (a missing file is a cold start), and starts the shard and optimizer
// goroutines. The boot epoch — available from Current immediately — is
// the conventional modulo function at Seq 1 unless a checkpoint
// supplied a later one.
func New(opt Options) (*Server, error) {
	cfg, err := opt.Config.Normalized()
	if err != nil {
		return nil, err
	}
	// The serve layer owns checkpointing; the pipeline's per-stage
	// checkpoint files must not fight over the same path.
	cfg.CheckpointPath, cfg.Resume = "", false
	if opt.Shards == 0 {
		opt.Shards = 1
	}
	if opt.Shards < 0 || opt.Shards > maxShards || opt.Shards&(opt.Shards-1) != 0 {
		return nil, fmt.Errorf("serve: Shards %d not a power of two in [1, %d]: %w",
			opt.Shards, maxShards, xerr.ErrInvalidOptions)
	}
	if opt.WindowAccesses == 0 {
		opt.WindowAccesses = DefaultWindowAccesses
	}
	if err := profile.ValidateDecay(opt.Decay); err != nil {
		return nil, err
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 64
	}
	if opt.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: negative QueueDepth: %w", xerr.ErrInvalidOptions)
	}
	if err := opt.Retry.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		opt: opt, cfg: cfg,
		n: cfg.AddrBits, m: cfg.SetBits(),
		shardMask: uint64(opt.Shards - 1),
		wake:      make(chan struct{}, 1),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	var restored *serviceState
	if opt.Resume && opt.CheckpointPath != "" {
		restored, err = loadServiceState(opt.CheckpointPath, s.n, cfg.CacheBytes/cfg.BlockBytes, s.m, opt.Decay, opt.Shards)
		if err != nil {
			return nil, err
		}
	}
	s.shards = make([]*shard, opt.Shards)
	for i := range s.shards {
		var wb *profile.Windowed
		if restored != nil {
			wb = restored.shards[i]
		} else {
			wb, err = profile.NewWindowed(s.n, cfg.CacheBytes/cfg.BlockBytes, opt.Decay)
			if err != nil {
				return nil, err
			}
		}
		s.shards[i] = &shard{ch: make(chan shardCmd, opt.QueueDepth), wb: wb}
	}
	if restored != nil {
		s.cur.Store(restored.epoch)
		s.rotations.Store(restored.rotations)
	} else {
		s.cur.Store(&Epoch{Seq: 1, Func: hash.Modulo(s.n, s.m)})
	}
	for i, sh := range s.shards {
		s.wg.Add(1)
		go s.runShard(i, sh)
	}
	s.wg.Add(1)
	go s.optimizer()
	return s, nil
}

// Current returns the latest published epoch: one atomic load, never
// nil, never blocking — regardless of any re-tune, checkpoint or
// ingest in flight.
func (s *Server) Current() *Epoch { return s.cur.Load() }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Ingested:  s.ingested.Load(),
		Batches:   s.batches.Load(),
		Rotations: s.rotations.Load(),
		Retunes:   s.retunes.Load(),
		Swaps:     s.swaps.Load(),
		EpochSeq:  s.cur.Load().Seq,
		Shards:    len(s.shards),
	}
}

// Err returns the last background failure (a shard panic or an
// optimizer round that errored), or nil.
func (s *Server) Err() error {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Server) fail(err error) {
	if err == nil || errors.Is(err, xerr.ErrCanceled) {
		return
	}
	s.lastErr.CompareAndSwap(nil, &err)
}

// shardFor maps a client to its shard: splitmix64 of the ID masked to
// the shard count, so adjacent client IDs spread across shards.
func (s *Server) shardFor(clientID uint64) *shard {
	z := clientID + 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return s.shards[z&s.shardMask]
}

// IngestBlocks feeds one client's block accesses into its shard. The
// batch is copied, so the caller may reuse the slice. The fast path is
// one channel send; it blocks only when the shard's queue is full
// (backpressure), and returns ErrClosed once the server is closing.
func (s *Server) IngestBlocks(clientID uint64, blocks []uint64) error {
	if len(blocks) == 0 {
		return nil
	}
	if s.closed.Load() {
		return ErrClosed
	}
	cmd := shardCmd{blocks: append([]uint64(nil), blocks...)}
	select {
	case s.shardFor(clientID).ch <- cmd:
	case <-s.ctx.Done():
		return ErrClosed
	}
	s.batches.Add(1)
	s.ingested.Add(uint64(len(blocks)))
	s.noteAccesses(uint64(len(blocks)))
	return nil
}

// noteAccesses advances the window clock and wakes the optimizer at
// window boundaries. The Swap makes crossings race-tolerant: however
// many ingesters cross together, the counter resets once and at least
// one wake lands (the channel holds one pending wake; coalescing
// concurrent boundaries is exactly the singleflight semantics the
// re-tune wants anyway).
func (s *Server) noteAccesses(n uint64) {
	if s.sinceRotate.Add(n) >= s.opt.WindowAccesses {
		if s.sinceRotate.Swap(0) >= s.opt.WindowAccesses {
			select {
			case s.wake <- struct{}{}:
			default:
			}
		}
	}
}

// ServeIngest decodes one client connection's ingest stream (wire.go
// format) and feeds every frame into the shards, until the stream ends
// (nil), the context ends, or a frame is corrupt. With a Retry policy
// configured, transient transport errors retry below the decoder.
func (s *Server) ServeIngest(ctx context.Context, r io.Reader) error {
	if s.opt.Retry.MaxRetries > 0 {
		rr, err := faultio.NewRetryReader(ctx, r, s.opt.Retry)
		if err != nil {
			return err
		}
		r = rr
	}
	d := NewBatchReader(r)
	var buf []uint64
	for {
		if err := xerr.Check(ctx); err != nil {
			return err
		}
		clientID, blocks, err := d.Next(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		buf = blocks
		if err := s.IngestBlocks(clientID, blocks); err != nil {
			return err
		}
	}
}

// Retune runs one re-tune round — rotate every shard's window, merge
// the decayed aggregates, search warm-started from the current H,
// publish the winner — and returns the resulting epoch. Concurrent
// callers (including the background optimizer) deduplicate: all of
// them get the same epoch from one execution. ctx bounds this caller's
// wait only; the round itself runs on the server's lifetime context so
// one impatient caller cannot abort a shared round.
func (s *Server) Retune(ctx context.Context) (*Epoch, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	ep, _, err := s.fl.Do(ctx, "retune", s.retune)
	return ep, err
}

// retune is the singleflight-protected round body.
func (s *Server) retune() (*Epoch, error) {
	merged, err := s.rotateAndMerge()
	if err != nil {
		return nil, err
	}
	round := s.rotations.Add(1)
	prev := s.cur.Load()

	pl := core.Pipeline{Config: s.cfg, Events: s.opt.Events}
	sres, err := pl.SearchRound(s.ctx, merged, prev.Func.Matrix(), int(round))
	if err != nil {
		return nil, err
	}
	// §6-style publish guard: score the incumbent on the same
	// aggregate and never swap to a worse candidate. The warm-started
	// general-XOR climb cannot lose to its own starting point, so the
	// guard fires only for cold-searched families — but it is cheap
	// insurance either way.
	prevEst := merged.EstimateMatrix(prev.Func.Matrix())
	ep := &Epoch{
		Seq:           prev.Seq + 1,
		Window:        round,
		PrevEstimated: prevEst,
		Baseline:      sres.Baseline,
	}
	if sres.Estimated <= prevEst {
		f, err := hash.NewXOR(sres.Matrix)
		if err != nil {
			return nil, err
		}
		ep.Func = f
		ep.Estimated = sres.Estimated
		ep.Changed = !sres.Matrix.Equal(prev.Func.Matrix())
	} else {
		ep.Func = prev.Func
		ep.Estimated = prevEst
	}
	s.cur.Store(ep)
	s.retunes.Add(1)
	if ep.Changed {
		s.swaps.Add(1)
	}
	if s.opt.CheckpointPath != "" {
		if err := s.SaveCheckpoint(); err != nil {
			// The epoch is published and live; losing one checkpoint
			// write degrades crash-freshness, not correctness.
			return ep, err
		}
	}
	return ep, nil
}

// rotateAndMerge rotates every shard's window (pipelined: all rotate
// commands enqueue before any reply is awaited) and merges the decayed
// per-shard aggregates into one profile for the search.
func (s *Server) rotateAndMerge() (*profile.Profile, error) {
	replies := make([]chan *profile.Profile, len(s.shards))
	for i, sh := range s.shards {
		rc := make(chan *profile.Profile, 1)
		replies[i] = rc
		select {
		case sh.ch <- shardCmd{rotate: rc}:
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	var merged *profile.Profile
	for _, rc := range replies {
		select {
		case agg := <-rc:
			if merged == nil {
				merged = agg
			} else if err := merged.Merge(agg); err != nil {
				return nil, err
			}
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	return merged, nil
}

// Profile returns the merged live aggregate across all shards — the
// rotated windows plus each live window, without rotating anything.
// With Decay 0 (and however many shards and rotations) it equals a
// batch profile.Build over every access ingested so far.
func (s *Server) Profile() (*profile.Profile, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	replies := make([]chan *profile.Profile, len(s.shards))
	for i, sh := range s.shards {
		rc := make(chan *profile.Profile, 1)
		replies[i] = rc
		select {
		case sh.ch <- shardCmd{agg: rc}:
		case <-s.ctx.Done():
			return nil, ErrClosed
		}
	}
	var merged *profile.Profile
	for _, rc := range replies {
		select {
		case snap := <-rc:
			if merged == nil {
				merged = snap
			} else if err := merged.Merge(snap); err != nil {
				return nil, err
			}
		case <-s.ctx.Done():
			return nil, ErrClosed
		}
	}
	return merged, nil
}

// runShard is a shard's single-owner goroutine: the only code that
// touches its Windowed after Start, so the ingest hot path needs no
// locks at all (share memory by communicating).
func (s *Server) runShard(i int, sh *shard) {
	defer s.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			err := xerr.Panicked(fmt.Sprintf("serve shard %d", i), v)
			s.fail(err)
			s.cancel() // a lost shard poisons every aggregate: stop the world
		}
	}()
	for {
		select {
		case <-s.ctx.Done():
			return
		case cmd := <-sh.ch:
			switch {
			case cmd.rotate != nil:
				sh.wb.Rotate()
				cmd.rotate <- sh.wb.Aggregate()
			case cmd.agg != nil:
				cmd.agg <- sh.wb.Snapshot()
			case cmd.snap != nil:
				var b writerBuffer
				err := sh.wb.Checkpoint(&b)
				cmd.snap <- snapReply{data: b.data, err: err}
			default:
				for _, blk := range cmd.blocks {
					sh.wb.Add(blk)
				}
			}
		}
	}
}

// writerBuffer is a minimal bytes.Buffer stand-in that keeps ownership
// of its backing slice (no Reset/ReadFrom surface to misuse).
type writerBuffer struct{ data []byte }

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// optimizer is the background goroutine that turns window boundaries
// into re-tune rounds. Failures are recorded (Err) and do not stop the
// loop: a canceled search this round must not kill the service.
func (s *Server) optimizer() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
		if _, _, err := s.fl.Do(s.ctx, "retune", s.retune); err != nil {
			s.fail(err)
		}
	}
}

// Close stops the server: no new ingest is accepted, a final
// checkpoint is written (when configured), and every goroutine is
// joined. Idempotent; concurrent calls return the first Close's error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		if s.opt.CheckpointPath != "" {
			// Shards are still running, so their snapshot commands drain
			// normally behind any queued ingest.
			s.closeErr = s.SaveCheckpoint()
		}
		s.cancel()
		s.wg.Wait()
	})
	return s.closeErr
}
