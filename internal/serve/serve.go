// Package serve runs the paper's tune loop continuously: the batch
// pipeline (trace in, matrix out) becomes a long-running service that
// ingests block-access streams from many concurrent clients,
// accumulates windowed, exponentially decayed conflict profiles behind
// sharded ingest, re-optimizes the index matrix in the background, and
// publishes each result through an epoch-versioned atomic hot swap.
//
// Architecture (DESIGN.md §14, supervision in §16):
//
//	clients ──IngestBlocks/ServeIngest──▶ admission (bounded wait +
//	shedding) ──▶ supervised shard goroutines (one profile.Windowed
//	each, single-owner: share memory by communicating; panics restart
//	the shard from its last recovery snapshot, repeated failures
//	quarantine it) ──Rotate──▶ merged decayed aggregate ──SearchRound
//	(warm-started from the current H, under the re-tune watchdog)──▶
//	Epoch ──atomic.Pointer──▶ Current()
//
// Readers never block: Current is one atomic pointer load. Re-tunes
// never run twice concurrently: requests — from the window-boundary
// optimizer goroutine or from Retune callers — deduplicate through a
// singleflight group. Crash safety comes from the ckpt layer: the
// whole service state (every shard's windowed histograms plus the
// current epoch) checkpoints after each re-tune, every
// CheckpointEvery ingested accesses, and on Close, and restores with
// Options.Resume — healing damaged per-shard blobs unless Strict.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"xoridx/internal/core"
	"xoridx/internal/faultio"
	"xoridx/internal/hash"
	"xoridx/internal/profile"
	"xoridx/internal/xerr"
)

// ErrClosed is returned by operations on a closed (or closing) server;
// it wraps xerr.ErrCanceled so callers' cancellation handling applies.
var ErrClosed = fmt.Errorf("serve: server closed: %w", xerr.ErrCanceled)

// ErrQuarantined marks a shard taken out of service by its circuit
// breaker (too many failures inside the restart window), and the
// stop-the-world escalation when a quorum of shards is lost. Err()
// results wrapping only this sentinel describe a degraded-but-alive
// service; the escalation error additionally cancels the server.
var ErrQuarantined = errors.New("serve: shard quarantined")

// Options configures a Server.
type Options struct {
	// Config is the tuning problem: cache geometry, function family,
	// search knobs. Workers parallelises the background search;
	// Config's checkpoint fields are ignored (the serve layer has its
	// own checkpoint, see CheckpointPath below). Config.SampleK /
	// SampleSeed opt the shard windows into sampled profiling
	// (classification stays exact, only every K-th conflict candidate
	// is histogrammed); Config.Backend "sketch" is rejected — windowed
	// profiles need exact support enumeration to decay and merge.
	Config core.Config

	// Shards is the ingest fan-out: each shard owns one
	// profile.Windowed and a command channel, and clients hash to
	// shards by ID. Must be a power of two; 0 means 1.
	Shards int

	// WindowAccesses is the window length: every this many ingested
	// accesses (across all shards) the windows rotate and a re-tune
	// runs. 0 selects DefaultWindowAccesses.
	WindowAccesses uint64

	// Decay is the per-rotation aggregate decay in [0, 1): 0 keeps
	// every window forever (the batch-equivalent mode), larger values
	// forget stale phases faster.
	Decay float64

	// QueueDepth is each shard's command-channel buffer in batches; 0
	// selects 64.
	QueueDepth int

	// CheckpointPath, when non-empty, persists the full service state
	// there (atomically) after every re-tune and on Close; Resume
	// restores it on startup. A missing file is a cold start.
	CheckpointPath string
	Resume         bool

	// Strict refuses to Resume from a checkpoint with a damaged
	// per-shard blob (the error names the shard). The default heals:
	// healthy shards restore, damaged ones cold-start, and the
	// failures are reported through RestoreErrors and Stats.ColdShards.
	Strict bool

	// CheckpointEvery, in accesses, adds a periodic checkpoint cadence
	// on top of the per-re-tune and on-Close writes: every time the
	// server-wide ingested count crosses a multiple, a durable write of
	// CheckpointPath is triggered (asynchronously, coalescing), and
	// every time a shard's own processed count crosses a multiple the
	// shard refreshes the in-memory recovery snapshot its supervisor
	// restarts it from. 0 disables both periodic cadences: a crash
	// during a long quiet window then loses everything since the last
	// re-tune, and a panicking shard restarts cold.
	CheckpointEvery uint64

	// MaxShardRestarts is each shard's circuit-breaker budget: a shard
	// goroutine that panics is restarted from its last recovery
	// snapshot (cold when none) up to this many times inside the
	// RestartWindow; one more failure quarantines the shard. 0 selects
	// DefaultMaxShardRestarts. A negative value disables supervision
	// entirely: the first shard panic stops the world (the pre-§16
	// behavior).
	MaxShardRestarts int

	// RestartWindow, in accesses processed by the shard, bounds the
	// circuit breaker's memory: a shard that has processed this many
	// accesses since its last failure earns its restart budget back.
	// 0 means failures never expire.
	RestartWindow uint64

	// RestartBackoff paces shard restarts with capped exponential
	// backoff and deterministic jitter, so a hot-looping fault cannot
	// spin the supervisor. Only the delay fields are used (MaxRetries
	// is the circuit breaker's job, see MaxShardRestarts). The zero
	// value restarts immediately — the deterministic test
	// configuration.
	RestartBackoff faultio.Policy

	// Shed enables overload control on the ingest path: when a shard's
	// queue is full, IngestBlocks waits at most AdmissionWait for
	// space and then drops the batch with a wrapped xerr.ErrOverload,
	// counted per shard and per client; and a client already holding
	// more than half the accesses admitted to a contended shard since
	// the last rotation is shed immediately, so one hot client cannot
	// starve the rest. Disabled (the default), IngestBlocks blocks
	// until the queue drains — the pre-§16 backpressure behavior.
	Shed bool

	// AdmissionWait bounds how long an IngestBlocks call waits for
	// space on a full shard queue before shedding (Shed mode only).
	// 0 selects DefaultAdmissionWait; negative sheds immediately.
	AdmissionWait time.Duration

	// RetuneDeadline bounds each background re-tune round: a search
	// that exceeds it is cancelled and its anytime best-so-far
	// (Degraded) result is published through the usual §6 guard
	// instead of the abandoned full climb. 0 means no deadline.
	RetuneDeadline time.Duration

	// FaultHook, when non-nil, is called by each shard goroutine after
	// it processes an ingest batch, with the shard index and the
	// shard's cumulative processed-access count. It exists for
	// deterministic fault injection — internal/chaos schedules panics
	// and stalls through it — and must be fast in production use.
	FaultHook func(shard int, processed uint64)

	// Retry guards ServeIngest's transport reads: transient failures
	// (errors wrapping xerr.ErrIO) retry with capped exponential
	// backoff before the decoder ever sees them. Zero MaxRetries
	// disables the wrapper.
	Retry faultio.Policy

	// Events receives re-tune progress (core SearchRound events, with
	// Event.Round set to the rotation round). Shared across rounds;
	// must be fast and concurrency-safe. Optional.
	Events core.Sink
}

// DefaultWindowAccesses is the window length when Options leaves it 0.
const DefaultWindowAccesses = 1 << 18

// DefaultMaxShardRestarts is the per-shard circuit-breaker budget when
// Options leaves it 0.
const DefaultMaxShardRestarts = 3

// DefaultAdmissionWait is the bounded admission wait in Shed mode when
// Options leaves it 0.
const DefaultAdmissionWait = 2 * time.Millisecond

// maxShards bounds the fan-out (a shard costs a goroutine plus a
// Windowed; thousands of them is a configuration error, not a plan).
const maxShards = 1 << 12

// maxAttachedCauses caps how many secondary background failures Err
// accumulates behind the primary cause.
const maxAttachedCauses = 16

// minFairnessSample is how many accesses a shard must have admitted
// since the last rotation before the hot-client share rule applies —
// below it there is no meaningful notion of a dominating client.
const minFairnessSample = 1024

// Epoch is one published tuning result. Epochs are immutable;
// Current returns the latest and never blocks.
type Epoch struct {
	// Seq increases by one per publication; the boot epoch is 1.
	Seq uint64
	// Func is the index function readers should use.
	Func hash.Func
	// Estimated is Func's Eq. 4 estimate on the merged aggregate of
	// the round that published this epoch (0 for the boot epoch: no
	// profile existed yet).
	Estimated uint64
	// PrevEstimated is the previous epoch's function scored on that
	// same aggregate — the §6-style guard input: Estimated never
	// exceeds it, because a candidate that scores worse than the
	// incumbent is not published.
	PrevEstimated uint64
	// Baseline is conventional modulo indexing scored on that same
	// aggregate.
	Baseline uint64
	// Window is the rotation round that published this epoch.
	Window uint64
	// Changed reports whether Func's matrix differs from the previous
	// epoch's — a real hot swap rather than a confirmation.
	Changed bool
	// Degraded reports that the search behind this epoch was cut off
	// by the re-tune watchdog (RetuneDeadline) and the published
	// function is the anytime best-so-far rather than a converged
	// climb. It still passed the §6-style guard.
	Degraded bool
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Ingested  uint64 // accesses accepted into shard queues
	Batches   uint64 // ingest batches accepted
	Rotations uint64 // window rotations (== completed re-tune rounds)
	Retunes   uint64 // re-tune executions (deduplicated callers share one)
	Swaps     uint64 // epochs whose matrix changed
	EpochSeq  uint64 // Current().Seq
	Shards    int

	// Self-healing counters (§16).
	Restarts           uint64 // shard goroutine restarts after recovered panics
	Quarantined        int    // shards currently quarantined
	Shed               uint64 // accesses dropped by overload shedding
	ShedBatches        uint64 // batches dropped by overload shedding
	DroppedQuarantined uint64 // accesses dropped because their shard is quarantined
	Checkpoints        uint64 // durable checkpoint writes that completed
	StaleSkips         uint64 // re-tune rounds refused by the quarantined-majority staleness guard
	DegradedRetunes    uint64 // rounds published from a watchdog-degraded best-so-far search
	ColdShards         int    // shards cold-started by a damaged checkpoint blob on Resume
}

// ShardStats is one shard's view of the same counters.
type ShardStats struct {
	Shard              int
	Admitted           uint64 // accesses admitted into the queue
	Processed          uint64 // accesses applied to the windowed profile
	Shed               uint64 // accesses shed by overload control
	DroppedQuarantined uint64 // accesses refused at admission while quarantined
	DrainedQuarantined uint64 // admitted accesses lost from the queue under quarantine
	Restarts           uint64 // supervisor restarts
	Quarantined        bool
	SnapshotAccesses   uint64 // processed count covered by the last recovery snapshot
}

// shardCmd is one message to a shard goroutine. Exactly one field is
// set: blocks to ingest, or a reply channel for a rotation, an
// aggregate snapshot, or a checkpoint blob. Reply channels have
// capacity 1 so the shard never blocks on its reply.
type shardCmd struct {
	blocks []uint64
	rotate chan<- *profile.Profile
	agg    chan<- *profile.Profile
	snap   chan<- snapReply
}

type snapReply struct {
	data []byte
	err  error
}

// shardSnap is one in-memory recovery snapshot: the serialized
// Windowed plus the processed-access count it covers.
type shardSnap struct {
	data      []byte
	processed uint64
}

type shard struct {
	ch chan shardCmd
	wb *profile.Windowed // owned by the shard goroutine while it runs
	i  int

	admitted    atomic.Uint64
	processed   atomic.Uint64
	shed        atomic.Uint64
	shedBatches atomic.Uint64
	dropped     atomic.Uint64
	drained     atomic.Uint64
	restarts    atomic.Uint64
	quarantined atomic.Bool

	snap      atomic.Pointer[shardSnap]
	sinceSnap uint64 // shard-goroutine-local cadence counter

	// Per-client admission accounting since the last rotation (Shed
	// mode only; guarded by acctMu on the admission path).
	acctMu    sync.Mutex
	acct      map[uint64]uint64
	acctTotal uint64
}

// Server is the long-running tuning service. Create with New, stop
// with Close. All methods are safe for concurrent use.
type Server struct {
	opt       Options
	cfg       core.Config // normalized
	n, m      int
	shards    []*shard
	shardMask uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	cur       atomic.Pointer[Epoch]
	fl        flightGroup
	ckptMu    sync.Mutex // serializes checkpoint writes
	closeOnce sync.Once
	closed    atomic.Bool
	closeErr  error

	// Window accounting.
	sinceRotate atomic.Uint64
	wake        chan struct{}
	ckptWake    chan struct{}

	// Counters.
	ingested    atomic.Uint64
	batches     atomic.Uint64
	rotations   atomic.Uint64
	retunes     atomic.Uint64
	swaps       atomic.Uint64
	checkpoints atomic.Uint64
	staleSkips  atomic.Uint64
	degraded    atomic.Uint64
	nQuarantine atomic.Int32

	// Background failures: first cause primary, later causes attached
	// (capped) — a shard panic that triggers secondary cancellations
	// must never be masked by them.
	errMu       sync.Mutex
	errPrimary  error
	errAttached []error

	restoreErrs []error // per-shard blob damage healed during Resume
}

// New validates the options, restores a checkpoint when Resume is set
// (a missing file is a cold start; a damaged per-shard blob cold-starts
// that shard unless Strict), and starts the supervised shard and
// optimizer goroutines. The boot epoch — available from Current
// immediately — is the conventional modulo function at Seq 1 unless a
// checkpoint supplied a later one.
func New(opt Options) (*Server, error) {
	cfg, err := opt.Config.Normalized()
	if err != nil {
		return nil, err
	}
	// The serve layer owns checkpointing; the pipeline's per-stage
	// checkpoint files must not fight over the same path.
	cfg.CheckpointPath, cfg.Resume = "", false
	if opt.Shards == 0 {
		opt.Shards = 1
	}
	if opt.Shards < 0 || opt.Shards > maxShards || opt.Shards&(opt.Shards-1) != 0 {
		return nil, fmt.Errorf("serve: Shards %d not a power of two in [1, %d]: %w",
			opt.Shards, maxShards, xerr.ErrInvalidOptions)
	}
	if opt.WindowAccesses == 0 {
		opt.WindowAccesses = DefaultWindowAccesses
	}
	if err := profile.ValidateDecay(opt.Decay); err != nil {
		return nil, err
	}
	if cfg.Backend == "sketch" {
		return nil, fmt.Errorf("serve: windowed profiling does not support the sketch backend: %w",
			xerr.ErrInvalidOptions)
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 64
	}
	if opt.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: negative QueueDepth: %w", xerr.ErrInvalidOptions)
	}
	if opt.MaxShardRestarts == 0 {
		opt.MaxShardRestarts = DefaultMaxShardRestarts
	}
	if opt.AdmissionWait == 0 {
		opt.AdmissionWait = DefaultAdmissionWait
	}
	if opt.RetuneDeadline < 0 {
		return nil, fmt.Errorf("serve: negative RetuneDeadline: %w", xerr.ErrInvalidOptions)
	}
	if err := opt.Retry.Validate(); err != nil {
		return nil, err
	}
	if err := opt.RestartBackoff.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		opt: opt, cfg: cfg,
		n: cfg.AddrBits, m: cfg.SetBits(),
		shardMask: uint64(opt.Shards - 1),
		wake:      make(chan struct{}, 1),
		ckptWake:  make(chan struct{}, 1),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	var restored *serviceState
	if opt.Resume && opt.CheckpointPath != "" {
		restored, err = loadServiceState(opt.CheckpointPath, s.n, cfg.CacheBytes/cfg.BlockBytes, s.m,
			opt.Decay, s.sampling(), opt.Shards, opt.Strict)
		if err != nil {
			return nil, err
		}
	}
	s.shards = make([]*shard, opt.Shards)
	for i := range s.shards {
		var wb *profile.Windowed
		if restored != nil {
			wb = restored.shards[i]
		} else {
			wb, err = s.newWindowed()
			if err != nil {
				return nil, err
			}
		}
		s.shards[i] = &shard{ch: make(chan shardCmd, opt.QueueDepth), wb: wb, i: i}
	}
	if restored != nil {
		s.cur.Store(restored.epoch)
		s.rotations.Store(restored.rotations)
		s.restoreErrs = restored.damage
	} else {
		s.cur.Store(&Epoch{Seq: 1, Func: hash.Modulo(s.n, s.m)})
	}
	for i, sh := range s.shards {
		s.wg.Add(1)
		go s.superviseShard(i, sh)
	}
	s.wg.Add(1)
	go s.optimizer()
	if opt.CheckpointEvery > 0 && opt.CheckpointPath != "" {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	return s, nil
}

// Current returns the latest published epoch: one atomic load, never
// nil, never blocking — regardless of any re-tune, checkpoint or
// ingest in flight.
func (s *Server) Current() *Epoch { return s.cur.Load() }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Ingested:        s.ingested.Load(),
		Batches:         s.batches.Load(),
		Rotations:       s.rotations.Load(),
		Retunes:         s.retunes.Load(),
		Swaps:           s.swaps.Load(),
		EpochSeq:        s.cur.Load().Seq,
		Shards:          len(s.shards),
		Quarantined:     int(s.nQuarantine.Load()),
		Checkpoints:     s.checkpoints.Load(),
		StaleSkips:      s.staleSkips.Load(),
		DegradedRetunes: s.degraded.Load(),
		ColdShards:      len(s.restoreErrs),
	}
	for _, sh := range s.shards {
		st.Restarts += sh.restarts.Load()
		st.Shed += sh.shed.Load()
		st.ShedBatches += sh.shedBatches.Load()
		st.DroppedQuarantined += sh.dropped.Load()
	}
	return st
}

// ShardStats snapshots every shard's counters, indexed by shard.
func (s *Server) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStats{
			Shard:              i,
			Admitted:           sh.admitted.Load(),
			Processed:          sh.processed.Load(),
			Shed:               sh.shed.Load(),
			DroppedQuarantined: sh.dropped.Load(),
			DrainedQuarantined: sh.drained.Load(),
			Restarts:           sh.restarts.Load(),
			Quarantined:        sh.quarantined.Load(),
		}
		if snap := sh.snap.Load(); snap != nil {
			out[i].SnapshotAccesses = snap.processed
		}
	}
	return out
}

// RestoreErrors reports the per-shard checkpoint damage healed during
// a non-Strict Resume: one error per cold-started shard, each naming
// the shard and wrapping xerr.ErrFormat or xerr.ErrProfileMismatch.
// Empty on a clean resume or a cold start.
func (s *Server) RestoreErrors() []error {
	return append([]error(nil), s.restoreErrs...)
}

// ShardOf reports which shard a client's traffic lands on — the
// targeting primitive for operators and the chaos harness.
func (s *Server) ShardOf(clientID uint64) int {
	return int(splitmix(clientID) & s.shardMask)
}

// Err returns the accumulated background failure, or nil. The first
// cause is primary (its message leads and it is first in the joined
// chain); up to maxAttachedCauses later causes — which would have been
// masked before §16 — are attached, so errors.Is matches any of them.
func (s *Server) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.errPrimary == nil {
		return nil
	}
	if len(s.errAttached) == 0 {
		return s.errPrimary
	}
	return errors.Join(append([]error{s.errPrimary}, s.errAttached...)...)
}

func (s *Server) fail(err error) {
	if err == nil || errors.Is(err, xerr.ErrCanceled) {
		return
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.errPrimary == nil {
		s.errPrimary = err
		return
	}
	if len(s.errAttached) < maxAttachedCauses {
		s.errAttached = append(s.errAttached, err)
	}
}

// splitmix is the splitmix64 finalizer: adjacent client IDs spread
// across shards.
func splitmix(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// shardFor maps a client to its shard.
func (s *Server) shardFor(clientID uint64) *shard {
	return s.shards[splitmix(clientID)&s.shardMask]
}

// IngestBlocks feeds one client's block accesses into its shard. The
// batch is copied, so the caller may reuse the slice. The fast path is
// one channel send. On a full shard queue the behavior is the
// admission policy's: without Shed it blocks until space (the
// backpressure mode); with Shed it waits at most AdmissionWait and
// then drops the batch with a wrapped xerr.ErrOverload, counted in
// Stats.Shed. Traffic to a quarantined shard is dropped with
// accounting (Stats.DroppedQuarantined) and returns nil — the client
// is healthy, the shard is not. Returns ErrClosed once the server is
// closing.
func (s *Server) IngestBlocks(clientID uint64, blocks []uint64) error {
	if len(blocks) == 0 {
		return nil
	}
	if s.closed.Load() {
		return ErrClosed
	}
	sh := s.shardFor(clientID)
	n := uint64(len(blocks))
	if sh.quarantined.Load() {
		if s.ctx.Err() != nil {
			return ErrClosed // quarantine escalated to stop-the-world
		}
		sh.dropped.Add(n)
		return nil
	}
	cmd := shardCmd{blocks: append([]uint64(nil), blocks...)}
	if s.opt.Shed {
		if err := s.admit(sh, clientID, cmd); err != nil {
			return err
		}
	} else {
		select {
		case sh.ch <- cmd:
		case <-s.ctx.Done():
			return ErrClosed
		}
	}
	sh.admitted.Add(n)
	s.batches.Add(1)
	s.noteAccesses(n)
	return nil
}

// admit is the Shed-mode admission path: fast-path send, hot-client
// fairness, bounded wait, accounted drop.
func (s *Server) admit(sh *shard, clientID uint64, cmd shardCmd) error {
	n := uint64(len(cmd.blocks))
	select {
	case sh.ch <- cmd:
		sh.noteAdmitted(clientID, n)
		return nil
	default:
	}
	// The queue is contended. A client already holding more than half
	// of what this shard admitted since the last rotation is shed
	// first — it does not get to consume the bounded wait the other
	// clients need.
	if sh.clientDominates(clientID) {
		return s.shedBatch(sh, clientID, n, "hot client")
	}
	wait := s.opt.AdmissionWait
	if wait <= 0 {
		return s.shedBatch(sh, clientID, n, "queue full")
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case sh.ch <- cmd:
		sh.noteAdmitted(clientID, n)
		return nil
	case <-t.C:
		return s.shedBatch(sh, clientID, n, "admission wait expired")
	case <-s.ctx.Done():
		return ErrClosed
	}
}

// shedBatch accounts one dropped batch and returns the typed overload
// error.
func (s *Server) shedBatch(sh *shard, clientID uint64, n uint64, why string) error {
	sh.shed.Add(n)
	sh.shedBatches.Add(1)
	return fmt.Errorf("serve: shard %d shedding %d accesses from client %d (%s): %w",
		sh.i, n, clientID, why, xerr.ErrOverload)
}

// noteAdmitted records a client's admitted accesses for the fairness
// rule. Reset at every rotation.
func (sh *shard) noteAdmitted(clientID uint64, n uint64) {
	sh.acctMu.Lock()
	if sh.acct == nil {
		sh.acct = make(map[uint64]uint64)
	}
	sh.acct[clientID] += n
	sh.acctTotal += n
	sh.acctMu.Unlock()
}

// clientDominates reports whether clientID holds more than half of the
// shard's admitted accesses since the last rotation (once there is a
// meaningful sample).
func (sh *shard) clientDominates(clientID uint64) bool {
	sh.acctMu.Lock()
	defer sh.acctMu.Unlock()
	return sh.acctTotal >= minFairnessSample && sh.acct[clientID]*2 > sh.acctTotal
}

// resetAcct starts a fresh fairness accounting window.
func (sh *shard) resetAcct() {
	sh.acctMu.Lock()
	sh.acct = nil
	sh.acctTotal = 0
	sh.acctMu.Unlock()
}

// noteAccesses counts n accepted accesses, advances the window clock —
// waking the optimizer at window boundaries — and triggers the
// periodic durable checkpoint at CheckpointEvery boundaries. The Swap
// makes window crossings race-tolerant: however many ingesters cross
// together, the counter resets once and at least one wake lands (the
// channel holds one pending wake; coalescing concurrent boundaries is
// exactly the singleflight semantics the re-tune wants anyway).
func (s *Server) noteAccesses(n uint64) {
	total := s.ingested.Add(n)
	if every := s.opt.CheckpointEvery; every > 0 && s.opt.CheckpointPath != "" {
		if (total-n)/every != total/every {
			select {
			case s.ckptWake <- struct{}{}:
			default:
			}
		}
	}
	if s.sinceRotate.Add(n) >= s.opt.WindowAccesses {
		if s.sinceRotate.Swap(0) >= s.opt.WindowAccesses {
			select {
			case s.wake <- struct{}{}:
			default:
			}
		}
	}
}

// ServeIngest decodes one client connection's ingest stream (wire.go
// format) and feeds every frame into the shards, until the stream ends
// (nil), the context ends, or a frame is corrupt. With a Retry policy
// configured, transient transport errors retry below the decoder. A
// frame shed by overload control is dropped — already accounted by the
// server — and the stream stays up: one overloaded shard must not cost
// a client its connection.
func (s *Server) ServeIngest(ctx context.Context, r io.Reader) error {
	if s.opt.Retry.MaxRetries > 0 {
		rr, err := faultio.NewRetryReader(ctx, r, s.opt.Retry)
		if err != nil {
			return err
		}
		r = rr
	}
	d := NewBatchReader(r)
	var buf []uint64
	for {
		if err := xerr.Check(ctx); err != nil {
			return err
		}
		clientID, blocks, err := d.Next(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		buf = blocks
		if err := s.IngestBlocks(clientID, blocks); err != nil {
			if errors.Is(err, xerr.ErrOverload) {
				continue
			}
			return err
		}
	}
}

// Retune runs one re-tune round — rotate every healthy shard's window,
// merge the decayed aggregates, search warm-started from the current H
// under the watchdog, publish the winner — and returns the resulting
// epoch. Concurrent callers (including the background optimizer)
// deduplicate: all of them get the same epoch from one execution. ctx
// bounds this caller's wait only; the round itself runs on the
// server's lifetime context so one impatient caller cannot abort a
// shared round.
func (s *Server) Retune(ctx context.Context) (*Epoch, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	ep, _, err := s.fl.Do(ctx, "retune", s.retune)
	return ep, err
}

// retune is the singleflight-protected round body.
func (s *Server) retune() (*Epoch, error) {
	// Staleness guard, checked before any shard rotates: an aggregate
	// assembled while half or more of the shards are quarantined
	// reflects a minority of the traffic, and an H tuned to it must
	// never hot-swap in. The round is refused outright — no rotation,
	// no decay, no publication — and the incumbent stays.
	if q := int(s.nQuarantine.Load()); q > 0 && q*2 >= len(s.shards) {
		s.staleSkips.Add(1)
		return s.cur.Load(), nil
	}
	merged, err := s.rotateAndMerge()
	if err != nil {
		return nil, err
	}
	// Aggregate self-validation: a corrupted shard histogram must be
	// caught here, before any search result derived from it can reach
	// the published H.
	if err := validateAggregate(merged, s.n, s.cfg.CacheBytes/s.cfg.BlockBytes); err != nil {
		return nil, err
	}
	round := s.rotations.Add(1)
	prev := s.cur.Load()

	// Re-tune watchdog: the search runs under RetuneDeadline (when
	// set) on top of the server's lifetime context.
	sctx := s.ctx
	cancel := context.CancelFunc(func() {})
	if d := s.opt.RetuneDeadline; d > 0 {
		sctx, cancel = context.WithTimeout(s.ctx, d)
	}
	pl := core.Pipeline{Config: s.cfg, Events: s.opt.Events}
	sres, serr := pl.SearchRound(sctx, merged, prev.Func.Matrix(), int(round))
	cancel()
	degradedRound := false
	if serr != nil {
		// Deadline expiry with a usable anytime result degrades the
		// round instead of failing it; a server shutdown (or a search
		// with nothing to offer) still propagates.
		if s.ctx.Err() == nil && errors.Is(serr, context.DeadlineExceeded) &&
			sres.Degraded && sres.Matrix.Cols != nil {
			degradedRound = true
			s.degraded.Add(1)
		} else {
			return nil, serr
		}
	}
	// §6-style publish guard: score the incumbent on the same
	// aggregate and never swap to a worse candidate. The warm-started
	// general-XOR climb cannot lose to its own starting point, but
	// cold-searched families and watchdog-degraded rounds can — the
	// guard is what makes the anytime fallback safe to publish.
	prevEst := merged.EstimateMatrix(prev.Func.Matrix())
	ep := &Epoch{
		Seq:           prev.Seq + 1,
		Window:        round,
		PrevEstimated: prevEst,
		Baseline:      sres.Baseline,
		Degraded:      degradedRound,
	}
	if sres.Estimated <= prevEst {
		f, err := hash.NewXOR(sres.Matrix)
		if err != nil {
			return nil, err
		}
		ep.Func = f
		ep.Estimated = sres.Estimated
		ep.Changed = !sres.Matrix.Equal(prev.Func.Matrix())
	} else {
		ep.Func = prev.Func
		ep.Estimated = prevEst
	}
	s.cur.Store(ep)
	s.retunes.Add(1)
	if ep.Changed {
		s.swaps.Add(1)
	}
	if s.opt.CheckpointPath != "" {
		if err := s.SaveCheckpoint(); err != nil {
			// The epoch is published and live; losing one checkpoint
			// write degrades crash-freshness, not correctness.
			return ep, err
		}
	}
	return ep, nil
}

// validateAggregate re-checks the invariants a merged aggregate must
// satisfy before it may steer a publication: the histogram must sum
// exactly to TotalPairs, every vector must fit the address width, the
// classified counters must not exceed the access count, and the
// geometry must match the server's. Violations are wrapped
// xerr.ErrFormat — corrupt content, not a transient condition.
func validateAggregate(p *profile.Profile, n, cacheBlocks int) error {
	if p == nil {
		return fmt.Errorf("serve: re-tune aggregate missing: %w", xerr.ErrFormat)
	}
	if p.N != n || p.CacheBlocks != cacheBlocks {
		return fmt.Errorf("serve: re-tune aggregate geometry (n=%d, %d blocks) does not match server (n=%d, %d blocks): %w",
			p.N, p.CacheBlocks, n, cacheBlocks, xerr.ErrProfileMismatch)
	}
	if sum := p.Compulsory + p.Capacity + p.Candidates; sum > p.Accesses {
		return fmt.Errorf("serve: re-tune aggregate counters disagree (%d+%d+%d > %d accesses): %w",
			p.Compulsory, p.Capacity, p.Candidates, p.Accesses, xerr.ErrFormat)
	}
	var mask uint64
	if n >= 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1) << n) - 1
	}
	var sum uint64
	for _, vc := range p.Support() {
		if uint64(vc.Vec) > mask {
			return fmt.Errorf("serve: re-tune aggregate vector %#x exceeds %d bits: %w", uint64(vc.Vec), n, xerr.ErrFormat)
		}
		if vc.Count == 0 {
			return fmt.Errorf("serve: re-tune aggregate carries a zero count: %w", xerr.ErrFormat)
		}
		sum += vc.Count
	}
	if sum != p.TotalPairs {
		return fmt.Errorf("serve: re-tune aggregate histogram sums to %d pairs, counter says %d: %w",
			sum, p.TotalPairs, xerr.ErrFormat)
	}
	return nil
}

// sampling is the shard windows' sampled-profiling configuration,
// from the tuning Config.
func (s *Server) sampling() profile.SampleOptions {
	return profile.SampleOptions{K: s.cfg.SampleK, Seed: s.cfg.SampleSeed}
}

// newWindowed cold-starts one shard's windowed profile with the
// server's geometry, decay and sampling configuration.
func (s *Server) newWindowed() (*profile.Windowed, error) {
	return profile.NewSampledWindowed(s.n, s.cfg.CacheBytes/s.cfg.BlockBytes, s.opt.Decay, s.sampling())
}

// rotateAndMerge rotates every healthy shard's window (pipelined: all
// rotate commands enqueue before any reply is awaited) and merges the
// decayed per-shard aggregates into one profile for the search. A
// shard that fails mid-rotation (nil reply from its supervisor's
// recovery path) is skipped for this round. Fairness accounting resets
// with the rotation.
func (s *Server) rotateAndMerge() (*profile.Profile, error) {
	replies := make([]chan *profile.Profile, len(s.shards))
	for i, sh := range s.shards {
		if sh.quarantined.Load() {
			continue
		}
		rc := make(chan *profile.Profile, 1)
		replies[i] = rc
		select {
		case sh.ch <- shardCmd{rotate: rc}:
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	var merged *profile.Profile
	for i, rc := range replies {
		if rc == nil {
			continue
		}
		select {
		case agg := <-rc:
			s.shards[i].resetAcct()
			if agg == nil {
				continue // shard failed mid-rotation; its supervisor is on it
			}
			if merged == nil {
				merged = agg
			} else if err := merged.Merge(agg); err != nil {
				return nil, err
			}
		case <-s.ctx.Done():
			return nil, xerr.Canceled(s.ctx)
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("serve: no healthy shard contributed to the rotation: %w", ErrQuarantined)
	}
	return merged, nil
}

// Profile returns the merged live aggregate across all healthy shards
// — the rotated windows plus each live window, without rotating
// anything. With Decay 0, no quarantined shards and however many
// rotations it equals a batch profile.Build over every access ingested
// so far.
func (s *Server) Profile() (*profile.Profile, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	replies := make([]chan *profile.Profile, len(s.shards))
	for i, sh := range s.shards {
		if sh.quarantined.Load() {
			continue
		}
		rc := make(chan *profile.Profile, 1)
		replies[i] = rc
		select {
		case sh.ch <- shardCmd{agg: rc}:
		case <-s.ctx.Done():
			return nil, ErrClosed
		}
	}
	var merged *profile.Profile
	for _, rc := range replies {
		if rc == nil {
			continue
		}
		select {
		case snap := <-rc:
			if snap == nil {
				continue
			}
			if merged == nil {
				merged = snap
			} else if err := merged.Merge(snap); err != nil {
				return nil, err
			}
		case <-s.ctx.Done():
			return nil, ErrClosed
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("serve: no healthy shard to snapshot: %w", ErrQuarantined)
	}
	return merged, nil
}

// writerBuffer is a minimal bytes.Buffer stand-in that keeps ownership
// of its backing slice (no Reset/ReadFrom surface to misuse).
type writerBuffer struct{ data []byte }

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// optimizer is the background goroutine that turns window boundaries
// into re-tune rounds. Failures are recorded (Err) and do not stop the
// loop: a canceled search this round must not kill the service.
func (s *Server) optimizer() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
		if _, _, err := s.fl.Do(s.ctx, "retune", s.retune); err != nil {
			s.fail(err)
		}
	}
}

// checkpointLoop is the background goroutine behind the periodic
// durable checkpoint cadence: CheckpointEvery boundary crossings wake
// it (coalescing — a slow write absorbs every boundary it spans), and
// each wake writes one full service checkpoint. Failures are recorded
// and do not stop the loop.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.ckptWake:
		}
		if err := s.SaveCheckpoint(); err != nil {
			s.fail(err)
		}
	}
}

// Close stops the server: no new ingest is accepted, a final
// checkpoint is written (when configured), and every goroutine is
// joined. Idempotent; concurrent calls return the first Close's error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		if s.opt.CheckpointPath != "" && s.ctx.Err() == nil {
			// Shards are still running, so their snapshot commands drain
			// normally behind any queued ingest.
			s.closeErr = s.SaveCheckpoint()
		}
		s.cancel()
		s.wg.Wait()
	})
	return s.closeErr
}
