package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// Reader streams accesses out of the binary format one record at a
// time, without materializing the whole trace. It is the input side of
// the chunked profiling pipeline (profile.BuildStream): a ROADMAP-scale
// trace is decoded in fixed-size block chunks that are handed to the
// sharded profile builders as they arrive.
//
// The header (name, ops, access count) is read eagerly by NewReader;
// records are decoded lazily by Next / ReadBlocks. A Reader must not be
// shared between goroutines.
type Reader struct {
	br    *bufio.Reader
	name  string
	ops   uint64
	count uint64 // total accesses declared in the header
	read  uint64 // accesses decoded so far
	prev  [3]uint64
}

// NewReader parses the header of a binary-format trace and returns a
// streaming reader positioned at the first access record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w: %w", xerr.ErrFormat, err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q: %w", head, xerr.ErrFormat)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w: %w", xerr.ErrFormat, err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length: %w", xerr.ErrFormat)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w: %w", xerr.ErrFormat, err)
	}
	ops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading ops: %w: %w", xerr.ErrFormat, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading access count: %w: %w", xerr.ErrFormat, err)
	}
	return &Reader{br: br, name: string(name), ops: ops, count: count}, nil
}

// Name returns the trace name from the header.
func (r *Reader) Name() string { return r.name }

// Ops returns the operation count from the header.
func (r *Reader) Ops() uint64 { return r.ops }

// Len returns the total number of accesses declared in the header.
func (r *Reader) Len() uint64 { return r.count }

// Pos returns the number of accesses decoded so far.
func (r *Reader) Pos() uint64 { return r.read }

// Next decodes the next access. After the last declared record it
// returns io.EOF; any other error means a malformed or truncated trace.
func (r *Reader) Next() (Access, error) {
	if r.read >= r.count {
		return Access{}, io.EOF
	}
	kb, err := r.br.ReadByte()
	if err != nil {
		return Access{}, fmt.Errorf("trace: access %d kind: %w: %w", r.read, xerr.ErrFormat, err)
	}
	if Kind(kb) > Fetch {
		return Access{}, fmt.Errorf("trace: access %d invalid kind %d: %w", r.read, kb, xerr.ErrFormat)
	}
	delta, err := binary.ReadVarint(r.br)
	if err != nil {
		return Access{}, fmt.Errorf("trace: access %d delta: %w: %w", r.read, xerr.ErrFormat, err)
	}
	addr := uint64(int64(r.prev[kb]) + delta)
	r.prev[kb] = addr
	r.read++
	return Access{Addr: addr, Kind: Kind(kb)}, nil
}

// ReadBlocks fills dst with the next block addresses truncated to n
// bits — the form the profiling algorithm consumes (see Trace.Blocks) —
// and returns how many it decoded. It returns (k, nil) with 0 < k <=
// len(dst) while records remain, then (0, io.EOF) at the end of the
// trace. Decoding can stop and resume mid-chunk at any record boundary,
// so callers may use any buffer size, including 1.
func (r *Reader) ReadBlocks(dst []uint64, blockBytes, n int) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("trace: ReadBlocks needs a non-empty buffer")
	}
	mask := uint64(gf2.Mask(n))
	shift := uint(log2(blockBytes))
	for i := range dst {
		a, err := r.Next()
		if err == io.EOF {
			if i == 0 {
				return 0, io.EOF
			}
			return i, nil
		}
		if err != nil {
			return i, err
		}
		dst[i] = a.Addr >> shift & mask
	}
	return len(dst), nil
}

// ReadAll decodes every remaining access into an in-memory Trace —
// Decode is NewReader + ReadAll.
func (r *Reader) ReadAll() (*Trace, error) {
	t := &Trace{Name: r.name, Ops: r.ops}
	if remaining := r.count - r.read; remaining < 1<<24 {
		t.Accesses = make([]Access, 0, remaining)
	}
	for {
		a, err := r.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Accesses = append(t.Accesses, a)
	}
}
