package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"xoridx/internal/gf2"
)

// Reader streams accesses out of the binary format one record at a
// time, without materializing the whole trace. It is the input side of
// the chunked profiling pipeline (profile.BuildStream): a ROADMAP-scale
// trace is decoded in fixed-size block chunks that are handed to the
// sharded profile builders as they arrive.
//
// The header (name, ops, access count) is read eagerly by NewReader;
// records are decoded lazily by Next / ReadBlocks. A Reader must not be
// shared between goroutines.
//
// Error contract (the resilience layer depends on all three):
//
//   - Corrupt or truncated input — a bad magic, an invalid Kind byte,
//     a mid-record EOF — returns a *FormatError wrapping
//     xerr.ErrFormat and carrying the byte offset of the failure.
//   - Any other underlying read failure (e.g. a transient EIO from
//     faulty media) passes through unclassified, so callers can test
//     it with faultio.IsTransient and retry.
//   - Record decoding is atomic: Next consumes no bytes unless the
//     whole record parses, so after a transient failure the very same
//     Next call can simply be repeated.
type Reader struct {
	br     *bufio.Reader
	name   string
	ops    uint64
	count  uint64 // total accesses declared in the header
	read   uint64 // accesses decoded so far
	offset int64  // bytes consumed from the encoded stream so far
	prev   [3]uint64
}

// maxRecordLen is the longest possible access record: one kind byte
// plus a maximal signed varint.
const maxRecordLen = 1 + binary.MaxVarintLen64

// NewReader parses the header of a binary-format trace and returns a
// streaming reader positioned at the first access record.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{br: bufio.NewReader(r)}
	head := make([]byte, len(magic))
	if err := rd.readFull(head, "magic"); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, &FormatError{Offset: 0, What: fmt.Sprintf("magic %q", head)}
	}
	nameLen, err := rd.readUvarint("name length")
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, &FormatError{Offset: rd.offset, What: fmt.Sprintf("unreasonable name length %d", nameLen)}
	}
	name := make([]byte, nameLen)
	if err := rd.readFull(name, "name"); err != nil {
		return nil, err
	}
	if rd.ops, err = rd.readUvarint("ops"); err != nil {
		return nil, err
	}
	if rd.count, err = rd.readUvarint("access count"); err != nil {
		return nil, err
	}
	rd.name = string(name)
	return rd, nil
}

// readFull fills dst from the stream, classifying failures: an EOF
// inside the structure is corruption (FormatError), anything else
// passes through as a plain read error at the current offset.
func (r *Reader) readFull(dst []byte, what string) error {
	start := r.offset
	n, err := io.ReadFull(r.br, dst)
	r.offset += int64(n)
	if err == nil {
		return nil
	}
	if isEOFish(err) {
		return &FormatError{Offset: start, What: what, Err: err}
	}
	return fmt.Errorf("trace: reading %s at byte offset %d: %w", what, start, err)
}

// readUvarint decodes one header varint with the same classification
// as readFull.
func (r *Reader) readUvarint(what string) (uint64, error) {
	start := r.offset
	v, err := binary.ReadUvarint(countedByteReader{r})
	if err == nil {
		return v, nil
	}
	if isEOFish(err) {
		return 0, &FormatError{Offset: start, What: what, Err: err}
	}
	return 0, fmt.Errorf("trace: reading %s at byte offset %d: %w", what, start, err)
}

// countedByteReader adapts the reader for binary.ReadUvarint while
// keeping the byte offset exact.
type countedByteReader struct{ r *Reader }

func (c countedByteReader) ReadByte() (byte, error) {
	b, err := c.r.br.ReadByte()
	if err == nil {
		c.r.offset++
	}
	return b, err
}

// isEOFish reports whether err means the stream ended (as opposed to
// failing transiently).
func isEOFish(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// Name returns the trace name from the header.
func (r *Reader) Name() string { return r.name }

// Ops returns the operation count from the header.
func (r *Reader) Ops() uint64 { return r.ops }

// Len returns the total number of accesses declared in the header.
func (r *Reader) Len() uint64 { return r.count }

// Pos returns the number of accesses decoded so far.
func (r *Reader) Pos() uint64 { return r.read }

// Offset returns the byte offset into the encoded stream consumed so
// far (header included).
func (r *Reader) Offset() int64 { return r.offset }

// Next decodes the next access. After the last declared record it
// returns io.EOF. A *FormatError (wrapping xerr.ErrFormat, carrying
// the record's byte offset) means malformed or truncated input; any
// other error is an underlying read failure, after which Next may be
// called again — no bytes are consumed unless a whole record parses.
func (r *Reader) Next() (Access, error) {
	if r.read >= r.count {
		return Access{}, io.EOF
	}
	// Peek the longest possible record; near the end of the stream the
	// peek may return fewer bytes alongside the reason.
	buf, peekErr := r.br.Peek(maxRecordLen)
	if len(buf) == 0 {
		if peekErr == nil || isEOFish(peekErr) {
			return Access{}, &FormatError{Offset: r.offset, Record: r.read, HaveRecord: true,
				What: "kind", Err: io.ErrUnexpectedEOF}
		}
		return Access{}, fmt.Errorf("trace: access %d read at byte offset %d: %w", r.read, r.offset, peekErr)
	}
	kb := buf[0]
	if Kind(kb) > Fetch {
		return Access{}, &FormatError{Offset: r.offset, Record: r.read, HaveRecord: true,
			What: fmt.Sprintf("invalid kind %d", kb)}
	}
	delta, k := binary.Varint(buf[1:])
	if k < 0 {
		return Access{}, &FormatError{Offset: r.offset, Record: r.read, HaveRecord: true,
			What: "delta varint overflow"}
	}
	if k == 0 {
		// The varint needs more bytes than the stream could supply:
		// either the trace is truncated mid-record, or the fill failed
		// transiently. Nothing has been consumed either way.
		if peekErr == nil || isEOFish(peekErr) {
			return Access{}, &FormatError{Offset: r.offset, Record: r.read, HaveRecord: true,
				What: "delta", Err: io.ErrUnexpectedEOF}
		}
		return Access{}, fmt.Errorf("trace: access %d read at byte offset %d: %w", r.read, r.offset, peekErr)
	}
	// The record parsed in full: consume it atomically.
	if _, err := r.br.Discard(1 + k); err != nil {
		// Unreachable: the bytes were just peeked.
		return Access{}, fmt.Errorf("trace: access %d discard: %w", r.read, err)
	}
	r.offset += int64(1 + k)
	addr := uint64(int64(r.prev[kb]) + delta)
	r.prev[kb] = addr
	r.read++
	return Access{Addr: addr, Kind: Kind(kb)}, nil
}

// ReadBlocks fills dst with the next block addresses truncated to n
// bits — the form the profiling algorithm consumes (see Trace.Blocks) —
// and returns how many it decoded. It returns (k, nil) with 0 < k <=
// len(dst) while records remain, then (0, io.EOF) at the end of the
// trace. Decoding can stop and resume mid-chunk at any record boundary,
// so callers may use any buffer size, including 1. After a transient
// read failure (an error that is neither io.EOF nor a *FormatError),
// calling ReadBlocks again resumes exactly where it stopped.
func (r *Reader) ReadBlocks(dst []uint64, blockBytes, n int) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("trace: ReadBlocks needs a non-empty buffer")
	}
	mask := uint64(gf2.Mask(n))
	shift := uint(log2(blockBytes))
	for i := range dst {
		a, err := r.Next()
		if err == io.EOF {
			if i == 0 {
				return 0, io.EOF
			}
			return i, nil
		}
		if err != nil {
			return i, err
		}
		dst[i] = a.Addr >> shift & mask
	}
	return len(dst), nil
}

// BlockSource adapts the reader to the chunked pull shape the sharded
// profile builders consume (profile.BlockSource): each call decodes up
// to len(dst) block addresses truncated to n bits and returns io.EOF
// after the last record. The builder side tops up short deliveries
// itself, so chunk boundaries are the consumer's choice, not the
// decoder's — the returned closure may be handed any buffer size.
func (r *Reader) BlockSource(blockBytes, n int) func(dst []uint64) (int, error) {
	return func(dst []uint64) (int, error) {
		return r.ReadBlocks(dst, blockBytes, n)
	}
}

// ReadAll decodes every remaining access into an in-memory Trace —
// Decode is NewReader + ReadAll.
func (r *Reader) ReadAll() (*Trace, error) {
	t := &Trace{Name: r.name, Ops: r.ops}
	if remaining := r.count - r.read; remaining < 1<<24 {
		t.Accesses = make([]Access, 0, remaining)
	}
	for {
		a, err := r.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Accesses = append(t.Accesses, a)
	}
}
