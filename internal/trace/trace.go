// Package trace models memory-access traces: the input consumed by the
// profiling algorithm and the cache simulator.
//
// A trace is a sequence of Access records (address + kind) plus an
// operation count used to normalise miss rates to the paper's
// "misses per K-uop" metric. Traces can be held in memory, streamed to
// and from a compact binary format, or written as human-readable text.
package trace

import (
	"fmt"

	"xoridx/internal/gf2"
)

// Kind distinguishes the access types a cache sees.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// Fetch is an instruction fetch.
	Fetch
)

// String returns a one-letter mnemonic: R, W or F.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Fetch:
		return "F"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is a single memory reference by byte address.
type Access struct {
	Addr uint64
	Kind Kind
}

// Block returns the cache-block address for a given block size in bytes
// (must be a power of two).
func (a Access) Block(blockBytes int) uint64 {
	return a.Addr >> uint(log2(blockBytes))
}

// Trace is an in-memory access trace. Ops is the number of executed
// operations (uops in the paper) the trace corresponds to; it is at
// least the number of accesses but is usually larger because most
// operations do not touch memory.
type Trace struct {
	Name     string
	Accesses []Access
	Ops      uint64
}

// Append records one access.
func (t *Trace) Append(addr uint64, kind Kind) {
	t.Accesses = append(t.Accesses, Access{Addr: addr, Kind: kind})
}

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// OpsOrLen returns Ops, defaulting to the access count when the
// generator did not record an operation count.
func (t *Trace) OpsOrLen() uint64 {
	if t.Ops > 0 {
		return t.Ops
	}
	return uint64(len(t.Accesses))
}

// Filter returns a new trace with only the accesses of the given kinds.
// Ops is preserved: the filtered trace still represents the same amount
// of executed work (e.g. a data-only view of a full trace).
func (t *Trace) Filter(kinds ...Kind) *Trace {
	keep := map[Kind]bool{}
	for _, k := range kinds {
		keep[k] = true
	}
	out := &Trace{Name: t.Name, Ops: t.Ops}
	for _, a := range t.Accesses {
		if keep[a.Kind] {
			out.Accesses = append(out.Accesses, a)
		}
	}
	return out
}

// Blocks returns the sequence of block addresses (for the given block
// size) truncated to n bits: the form the profiling algorithm consumes.
// Block addresses are truncated, not hashed, exactly as the paper's
// n-hashed-address-bits model prescribes (high bits beyond n only ever
// participate in the tag).
func (t *Trace) Blocks(blockBytes, n int) []uint64 {
	mask := uint64(gf2.Mask(n))
	shift := uint(log2(blockBytes))
	out := make([]uint64, len(t.Accesses))
	for i, a := range t.Accesses {
		out[i] = a.Addr >> shift & mask
	}
	return out
}

// Stats summarises a trace. Counters are int64, not int: the streaming
// paths (Reader, MmapReader, Writer) handle traces past 2^31 accesses,
// and per-run bookkeeping derived from them must not truncate on
// 32-bit builds (the >2^31 boundary test in mmap_test.go pins the
// header side of this).
type Stats struct {
	Accesses     int64
	Reads        int64
	Writes       int64
	Fetches      int64
	Ops          uint64
	UniqueBlocks int64   // distinct block addresses (4-byte blocks)
	Footprint    uint64  // bytes spanned by unique 4-byte blocks
	MinAddr      uint64  // lowest byte address
	MaxAddr      uint64  // highest byte address
	AccPerKOp    float64 // accesses per 1000 ops
}

// ComputeStats scans the trace once and summarises it.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Accesses: int64(len(t.Accesses)), Ops: t.OpsOrLen()}
	if len(t.Accesses) == 0 {
		return s
	}
	s.MinAddr = ^uint64(0)
	blocks := make(map[uint64]struct{})
	for _, a := range t.Accesses {
		switch a.Kind {
		case Read:
			s.Reads++
		case Write:
			s.Writes++
		case Fetch:
			s.Fetches++
		}
		if a.Addr < s.MinAddr {
			s.MinAddr = a.Addr
		}
		if a.Addr > s.MaxAddr {
			s.MaxAddr = a.Addr
		}
		blocks[a.Addr>>2] = struct{}{}
	}
	s.UniqueBlocks = int64(len(blocks))
	s.Footprint = uint64(len(blocks)) * 4
	s.AccPerKOp = float64(s.Accesses) * 1000 / float64(s.Ops)
	return s
}

// log2 returns log2 of a positive power of two, panicking otherwise.
func log2(v int) int {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("trace: %d is not a positive power of two", v))
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Concat joins traces back to back into one trace (a phased execution:
// workload A runs to completion, then workload B, ...). Ops accumulate.
func Concat(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	for _, t := range traces {
		out.Accesses = append(out.Accesses, t.Accesses...)
		out.Ops += t.OpsOrLen()
	}
	return out
}

// Interleave merges traces in round-robin slices of quantum accesses,
// modelling time-shared execution with context switches: quantum
// accesses of trace 0, then of trace 1, ..., cycling until every trace
// is drained. Switches returns the access index of each context switch
// boundary (used by phase-aware reconfiguration experiments).
func Interleave(name string, quantum int, traces ...*Trace) (merged *Trace, switches []int) {
	if quantum <= 0 {
		panic("trace: Interleave quantum must be positive")
	}
	merged = &Trace{Name: name}
	pos := make([]int, len(traces))
	for _, t := range traces {
		merged.Ops += t.OpsOrLen()
	}
	last := -1
	for {
		progressed := false
		for i, t := range traces {
			if pos[i] >= len(t.Accesses) {
				continue
			}
			end := pos[i] + quantum
			if end > len(t.Accesses) {
				end = len(t.Accesses)
			}
			// A context switch happens only when a different trace
			// resumes (a drained peer does not cause a switch).
			if last >= 0 && last != i {
				switches = append(switches, len(merged.Accesses))
			}
			last = i
			merged.Accesses = append(merged.Accesses, t.Accesses[pos[i]:end]...)
			pos[i] = end
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return merged, switches
}

// Rebase returns a copy of the trace with every address shifted by
// delta bytes (wrap-around on overflow), modelling a different load
// address / ASLR placement of the same program.
func (t *Trace) Rebase(delta uint64) *Trace {
	out := &Trace{Name: t.Name, Ops: t.Ops, Accesses: make([]Access, len(t.Accesses))}
	for i, a := range t.Accesses {
		out.Accesses[i] = Access{Addr: a.Addr + delta, Kind: a.Kind}
	}
	return out
}
