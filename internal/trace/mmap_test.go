package trace

// Differential matrix pinning MmapReader to Reader's contract: same
// records, same header, same error classification at the same offsets,
// on valid traces and on every truncation and corruption of them. The
// streaming Writer is pinned to Encode the same way — byte-identical
// output — so cmd/tracegen -stream produces exactly the format every
// decoder already handles.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"xoridx/internal/xerr"
)

// mmapTraces is the valid-trace half of the differential matrix.
func mmapTraces() map[string]*Trace {
	one := &Trace{Name: "one"}
	one.Append(0x40, Write)

	kinds := &Trace{Name: "kinds", Ops: 7}
	for i := uint64(0); i < 64; i++ {
		kinds.Append(i*4, Kind(i%3))
	}

	jumps := &Trace{Name: "jumps"}
	jumps.Append(1<<40, Read)
	jumps.Append(0, Read) // large negative delta
	jumps.Append(1<<63, Fetch)
	jumps.Append(42, Write)

	return map[string]*Trace{
		"empty":  {Name: "empty"},
		"sample": streamTrace(),
		"one":    one,
		"kinds":  kinds,
		"jumps":  jumps,
	}
}

func TestMmapReaderMatchesReaderOnValidTraces(t *testing.T) {
	for name, tr := range mmapTraces() {
		t.Run(name, func(t *testing.T) {
			data := encode(t, tr)
			mr, err := NewMmapReaderBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if mr.Name() != rd.Name() || mr.Ops() != rd.Ops() || mr.Len() != rd.Len() {
				t.Fatalf("headers disagree: mmap %q/%d/%d, reader %q/%d/%d",
					mr.Name(), mr.Ops(), mr.Len(), rd.Name(), rd.Ops(), rd.Len())
			}
			for i := 0; ; i++ {
				ma, merr := mr.Next()
				ra, rerr := rd.Next()
				if ma != ra || !errorsEquivalent(merr, rerr) {
					t.Fatalf("access %d: mmap (%+v, %v), reader (%+v, %v)", i, ma, merr, ra, rerr)
				}
				if mr.Pos() != rd.Pos() || mr.Offset() != rd.Offset() {
					t.Fatalf("access %d: position mmap %d@%d, reader %d@%d",
						i, mr.Pos(), mr.Offset(), rd.Pos(), rd.Offset())
				}
				if merr == io.EOF {
					break
				}
				if merr != nil {
					t.Fatalf("access %d: unexpected decode error %v on a valid trace", i, merr)
				}
			}
		})
	}
}

func TestMmapReaderReadBlocksChunkedMatchesReader(t *testing.T) {
	data := encode(t, mmapTraces()["kinds"])
	for _, chunk := range []int{1, 3, 7, 64, 1000} {
		mr, err := NewMmapReaderBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		mbuf, rbuf := make([]uint64, chunk), make([]uint64, chunk)
		for {
			mn, merr := mr.ReadBlocks(mbuf, 4, 16)
			rn, rerr := rd.ReadBlocks(rbuf, 4, 16)
			if mn != rn || !errorsEquivalent(merr, rerr) {
				t.Fatalf("chunk=%d: mmap (%d, %v), reader (%d, %v)", chunk, mn, merr, rn, rerr)
			}
			for i := 0; i < mn; i++ {
				if mbuf[i] != rbuf[i] {
					t.Fatalf("chunk=%d: block %d: %#x vs %#x", chunk, i, mbuf[i], rbuf[i])
				}
			}
			if merr == io.EOF {
				break
			}
		}
	}
}

// TestMmapReaderTruncationMatrix cuts a valid encoding at every byte
// boundary: both decoders must agree on where decoding stops and how
// the failure is classified (header vs record, offset, EOF vs format).
func TestMmapReaderTruncationMatrix(t *testing.T) {
	data := encode(t, streamTrace())
	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		mr, merr := NewMmapReaderBytes(prefix)
		rd, rerr := NewReader(bytes.NewReader(prefix))
		if (merr == nil) != (rerr == nil) {
			t.Fatalf("cut=%d: header: mmap err %v, reader err %v", cut, merr, rerr)
		}
		if merr != nil {
			if !formatErrorsEquivalent(merr, rerr) {
				t.Fatalf("cut=%d: header errors diverge: %v vs %v", cut, merr, rerr)
			}
			continue
		}
		for i := 0; ; i++ {
			ma, me := mr.Next()
			ra, re := rd.Next()
			if ma != ra || !errorsEquivalent(me, re) {
				t.Fatalf("cut=%d access %d: mmap (%+v, %v), reader (%+v, %v)", cut, i, ma, me, ra, re)
			}
			if me != nil {
				break
			}
		}
	}
}

// TestMmapReaderCorruptKindMatrix flips each record's kind byte to an
// invalid value and checks both decoders fail identically.
func TestMmapReaderCorruptKindMatrix(t *testing.T) {
	tr := streamTrace()
	data := encode(t, tr)
	// Locate record starts by replaying offsets.
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	starts := []int64{rd.Offset()}
	for {
		if _, err := rd.Next(); err != nil {
			break
		}
		starts = append(starts, rd.Offset())
	}
	for rec, start := range starts[:len(starts)-1] {
		mut := append([]byte(nil), data...)
		mut[start] = 0x99
		mr, err := NewMmapReaderBytes(mut)
		if err != nil {
			t.Fatal(err)
		}
		brd, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			t.Fatal(err)
		}
		for {
			ma, me := mr.Next()
			ra, re := brd.Next()
			if ma != ra || !errorsEquivalent(me, re) {
				t.Fatalf("record %d corrupted: mmap (%+v, %v), reader (%+v, %v)", rec, ma, me, ra, re)
			}
			if me != nil {
				var fe *FormatError
				if !errors.As(me, &fe) || fe.Offset != start || fe.Record != uint64(rec) {
					t.Fatalf("record %d: error %v not anchored at record %d offset %d", rec, me, rec, start)
				}
				break
			}
		}
	}
}

// errorsEquivalent reports whether two decode results are the same
// failure: both nil, both io.EOF, or equivalent *FormatError values.
func errorsEquivalent(a, b error) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a == io.EOF || b == io.EOF {
		return a == io.EOF && b == io.EOF
	}
	return formatErrorsEquivalent(a, b)
}

func formatErrorsEquivalent(a, b error) bool {
	var fa, fb *FormatError
	if !errors.As(a, &fa) || !errors.As(b, &fb) {
		// Non-format errors (e.g. varint overflow) must at least agree
		// textually.
		return a.Error() == b.Error()
	}
	return fa.Offset == fb.Offset && fa.Record == fb.Record && fa.HaveRecord == fb.HaveRecord
}

// TestMmapReaderHugeDeclaredCount pins the int-overflow audit at the
// header level: a trace declaring 2^33 accesses (far past int32) must
// report its length undamaged and then fail with a format error — not
// a short silent EOF — when the records are missing.
func TestMmapReaderHugeDeclaredCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	put(4)
	buf.WriteString("huge")
	put(0)           // ops
	put(1 << 33)     // declared accesses
	buf.WriteByte(0) // one Read record, delta 0
	buf.Write(tmp[:binary.PutVarint(tmp[:], 16)])

	check := func(name string, r StreamReader) {
		if r.Len() != 1<<33 {
			t.Fatalf("%s: Len() = %d, want %d", name, r.Len(), uint64(1)<<33)
		}
		if _, err := r.Next(); err != nil {
			t.Fatalf("%s: first record: %v", name, err)
		}
		_, err := r.Next()
		if err == io.EOF || err == nil {
			t.Fatalf("%s: missing record %d gave %v, want a format error", name, 1, err)
		}
		if !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("%s: error %v does not wrap xerr.ErrFormat", name, err)
		}
	}
	mr, err := NewMmapReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	check("mmap", mr)
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	check("reader", rd)
}

func TestWriterMatchesEncodeByteForByte(t *testing.T) {
	for name, tr := range mmapTraces() {
		want := encode(t, tr)
		var got bytes.Buffer
		w, err := NewWriter(&got, tr.Name, tr.Ops, uint64(tr.Len()))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range tr.Accesses {
			if err := w.WriteAccess(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%s: streamed encoding differs from Encode (%d vs %d bytes)", name, got.Len(), len(want))
		}
	}
}

func TestWriterEnforcesDeclaredCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "short", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAccess(Access{Addr: 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted an underfilled writer")
	}
	if err := w.WriteAccess(Access{Addr: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAccess(Access{Addr: 12}); err == nil {
		t.Fatal("writer accepted more accesses than declared")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenMappedAndBufferedAgree exercises the production entry point
// end to end on a real file: both paths must hand back the same
// records, and the mapped path must report itself.
func TestOpenMappedAndBufferedAgree(t *testing.T) {
	tr := mmapTraces()["kinds"]
	path := filepath.Join(t.TempDir(), "t.xtr")
	data := encode(t, tr)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	read := func(preferMmap bool) (*Trace, bool) {
		src, err := Open(path, preferMmap)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		out := &Trace{}
		for {
			a, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out.Accesses = append(out.Accesses, a)
		}
		return out, src.Mapped
	}
	buffered, mapped := read(false)
	if mapped {
		t.Fatal("preferMmap=false reported a mapping")
	}
	viaMmap, mapped := read(true)
	if !mapped {
		t.Skip("mmap unavailable on this platform; fallback path already checked")
	}
	if len(buffered.Accesses) != len(viaMmap.Accesses) || len(buffered.Accesses) != tr.Len() {
		t.Fatalf("access counts: buffered %d, mmap %d, want %d", len(buffered.Accesses), len(viaMmap.Accesses), tr.Len())
	}
	for i := range buffered.Accesses {
		if buffered.Accesses[i] != viaMmap.Accesses[i] {
			t.Fatalf("access %d differs between paths", i)
		}
	}
}

// TestOpenFallsBackOnUnparsableHeader: a corrupt file must fail the
// same way through Open regardless of the preferMmap flag (the mapped
// path silently falls back and lets the buffered reader produce the
// canonical error).
func TestOpenFallsBackOnUnparsableHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.xtr")
	if err := os.WriteFile(path, []byte("NOPE...."), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, preferMmap := range []bool{false, true} {
		if _, err := Open(path, preferMmap); err == nil {
			t.Fatalf("preferMmap=%v: corrupt header accepted", preferMmap)
		} else if !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("preferMmap=%v: error %v does not wrap xerr.ErrFormat", preferMmap, err)
		}
	}
}

// FuzzMmapReader feeds arbitrary bytes to both decoders and requires
// identical behavior: header acceptance, every decoded access, and the
// classification and anchoring of the first failure.
func FuzzMmapReader(f *testing.F) {
	for _, tr := range mmapTraces() {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 4 {
			f.Add(buf.Bytes()[:buf.Len()/2])
		}
	}
	f.Add([]byte("XTR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		mr, merr := NewMmapReaderBytes(data)
		rd, rerr := NewReader(bytes.NewReader(data))
		if (merr == nil) != (rerr == nil) {
			t.Fatalf("header: mmap err %v, reader err %v", merr, rerr)
		}
		if merr != nil {
			if !formatErrorsEquivalent(merr, rerr) {
				t.Fatalf("header errors diverge: %v vs %v", merr, rerr)
			}
			return
		}
		if mr.Name() != rd.Name() || mr.Ops() != rd.Ops() || mr.Len() != rd.Len() {
			t.Fatalf("headers disagree: %q/%d/%d vs %q/%d/%d",
				mr.Name(), mr.Ops(), mr.Len(), rd.Name(), rd.Ops(), rd.Len())
		}
		for i := 0; i < 1<<16; i++ {
			ma, me := mr.Next()
			ra, re := rd.Next()
			if ma != ra || !errorsEquivalent(me, re) {
				t.Fatalf("access %d: mmap (%+v, %v), reader (%+v, %v)", i, ma, me, ra, re)
			}
			if me != nil {
				return
			}
		}
	})
}
