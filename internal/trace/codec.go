package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"xoridx/internal/xerr"
)

// Binary format:
//
//	magic "XTR1" (4 bytes)
//	name length (uvarint) + name bytes
//	ops (uvarint)
//	access count (uvarint)
//	per access: kind (1 byte), address delta (signed varint from the
//	previous address of the same kind)
//
// Delta coding against the previous same-kind address keeps sequential
// instruction fetches and strided data streams to ~2 bytes per access.

const magic = "XTR1"

// Encode serialises the trace in the binary format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(t.Ops); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Accesses))); err != nil {
		return err
	}
	var prev [3]uint64
	for _, a := range t.Accesses {
		if a.Kind > Fetch {
			return fmt.Errorf("trace: cannot encode kind %d: %w", a.Kind, xerr.ErrFormat)
		}
		if err := bw.WriteByte(byte(a.Kind)); err != nil {
			return err
		}
		delta := int64(a.Addr) - int64(prev[a.Kind])
		if err := putVarint(delta); err != nil {
			return err
		}
		prev[a.Kind] = a.Addr
	}
	return bw.Flush()
}

// Decode deserialises a trace written by Encode. It is the in-memory
// convenience form of the streaming Reader (see stream.go), which large
// traces should prefer.
func Decode(r io.Reader) (*Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return rd.ReadAll()
}

// EncodeText writes one "<kind> <hex addr>" line per access, preceded by
// header lines "# name <name>" and "# ops <n>". Intended for inspection
// and for interoperability with external tools.
func EncodeText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n# ops %d\n", t.Name, t.OpsOrLen()); err != nil {
		return err
	}
	for _, a := range t.Accesses {
		if _, err := fmt.Fprintf(bw, "%s %x\n", a.Kind, a.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeText parses the text format produced by EncodeText. Unknown "#"
// comment lines are ignored.
func DecodeText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && fields[1] == "name" {
				t.Name = fields[2]
			}
			if len(fields) >= 3 && fields[1] == "ops" {
				if _, err := fmt.Sscanf(fields[2], "%d", &t.Ops); err != nil {
					return nil, fmt.Errorf("trace: line %d: bad ops: %w: %w", lineNo, xerr.ErrFormat, err)
				}
			}
			continue
		}
		var kindStr string
		var addr uint64
		if _, err := fmt.Sscanf(line, "%s %x", &kindStr, &addr); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w: %w", lineNo, xerr.ErrFormat, err)
		}
		var kind Kind
		switch kindStr {
		case "R":
			kind = Read
		case "W":
			kind = Write
		case "F":
			kind = Fetch
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q: %w", lineNo, kindStr, xerr.ErrFormat)
		}
		t.Accesses = append(t.Accesses, Access{Addr: addr, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Dinero III/IV "din" format interoperability: one access per line,
// "<label> <hex address>", where label 0 = read, 1 = write, 2 =
// instruction fetch. The de-facto interchange format of the academic
// cache-simulation tooling the paper's era used.

// EncodeDinero writes the trace in din format.
func EncodeDinero(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, a := range t.Accesses {
		var label byte
		switch a.Kind {
		case Read:
			label = '0'
		case Write:
			label = '1'
		case Fetch:
			label = '2'
		default:
			return fmt.Errorf("trace: cannot encode kind %d as din: %w", a.Kind, xerr.ErrFormat)
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", label, a.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeDinero parses din format. Labels 0/1/2 map to Read/Write/Fetch;
// other labels (Dinero's 3 = escape, 4 = flush) are rejected. Ops is
// set to the access count (din carries no instruction counts).
func DecodeDinero(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	t := &Trace{Name: "din"}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var label int
		var addr uint64
		if _, err := fmt.Sscanf(line, "%d %x", &label, &addr); err != nil {
			return nil, fmt.Errorf("trace: din line %d: %w: %w", lineNo, xerr.ErrFormat, err)
		}
		var kind Kind
		switch label {
		case 0:
			kind = Read
		case 1:
			kind = Write
		case 2:
			kind = Fetch
		default:
			return nil, fmt.Errorf("trace: din line %d: unsupported label %d: %w", lineNo, label, xerr.ErrFormat)
		}
		t.Accesses = append(t.Accesses, Access{Addr: addr, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Ops = uint64(len(t.Accesses))
	return t, nil
}
