//go:build !linux && !darwin

package trace

import "os"

// mmapSupported reports whether this build has a real mmap path.
const mmapSupported = false

// mmapFile always fails on platforms without a wired-up mmap path;
// Open falls back to the buffered Reader.
func mmapFile(_ *os.File, _ int) ([]byte, error) {
	return nil, ErrMmapUnsupported
}

// munmapFile is unreachable when mmapFile never succeeds.
func munmapFile(_ []byte) error { return nil }
