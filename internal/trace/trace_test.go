package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := &Trace{Name: "sample", Ops: 1000}
	t.Append(0x1000, Read)
	t.Append(0x1004, Write)
	t.Append(0x8000, Fetch)
	t.Append(0x1008, Read)
	return t
}

func TestBlockExtraction(t *testing.T) {
	a := Access{Addr: 0x1237}
	if a.Block(4) != 0x48d {
		t.Errorf("Block(4) = %#x", a.Block(4))
	}
	if a.Block(32) != 0x91 {
		t.Errorf("Block(32) = %#x", a.Block(32))
	}
}

func TestBlockPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Access{Addr: 1}.Block(24)
}

func TestBlocksTruncation(t *testing.T) {
	tr := &Trace{}
	tr.Append(0xABCD_1234, Read)
	blocks := tr.Blocks(4, 16)
	// 0xABCD1234 >> 2 = 0x2AF3448D; truncated to 16 bits = 0x448D.
	if blocks[0] != 0x448D {
		t.Errorf("truncated block = %#x", blocks[0])
	}
}

func TestFilter(t *testing.T) {
	tr := sampleTrace()
	d := tr.Filter(Read, Write)
	if d.Len() != 3 {
		t.Fatalf("data accesses = %d", d.Len())
	}
	if d.Ops != tr.Ops {
		t.Error("Filter must preserve Ops")
	}
	f := tr.Filter(Fetch)
	if f.Len() != 1 || f.Accesses[0].Addr != 0x8000 {
		t.Fatal("fetch filter wrong")
	}
}

func TestComputeStats(t *testing.T) {
	tr := sampleTrace()
	s := tr.ComputeStats()
	if s.Accesses != 4 || s.Reads != 2 || s.Writes != 1 || s.Fetches != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.MinAddr != 0x1000 || s.MaxAddr != 0x8000 {
		t.Fatalf("addr range wrong: %+v", s)
	}
	if s.UniqueBlocks != 4 { // 0x400, 0x401, 0x402, 0x2000
		t.Fatalf("unique blocks = %d", s.UniqueBlocks)
	}
	if s.AccPerKOp != 4.0 {
		t.Fatalf("AccPerKOp = %v", s.AccPerKOp)
	}
	empty := (&Trace{}).ComputeStats()
	if empty.Accesses != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestOpsOrLen(t *testing.T) {
	tr := &Trace{}
	tr.Append(1, Read)
	tr.Append(2, Read)
	if tr.OpsOrLen() != 2 {
		t.Fatal("should default to access count")
	}
	tr.Ops = 50
	if tr.OpsOrLen() != 50 {
		t.Fatal("should use Ops when set")
	}
}

func randomTrace(rng *rand.Rand, n int) *Trace {
	tr := &Trace{Name: "rand", Ops: uint64(n * 3)}
	addr := uint64(0x10000)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr = rng.Uint64() & 0xFFFF_FFFF
		case 1:
			addr += 4
		case 2:
			addr += uint64(rng.Intn(256)) * 4
		case 3:
			if addr >= 1024 {
				addr -= uint64(rng.Intn(256)) * 4
			}
		}
		tr.Append(addr, Kind(rng.Intn(3)))
	}
	return tr
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 10, 5000} {
		tr := randomTrace(rng, n)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != tr.Name || got.Ops != tr.Ops || len(got.Accesses) != len(tr.Accesses) {
			t.Fatalf("header mismatch: %+v vs %+v", got, tr)
		}
		for i := range tr.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				t.Fatalf("access %d mismatch: %+v vs %+v", i, got.Accesses[i], tr.Accesses[i])
			}
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Sequential accesses should cost ~2 bytes each with delta coding.
	tr := &Trace{Name: "seq"}
	for i := 0; i < 10000; i++ {
		tr.Append(uint64(0x1000+4*i), Fetch)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perAcc := float64(buf.Len()) / 10000; perAcc > 2.5 {
		t.Errorf("sequential trace costs %.2f bytes/access, want <= 2.5", perAcc)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPE....."))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Decode(bytes.NewReader([]byte("XTR"))); err == nil {
		t.Error("truncated magic should fail")
	}
	// Valid magic, truncated body.
	if _, err := Decode(bytes.NewReader([]byte("XTR1"))); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Ops != tr.Ops {
		t.Fatalf("header mismatch: %q/%d", got.Name, got.Ops)
	}
	for i := range tr.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d mismatch", i)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := DecodeText(strings.NewReader("X 1234\n")); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := DecodeText(strings.NewReader("R zz\n")); err == nil {
		t.Error("bad address should fail")
	}
	// Comments and blank lines are fine.
	tr, err := DecodeText(strings.NewReader("# a comment\n\nR 10\n"))
	if err != nil || tr.Len() != 1 || tr.Accesses[0].Addr != 0x10 {
		t.Errorf("comment handling wrong: %v %+v", err, tr)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || Fetch.String() != "F" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind string wrong")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, kinds []byte, ops uint64) bool {
		tr := &Trace{Name: "q", Ops: ops}
		for i, a := range addrs {
			k := Read
			if i < len(kinds) {
				k = Kind(kinds[i] % 3)
			}
			tr.Append(a, k)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Ops != ops || len(got.Accesses) != len(tr.Accesses) {
			return false
		}
		for i := range tr.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := &Trace{Name: "a", Ops: 10}
	a.Append(1, Read)
	b := &Trace{Name: "b", Ops: 20}
	b.Append(2, Write)
	b.Append(3, Fetch)
	c := Concat("ab", a, b)
	if c.Name != "ab" || c.Len() != 3 || c.Ops != 30 {
		t.Fatalf("concat wrong: %+v", c)
	}
	if c.Accesses[0].Addr != 1 || c.Accesses[2].Addr != 3 {
		t.Fatal("order wrong")
	}
}

func TestInterleave(t *testing.T) {
	a := &Trace{Name: "a"}
	for i := 0; i < 5; i++ {
		a.Append(uint64(100+i), Read)
	}
	b := &Trace{Name: "b"}
	for i := 0; i < 3; i++ {
		b.Append(uint64(200+i), Read)
	}
	m, switches := Interleave("ab", 2, a, b)
	if m.Len() != 8 {
		t.Fatalf("merged length %d", m.Len())
	}
	// Expected: a0 a1 | b0 b1 | a2 a3 | b2 | a4
	want := []uint64{100, 101, 200, 201, 102, 103, 202, 104}
	for i, w := range want {
		if m.Accesses[i].Addr != w {
			t.Fatalf("access %d = %d, want %d (full: %v)", i, m.Accesses[i].Addr, w, m.Accesses)
		}
	}
	// Switches at indices 2, 4, 6, 7 (every trace change).
	wantSw := []int{2, 4, 6, 7}
	if len(switches) != len(wantSw) {
		t.Fatalf("switches = %v, want %v", switches, wantSw)
	}
	for i := range wantSw {
		if switches[i] != wantSw[i] {
			t.Fatalf("switches = %v, want %v", switches, wantSw)
		}
	}
	// Ops accumulate from OpsOrLen.
	if m.Ops != 8 {
		t.Fatalf("ops = %d", m.Ops)
	}
}

func TestInterleavePanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Interleave("x", 0, &Trace{})
}

func TestInterleaveSingleTraceNoSwitches(t *testing.T) {
	a := &Trace{}
	for i := 0; i < 7; i++ {
		a.Append(uint64(i), Read)
	}
	m, switches := Interleave("solo", 3, a)
	if m.Len() != 7 || len(switches) != 0 {
		t.Fatalf("solo interleave wrong: len=%d switches=%v", m.Len(), switches)
	}
}

func TestDineroRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := EncodeDinero(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want := "0 1000\n1 1004\n2 8000\n0 1008\n"
	if buf.String() != want {
		t.Fatalf("din encoding:\n%q\nwant\n%q", buf.String(), want)
	}
	got, err := DecodeDinero(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d mismatch", i)
		}
	}
	// Din has no ops metadata: defaults to access count.
	if got.Ops != uint64(tr.Len()) {
		t.Fatalf("ops = %d", got.Ops)
	}
}

func TestDineroErrors(t *testing.T) {
	if _, err := DecodeDinero(strings.NewReader("4 100\n")); err == nil {
		t.Error("flush label must be rejected")
	}
	if _, err := DecodeDinero(strings.NewReader("zero 100\n")); err == nil {
		t.Error("bad label must be rejected")
	}
	tr, err := DecodeDinero(strings.NewReader("\n0 ff\n\n"))
	if err != nil || tr.Len() != 1 || tr.Accesses[0].Addr != 0xFF {
		t.Errorf("blank line handling wrong: %v %+v", err, tr)
	}
}

func TestRebase(t *testing.T) {
	tr := sampleTrace()
	rb := tr.Rebase(0x1000)
	if rb.Ops != tr.Ops || rb.Len() != tr.Len() {
		t.Fatal("rebase changed shape")
	}
	for i := range tr.Accesses {
		if rb.Accesses[i].Addr != tr.Accesses[i].Addr+0x1000 {
			t.Fatalf("access %d not shifted", i)
		}
		if rb.Accesses[i].Kind != tr.Accesses[i].Kind {
			t.Fatalf("access %d kind changed", i)
		}
	}
	// Original untouched.
	if tr.Accesses[0].Addr != 0x1000 {
		t.Fatal("Rebase mutated the original")
	}
}
