package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"xoridx/internal/xerr"
)

func streamTrace() *Trace {
	t := &Trace{Name: "sample", Ops: 999}
	t.Append(0x1000, Read)
	t.Append(0x1004, Write)
	t.Append(0x80000, Fetch)
	t.Append(0x1008, Read)
	t.Append(1<<40, Read) // large delta
	t.Append(0x100C, Write)
	return t
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderHeader(t *testing.T) {
	tr := streamTrace()
	rd, err := NewReader(bytes.NewReader(encode(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Name() != "sample" || rd.Ops() != 999 || rd.Len() != 6 || rd.Pos() != 0 {
		t.Fatalf("header: name=%q ops=%d len=%d pos=%d", rd.Name(), rd.Ops(), rd.Len(), rd.Pos())
	}
}

func TestReaderNextMatchesDecode(t *testing.T) {
	tr := streamTrace()
	data := encode(t, tr)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range tr.Accesses {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("access %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after end: err = %v, want io.EOF", err)
	}
	// EOF is sticky.
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("repeated Next after end: err = %v, want io.EOF", err)
	}
}

func TestReaderReadBlocksChunked(t *testing.T) {
	tr := streamTrace()
	data := encode(t, tr)
	want := tr.Blocks(4, 16)
	for _, chunk := range []int{1, 2, 3, 5, 100} {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		buf := make([]uint64, chunk)
		for {
			k, err := rd.ReadBlocks(buf, 4, 16)
			got = append(got, buf[:k]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d blocks, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d block %d: %#x, want %#x", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestReaderResumesMidRecordByteStream(t *testing.T) {
	// A one-byte-at-a-time source forces the reader to resume decoding
	// in the middle of multi-byte varint records.
	tr := streamTrace()
	rd, err := NewReader(iotest.OneByteReader(bytes.NewReader(encode(t, tr))))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Accesses) != len(tr.Accesses) {
		t.Fatalf("%d accesses, want %d", len(out.Accesses), len(tr.Accesses))
	}
	for i := range tr.Accesses {
		if out.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestReaderTruncatedMidRecord(t *testing.T) {
	data := encode(t, streamTrace())
	for _, cut := range []int{1, 5} {
		rd, err := NewReader(bytes.NewReader(data[:len(data)-cut]))
		if err != nil {
			t.Fatalf("cut=%d: header should parse: %v", cut, err)
		}
		if _, err := rd.ReadAll(); err == nil {
			t.Fatalf("cut=%d: truncated trace decoded without error", cut)
		}
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderEmptyBuffer(t *testing.T) {
	rd, err := NewReader(bytes.NewReader(encode(t, streamTrace())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadBlocks(nil, 4, 16); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestDecodeIsReaderReadAll(t *testing.T) {
	data := encode(t, streamTrace())
	a, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.Ops != b.Ops || len(a.Accesses) != len(b.Accesses) {
		t.Fatal("Decode and Reader.ReadAll disagree")
	}
}

// --- resilience contract: typed format errors, offsets, transient resume ---

func TestTruncationReportsFormatErrorWithOffset(t *testing.T) {
	data := encode(t, streamTrace())
	for cut := 1; cut < 8; cut++ {
		rd, err := NewReader(bytes.NewReader(data[:len(data)-cut]))
		if err != nil {
			t.Fatalf("cut=%d: header should parse: %v", cut, err)
		}
		_, err = rd.ReadAll()
		if err == nil {
			t.Fatalf("cut=%d: truncated trace decoded without error", cut)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("cut=%d: error %v is not a *FormatError", cut, err)
		}
		if !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("cut=%d: error %v does not wrap xerr.ErrFormat", cut, err)
		}
		if !fe.HaveRecord {
			t.Fatalf("cut=%d: mid-record truncation not flagged as a record error: %v", cut, err)
		}
		if fe.Offset <= 0 || fe.Offset >= int64(len(data)) {
			t.Fatalf("cut=%d: implausible failure offset %d (stream is %d bytes)", cut, fe.Offset, len(data))
		}
	}
}

func TestHeaderTruncationReportsFormatError(t *testing.T) {
	data := encode(t, streamTrace())
	// Every prefix that ends inside the header must fail with a
	// FormatError (never succeed, never panic).
	for cut := 0; cut < 10 && cut < len(data); cut++ {
		_, err := NewReader(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("header prefix of %d bytes accepted", cut)
		}
		if !errors.Is(err, xerr.ErrFormat) {
			t.Fatalf("cut=%d: header error %v does not wrap xerr.ErrFormat", cut, err)
		}
	}
}

func TestInvalidKindRejectedWithOffset(t *testing.T) {
	data := encode(t, streamTrace())
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil { // consume one good record
		t.Fatal(err)
	}
	recordStart := rd.Offset()
	// Corrupt the second record's kind byte.
	mut := append([]byte(nil), data...)
	mut[recordStart] = 0x7F
	rd2, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd2.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = rd2.Next()
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("invalid kind error %v is not a *FormatError", err)
	}
	if fe.Offset != recordStart {
		t.Errorf("failure offset %d, want record start %d", fe.Offset, recordStart)
	}
	if fe.Record != 1 {
		t.Errorf("failure record %d, want 1", fe.Record)
	}
}

// flakyReader delivers clean bytes fault-free, then fails every other
// read attempt without consuming data — the shape of a transient EIO.
type flakyReader struct {
	r     io.Reader
	clean int64 // bytes delivered before faults start
	sent  int64
	fails int
	next  bool
}

func (f *flakyReader) Read(p []byte) (int, error) {
	if f.sent >= f.clean {
		f.next = !f.next
		if f.next {
			f.fails++
			return 0, fmt.Errorf("flaky: %w", xerr.ErrIO)
		}
	}
	n, err := f.r.Read(p)
	f.sent += int64(n)
	return n, err
}

// TestNextResumesAfterTransientError: a transient failure consumes
// nothing, so simply calling Next again must decode the full trace.
// One-byte underlying reads force the faults to land mid-record.
func TestNextResumesAfterTransientError(t *testing.T) {
	tr := streamTrace()
	data := encode(t, tr)
	headerLen := func() int64 { // bytes the header occupies
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return rd.Offset()
	}()
	fr := &flakyReader{r: iotest.OneByteReader(bytes.NewReader(data)), clean: headerLen}
	rd, err := NewReader(fr)
	if err != nil {
		t.Fatal(err)
	}
	var got []Access
	for {
		a, err := rd.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, xerr.ErrIO) {
			continue // retry the same record
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a)
	}
	if len(got) != len(tr.Accesses) {
		t.Fatalf("decoded %d accesses across transients, want %d", len(got), len(tr.Accesses))
	}
	for i := range got {
		if got[i] != tr.Accesses[i] {
			t.Fatalf("access %d differs after transient retries", i)
		}
	}
	if fr.fails == 0 {
		t.Fatal("flaky reader never fired")
	}
}

func TestOffsetTracksConsumedBytes(t *testing.T) {
	data := encode(t, streamTrace())
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	last := rd.Offset()
	if last <= 0 {
		t.Fatalf("header consumed %d bytes", last)
	}
	for {
		_, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rd.Offset() <= last {
			t.Fatalf("offset did not advance past %d", last)
		}
		last = rd.Offset()
	}
	if last != int64(len(data)) {
		t.Errorf("final offset %d, want stream length %d", last, len(data))
	}
}
