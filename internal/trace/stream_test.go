package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

func streamTrace() *Trace {
	t := &Trace{Name: "sample", Ops: 999}
	t.Append(0x1000, Read)
	t.Append(0x1004, Write)
	t.Append(0x80000, Fetch)
	t.Append(0x1008, Read)
	t.Append(1<<40, Read) // large delta
	t.Append(0x100C, Write)
	return t
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderHeader(t *testing.T) {
	tr := streamTrace()
	rd, err := NewReader(bytes.NewReader(encode(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Name() != "sample" || rd.Ops() != 999 || rd.Len() != 6 || rd.Pos() != 0 {
		t.Fatalf("header: name=%q ops=%d len=%d pos=%d", rd.Name(), rd.Ops(), rd.Len(), rd.Pos())
	}
}

func TestReaderNextMatchesDecode(t *testing.T) {
	tr := streamTrace()
	data := encode(t, tr)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range tr.Accesses {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("access %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after end: err = %v, want io.EOF", err)
	}
	// EOF is sticky.
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("repeated Next after end: err = %v, want io.EOF", err)
	}
}

func TestReaderReadBlocksChunked(t *testing.T) {
	tr := streamTrace()
	data := encode(t, tr)
	want := tr.Blocks(4, 16)
	for _, chunk := range []int{1, 2, 3, 5, 100} {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		buf := make([]uint64, chunk)
		for {
			k, err := rd.ReadBlocks(buf, 4, 16)
			got = append(got, buf[:k]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d blocks, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d block %d: %#x, want %#x", chunk, i, got[i], want[i])
			}
		}
	}
}

func TestReaderResumesMidRecordByteStream(t *testing.T) {
	// A one-byte-at-a-time source forces the reader to resume decoding
	// in the middle of multi-byte varint records.
	tr := streamTrace()
	rd, err := NewReader(iotest.OneByteReader(bytes.NewReader(encode(t, tr))))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Accesses) != len(tr.Accesses) {
		t.Fatalf("%d accesses, want %d", len(out.Accesses), len(tr.Accesses))
	}
	for i := range tr.Accesses {
		if out.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestReaderTruncatedMidRecord(t *testing.T) {
	data := encode(t, streamTrace())
	for _, cut := range []int{1, 5} {
		rd, err := NewReader(bytes.NewReader(data[:len(data)-cut]))
		if err != nil {
			t.Fatalf("cut=%d: header should parse: %v", cut, err)
		}
		if _, err := rd.ReadAll(); err == nil {
			t.Fatalf("cut=%d: truncated trace decoded without error", cut)
		}
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderEmptyBuffer(t *testing.T) {
	rd, err := NewReader(bytes.NewReader(encode(t, streamTrace())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadBlocks(nil, 4, 16); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestDecodeIsReaderReadAll(t *testing.T) {
	data := encode(t, streamTrace())
	a, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.Ops != b.Ops || len(a.Accesses) != len(b.Accesses) {
		t.Fatal("Decode and Reader.ReadAll disagree")
	}
}
