package trace

import (
	"fmt"

	"xoridx/internal/xerr"
)

// FormatError reports corrupt or truncated binary trace input. It
// wraps xerr.ErrFormat (match with errors.Is) and carries the exact
// position of the failure, so an operator — or a recovery tool — can
// tell a file truncated at record 1 044 (salvage the prefix) from one
// whose header never parsed (discard it).
type FormatError struct {
	// Offset is the byte offset into the encoded stream where the
	// failed structure starts (for record errors, the record's first
	// byte).
	Offset int64
	// Record is the index of the access record being decoded, and
	// HaveRecord distinguishes record-level failures from header-level
	// ones (where Record is meaningless).
	Record     uint64
	HaveRecord bool
	// What names the structure that failed to decode.
	What string
	// Err is the underlying cause, if any (e.g. io.ErrUnexpectedEOF).
	Err error
}

// Error implements error.
func (e *FormatError) Error() string {
	where := fmt.Sprintf("header %s at byte offset %d", e.What, e.Offset)
	if e.HaveRecord {
		where = fmt.Sprintf("access %d %s at byte offset %d", e.Record, e.What, e.Offset)
	}
	if e.Err != nil {
		return fmt.Sprintf("trace: %s: %v: %v", where, xerr.ErrFormat, e.Err)
	}
	return fmt.Sprintf("trace: %s: %v", where, xerr.ErrFormat)
}

// Unwrap exposes both the format classification and the underlying
// cause to errors.Is/As.
func (e *FormatError) Unwrap() []error {
	if e.Err == nil {
		return []error{xerr.ErrFormat}
	}
	return []error{xerr.ErrFormat, e.Err}
}
