//go:build linux || darwin

package trace

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build has a real mmap path.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping is page-aligned
// by construction (mmap returns whole pages); madvise(SEQUENTIAL) is
// best-effort — the profiling pass is one forward sweep, so the kernel
// can read ahead aggressively and drop pages behind the cursor.
func mmapFile(f *os.File, size int) ([]byte, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	return data, nil
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
