package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the binary decoder with arbitrary input: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same trace (a full round-trip fixed point).
func FuzzDecode(f *testing.F) {
	// Seeds: a valid trace, truncations of it, and junk.
	valid := &Trace{Name: "seed", Ops: 7}
	valid.Append(0x100, Read)
	valid.Append(0x104, Write)
	valid.Append(0x8000, Fetch)
	var buf bytes.Buffer
	if err := Encode(&buf, valid); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte("XTR1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := Encode(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr2.Name != tr.Name || tr2.Ops != tr.Ops || len(tr2.Accesses) != len(tr.Accesses) {
			t.Fatal("round trip changed the trace header")
		}
		for i := range tr.Accesses {
			if tr.Accesses[i] != tr2.Accesses[i] {
				t.Fatalf("round trip changed access %d", i)
			}
		}
	})
}

// FuzzDecodeText does the same for the text format.
func FuzzDecodeText(f *testing.F) {
	f.Add("# name x\n# ops 5\nR 10\nW 14\nF 8000\n")
	f.Add("R zz\n")
	f.Add("# ops -1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := DecodeText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeText(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeText(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded text failed to decode: %v", err)
		}
		if len(tr2.Accesses) != len(tr.Accesses) {
			t.Fatal("round trip changed the access count")
		}
	})
}
