package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"
)

// FuzzDecode exercises the binary decoder with arbitrary input: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same trace (a full round-trip fixed point).
func FuzzDecode(f *testing.F) {
	// Seeds: a valid trace, truncations of it, and junk.
	valid := &Trace{Name: "seed", Ops: 7}
	valid.Append(0x100, Read)
	valid.Append(0x104, Write)
	valid.Append(0x8000, Fetch)
	var buf bytes.Buffer
	if err := Encode(&buf, valid); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte("XTR1"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	// Truncations inside a record: multi-byte varint deltas cut short,
	// so a chunked reader must fail cleanly when resumption mid-record
	// runs out of bytes. wide's deltas span up to 9 bytes.
	wide := &Trace{Name: "wide", Ops: 3}
	wide.Append(0, Read)
	wide.Append(1<<62, Read)
	wide.Append(5, Write)
	var wbuf bytes.Buffer
	if err := Encode(&wbuf, wide); err != nil {
		f.Fatal(err)
	}
	wfull := wbuf.Bytes()
	f.Add(wfull)
	f.Add(wfull[:len(wfull)-1]) // last delta truncated mid-varint
	f.Add(wfull[:len(wfull)-5]) // mid-record cut inside the big delta
	f.Add(wfull[:len(wfull)-10])

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := Encode(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr2.Name != tr.Name || tr2.Ops != tr.Ops || len(tr2.Accesses) != len(tr.Accesses) {
			t.Fatal("round trip changed the trace header")
		}
		for i := range tr.Accesses {
			if tr.Accesses[i] != tr2.Accesses[i] {
				t.Fatalf("round trip changed access %d", i)
			}
		}
	})
}

// FuzzReaderChunked holds the streaming Reader to the Decode standard
// on arbitrary bytes: both must accept the same inputs, and on
// acceptance the Reader — driven with a fuzzer-chosen block-buffer size
// over a one-byte-at-a-time underlying stream, so it resumes mid-record
// constantly — must yield exactly the blocks Trace.Blocks computes from
// the decoded trace.
func FuzzReaderChunked(f *testing.F) {
	valid := &Trace{Name: "chunk", Ops: 11}
	valid.Append(0x1000, Read)
	valid.Append(0x1004, Write)
	valid.Append(1<<40, Fetch) // large delta: multi-byte varint records
	valid.Append(0x1008, Read)
	var buf bytes.Buffer
	if err := Encode(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), uint8(1))
	f.Add(buf.Bytes(), uint8(3))
	f.Add(buf.Bytes()[:buf.Len()-2], uint8(2))
	f.Add([]byte("XTR1"), uint8(7))

	f.Fuzz(func(t *testing.T, data []byte, chunkRaw uint8) {
		want, wantErr := Decode(bytes.NewReader(data))
		rd, err := NewReader(iotest.OneByteReader(bytes.NewReader(data)))
		if err != nil {
			if wantErr == nil {
				t.Fatalf("Decode accepted what NewReader rejected: %v", err)
			}
			return
		}
		chunk := 1 + int(chunkRaw)%16
		var got []uint64
		var readErr error
		bufBlocks := make([]uint64, chunk)
		for {
			k, err := rd.ReadBlocks(bufBlocks, 4, 16)
			got = append(got, bufBlocks[:k]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				break
			}
		}
		if (readErr == nil) != (wantErr == nil) {
			t.Fatalf("Reader err = %v, Decode err = %v", readErr, wantErr)
		}
		if wantErr != nil {
			return
		}
		wantBlocks := want.Blocks(4, 16)
		if len(got) != len(wantBlocks) {
			t.Fatalf("Reader yielded %d blocks, Decode %d", len(got), len(wantBlocks))
		}
		for i := range got {
			if got[i] != wantBlocks[i] {
				t.Fatalf("block %d: reader %#x, decode %#x", i, got[i], wantBlocks[i])
			}
		}
		if rd.Name() != want.Name || rd.Ops() != want.Ops || rd.Len() != uint64(len(want.Accesses)) {
			t.Fatal("reader header disagrees with decoded trace")
		}
	})
}

// FuzzDecodeText does the same for the text format.
func FuzzDecodeText(f *testing.F) {
	f.Add("# name x\n# ops 5\nR 10\nW 14\nF 8000\n")
	f.Add("R zz\n")
	f.Add("# ops -1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := DecodeText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeText(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeText(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded text failed to decode: %v", err)
		}
		if len(tr2.Accesses) != len(tr.Accesses) {
			t.Fatal("round trip changed the access count")
		}
	})
}
