package trace

import (
	"errors"
	"fmt"
	"io"
	"os"

	"encoding/binary"

	"xoridx/internal/gf2"
)

// MmapReader decodes the binary trace format straight out of a byte
// slice — in production a read-only memory mapping of the trace file
// (see Open), in tests and fuzzing any in-memory buffer. It mirrors
// Reader's API and error contract exactly, which is what the
// differential matrix in mmap_test.go pins:
//
//   - Corrupt or truncated input returns a *FormatError wrapping
//     xerr.ErrFormat with the byte offset of the failure.
//   - Record decoding is atomic: a failed Next consumes nothing.
//   - After the last declared record Next returns io.EOF.
//
// Unlike the buffered Reader there is no underlying io.Reader, so no
// transient-error class exists: every failure is either io.EOF or a
// *FormatError. The kernel pages the mapping in on demand, so decoding
// performs zero read syscalls and zero buffer copies — ReadBlocks
// writes block addresses straight from the mapped pages into the
// caller's chunk, which is how profile.BuildStream shards directly
// over the mapping (DESIGN.md §17).
//
// An MmapReader must not be shared between goroutines. Close releases
// the mapping (a no-op for NewMmapReaderBytes); no method may be
// called after Close.
type MmapReader struct {
	data  []byte
	pos   int // byte offset of the next undecoded record
	name  string
	ops   uint64
	count uint64 // total accesses declared in the header
	read  uint64 // accesses decoded so far
	prev  [3]uint64
	unmap func() error
}

// ErrMmapUnsupported reports that this platform has no mmap support
// compiled in; Open falls back to the buffered Reader when it sees it.
var ErrMmapUnsupported = errors.New("trace: mmap is not supported on this platform")

// NewMmapReaderBytes parses the header of an encoded trace held in a
// byte slice and returns a reader positioned at the first access
// record. The slice is aliased, not copied; the caller must keep it
// immutable and alive for the reader's lifetime.
func NewMmapReaderBytes(data []byte) (*MmapReader, error) {
	r := &MmapReader{data: data}
	if err := r.parseHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *MmapReader) parseHeader() error {
	if len(r.data) < len(magic) {
		return &FormatError{Offset: 0, What: "magic", Err: io.ErrUnexpectedEOF}
	}
	if string(r.data[:len(magic)]) != magic {
		return &FormatError{Offset: 0, What: fmt.Sprintf("magic %q", r.data[:len(magic)])}
	}
	r.pos = len(magic)
	nameLen, err := r.headerUvarint("name length")
	if err != nil {
		return err
	}
	if nameLen > 1<<20 {
		return &FormatError{Offset: int64(r.pos), What: fmt.Sprintf("unreasonable name length %d", nameLen)}
	}
	if uint64(len(r.data)-r.pos) < nameLen {
		return &FormatError{Offset: int64(r.pos), What: "name", Err: io.ErrUnexpectedEOF}
	}
	r.name = string(r.data[r.pos : r.pos+int(nameLen)])
	r.pos += int(nameLen)
	if r.ops, err = r.headerUvarint("ops"); err != nil {
		return err
	}
	if r.count, err = r.headerUvarint("access count"); err != nil {
		return err
	}
	return nil
}

// headerUvarint decodes one header varint with Reader's classification:
// truncation is a FormatError, a varint overflowing 64 bits surfaces as
// a plain error exactly like binary.ReadUvarint's does through
// Reader.readUvarint.
func (r *MmapReader) headerUvarint(what string) (uint64, error) {
	v, k := binary.Uvarint(r.data[r.pos:])
	if k > 0 {
		r.pos += k
		return v, nil
	}
	if k == 0 && len(r.data)-r.pos < binary.MaxVarintLen64 {
		return 0, &FormatError{Offset: int64(r.pos), What: what, Err: io.ErrUnexpectedEOF}
	}
	// k < 0, or a full MaxVarintLen64 window of continuation bytes that
	// ended the buffer: binary.ReadUvarint consumes all ten bytes before
	// noticing either way, so both classify as overflow.
	return 0, fmt.Errorf("trace: reading %s at byte offset %d: %w", what, r.pos, errUvarintOverflow)
}

// errUvarintOverflow mirrors binary.ReadUvarint's overflow error text.
var errUvarintOverflow = errors.New("binary: varint overflows a 64-bit integer")

// Name returns the trace name from the header.
func (r *MmapReader) Name() string { return r.name }

// Ops returns the operation count from the header.
func (r *MmapReader) Ops() uint64 { return r.ops }

// Len returns the total number of accesses declared in the header.
func (r *MmapReader) Len() uint64 { return r.count }

// Pos returns the number of accesses decoded so far.
func (r *MmapReader) Pos() uint64 { return r.read }

// Offset returns the byte offset into the encoded stream consumed so
// far (header included).
func (r *MmapReader) Offset() int64 { return int64(r.pos) }

// Next decodes the next access; see Reader.Next for the contract.
func (r *MmapReader) Next() (Access, error) {
	if r.read >= r.count {
		return Access{}, io.EOF
	}
	if r.pos >= len(r.data) {
		return Access{}, &FormatError{Offset: int64(r.pos), Record: r.read, HaveRecord: true,
			What: "kind", Err: io.ErrUnexpectedEOF}
	}
	kb := r.data[r.pos]
	if Kind(kb) > Fetch {
		return Access{}, &FormatError{Offset: int64(r.pos), Record: r.read, HaveRecord: true,
			What: fmt.Sprintf("invalid kind %d", kb)}
	}
	// Bound the varint window to what Reader's Peek would see, so the
	// two decoders classify overlong varints identically.
	rest := r.data[r.pos+1:]
	if len(rest) > maxRecordLen-1 {
		rest = rest[:maxRecordLen-1]
	}
	delta, k := binary.Varint(rest)
	if k < 0 {
		return Access{}, &FormatError{Offset: int64(r.pos), Record: r.read, HaveRecord: true,
			What: "delta varint overflow"}
	}
	if k == 0 {
		return Access{}, &FormatError{Offset: int64(r.pos), Record: r.read, HaveRecord: true,
			What: "delta", Err: io.ErrUnexpectedEOF}
	}
	r.pos += 1 + k
	addr := uint64(int64(r.prev[kb]) + delta)
	r.prev[kb] = addr
	r.read++
	return Access{Addr: addr, Kind: Kind(kb)}, nil
}

// ReadBlocks fills dst with the next block addresses truncated to n
// bits; see Reader.ReadBlocks for the contract.
func (r *MmapReader) ReadBlocks(dst []uint64, blockBytes, n int) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("trace: ReadBlocks needs a non-empty buffer")
	}
	mask := uint64(gf2.Mask(n))
	shift := uint(log2(blockBytes))
	for i := range dst {
		a, err := r.Next()
		if err == io.EOF {
			if i == 0 {
				return 0, io.EOF
			}
			return i, nil
		}
		if err != nil {
			return i, err
		}
		dst[i] = a.Addr >> shift & mask
	}
	return len(dst), nil
}

// BlockSource adapts the reader to the chunked pull shape the sharded
// profile builders consume; see Reader.BlockSource.
func (r *MmapReader) BlockSource(blockBytes, n int) func(dst []uint64) (int, error) {
	return func(dst []uint64) (int, error) {
		return r.ReadBlocks(dst, blockBytes, n)
	}
}

// ReadAll decodes every remaining access into an in-memory Trace.
func (r *MmapReader) ReadAll() (*Trace, error) {
	t := &Trace{Name: r.name, Ops: r.ops}
	if remaining := r.count - r.read; remaining < 1<<24 {
		t.Accesses = make([]Access, 0, remaining)
	}
	for {
		a, err := r.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Accesses = append(t.Accesses, a)
	}
}

// Close releases the memory mapping, if any. Safe to call more than
// once; no other method may be used afterwards.
func (r *MmapReader) Close() error {
	unmap := r.unmap
	r.unmap = nil
	r.data = nil
	if unmap != nil {
		return unmap()
	}
	return nil
}

// StreamReader is the common streaming surface of the buffered Reader
// and the mmap-backed MmapReader: everything the profiling pipeline
// needs to consume a trace without materializing it.
type StreamReader interface {
	Name() string
	Ops() uint64
	Len() uint64
	Pos() uint64
	Offset() int64
	Next() (Access, error)
	ReadBlocks(dst []uint64, blockBytes, n int) (int, error)
	BlockSource(blockBytes, n int) func(dst []uint64) (int, error)
}

// Source is an open trace file behind the StreamReader interface,
// bundling the decoder with whatever resource backs it (a memory
// mapping or an open file). Mapped reports which path Open took.
type Source struct {
	StreamReader
	Mapped bool
	close  func() error
}

// Close releases the mapping or the file handle.
func (s *Source) Close() error {
	if s.close == nil {
		return nil
	}
	c := s.close
	s.close = nil
	return c()
}

// Open opens a binary trace file for streaming. With preferMmap set it
// maps the file read-only (advising the kernel of the sequential scan)
// and decodes in place with zero copies; when the platform has no mmap
// support, the file is empty, or the mapping fails for any other
// reason, it degrades gracefully to the buffered Reader on a plain
// file handle — same records, same error contract, just through the
// page cache's read path instead of the mapping.
func Open(path string, preferMmap bool) (*Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if preferMmap {
		if src, ok := tryMmap(f); ok {
			f.Close() // the mapping outlives the descriptor
			return src, nil
		}
	}
	rd, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Source{StreamReader: rd, close: f.Close}, nil
}

// tryMmap attempts the mapped path; ok is false when the caller should
// fall back to the buffered Reader — unsupported platform, unmappable
// or empty file, or an unparsable header (the buffered path reproduces
// the exact *FormatError, so the fallback loses nothing).
func tryMmap(f *os.File) (*Source, bool) {
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || int64(int(fi.Size())) != fi.Size() {
		return nil, false
	}
	data, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, false
	}
	r, err := NewMmapReaderBytes(data)
	if err != nil {
		munmapFile(data)
		return nil, false
	}
	r.unmap = func() error { return munmapFile(data) }
	return &Source{StreamReader: r, Mapped: true, close: r.Close}, true
}
