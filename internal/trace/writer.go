package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"xoridx/internal/xerr"
)

// Writer streams accesses into the binary format one record at a time —
// the encode-side mirror of Reader, for producers whose traces do not
// fit in memory (cmd/tracegen -stream). The header is written eagerly
// by NewWriter, which is why the access count must be declared up
// front: the XTR1 header carries it before the first record. Close
// verifies the declaration and flushes; a Writer must not be shared
// between goroutines.
//
// Memory is bounded by the bufio buffer regardless of trace length, so
// a multi-GB trace streams to disk without ever materializing a Trace.
type Writer struct {
	bw       *bufio.Writer
	declared uint64
	written  uint64
	prev     [3]uint64
	buf      [binary.MaxVarintLen64]byte
}

// NewWriter writes the XTR1 header and returns a streaming encoder
// positioned at the first access record. count is the exact number of
// accesses the caller will write; Close fails if the tally differs.
func NewWriter(w io.Writer, name string, ops, count uint64) (*Writer, error) {
	tw := &Writer{bw: bufio.NewWriterSize(w, 1<<20), declared: count}
	if _, err := tw.bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := tw.putUvarint(uint64(len(name))); err != nil {
		return nil, err
	}
	if _, err := tw.bw.WriteString(name); err != nil {
		return nil, err
	}
	if err := tw.putUvarint(ops); err != nil {
		return nil, err
	}
	if err := tw.putUvarint(count); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// WriteAccess appends one access record (kind byte plus the signed
// varint delta against the previous same-kind address — the exact
// layout Encode produces).
func (w *Writer) WriteAccess(a Access) error {
	if w.written >= w.declared {
		return fmt.Errorf("trace: writer declared %d accesses, got more: %w", w.declared, xerr.ErrInvalidOptions)
	}
	if a.Kind > Fetch {
		return fmt.Errorf("trace: cannot encode kind %d: %w", a.Kind, xerr.ErrFormat)
	}
	if err := w.bw.WriteByte(byte(a.Kind)); err != nil {
		return err
	}
	delta := int64(a.Addr) - int64(w.prev[a.Kind])
	if err := w.putVarint(delta); err != nil {
		return err
	}
	w.prev[a.Kind] = a.Addr
	w.written++
	return nil
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// Written returns how many accesses have been encoded so far.
func (w *Writer) Written() uint64 { return w.written }

// Close flushes the stream after verifying that exactly the declared
// number of accesses was written — a mismatched count would make the
// trace undecodable past the shortfall.
func (w *Writer) Close() error {
	if w.written != w.declared {
		return fmt.Errorf("trace: writer declared %d accesses, wrote %d: %w",
			w.declared, w.written, xerr.ErrInvalidOptions)
	}
	return w.bw.Flush()
}
