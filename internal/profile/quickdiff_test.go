package profile

// Property-based differential tests: three structured trace generators
// (strided, tiled, random) cross-check the sequential Build, the
// sharded BuildParallel/BuildStream, and the naive oracle on arbitrary
// inputs, including block addresses at and beyond the 2^n mask edge and
// degenerate empty / single-access traces.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// stridedTrace walks arrays with power-of-two strides — the paper's
// canonical conflict generator (FFT/matrix rows hitting one set).
type stridedTrace struct{ Blocks []uint64 }

func (stridedTrace) Generate(r *rand.Rand, size int) reflect.Value {
	blocks := make([]uint64, 0, 400)
	for len(blocks) < 400 {
		stride := uint64(1) << uint(r.Intn(10))
		base := r.Uint64() & 0xFFFF
		count := uint64(4 + r.Intn(28))
		for rep := 0; rep < 1+r.Intn(3); rep++ {
			for i := uint64(0); i < count; i++ {
				blocks = append(blocks, base+i*stride)
			}
		}
	}
	return reflect.ValueOf(stridedTrace{Blocks: blocks[:400]})
}

// tiledTrace models blocked (tiled) loop nests: repeated sweeps over a
// small tile, then a jump to the next tile — a reuse pattern with sharp
// capacity cliffs.
type tiledTrace struct{ Blocks []uint64 }

func (tiledTrace) Generate(r *rand.Rand, size int) reflect.Value {
	blocks := make([]uint64, 0, 400)
	tile := uint64(4 + r.Intn(60))
	for len(blocks) < 400 {
		base := r.Uint64() & 0x3FFFF // beyond 2^16: exercises the mask
		sweeps := 1 + r.Intn(4)
		for s := 0; s < sweeps; s++ {
			for i := uint64(0); i < tile; i++ {
				blocks = append(blocks, base+i)
			}
		}
	}
	return reflect.ValueOf(tiledTrace{Blocks: blocks[:400]})
}

// randomTrace is unstructured noise over a space wider than any n used
// in the checks, so truncation (blocks >= 2^n) is the common case.
type randomTrace struct{ Blocks []uint64 }

func (randomTrace) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(500) // may be zero: the empty trace is a valid input
	blocks := make([]uint64, n)
	for i := range blocks {
		blocks[i] = r.Uint64()
	}
	return reflect.ValueOf(randomTrace{Blocks: blocks})
}

var quickDiffCfg = &quick.Config{MaxCount: 40}

// checkAllBuilders asserts every implementation agrees bit for bit on
// one trace, for an n small enough that many blocks exceed 2^n.
func checkAllBuilders(t *testing.T, blocks []uint64) bool {
	t.Helper()
	for _, n := range []int{4, 9} {
		for _, cacheBlocks := range []int{2, 16, 128} {
			want := oracleBuild(blocks, n, cacheBlocks)
			if d := diffProfiles(Build(blocks, n, cacheBlocks), want); d != "" {
				t.Logf("n=%d cap=%d: Build vs oracle: %s", n, cacheBlocks, d)
				return false
			}
			gotPar, err := BuildParallel(blocks, n, cacheBlocks, 5)
			if err != nil {
				t.Logf("n=%d cap=%d: BuildParallel: %v", n, cacheBlocks, err)
				return false
			}
			if d := diffProfiles(gotPar, want); d != "" {
				t.Logf("n=%d cap=%d: BuildParallel vs oracle: %s", n, cacheBlocks, d)
				return false
			}
			got, err := BuildStream(sliceSource(blocks), n, cacheBlocks,
				ParallelOptions{Workers: 3, ChunkSize: 33})
			if err != nil {
				t.Logf("n=%d cap=%d: BuildStream: %v", n, cacheBlocks, err)
				return false
			}
			if d := diffProfiles(got, want); d != "" {
				t.Logf("n=%d cap=%d: BuildStream vs oracle: %s", n, cacheBlocks, d)
				return false
			}
		}
	}
	return true
}

func TestQuickDifferentialStrided(t *testing.T) {
	f := func(tr stridedTrace) bool { return checkAllBuilders(t, tr.Blocks) }
	if err := quick.Check(f, quickDiffCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferentialTiled(t *testing.T) {
	f := func(tr tiledTrace) bool { return checkAllBuilders(t, tr.Blocks) }
	if err := quick.Check(f, quickDiffCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferentialRandom(t *testing.T) {
	f := func(tr randomTrace) bool { return checkAllBuilders(t, tr.Blocks) }
	if err := quick.Check(f, quickDiffCfg); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentialDegenerateTraces(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{1 << 40},           // single access far beyond the mask
		{7, 7, 7, 7},        // one block, repeated
		{15, 31, 15, 31},    // masked collision at n=4: 31&0xF == 15
		{0, 16, 32, 48, 64}, // all alias to 0 at n=4
	}
	for _, blocks := range cases {
		if !checkAllBuilders(t, blocks) {
			t.Fatalf("builders disagree on %v", blocks)
		}
	}
}
