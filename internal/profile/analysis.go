package profile

import (
	"fmt"
	"sort"
	"strings"

	"xoridx/internal/lru"
)

// Conflict analysis: the profile's histogram says WHICH conflict
// vectors are hot; this pass says WHERE they come from, attributing
// each hot vector to the concrete block pairs that generated it. That
// turns the profile into an actionable diagnosis — the software-side
// alternative to reconfigurable hardware is padding one of the two
// implicated data structures.

// PairCount is one conflicting block pair with its event count.
type PairCount struct {
	BlockA, BlockB uint64 // block addresses, BlockA < BlockB
	Vector         uint64 // BlockA ^ BlockB (truncated to n bits)
	Count          uint64
}

// Analysis is the result of AnalyzeConflicts.
type Analysis struct {
	Profile  *Profile
	HotPairs []PairCount // descending by count
}

// AnalyzeConflicts profiles the block stream (exactly like Build) and
// additionally records the top conflicting block pairs whose XOR falls
// among the topVectors hottest conflict vectors. Memory is bounded by
// the number of distinct hot pairs, which the hot-vector filter keeps
// small.
func AnalyzeConflicts(blocks []uint64, n, cacheBlocks, topVectors, topPairs int) *Analysis {
	p := Build(blocks, n, cacheBlocks)
	hot := p.HotVectors(topVectors)
	hotSet := make(map[uint64]bool, len(hot))
	for _, vc := range hot {
		hotSet[uint64(vc.Vec)] = true
	}
	// Second pass: same distance-gated walk as Build, but counting
	// pairs for hot vectors. The Olken gate classifies each access
	// before the stack is touched, so capacity misses contribute
	// nothing and — unlike the old walk-then-undo scheme — cost no
	// stack traversal at all.
	pairs := make(map[[2]uint64]uint64)
	mask := p.maskValue()
	stack := lru.NewStack()
	tree := lru.NewDistanceTree()
	for _, raw := range blocks {
		b := raw & mask
		switch tree.TouchGate(b, cacheBlocks) {
		case lru.GateCold:
			stack.Push(b)
			continue
		case lru.GateWithin:
			target, _ := stack.Index(b)
			nodes, top := stack.Raw()
			for i := top; i != target; i = nodes[i].Next {
				y := nodes[i].Block
				if hotSet[b^y] {
					key := [2]uint64{b, y}
					if key[0] > key[1] {
						key[0], key[1] = key[1], key[0]
					}
					pairs[key]++
				}
			}
		}
		stack.MoveToTop(b)
	}
	out := &Analysis{Profile: p}
	for k, c := range pairs {
		out.HotPairs = append(out.HotPairs, PairCount{
			BlockA: k[0], BlockB: k[1], Vector: k[0] ^ k[1], Count: c,
		})
	}
	sort.Slice(out.HotPairs, func(i, j int) bool {
		if out.HotPairs[i].Count != out.HotPairs[j].Count {
			return out.HotPairs[i].Count > out.HotPairs[j].Count
		}
		if out.HotPairs[i].BlockA != out.HotPairs[j].BlockA {
			return out.HotPairs[i].BlockA < out.HotPairs[j].BlockA
		}
		return out.HotPairs[i].BlockB < out.HotPairs[j].BlockB
	})
	if len(out.HotPairs) > topPairs {
		out.HotPairs = out.HotPairs[:topPairs]
	}
	return out
}

// maskValue exposes the n-bit mask for the analysis pass.
func (p *Profile) maskValue() uint64 {
	return uint64(1)<<uint(p.N) - 1
}

// Report renders a human-readable diagnosis: the hottest conflict
// vectors and the concrete block pairs behind them, with byte
// addresses for the given block size.
func (a *Analysis) Report(blockBytes int) string {
	var sb strings.Builder
	p := a.Profile
	fmt.Fprintf(&sb, "profiled %d accesses: %d compulsory, %d capacity-filtered, %d conflict candidates\n",
		p.Accesses, p.Compulsory, p.Capacity, p.Candidates)
	fmt.Fprintf(&sb, "hottest conflict vectors (block-address XOR):\n")
	for _, vc := range p.HotVectors(8) {
		fmt.Fprintf(&sb, "  %s  x%d\n", vc.Vec.StringN(p.N), vc.Count)
	}
	if len(a.HotPairs) > 0 {
		fmt.Fprintf(&sb, "hottest conflicting address pairs (block size %d B):\n", blockBytes)
		for _, pc := range a.HotPairs {
			fmt.Fprintf(&sb, "  %#08x <-> %#08x  (vector %#x)  x%d\n",
				pc.BlockA*uint64(blockBytes), pc.BlockB*uint64(blockBytes), pc.Vector, pc.Count)
		}
		fmt.Fprintf(&sb, "fix in software: pad/realign one structure of each pair; ")
		fmt.Fprintf(&sb, "fix in hardware: a XOR function whose null space excludes these vectors.\n")
	}
	return sb.String()
}
