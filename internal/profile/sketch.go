package profile

// Count-min-sketch histogram backend (DESIGN.md §17). For n well past
// 32 bits a long trace can touch more distinct conflict vectors than a
// sparse map can afford to hold (the support is bounded by
// accesses × cacheBlocks, which at billions of accesses is itself
// billions). The sketch bounds histogram memory to depth × width
// counters regardless of support size, at the cost of bounded
// overestimation:
//
//	At(v) >= true(v)                                     always
//	At(v) <= true(v) + (e/width)·TotalPairs    with prob >= 1 − e^−depth
//
// per point query — the classic (ε, δ) count-min bound with
// ε = e/width and δ = e^−depth, and conservative update keeps actual
// error well under it (sketch_test.go cross-checks against the exact
// sparse backend). Keys are conflict vectors, i.e. null-space coset
// representatives: EstimateDelta's Gray-walk over span(w) ⊕ rep is a
// sequence of point queries, so the incremental search engine works
// unchanged on a sketch profile.
//
// Support enumeration — what the engine's per-hyperplane sweep and
// estimateSupport consume — cannot be read back out of a sketch, so the
// backend tracks the TopK heaviest vectors exactly (a min-heap over
// sketch estimates, the standard CM-heap construction). Heavy hitters
// are precisely the vectors that decide a climb; the untracked tail is
// visible to point queries but not to support sweeps, making
// support-based estimates lower bounds on the sketch's own counts.
// Sharded builds merge sketches entrywise (same seeds row-for-row), so
// every per-row counter remains an upper bound of the true count after
// the merge; conservative update makes the merged counters
// order-dependent, so unlike flat/sparse builds a sharded sketch build
// is not bit-identical to a sequential one — only bound-identical.

import (
	"fmt"
	"math"
	"sort"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// Sketch parameter defaults: 4 rows × 64 Ki counters = 2 MiB of
// histogram regardless of support size, ε ≈ 4.1e-5, δ ≈ 1.8%.
const (
	DefaultSketchWidth = 1 << 16
	DefaultSketchDepth = 4
	DefaultSketchTopK  = 1 << 12
)

// SketchOptions parameterises the count-min backend. Zero fields
// select the defaults above.
type SketchOptions struct {
	// Width is the number of counters per row; must be a power of two
	// (the row hash masks, it does not mod). ε = e/Width.
	Width int
	// Depth is the number of rows; δ = e^−Depth.
	Depth int
	// TopK is how many heavy hitters are tracked exactly for support
	// enumeration.
	TopK int
	// Seed derives the per-row hash functions; sketches merge only
	// when built from the same seed.
	Seed uint64
}

func (o SketchOptions) withDefaults() SketchOptions {
	if o.Width == 0 {
		o.Width = DefaultSketchWidth
	}
	if o.Depth == 0 {
		o.Depth = DefaultSketchDepth
	}
	if o.TopK == 0 {
		o.TopK = DefaultSketchTopK
	}
	return o
}

// Validate checks the options domain, returning a wrapped
// xerr.ErrInvalidOptions when out of range.
func (o SketchOptions) Validate() error {
	o = o.withDefaults()
	if o.Width < 2 || o.Width&(o.Width-1) != 0 {
		return fmt.Errorf("profile: sketch width %d not a power of two >= 2: %w", o.Width, xerr.ErrInvalidOptions)
	}
	if o.Depth < 1 || o.Depth > 16 {
		return fmt.Errorf("profile: sketch depth %d outside [1, 16]: %w", o.Depth, xerr.ErrInvalidOptions)
	}
	if o.TopK < 1 {
		return fmt.Errorf("profile: sketch TopK %d must be positive: %w", o.TopK, xerr.ErrInvalidOptions)
	}
	return nil
}

// Sketch is a conservative-update count-min sketch over conflict
// vectors plus an exact heavy-hitter set for support enumeration.
type Sketch struct {
	Width int
	Depth int
	Seed  uint64
	Rows  [][]uint64
	Total uint64 // total increments absorbed (the profile's TotalPairs)

	topK int
	hh   hhHeap
}

// NewSketch allocates an empty sketch. Options must be valid (see
// SketchOptions.Validate); the constructor panics otherwise, matching
// NewBuilder's convention.
func NewSketch(opt SketchOptions) *Sketch {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	opt = opt.withDefaults()
	s := &Sketch{Width: opt.Width, Depth: opt.Depth, Seed: opt.Seed, topK: opt.TopK}
	s.Rows = make([][]uint64, opt.Depth)
	for d := range s.Rows {
		s.Rows[d] = make([]uint64, opt.Width)
	}
	s.hh.pos = make(map[uint64]int, opt.TopK)
	return s
}

// rowHash maps a vector into row d. SplitMix64 over v mixed with a
// per-row tweak of the seed gives independent-enough row hashes without
// any dependency.
func (s *Sketch) rowHash(v uint64, d int) uint64 {
	return splitmix64((v^s.Seed)+uint64(d)*0x9e3779b97f4a7c15) & uint64(s.Width-1)
}

// Inc adds one occurrence of v with conservative update: only the rows
// currently at the minimum estimate grow, which never breaks the
// overestimate invariant and tightens the bound in practice.
func (s *Sketch) Inc(v uint64) {
	min := ^uint64(0)
	for d := range s.Rows {
		if c := s.Rows[d][s.rowHash(v, d)]; c < min {
			min = c
		}
	}
	est := min + 1
	for d := range s.Rows {
		if h := s.rowHash(v, d); s.Rows[d][h] < est {
			s.Rows[d][h] = est
		}
	}
	s.Total++
	s.offer(v, est)
}

// At returns the sketch estimate for v: the minimum over rows, an
// upper bound on the true count.
func (s *Sketch) At(v uint64) uint64 {
	min := ^uint64(0)
	for d := range s.Rows {
		if c := s.Rows[d][s.rowHash(v, d)]; c < min {
			min = c
		}
	}
	return min
}

// ErrorBound returns the (ε, δ) guarantee of this geometry: a point
// query overestimates by more than ε·Total with probability at most δ.
func (s *Sketch) ErrorBound() (eps, delta float64) {
	return math.E / float64(s.Width), math.Exp(-float64(s.Depth))
}

// Slack returns the additive point-query error bound ε·Total in
// counts, rounded up.
func (s *Sketch) Slack() uint64 {
	eps, _ := s.ErrorBound()
	return uint64(math.Ceil(eps * float64(s.Total)))
}

// Bytes returns the histogram memory of the sketch: the counter rows
// plus the heavy-hitter heap (entry + index map, ~48 bytes per tracked
// vector).
func (s *Sketch) Bytes() int {
	return s.Depth*s.Width*8 + len(s.hh.entries)*48
}

// HeavyHitters returns the tracked vectors with their sketch
// estimates, unsorted. The slice is freshly allocated.
func (s *Sketch) HeavyHitters() []VectorCount {
	out := make([]VectorCount, len(s.hh.entries))
	for i, e := range s.hh.entries {
		out[i] = VectorCount{Vec: gf2.Vec(e.vec), Count: e.est}
	}
	return out
}

// Merge folds another sketch into s entrywise. Both must share
// geometry and seed (same row hashes), or the counters would not line
// up; the heavy-hitter sets are unioned and re-estimated against the
// merged counters.
func (s *Sketch) Merge(o *Sketch) error {
	if s.Width != o.Width || s.Depth != o.Depth || s.Seed != o.Seed {
		return fmt.Errorf("profile: sketch geometries differ (%dx%d seed %d vs %dx%d seed %d): %w",
			s.Depth, s.Width, s.Seed, o.Depth, o.Width, o.Seed, xerr.ErrProfileMismatch)
	}
	for d := range s.Rows {
		row, orow := s.Rows[d], o.Rows[d]
		for i := range row {
			row[i] += orow[i]
		}
	}
	s.Total += o.Total
	// Re-offer both heavy-hitter sets at their merged estimates: the
	// union's true top-K all appear in one of the halves' top-K sets
	// whenever their per-half estimates were tracked.
	merged := append(s.hh.drain(), o.hh.entries...)
	for _, e := range merged {
		s.offer(e.vec, s.At(e.vec))
	}
	return nil
}

// offer proposes v at estimate est for heavy-hitter tracking.
func (s *Sketch) offer(v uint64, est uint64) {
	s.hh.offer(v, est, s.topK)
}

// clone deep-copies the sketch.
func (s *Sketch) clone() *Sketch {
	c := &Sketch{Width: s.Width, Depth: s.Depth, Seed: s.Seed, Total: s.Total, topK: s.topK}
	c.Rows = make([][]uint64, len(s.Rows))
	for d := range s.Rows {
		c.Rows[d] = append([]uint64(nil), s.Rows[d]...)
	}
	c.hh.entries = append([]hhEntry(nil), s.hh.entries...)
	c.hh.pos = make(map[uint64]int, len(s.hh.pos))
	for v, i := range s.hh.pos {
		c.hh.pos[v] = i
	}
	return c
}

// hhEntry is one tracked heavy hitter.
type hhEntry struct {
	vec uint64
	est uint64
}

// hhHeap is a min-heap over sketch estimates with an index map, so an
// already-tracked vector updates in place and the smallest tracked
// vector is evicted in O(log K) when a heavier one arrives.
type hhHeap struct {
	entries []hhEntry
	pos     map[uint64]int
}

// offer inserts or updates v at estimate est, keeping at most k
// entries and always the k heaviest seen so far (by current estimate).
func (h *hhHeap) offer(v, est uint64, k int) {
	if i, ok := h.pos[v]; ok {
		// Estimates only grow, so an update can only sift down (away
		// from the root of a min-heap).
		h.entries[i].est = est
		h.down(i)
		return
	}
	if len(h.entries) < k {
		h.entries = append(h.entries, hhEntry{vec: v, est: est})
		h.pos[v] = len(h.entries) - 1
		h.up(len(h.entries) - 1)
		return
	}
	if est <= h.entries[0].est {
		return
	}
	delete(h.pos, h.entries[0].vec)
	h.entries[0] = hhEntry{vec: v, est: est}
	h.pos[v] = 0
	h.down(0)
}

// drain empties the heap and returns its former entries.
func (h *hhHeap) drain() []hhEntry {
	out := h.entries
	h.entries = nil
	clear(h.pos)
	return out
}

func (h *hhHeap) less(i, j int) bool {
	if h.entries[i].est != h.entries[j].est {
		return h.entries[i].est < h.entries[j].est
	}
	return h.entries[i].vec < h.entries[j].vec
}

func (h *hhHeap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].vec] = i
	h.pos[h.entries[j].vec] = j
}

func (h *hhHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *hhHeap) down(i int) {
	n := len(h.entries)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		small := left
		if right := left + 1; right < n && h.less(right, left) {
			small = right
		}
		if !h.less(small, i) {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// NewSketchBuilder starts a profile on the count-min backend. Unlike
// NewBuilder it returns errors (the options carry more domain than a
// geometry pair).
func NewSketchBuilder(n, cacheBlocks int, opt SketchOptions) (*Builder, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return newSketchBuilder(n, cacheBlocks, opt), nil
}

func newSketchBuilder(n, cacheBlocks int, opt SketchOptions) *Builder {
	b := newBuilder(n, cacheBlocks, true)
	b.p.Sparse = nil
	b.p.Sketch = NewSketch(opt)
	return b
}

// sketchSupport returns the heavy hitters in ascending vector order —
// the sketch's stand-in for exact support enumeration.
func (s *Sketch) support() []VectorCount {
	out := s.HeavyHitters()
	sort.Slice(out, func(i, j int) bool { return out[i].Vec < out[j].Vec })
	return out
}
