package profile

// Tests for sampled profiling (sample.go): classification exactness,
// the error-vs-bound sweep over k required by DESIGN.md §17, stream
// and windowed integration, and the checkpoint restrictions.

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"xoridx/internal/xerr"
)

// sampledSweepK is the sampling-factor sweep exercised throughout.
var sampledSweepK = []uint64{4, 16, 64}

// conflictHeavyBlocks generates a trace dominated by conflict
// candidates: strided walks congruent mod cacheBlocks=64 in a 16-bit
// block space, so most reuses pass the distance gate with nonzero
// conflict vectors.
func conflictHeavyBlocks(rng *rand.Rand, length int) []uint64 {
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		set := 24 + rng.Intn(32) // below cacheBlocks, so reuses are candidates
		base := uint64(rng.Intn(1 << 16))
		for rep := 0; rep < 3 && len(blocks) < length; rep++ {
			for i := 0; i < set && len(blocks) < length; i++ {
				blocks = append(blocks, (base+uint64(i)*64)&(1<<16-1))
			}
		}
	}
	return blocks
}

// TestSampledClassificationMatchesExact pins the core invariant of
// sample.go: sampling only thins the histogram walks — every
// classification counter is bit-identical to the exact pass, and the
// number of walked candidates follows the deterministic phase formula.
func TestSampledClassificationMatchesExact(t *testing.T) {
	blocks := conflictHeavyBlocks(rand.New(rand.NewSource(61)), 20_000)
	exact := Build(blocks, 16, 64)
	if exact.Candidates == 0 {
		t.Fatal("generator produced no conflict candidates")
	}
	for _, k := range sampledSweepK {
		const seed = 9
		p := BuildSampled(blocks, 16, 64, SampleOptions{K: k, Seed: seed})
		if p.Accesses != exact.Accesses || p.Compulsory != exact.Compulsory ||
			p.Capacity != exact.Capacity || p.Candidates != exact.Candidates {
			t.Fatalf("k=%d: classification differs from exact: %+v vs %+v", k,
				[4]uint64{p.Accesses, p.Compulsory, p.Capacity, p.Candidates},
				[4]uint64{exact.Accesses, exact.Compulsory, exact.Capacity, exact.Candidates})
		}
		if p.SampleK != k || p.SampleSeed != seed {
			t.Fatalf("k=%d: sampling parameters not recorded: K=%d Seed=%d", k, p.SampleK, p.SampleSeed)
		}
		phase := splitmix64(seed)%k + 1
		var want uint64
		if p.Candidates >= phase {
			want = (p.Candidates-phase)/k + 1
		}
		if p.SampledCandidates != want {
			t.Fatalf("k=%d: walked %d candidates, want %d (phase %d of %d)",
				k, p.SampledCandidates, want, phase, p.Candidates)
		}
		if p.TotalPairs > exact.TotalPairs {
			t.Fatalf("k=%d: sampled TotalPairs %d exceeds exact %d", k, p.TotalPairs, exact.TotalPairs)
		}
	}
	// Exact profiles report exact confidence.
	c := exact.ConfidenceFor(exact.EstimateConventional(6))
	if c.K != 1 || c.Margin != 0 || c.Level != 1 || c.Estimate != c.Raw {
		t.Fatalf("exact confidence malformed: %+v", c)
	}
}

// TestSampledErrorWithinBound is the error-vs-bound sweep: for each k
// the scaled Eq. 4 estimate must land within its own reported margin
// of the exact count, across several conventional geometries.
func TestSampledErrorWithinBound(t *testing.T) {
	blocks := conflictHeavyBlocks(rand.New(rand.NewSource(62)), 30_000)
	exact := Build(blocks, 16, 64)
	for _, k := range sampledSweepK {
		p := BuildSampled(blocks, 16, 64, SampleOptions{K: k, Seed: 7})
		for _, m := range []int{4, 6, 8} {
			want := exact.EstimateConventional(m)
			conf := p.ConfidenceFor(p.EstimateConventional(m))
			if conf.K != k || conf.Level != 0.95 {
				t.Fatalf("k=%d m=%d: confidence metadata %+v", k, m, conf)
			}
			if conf.Estimate != conf.Raw*k {
				t.Fatalf("k=%d m=%d: estimate %d is not raw %d scaled", k, m, conf.Estimate, conf.Raw)
			}
			diff := int64(conf.Estimate) - int64(want)
			if diff < 0 {
				diff = -diff
			}
			if uint64(diff) > conf.Margin {
				t.Errorf("k=%d m=%d: |%d - %d| = %d exceeds margin %d (%s)",
					k, m, conf.Estimate, want, diff, conf.Margin, conf)
			}
		}
	}
}

// TestSampledDeterministic: the same (trace, k, seed) triple always
// produces the same profile, bit for bit.
func TestSampledDeterministic(t *testing.T) {
	blocks := conflictHeavyBlocks(rand.New(rand.NewSource(63)), 10_000)
	opt := SampleOptions{K: 16, Seed: 1234}
	a := BuildSampled(blocks, 16, 64, opt)
	b := BuildSampled(blocks, 16, 64, opt)
	if d := diffProfiles(a, b); d != "" {
		t.Fatal(d)
	}
	// A different seed shifts the phase but not the classification.
	c := BuildSampled(blocks, 16, 64, SampleOptions{K: 16, Seed: 99})
	if c.Candidates != a.Candidates || c.Accesses != a.Accesses {
		t.Fatal("seed changed classification counters")
	}
}

// TestBuildStreamSampledMatchesSequential: the stream engine must
// route sampled builds through the sequential path (cold shards cannot
// know global candidate ordinals), yielding a profile bit-identical to
// BuildSampled no matter how many workers were requested.
func TestBuildStreamSampledMatchesSequential(t *testing.T) {
	blocks := conflictHeavyBlocks(rand.New(rand.NewSource(64)), 8_000)
	opt := SampleOptions{K: 16, Seed: 5}
	want := BuildSampled(blocks, 16, 64, opt)
	pos := 0
	src := func(dst []uint64) (int, error) {
		if pos >= len(blocks) {
			return 0, io.EOF
		}
		k := copy(dst, blocks[pos:])
		pos += k
		return k, nil
	}
	got, err := BuildStream(src, 16, 64, ParallelOptions{Workers: 4, ChunkSize: 999, Sample: opt})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffProfiles(got, want); d != "" {
		t.Fatal(d)
	}
}

// TestSampledBuilderCheckpointRejected: a mid-pass checkpoint cannot
// carry the sampling gate across restarts faithfully, so the builder
// must refuse rather than silently resample a different subset.
func TestSampledBuilderCheckpointRejected(t *testing.T) {
	bd := NewSampledBuilder(16, 64, SampleOptions{K: 8})
	bd.Add(0x40)
	if err := bd.Checkpoint(io.Discard); !errors.Is(err, xerr.ErrInvalidOptions) {
		t.Fatalf("sampled Checkpoint returned %v, want ErrInvalidOptions", err)
	}
}

// TestSampledWindowedCheckpointRoundTrip: a sampled Windowed profile
// checkpointed mid-stream and restored must continue exactly as the
// uninterrupted one — including the sampling phase, which the restore
// path recomputes from the persisted candidate ordinal.
func TestSampledWindowedCheckpointRoundTrip(t *testing.T) {
	blocks := conflictHeavyBlocks(rand.New(rand.NewSource(65)), 12_000)
	opt := SampleOptions{K: 16, Seed: 77}
	mk := func() *Windowed {
		w, err := NewSampledWindowed(16, 64, 0.5, opt)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	ref := mk()
	ckpt := mk()
	half := len(blocks) / 2
	for _, b := range blocks[:half] {
		ref.Add(b)
		ckpt.Add(b)
	}
	ref.Rotate()
	ckpt.Rotate()
	var buf bytes.Buffer
	if err := ckpt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreWindowed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Sampling() != opt {
		t.Fatalf("restored sampling %+v, want %+v", restored.Sampling(), opt)
	}
	for _, b := range blocks[half:] {
		ref.Add(b)
		restored.Add(b)
	}
	if d := diffProfiles(restored.Snapshot(), ref.Snapshot()); d != "" {
		t.Fatalf("window after restore: %s", d)
	}
	if d := diffProfiles(restored.Aggregate(), ref.Aggregate()); d != "" {
		t.Fatalf("aggregate after restore: %s", d)
	}
}

// TestSampledMergeCompatibility: merging profiles with different
// sampling scales or seeds must be refused — the combined histogram
// would have no single scale factor.
func TestSampledMergeCompatibility(t *testing.T) {
	blocks := conflictHeavyBlocks(rand.New(rand.NewSource(66)), 4_000)
	a := BuildSampled(blocks, 16, 64, SampleOptions{K: 16, Seed: 1})
	if err := a.Merge(Build(blocks, 16, 64)); !errors.Is(err, xerr.ErrProfileMismatch) {
		t.Fatalf("merging exact into sampled returned %v", err)
	}
	if err := a.Merge(BuildSampled(blocks, 16, 64, SampleOptions{K: 16, Seed: 2})); !errors.Is(err, xerr.ErrProfileMismatch) {
		t.Fatalf("merging different seeds returned %v", err)
	}
	if err := a.Merge(BuildSampled(blocks, 16, 64, SampleOptions{K: 16, Seed: 1})); err != nil {
		t.Fatalf("merging compatible sampled profiles: %v", err)
	}
}

// TestConfidenceString pins the rendering the CLI and serve status
// pages rely on.
func TestConfidenceString(t *testing.T) {
	exact := Confidence{Estimate: 42, Raw: 42, K: 1, Level: 1}
	if got := exact.String(); got != "42 (exact)" {
		t.Fatalf("exact rendering: %q", got)
	}
	sampled := Confidence{Estimate: 1600, Raw: 100, K: 16, Margin: 314, Level: 0.95}
	if got := sampled.String(); got != "1600 ± 314 (95% CI, k=16)" {
		t.Fatalf("sampled rendering: %q", got)
	}
}
