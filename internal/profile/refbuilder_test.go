package profile

// The pre-overhaul Fig. 1 builder, kept verbatim as a test-only
// reference: a heap-allocated doubly-linked LRU stack, a bounded
// counting walk on every re-reference, and a full rollback re-walk when
// the walk fails to reach the block within the capacity filter. The
// differential tests below run it in lockstep with the production
// builder (arena stack + Olken distance gate + backend-specialized
// accumulation) and require bit-identical classification and histogram
// on randomized traces — the proof that the hot-path overhaul changed
// the cost of the pass, not its meaning.

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

type refNode struct {
	block      uint64
	prev, next *refNode
}

type refStack struct {
	byBlock map[uint64]*refNode
	top     *refNode
}

func newRefStack() *refStack { return &refStack{byBlock: make(map[uint64]*refNode)} }

func (s *refStack) contains(b uint64) bool { _, ok := s.byBlock[b]; return ok }

func (s *refStack) push(b uint64) {
	n := &refNode{block: b, next: s.top}
	if s.top != nil {
		s.top.prev = n
	}
	s.top = n
	s.byBlock[b] = n
}

func (s *refStack) moveToTop(b uint64) {
	n := s.byBlock[b]
	if s.top == n {
		return
	}
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.prev = nil
	n.next = s.top
	s.top.prev = n
	s.top = n
}

func (s *refStack) walkAbove(b uint64, limit int, fn func(y uint64)) (reached bool) {
	target := s.byBlock[b]
	visited := 0
	for n := s.top; n != nil; n = n.next {
		if n == target {
			return true
		}
		if visited >= limit {
			return false
		}
		fn(n.block)
		visited++
	}
	panic("refStack: target not reachable")
}

// refBuild is the old Build: walk-with-increments, then a rollback
// re-walk on every capacity miss.
func refBuild(blocks []uint64, n, cacheBlocks int, sparse bool) *Profile {
	p := &Profile{N: n, CacheBlocks: cacheBlocks}
	if sparse {
		p.Sparse = make(map[uint64]uint64)
	} else {
		p.Table = make([]uint64, 1<<uint(n))
	}
	inc := func(v uint64) {
		if p.Table != nil {
			p.Table[v]++
		} else {
			p.Sparse[v]++
		}
	}
	dec := func(v uint64) {
		if p.Table != nil {
			p.Table[v]--
		} else if c := p.Sparse[v]; c <= 1 {
			delete(p.Sparse, v)
		} else {
			p.Sparse[v] = c - 1
		}
	}
	mask := uint64(1)<<uint(n) - 1
	stack := newRefStack()
	for _, raw := range blocks {
		b := raw & mask
		p.Accesses++
		if !stack.contains(b) {
			p.Compulsory++
			stack.push(b)
			continue
		}
		reached := stack.walkAbove(b, cacheBlocks, func(y uint64) {
			inc(b ^ y)
			p.TotalPairs++
		})
		if reached {
			p.Candidates++
		} else {
			p.Capacity++
			stack.walkAbove(b, cacheBlocks, func(y uint64) {
				dec(b ^ y)
				p.TotalPairs--
			})
		}
		stack.moveToTop(b)
	}
	return p
}

// diffTrace draws one randomized trace with enough structure to hit
// all three classifications: strided aliasing runs, tight loops and
// uniform noise over a universe larger than the capacity filter.
func diffTrace(rng *rand.Rand) []uint64 {
	length := 50 + rng.Intn(1500)
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		switch rng.Intn(3) {
		case 0:
			stride := uint64(1) << uint(1+rng.Intn(6))
			base := uint64(rng.Intn(1 << 12))
			for i := uint64(0); i < uint64(4+rng.Intn(28)); i++ {
				blocks = append(blocks, base+i*stride)
			}
		case 1:
			set := 2 + rng.Intn(40)
			base := uint64(rng.Intn(1 << 12))
			for rep := 0; rep < 3; rep++ {
				for i := 0; i < set; i++ {
					blocks = append(blocks, base+uint64(i))
				}
			}
		default:
			for i := 0; i < 16; i++ {
				blocks = append(blocks, uint64(rng.Intn(1<<14)))
			}
		}
	}
	return blocks[:length]
}

// TestBuildDifferentialVsReference runs 1000 randomized trials of the
// production builder against the pre-overhaul reference, alternating
// flat and sparse backends, and requires identical classification
// counters and an identical histogram every time.
func TestBuildDifferentialVsReference(t *testing.T) {
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(40000 + trial)))
		n := 8 + rng.Intn(5)            // 8..12
		cacheBlocks := 1 + rng.Intn(96) // 1..96
		sparse := trial%2 == 1          // alternate backends
		blocks := diffTrace(rng)
		var got *Profile
		if sparse {
			got = NewSparseBuilder(n, cacheBlocks).finishBlocks(blocks)
		} else {
			got = Build(blocks, n, cacheBlocks)
		}
		want := refBuild(blocks, n, cacheBlocks, sparse)
		if d := diffProfiles(got, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d sparse=%v len=%d): %s",
				trial, n, cacheBlocks, sparse, len(blocks), d)
		}
	}
}

// finishBlocks feeds a whole trace through a builder — a test shorthand.
func (bd *Builder) finishBlocks(blocks []uint64) *Profile {
	for _, b := range blocks {
		bd.Add(b)
	}
	return bd.Finish()
}

// TestWalkCountProbe pins the overhaul's cost contract via the builder's
// hot-path probes: every conflict candidate walks exactly once, every
// visited stack entry contributes exactly one histogram increment (so a
// rollback re-walk is structurally impossible, not just avoided), and
// every capacity miss is resolved by the distance gate without touching
// the stack.
func TestWalkCountProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(5)
		cacheBlocks := 1 + rng.Intn(48)
		blocks := diffTrace(rng)
		bd := NewBuilder(n, cacheBlocks)
		p := bd.finishBlocks(blocks)
		st := bd.Stats()
		if st.CandidateWalks != p.Candidates {
			t.Fatalf("trial %d: %d walks for %d candidates", trial, st.CandidateWalks, p.Candidates)
		}
		if st.WalkSteps != p.TotalPairs {
			t.Fatalf("trial %d: %d walk steps for %d pairs — some visit did not become exactly one increment",
				trial, st.WalkSteps, p.TotalPairs)
		}
		if st.GatedCapacityMisses != p.Capacity {
			t.Fatalf("trial %d: gate resolved %d of %d capacity misses", trial, st.GatedCapacityMisses, p.Capacity)
		}
	}
}

// TestCheckpointRoundTripsArenaStack cuts a trace at an arbitrary
// point, round-trips the builder through the checkpoint codec, and
// requires the restored arena stack to list the same blocks in the
// same recency order and the continued run to match an uninterrupted
// one bit for bit — the profile-side half of the arena round-trip
// contract (lru's FuzzStackRoundTrip is the other half).
func TestCheckpointRoundTripsArenaStack(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(4)
		cacheBlocks := 1 + rng.Intn(32)
		blocks := diffTrace(rng)
		cut := rng.Intn(len(blocks) + 1)
		ref := NewBuilder(n, cacheBlocks)
		bd := NewBuilder(n, cacheBlocks)
		for _, b := range blocks[:cut] {
			ref.Add(b)
			bd.Add(b)
		}
		var buf bytes.Buffer
		if err := bd.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		gotStack, wantStack := restored.stack.Blocks(), ref.stack.Blocks()
		if len(gotStack) != len(wantStack) {
			t.Fatalf("trial %d: restored stack holds %d blocks, want %d", trial, len(gotStack), len(wantStack))
		}
		for i := range wantStack {
			if gotStack[i] != wantStack[i] {
				t.Fatalf("trial %d: stack order diverges at %d: %#x vs %#x", trial, i, gotStack[i], wantStack[i])
			}
		}
		for _, b := range blocks[cut:] {
			ref.Add(b)
			restored.Add(b)
		}
		if d := diffProfiles(restored.Finish(), ref.Finish()); d != "" {
			t.Fatalf("trial %d (cut %d/%d): resumed run diverges: %s", trial, cut, len(blocks), d)
		}
	}
}

// FuzzBuilderCheckpointResume is the fuzz form of the arena/checkpoint
// round trip: the fuzzer picks the trace and the cut point, and the
// restored builder must finish the trace bit-identically to an
// uninterrupted one.
func FuzzBuilderCheckpointResume(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 0, 2, 0, 1, 0, 3, 0, 2, 0}, uint16(2))
	var stride []byte
	for i := 0; i < 48; i++ {
		stride = append(stride, byte(i*8), byte(i>>5))
	}
	f.Add(stride, uint16(20))

	f.Fuzz(func(t *testing.T, data []byte, cutRaw uint16) {
		const n, cacheBlocks = 10, 16
		blocks := make([]uint64, 0, len(data)/2)
		for i := 0; i+1 < len(data) && len(blocks) < 2048; i += 2 {
			blocks = append(blocks, uint64(binary.LittleEndian.Uint16(data[i:])))
		}
		cut := 0
		if len(blocks) > 0 {
			cut = int(cutRaw) % (len(blocks) + 1)
		}
		ref := NewBuilder(n, cacheBlocks)
		bd := NewBuilder(n, cacheBlocks)
		for _, b := range blocks[:cut] {
			ref.Add(b)
			bd.Add(b)
		}
		var buf bytes.Buffer
		if err := bd.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip of a live builder rejected: %v", err)
		}
		for _, b := range blocks[cut:] {
			ref.Add(b)
			restored.Add(b)
		}
		if d := diffProfiles(restored.Finish(), ref.Finish()); d != "" {
			t.Fatalf("cut %d/%d: %s", cut, len(blocks), d)
		}
	})
}
