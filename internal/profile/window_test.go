package profile

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"xoridx/internal/xerr"
)

// windowedTrace draws a stream that exercises all three access
// classifications: a hot set for conflicts, occasional wide sweeps for
// capacity misses, and a growing tail of fresh blocks for compulsory
// misses.
func windowedTrace(rng *rand.Rand, length, n int) []uint64 {
	mask := uint64(1)<<uint(n) - 1
	blocks := make([]uint64, length)
	next := uint64(1000)
	for i := range blocks {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			blocks[i] = uint64(rng.Intn(32)) & mask
		case 5, 6, 7:
			blocks[i] = uint64(rng.Intn(512)) & mask
		default:
			blocks[i] = next & mask
			next++
		}
	}
	return blocks
}

// newWindowedBackend builds a Windowed on the requested backend,
// failing the test on constructor errors.
func newWindowedBackend(t *testing.T, n, cacheBlocks int, decay float64, sparse bool) *Windowed {
	t.Helper()
	var (
		w   *Windowed
		err error
	)
	if sparse {
		w, err = NewSparseWindowed(n, cacheBlocks, decay)
	} else {
		w, err = NewWindowed(n, cacheBlocks, decay)
	}
	if err != nil {
		t.Fatalf("NewWindowed: %v", err)
	}
	return w
}

// buildBackend runs the batch reference on the matching backend.
func buildBackend(blocks []uint64, n, cacheBlocks int, sparse bool) *Profile {
	var bd *Builder
	if sparse {
		bd = NewSparseBuilder(n, cacheBlocks)
	} else {
		bd = NewBuilder(n, cacheBlocks)
	}
	for _, b := range blocks {
		bd.Add(b)
	}
	return bd.Finish()
}

// TestWindowedDecayZeroSingleWindow is the tentpole equivalence in its
// simplest form: one window, decay 0 — Snapshot before rotation and
// Aggregate after one rotation must both be bit-identical to batch
// Build, on both histogram backends, across randomized trials.
func TestWindowedDecayZeroSingleWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(6)
		cacheBlocks := 1 << uint(2+rng.Intn(5))
		blocks := windowedTrace(rng, 200+rng.Intn(2000), n)
		for _, sparse := range []bool{false, true} {
			want := buildBackend(blocks, n, cacheBlocks, sparse)
			w := newWindowedBackend(t, n, cacheBlocks, 0, sparse)
			for _, b := range blocks {
				w.Add(b)
			}
			if d := diffProfiles(w.Snapshot(), want); d != "" {
				t.Fatalf("trial %d sparse=%v: pre-rotation Snapshot vs batch Build: %s", trial, sparse, d)
			}
			w.Rotate()
			if d := diffProfiles(w.Aggregate(), want); d != "" {
				t.Fatalf("trial %d sparse=%v: single-window Aggregate vs batch Build: %s", trial, sparse, d)
			}
		}
	}
}

// TestWindowedDecayZeroMultiWindow extends the equivalence across
// arbitrary rotation boundaries: with decay 0 the fold is plain
// addition and the LRU state spans windows, so any rotation schedule
// yields the same aggregate as one batch pass over the concatenation.
func TestWindowedDecayZeroMultiWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(6)
		cacheBlocks := 1 << uint(2+rng.Intn(5))
		blocks := windowedTrace(rng, 500+rng.Intn(3000), n)
		for _, sparse := range []bool{false, true} {
			want := buildBackend(blocks, n, cacheBlocks, sparse)
			w := newWindowedBackend(t, n, cacheBlocks, 0, sparse)
			for _, b := range blocks {
				w.Add(b)
				if rng.Intn(97) == 0 {
					w.Rotate()
				}
			}
			if d := diffProfiles(w.Snapshot(), want); d != "" {
				t.Fatalf("trial %d sparse=%v: multi-window Snapshot vs batch Build: %s", trial, sparse, d)
			}
			w.Rotate()
			if d := diffProfiles(w.Aggregate(), want); d != "" {
				t.Fatalf("trial %d sparse=%v: multi-window Aggregate vs batch Build: %s", trial, sparse, d)
			}
		}
	}
}

// TestWindowedDecayFold pins the decay arithmetic directly: after
// rotating window A and then window B at decay d, every aggregate
// entry must equal floor(A[v]·(1−d)) + B[v] and TotalPairs must equal
// the exact histogram sum (not the floored counter fold).
func TestWindowedDecayFold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, cacheBlocks, decay = 10, 16, 0.25
	a := windowedTrace(rng, 1500, n)
	b := windowedTrace(rng, 1500, n)
	w := newWindowedBackend(t, n, cacheBlocks, decay, false)
	for _, blk := range a {
		w.Add(blk)
	}
	aWin := w.Snapshot() // decay hasn't applied yet: snapshot == window A
	w.Rotate()
	for _, blk := range b {
		w.Add(blk)
	}
	bWin := cloneProfile(w.bd.p)
	w.Rotate()
	got := w.Aggregate()
	var wantSum uint64
	for v := range got.Table {
		want := uint64(float64(aWin.Table[v])*(1-decay)) + bWin.Table[v]
		if got.Table[v] != want {
			t.Fatalf("aggregate[%#x] = %d, want floor(%d·%.2f)+%d = %d",
				v, got.Table[v], aWin.Table[v], 1-decay, bWin.Table[v], want)
		}
		wantSum += want
	}
	if got.TotalPairs != wantSum {
		t.Fatalf("TotalPairs = %d, want exact histogram sum %d", got.TotalPairs, wantSum)
	}
	// A third, empty rotation still decays: silence fades the aggregate.
	before := w.Aggregate().TotalPairs
	w.Rotate()
	after := w.Aggregate().TotalPairs
	if before > 0 && after >= before {
		t.Fatalf("empty rotation did not decay the aggregate: %d -> %d", before, after)
	}
}

// TestWindowedClassificationSpansWindows pins that the LRU stack
// carries across Rotate: a block touched in window 1 and re-touched in
// window 2 is not compulsory again.
func TestWindowedClassificationSpansWindows(t *testing.T) {
	w := newWindowedBackend(t, 8, 8, 0, false)
	w.Add(3)
	w.Rotate()
	w.Add(3)
	w.Rotate()
	agg := w.Aggregate()
	if agg.Compulsory != 1 {
		t.Fatalf("compulsory = %d after re-touch across windows, want 1 (stack must span rotations)", agg.Compulsory)
	}
}

// TestWindowedCheckpointRoundTrip cuts a stream at an arbitrary point,
// checkpoints, restores, and runs the remainder through both the
// original and the restored instance: every observable — snapshots,
// rotation count, stream total — must match bit for bit.
func TestWindowedCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(6)
		cacheBlocks := 1 << uint(2+rng.Intn(4))
		decay := []float64{0, 0, 0.5, 0.125}[rng.Intn(4)]
		sparse := trial%2 == 1
		blocks := windowedTrace(rng, 1000+rng.Intn(2000), n)
		cut := rng.Intn(len(blocks))

		w := newWindowedBackend(t, n, cacheBlocks, decay, sparse)
		for i, b := range blocks[:cut] {
			w.Add(b)
			if i%251 == 250 {
				w.Rotate()
			}
		}
		var buf bytes.Buffer
		if err := w.Checkpoint(&buf); err != nil {
			t.Fatalf("trial %d: Checkpoint: %v", trial, err)
		}
		restored, err := RestoreWindowed(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: RestoreWindowed: %v", trial, err)
		}
		if restored.Rotations() != w.Rotations() || restored.Total() != w.Total() || restored.Decay() != w.Decay() {
			t.Fatalf("trial %d: restored bookkeeping differs: rotations %d/%d total %d/%d decay %v/%v",
				trial, restored.Rotations(), w.Rotations(), restored.Total(), w.Total(), restored.Decay(), w.Decay())
		}
		for i, b := range blocks[cut:] {
			w.Add(b)
			restored.Add(b)
			if i%167 == 166 {
				w.Rotate()
				restored.Rotate()
			}
		}
		if d := diffProfiles(restored.Snapshot(), w.Snapshot()); d != "" {
			t.Fatalf("trial %d (decay=%v sparse=%v): restored stream diverged: %s", trial, decay, sparse, d)
		}
	}
}

// TestWindowedCheckpointCorruption flips or truncates the snapshot at
// every byte offset: RestoreWindowed must fail cleanly (never panic,
// never return a poisoned instance) with a wrapped xerr.ErrFormat.
func TestWindowedCheckpointCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	w := newWindowedBackend(t, 8, 8, 0.5, false)
	for _, b := range windowedTrace(rng, 600, 8) {
		w.Add(b)
	}
	w.Rotate()
	for _, b := range windowedTrace(rng, 200, 8) {
		w.Add(b)
	}
	var buf bytes.Buffer
	if err := w.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap := buf.Bytes()
	for off := 0; off < len(snap); off++ {
		mut := append([]byte(nil), snap...)
		mut[off] ^= 0x40
		if _, err := RestoreWindowed(bytes.NewReader(mut)); err == nil {
			// A bit flip the CRC catches or the validators catch — either
			// way it must not restore silently. (A flip may cancel out in
			// rare codec positions; none exist for this payload, and the
			// assertion documents that.)
			t.Fatalf("bit flip at offset %d restored without error", off)
		}
		if _, err := RestoreWindowed(bytes.NewReader(snap[:off])); err == nil {
			t.Fatalf("truncation at offset %d restored without error", off)
		}
	}
	// And an undamaged snapshot still restores after all that.
	if _, err := RestoreWindowed(bytes.NewReader(snap)); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}
}

// TestWindowedDecayDomain pins the decay validation: NaN and anything
// outside [0, 1) is rejected with ErrInvalidOptions.
func TestWindowedDecayDomain(t *testing.T) {
	for _, bad := range []float64{-0.1, 1, 1.5, nan()} {
		if _, err := NewWindowed(8, 8, bad); !errors.Is(err, xerr.ErrInvalidOptions) {
			t.Fatalf("NewWindowed(decay=%v) = %v, want ErrInvalidOptions", bad, err)
		}
	}
	if _, err := NewWindowed(8, 8, 0.999); err != nil {
		t.Fatalf("NewWindowed(decay=0.999): %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
