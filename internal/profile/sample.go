package profile

// Sampled profiling (DESIGN.md §17). A full Fig. 1 pass walks the LRU
// stack once per conflict candidate; on billion-access traces those
// walks dominate the build. Sampling keeps the classification machinery
// exact — every access still runs through the distance gate, so the LRU
// stack, the Fenwick tree and the Compulsory/Capacity/Candidates
// counters are bit-identical to an exact pass — but only every k-th
// conflict candidate's reuse interval is walked into the histogram.
// Skipped candidates still refresh their stack position (MoveToTop), so
// later reuse distances are unaffected by the skipping.
//
// The histogram therefore holds a deterministic ~1/k subsample of the
// conflict pairs, and every Eq. 4 estimate read from it is a raw count
// M that scales to the exact-pass value as k·M. The error model is the
// birthday-paradox collision statistic: conflict pairs hitting a null
// space N(H) are rare, independent-ish collision events, so the sampled
// hit count M is well approximated as Poisson with mean μ/k (μ the
// exact count). A Poisson's standard deviation is the square root of
// its mean, giving the two-sided normal interval
//
//	μ ∈ k·M ± z·k·√M            (z = 1.96 at 95%)
//
// whose relative half-width z/√M shrinks as the estimate grows — the
// estimates that decide a climb (the large ones) are exactly the ones
// sampled most accurately. The argmin over H is computed on raw counts:
// scaling by the constant k preserves ordering, so the search layer
// never needs to know it is looking at a subsample.
//
// The candidate ordinal that decides sampling is global to the pass
// (the j-th conflict candidate of the stream), which an isolated cold
// shard cannot know; sampled builds therefore run sequentially —
// ParallelOptions.withDefaults forces Workers to 1 when Sample.K > 1.

import (
	"context"
	"fmt"
	"io"
	"math"

	"xoridx/internal/xerr"
)

// SampleOptions configures sampled profiling. K <= 1 means exact (no
// sampling); K = k profiles every k-th conflict candidate, phase-offset
// deterministically from Seed so repeated runs are reproducible and
// different seeds sample different strata.
type SampleOptions struct {
	K    uint64
	Seed uint64
}

// enabled reports whether the options actually sample.
func (o SampleOptions) enabled() bool { return o.K > 1 }

// NewSampledBuilder is NewBuilder with sampled conflict walks; see
// SampleOptions. It panics on out-of-range geometry like NewBuilder.
func NewSampledBuilder(n, cacheBlocks int, opt SampleOptions) *Builder {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		panic(err)
	}
	bd := newBuilder(n, cacheBlocks, n > MaxFlatBits)
	bd.setSampling(opt)
	return bd
}

// BuildSampled runs the sampled profiling pass over a block sequence.
func BuildSampled(blocks []uint64, n, cacheBlocks int, opt SampleOptions) *Profile {
	bd := NewSampledBuilder(n, cacheBlocks, opt)
	for _, blk := range blocks {
		bd.Add(blk)
	}
	return bd.Finish()
}

// setSampling arms the builder's sampling gate. A no-op for K <= 1.
func (bd *Builder) setSampling(opt SampleOptions) {
	if !opt.enabled() {
		return
	}
	bd.sampleK = opt.K
	bd.p.SampleK = opt.K
	bd.p.SampleSeed = opt.Seed
	// First profiled candidate ordinal (1-indexed): a deterministic
	// phase in [1, K] derived from the seed, then every K-th after it.
	bd.sampleNext = bd.sampleCount + splitmix64(opt.Seed)%opt.K + 1
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mix used to derive the sampling phase and the sketch row
// hashes without any dependency.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Confidence qualifies an Eq. 4 estimate read from a sampled profile:
// the scaled estimate, the half-width of its confidence interval, and
// the level the interval holds at. For an exact profile (K <= 1) the
// margin is zero and Level is 1.
type Confidence struct {
	Estimate uint64  // scaled estimate k·M (equals the raw count when exact)
	Raw      uint64  // M, the raw (sampled) histogram sum that produced it
	K        uint64  // sampling factor (1 = exact)
	Margin   uint64  // CI half-width: ceil(z·k·√M); 0 when exact
	RelError float64 // Margin / Estimate, 0 when Estimate is 0
	Level    float64 // two-sided confidence level of the interval
}

// The z-score and level of the reported interval (two-sided 95%).
const (
	confidenceZ     = 1.96
	confidenceLevel = 0.95
)

// Scale returns the factor raw histogram sums must be multiplied by to
// estimate exact-pass counts: SampleK for a sampled profile, 1 for an
// exact one.
func (p *Profile) Scale() uint64 {
	if p.SampleK > 1 {
		return p.SampleK
	}
	return 1
}

// ConfidenceFor wraps a raw Eq. 4 estimate (as returned by
// EstimateSubspace and friends on this profile) in its sampling
// confidence interval — see the package comment in sample.go for the
// derivation.
func (p *Profile) ConfidenceFor(raw uint64) Confidence {
	k := p.Scale()
	c := Confidence{Estimate: raw * k, Raw: raw, K: k, Level: 1}
	if k == 1 {
		return c
	}
	c.Level = confidenceLevel
	c.Margin = uint64(math.Ceil(confidenceZ * float64(k) * math.Sqrt(float64(raw))))
	if c.Estimate > 0 {
		c.RelError = float64(c.Margin) / float64(c.Estimate)
	}
	return c
}

// String renders "X ± ε (95% CI, k=16)" for sampled estimates and the
// plain count for exact ones.
func (c Confidence) String() string {
	if c.K <= 1 {
		return fmt.Sprintf("%d (exact)", c.Estimate)
	}
	return fmt.Sprintf("%d ± %d (%.0f%% CI, k=%d)", c.Estimate, c.Margin, c.Level*100, c.K)
}

// buildSampledStream is the sampled branch of the stream engine: a
// single sequential builder consumes the chunked source, because the
// sampling gate counts global candidate ordinals that cold shard
// builders cannot reconstruct. It keeps BuildStreamCtx's contract —
// fillChunk boundaries, Retry on transient source faults, Stats, and
// cancellation returning the Degraded partial profile with the error.
func buildSampledStream(ctx context.Context, src BlockSource, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	bd := opt.newBuilder(n, cacheBlocks)
	bd.setSampling(opt.Sample)
	if opt.Retry.MaxRetries > 0 {
		src = RetrySource(ctx, src, opt.Retry)
	}
	buf := make([]uint64, opt.ChunkSize)
	for {
		filled, ferr := fillChunk(src, buf)
		for start := 0; start < filled; start += ctxCheckEvery {
			if err := xerr.Check(ctx); err != nil {
				p := bd.Finish()
				p.Degraded = true
				return p, err
			}
			end := start + ctxCheckEvery
			if end > filled {
				end = filled
			}
			for _, blk := range buf[start:end] {
				bd.Add(blk)
			}
		}
		if ferr == io.EOF {
			break
		}
		if ferr != nil {
			return nil, ferr
		}
	}
	if opt.Stats != nil {
		*opt.Stats = bd.stats
	}
	return bd.Finish(), nil
}

// checkSamplingCompatible verifies two profiles agree on sampling
// before a merge: mixing subsample rates (or phases) would make the
// combined histogram scale-inconsistent.
func checkSamplingCompatible(p, o *Profile) error {
	if p.Scale() != o.Scale() {
		return fmt.Errorf("profile: cannot merge sampling k=%d into k=%d: %w",
			o.Scale(), p.Scale(), xerr.ErrProfileMismatch)
	}
	if p.SampleK > 1 && p.SampleSeed != o.SampleSeed {
		return fmt.Errorf("profile: cannot merge sampled profiles with different seeds: %w",
			xerr.ErrProfileMismatch)
	}
	return nil
}
