package profile

// The differential test oracle. oracleBuild re-implements the Fig. 1
// profiling semantics in the most naive way available — for every
// access it rescans the trace backward, with no LRU stack and no
// incremental state — so its correctness is auditable by eye:
//
//	previous access of x at j  →  otherwise compulsory
//	distinct blocks in (j, i)  →  reuse distance
//	distance > cacheBlocks     →  capacity miss, counts nothing
//	else                       →  one count per x⊕y, y in between
//
// It is O(len²) per trace, which is exactly why the real builder uses
// the stack — and exactly why the oracle makes a trustworthy reference:
// the two share no code and no data structure. The tests below assert
// that the sequential Build matches the oracle bit for bit on
// randomized traces, and that the sharded builders match the sequential
// Build bit for bit for every worker count and chunk size.

import (
	"io"
	"math/rand"
	"testing"

	"xoridx/internal/gf2"
)

// oracleBuild is the naive reference profiler (see file comment).
func oracleBuild(blocks []uint64, n, cacheBlocks int) *Profile {
	mask := uint64(gf2.Mask(n))
	p := &Profile{N: n, CacheBlocks: cacheBlocks, Table: make([]uint64, 1<<uint(n))}
	for i := range blocks {
		x := blocks[i] & mask
		p.Accesses++
		prev := -1
		for k := i - 1; k >= 0; k-- {
			if blocks[k]&mask == x {
				prev = k
				break
			}
		}
		if prev < 0 {
			p.Compulsory++
			continue
		}
		var between []uint64
		seen := make(map[uint64]bool)
		for k := i - 1; k > prev; k-- {
			y := blocks[k] & mask
			if !seen[y] {
				seen[y] = true
				between = append(between, y)
			}
		}
		if len(between) > cacheBlocks {
			p.Capacity++
			continue
		}
		p.Candidates++
		for _, y := range between {
			p.Table[x^y]++
			p.TotalPairs++
		}
	}
	return p
}

// diffProfiles returns a description of the first field where two
// profiles differ, or "" when they are bit-identical. Both backends are
// compared exactly; mixing a flat and a sparse profile is itself a
// difference (use diffProfilesAny for cross-backend comparisons).
func diffProfiles(got, want *Profile) string {
	if d := diffCounters(got, want); d != "" {
		return d
	}
	if (got.Table == nil) != (want.Table == nil) {
		return "backend differs"
	}
	if want.Table != nil {
		for v := range want.Table {
			if got.Table[v] != want.Table[v] {
				return "Table differs"
			}
		}
		return ""
	}
	if len(got.Sparse) != len(want.Sparse) {
		return "Sparse support size differs"
	}
	for v, c := range want.Sparse {
		if got.Sparse[v] != c {
			return "Sparse differs"
		}
	}
	return ""
}

// diffProfilesAny compares two profiles that may use different
// histogram backends: counters exactly, then every histogram entry via
// the backend-agnostic accessors.
func diffProfilesAny(got, want *Profile) string {
	if d := diffCounters(got, want); d != "" {
		return d
	}
	mismatch := ""
	want.ForEachNonZero(func(v gf2.Vec, c uint64) {
		if mismatch == "" && got.At(v) != c {
			mismatch = "histogram differs"
		}
	})
	got.ForEachNonZero(func(v gf2.Vec, c uint64) {
		if mismatch == "" && want.At(v) != c {
			mismatch = "histogram differs"
		}
	})
	return mismatch
}

func diffCounters(got, want *Profile) string {
	switch {
	case got.N != want.N:
		return "N differs"
	case got.CacheBlocks != want.CacheBlocks:
		return "CacheBlocks differs"
	case got.Accesses != want.Accesses:
		return "Accesses differs"
	case got.Compulsory != want.Compulsory:
		return "Compulsory differs"
	case got.Capacity != want.Capacity:
		return "Capacity differs"
	case got.Candidates != want.Candidates:
		return "Candidates differs"
	case got.TotalPairs != want.TotalPairs:
		return "TotalPairs differs"
	}
	return ""
}

// randomOracleTrace draws a trace that mixes locality regimes so all
// three classifications (compulsory, capacity, conflict) occur: tight
// loops, strides, and uniform noise over a space larger than 2^n (to
// exercise the n-bit mask).
func randomOracleTrace(r *rand.Rand) []uint64 {
	length := 50 + r.Intn(350)
	space := uint64(1) << uint(6+r.Intn(6)) // up to 2^11 > 2^n for small n
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		switch r.Intn(4) {
		case 0: // tight loop over a small working set
			set := 2 + r.Intn(6)
			base := r.Uint64() % space
			for rep := 0; rep < 2+r.Intn(8); rep++ {
				for i := 0; i < set; i++ {
					blocks = append(blocks, (base+uint64(i))%space)
				}
			}
		case 1: // stride burst
			stride := uint64(1) << uint(r.Intn(6))
			base := r.Uint64() % space
			for i := uint64(0); i < 12; i++ {
				blocks = append(blocks, (base+i*stride)%space)
			}
		case 2: // revisit an old block after a long gap
			if len(blocks) > 0 {
				blocks = append(blocks, blocks[r.Intn(len(blocks))])
			} else {
				blocks = append(blocks, r.Uint64()%space)
			}
		default: // uniform noise
			for i := 0; i < 6; i++ {
				blocks = append(blocks, r.Uint64()%space)
			}
		}
	}
	return blocks[:length]
}

// TestDifferentialSequentialVsOracle checks Build ≡ oracle exactly on
// over a thousand randomized traces across n and capacity settings.
func TestDifferentialSequentialVsOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	trials := 1200
	if testing.Short() {
		trials = 200
	}
	for trial := 0; trial < trials; trial++ {
		blocks := randomOracleTrace(r)
		n := 4 + r.Intn(7)
		cacheBlocks := 1 << uint(r.Intn(6))
		got := Build(blocks, n, cacheBlocks)
		want := oracleBuild(blocks, n, cacheBlocks)
		if d := diffProfiles(got, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d len=%d): Build vs oracle: %s",
				trial, n, cacheBlocks, len(blocks), d)
		}
	}
}

// TestDifferentialParallelVsSequential checks that BuildParallel and
// BuildStream are bit-identical to Build — counters included — for
// every worker count and for chunk sizes that force many shard
// boundaries, on randomized traces.
func TestDifferentialParallelVsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		blocks := randomOracleTrace(r)
		n := 4 + r.Intn(7)
		cacheBlocks := 1 << uint(r.Intn(6))
		want := Build(blocks, n, cacheBlocks)
		for workers := 1; workers <= 8; workers++ {
			got := mustParallel(t, blocks, n, cacheBlocks, workers)
			if d := diffProfiles(got, want); d != "" {
				t.Fatalf("trial %d (n=%d cap=%d len=%d) workers=%d: %s",
					trial, n, cacheBlocks, len(blocks), workers, d)
			}
		}
		chunk := 1 + r.Intn(40)
		got, err := BuildStream(sliceSource(blocks), n, cacheBlocks,
			ParallelOptions{Workers: 1 + r.Intn(4), ChunkSize: chunk})
		if err != nil {
			t.Fatalf("trial %d: BuildStream: %v", trial, err)
		}
		if d := diffProfiles(got, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d len=%d) chunk=%d: stream: %s",
				trial, n, cacheBlocks, len(blocks), chunk, d)
		}
	}
}

// TestDifferentialShardedMatrix is the full cross-implementation race
// for the gate-summary scheme: on every trial one randomized trace
// (locality-mixed or shard-boundary-adversarial) is profiled by the
// sequential Build, the pre-overhaul sequential reference (refBuild),
// the retained warmup/overlap parallel reference (refBuildParallel),
// the new sharded BuildParallel at a random worker count in {1..16},
// and BuildStream at a random chunk size — across all three histogram
// backends (flat, forced-sparse, wide-n sparse) — and every result must
// be bit-identical, counters and BuildStats walk-count probes included.
func TestDifferentialShardedMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	trials := 520
	if testing.Short() {
		trials = 100
	}
	for trial := 0; trial < trials; trial++ {
		backend := trial % 3 // 0: flat, 1: forced sparse, 2: wide-n sparse
		n := 4 + r.Intn(7)
		if backend == 2 {
			n = MaxFlatBits + 4 + r.Intn(8)
		}
		sparse := backend != 0
		cacheBlocks := 1 << uint(r.Intn(6))
		var blocks []uint64
		if trial%2 == 0 {
			blocks = randomOracleTrace(r)
		} else {
			period := cacheBlocks + r.Intn(2*cacheBlocks+1)
			blocks = boundaryTrace(r, period, 200+r.Intn(600))
		}
		if backend == 2 {
			// Spread the low-entropy generator output across the wide
			// mask so conflict vectors actually exceed MaxFlatBits.
			for i := range blocks {
				blocks[i] |= blocks[i] << 13
			}
		}

		var want *Profile
		if sparse {
			want = NewSparseBuilder(n, cacheBlocks).finishBlocks(blocks)
		} else {
			want = Build(blocks, n, cacheBlocks)
		}
		if d := diffProfiles(refBuild(blocks, n, cacheBlocks, sparse), want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d sparse=%v): refBuild vs sequential: %s",
				trial, n, cacheBlocks, sparse, d)
		}

		workers := 1 + r.Intn(16)
		var st BuildStats
		got := mustParallelOpts(t, blocks, n, cacheBlocks,
			ParallelOptions{Workers: workers, ForceSparse: sparse, Stats: &st})
		if d := diffProfiles(got, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d sparse=%v len=%d) workers=%d: sharded vs sequential: %s",
				trial, n, cacheBlocks, sparse, len(blocks), workers, d)
		}
		if st.CandidateWalks != got.Candidates || st.WalkSteps != got.TotalPairs ||
			st.GatedCapacityMisses != got.Capacity {
			t.Fatalf("trial %d workers=%d: stats probes broken: %+v vs candidates=%d pairs=%d capacity=%d",
				trial, workers, st, got.Candidates, got.TotalPairs, got.Capacity)
		}
		refPar := refBuildParallel(blocks, n, cacheBlocks, sparse, 1+r.Intn(8))
		if d := diffProfiles(got, refPar); d != "" {
			t.Fatalf("trial %d workers=%d: sharded vs retained warmup reference: %s",
				trial, workers, d)
		}

		chunk := 1 + r.Intn(48)
		gs, err := BuildStream(sliceSource(blocks), n, cacheBlocks,
			ParallelOptions{Workers: 1 + r.Intn(5), ChunkSize: chunk, ForceSparse: sparse})
		if err != nil {
			t.Fatalf("trial %d: BuildStream: %v", trial, err)
		}
		if d := diffProfiles(gs, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d sparse=%v len=%d) chunk=%d: stream vs sequential: %s",
				trial, n, cacheBlocks, sparse, len(blocks), chunk, d)
		}

		if backend == 0 {
			if d := diffProfiles(want, oracleBuild(blocks, n, cacheBlocks)); d != "" {
				t.Fatalf("trial %d (n=%d cap=%d): sequential vs oracle: %s",
					trial, n, cacheBlocks, d)
			}
		}
	}
}

// sliceSource adapts an in-memory block slice to the BlockSource shape.
func sliceSource(blocks []uint64) BlockSource {
	pos := 0
	return func(dst []uint64) (int, error) {
		if pos >= len(blocks) {
			return 0, io.EOF
		}
		k := copy(dst, blocks[pos:])
		pos += k
		return k, nil
	}
}
