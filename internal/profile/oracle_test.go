package profile

// The differential test oracle. oracleBuild re-implements the Fig. 1
// profiling semantics in the most naive way available — for every
// access it rescans the trace backward, with no LRU stack and no
// incremental state — so its correctness is auditable by eye:
//
//	previous access of x at j  →  otherwise compulsory
//	distinct blocks in (j, i)  →  reuse distance
//	distance > cacheBlocks     →  capacity miss, counts nothing
//	else                       →  one count per x⊕y, y in between
//
// It is O(len²) per trace, which is exactly why the real builder uses
// the stack — and exactly why the oracle makes a trustworthy reference:
// the two share no code and no data structure. The tests below assert
// that the sequential Build matches the oracle bit for bit on
// randomized traces, and that the sharded builders match the sequential
// Build bit for bit for every worker count and chunk size.

import (
	"io"
	"math/rand"
	"testing"

	"xoridx/internal/gf2"
)

// oracleBuild is the naive reference profiler (see file comment).
func oracleBuild(blocks []uint64, n, cacheBlocks int) *Profile {
	mask := uint64(gf2.Mask(n))
	p := &Profile{N: n, CacheBlocks: cacheBlocks, Table: make([]uint64, 1<<uint(n))}
	for i := range blocks {
		x := blocks[i] & mask
		p.Accesses++
		prev := -1
		for k := i - 1; k >= 0; k-- {
			if blocks[k]&mask == x {
				prev = k
				break
			}
		}
		if prev < 0 {
			p.Compulsory++
			continue
		}
		var between []uint64
		seen := make(map[uint64]bool)
		for k := i - 1; k > prev; k-- {
			y := blocks[k] & mask
			if !seen[y] {
				seen[y] = true
				between = append(between, y)
			}
		}
		if len(between) > cacheBlocks {
			p.Capacity++
			continue
		}
		p.Candidates++
		for _, y := range between {
			p.Table[x^y]++
			p.TotalPairs++
		}
	}
	return p
}

// diffProfiles returns a description of the first field where two
// profiles differ, or "" when they are bit-identical.
func diffProfiles(got, want *Profile) string {
	switch {
	case got.N != want.N:
		return "N differs"
	case got.CacheBlocks != want.CacheBlocks:
		return "CacheBlocks differs"
	case got.Accesses != want.Accesses:
		return "Accesses differs"
	case got.Compulsory != want.Compulsory:
		return "Compulsory differs"
	case got.Capacity != want.Capacity:
		return "Capacity differs"
	case got.Candidates != want.Candidates:
		return "Candidates differs"
	case got.TotalPairs != want.TotalPairs:
		return "TotalPairs differs"
	}
	for v := range want.Table {
		if got.Table[v] != want.Table[v] {
			return "Table differs"
		}
	}
	return ""
}

// randomOracleTrace draws a trace that mixes locality regimes so all
// three classifications (compulsory, capacity, conflict) occur: tight
// loops, strides, and uniform noise over a space larger than 2^n (to
// exercise the n-bit mask).
func randomOracleTrace(r *rand.Rand) []uint64 {
	length := 50 + r.Intn(350)
	space := uint64(1) << uint(6+r.Intn(6)) // up to 2^11 > 2^n for small n
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		switch r.Intn(4) {
		case 0: // tight loop over a small working set
			set := 2 + r.Intn(6)
			base := r.Uint64() % space
			for rep := 0; rep < 2+r.Intn(8); rep++ {
				for i := 0; i < set; i++ {
					blocks = append(blocks, (base+uint64(i))%space)
				}
			}
		case 1: // stride burst
			stride := uint64(1) << uint(r.Intn(6))
			base := r.Uint64() % space
			for i := uint64(0); i < 12; i++ {
				blocks = append(blocks, (base+i*stride)%space)
			}
		case 2: // revisit an old block after a long gap
			if len(blocks) > 0 {
				blocks = append(blocks, blocks[r.Intn(len(blocks))])
			} else {
				blocks = append(blocks, r.Uint64()%space)
			}
		default: // uniform noise
			for i := 0; i < 6; i++ {
				blocks = append(blocks, r.Uint64()%space)
			}
		}
	}
	return blocks[:length]
}

// TestDifferentialSequentialVsOracle checks Build ≡ oracle exactly on
// over a thousand randomized traces across n and capacity settings.
func TestDifferentialSequentialVsOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	trials := 1200
	if testing.Short() {
		trials = 200
	}
	for trial := 0; trial < trials; trial++ {
		blocks := randomOracleTrace(r)
		n := 4 + r.Intn(7)
		cacheBlocks := 1 << uint(r.Intn(6))
		got := Build(blocks, n, cacheBlocks)
		want := oracleBuild(blocks, n, cacheBlocks)
		if d := diffProfiles(got, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d len=%d): Build vs oracle: %s",
				trial, n, cacheBlocks, len(blocks), d)
		}
	}
}

// TestDifferentialParallelVsSequential checks that BuildParallel and
// BuildStream are bit-identical to Build — counters included — for
// every worker count and for chunk sizes that force many shard
// boundaries, on randomized traces.
func TestDifferentialParallelVsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		blocks := randomOracleTrace(r)
		n := 4 + r.Intn(7)
		cacheBlocks := 1 << uint(r.Intn(6))
		want := Build(blocks, n, cacheBlocks)
		for workers := 1; workers <= 8; workers++ {
			got := mustParallel(t, blocks, n, cacheBlocks, workers)
			if d := diffProfiles(got, want); d != "" {
				t.Fatalf("trial %d (n=%d cap=%d len=%d) workers=%d: %s",
					trial, n, cacheBlocks, len(blocks), workers, d)
			}
		}
		chunk := 1 + r.Intn(40)
		got, err := BuildStream(sliceSource(blocks), n, cacheBlocks,
			ParallelOptions{Workers: 1 + r.Intn(4), ChunkSize: chunk})
		if err != nil {
			t.Fatalf("trial %d: BuildStream: %v", trial, err)
		}
		if d := diffProfiles(got, want); d != "" {
			t.Fatalf("trial %d (n=%d cap=%d len=%d) chunk=%d: stream: %s",
				trial, n, cacheBlocks, len(blocks), chunk, d)
		}
	}
}

// sliceSource adapts an in-memory block slice to the BlockSource shape.
func sliceSource(blocks []uint64) BlockSource {
	pos := 0
	return func(dst []uint64) (int, error) {
		if pos >= len(blocks) {
			return 0, io.EOF
		}
		k := copy(dst, blocks[pos:])
		pos += k
		return k, nil
	}
}
