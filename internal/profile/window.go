package profile

// Windowed profiling for unbounded access streams. A batch Profile
// answers "which conflict vectors did this trace generate"; a serving
// system needs "which conflict vectors is this workload generating
// *now*". Windowed keeps the Fig. 1 pass incremental over an infinite
// stream by splitting it into windows: the LRU stack and the distance
// gate persist across the whole stream (reuse distances do not care
// about window boundaries), while the histogram and its bookkeeping
// counters are per-window. Rotate folds the finished window into an
// exponentially decayed aggregate:
//
//	agg' = (1 − decay)·agg + window
//
// applied entry-wise to the histogram (integer floor per entry) and to
// the bookkeeping counters. decay = 0 makes the fold plain addition,
// so the aggregate after any number of rotations is bit-identical to
// one batch Build over the concatenated windows — the equivalence the
// differential tests in window_test.go pin, and the property that
// makes every batch-mode result a special case of the windowed path.
//
// With decay > 0 the aggregate is a geometric sum of window
// histograms, so stale phases fade at rate (1−decay) per window and
// the optimizer chases the live workload instead of the stream's
// whole history. Two bookkeeping caveats, both deliberate:
//
//   - TotalPairs is recomputed as the exact histogram sum during each
//     fold (a sum of per-entry floors is not the floor of the sum), so
//     the Eq. 4 machinery's sum == TotalPairs invariant always holds.
//   - Accesses/Compulsory/Capacity/Candidates are floored
//     individually, so Accesses == Compulsory + Capacity + Candidates
//     holds exactly only at decay = 0; decayed counters are rate
//     indicators, not exact tallies.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"xoridx/internal/ckpt"
	"xoridx/internal/gf2"
	"xoridx/internal/lru"
	"xoridx/internal/xerr"
)

// Windowed accumulates a decayed conflict-vector aggregate over an
// unbounded block-access stream. Not safe for concurrent use; the
// serve layer gives each shard its own instance.
type Windowed struct {
	bd        *Builder // current window; its stack/tree span the whole stream
	agg       *Profile // decayed fold of all rotated windows
	decay     float64
	rotations uint64
	total     uint64 // accesses ever ingested (undecayed, spans windows)
}

// ValidateDecay checks a window decay factor: the fold retains a
// (1−decay) fraction per rotation, so the domain is [0, 1).
func ValidateDecay(decay float64) error {
	if math.IsNaN(decay) || decay < 0 || decay >= 1 {
		return fmt.Errorf("profile: decay %v outside [0, 1): %w", decay, xerr.ErrInvalidOptions)
	}
	return nil
}

// NewWindowed starts an empty windowed profile. Backend selection
// matches NewBuilder (flat up to MaxFlatBits, sparse beyond).
func NewWindowed(n, cacheBlocks int, decay float64) (*Windowed, error) {
	return newWindowed(n, cacheBlocks, decay, n > MaxFlatBits)
}

// NewSparseWindowed is NewWindowed forcing the sparse map backend at
// any width, mirroring NewSparseBuilder.
func NewSparseWindowed(n, cacheBlocks int, decay float64) (*Windowed, error) {
	return newWindowed(n, cacheBlocks, decay, true)
}

// NewSampledWindowed is NewWindowed with sampled conflict walks (see
// sample.go): classification and the stream-spanning LRU state stay
// exact, only every opt.K-th conflict candidate is walked into the
// window histogram. opt.K <= 1 degrades to the exact NewWindowed.
func NewSampledWindowed(n, cacheBlocks int, decay float64, opt SampleOptions) (*Windowed, error) {
	w, err := newWindowed(n, cacheBlocks, decay, n > MaxFlatBits)
	if err != nil {
		return nil, err
	}
	if opt.enabled() {
		w.bd.setSampling(opt)
		w.agg.SampleK = opt.K
		w.agg.SampleSeed = opt.Seed
	}
	return w, nil
}

func newWindowed(n, cacheBlocks int, decay float64, sparse bool) (*Windowed, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	if err := ValidateDecay(decay); err != nil {
		return nil, err
	}
	w := &Windowed{bd: newBuilder(n, cacheBlocks, sparse), decay: decay}
	w.agg = emptyLike(w.bd.p)
	return w, nil
}

// emptyLike allocates a zero profile with o's geometry, backend and
// sampling configuration.
func emptyLike(o *Profile) *Profile {
	p := &Profile{N: o.N, CacheBlocks: o.CacheBlocks, SampleK: o.SampleK, SampleSeed: o.SampleSeed}
	if o.Sparse != nil {
		p.Sparse = make(map[uint64]uint64)
	} else {
		p.Table = make([]uint64, len(o.Table))
	}
	return p
}

// cloneProfile deep-copies a profile so the caller can hand it to a
// concurrent search while the original keeps accumulating.
func cloneProfile(o *Profile) *Profile {
	p := &Profile{
		N: o.N, CacheBlocks: o.CacheBlocks,
		Accesses: o.Accesses, Compulsory: o.Compulsory, Capacity: o.Capacity,
		Candidates: o.Candidates, TotalPairs: o.TotalPairs, Degraded: o.Degraded,
		SampleK: o.SampleK, SampleSeed: o.SampleSeed, SampledCandidates: o.SampledCandidates,
	}
	if o.Sparse != nil {
		p.Sparse = make(map[uint64]uint64, len(o.Sparse))
		for v, c := range o.Sparse {
			p.Sparse[v] = c
		}
	} else {
		p.Table = append([]uint64(nil), o.Table...)
	}
	return p
}

// Add records one block access into the current window. Classification
// (compulsory / capacity / conflict candidate) runs against the LRU
// state of the whole stream, exactly as a batch pass over the
// concatenated windows would classify it.
func (w *Windowed) Add(block uint64) {
	w.bd.Add(block)
	w.total++
}

// Rotate closes the current window and folds it into the aggregate:
// the aggregate decays by (1−decay), the window adds in undecayed, and
// a fresh window begins. The LRU stack and distance gate carry over
// untouched. Rotating an empty window still decays the aggregate —
// silence is information under exponential decay.
func (w *Windowed) Rotate() {
	win := w.bd.p
	if w.decay != 0 {
		decayInPlace(w.agg, 1-w.decay)
	}
	// Same geometry and backend by construction, so Merge cannot fail.
	if err := w.agg.Merge(win); err != nil {
		panic(err)
	}
	w.rotations++
	w.bd.p = emptyLike(win)
}

// decayInPlace scales every histogram entry and counter by lambda
// (integer floor), dropping sparse entries that decay to zero, and
// recomputes TotalPairs as the exact post-decay histogram sum.
func decayInPlace(p *Profile, lambda float64) {
	var sum uint64
	if p.Table != nil {
		for v, c := range p.Table {
			if c != 0 {
				nc := uint64(float64(c) * lambda)
				p.Table[v] = nc
				sum += nc
			}
		}
	} else {
		for v, c := range p.Sparse {
			nc := uint64(float64(c) * lambda)
			if nc == 0 {
				delete(p.Sparse, v)
			} else {
				p.Sparse[v] = nc
			}
			sum += nc
		}
	}
	p.TotalPairs = sum
	p.Accesses = uint64(float64(p.Accesses) * lambda)
	p.Compulsory = uint64(float64(p.Compulsory) * lambda)
	p.Capacity = uint64(float64(p.Capacity) * lambda)
	p.Candidates = uint64(float64(p.Candidates) * lambda)
	p.SampledCandidates = uint64(float64(p.SampledCandidates) * lambda)
}

// Aggregate returns an independent copy of the decayed aggregate —
// the rotated windows only, not the live one. Safe to hand to a
// concurrent search while ingest continues.
func (w *Windowed) Aggregate() *Profile { return cloneProfile(w.agg) }

// Snapshot returns an independent copy of the aggregate with the live
// window folded in undecayed (the window has not rotated yet, so no
// decay step applies to it). At decay = 0 this equals a batch Build
// over every access ingested so far, regardless of rotation count.
func (w *Windowed) Snapshot() *Profile {
	out := cloneProfile(w.agg)
	if err := out.Merge(w.bd.p); err != nil {
		panic(err)
	}
	return out
}

// N returns the hashed-address width.
func (w *Windowed) N() int { return w.bd.p.N }

// CacheBlocks returns the capacity filter in blocks.
func (w *Windowed) CacheBlocks() int { return w.bd.p.CacheBlocks }

// Decay returns the per-rotation decay factor.
func (w *Windowed) Decay() float64 { return w.decay }

// Sampling returns the sampled-profiling configuration (K <= 1 means
// exact).
func (w *Windowed) Sampling() SampleOptions {
	return SampleOptions{K: w.bd.p.SampleK, Seed: w.bd.p.SampleSeed}
}

// Rotations returns how many windows have been folded so far.
func (w *Windowed) Rotations() uint64 { return w.rotations }

// WindowAccesses returns the live window's access count.
func (w *Windowed) WindowAccesses() uint64 { return w.bd.p.Accesses }

// Total returns the undecayed count of accesses ever ingested.
func (w *Windowed) Total() uint64 { return w.total }

const (
	windowMagic   = "XWP1"
	windowVersion = 2 // v2 appends the sampling gate state; v1 (exact-only) still restores
)

// Checkpoint serialises the complete windowed state — decayed
// aggregate, live window, and the stream-spanning LRU stack — inside
// the versioned, CRC-checked ckpt envelope. Unlike Builder.Checkpoint
// this snapshot has no stack == Compulsory invariant: the stack spans
// every window while the counters are window-local, so the codec
// carries both histogram/counter sets explicitly.
func (w *Windowed) Checkpoint(out io.Writer) error {
	win := w.bd.p
	return ckpt.Write(out, windowMagic, windowVersion, func(b *bytes.Buffer) error {
		var buf [binary.MaxVarintLen64]byte
		put := func(v uint64) { b.Write(buf[:binary.PutUvarint(buf[:], v)]) }
		put(uint64(win.N))
		put(uint64(win.CacheBlocks))
		if win.Sparse != nil {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		put(math.Float64bits(w.decay))
		put(w.rotations)
		put(w.total)
		// v2 sampling gate state: the factor, the phase seed, and the
		// stream-global candidate ordinal the gate has counted to (the
		// next trigger is recomputed from these on restore).
		put(w.bd.sampleK)
		put(w.bd.p.SampleSeed)
		put(w.bd.sampleCount)
		putProfileBody(put, w.agg)
		putProfileBody(put, win)
		stack := w.bd.stack.Blocks()
		put(uint64(len(stack)))
		for _, blk := range stack {
			put(blk)
		}
		return nil
	})
}

// putProfileBody writes one histogram/counter set: the counters
// followed by the delta-coded ascending support.
func putProfileBody(put func(uint64), p *Profile) {
	put(p.Accesses)
	put(p.Compulsory)
	put(p.Capacity)
	put(p.Candidates)
	put(p.TotalPairs)
	put(p.SampledCandidates)
	support := p.Support()
	put(uint64(len(support)))
	prev := uint64(0)
	for _, vc := range support {
		put(uint64(vc.Vec) - prev)
		put(vc.Count)
		prev = uint64(vc.Vec)
	}
}

// RestoreWindowed rebuilds a Windowed from a Checkpoint snapshot.
// Corruption at any layer returns a wrapped xerr.ErrFormat; a
// successful restore continues the stream bit-identically to the
// instance that was checkpointed.
func RestoreWindowed(r io.Reader) (*Windowed, error) {
	version, payload, err := ckpt.Read(r, windowMagic)
	if err != nil {
		return nil, err
	}
	if version < 1 || version > windowVersion {
		return nil, fmt.Errorf("profile: windowed snapshot version %d, this build reads up to %d: %w",
			version, windowVersion, xerr.ErrFormat)
	}
	sampled := version >= 2 // v1 snapshots predate sampling and are exact
	d := &payloadReader{b: payload}
	n := int(d.uvarint("n"))
	cacheBlocks := int(d.uvarint("cacheBlocks"))
	sparse := d.byte("backend") == 1
	decay := math.Float64frombits(d.uvarint("decay"))
	if d.err == nil {
		if err := ValidateGeometry(n, cacheBlocks); err != nil {
			return nil, fmt.Errorf("profile: windowed snapshot geometry: %w: %w", xerr.ErrFormat, err)
		}
		if !sparse && n > MaxFlatBits {
			return nil, fmt.Errorf("profile: windowed snapshot claims a flat table at n=%d > MaxFlatBits: %w", n, xerr.ErrFormat)
		}
		if err := ValidateDecay(decay); err != nil {
			return nil, fmt.Errorf("profile: windowed snapshot decay: %w: %w", xerr.ErrFormat, err)
		}
	}
	rotations := d.uvarint("rotations")
	total := d.uvarint("total")
	var sampleK, sampleSeed, sampleCount uint64
	if sampled {
		sampleK = d.uvarint("sampleK")
		sampleSeed = d.uvarint("sampleSeed")
		sampleCount = d.uvarint("sampleCount")
	}
	if d.err != nil {
		return nil, d.err
	}
	w, err := newWindowed(n, cacheBlocks, decay, sparse)
	if err != nil {
		return nil, err
	}
	w.rotations = rotations
	w.total = total
	if sampleK > 1 {
		w.bd.setSampling(SampleOptions{K: sampleK, Seed: sampleSeed})
		w.agg.SampleK = sampleK
		w.agg.SampleSeed = sampleSeed
		// The gate resumes mid-stream: restore its candidate ordinal and
		// recompute the next trigger — the smallest ordinal past it that
		// is congruent to the seed-derived phase mod K.
		w.bd.sampleCount = sampleCount
		phase := splitmix64(sampleSeed)%sampleK + 1
		next := phase
		if sampleCount >= phase {
			next = phase + ((sampleCount-phase)/sampleK+1)*sampleK
		}
		w.bd.sampleNext = next
	}
	mask := uint64(gf2.Mask(n))
	if err := readProfileBody(d, w.agg, mask, sampled, "aggregate"); err != nil {
		return nil, err
	}
	if err := readProfileBody(d, w.bd.p, mask, sampled, "window"); err != nil {
		return nil, err
	}
	win := w.bd.p
	if win.Compulsory+win.Capacity+win.Candidates != win.Accesses {
		return nil, fmt.Errorf("profile: windowed snapshot window counters disagree (%d+%d+%d != %d accesses): %w",
			win.Compulsory, win.Capacity, win.Candidates, win.Accesses, xerr.ErrFormat)
	}
	if win.SampledCandidates > win.Candidates {
		return nil, fmt.Errorf("profile: windowed snapshot window sampled %d of %d candidates: %w",
			win.SampledCandidates, win.Candidates, xerr.ErrFormat)
	}
	if win.Accesses > total {
		return nil, fmt.Errorf("profile: windowed snapshot window accesses %d exceed stream total %d: %w",
			win.Accesses, total, xerr.ErrFormat)
	}
	stackLen := d.uvarint("stack length")
	if d.err != nil {
		return nil, d.err
	}
	if stackLen > total || uint64(len(payload)) < stackLen {
		return nil, fmt.Errorf("profile: windowed snapshot stack length %d implausible: %w", stackLen, xerr.ErrFormat)
	}
	stack := make([]uint64, stackLen)
	for i := range stack {
		stack[i] = d.uvarint("stack block")
		if d.err == nil && stack[i] > mask {
			return nil, fmt.Errorf("profile: windowed snapshot stack block %#x exceeds %d bits: %w", stack[i], n, xerr.ErrFormat)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("profile: %d trailing bytes after windowed snapshot payload: %w", d.rem(), xerr.ErrFormat)
	}
	st, err := lru.NewStackFrom(stack)
	if err != nil {
		return nil, fmt.Errorf("profile: windowed snapshot stack: %w: %w", xerr.ErrFormat, err)
	}
	w.bd.stack = st
	// Rebuild the distance gate in recency order (bottom of the stack
	// first); reuse distances depend only on relative recency, so the
	// resumed stream classifies bit-identically (same argument as
	// Restore).
	w.bd.tree = lru.NewDistanceTree()
	for i := len(stack) - 1; i >= 0; i-- {
		w.bd.tree.Record(stack[i])
	}
	return w, nil
}

// readProfileBody decodes one histogram/counter set written by
// putProfileBody into p (allocated empty with the right backend) and
// checks the histogram-sum invariant.
func readProfileBody(d *payloadReader, p *Profile, mask uint64, sampled bool, what string) error {
	p.Accesses = d.uvarint("accesses")
	p.Compulsory = d.uvarint("compulsory")
	p.Capacity = d.uvarint("capacity")
	p.Candidates = d.uvarint("candidates")
	p.TotalPairs = d.uvarint("totalPairs")
	if sampled {
		p.SampledCandidates = d.uvarint("sampledCandidates")
	}
	supportLen := d.uvarint("support length")
	if d.err != nil {
		return d.err
	}
	if uint64(len(d.b)) < supportLen {
		return fmt.Errorf("profile: windowed snapshot %s support length %d implausible: %w", what, supportLen, xerr.ErrFormat)
	}
	var vec, sum uint64
	for i := uint64(0); i < supportLen; i++ {
		dv := d.uvarint("vector delta")
		count := d.uvarint("vector count")
		if d.err != nil {
			return d.err
		}
		if i > 0 && dv == 0 {
			return fmt.Errorf("profile: windowed snapshot %s vectors not strictly ascending: %w", what, xerr.ErrFormat)
		}
		vec += dv
		if vec > mask {
			return fmt.Errorf("profile: windowed snapshot %s vector %#x exceeds mask: %w", what, vec, xerr.ErrFormat)
		}
		if count == 0 {
			return fmt.Errorf("profile: windowed snapshot %s carries a zero count: %w", what, xerr.ErrFormat)
		}
		if p.Table != nil {
			p.Table[vec] = count
		} else {
			p.Sparse[vec] = count
		}
		sum += count
	}
	if sum != p.TotalPairs {
		return fmt.Errorf("profile: windowed snapshot %s histogram sums to %d pairs, counter says %d: %w",
			what, sum, p.TotalPairs, xerr.ErrFormat)
	}
	return nil
}
