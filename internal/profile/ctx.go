package profile

import (
	"context"

	"xoridx/internal/xerr"
)

// ctxCheckEvery is the cancellation-check granularity of the profiling
// hot loops, in block accesses. One check per 8 K accesses keeps the
// overhead unmeasurable (a single channel poll amortised over thousands
// of LRU-stack operations) while still bounding the cancellation
// latency to well under a millisecond of work.
const ctxCheckEvery = 8192

// BuildCtx is Build with cooperative cancellation: the pass checks ctx
// every ctxCheckEvery accesses and, when the context is done, returns
// the partial profile accumulated so far (marked Degraded, its
// Accesses counter telling how far it got) alongside a wrapped
// xerr.ErrCanceled. The produced profile is identical to Build's for
// an uncanceled run.
func BuildCtx(ctx context.Context, blocks []uint64, n, cacheBlocks int) (*Profile, error) {
	bd := NewBuilder(n, cacheBlocks)
	for start := 0; start < len(blocks); start += ctxCheckEvery {
		if err := xerr.Check(ctx); err != nil {
			p := bd.Finish()
			p.Degraded = true
			return p, err
		}
		end := start + ctxCheckEvery
		if end > len(blocks) {
			end = len(blocks)
		}
		for _, blk := range blocks[start:end] {
			bd.Add(blk)
		}
	}
	return bd.Finish(), nil
}
