package profile

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// randomConflictProfile builds a profile from a random trace dense
// enough to populate the histogram.
func randomConflictProfile(r *rand.Rand, n, cacheBlocks, accesses int) *Profile {
	space := n
	if space > 12 {
		space = 12
	}
	blocks := make([]uint64, accesses)
	for i := range blocks {
		blocks[i] = uint64(r.Intn(1 << uint(space)))
	}
	return Build(blocks, n, cacheBlocks)
}

// randomSubspaceDim returns a random subspace of exactly dim d.
func randomSubspaceDim(r *rand.Rand, n, d int) gf2.Subspace {
	for {
		vecs := make([]gf2.Vec, d)
		for i := range vecs {
			vecs[i] = gf2.Vec(r.Uint64()) & gf2.Mask(n)
		}
		sp := gf2.Span(n, vecs...)
		if sp.Dim() == d {
			return sp
		}
	}
}

// TestEstimateDeltaMatchesCosetEnumeration pins EstimateDelta against
// the definition: the sum of misses(v) over the explicit coset members.
func TestEstimateDeltaMatchesCosetEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(7)
		p := randomConflictProfile(r, n, 1<<uint(r.Intn(4)), 2000)
		k := r.Intn(n)
		w := randomSubspaceDim(r, n, k)
		rep := gf2.Vec(r.Uint64()) & gf2.Mask(n)
		var want uint64
		for _, v := range w.CosetMembers(rep, nil) {
			want += p.At(v)
		}
		if got := p.EstimateDelta(w.Basis, rep); got != want {
			t.Fatalf("trial %d (n=%d k=%d rep=%v): EstimateDelta = %d, want %d",
				trial, n, k, rep, got, want)
		}
	}
}

// TestDeltaIdentityQuick sweeps the coset-delta identity of DESIGN.md
// §10 over random (n, m): for a null space V, every hyperplane W of V
// and a representative rep of V∖W must satisfy
// est(V) == est(W) + delta(W, rep).
func TestDeltaIdentityQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	check := func(nRaw, mRaw uint8, seed int64) bool {
		n := 4 + int(nRaw)%8 // 4..11
		m := 1 + int(mRaw)%(n-1)
		d := n - m
		rr := rand.New(rand.NewSource(seed))
		p := randomConflictProfile(rr, n, 1<<uint(m), 1500)
		v := randomSubspaceDim(rr, n, d)
		want := p.EstimateSubspace(v)
		for _, w := range v.Hyperplanes(nil) {
			var rep gf2.Vec
			for _, b := range v.Basis {
				if !w.Contains(b) {
					rep = b
					break
				}
			}
			if got := p.EstimateBasis(w.Basis) + p.EstimateDelta(w.Basis, rep); got != want {
				t.Logf("n=%d m=%d: est(W)+delta = %d, est(V) = %d", n, m, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseFlatDifferential builds the same trace through both
// backends and demands identical counters, histogram entries and
// estimates.
func TestSparseFlatDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(7)
		cacheBlocks := 1 << uint(r.Intn(5))
		blocks := make([]uint64, 1500)
		for i := range blocks {
			blocks[i] = uint64(r.Intn(1 << uint(n)))
		}
		flat := Build(blocks, n, cacheBlocks)
		sb := NewSparseBuilder(n, cacheBlocks)
		for _, b := range blocks {
			sb.Add(b)
		}
		sparse := sb.Finish()
		if flat.Sparse != nil || sparse.Table != nil {
			t.Fatal("backend selection wrong")
		}
		if flat.Accesses != sparse.Accesses || flat.Compulsory != sparse.Compulsory ||
			flat.Capacity != sparse.Capacity || flat.Candidates != sparse.Candidates ||
			flat.TotalPairs != sparse.TotalPairs {
			t.Fatalf("trial %d: counters differ: %+v vs %+v", trial, flat, sparse)
		}
		for v := gf2.Vec(0); v < gf2.Vec(1)<<uint(n); v++ {
			if flat.At(v) != sparse.At(v) {
				t.Fatalf("trial %d: At(%v) = %d flat vs %d sparse", trial, v, flat.At(v), sparse.At(v))
			}
		}
		for k := 0; k < 4; k++ {
			sp := randomSubspaceDim(r, n, r.Intn(n+1))
			if flat.EstimateSubspace(sp) != sparse.EstimateSubspace(sp) {
				t.Fatalf("trial %d: EstimateSubspace differs on %v", trial, sp.Basis)
			}
			rep := gf2.Vec(r.Uint64()) & gf2.Mask(n)
			if flat.EstimateDelta(sp.Basis, rep) != sparse.EstimateDelta(sp.Basis, rep) {
				t.Fatalf("trial %d: EstimateDelta differs on %v rep=%v", trial, sp.Basis, rep)
			}
		}
		sf := flat.Support()
		ss := sparse.Support()
		if len(sf) != len(ss) {
			t.Fatalf("trial %d: support sizes differ: %d vs %d", trial, len(sf), len(ss))
		}
		for i := range sf {
			if sf[i] != ss[i] {
				t.Fatalf("trial %d: support[%d] differs: %+v vs %+v", trial, i, sf[i], ss[i])
			}
		}
	}
}

// TestSparseWideAddressSmoke exercises the lifted width limit: a 40-bit
// profile must build, estimate (via the support scan — the null space
// has 2^32 members) and merge without materialising 2^40 counters.
func TestSparseWideAddressSmoke(t *testing.T) {
	const n, m = 40, 8
	// Four wide blocks with identical (zero) low bits: they collide in
	// set 0 under modulo indexing but fit a 4-block FA cache, so every
	// re-reference is a conflict candidate.
	ws := []uint64{1 << 30, 1 << 31, 1 << 32, 1<<30 | 1<<31}
	var blocks []uint64
	for rep := 0; rep < 8; rep++ {
		blocks = append(blocks, ws...)
	}
	p := Build(blocks, n, len(ws))
	if p.Table != nil || p.Sparse == nil {
		t.Fatal("n=40 must select the sparse backend")
	}
	conv := p.EstimateConventional(m)
	// Brute-force oracle over the support: v is a conventional conflict
	// iff its low m bits are zero.
	var want uint64
	p.ForEachNonZero(func(v gf2.Vec, c uint64) {
		if v&gf2.Mask(m) == 0 {
			want += c
		}
	})
	if conv == 0 || conv != want {
		t.Fatalf("conventional estimate = %d, support oracle = %d", conv, want)
	}
	o := Build(blocks, n, len(ws))
	if err := p.Merge(o); err != nil {
		t.Fatal(err)
	}
	if got := p.EstimateConventional(m); got != 2*conv {
		t.Fatalf("merged estimate = %d, want %d", got, 2*conv)
	}
	if hot := p.HotVectors(4); len(hot) == 0 {
		t.Fatal("HotVectors empty on a conflicting trace")
	}
}

// TestMergeBackendMismatch pins the flat-vs-sparse merge error.
func TestMergeBackendMismatch(t *testing.T) {
	flat := Build([]uint64{1, 2, 1, 2}, 8, 4)
	sb := NewSparseBuilder(8, 4)
	for _, b := range []uint64{1, 2, 1, 2} {
		sb.Add(b)
	}
	if err := flat.Merge(sb.Finish()); !errors.Is(err, xerr.ErrProfileMismatch) {
		t.Fatalf("merging sparse into flat: err = %v, want ErrProfileMismatch", err)
	}
}
