package profile

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xoridx/internal/gf2"
)

// quickTrace generates short structured block traces mixing strides,
// ping-pongs and random touches in a 10-bit block space.
type quickTrace struct{ Blocks []uint64 }

// Generate implements quick.Generator.
func (quickTrace) Generate(r *rand.Rand, size int) reflect.Value {
	n := 200 + r.Intn(800)
	blocks := make([]uint64, 0, n)
	for len(blocks) < n {
		switch r.Intn(3) {
		case 0: // stride burst
			stride := uint64(1) << uint(r.Intn(8))
			base := uint64(r.Intn(1024))
			for i := uint64(0); i < 16; i++ {
				blocks = append(blocks, (base+i*stride)&1023)
			}
		case 1: // ping-pong
			a, b := uint64(r.Intn(1024)), uint64(r.Intn(1024))
			for i := 0; i < 10; i++ {
				blocks = append(blocks, a, b)
			}
		default: // random touches
			for i := 0; i < 8; i++ {
				blocks = append(blocks, uint64(r.Intn(1024)))
			}
		}
	}
	return reflect.ValueOf(quickTrace{Blocks: blocks[:n]})
}

var quickCfg = &quick.Config{MaxCount: 60}

func TestQuickProfileAccounting(t *testing.T) {
	// accesses = compulsory + capacity + candidates; table sums to
	// TotalPairs; Table[0] is always zero — on arbitrary traces.
	f := func(qt quickTrace) bool {
		p := Build(qt.Blocks, 10, 64)
		if p.Accesses != p.Compulsory+p.Capacity+p.Candidates {
			return false
		}
		var sum uint64
		for _, c := range p.Table {
			sum += c
		}
		return sum == p.TotalPairs && p.Table[0] == 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEstimateMonotoneInNullSpace(t *testing.T) {
	// If N(H1) ⊆ N(H2) then misses(H1) <= misses(H2): a larger null
	// space can only admit more conflict vectors (Eq. 4 is a sum of
	// non-negative terms over the null space).
	f := func(qt quickTrace, seed int64) bool {
		p := Build(qt.Blocks, 10, 64)
		r := rand.New(rand.NewSource(seed))
		// Build a chain: small subspace ⊂ extended subspace.
		small := gf2.Span(10, gf2.Vec(r.Uint64())&gf2.Mask(10), gf2.Vec(r.Uint64())&gf2.Mask(10))
		var v gf2.Vec
		for {
			v = gf2.Vec(r.Uint64()) & gf2.Mask(10)
			if !small.Contains(v) {
				break
			}
		}
		big := small.Extend(v)
		return p.EstimateSubspace(small) <= p.EstimateSubspace(big)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEstimateInvariantUnderRecombination(t *testing.T) {
	// Post-multiplying H by an invertible matrix changes H but not its
	// estimate (same null space) — the paper's §2 equivalence.
	f := func(qt quickTrace, seed int64) bool {
		p := Build(qt.Blocks, 10, 64)
		r := rand.New(rand.NewSource(seed))
		var h gf2.Matrix
		for {
			h = gf2.NewMatrix(10, 5)
			for c := range h.Cols {
				h.Cols[c] = gf2.Vec(r.Uint64()) & gf2.Mask(10)
			}
			if h.Rank() == 5 {
				break
			}
		}
		b := gf2.RandomInvertible(5, r.Uint64)
		return p.EstimateMatrix(h) == p.EstimateMatrix(h.Mul(b))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBuilderEquivalence(t *testing.T) {
	// Incremental building matches batch building on arbitrary traces.
	f := func(qt quickTrace) bool {
		want := Build(qt.Blocks, 10, 32)
		b := NewBuilder(10, 32)
		for _, blk := range qt.Blocks {
			b.Add(blk)
		}
		got := b.Finish()
		if got.TotalPairs != want.TotalPairs || got.Capacity != want.Capacity {
			return false
		}
		for v := range want.Table {
			if got.Table[v] != want.Table[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
