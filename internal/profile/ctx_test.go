package profile

import (
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"xoridx/internal/xerr"
)

// syntheticBlocks builds a block sequence long enough that every shard
// of a parallel build crosses the amortised cancellation check at least
// once (ctxCheckEvery accesses).
func syntheticBlocks(n int) []uint64 {
	blocks := make([]uint64, n)
	for i := range blocks {
		blocks[i] = uint64(i*67+i/3) & 0xfff
	}
	return blocks
}

// waitGoroutines retries until the goroutine count drops back to the
// baseline, failing the test if it does not within the deadline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func wantCanceled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if !errors.Is(err, xerr.ErrCanceled) {
		t.Fatalf("error %v does not wrap xerr.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestBuildCtxMatchesBuild(t *testing.T) {
	blocks := syntheticBlocks(20000)
	want := Build(blocks, 12, 64)
	got, err := BuildCtx(context.Background(), blocks, 12, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffProfiles(got, want); d != "" {
		t.Fatal(d)
	}
}

func TestBuildCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildCtx(ctx, syntheticBlocks(100), 12, 64)
	wantCanceled(t, err)
}

func TestBuildParallelCtxCanceled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// 2 workers x 10000 accesses: each shard crosses the periodic check.
	_, err := BuildParallelCtx(ctx, syntheticBlocks(20000), 12, 64, ParallelOptions{Workers: 2})
	wantCanceled(t, err)
	waitGoroutines(t, baseline)
}

func TestBuildStreamCtxCanceledBeforeRead(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := func(dst []uint64) (int, error) {
		t.Error("source must not be read under a canceled context")
		return 0, io.EOF
	}
	_, err := BuildStreamCtx(ctx, src, 12, 64, ParallelOptions{Workers: 2})
	wantCanceled(t, err)
	waitGoroutines(t, baseline)
}

// TestBuildParallelCtxCancelDuringExchange cancels from inside the last
// shard's hook while the earlier shards are finishing: cancellation
// lands in the window where completed shards are handing their gate
// summaries to the reconciler. The call must surface ErrCanceled,
// return no profile, and leave no goroutine behind.
func TestBuildParallelCtxCancelDuringExchange(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testShardHook = func(idx int) {
		if idx == 3 {
			cancel()
		}
	}
	defer func() { testShardHook = nil }()
	// 4 shards x 30000 accesses: every shard crosses the periodic check.
	p, err := BuildParallelCtx(ctx, syntheticBlocks(120000), 12, 64, ParallelOptions{Workers: 4})
	wantCanceled(t, err)
	if p != nil {
		t.Fatal("canceled parallel build must not return a profile")
	}
	waitGoroutines(t, baseline)
}

// TestBuildStreamCtxCancelDuringMerge cancels from a late chunk's hook,
// after earlier chunks have already been absorbed by the collector —
// cancellation mid-reconciliation, not mid-read. Without a checkpoint
// the stream build must drop the partial state entirely.
func TestBuildStreamCtxCancelDuringMerge(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testShardHook = func(idx int) {
		if idx == 5 {
			cancel()
		}
	}
	defer func() { testShardHook = nil }()
	p, err := BuildStreamCtx(ctx, sliceSource(syntheticBlocks(100000)), 12, 64,
		ParallelOptions{Workers: 3, ChunkSize: 8192})
	wantCanceled(t, err)
	if p != nil {
		t.Fatal("canceled stream build without a checkpoint must not return a profile")
	}
	waitGoroutines(t, baseline)
}

func TestBuildStreamCtxCanceledMidStream(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks := syntheticBlocks(1 << 14)
	reads := 0
	src := func(dst []uint64) (int, error) {
		reads++
		if reads == 2 {
			cancel() // the dispatcher must notice before the next read
		}
		k := copy(dst, blocks)
		return k, nil
	}
	_, err := BuildStreamCtx(ctx, src, 12, 64, ParallelOptions{Workers: 2, ChunkSize: len(blocks)})
	wantCanceled(t, err)
	if reads > 3 {
		t.Errorf("dispatcher kept reading after cancellation: %d reads", reads)
	}
	waitGoroutines(t, baseline)
}
