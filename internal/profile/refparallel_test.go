package profile

// The pre-rebuild sharded builder, retained as a test-only reference:
// each shard replays a warmup window of cacheBlocks+1 distinct blocks
// preceding it (stack state only, no counting), tracks per-access
// first-touch and seen sets, and a map-based merge pass repairs the
// compulsory/capacity split at boundaries. It was proven exact by the
// PR 1–5 differential batteries, which makes it a trustworthy third
// implementation to race against the gate-summary scheme that replaced
// it (the two share the reconciliation *problem* but no reconciliation
// code). Kept synchronous — the goroutine fan-out is the production
// builder's concern, not the reference's.

import (
	"math/rand"
	"testing"
)

// refWarmStart is the old warmStart: the start index of the shortest
// window ending just before start that contains `distinct` distinct
// blocks, or 0 when the whole prefix holds fewer.
func refWarmStart(blocks []uint64, start, distinct int, mask uint64) int {
	seen := make(map[uint64]struct{}, distinct)
	i := start
	for i > 0 && len(seen) < distinct {
		i--
		seen[blocks[i]&mask] = struct{}{}
	}
	return i
}

// refBuildParallel is the old BuildParallel at its exact (default)
// overlap of cacheBlocks+1 distinct blocks, run shard by shard.
func refBuildParallel(blocks []uint64, n, cacheBlocks int, sparse bool, workers int) *Profile {
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers < 1 {
		workers = 1
	}
	mask := uint64(1)<<uint(n) - 1
	out := newBuilder(n, cacheBlocks, sparse).Finish()
	seen := make(map[uint64]struct{})
	for w := 0; w < workers; w++ {
		start := w * len(blocks) / workers
		end := (w + 1) * len(blocks) / workers
		ws := refWarmStart(blocks, start, cacheBlocks+1, mask)
		bd := newBuilder(n, cacheBlocks, sparse)
		for _, b := range blocks[ws:start] {
			bd.Warm(b)
		}
		var firstTouch []uint64
		shardSeen := make(map[uint64]struct{})
		for _, raw := range blocks[start:end] {
			b := raw & mask
			if !bd.Seen(b) {
				firstTouch = append(firstTouch, b)
			}
			bd.Add(b)
			shardSeen[b] = struct{}{}
		}
		p := bd.Finish()
		for _, b := range firstTouch {
			if _, ok := seen[b]; ok {
				// A shard-local first touch of a block an earlier shard
				// accessed: the exact warmup guarantees its true reuse
				// distance exceeds the filter, so it is a capacity miss.
				p.Compulsory--
				p.Capacity++
			}
		}
		if err := out.Merge(p); err != nil {
			panic(err)
		}
		for b := range shardSeen {
			seen[b] = struct{}{}
		}
	}
	return out
}

// TestRefParallelMatchesSequential keeps the retained reference honest
// on its own: it must still match the sequential Build bit for bit, so
// a three-way disagreement in the differential matrix always has a
// majority.
func TestRefParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		blocks := randomOracleTrace(r)
		n := 4 + r.Intn(7)
		cacheBlocks := 1 << uint(r.Intn(6))
		want := Build(blocks, n, cacheBlocks)
		for _, workers := range []int{1, 3, 7} {
			got := refBuildParallel(blocks, n, cacheBlocks, false, workers)
			if d := diffProfiles(got, want); d != "" {
				t.Fatalf("trial %d (n=%d cap=%d) workers=%d: %s",
					trial, n, cacheBlocks, workers, d)
			}
		}
	}
}
