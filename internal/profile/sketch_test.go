package profile

// Tests for the count-min histogram backend (sketch.go): the
// randomized differential against the exact sparse backend, merge
// geometry rules, heavy-hitter tracking, and the (ε, δ) accounting.

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// wideSupportBlocks scatters strided walks across a 24-bit block
// space so the exact histogram's support is far wider than a sketch
// row, forcing collisions the bound has to absorb.
func wideSupportBlocks(rng *rand.Rand, length int) []uint64 {
	blocks := make([]uint64, 0, length)
	for len(blocks) < length {
		set := 16 + rng.Intn(40)
		base := uint64(rng.Intn(1 << 24))
		for rep := 0; rep < 2 && len(blocks) < length; rep++ {
			for i := 0; i < set && len(blocks) < length; i++ {
				blocks = append(blocks, (base+uint64(i)*64)&(1<<24-1))
			}
		}
	}
	return blocks
}

// TestSketchDifferentialAgainstSparse is the randomized differential:
// identical classification counters, and every point query bounded by
// [true, true + Slack] with at most a δ fraction of violations of the
// tighter half.
func TestSketchDifferentialAgainstSparse(t *testing.T) {
	blocks := wideSupportBlocks(rand.New(rand.NewSource(71)), 40_000)
	sparse, err := BuildParallelOpts(blocks, 24, 64, ParallelOptions{Workers: 1, ForceSparse: true})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildParallelOpts(blocks, 24, 64, ParallelOptions{
		Workers: 1, Sketch: &SketchOptions{Width: 1 << 8, TopK: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffCounters(sk, sparse); d != "" {
		t.Fatal(d)
	}
	if sk.Sketch == nil || sk.Backend() != "sketch" {
		t.Fatalf("backend is %q, want sketch", sk.Backend())
	}
	if sk.Sketch.Total != sparse.TotalPairs {
		t.Fatalf("sketch absorbed %d increments, sparse counted %d", sk.Sketch.Total, sparse.TotalPairs)
	}
	slack := sk.Sketch.Slack()
	_, delta := sk.Sketch.ErrorBound()
	support, violations := 0, 0
	sparse.ForEachNonZero(func(v gf2.Vec, c uint64) {
		support++
		got := sk.At(v)
		if got < c {
			t.Fatalf("sketch underestimates %#x: %d < %d", uint64(v), got, c)
		}
		if got > c+slack {
			violations++
		}
	})
	if support < 300 {
		t.Fatalf("support %d too small for a meaningful differential", support)
	}
	if float64(violations) > delta*float64(support) {
		t.Fatalf("%d of %d point queries exceed the slack %d (δ allows %.0f)",
			violations, support, slack, delta*float64(support))
	}
	if sk.HistogramBytes() >= sparse.HistogramBytes() {
		t.Fatalf("sketch histogram (%d B) not smaller than sparse (%d B)",
			sk.HistogramBytes(), sparse.HistogramBytes())
	}
}

// TestSketchShardedMergeStaysBounded: a multi-worker sketch build is
// not bit-identical to a sequential one (conservative update is order
// dependent) but every merged counter must remain an upper bound.
func TestSketchShardedMergeStaysBounded(t *testing.T) {
	blocks := wideSupportBlocks(rand.New(rand.NewSource(72)), 20_000)
	sparse, err := BuildParallelOpts(blocks, 24, 64, ParallelOptions{Workers: 1, ForceSparse: true})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildParallelOpts(blocks, 24, 64, ParallelOptions{
		Workers: 4, Sketch: &SketchOptions{Width: 1 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffCounters(sk, sparse); d != "" {
		t.Fatal(d)
	}
	sparse.ForEachNonZero(func(v gf2.Vec, c uint64) {
		if got := sk.At(v); got < c {
			t.Fatalf("merged sketch underestimates %#x: %d < %d", uint64(v), got, c)
		}
	})
}

func TestSketchMergeGeometryMismatch(t *testing.T) {
	a := NewSketch(SketchOptions{Width: 1 << 8, Depth: 4})
	for _, o := range []SketchOptions{
		{Width: 1 << 9, Depth: 4},
		{Width: 1 << 8, Depth: 3},
		{Width: 1 << 8, Depth: 4, Seed: 1},
	} {
		if err := a.Merge(NewSketch(o)); !errors.Is(err, xerr.ErrProfileMismatch) {
			t.Fatalf("merge with %+v returned %v, want ErrProfileMismatch", o, err)
		}
	}
}

func TestSketchOptionsValidate(t *testing.T) {
	for _, bad := range []SketchOptions{
		{Width: 3},
		{Width: 1},
		{Width: -4},
		{Depth: 17},
		{Depth: -1},
		{TopK: -1},
	} {
		if err := bad.Validate(); !errors.Is(err, xerr.ErrInvalidOptions) {
			t.Fatalf("Validate(%+v) = %v, want ErrInvalidOptions", bad, err)
		}
	}
	if err := (SketchOptions{}).Validate(); err != nil {
		t.Fatalf("zero options (defaults) rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewSketch accepted invalid options")
		}
	}()
	NewSketch(SketchOptions{Width: 5})
}

// TestSketchHeavyHitters: the CM-heap must retain the truly heavy
// vectors (at estimates at least their true counts) and support() must
// come back vector-sorted, since the search engine binary-partitions
// support sweeps.
func TestSketchHeavyHitters(t *testing.T) {
	s := NewSketch(SketchOptions{Width: 1 << 10, Depth: 4, TopK: 8})
	for v := uint64(1); v <= 100; v++ {
		s.Inc(v)
	}
	for i := 0; i < 500; i++ {
		s.Inc(0xABC)
	}
	var found bool
	for _, vc := range s.HeavyHitters() {
		if uint64(vc.Vec) == 0xABC {
			found = true
			if vc.Count < 500 {
				t.Fatalf("heavy hitter estimate %d below true count 500", vc.Count)
			}
		}
	}
	if !found {
		t.Fatal("dominant vector evicted from the heavy-hitter set")
	}
	if len(s.HeavyHitters()) > 8 {
		t.Fatalf("tracking %d vectors, TopK is 8", len(s.HeavyHitters()))
	}
	sup := s.support()
	if !sort.SliceIsSorted(sup, func(i, j int) bool { return sup[i].Vec < sup[j].Vec }) {
		t.Fatal("support() not vector-sorted")
	}
}

func TestSketchErrorBoundAccounting(t *testing.T) {
	s := NewSketch(SketchOptions{Width: 1 << 8, Depth: 3, TopK: 4})
	eps, delta := s.ErrorBound()
	if want := math.E / 256; math.Abs(eps-want) > 1e-15 {
		t.Fatalf("ε = %g, want %g", eps, want)
	}
	if want := math.Exp(-3); math.Abs(delta-want) > 1e-15 {
		t.Fatalf("δ = %g, want %g", delta, want)
	}
	for i := 0; i < 1000; i++ {
		s.Inc(uint64(i))
	}
	if want := uint64(math.Ceil(eps * 1000)); s.Slack() != want {
		t.Fatalf("Slack() = %d, want %d", s.Slack(), want)
	}
	if want := 3*256*8 + len(s.HeavyHitters())*48; s.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", s.Bytes(), want)
	}
}

// FuzzSketchBackend feeds arbitrary block streams through both the
// sparse and sketch backends and checks the structural invariants that
// hold unconditionally: identical classification, no underestimates,
// and the total increment count.
func FuzzSketchBackend(f *testing.F) {
	f.Add(uint64(0), []byte{1, 2, 3, 1, 2, 3, 1, 2, 3})
	f.Add(uint64(42), []byte{0x40, 0x80, 0x40, 0x80, 0xC0, 0x40})
	f.Add(uint64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		blocks := make([]uint64, len(data))
		for i, b := range data {
			// Spread bytes across a 16-bit space while keeping heavy
			// low-bit aliasing, so conflicts actually occur.
			blocks[i] = uint64(b) | uint64(b&0xF0)<<8
		}
		sparse, err := BuildParallelOpts(blocks, 16, 4, ParallelOptions{Workers: 1, ForceSparse: true})
		if err != nil {
			t.Fatal(err)
		}
		sk, err := BuildParallelOpts(blocks, 16, 4, ParallelOptions{
			Workers: 1, Sketch: &SketchOptions{Width: 1 << (4 + seed%4), Depth: int(seed%3) + 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := diffCounters(sk, sparse); d != "" {
			t.Fatal(d)
		}
		if sk.Sketch.Total != sparse.TotalPairs {
			t.Fatalf("sketch Total %d, sparse TotalPairs %d", sk.Sketch.Total, sparse.TotalPairs)
		}
		sparse.ForEachNonZero(func(v gf2.Vec, c uint64) {
			if got := sk.At(v); got < c {
				t.Fatalf("underestimate at %#x: %d < %d", uint64(v), got, c)
			}
		})
	})
}
