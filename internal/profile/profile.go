// Package profile implements the profiling phase of the paper's
// construction algorithm (Fig. 1) and the null-space miss estimator
// (Eq. 4).
//
// One pass over the block-address trace maintains an LRU stack. For
// every access to a block x that is neither a compulsory miss (first
// touch) nor a capacity miss (reuse distance larger than the cache
// capacity in blocks), each block y accessed since the previous access
// to x contributes one count to the conflict vector v = x⊕y. Any hash
// function H then incurs an estimated
//
//	misses(H) = Σ_{v ∈ N(H)} misses(v)              (Eq. 4)
//
// conflict misses, because x and y land in the same set exactly when
// x⊕y lies in the null space N(H) (Eq. 2). The histogram is stored as a
// flat 2^n table so a candidate null space of dimension d is scored
// with a 2^d-step Gray-code walk — the trick that makes hill climbing
// over the design space affordable.
package profile

import (
	"fmt"
	"sort"

	"xoridx/internal/gf2"
	"xoridx/internal/lru"
	"xoridx/internal/xerr"
)

// Profile is the conflict-vector histogram gathered from one trace.
type Profile struct {
	N           int      // hashed address bits; vectors are truncated to N bits
	CacheBlocks int      // capacity filter used during profiling
	Table       []uint64 // misses(v) for every v in [0, 2^N)

	// Bookkeeping from the profiling pass.
	Accesses   uint64 // trace length
	Compulsory uint64 // first-touch accesses
	Capacity   uint64 // accesses filtered as capacity misses
	Candidates uint64 // accesses that contributed conflict vectors
	TotalPairs uint64 // total conflict-vector increments
}

// Build runs the Fig. 1 profiling algorithm over a block-address
// sequence. Blocks must already be truncated to n bits (see
// trace.Trace.Blocks). cacheBlocks is the cache capacity in blocks used
// for the capacity-miss filter.
func Build(blocks []uint64, n, cacheBlocks int) *Profile {
	b := NewBuilder(n, cacheBlocks)
	for _, blk := range blocks {
		b.Add(blk)
	}
	return b.Finish()
}

// Builder accumulates a Profile incrementally, one block access at a
// time — the streaming form of Build for traces too large to hold in
// memory (feed it straight from a trace decoder).
type Builder struct {
	p     *Profile
	mask  uint64
	stack *lru.Stack
	done  bool
}

// NewBuilder starts an empty profile with the given hashed-address
// width and capacity filter.
func NewBuilder(n, cacheBlocks int) *Builder {
	if n <= 0 || n > 30 {
		panic(fmt.Sprintf("profile: n=%d out of supported range (flat table is 2^n entries)", n))
	}
	if cacheBlocks <= 0 {
		panic("profile: cacheBlocks must be positive")
	}
	return &Builder{
		p: &Profile{
			N:           n,
			CacheBlocks: cacheBlocks,
			Table:       make([]uint64, 1<<uint(n)),
		},
		mask:  uint64(gf2.Mask(n)),
		stack: lru.NewStack(),
	}
}

// Add records one block access (truncated to n bits internally).
func (bd *Builder) Add(block uint64) {
	if bd.done {
		panic("profile: Add after Finish")
	}
	p := bd.p
	b := block & bd.mask
	p.Accesses++
	if !bd.stack.Contains(b) {
		// Compulsory miss: no conflict information.
		p.Compulsory++
		bd.stack.Push(b)
		return
	}
	// Walk the blocks above b. The capacity filter means we never need
	// to walk more than cacheBlocks entries: if the walk does not reach
	// b within that limit, the reuse distance exceeds the cache
	// capacity and the access is a capacity miss.
	_, reached := bd.stack.WalkAbove(b, p.CacheBlocks, func(y uint64) bool {
		p.Table[b^y]++
		p.TotalPairs++
		return true
	})
	if reached {
		p.Candidates++
	} else {
		// Capacity miss: the vectors counted during the aborted walk
		// must be rolled back; re-walk the same prefix to undo.
		p.Capacity++
		bd.stack.WalkAbove(b, p.CacheBlocks, func(y uint64) bool {
			p.Table[b^y]--
			p.TotalPairs--
			return true
		})
	}
	bd.stack.MoveToTop(b)
}

// Warm replays one block access into the LRU stack without counting
// anything: no conflict vectors, no bookkeeping. It reconstructs the
// stack context at a shard boundary so a chunked builder classifies the
// accesses of its own shard exactly as a sequential pass would (see
// BuildParallel and DESIGN.md §8).
func (bd *Builder) Warm(block uint64) {
	if bd.done {
		panic("profile: Warm after Finish")
	}
	b := block & bd.mask
	if bd.stack.Contains(b) {
		bd.stack.MoveToTop(b)
	} else {
		bd.stack.Push(b)
	}
}

// Seen reports whether the block is on the builder's LRU stack, i.e.
// has been passed to Add or Warm before. The next Add of an unseen
// block will be classified as a compulsory miss.
func (bd *Builder) Seen(block uint64) bool {
	return bd.stack.Contains(block & bd.mask)
}

// Finish returns the accumulated profile; the builder must not be used
// afterwards.
func (bd *Builder) Finish() *Profile {
	bd.done = true
	return bd.p
}

// EstimateSubspace returns misses(H) per Eq. 4 for a hash function
// whose null space is the given subspace. Cost: 2^dim table reads via a
// Gray-code walk (Subspace.Members order).
func (p *Profile) EstimateSubspace(ns gf2.Subspace) uint64 {
	if ns.N != p.N {
		panic(fmt.Sprintf("profile: subspace ambient %d != profile n %d", ns.N, p.N))
	}
	d := ns.Dim()
	if d > 28 {
		panic("profile: null space too large to enumerate")
	}
	// Exclude v = 0: a block never conflicts with itself; Table[0] is
	// always zero anyway because x != y on the stack walk.
	var sum uint64
	cur := gf2.Vec(0)
	sum += p.Table[0]
	for i := uint64(1); i < uint64(1)<<uint(d); i++ {
		cur ^= ns.Basis[tz(i)]
		sum += p.Table[cur]
	}
	return sum
}

// EstimateBasis scores a null space given directly as a basis slice
// (vectors need not be canonical, only independent). This avoids
// constructing a Subspace in the search inner loop.
func (p *Profile) EstimateBasis(basis []gf2.Vec) uint64 {
	d := len(basis)
	if d > 28 {
		panic("profile: basis too large to enumerate")
	}
	var sum uint64
	cur := gf2.Vec(0)
	sum += p.Table[0]
	for i := uint64(1); i < uint64(1)<<uint(d); i++ {
		cur ^= basis[tz(i)]
		sum += p.Table[cur]
	}
	return sum
}

// EstimateMatrix is EstimateSubspace on the null space of H.
func (p *Profile) EstimateMatrix(h gf2.Matrix) uint64 {
	return p.EstimateSubspace(h.NullSpace())
}

// EstimateConventional returns the estimate for modulo indexing with m
// set bits: the baseline every optimized function is compared against.
func (p *Profile) EstimateConventional(m int) uint64 {
	return p.EstimateSubspace(gf2.SpanUnits(p.N, m, p.N))
}

// HotVectors returns the k most frequent conflict vectors with their
// counts, descending. Useful for diagnosis and for seeding searches.
func (p *Profile) HotVectors(k int) []VectorCount {
	out := make([]VectorCount, 0, k)
	for v, c := range p.Table {
		if c == 0 {
			continue
		}
		out = append(out, VectorCount{Vec: gf2.Vec(v), Count: c})
	}
	sortVectorCounts(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// VectorCount pairs a conflict vector with its accumulated count.
type VectorCount struct {
	Vec   gf2.Vec
	Count uint64
}

func sortVectorCounts(v []VectorCount) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Count != v[j].Count {
			return v[i].Count > v[j].Count
		}
		return v[i].Vec < v[j].Vec
	})
}

func tz(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Merge adds another profile's conflict histogram and bookkeeping into
// p (weighted union: counts simply accumulate). Useful to build one
// compromise function for a set of applications without materialising
// an interleaved trace; both profiles must share n and the capacity
// filter. Note the merged estimate ignores cross-application conflicts
// (it models time-sharing with a flush at every switch).
func (p *Profile) Merge(o *Profile) error {
	if p.N != o.N {
		return fmt.Errorf("profile: cannot merge n=%d into n=%d: %w", o.N, p.N, xerr.ErrProfileMismatch)
	}
	if p.CacheBlocks != o.CacheBlocks {
		return fmt.Errorf("profile: capacity filters differ (%d vs %d blocks): %w", o.CacheBlocks, p.CacheBlocks, xerr.ErrProfileMismatch)
	}
	if len(p.Table) != len(o.Table) {
		return fmt.Errorf("profile: table sizes differ (%d vs %d entries): %w", len(o.Table), len(p.Table), xerr.ErrProfileMismatch)
	}
	for v, c := range o.Table {
		p.Table[v] += c
	}
	p.Accesses += o.Accesses
	p.Compulsory += o.Compulsory
	p.Capacity += o.Capacity
	p.Candidates += o.Candidates
	p.TotalPairs += o.TotalPairs
	return nil
}
