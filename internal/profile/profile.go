// Package profile implements the profiling phase of the paper's
// construction algorithm (Fig. 1) and the null-space miss estimator
// (Eq. 4).
//
// One pass over the block-address trace maintains an LRU stack. For
// every access to a block x that is neither a compulsory miss (first
// touch) nor a capacity miss (reuse distance larger than the cache
// capacity in blocks), each block y accessed since the previous access
// to x contributes one count to the conflict vector v = x⊕y. Any hash
// function H then incurs an estimated
//
//	misses(H) = Σ_{v ∈ N(H)} misses(v)              (Eq. 4)
//
// conflict misses, because x and y land in the same set exactly when
// x⊕y lies in the null space N(H) (Eq. 2). For n up to MaxFlatBits the
// histogram is stored as a flat 2^n table so a candidate null space of
// dimension d is scored with a 2^d-step Gray-code walk — the trick that
// makes hill climbing over the design space affordable. Wider addresses
// switch to a sparse map backend automatically: a trace of length L
// touches at most L·cacheBlocks distinct conflict vectors regardless of
// n, so the histogram support stays bounded while 2^n does not.
package profile

import (
	"fmt"
	"math/bits"
	"sort"

	"xoridx/internal/gf2"
	"xoridx/internal/lru"
	"xoridx/internal/xerr"
)

// MaxFlatBits is the widest hashed-address width stored as a flat
// table (128 MB of counters). NewBuilder selects the sparse map
// backend beyond it.
const MaxFlatBits = 24

// MaxBits is the widest supported hashed-address width (block
// addresses are uint64).
const MaxBits = 64

// Profile is the conflict-vector histogram gathered from one trace.
//
// Exactly one backend is populated: Table for n <= MaxFlatBits, Sparse
// beyond that, or Sketch when a caller opts into the approximate
// count-min backend (see sketch.go). Code that indexes Table directly
// only works on flat profiles; use At, ForEachNonZero or Support to
// stay backend-agnostic.
type Profile struct {
	N           int               // hashed address bits; vectors are truncated to N bits
	CacheBlocks int               // capacity filter used during profiling
	Table       []uint64          // flat backend: misses(v) for every v in [0, 2^N); nil when sparse
	Sparse      map[uint64]uint64 // sparse backend: misses(v) for nonzero entries only; nil when flat
	Sketch      *Sketch           // count-min backend: approximate, never undercounting; nil otherwise

	// Bookkeeping from the profiling pass.
	Accesses   uint64 // trace length
	Compulsory uint64 // first-touch accesses
	Capacity   uint64 // accesses filtered as capacity misses
	Candidates uint64 // accesses that contributed conflict vectors
	TotalPairs uint64 // total conflict-vector increments (raw, i.e. sampled counts when SampleK > 1)

	// Sampling bookkeeping (see sample.go). SampleK <= 1 means the
	// histogram is exact; SampleK = k means only every k-th conflict
	// candidate's reuse interval was walked, so histogram counts and
	// TotalPairs are a deterministic ~1/k subsample. Classification
	// counters (Compulsory/Capacity/Candidates) remain exact either
	// way. SampledCandidates counts the candidates actually walked.
	SampleK           uint64
	SampleSeed        uint64
	SampledCandidates uint64

	// Degraded marks a partial profile: the build was canceled (or hit
	// its deadline) and returned its best-so-far histogram alongside
	// the error instead of discarding the work. Accesses then counts
	// how far into the trace the pass got. A degraded profile is exact
	// for the prefix it covers and safe to search over, but its
	// estimates undercount the full trace.
	Degraded bool
}

// Build runs the Fig. 1 profiling algorithm over a block-address
// sequence. Blocks must already be truncated to n bits (see
// trace.Trace.Blocks). cacheBlocks is the cache capacity in blocks used
// for the capacity-miss filter.
func Build(blocks []uint64, n, cacheBlocks int) *Profile {
	b := NewBuilder(n, cacheBlocks)
	for _, blk := range blocks {
		b.Add(blk)
	}
	return b.Finish()
}

// Builder accumulates a Profile incrementally, one block access at a
// time — the streaming form of Build for traces too large to hold in
// memory (feed it straight from a trace decoder).
//
// The hot path is distance-gated (DESIGN.md §12): every access first
// classifies its reuse distance against the capacity filter with one
// Olken order-statistics query (or none, when the raw access gap
// already proves the distance fits), so a
// capacity miss is classified without visiting a single stack entry
// and a conflict candidate walks the arena stack exactly once, with
// no rollback path.
type Builder struct {
	p     *Profile
	mask  uint64
	stack *lru.Stack
	tree  *lru.DistanceTree
	stats BuildStats
	done  bool

	// Sampling gate (see sample.go). sampleK <= 1 profiles every
	// candidate; otherwise sampleCount is the 1-indexed ordinal of the
	// conflict candidate just seen and sampleNext the next ordinal
	// whose reuse interval will be walked.
	sampleK     uint64
	sampleCount uint64
	sampleNext  uint64
}

// BuildStats exposes the hot-path probes of a Builder: how many stack
// walks it performed and how much work the distance gate skipped. The
// invariants the tests pin are CandidateWalks == Profile.Candidates,
// WalkSteps == Profile.TotalPairs (every visited entry contributes
// exactly one histogram increment — a rollback scheme would visit
// capacity-miss prefixes twice on top of that), and
// GatedCapacityMisses == Profile.Capacity (no capacity miss ever
// touches the stack). Counters restart at zero on a checkpoint
// restore; they probe the live pass, not the snapshot.
type BuildStats struct {
	CandidateWalks      uint64 // stack walks performed: exactly one per conflict candidate
	WalkSteps           uint64 // stack entries visited across all walks
	GatedCapacityMisses uint64 // capacity misses resolved by the gate alone
}

// Stats returns the builder's hot-path probe counters.
func (bd *Builder) Stats() BuildStats { return bd.stats }

// NewBuilder starts an empty profile with the given hashed-address
// width and capacity filter. It panics on out-of-range arguments (the
// constructor convention; the parallel builders validate and return
// wrapped errors instead — see ValidateGeometry). Widths up to
// MaxFlatBits get the flat table backend; wider profiles are sparse.
func NewBuilder(n, cacheBlocks int) *Builder {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		panic(err)
	}
	return newBuilder(n, cacheBlocks, n > MaxFlatBits)
}

// NewSparseBuilder is NewBuilder forcing the sparse map backend at any
// width — useful for tests and for memory-constrained callers whose
// histogram support is known to be small.
func NewSparseBuilder(n, cacheBlocks int) *Builder {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		panic(err)
	}
	return newBuilder(n, cacheBlocks, true)
}

// ValidateGeometry checks a (n, cacheBlocks) profiling geometry,
// returning a wrapped xerr.ErrInvalidOptions when it is out of domain.
func ValidateGeometry(n, cacheBlocks int) error {
	if n <= 0 || n > MaxBits {
		return fmt.Errorf("profile: n=%d outside (0, %d]: %w", n, MaxBits, xerr.ErrInvalidOptions)
	}
	if cacheBlocks <= 0 {
		return fmt.Errorf("profile: cacheBlocks=%d must be positive: %w", cacheBlocks, xerr.ErrInvalidOptions)
	}
	return nil
}

func newBuilder(n, cacheBlocks int, sparse bool) *Builder {
	p := &Profile{N: n, CacheBlocks: cacheBlocks}
	if sparse {
		p.Sparse = make(map[uint64]uint64)
	} else {
		p.Table = make([]uint64, 1<<uint(n))
	}
	return &Builder{
		p:     p,
		mask:  uint64(gf2.Mask(n)),
		stack: lru.NewStack(),
		tree:  lru.NewDistanceTree(),
	}
}

// Add records one block access (truncated to n bits internally).
func (bd *Builder) Add(block uint64) {
	if bd.done {
		panic("profile: Add after Finish")
	}
	p := bd.p
	b := block & bd.mask
	p.Accesses++
	// Distance gate: one O(log u) order-statistics query (skipped
	// entirely when the raw access gap already proves the distance is
	// within the filter) classifies the access before any stack entry
	// is visited. A capacity miss — which the old code paid a bounded
	// walk plus a full rollback re-walk to discover — now costs no
	// walk at all.
	switch bd.tree.TouchGate(b, p.CacheBlocks) {
	case lru.GateCold:
		// Compulsory miss: no conflict information.
		p.Compulsory++
		bd.stack.Push(b)
		return
	case lru.GateBeyond:
		p.Capacity++
		bd.stats.GatedCapacityMisses++
		bd.stack.MoveToTop(b)
		return
	}
	// Conflict candidate: the blocks above b are exactly the blocks
	// accessed since its previous access, and the gate guarantees the
	// walk reaches b within the filter. Walk them once, accumulating
	// straight into the active backend — no callback, no per-element
	// backend branch, no undo path — and batch the pair bookkeeping.
	target, _ := bd.stack.Index(b)
	p.Candidates++
	if k := bd.sampleK; k > 1 {
		// Sampling gate (sample.go): only every k-th candidate walks;
		// a skipped one still refreshes its recency, so the LRU state
		// — and every later classification — stays exact.
		if bd.sampleCount++; bd.sampleCount != bd.sampleNext {
			bd.stack.MoveIndexToTop(target)
			return
		}
		bd.sampleNext += k
		p.SampledCandidates++
	}
	nodes, top := bd.stack.Raw()
	d := uint64(0)
	if tbl := p.Table; tbl != nil {
		for i := top; i != target; i = nodes[i].Next {
			tbl[b^nodes[i].Block]++
			d++
		}
	} else if sk := p.Sketch; sk != nil {
		for i := top; i != target; i = nodes[i].Next {
			sk.Inc(b ^ nodes[i].Block)
			d++
		}
	} else {
		sp := p.Sparse
		for i := top; i != target; i = nodes[i].Next {
			sp[b^nodes[i].Block]++
			d++
		}
	}
	p.TotalPairs += d
	bd.stats.CandidateWalks++
	bd.stats.WalkSteps += d
	bd.stack.MoveIndexToTop(target)
}

// Warm replays one block access into the LRU stack without counting
// anything: no conflict vectors, no bookkeeping. It reconstructs the
// stack context at a shard boundary so a chunked builder classifies the
// accesses of its own shard exactly as a sequential pass would (see
// BuildParallel and DESIGN.md §8).
func (bd *Builder) Warm(block uint64) {
	if bd.done {
		panic("profile: Warm after Finish")
	}
	b := block & bd.mask
	if bd.tree.Record(b) {
		bd.stack.Push(b)
	} else {
		bd.stack.MoveToTop(b)
	}
}

// Seen reports whether the block is on the builder's LRU stack, i.e.
// has been passed to Add or Warm before. The next Add of an unseen
// block will be classified as a compulsory miss.
func (bd *Builder) Seen(block uint64) bool {
	return bd.stack.Contains(block & bd.mask)
}

// GateSummary exports the builder's boundary state for the sharded
// merge (DESIGN.md §13): its distinct blocks in first-touch order and
// in final recency order, read straight off the arena stack with no
// per-access bookkeeping during the pass. Only meaningful for a builder
// that ran its accesses from cold (the first-touch order of a
// checkpoint-restored builder is the snapshot's recency order, not the
// original trace's).
func (bd *Builder) GateSummary() lru.GateSummary {
	return bd.stack.Summary()
}

// Finish returns the accumulated profile; the builder must not be used
// afterwards.
func (bd *Builder) Finish() *Profile {
	bd.done = true
	return bd.p
}

// At returns misses(v), the histogram count of one conflict vector,
// regardless of backend. On the sketch backend the value is the
// count-min estimate: an upper bound within the (ε, δ) guarantee.
func (p *Profile) At(v gf2.Vec) uint64 {
	if p.Table != nil {
		return p.Table[v]
	}
	if p.Sketch != nil {
		return p.Sketch.At(uint64(v))
	}
	return p.Sparse[uint64(v)]
}

// ForEachNonZero calls fn for every nonzero histogram entry. Order is
// ascending for the flat backend and unspecified for the sparse one;
// use Support when a deterministic order matters. On the sketch
// backend only the tracked heavy hitters are enumerable — the tail is
// reachable through point queries (At) but not through enumeration.
func (p *Profile) ForEachNonZero(fn func(v gf2.Vec, count uint64)) {
	if p.Table != nil {
		for v, c := range p.Table {
			if c != 0 {
				fn(gf2.Vec(v), c)
			}
		}
		return
	}
	if p.Sketch != nil {
		for _, vc := range p.Sketch.HeavyHitters() {
			fn(vc.Vec, vc.Count)
		}
		return
	}
	for v, c := range p.Sparse {
		fn(gf2.Vec(v), c)
	}
}

// Support returns the nonzero (vector, count) entries of the histogram
// in ascending vector order — the working set the incremental search
// engine sweeps per hyperplane instead of Gray-walking 2^d entries per
// candidate. The result is allocated exactly once: the flat backend
// counts its nonzero entries in a first pass (and is already in
// ascending order, so no sort is needed), the sparse backend sizes the
// slice from the map population.
func (p *Profile) Support() []VectorCount {
	if p.Sketch != nil {
		return p.Sketch.support()
	}
	if p.Table != nil {
		nonzero := 0
		for _, c := range p.Table {
			if c != 0 {
				nonzero++
			}
		}
		out := make([]VectorCount, 0, nonzero)
		for v, c := range p.Table {
			if c != 0 {
				out = append(out, VectorCount{Vec: gf2.Vec(v), Count: c})
			}
		}
		return out
	}
	out := make([]VectorCount, 0, len(p.Sparse))
	for v, c := range p.Sparse {
		out = append(out, VectorCount{Vec: gf2.Vec(v), Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vec < out[j].Vec })
	return out
}

// EstimateSubspace returns misses(H) per Eq. 4 for a hash function
// whose null space is the given subspace. Cost: 2^dim table reads via a
// Gray-code walk (Subspace.Members order) while the dimension is
// enumerable; for larger null spaces it scans the histogram support and
// tests membership instead, which lifts the old dim <= 28 panic.
func (p *Profile) EstimateSubspace(ns gf2.Subspace) uint64 {
	if ns.N != p.N {
		panic(fmt.Sprintf("profile: subspace ambient %d != profile n %d", ns.N, p.N))
	}
	if ns.Dim() > maxWalkDim {
		return p.estimateSupport(ns.Basis)
	}
	return p.walkSum(ns.Basis)
}

// maxWalkDim bounds the Gray-code walk: past 2^28 entries the
// support-scan route is both feasible and faster.
const maxWalkDim = 28

// EstimateBasis scores a null space given directly as a basis slice
// (vectors need not be canonical, only independent). This avoids
// constructing a Subspace in the search inner loop.
func (p *Profile) EstimateBasis(basis []gf2.Vec) uint64 {
	if len(basis) > maxWalkDim {
		// Membership tests need a canonical basis; build one.
		return p.estimateSupport(gf2.Span(p.N, basis...).Basis)
	}
	return p.walkSum(basis)
}

// walkSum Gray-walks span(basis) against the histogram. The v = 0 term
// is included for symmetry but always zero: a block never conflicts
// with itself (x != y on the stack walk).
func (p *Profile) walkSum(basis []gf2.Vec) uint64 {
	sum := p.At(0)
	cur := gf2.Vec(0)
	for i := uint64(1); i < uint64(1)<<uint(len(basis)); i++ {
		cur ^= basis[bits.TrailingZeros64(i)]
		sum += p.At(cur)
	}
	return sum
}

// estimateSupport sums misses(v) over the support vectors lying in
// span(basis); basis must be canonical (distinct leading bits). Cost:
// one reduction per nonzero histogram entry, independent of dimension.
func (p *Profile) estimateSupport(basis []gf2.Vec) uint64 {
	var sum uint64
	p.ForEachNonZero(func(v gf2.Vec, c uint64) {
		if gf2.Reduce(v, basis) == 0 {
			sum += c
		}
	})
	return sum
}

// EstimateDelta returns Σ misses(v) over the coset span(w) ⊕ rep — the
// incremental term of DESIGN.md §10: a neighbour span(W, rep) of a null
// space splits into span(W) ∪ (span(W) ⊕ rep), so its Eq. 4 estimate is
// the hyperplane's partial sum plus this delta. Cost: 2^len(w) reads,
// half of re-walking the full neighbour (falling back to a support scan
// when w itself is too large to enumerate).
func (p *Profile) EstimateDelta(w []gf2.Vec, rep gf2.Vec) uint64 {
	rep &= gf2.Mask(p.N)
	if len(w) > maxWalkDim {
		sp := gf2.Span(p.N, w...)
		want := gf2.Reduce(rep, sp.Basis)
		var sum uint64
		p.ForEachNonZero(func(v gf2.Vec, c uint64) {
			if gf2.Reduce(v, sp.Basis) == want {
				sum += c
			}
		})
		return sum
	}
	sum := p.At(rep)
	cur := rep
	for i := uint64(1); i < uint64(1)<<uint(len(w)); i++ {
		cur ^= w[bits.TrailingZeros64(i)]
		sum += p.At(cur)
	}
	return sum
}

// EstimateMatrix is EstimateSubspace on the null space of H.
func (p *Profile) EstimateMatrix(h gf2.Matrix) uint64 {
	return p.EstimateSubspace(h.NullSpace())
}

// EstimateConventional returns the estimate for modulo indexing with m
// set bits: the baseline every optimized function is compared against.
func (p *Profile) EstimateConventional(m int) uint64 {
	return p.EstimateSubspace(gf2.SpanUnits(p.N, m, p.N))
}

// HotVectors returns the k most frequent conflict vectors with their
// counts, descending. Useful for diagnosis and for seeding searches.
func (p *Profile) HotVectors(k int) []VectorCount {
	var out []VectorCount
	p.ForEachNonZero(func(v gf2.Vec, c uint64) {
		out = append(out, VectorCount{Vec: v, Count: c})
	})
	sortVectorCounts(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// VectorCount pairs a conflict vector with its accumulated count.
type VectorCount struct {
	Vec   gf2.Vec
	Count uint64
}

func sortVectorCounts(v []VectorCount) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Count != v[j].Count {
			return v[i].Count > v[j].Count
		}
		return v[i].Vec < v[j].Vec
	})
}

// Merge adds another profile's conflict histogram and bookkeeping into
// p (weighted union: counts simply accumulate). Useful to build one
// compromise function for a set of applications without materialising
// an interleaved trace; both profiles must share n and the capacity
// filter. Note the merged estimate ignores cross-application conflicts
// (it models time-sharing with a flush at every switch).
func (p *Profile) Merge(o *Profile) error {
	if p.N != o.N {
		return fmt.Errorf("profile: cannot merge n=%d into n=%d: %w", o.N, p.N, xerr.ErrProfileMismatch)
	}
	if p.CacheBlocks != o.CacheBlocks {
		return fmt.Errorf("profile: capacity filters differ (%d vs %d blocks): %w", o.CacheBlocks, p.CacheBlocks, xerr.ErrProfileMismatch)
	}
	if (p.Table == nil) != (o.Table == nil) || (p.Sketch == nil) != (o.Sketch == nil) {
		return fmt.Errorf("profile: histogram backends differ (%s vs %s): %w",
			o.backendName(), p.backendName(), xerr.ErrProfileMismatch)
	}
	if len(p.Table) != len(o.Table) {
		return fmt.Errorf("profile: table sizes differ (%d vs %d entries): %w", len(o.Table), len(p.Table), xerr.ErrProfileMismatch)
	}
	if err := checkSamplingCompatible(p, o); err != nil {
		return err
	}
	switch {
	case p.Table != nil:
		for v, c := range o.Table {
			p.Table[v] += c
		}
	case p.Sketch != nil:
		if err := p.Sketch.Merge(o.Sketch); err != nil {
			return err
		}
	default:
		for v, c := range o.Sparse {
			p.Sparse[v] += c
		}
	}
	p.Accesses += o.Accesses
	p.Compulsory += o.Compulsory
	p.Capacity += o.Capacity
	p.Candidates += o.Candidates
	p.TotalPairs += o.TotalPairs
	p.SampledCandidates += o.SampledCandidates
	p.Degraded = p.Degraded || o.Degraded
	return nil
}

// backendName names the populated histogram backend, for error
// messages and the CLI's -backend flag domain.
func (p *Profile) backendName() string {
	switch {
	case p.Table != nil:
		return "flat"
	case p.Sketch != nil:
		return "sketch"
	default:
		return "sparse"
	}
}

// Backend returns the populated histogram backend's name: "flat",
// "sparse" or "sketch".
func (p *Profile) Backend() string { return p.backendName() }

// HistogramBytes approximates the memory held by the histogram
// backend: exact for the flat table and the sketch rows, and a
// deliberate underestimate for the sparse map (48 bytes per entry —
// key, value and bucket slot, ignoring Go's load-factor headroom), so
// sketch-vs-sparse memory ratios computed from it are conservative.
func (p *Profile) HistogramBytes() int {
	switch {
	case p.Table != nil:
		return len(p.Table) * 8
	case p.Sketch != nil:
		return p.Sketch.Bytes()
	default:
		return len(p.Sparse) * 48
	}
}
