package profile

// Parallel sharded profiling. The Fig. 1 pass is sequential on its face
// (the LRU stack is global state), but the conflict contribution of an
// access depends only on the blocks above it on the stack — at most
// cacheBlocks of them, by the capacity filter. A shard builder that
// first replays a warmup window of the accesses immediately preceding
// its shard (stack state only, no counting) therefore reproduces the
// sequential classification of every shard access, provided the window
// holds enough distinct blocks:
//
//   - If a block's previous access lies inside the warmup window or the
//     shard, the blocks above it on the chunked stack are exactly those
//     the sequential stack holds above it (both are determined by the
//     accesses since its previous access), so the walk counts the same
//     conflict vectors.
//   - If a block's previous access lies before the warmup window, the
//     window's distinct blocks were all accessed since, so with a
//     window of > cacheBlocks distinct blocks the reuse distance
//     exceeds the capacity filter: the sequential pass classifies the
//     access as a capacity miss, contributing nothing to the histogram.
//     The chunked builder classifies it as compulsory — also nothing —
//     and the merge phase repairs the compulsory/capacity split (it
//     knows which shard-local first touches were seen by earlier
//     shards).
//
// Hence with the default overlap of cacheBlocks+1 distinct blocks the
// merged profile is bit-identical to the sequential Build — counters
// included. Smaller overlaps trade warmup cost for a documented,
// one-sided error: the histogram can only undercount, by at most
// cacheBlocks vectors per misclassified boundary access and at most
// cacheBlocks such accesses per shard (see DESIGN.md §8).

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"xoridx/internal/faultio"
	"xoridx/internal/gf2"
	"xoridx/internal/xerr"
)

// ParallelOptions tunes the sharded profiling pipeline.
type ParallelOptions struct {
	// Workers is the number of concurrent shard builders. <= 0 selects
	// GOMAXPROCS. Each worker holds a private 2^n-entry histogram, so
	// memory is Workers × 8·2^n bytes while a build is in flight.
	Workers int

	// Overlap is the warmup depth in distinct blocks: each shard replays
	// the shortest run of accesses preceding it that touches Overlap
	// distinct blocks before counting its own accesses. 0 selects
	// cacheBlocks+1, which makes the parallel profile bit-identical to
	// the sequential one (see the package comment above). Values in
	// (0, cacheBlocks] are approximate: the histogram can only
	// undercount, and only at shard boundaries. Negative disables
	// warmup entirely (independent shards; the worst case).
	Overlap int

	// ChunkSize is the shard length in accesses used by BuildStream
	// (and by BuildParallelOpts when it is smaller than an even
	// per-worker split). 0 selects a default of 64 K accesses.
	ChunkSize int

	// Retry, when MaxRetries > 0, makes BuildStream retry transient
	// source failures (errors wrapping xerr.ErrIO) in place under the
	// policy instead of failing the build. Blocks delivered alongside a
	// transient error are profiled before the fault is retried; the
	// zero value disables retrying (a transient error fails the build
	// like any other).
	Retry faultio.Policy
}

// DefaultChunkSize is the shard length BuildStream uses when
// ParallelOptions.ChunkSize is zero.
const DefaultChunkSize = 1 << 16

func (o ParallelOptions) withDefaults(cacheBlocks int) ParallelOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Overlap == 0 {
		o.Overlap = cacheBlocks + 1
	} else if o.Overlap < 0 {
		o.Overlap = 0
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	return o
}

// BuildParallel is Build fanned out over workers: the trace is split
// into contiguous shards, each profiled concurrently against a warmed
// LRU stack, and the per-shard histograms are merged with boundary
// reconciliation. The result is bit-identical to Build for every
// worker count (the default overlap is exact). Errors carry wrapped
// xerr sentinels (ErrInvalidOptions for an out-of-domain geometry).
func BuildParallel(blocks []uint64, n, cacheBlocks, workers int) (*Profile, error) {
	return BuildParallelOpts(blocks, n, cacheBlocks, ParallelOptions{Workers: workers})
}

// BuildParallelOpts is BuildParallel with explicit sharding controls.
func BuildParallelOpts(blocks []uint64, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	return BuildParallelCtx(context.Background(), blocks, n, cacheBlocks, opt)
}

// BuildParallelCtx is BuildParallelOpts with cooperative cancellation:
// every shard builder checks ctx while it works, so a canceled context
// stops all workers within ctxCheckEvery accesses each and the call
// returns a wrapped xerr.ErrCanceled with no goroutines left behind.
// The geometry is validated before any worker starts, so an invalid
// (n, cacheBlocks) surfaces as a wrapped xerr.ErrInvalidOptions instead
// of a builder panic inside a goroutine.
func BuildParallelCtx(ctx context.Context, blocks []uint64, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(cacheBlocks)
	workers := opt.Workers
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		return BuildCtx(ctx, blocks, n, cacheBlocks)
	}
	mask := uint64(gf2.Mask(n))
	jobs := make([]shardJob, workers)
	for w := 0; w < workers; w++ {
		start := w * len(blocks) / workers
		end := (w + 1) * len(blocks) / workers
		ws := warmStart(blocks, start, opt.Overlap, mask)
		jobs[w] = shardJob{idx: w, warm: blocks[ws:start], blocks: blocks[start:end]}
	}
	results := make([]shardResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range jobs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = recoverShard(jobs[w].idx, func() (shardResult, error) {
				return buildShardCtx(ctx, jobs[w], n, cacheBlocks, mask)
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rc := newReconciler(n, cacheBlocks)
	for _, r := range results {
		if err := rc.add(r); err != nil {
			return nil, err
		}
	}
	return rc.out, nil
}

// BlockSource yields successive chunks of block addresses already
// truncated to n bits, filling dst and returning how many it wrote.
// It follows io.Reader conventions: (k, nil) with k > 0 while data
// remains, then (0, io.EOF); (k > 0, io.EOF) is also accepted.
// trace.Reader.ReadBlocks satisfies this shape via a closure.
type BlockSource func(dst []uint64) (int, error)

// BuildStream profiles a block stream with the sharded pipeline without
// ever materializing the whole trace: the dispatcher reads ChunkSize
// blocks at a time, carries the warmup window between chunks, and fans
// the (warmup, chunk) jobs out to Workers shard builders. Merging is
// in-order and incremental, so at most ~Workers shard histograms are
// alive at once. The exactness guarantee matches BuildParallel: with
// the default overlap the result is bit-identical to a sequential
// Build of the same block sequence, for every worker count and chunk
// size.
func BuildStream(src BlockSource, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	return BuildStreamCtx(context.Background(), src, n, cacheBlocks, opt)
}

// BuildStreamCtx is BuildStream with cooperative cancellation: the
// dispatcher checks ctx before reading each chunk and every in-flight
// shard builder checks it while profiling, so a canceled context stops
// the whole fan-out within ctxCheckEvery accesses per worker. All
// goroutines are joined before the call returns a wrapped
// xerr.ErrCanceled — cancellation never leaks workers.
func BuildStreamCtx(ctx context.Context, src BlockSource, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	if err := opt.Retry.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(cacheBlocks)
	if opt.Retry.MaxRetries > 0 {
		src = RetrySource(ctx, src, opt.Retry)
	}
	mask := uint64(gf2.Mask(n))
	jobs := make(chan shardJob, opt.Workers)
	done := make(chan shardResult, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				r, err := recoverShard(job.idx, func() (shardResult, error) {
					return buildShardCtx(ctx, job, n, cacheBlocks, mask)
				})
				r.idx = job.idx
				r.err = err
				done <- r
			}
		}()
	}
	// Collector: merge results in shard order as they arrive, buffering
	// the out-of-order ones, so completed histograms are released
	// instead of accumulating until the end of the stream. Errored
	// shards still advance the in-order cursor — otherwise a canceled
	// shard would stall every later result in the pending map.
	rc := newReconciler(n, cacheBlocks)
	collected := make(chan struct{})
	var shardErr error
	go func() {
		defer close(collected)
		pending := make(map[int]shardResult)
		next := 0
		for r := range done {
			pending[r.idx] = r
			for {
				nr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if nr.err != nil {
					if shardErr == nil {
						shardErr = nr.err
					}
				} else if shardErr == nil {
					if err := rc.add(nr); err != nil {
						shardErr = err
					}
				}
				next++
			}
		}
	}()

	var tail []uint64
	idx := 0
	var srcErr error
	for {
		if err := xerr.Check(ctx); err != nil {
			srcErr = err
			break
		}
		buf := make([]uint64, opt.ChunkSize)
		k, err := src(buf)
		if k > 0 {
			chunk := buf[:k]
			warm := append([]uint64(nil), tail...)
			jobs <- shardJob{idx: idx, warm: warm, blocks: chunk}
			idx++
			tail = nextTail(tail, chunk, opt.Overlap, mask)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			srcErr = err
			break
		}
		if k == 0 {
			srcErr = fmt.Errorf("profile: block source returned no data and no error: %w", xerr.ErrFormat)
			break
		}
	}
	close(jobs)
	wg.Wait()
	close(done)
	<-collected
	if srcErr != nil {
		return nil, srcErr
	}
	if shardErr != nil {
		return nil, shardErr
	}
	return rc.out, nil
}

// recoverShard runs one shard build, converting a worker panic into a
// wrapped xerr.ErrPanic instead of crashing the process: the fan-out
// then drains normally (no leaked goroutines, no half-merged
// histogram) and the caller sees an ordinary error it can match with
// errors.Is.
func recoverShard(idx int, build func() (shardResult, error)) (res shardResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = shardResult{}
			err = xerr.Panicked(fmt.Sprintf("profile: shard %d", idx), r)
		}
	}()
	return build()
}

// shardJob is one contiguous trace window: warmup accesses (stack state
// only) followed by the shard proper (counted).
type shardJob struct {
	idx    int
	warm   []uint64
	blocks []uint64
}

// shardResult carries a shard's histogram plus the reconciliation data
// the merge phase needs: which blocks the shard classified as first
// touches, and which distinct blocks the shard proper contains. err is
// set (and the rest left zero) when the shard's build was canceled.
type shardResult struct {
	idx        int
	p          *Profile
	firstTouch []uint64
	seen       map[uint64]struct{}
	err        error
}

// buildShardCtx profiles one shard: warmup replay, then the counted
// pass, checking ctx every ctxCheckEvery accesses across both.
func buildShardCtx(ctx context.Context, job shardJob, n, cacheBlocks int, mask uint64) (shardResult, error) {
	bd := NewBuilder(n, cacheBlocks)
	tick := 0
	for _, b := range job.warm {
		if tick++; tick >= ctxCheckEvery {
			tick = 0
			if err := xerr.Check(ctx); err != nil {
				return shardResult{}, err
			}
		}
		bd.Warm(b)
	}
	res := shardResult{seen: make(map[uint64]struct{})}
	for _, blk := range job.blocks {
		if tick++; tick >= ctxCheckEvery {
			tick = 0
			if err := xerr.Check(ctx); err != nil {
				return shardResult{}, err
			}
		}
		b := blk & mask
		if !bd.Seen(b) {
			res.firstTouch = append(res.firstTouch, b)
		}
		bd.Add(b)
		res.seen[b] = struct{}{}
	}
	res.p = bd.Finish()
	return res, nil
}

// reconciler merges shard results in trace order, repairing the
// compulsory/capacity split at boundaries: a shard-local first touch of
// a block some earlier shard already accessed is really a re-reference
// whose reuse distance exceeded the warmup window — with an exact
// overlap that means distance > cacheBlocks, which the sequential pass
// counts as a capacity miss, not a compulsory one. Either way it
// contributes nothing to the histogram, so only the two counters move.
type reconciler struct {
	out  *Profile
	seen map[uint64]struct{}
}

func newReconciler(n, cacheBlocks int) *reconciler {
	return &reconciler{
		out:  NewBuilder(n, cacheBlocks).Finish(),
		seen: make(map[uint64]struct{}),
	}
}

// add folds the next shard (in trace order) into the merged profile.
// A merge failure (a shard built with a different geometry — impossible
// through the exported builders, reachable if the reconciler is ever
// reused across configurations) is returned as Merge's wrapped
// xerr.ErrProfileMismatch rather than panicking in library code.
func (rc *reconciler) add(s shardResult) error {
	for _, b := range s.firstTouch {
		if _, ok := rc.seen[b]; ok {
			s.p.Compulsory--
			s.p.Capacity++
		}
	}
	if err := rc.out.Merge(s.p); err != nil {
		return fmt.Errorf("profile: shard merge: %w", err)
	}
	for b := range s.seen {
		rc.seen[b] = struct{}{}
	}
	return nil
}

// warmStart returns the start index of the shortest window ending just
// before start that contains `distinct` distinct blocks, or 0 when the
// whole prefix holds fewer (then the warmup is the entire prefix and
// the shard sees exactly the sequential stack).
func warmStart(blocks []uint64, start, distinct int, mask uint64) int {
	if distinct <= 0 {
		return start
	}
	seen := make(map[uint64]struct{}, distinct)
	i := start
	for i > 0 && len(seen) < distinct {
		i--
		seen[blocks[i]&mask] = struct{}{}
	}
	return i
}

// nextTail returns the warmup window for the chunk after `chunk`: the
// shortest suffix of tail+chunk containing `distinct` distinct blocks
// (the whole of tail+chunk when it holds fewer). The result is freshly
// allocated; it never aliases tail or chunk, which may be in flight to
// a shard builder.
func nextTail(tail, chunk []uint64, distinct int, mask uint64) []uint64 {
	if distinct <= 0 {
		return nil
	}
	seen := make(map[uint64]struct{}, distinct)
	for i := len(chunk) - 1; i >= 0; i-- {
		seen[chunk[i]&mask] = struct{}{}
		if len(seen) >= distinct {
			return append([]uint64(nil), chunk[i:]...)
		}
	}
	for i := len(tail) - 1; i >= 0; i-- {
		seen[tail[i]&mask] = struct{}{}
		if len(seen) >= distinct {
			out := make([]uint64, 0, len(tail)-i+len(chunk))
			out = append(out, tail[i:]...)
			return append(out, chunk...)
		}
	}
	out := make([]uint64, 0, len(tail)+len(chunk))
	out = append(out, tail...)
	return append(out, chunk...)
}
