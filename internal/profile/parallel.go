package profile

// Parallel sharded profiling via gate-summary exchange (DESIGN.md §13).
//
// The Fig. 1 pass is sequential on its face — the LRU stack is global
// state — but almost none of that state matters across a shard
// boundary. Each shard runs the plain arena-stack Builder from cold,
// with zero per-access overhead over the sequential pass, and exports
// two things the sequential pass would have needed from it:
//
//   - its distinct blocks in first-touch order (the arena slab order),
//   - its distinct blocks in final recency order (its exit LRU stack).
//
// That pair is a lru.GateSummary. A single in-order reconciliation
// pass over the summaries repairs the only classifications a cold
// shard can get wrong — its apparent first touches:
//
//   - Every non-first-touch access has its previous access inside the
//     shard, so the blocks above it on the shard stack are exactly the
//     blocks the sequential stack holds above it. Intra-shard
//     classifications and histogram contributions are bit-identical to
//     the sequential pass.
//   - A shard's j-th first touch of block b that an earlier shard
//     already accessed is really a re-reference. Its sequential reuse
//     distance is |prefix_j ∪ above(b)|, where prefix_j is the shard's
//     j first-touched blocks before it (all accessed since b's previous
//     access) and above(b) the blocks above b on the reconciler's
//     boundary stack — the sequential LRU stack at the shard's start.
//     With j > cacheBlocks the distance already exceeds the filter, so
//     the miss flips compulsory→capacity with no walk at all; otherwise
//     a bounded boundary-stack walk (skipping prefix_j members, early
//     exiting once the union exceeds the filter) either flips it to
//     capacity or counts the conflict pairs b⊕y the cold shard omitted.
//   - Replaying the shard's recency order bottom-up over the boundary
//     stack then yields the sequential LRU stack at the shard's end,
//     because an LRU stack depends only on the order of last accesses.
//
// At most cacheBlocks+1 first touches per shard can reach the walk, and
// each walk visits at most ~2·cacheBlocks entries, so reconciliation is
// O(cacheBlocks²) per boundary — independent of shard length. Histogram
// increments commute, so the merged profile is bit-identical to the
// sequential Build — histogram, every counter, and the BuildStats
// probes — for every worker count and chunk size. This replaces the
// PR 1 warmup-replay scheme (retained verbatim in refparallel_test.go
// as a differential reference), which paid a per-access map write in
// every shard and re-profiled an overlap window per boundary.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"xoridx/internal/faultio"
	"xoridx/internal/lru"
	"xoridx/internal/xerr"
)

// ParallelOptions tunes the sharded profiling pipeline.
type ParallelOptions struct {
	// Workers is the number of concurrent shard builders. <= 0 selects
	// GOMAXPROCS. Each worker holds a private histogram, so memory is
	// Workers × 8·2^n bytes (flat backend) while a build is in flight.
	Workers int

	// ChunkSize is the shard length in accesses used by BuildStream.
	// 0 selects DefaultChunkSize. The dispatcher fills every chunk to
	// exactly this length (short source reads are topped up), so shard
	// boundaries — and therefore gate-summary exchange points — land at
	// fixed multiples of ChunkSize regardless of the source's read
	// granularity. Only the final chunk may be short.
	ChunkSize int

	// ForceSparse selects the sparse histogram backend at any width,
	// like NewSparseBuilder does for the sequential pass.
	ForceSparse bool

	// Stats, when non-nil, receives the merged hot-path probe counters
	// on success: the sum of every shard's BuildStats plus the
	// reconciler's own boundary walks. The sequential invariants
	// CandidateWalks == Candidates, WalkSteps == TotalPairs and
	// GatedCapacityMisses == Capacity hold exactly for the merged
	// counters too (boundary reclassifications count as gated — they
	// never write and then undo a histogram entry).
	Stats *BuildStats

	// Retry, when MaxRetries > 0, makes BuildStream retry transient
	// source failures (errors wrapping xerr.ErrIO) in place under the
	// policy instead of failing the build. Blocks delivered alongside a
	// transient error are profiled before the fault is retried; the
	// zero value disables retrying (a transient error fails the build
	// like any other).
	Retry faultio.Policy

	// Sample enables sampled conflict walks (see sample.go): every
	// access still runs the exact distance gate, but only every K-th
	// conflict candidate is walked into the histogram. Sampling depends
	// on the global candidate ordinal, which an isolated cold shard
	// cannot know, so withDefaults forces Workers to 1 and the stream
	// engine runs a plain sequential consumption loop.
	Sample SampleOptions

	// Sketch, when non-nil, selects the count-min-sketch histogram
	// backend (see sketch.go) instead of flat/sparse. Shard sketches
	// merge entrywise, so parallel sketch builds keep the (ε, δ) error
	// bound but are not bit-identical to a sequential sketch build.
	// Overrides ForceSparse.
	Sketch *SketchOptions
}

// DefaultChunkSize is the shard length BuildStream uses when
// ParallelOptions.ChunkSize is zero.
const DefaultChunkSize = 1 << 16

func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Sample.enabled() {
		// The sampling gate counts global candidate ordinals; cold
		// shards cannot, so sampled builds run sequentially.
		o.Workers = 1
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	return o
}

// validate rejects out-of-domain backend options before any goroutine
// starts.
func (o ParallelOptions) validate() error {
	if o.Sketch != nil {
		return o.Sketch.Validate()
	}
	return nil
}

// sparse reports which histogram backend the options select at width n.
func (o ParallelOptions) sparse(n int) bool {
	return o.ForceSparse || n > MaxFlatBits
}

// newBuilder constructs a cold builder with the histogram backend the
// options select. Sampling is armed separately by the sequential
// paths — shard builders never sample.
func (o ParallelOptions) newBuilder(n, cacheBlocks int) *Builder {
	if o.Sketch != nil {
		return newSketchBuilder(n, cacheBlocks, o.Sketch.withDefaults())
	}
	return newBuilder(n, cacheBlocks, o.sparse(n))
}

// testShardHook, when non-nil, runs at the start of every shard pass
// with the shard index. The cancellation and panic-surfacing tests use
// it to inject failures into a chosen shard; it is nil outside tests.
var testShardHook func(idx int)

// BuildParallel is Build fanned out over workers: the trace is split
// into one contiguous shard per worker, each profiled concurrently from
// a cold arena stack, and the shard histograms are folded together by a
// single reconciliation pass over the exchanged gate summaries. The
// result is bit-identical to Build for every worker count. Errors carry
// wrapped xerr sentinels (ErrInvalidOptions for an out-of-domain
// geometry).
func BuildParallel(blocks []uint64, n, cacheBlocks, workers int) (*Profile, error) {
	return BuildParallelOpts(blocks, n, cacheBlocks, ParallelOptions{Workers: workers})
}

// BuildParallelOpts is BuildParallel with explicit sharding controls.
func BuildParallelOpts(blocks []uint64, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	return BuildParallelCtx(context.Background(), blocks, n, cacheBlocks, opt)
}

// BuildParallelCtx is BuildParallelOpts with cooperative cancellation:
// every shard builder checks ctx while it works, so a canceled context
// stops all workers within ctxCheckEvery accesses each and the call
// returns a wrapped xerr.ErrCanceled with no goroutines left behind.
// The geometry is validated before any worker starts, so an invalid
// (n, cacheBlocks) surfaces as a wrapped xerr.ErrInvalidOptions instead
// of a builder panic inside a goroutine. When both a worker failure and
// a cancellation occur, the non-cancellation root cause wins: a shard
// panic is reported as its wrapped xerr.ErrPanic naming the shard,
// never masked by a secondary ErrCanceled from a sibling.
func BuildParallelCtx(ctx context.Context, blocks []uint64, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	workers := opt.Workers
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		return buildSeqCtx(ctx, blocks, n, cacheBlocks, opt)
	}
	// One fixed-size shard slot per worker, allocated contiguously up
	// front: a worker owns exactly its slot until the barrier, so the
	// shards share no pointers while building.
	shards := make([]shardState, workers)
	for w := 0; w < workers; w++ {
		start := w * len(blocks) / workers
		end := (w + 1) * len(blocks) / workers
		shards[w].idx = w
		shards[w].blocks = blocks[start:end]
	}
	var wg sync.WaitGroup
	for w := range shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			s.run(ctx, n, cacheBlocks, opt)
		}(&shards[w])
	}
	wg.Wait()
	if err := firstShardError(shards); err != nil {
		return nil, err
	}
	rc := newReconciler(n, cacheBlocks, opt)
	for w := range shards {
		if err := rc.absorb(&shards[w]); err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		*opt.Stats = rc.stats
	}
	return rc.out, nil
}

// buildSeqCtx is the workers <= 1 path: a plain sequential pass that
// still honors the backend and sampling options and Stats, with
// BuildCtx's cancellation semantics (a canceled run returns its
// Degraded partial profile alongside the error).
func buildSeqCtx(ctx context.Context, blocks []uint64, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	bd := opt.newBuilder(n, cacheBlocks)
	bd.setSampling(opt.Sample)
	for start := 0; start < len(blocks); start += ctxCheckEvery {
		if err := xerr.Check(ctx); err != nil {
			p := bd.Finish()
			p.Degraded = true
			return p, err
		}
		end := start + ctxCheckEvery
		if end > len(blocks) {
			end = len(blocks)
		}
		for _, blk := range blocks[start:end] {
			bd.Add(blk)
		}
	}
	if opt.Stats != nil {
		*opt.Stats = bd.stats
	}
	return bd.Finish(), nil
}

// firstShardError selects the error a failed fan-out reports: the first
// non-cancellation failure in shard order if any shard has one (the
// root cause — a panic or an injected fault), otherwise the first
// cancellation.
func firstShardError(shards []shardState) error {
	var canceled error
	for i := range shards {
		err := shards[i].err
		if err == nil {
			continue
		}
		if !errors.Is(err, xerr.ErrCanceled) {
			return err
		}
		if canceled == nil {
			canceled = err
		}
	}
	return canceled
}

// shardState is the fixed-size per-shard slot of a parallel build: the
// input half (idx, blocks) is filled by the dispatcher, the output half
// (p, sum, stats, err) by the one worker goroutine that runs the shard.
// Nothing in it is shared until the shard is handed back for
// reconciliation.
type shardState struct {
	idx    int
	blocks []uint64

	p     *Profile
	sum   lru.GateSummary
	stats BuildStats
	err   error
}

// run profiles the shard from a cold builder, checking ctx every
// ctxCheckEvery accesses, and exports the gate summary the reconciler
// needs. A panic anywhere in the pass is converted into a wrapped
// xerr.ErrPanic naming the shard instead of crashing the process, so
// the fan-out drains normally and the caller sees an ordinary error it
// can match with errors.Is.
func (s *shardState) run(ctx context.Context, n, cacheBlocks int, opt ParallelOptions) {
	defer func() {
		if r := recover(); r != nil {
			s.p = nil
			s.err = xerr.Panicked(fmt.Sprintf("profile: shard %d", s.idx), r)
		}
	}()
	if testShardHook != nil {
		testShardHook(s.idx)
	}
	bd := opt.newBuilder(n, cacheBlocks)
	tick := 0
	for _, b := range s.blocks {
		if tick++; tick >= ctxCheckEvery {
			tick = 0
			if err := xerr.Check(ctx); err != nil {
				s.err = err
				return
			}
		}
		bd.Add(b)
	}
	s.sum = bd.GateSummary()
	s.stats = bd.Stats()
	s.p = bd.Finish()
}

// BlockSource yields successive chunks of block addresses already
// truncated to n bits, filling dst and returning how many it wrote.
// It follows io.Reader conventions: (k, nil) with k > 0 while data
// remains, then (0, io.EOF); (k > 0, io.EOF) is also accepted. Short
// reads are fine — the dispatcher tops chunks up to ChunkSize itself.
// trace.Reader.BlockSource adapts the streaming decoder to this shape.
type BlockSource func(dst []uint64) (int, error)

// BuildStream profiles a block stream with the sharded pipeline without
// ever materializing the whole trace: the dispatcher fills ChunkSize
// blocks at a time and fans the chunks out to Workers shard builders.
// Reconciliation is in-order and incremental, so at most ~Workers shard
// histograms are alive at once. The result is bit-identical to a
// sequential Build of the same block sequence, for every worker count
// and chunk size.
func BuildStream(src BlockSource, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	return BuildStreamCtx(context.Background(), src, n, cacheBlocks, opt)
}

// BuildStreamCtx is BuildStream with cooperative cancellation: the
// dispatcher checks ctx before reading each chunk and every in-flight
// shard builder checks it while profiling, so a canceled context stops
// the whole fan-out within ctxCheckEvery accesses per worker. All
// goroutines are joined before the call returns a wrapped
// xerr.ErrCanceled — cancellation never leaks workers. A failed shard
// (panic, injected fault) cancels the rest of the fan-out internally,
// and its error — not the secondary cancellation — is what the call
// returns.
func BuildStreamCtx(ctx context.Context, src BlockSource, n, cacheBlocks int, opt ParallelOptions) (*Profile, error) {
	return buildStream(ctx, src, n, cacheBlocks, opt, nil)
}

// streamCheckpoint carries the persistence half of a checkpointed
// stream build into the shared engine; nil means no checkpointing.
type streamCheckpoint struct {
	path   string
	every  uint64
	resume bool
}

// buildStream is the engine behind BuildStreamCtx and
// BuildStreamCheckpointedCtx: a chunk dispatcher, a worker pool of
// shard builders, and an in-order collector that reconciles gate
// summaries as shards complete (and snapshots the reconciled prefix
// when checkpointing is on).
func buildStream(ctx context.Context, src BlockSource, n, cacheBlocks int, opt ParallelOptions, ck *streamCheckpoint) (*Profile, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	if err := opt.Retry.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ck != nil && (opt.Sample.enabled() || opt.Sketch != nil) {
		// The snapshot codec is exact flat/sparse state; a resumed
		// sampled pass would also lose its global candidate ordinal.
		return nil, fmt.Errorf("profile: sampled or sketch builds cannot be checkpointed: %w",
			xerr.ErrInvalidOptions)
	}
	opt = opt.withDefaults()
	if opt.Sample.enabled() {
		// Sampling depends on the global candidate ordinal, which the
		// sharded engine's cold chunk builders cannot know even with one
		// worker — the stream is consumed by a single sequential builder.
		return buildSampledStream(ctx, src, n, cacheBlocks, opt)
	}
	rc := newReconciler(n, cacheBlocks, opt)
	if ck != nil {
		if err := rc.restore(ck, n, cacheBlocks, opt.sparse(n)); err != nil {
			return nil, err
		}
	}
	// inner cancels the fan-out when a shard fails, so the dispatcher
	// and sibling shards stop instead of profiling a stream whose
	// result is already lost. The root-cause error is kept separately —
	// the secondary cancellations never mask it.
	inner, cancelInner := context.WithCancel(ctx)
	defer cancelInner()
	if opt.Retry.MaxRetries > 0 {
		src = RetrySource(inner, src, opt.Retry)
	}
	// Skip the prefix a restored snapshot already consumed.
	if skip := rc.out.Accesses; skip > 0 {
		if err := skipSource(src, skip, opt.ChunkSize); err != nil {
			return nil, err
		}
	}

	jobs := make(chan *shardState, opt.Workers)
	done := make(chan *shardState, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				s.run(inner, n, cacheBlocks, opt)
				done <- s
			}
		}()
	}
	// Collector: reconcile results in shard order as they arrive,
	// buffering the out-of-order ones, so completed histograms are
	// released instead of accumulating until the end of the stream.
	// Errored shards still advance the in-order cursor — otherwise a
	// canceled shard would stall every later result in the pending map.
	// rootErr collects the first non-cancellation failure (and triggers
	// the internal cancel); cancelErr the first cancellation.
	collected := make(chan struct{})
	var rootErr, cancelErr error
	go func() {
		defer close(collected)
		pending := make(map[int]*shardState)
		next := 0
		sinceCkpt := uint64(0)
		fail := func(err error) {
			if errors.Is(err, xerr.ErrCanceled) {
				if cancelErr == nil {
					cancelErr = err
				}
				return
			}
			if rootErr == nil {
				rootErr = err
				cancelInner()
			}
		}
		for s := range done {
			pending[s.idx] = s
			for {
				ns, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if ns.err != nil {
					fail(ns.err)
					continue
				}
				if rootErr != nil || cancelErr != nil {
					continue
				}
				added := ns.p.Accesses
				if err := rc.absorb(ns); err != nil {
					fail(err)
					continue
				}
				if ck != nil && ck.path != "" {
					if sinceCkpt += added; sinceCkpt >= ck.every {
						if err := rc.checkpointFile(ck.path); err != nil {
							fail(err)
							continue
						}
						sinceCkpt = 0
					}
				}
			}
		}
	}()

	idx := 0
	var srcErr error
	for {
		if err := xerr.Check(inner); err != nil {
			srcErr = err
			break
		}
		buf := make([]uint64, opt.ChunkSize)
		filled, ferr := fillChunk(src, buf)
		if filled > 0 && ferr == nil || ferr == io.EOF {
			if filled > 0 {
				jobs <- &shardState{idx: idx, blocks: buf[:filled]}
				idx++
			}
		}
		if ferr == io.EOF {
			break
		}
		if ferr != nil {
			srcErr = ferr
			break
		}
	}
	close(jobs)
	wg.Wait()
	close(done)
	<-collected

	switch {
	case rootErr != nil:
		return nil, rootErr
	case srcErr != nil && !errors.Is(srcErr, xerr.ErrCanceled):
		return nil, srcErr
	case srcErr != nil || cancelErr != nil:
		cause := srcErr
		if cause == nil {
			cause = cancelErr
		}
		if ck != nil {
			return rc.degraded(ck, cause)
		}
		return nil, cause
	}
	if ck != nil && ck.path != "" {
		// Final snapshot: a resume of a completed run replays nothing.
		if err := rc.checkpointFile(ck.path); err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		*opt.Stats = rc.stats
	}
	return rc.out, nil
}

// fillChunk tops buf up from the source until it is full or the stream
// ends, so chunk — and therefore shard — boundaries land at fixed
// multiples of the chunk size regardless of the source's read
// granularity. It returns how many blocks were filled plus io.EOF at
// the end of the stream, any source error as-is, and a wrapped
// xerr.ErrFormat for a source that returns no data and no error.
func fillChunk(src BlockSource, buf []uint64) (int, error) {
	filled := 0
	for filled < len(buf) {
		k, err := src(buf[filled:])
		filled += k
		if err != nil {
			return filled, err
		}
		if k == 0 {
			return filled, fmt.Errorf("profile: block source returned no data and no error: %w", xerr.ErrFormat)
		}
	}
	return filled, nil
}

// skipSource discards n blocks from the source — the prefix a restored
// snapshot already profiled.
func skipSource(src BlockSource, n uint64, chunkSize int) error {
	buf := make([]uint64, chunkSize)
	for n > 0 {
		want := uint64(len(buf))
		if n < want {
			want = n
		}
		k, err := src(buf[:want])
		if k > 0 {
			n -= uint64(k)
		}
		if err == io.EOF && n > 0 {
			return fmt.Errorf("profile: source ended %d accesses before the snapshot position: %w",
				n, xerr.ErrFormat)
		}
		if err != nil && err != io.EOF {
			return err
		}
		if k == 0 && err == nil {
			return fmt.Errorf("profile: block source returned no data and no error: %w", xerr.ErrFormat)
		}
	}
	return nil
}

// reconciler folds shard results into the merged profile in trace
// order. bound is the sequential LRU stack at the boundary between the
// shards already absorbed and the next one — the only cross-shard state
// the scheme needs. Its (out, bound) pair is at every shard boundary
// exactly the (profile, stack) state of a sequential Builder at that
// access position, which is what makes parallel builds checkpointable
// with the sequential snapshot codec (see rc.checkpointFile).
type reconciler struct {
	out   *Profile
	bound *lru.Stack
	stats BuildStats

	prefix  map[uint64]struct{} // scratch: current shard's first-touch prefix
	scratch []uint64            // scratch: boundary blocks collected by a walk
}

func newReconciler(n, cacheBlocks int, opt ParallelOptions) *reconciler {
	return &reconciler{
		out:    opt.newBuilder(n, cacheBlocks).Finish(),
		bound:  lru.NewStack(),
		prefix: make(map[uint64]struct{}),
	}
}

// absorb folds the next shard (in trace order) into the merged profile:
// reclassify the shard's boundary-crossing first touches against the
// boundary stack, merge the histogram, then advance the boundary stack
// by the shard's recency order. A merge failure (a shard built with a
// different geometry — impossible through the exported builders,
// reachable if the reconciler is ever reused across configurations) is
// returned as Merge's wrapped xerr.ErrProfileMismatch rather than
// panicking in library code.
func (rc *reconciler) absorb(s *shardState) error {
	rc.stats.CandidateWalks += s.stats.CandidateWalks
	rc.stats.WalkSteps += s.stats.WalkSteps
	rc.stats.GatedCapacityMisses += s.stats.GatedCapacityMisses
	cacheBlocks := rc.out.CacheBlocks
	clear(rc.prefix)
	for j, b := range s.sum.FirstTouch {
		if target, ok := rc.bound.Index(b); ok {
			rc.resolve(s.p, s.sum.FirstTouch[:j], b, target)
		}
		if j <= cacheBlocks {
			// Only candidates with at most cacheBlocks prior first
			// touches can walk, so the prefix set stops growing once no
			// later candidate could need it.
			rc.prefix[b] = struct{}{}
		}
	}
	if err := rc.out.Merge(s.p); err != nil {
		return fmt.Errorf("profile: shard merge: %w", err)
	}
	for i := len(s.sum.Recency) - 1; i >= 0; i-- {
		b := s.sum.Recency[i]
		if idx, ok := rc.bound.Index(b); ok {
			rc.bound.MoveIndexToTop(idx)
		} else {
			rc.bound.Push(b)
		}
	}
	return nil
}

// resolve reclassifies one boundary-crossing candidate: block b looked
// like the shard's j-th first touch (j = len(prefix)) but an earlier
// shard accessed it. Its sequential reuse distance is the size of
// prefix ∪ {boundary-stack blocks above b}; the prefix members are
// distinct from each other and all accessed since b, so the walk only
// has to add the boundary blocks not already in the prefix. The walk
// visits at most 2·cacheBlocks+1 entries: it early-exits to a capacity
// miss once the union exceeds the filter, having skipped at most
// cacheBlocks+1 prefix members before that.
func (rc *reconciler) resolve(p *Profile, prefix []uint64, b uint64, target int32) {
	p.Compulsory--
	cacheBlocks := rc.out.CacheBlocks
	j := len(prefix)
	if j > cacheBlocks {
		p.Capacity++
		rc.stats.GatedCapacityMisses++
		return
	}
	nodes, top := rc.bound.Raw()
	ys := rc.scratch[:0]
	for i := top; i != target; i = nodes[i].Next {
		y := nodes[i].Block
		if _, ok := rc.prefix[y]; ok {
			continue
		}
		if j+len(ys)+1 > cacheBlocks {
			rc.scratch = ys
			p.Capacity++
			rc.stats.GatedCapacityMisses++
			return
		}
		ys = append(ys, y)
	}
	rc.scratch = ys
	p.Candidates++
	if tbl := p.Table; tbl != nil {
		for _, y := range prefix {
			tbl[b^y]++
		}
		for _, y := range ys {
			tbl[b^y]++
		}
	} else if sk := p.Sketch; sk != nil {
		for _, y := range prefix {
			sk.Inc(b ^ y)
		}
		for _, y := range ys {
			sk.Inc(b ^ y)
		}
	} else {
		sp := p.Sparse
		for _, y := range prefix {
			sp[b^y]++
		}
		for _, y := range ys {
			sp[b^y]++
		}
	}
	d := uint64(j + len(ys))
	p.TotalPairs += d
	rc.stats.CandidateWalks++
	rc.stats.WalkSteps += d
}
