package profile

// Checkpoint/resume for the profiling pass. A snapshot captures the
// complete state of a sequential Builder mid-trace — the LRU stack,
// the conflict-vector histogram and the bookkeeping counters — inside
// the versioned, CRC-checked ckpt envelope, so a run killed at any
// checkpoint boundary resumes bit-identically to an uninterrupted one
// (the differential tests in checkpoint_test.go prove it). The stream
// position is the Accesses counter: a resumed build skips that many
// block accesses of its source and continues.
//
// Restore never trusts the payload: geometry, counter arithmetic
// (Accesses = Compulsory + Capacity + Candidates), the histogram/
// TotalPairs equality, histogram ordering and the stack/Compulsory
// equality are all re-validated, so a corrupted-but-CRC-colliding
// snapshot still fails with a wrapped xerr.ErrFormat instead of
// poisoning the profile (see FuzzCheckpointCodec).

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"xoridx/internal/ckpt"
	"xoridx/internal/faultio"
	"xoridx/internal/gf2"
	"xoridx/internal/lru"
	"xoridx/internal/xerr"
)

const (
	checkpointMagic   = "XPC1"
	checkpointVersion = 1
)

// DefaultCheckpointEvery is the snapshot cadence of
// BuildCheckpointedCtx when CheckpointOptions.Every is zero: one
// snapshot per 2^20 profiled accesses.
const DefaultCheckpointEvery = 1 << 20

// Pos returns the number of accesses the builder has consumed — the
// stream position a resumed build must skip to.
func (bd *Builder) Pos() uint64 { return bd.p.Accesses }

// Checkpoint serialises the builder's full profiling state. The
// builder remains usable; snapshots may be taken at any access
// boundary.
func (bd *Builder) Checkpoint(w io.Writer) error {
	if bd.done {
		return fmt.Errorf("profile: Checkpoint after Finish: %w", xerr.ErrInvalidOptions)
	}
	if bd.sampleK > 1 {
		// The XPC1 snapshot does not carry the sampling gate's position
		// in the global candidate stream, so a resume would silently
		// sample a different subset than the uninterrupted pass.
		return fmt.Errorf("profile: Checkpoint of a sampled builder: %w", xerr.ErrInvalidOptions)
	}
	if bd.p.Sketch != nil {
		return fmt.Errorf("profile: Checkpoint of a sketch-backed builder: %w", xerr.ErrInvalidOptions)
	}
	p := bd.p
	return ckpt.Write(w, checkpointMagic, checkpointVersion, func(b *bytes.Buffer) error {
		var buf [binary.MaxVarintLen64]byte
		put := func(v uint64) { b.Write(buf[:binary.PutUvarint(buf[:], v)]) }
		put(uint64(p.N))
		put(uint64(p.CacheBlocks))
		if p.Sparse != nil {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		put(p.Accesses)
		put(p.Compulsory)
		put(p.Capacity)
		put(p.Candidates)
		put(p.TotalPairs)
		stack := bd.stack.Blocks()
		put(uint64(len(stack)))
		for _, blk := range stack {
			put(blk)
		}
		support := p.Support()
		put(uint64(len(support)))
		prev := uint64(0)
		for _, vc := range support {
			// Vectors are strictly ascending; delta coding keeps dense
			// histograms compact.
			put(uint64(vc.Vec) - prev)
			put(vc.Count)
			prev = uint64(vc.Vec)
		}
		return nil
	})
}

// Restore rebuilds a Builder from a Checkpoint snapshot. Corruption at
// any layer — envelope, counters, histogram, stack — returns a wrapped
// xerr.ErrFormat; a successful restore is bit-identical to the builder
// that was checkpointed.
func Restore(r io.Reader) (*Builder, error) {
	version, payload, err := ckpt.Read(r, checkpointMagic)
	if err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("profile: snapshot version %d, this build reads %d: %w",
			version, checkpointVersion, xerr.ErrFormat)
	}
	d := &payloadReader{b: payload}
	n := int(d.uvarint("n"))
	cacheBlocks := int(d.uvarint("cacheBlocks"))
	sparse := d.byte("backend") == 1
	if d.err == nil {
		if err := ValidateGeometry(n, cacheBlocks); err != nil {
			return nil, fmt.Errorf("profile: snapshot geometry: %w: %w", xerr.ErrFormat, err)
		}
		if !sparse && n > MaxFlatBits {
			return nil, fmt.Errorf("profile: snapshot claims a flat table at n=%d > MaxFlatBits: %w", n, xerr.ErrFormat)
		}
	}
	accesses := d.uvarint("accesses")
	compulsory := d.uvarint("compulsory")
	capacity := d.uvarint("capacity")
	candidates := d.uvarint("candidates")
	totalPairs := d.uvarint("totalPairs")
	stackLen := d.uvarint("stack length")
	if d.err != nil {
		return nil, d.err
	}
	if compulsory+capacity+candidates != accesses {
		return nil, fmt.Errorf("profile: snapshot counters disagree (%d+%d+%d != %d accesses): %w",
			compulsory, capacity, candidates, accesses, xerr.ErrFormat)
	}
	if stackLen != compulsory {
		return nil, fmt.Errorf("profile: snapshot stack holds %d blocks, compulsory counter says %d: %w",
			stackLen, compulsory, xerr.ErrFormat)
	}
	if stackLen > accesses || uint64(len(payload)) < stackLen {
		return nil, fmt.Errorf("profile: snapshot stack length %d implausible: %w", stackLen, xerr.ErrFormat)
	}
	mask := uint64(gf2.Mask(n))
	stack := make([]uint64, stackLen)
	for i := range stack {
		stack[i] = d.uvarint("stack block")
		if d.err == nil && stack[i] > mask {
			return nil, fmt.Errorf("profile: snapshot stack block %#x exceeds %d bits: %w", stack[i], n, xerr.ErrFormat)
		}
	}
	supportLen := d.uvarint("support length")
	if d.err != nil {
		return nil, d.err
	}
	if uint64(len(payload)) < supportLen {
		return nil, fmt.Errorf("profile: snapshot support length %d implausible: %w", supportLen, xerr.ErrFormat)
	}
	bd := newBuilder(n, cacheBlocks, sparse)
	p := bd.p
	var vec, sum uint64
	for i := uint64(0); i < supportLen; i++ {
		dv := d.uvarint("vector delta")
		count := d.uvarint("vector count")
		if d.err != nil {
			return nil, d.err
		}
		if i > 0 && dv == 0 {
			return nil, fmt.Errorf("profile: snapshot histogram vectors not strictly ascending: %w", xerr.ErrFormat)
		}
		vec += dv
		if vec > mask {
			return nil, fmt.Errorf("profile: snapshot histogram vector %#x exceeds %d bits: %w", vec, n, xerr.ErrFormat)
		}
		if count == 0 {
			return nil, fmt.Errorf("profile: snapshot histogram carries a zero count: %w", xerr.ErrFormat)
		}
		if p.Table != nil {
			p.Table[vec] = count
		} else {
			p.Sparse[vec] = count
		}
		sum += count
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.rem() != 0 {
		return nil, fmt.Errorf("profile: %d trailing bytes after snapshot payload: %w", d.rem(), xerr.ErrFormat)
	}
	if sum != totalPairs {
		return nil, fmt.Errorf("profile: snapshot histogram sums to %d pairs, counter says %d: %w",
			sum, totalPairs, xerr.ErrFormat)
	}
	st, err := lru.NewStackFrom(stack)
	if err != nil {
		return nil, fmt.Errorf("profile: snapshot stack: %w: %w", xerr.ErrFormat, err)
	}
	p.Accesses = accesses
	p.Compulsory = compulsory
	p.Capacity = capacity
	p.Candidates = candidates
	p.TotalPairs = totalPairs
	bd.stack = st
	// Rebuild the distance gate in the snapshot's recency order (bottom
	// of the stack first). The tree's internal clock differs from an
	// uninterrupted run's, but reuse distances depend only on relative
	// recency, so the resumed pass classifies
	// every access bit-identically (the kill/resume differential tests
	// prove it).
	bd.tree = lru.NewDistanceTree()
	for i := len(stack) - 1; i >= 0; i-- {
		bd.tree.Record(stack[i])
	}
	return bd, nil
}

// payloadReader decodes snapshot payload primitives, latching the
// first failure as a wrapped xerr.ErrFormat.
type payloadReader struct {
	b   []byte
	err error
}

func (d *payloadReader) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, k := binary.Uvarint(d.b)
	if k <= 0 {
		d.err = fmt.Errorf("profile: snapshot %s: truncated or overlong varint: %w", what, xerr.ErrFormat)
		return 0
	}
	d.b = d.b[k:]
	return v
}

func (d *payloadReader) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("profile: snapshot %s: truncated: %w", what, xerr.ErrFormat)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *payloadReader) rem() int { return len(d.b) }

// CheckpointFile writes the builder's snapshot to path atomically
// (temp file + rename): a crash mid-write leaves the previous
// snapshot, never a torn file.
func CheckpointFile(path string, bd *Builder) error {
	return ckpt.WriteFileAtomic(path, bd.Checkpoint)
}

// RestoreFile loads a snapshot written by CheckpointFile. A missing
// file surfaces as the usual fs.ErrNotExist so callers can treat
// "no checkpoint yet" as a cold start.
func RestoreFile(path string) (*Builder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f)
}

// CheckpointOptions configures BuildCheckpointedCtx.
type CheckpointOptions struct {
	// Path is the snapshot file; empty disables persistence (the build
	// still degrades gracefully on cancellation).
	Path string
	// Every is the snapshot cadence in accesses (0 selects
	// DefaultCheckpointEvery).
	Every uint64
	// Resume restores Path if it exists and skips the accesses the
	// snapshot already consumed before profiling the rest.
	Resume bool
	// Retry, when MaxRetries > 0, retries transient source failures
	// (errors wrapping xerr.ErrIO) with capped backoff before giving
	// up.
	Retry faultio.Policy
	// ChunkSize is the read granularity in accesses (0 selects
	// DefaultChunkSize).
	ChunkSize int
}

// BuildCheckpointedCtx profiles a block stream sequentially with
// periodic atomic snapshots, transient-fault retry and graceful
// degradation:
//
//   - every Every accesses the builder state is written to Path, so a
//     crashed or killed run resumes from the last boundary;
//   - with Resume set, an existing snapshot is restored and the
//     source's already-profiled prefix is skipped — the final profile
//     is bit-identical to an uninterrupted run;
//   - transient source errors are retried under Retry; exhausted
//     retries and corrupt input fail the build;
//   - on cancellation the best-so-far profile is snapshotted (when
//     Path is set) and returned alongside the wrapped ErrCanceled,
//     marked Degraded with its Accesses counter telling how far it
//     got.
func BuildCheckpointedCtx(ctx context.Context, src BlockSource, n, cacheBlocks int, opt CheckpointOptions) (*Profile, error) {
	if err := ValidateGeometry(n, cacheBlocks); err != nil {
		return nil, err
	}
	if err := opt.Retry.Validate(); err != nil {
		return nil, err
	}
	if opt.Every == 0 {
		opt.Every = DefaultCheckpointEvery
	}
	if opt.ChunkSize <= 0 {
		opt.ChunkSize = DefaultChunkSize
	}
	bd := NewBuilder(n, cacheBlocks)
	if opt.Resume && opt.Path != "" {
		restored, err := RestoreFile(opt.Path)
		switch {
		case err == nil:
			if restored.p.N != n || restored.p.CacheBlocks != cacheBlocks {
				return nil, fmt.Errorf("profile: snapshot geometry (n=%d, %d blocks) does not match build (n=%d, %d blocks): %w",
					restored.p.N, restored.p.CacheBlocks, n, cacheBlocks, xerr.ErrProfileMismatch)
			}
			bd = restored
		case os.IsNotExist(err):
			// Cold start: no snapshot yet.
		default:
			return nil, err
		}
	}
	if opt.Retry.MaxRetries > 0 {
		src = RetrySource(ctx, src, opt.Retry)
	}
	buf := make([]uint64, opt.ChunkSize)
	// Skip the prefix a restored snapshot already consumed.
	for skip := bd.Pos(); skip > 0; {
		want := uint64(len(buf))
		if skip < want {
			want = skip
		}
		k, err := src(buf[:want])
		if k > 0 {
			skip -= uint64(k)
		}
		if err == io.EOF && skip > 0 {
			return nil, fmt.Errorf("profile: source ended %d accesses before the snapshot position %d: %w",
				skip, bd.Pos(), xerr.ErrFormat)
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		if k == 0 && err == nil {
			return nil, fmt.Errorf("profile: block source returned no data and no error: %w", xerr.ErrFormat)
		}
	}
	sinceCkpt := uint64(0)
	degraded := func(cause error) (*Profile, error) {
		if opt.Path != "" {
			if werr := CheckpointFile(opt.Path, bd); werr != nil {
				return nil, fmt.Errorf("profile: snapshotting on cancellation: %w (after %w)", werr, cause)
			}
		}
		p := bd.Finish()
		p.Degraded = true
		return p, cause
	}
	for {
		if err := xerr.Check(ctx); err != nil {
			return degraded(err)
		}
		k, err := src(buf)
		for _, blk := range buf[:k] {
			bd.Add(blk)
		}
		sinceCkpt += uint64(k)
		if opt.Path != "" && sinceCkpt >= opt.Every {
			if err := CheckpointFile(opt.Path, bd); err != nil {
				return nil, err
			}
			sinceCkpt = 0
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if k == 0 {
			return nil, fmt.Errorf("profile: block source returned no data and no error: %w", xerr.ErrFormat)
		}
	}
	if opt.Path != "" {
		// Final snapshot: a resume of a completed run replays nothing.
		if err := CheckpointFile(opt.Path, bd); err != nil {
			return nil, err
		}
	}
	return bd.Finish(), nil
}

// BuildStreamCheckpointedCtx is the sharded analog of
// BuildCheckpointedCtx: BuildStreamCtx's worker fan-out plus periodic
// atomic snapshots of the reconciled prefix. The snapshot format is the
// sequential one — the reconciler's (profile, boundary stack) pair at a
// shard boundary is exactly a sequential Builder's state at that access
// position — so sequential and parallel runs can resume each other's
// snapshots, and a resumed build is bit-identical to an uninterrupted
// one even when the resume uses different worker counts or chunk sizes
// (shard boundaries don't affect the result). On cancellation the
// reconciled prefix is snapshotted (when Path is set) and returned
// Degraded alongside the wrapped ErrCanceled, mirroring the sequential
// semantics; note the parallel Degraded profile covers the reconciled
// chunk prefix, not every access the workers had consumed.
//
// Sharding, backend and retry controls come from opt; copt supplies
// Path, Every and Resume (its Retry and ChunkSize are fallbacks used
// only when opt leaves them zero).
func BuildStreamCheckpointedCtx(ctx context.Context, src BlockSource, n, cacheBlocks int, opt ParallelOptions, copt CheckpointOptions) (*Profile, error) {
	ck := &streamCheckpoint{path: copt.Path, every: copt.Every, resume: copt.Resume}
	if ck.every == 0 {
		ck.every = DefaultCheckpointEvery
	}
	if opt.Retry.MaxRetries == 0 {
		opt.Retry = copt.Retry
	}
	if opt.ChunkSize <= 0 {
		opt.ChunkSize = copt.ChunkSize
	}
	return buildStream(ctx, src, n, cacheBlocks, opt, ck)
}

// checkpoint writes the reconciled prefix with the sequential snapshot
// codec: (out, bound) at a shard boundary carries the same counters,
// stack and histogram a sequential Builder would hold at that access
// position, down to the stackLen == Compulsory invariant Restore
// re-validates.
func (rc *reconciler) checkpoint(w io.Writer) error {
	bd := &Builder{p: rc.out, stack: rc.bound}
	return bd.Checkpoint(w)
}

func (rc *reconciler) checkpointFile(path string) error {
	return ckpt.WriteFileAtomic(path, rc.checkpoint)
}

// restore seeds the reconciler from an existing snapshot when resuming:
// the merged-so-far profile and the boundary stack are exactly what the
// snapshot stores. A missing file is a cold start; geometry or backend
// mismatches are rejected before any worker starts.
func (rc *reconciler) restore(ck *streamCheckpoint, n, cacheBlocks int, sparse bool) error {
	if !ck.resume || ck.path == "" {
		return nil
	}
	restored, err := RestoreFile(ck.path)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		return nil
	default:
		return err
	}
	if restored.p.N != n || restored.p.CacheBlocks != cacheBlocks {
		return fmt.Errorf("profile: snapshot geometry (n=%d, %d blocks) does not match build (n=%d, %d blocks): %w",
			restored.p.N, restored.p.CacheBlocks, n, cacheBlocks, xerr.ErrProfileMismatch)
	}
	if (restored.p.Sparse != nil) != sparse {
		return fmt.Errorf("profile: snapshot histogram backend does not match build options: %w", xerr.ErrProfileMismatch)
	}
	rc.out = restored.p
	rc.bound = restored.stack
	return nil
}

// degraded snapshots and returns the reconciled prefix when a
// checkpointed stream build is canceled, mirroring
// BuildCheckpointedCtx's graceful degradation.
func (rc *reconciler) degraded(ck *streamCheckpoint, cause error) (*Profile, error) {
	if ck.path != "" {
		if werr := rc.checkpointFile(ck.path); werr != nil {
			return nil, fmt.Errorf("profile: snapshotting on cancellation: %w (after %w)", werr, cause)
		}
	}
	rc.out.Degraded = true
	return rc.out, cause
}

// RetrySource wraps a BlockSource so transient failures (errors
// wrapping xerr.ErrIO) are retried in place under the policy. Blocks
// delivered alongside a transient error are passed through first —
// nothing is re-read, because the trace reader consumes no bytes on a
// failed record decode — and the fault is retried on the next call.
func RetrySource(ctx context.Context, src BlockSource, policy faultio.Policy) BlockSource {
	return func(dst []uint64) (int, error) {
		var n int
		err := policy.Do(ctx, func() error {
			k, err := src(dst)
			if k > 0 {
				n = k
				if faultio.IsTransient(err) {
					// Deliver the partial chunk; the fault will
					// resurface on the next call if it persists.
					return nil
				}
			}
			return err
		})
		return n, err
	}
}
